// Command nvrecover walks through NVOverlay's snapshot usage models
// (paper §V-E) end to end: it runs a workload over the full stack, then
// demonstrates crash recovery with verification against the golden memory
// image, time-travel reads over an address's version history, and remote
// replication to a backup machine.
//
// Usage:
//
//	nvrecover -workload btree -accesses 300000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/omc"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		wlName   = flag.String("workload", "btree", "workload: "+strings.Join(workload.Names(), ", "))
		accesses = flag.Uint64("accesses", 300_000, "access budget")
		epoch    = flag.Int("epoch", 4_000, "epoch size (stores)")
		seed     = flag.Int64("seed", 42, "workload PRNG seed")
		archive  = flag.String("archive", "", "export the snapshot archive to this file")
	)
	flag.Parse()

	cfg := sim.DefaultConfig()
	cfg.EpochSize = *epoch
	cfg.Seed = *seed
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	wl, err := workload.Get(*wlName)
	if err != nil {
		fatal(err)
	}

	// Retention keeps merged per-epoch tables so time travel works over
	// the whole history (the debugging usage model).
	nvo := core.New(&cfg, core.WithRetention())
	driver := trace.NewDriver(&cfg, nvo, wl, *accesses)
	fmt.Printf("running %s over NVOverlay (%d accesses, epoch %d stores)...\n",
		*wlName, *accesses, *epoch)
	sum := driver.Run()
	fmt.Printf("  done in %d cycles; %d lines written; rec-epoch %d\n\n",
		sum.Cycles, len(sum.Final), nvo.Group().RecEpoch())

	// --- Crash recovery -----------------------------------------------
	fmt.Println("crash recovery:")
	img, rep := recovery.Recover(nvo.Group())
	fmt.Printf("  restored %d lines of epoch %d in %d cycles (%.2f us at 3 GHz)\n",
		rep.LinesRestored, rep.RecEpoch, rep.LatencyCycles,
		float64(rep.LatencyCycles)/3e3)
	if err := recovery.Verify(img, sum.Final); err != nil {
		fatal(fmt.Errorf("image verification FAILED: %w", err))
	}
	fmt.Println("  image verified against the golden final memory state")

	// --- Time travel ---------------------------------------------------
	fmt.Println("\ntime-travel debugging:")
	addr := hottestAddr(sum.Final, nvo)
	hist := recovery.History(nvo.Group(), addr)
	fmt.Printf("  address %#x has %d snapshot versions:\n", addr, len(hist))
	for i, v := range hist {
		if i >= 6 {
			fmt.Printf("    ... %d more\n", len(hist)-i)
			break
		}
		fmt.Printf("    epoch %4d -> value %d\n", v.Epoch, v.Data)
	}
	if len(hist) >= 2 {
		mid := hist[len(hist)/2].Epoch
		d, e, ok := recovery.TimeTravel(nvo.Group(), addr, mid)
		fmt.Printf("  read @epoch %d (fall-through): value %d from epoch %d (ok=%v)\n",
			mid, d, e, ok)
	}

	// --- Remote replication ---------------------------------------------
	fmt.Println("\nremote replication:")
	replica := recovery.NewReplica()
	shipped := recovery.Replicate(nvo.Group(), replica)
	fmt.Printf("  shipped %d epoch deltas (%d KB on the wire); replica at epoch %d\n",
		shipped, replica.BytesReceived>>10, replica.AppliedEpoch())
	if err := recovery.Verify(replica.Image(), sum.Final); err != nil {
		fatal(fmt.Errorf("replica verification FAILED: %w", err))
	}
	fmt.Println("  replica image verified against the primary")

	// --- Snapshot archive -----------------------------------------------
	if *archive != "" {
		fmt.Println("\nsnapshot archive:")
		f, err := os.Create(*archive)
		if err != nil {
			fatal(err)
		}
		if err := nvo.Group().Export(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		info, _ := os.Stat(*archive)
		fmt.Printf("  wrote %s (%d KB): master image + %d epoch deltas\n",
			*archive, info.Size()>>10, len(nvo.Group().Epochs()))
		// Round-trip sanity: re-open and compare a time-travel read.
		rf, err := os.Open(*archive)
		if err != nil {
			fatal(err)
		}
		sf, err := omc.Import(rf)
		rf.Close()
		if err != nil {
			fatal(err)
		}
		if len(hist) > 0 {
			probe := hist[len(hist)-1].Epoch
			got, _ := sf.ReadAt(addr, probe)
			want, _, _ := recovery.TimeTravel(nvo.Group(), addr, probe)
			if got != want {
				fatal(fmt.Errorf("archive read mismatch: %d vs %d", got, want))
			}
			fmt.Printf("  archive round-trip verified (addr %#x @epoch %d = %d)\n",
				addr, probe, got)
		}
	}
}

// hottestAddr picks the address with the most snapshot versions, which
// makes for an interesting time-travel demonstration.
func hottestAddr(final map[uint64]uint64, nvo *core.NVOverlay) uint64 {
	type cand struct {
		addr uint64
		n    int
	}
	var cands []cand
	i := 0
	for addr := range final {
		cands = append(cands, cand{addr, len(recovery.History(nvo.Group(), addr))})
		i++
		if i >= 256 {
			break
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].n != cands[b].n {
			return cands[a].n > cands[b].n
		}
		return cands[a].addr < cands[b].addr
	})
	return cands[0].addr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvrecover:", err)
	os.Exit(1)
}
