// Command nvrecover walks through NVOverlay's snapshot usage models
// (paper §V-E) end to end: it runs a workload over the full stack, then
// demonstrates crash recovery with verification against the golden memory
// image, time-travel reads over an address's version history, and remote
// replication to a backup machine.
//
// Usage:
//
//	nvrecover -workload btree -accesses 300000
//
// With -store it instead cold-opens a file-backed durable store directory
// (written by a -store run of nvsim/nvcheck, possibly killed mid-write)
// in this fresh process, salvages it, and prints the report:
//
//	nvrecover -store /path/to/store
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/omc"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// options is the parsed command line.
type options struct {
	wlName   string
	accesses uint64
	epoch    int
	seed     int64
	archive  string
	store    string
}

// parseFlags decodes the command line without touching the process-global
// flag set, so tests can drive it directly.
func parseFlags(args []string, errOut io.Writer) (options, error) {
	fs := flag.NewFlagSet("nvrecover", flag.ContinueOnError)
	fs.SetOutput(errOut)
	o := options{}
	fs.StringVar(&o.wlName, "workload", "btree", "workload: "+strings.Join(workload.Names(), ", "))
	fs.Uint64Var(&o.accesses, "accesses", 300_000, "access budget")
	fs.IntVar(&o.epoch, "epoch", 4_000, "epoch size (stores)")
	fs.Int64Var(&o.seed, "seed", 42, "workload PRNG seed")
	fs.StringVar(&o.archive, "archive", "", "export the snapshot archive to this file")
	fs.StringVar(&o.store, "store", "", "cold-salvage this file-backed store directory instead of running a workload")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	return o, nil
}

// runStore is the cold-salvage path: open a file-backed store directory
// written by another (possibly killed) process, replay manifest →
// checkpoint → delta logs, run salvage-or-refuse over the image, and
// print the machine-readable report. The exit error carries the typed
// refusal when nothing could be proven.
func runStore(o options, w io.Writer) error {
	fmt.Fprintf(w, "cold-opening store %s...\n", o.store)
	out, rep, err := recovery.SalvageDir(o.store)
	if rep != nil {
		if js, jerr := rep.JSON(); jerr == nil {
			fmt.Fprintf(w, "%s\n", js)
		} else {
			fmt.Fprintf(w, "salvage report unprintable: %v\n", jerr)
		}
	}
	if err != nil {
		return fmt.Errorf("salvage refused: %w", err)
	}
	verdict := "restored"
	if rep.WalkedBack {
		verdict = "walked back and restored"
	}
	fmt.Fprintf(w, "%s epoch %d: %d lines (store manifest claimed epoch %d, %d file findings)\n",
		verdict, rep.RestoredEpoch, len(out), rep.StoreSealedEpoch, len(rep.Damage))
	return nil
}

// run executes the full usage-model walkthrough, writing the narrative to w.
func run(o options, w io.Writer) error {
	if o.store != "" {
		return runStore(o, w)
	}
	cfg := sim.DefaultConfig()
	cfg.EpochSize = o.epoch
	cfg.Seed = o.seed
	if err := cfg.Validate(); err != nil {
		return err
	}
	wl, err := workload.Get(o.wlName)
	if err != nil {
		return err
	}

	// Retention keeps merged per-epoch tables so time travel works over
	// the whole history (the debugging usage model).
	nvo := core.New(&cfg, core.WithRetention())
	driver := trace.NewDriver(&cfg, nvo, wl, o.accesses)
	fmt.Fprintf(w, "running %s over NVOverlay (%d accesses, epoch %d stores)...\n",
		o.wlName, o.accesses, o.epoch)
	sum := driver.Run()
	fmt.Fprintf(w, "  done in %d cycles; %d lines written; rec-epoch %d\n\n",
		sum.Cycles, len(sum.Final), nvo.Group().RecEpoch())

	// --- Crash recovery -----------------------------------------------
	fmt.Fprintln(w, "crash recovery:")
	img, rep := recovery.Recover(nvo.Group())
	fmt.Fprintf(w, "  restored %d lines of epoch %d in %d cycles (%.2f us at 3 GHz)\n",
		rep.LinesRestored, rep.RecEpoch, rep.LatencyCycles,
		float64(rep.LatencyCycles)/3e3)
	if err := recovery.Verify(img, sum.Final); err != nil {
		return fmt.Errorf("image verification FAILED: %w", err)
	}
	fmt.Fprintln(w, "  image verified against the golden final memory state")

	// --- Time travel ---------------------------------------------------
	fmt.Fprintln(w, "\ntime-travel debugging:")
	addr := hottestAddr(sum.Final, nvo)
	hist := recovery.History(nvo.Group(), addr)
	fmt.Fprintf(w, "  address %#x has %d snapshot versions:\n", addr, len(hist))
	for i, v := range hist {
		if i >= 6 {
			fmt.Fprintf(w, "    ... %d more\n", len(hist)-i)
			break
		}
		fmt.Fprintf(w, "    epoch %4d -> value %d\n", v.Epoch, v.Data)
	}
	if len(hist) >= 2 {
		mid := hist[len(hist)/2].Epoch
		d, e, ok := recovery.TimeTravel(nvo.Group(), addr, mid)
		fmt.Fprintf(w, "  read @epoch %d (fall-through): value %d from epoch %d (ok=%v)\n",
			mid, d, e, ok)
	}

	// --- Remote replication ---------------------------------------------
	fmt.Fprintln(w, "\nremote replication:")
	replica := recovery.NewReplica()
	shipped := recovery.Replicate(nvo.Group(), replica)
	fmt.Fprintf(w, "  shipped %d epoch deltas (%d KB on the wire); replica at epoch %d\n",
		shipped, replica.BytesReceived>>10, replica.AppliedEpoch())
	if err := recovery.Verify(replica.Image(), sum.Final); err != nil {
		return fmt.Errorf("replica verification FAILED: %w", err)
	}
	fmt.Fprintln(w, "  replica image verified against the primary")

	// --- Snapshot archive -----------------------------------------------
	if o.archive != "" {
		fmt.Fprintln(w, "\nsnapshot archive:")
		f, err := os.Create(o.archive)
		if err != nil {
			return err
		}
		if err := nvo.Group().Export(f); err != nil {
			_ = f.Close() // the export error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		info, err := os.Stat(o.archive)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s (%d KB): master image + %d epoch deltas\n",
			o.archive, info.Size()>>10, len(nvo.Group().Epochs()))
		// Round-trip sanity: re-open and compare a time-travel read.
		rf, err := os.Open(o.archive)
		if err != nil {
			return err
		}
		sf, err := omc.Import(rf)
		_ = rf.Close() // read-side close; the Import error decides the outcome
		if err != nil {
			return err
		}
		if len(hist) > 0 {
			probe := hist[len(hist)-1].Epoch
			got, _ := sf.ReadAt(addr, probe)
			want, _, _ := recovery.TimeTravel(nvo.Group(), addr, probe)
			if got != want {
				return fmt.Errorf("archive read mismatch: %d vs %d", got, want)
			}
			fmt.Fprintf(w, "  archive round-trip verified (addr %#x @epoch %d = %d)\n",
				addr, probe, got)
		}
	}
	return nil
}

// hottestAddr picks the address with the most snapshot versions, which
// makes for an interesting time-travel demonstration. The candidate sample
// is taken from the sorted address list, not map order, so the same run
// always demonstrates the same address.
func hottestAddr(final map[uint64]uint64, nvo *core.NVOverlay) uint64 {
	addrs := make([]uint64, 0, len(final))
	for addr := range final {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	if len(addrs) > 256 {
		addrs = addrs[:256]
	}
	type cand struct {
		addr uint64
		n    int
	}
	var cands []cand
	for _, addr := range addrs {
		cands = append(cands, cand{addr, len(recovery.History(nvo.Group(), addr))})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].n != cands[b].n {
			return cands[a].n > cands[b].n
		}
		return cands[a].addr < cands[b].addr
	})
	return cands[0].addr
}

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvrecover:", err)
		os.Exit(2)
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nvrecover:", err)
		os.Exit(1)
	}
}
