package main

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
)

// TestWalkthrough runs the full usage-model demo at a reduced budget and
// checks every verification step reports success, including the archive
// round trip.
func TestWalkthrough(t *testing.T) {
	archive := filepath.Join(t.TempDir(), "snap.bin")
	o, err := parseFlags([]string{
		"-workload", "btree", "-accesses", "60000", "-epoch", "1000",
		"-archive", archive,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(o, &out); err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"crash recovery:",
		"image verified against the golden final memory state",
		"time-travel debugging:",
		"snapshot versions:",
		"remote replication:",
		"replica image verified against the primary",
		"snapshot archive:",
		"archive round-trip verified",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestErrors checks the failure modes surface as errors rather than exits.
func TestErrors(t *testing.T) {
	if _, err := parseFlags([]string{"-bogus"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, err := parseFlags([]string{"stray"}, io.Discard); err == nil {
		t.Error("positional argument accepted")
	}
	o, err := parseFlags([]string{"-workload", "nope", "-accesses", "1000"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, io.Discard); err == nil {
		t.Error("unknown workload accepted")
	}
	o, err = parseFlags([]string{"-epoch", "-5"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, io.Discard); err == nil {
		t.Error("invalid epoch size accepted")
	}
}
