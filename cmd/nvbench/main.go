// Command nvbench regenerates the paper's evaluation: every figure of
// section VII plus the extra ablations DESIGN.md calls out, printed as the
// same rows/series the paper reports.
//
// Usage:
//
//	nvbench -exp all -scale quick
//	nvbench -exp fig12 -workloads btree,art,kmeans
//	nvbench -exp fig17b
//	nvbench -exp all -j 8 -json results.json
//	nvbench -exp timeline -workloads btree -events events.jsonl
//	nvbench -exp fig11 -cpuprofile cpu.out -memprofile mem.out
//
// Every figure fans its independent simulation cells across -j workers and
// merges the results in canonical cell order, so the output is
// byte-identical for every -j value (see internal/parallel).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/workload"
)

// report is the machine-readable envelope written by -json. Committed
// baselines (BENCH_baseline.json) are instances of this shape.
type report struct {
	Tool         string      `json:"tool"`
	Scale        string      `json:"scale"`
	Jobs         int         `json:"jobs"`
	Seed         int64       `json:"seed"`
	FaultClass   string      `json:"fault_class,omitempty"`
	Host         hostInfo    `json:"host"`
	Experiments  []expRecord `json:"experiments"`
	TotalSeconds float64     `json:"total_seconds"`
}

// hostInfo records where the numbers were taken: wall-clock figures only
// compare meaningfully against the same core count.
type hostInfo struct {
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// expRecord is one experiment's metrics: its figure output plus the
// wall-clock cost of regenerating it. AccessesPerSec is a pointer so a run
// too fast for the clock to resolve (secs == 0) omits the field instead of
// emitting Inf/NaN, which encoding/json refuses to marshal — that failure
// mode used to kill the whole -json report.
type expRecord struct {
	Name           string   `json:"name"`
	Seconds        float64  `json:"seconds"`
	Accesses       uint64   `json:"accesses"`
	AccessesPerSec *float64 `json:"accesses_per_sec,omitempty"`
	Result         any      `json:"result"`
}

// rate returns accesses/sec as a JSON-safe optional: nil unless the value
// is finite (secs > 0 and the division did not overflow).
func rate(accesses uint64, secs float64) *float64 {
	if secs <= 0 {
		return nil
	}
	v := float64(accesses) / secs
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// options is the parsed command line.
type options struct {
	exp        string
	scale      string
	wlCSV      string
	coresCSV   string
	seed       int64
	faults     string
	timing     bool
	jobs       int
	jsonOut    string
	events     string
	timeline   bool
	cpuProfile string
	memProfile string
	traceOut   string
}

// parseFlags decodes the command line without touching the process-global
// flag set, so tests can drive it directly.
func parseFlags(args []string, errOut io.Writer) (options, error) {
	fs := flag.NewFlagSet("nvbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	o := options{}
	fs.StringVar(&o.exp, "exp", "all", "experiment: config, fig11, fig12, fig13, fig14, fig15, fig16, fig17, fig17b, ablate-superblock, ablate-scaling, ablate-walker, timeline, fileplane, scale256, tracefile, all")
	fs.StringVar(&o.scale, "scale", "quick", "run scale: smoke, quick, full")
	fs.StringVar(&o.wlCSV, "workloads", "", "comma-separated workload subset (default: the paper's twelve; scale256 defaults to oltp,social)")
	fs.StringVar(&o.coresCSV, "cores", "", "comma-separated core counts for scale256 (default: 64,128,256)")
	fs.Int64Var(&o.seed, "seed", 0, "workload PRNG seed (0: the config default); every run is a pure function of it")
	fs.StringVar(&o.faults, "faults", "", "NVM fault-injection class for NVOverlay runs (torn, flip, loss, nak, all); the fault schedule derives from -seed and replays byte-identically")
	fs.BoolVar(&o.timing, "time", true, "print wall-clock duration per experiment")
	fs.IntVar(&o.jobs, "j", 0, "sweep workers; output is byte-identical for every value (0: GOMAXPROCS, 1: serial)")
	fs.StringVar(&o.jsonOut, "json", "", "write machine-readable results (figures + wall-clock + accesses/sec) to this file")
	fs.StringVar(&o.events, "events", "", "write the timeline experiment's JSONL event stream to this file (implies the timeline experiment)")
	fs.BoolVar(&o.timeline, "timeline", false, "run the timeline experiment (per-epoch rollups) in addition to -exp")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file (taken at exit)")
	fs.StringVar(&o.traceOut, "trace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	return o, nil
}

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvbench:", err)
		os.Exit(2)
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nvbench:", err)
		os.Exit(1)
	}
}

func run(o options, out io.Writer) error {
	sc, err := scaleByName(o.scale)
	if err != nil {
		return err
	}
	sc.Seed = o.seed
	sc.FaultClass = o.faults
	sc.Jobs = o.jobs
	var wls []string
	if o.wlCSV != "" {
		wls = strings.Split(o.wlCSV, ",")
		for _, w := range wls {
			if _, err := workload.Get(w); err != nil {
				return err
			}
		}
	}
	var coreCounts []int
	if o.coresCSV != "" {
		for _, s := range strings.Split(o.coresCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -cores value %q", s)
			}
			coreCounts = append(coreCounts, n)
		}
	}

	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			return err
		}
		defer rtrace.Stop()
	}
	if o.memProfile != "" {
		defer func() {
			f, err := os.Create(o.memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nvbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "nvbench: memprofile:", err)
			}
		}()
	}

	rep := report{
		Tool:       "nvbench",
		Scale:      sc.Name,
		Jobs:       parallel.Jobs(sc.Jobs),
		Seed:       o.seed,
		FaultClass: o.faults,
		Host: hostInfo{
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
		},
	}
	start := time.Now()

	runExp := func(name string, f func() (any, error)) error {
		t0 := time.Now()
		a0 := experiments.AccessesRun()
		result, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		secs := time.Since(t0).Seconds()
		if o.timing {
			fmt.Fprintf(out, "[%s took %.1fs]\n", name, secs)
		}
		fmt.Fprintln(out)
		rec := expRecord{Name: name, Seconds: secs,
			Accesses: experiments.AccessesRun() - a0, Result: result}
		rec.AccessesPerSec = rate(rec.Accesses, secs)
		rep.Experiments = append(rep.Experiments, rec)
		return nil
	}

	specs := []struct {
		name string
		fn   func() (any, error)
	}{
		{"config", func() (any, error) {
			cfg := sim.DefaultConfig()
			cfg.EpochSize = sc.EpochSize
			if sc.Seed != 0 {
				cfg.Seed = sc.Seed
			}
			if sc.Machine != nil {
				sc.Machine(&cfg)
			}
			experiments.PrintConfig(out, &cfg)
			fmt.Fprintf(out, "  Scale       %s: %d accesses, caches scaled to keep the paper's\n",
				sc.Name, sc.MaxAccesses)
			fmt.Fprintln(out, "              epoch-write-set vs L2/LLC capacity relationships")
			return nil, nil
		}},
		{"fig11", func() (any, error) {
			m, err := experiments.Fig11(sc, wls)
			if err != nil {
				return nil, err
			}
			experiments.PrintMatrix(out, m)
			return m, nil
		}},
		{"fig12", func() (any, error) {
			m, err := experiments.Fig12(sc, wls)
			if err != nil {
				return nil, err
			}
			experiments.PrintMatrix(out, m)
			return m, nil
		}},
		{"fig13", func() (any, error) {
			rows, err := experiments.Fig13(sc, wls)
			if err != nil {
				return nil, err
			}
			experiments.PrintFig13(out, rows)
			return rows, nil
		}},
		{"fig14", func() (any, error) {
			pts, err := experiments.Fig14(sc)
			if err != nil {
				return nil, err
			}
			experiments.PrintFig14(out, pts)
			return pts, nil
		}},
		{"fig15", func() (any, error) {
			rows, err := experiments.Fig15(sc)
			if err != nil {
				return nil, err
			}
			experiments.PrintFig15(out, rows)
			return rows, nil
		}},
		{"fig16", func() (any, error) {
			r, err := experiments.Fig16(sc)
			if err != nil {
				return nil, err
			}
			experiments.PrintFig16(out, r)
			return r, nil
		}},
		{"fig17", func() (any, error) {
			series, err := experiments.Fig17(sc, false)
			if err != nil {
				return nil, err
			}
			experiments.PrintFig17(out, series)
			return fig17JSON(series), nil
		}},
		{"fig17b", func() (any, error) {
			series, err := experiments.Fig17(sc, true)
			if err != nil {
				return nil, err
			}
			experiments.PrintFig17(out, series)
			return fig17JSON(series), nil
		}},
		{"ablate-superblock", func() (any, error) {
			r, err := experiments.AblateSuperBlock(sc)
			if err != nil {
				return nil, err
			}
			experiments.PrintSuperBlock(out, r)
			return r, nil
		}},
		{"ablate-scaling", func() (any, error) {
			pts, err := experiments.AblateScaling(sc)
			if err != nil {
				return nil, err
			}
			experiments.PrintScaling(out, pts)
			return pts, nil
		}},
		{"ablate-walker", func() (any, error) {
			r, err := experiments.AblateWalker(sc)
			if err != nil {
				return nil, err
			}
			experiments.PrintWalker(out, r)
			return r, nil
		}},
		{"timeline", func() (any, error) {
			tw := wls
			if tw == nil {
				tw = workload.Names()
			}
			cells, err := experiments.Timeline(sc, tw, o.events != "")
			if err != nil {
				return nil, err
			}
			experiments.PrintTimeline(out, cells)
			if o.events != "" {
				stream := experiments.ConcatEvents(cells)
				if err := os.WriteFile(o.events, stream, 0o644); err != nil {
					return nil, fmt.Errorf("writing event stream: %w", err)
				}
				fmt.Fprintf(out, "wrote event stream to %s\n", o.events)
			}
			return cells, nil
		}},
		{"scale256", func() (any, error) {
			pts, err := experiments.Scale256(sc, coreCounts, wls)
			if err != nil {
				return nil, err
			}
			experiments.PrintScale256(out, pts)
			return pts, nil
		}},
		{"fileplane", func() (any, error) {
			dir, err := os.MkdirTemp("", "nvbench-fileplane-*")
			if err != nil {
				return nil, err
			}
			defer func() {
				if rerr := os.RemoveAll(dir); rerr != nil {
					fmt.Fprintln(os.Stderr, "nvbench: fileplane cleanup:", rerr)
				}
			}()
			seed := o.seed
			if seed == 0 {
				seed = 42
			}
			epochs, perEpoch := 24, 1024
			if sc.Name == "smoke" {
				epochs, perEpoch = 8, 256
			}
			st, err := experiments.FilePlaneProfile(
				filepath.Join(dir, "store"), epochs, perEpoch, mem.DefaultCheckpointEvery, seed)
			if err != nil {
				return nil, err
			}
			experiments.PrintFilePlane(out, st)
			return st, nil
		}},
		{"tracefile", func() (any, error) {
			dir, err := os.MkdirTemp("", "nvbench-tracefile-*")
			if err != nil {
				return nil, err
			}
			defer func() {
				if rerr := os.RemoveAll(dir); rerr != nil {
					fmt.Fprintln(os.Stderr, "nvbench: tracefile cleanup:", rerr)
				}
			}()
			seed := o.seed
			if seed == 0 {
				seed = 42
			}
			records := uint64(4_000_000)
			switch sc.Name {
			case "smoke":
				records = 250_000
			case "full":
				records = 16_000_000
			}
			t0 := time.Now()
			clock := func() float64 { return time.Since(t0).Seconds() }
			st, err := experiments.TraceFileProfile(
				fault.OS, filepath.Join(dir, "profile.trc"), records, seed, clock)
			if err != nil {
				return nil, err
			}
			experiments.PrintTraceFile(out, st)
			return st, nil
		}},
	}

	// The timeline, fileplane, scale256 and tracefile experiments only run
	// when asked for — by name (or, for timeline, by -timeline / implicitly
	// by -events) — so "all" keeps regenerating exactly the paper's figures.
	wantTimeline := o.timeline || o.events != ""
	all := o.exp == "all"
	matched := false
	for _, spec := range specs {
		sel := spec.name == o.exp
		switch spec.name {
		case "timeline":
			sel = sel || wantTimeline
		case "fileplane", "scale256", "tracefile":
			// explicit selection only
		default:
			sel = sel || all
		}
		if !sel {
			continue
		}
		matched = true
		if err := runExp(spec.name, spec.fn); err != nil {
			return err
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", o.exp)
	}

	if o.jsonOut != "" {
		rep.TotalSeconds = time.Since(start).Seconds()
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", o.jsonOut)
	}
	return nil
}

// fig17Curve is the JSON shape of one Fig 17 bandwidth series (the
// TimeSeries type itself keeps its buckets unexported).
type fig17Curve struct {
	Scheme       string    `json:"scheme"`
	Bursty       bool      `json:"bursty"`
	BandwidthGBs []float64 `json:"bandwidth_gbs"`
}

func fig17JSON(series []experiments.Fig17Series) []fig17Curve {
	out := make([]fig17Curve, 0, len(series))
	for _, s := range series {
		c := fig17Curve{Scheme: s.Scheme, Bursty: s.Bursty}
		for i := 0; i < s.Series.Len(); i++ {
			c.BandwidthGBs = append(c.BandwidthGBs, s.Series.BandwidthGBs(i, s.Hz))
		}
		out = append(out, c)
	}
	return out
}

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "smoke":
		return experiments.Smoke, nil
	case "quick":
		return experiments.Quick, nil
	case "full":
		return experiments.Full, nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (smoke, quick, full)", name)
	}
}
