// Command nvbench regenerates the paper's evaluation: every figure of
// section VII plus the extra ablations DESIGN.md calls out, printed as the
// same rows/series the paper reports.
//
// Usage:
//
//	nvbench -exp all -scale quick
//	nvbench -exp fig12 -workloads btree,art,kmeans
//	nvbench -exp fig17b
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: config, fig11, fig12, fig13, fig14, fig15, fig16, fig17, fig17b, ablate-superblock, ablate-scaling, ablate-walker, all")
		scale  = flag.String("scale", "quick", "run scale: smoke, quick, full")
		wlCSV  = flag.String("workloads", "", "comma-separated workload subset (default: all twelve)")
		seed   = flag.Int64("seed", 0, "workload PRNG seed (0: the config default); every run is a pure function of it")
		faults = flag.String("faults", "", "NVM fault-injection class for NVOverlay runs (torn, flip, loss, nak, all); the fault schedule derives from -seed and replays byte-identically")
		timing = flag.Bool("time", true, "print wall-clock duration per experiment")
	)
	flag.Parse()

	sc, err := scaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	sc.Seed = *seed
	sc.FaultClass = *faults
	var wls []string
	if *wlCSV != "" {
		wls = strings.Split(*wlCSV, ",")
		for _, w := range wls {
			if _, err := workload.Get(w); err != nil {
				fatal(err)
			}
		}
	}

	run := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		if *timing {
			fmt.Printf("[%s took %.1fs]\n", name, time.Since(start).Seconds())
		}
		fmt.Println()
	}

	all := *exp == "all"
	out := os.Stdout

	if all || *exp == "config" {
		run("config", func() error {
			cfg := sim.DefaultConfig()
			cfg.EpochSize = sc.EpochSize
			if sc.Seed != 0 {
				cfg.Seed = sc.Seed
			}
			if sc.Machine != nil {
				sc.Machine(&cfg)
			}
			experiments.PrintConfig(out, &cfg)
			fmt.Printf("  Scale       %s: %d accesses, caches scaled to keep the paper's\n",
				sc.Name, sc.MaxAccesses)
			fmt.Println("              epoch-write-set vs L2/LLC capacity relationships")
			return nil
		})
	}
	if all || *exp == "fig11" {
		run("fig11", func() error {
			m, err := experiments.Fig11(sc, wls)
			if err != nil {
				return err
			}
			experiments.PrintMatrix(out, m)
			return nil
		})
	}
	if all || *exp == "fig12" {
		run("fig12", func() error {
			m, err := experiments.Fig12(sc, wls)
			if err != nil {
				return err
			}
			experiments.PrintMatrix(out, m)
			return nil
		})
	}
	if all || *exp == "fig13" {
		run("fig13", func() error {
			rows, err := experiments.Fig13(sc, wls)
			if err != nil {
				return err
			}
			experiments.PrintFig13(out, rows)
			return nil
		})
	}
	if all || *exp == "fig14" {
		run("fig14", func() error {
			pts, err := experiments.Fig14(sc)
			if err != nil {
				return err
			}
			experiments.PrintFig14(out, pts)
			return nil
		})
	}
	if all || *exp == "fig15" {
		run("fig15", func() error {
			rows, err := experiments.Fig15(sc)
			if err != nil {
				return err
			}
			experiments.PrintFig15(out, rows)
			return nil
		})
	}
	if all || *exp == "fig16" {
		run("fig16", func() error {
			r, err := experiments.Fig16(sc)
			if err != nil {
				return err
			}
			experiments.PrintFig16(out, r)
			return nil
		})
	}
	if all || *exp == "fig17" {
		run("fig17", func() error {
			series, err := experiments.Fig17(sc, false)
			if err != nil {
				return err
			}
			experiments.PrintFig17(out, series)
			return nil
		})
	}
	if all || *exp == "fig17b" {
		run("fig17b", func() error {
			series, err := experiments.Fig17(sc, true)
			if err != nil {
				return err
			}
			experiments.PrintFig17(out, series)
			return nil
		})
	}
	if all || *exp == "ablate-superblock" {
		run("ablate-superblock", func() error {
			r, err := experiments.AblateSuperBlock(sc)
			if err != nil {
				return err
			}
			experiments.PrintSuperBlock(out, r)
			return nil
		})
	}
	if all || *exp == "ablate-scaling" {
		run("ablate-scaling", func() error {
			pts, err := experiments.AblateScaling(sc)
			if err != nil {
				return err
			}
			experiments.PrintScaling(out, pts)
			return nil
		})
	}
	if all || *exp == "ablate-walker" {
		run("ablate-walker", func() error {
			r, err := experiments.AblateWalker(sc)
			if err != nil {
				return err
			}
			experiments.PrintWalker(out, r)
			return nil
		})
	}
}

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "smoke":
		return experiments.Smoke, nil
	case "quick":
		return experiments.Quick, nil
	case "full":
		return experiments.Full, nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (smoke, quick, full)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvbench:", err)
	os.Exit(1)
}
