package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRateJSONSafe is the regression test for the -json rate fields: a run
// too fast for the wall clock (secs == 0) used to yield +Inf, which
// encoding/json cannot marshal, killing the whole report.
func TestRateJSONSafe(t *testing.T) {
	cases := []struct {
		name     string
		accesses uint64
		secs     float64
		want     *float64
	}{
		{"zero wall clock", 1_000_000, 0, nil},
		{"negative wall clock", 1_000_000, -1, nil},
		{"denormal wall clock overflows", math.MaxUint64, 5e-324, nil},
		{"normal", 1000, 2, ptr(500)},
		{"zero accesses", 0, 2, ptr(0)},
	}
	for _, tc := range cases {
		got := rate(tc.accesses, tc.secs)
		switch {
		case got == nil && tc.want == nil:
		case got == nil || tc.want == nil:
			t.Errorf("%s: rate(%d, %g) = %v, want %v", tc.name, tc.accesses, tc.secs, got, tc.want)
		case *got != *tc.want:
			t.Errorf("%s: rate(%d, %g) = %g, want %g", tc.name, tc.accesses, tc.secs, *got, *tc.want)
		}
	}
}

func ptr(v float64) *float64 { return &v }

// TestExpRecordMarshalZeroClock marshals a report whose experiment finished
// inside one clock tick and checks the rate field is omitted, not Inf.
func TestExpRecordMarshalZeroClock(t *testing.T) {
	rec := expRecord{Name: "fig11", Seconds: 0, Accesses: 12345}
	rec.AccessesPerSec = rate(rec.Accesses, rec.Seconds)
	data, err := json.Marshal(report{Tool: "nvbench", Experiments: []expRecord{rec}})
	if err != nil {
		t.Fatalf("report with zero wall clock fails to marshal: %v", err)
	}
	if strings.Contains(string(data), "accesses_per_sec") {
		t.Fatalf("zero-clock record should omit accesses_per_sec: %s", data)
	}

	rec.Seconds = 0.5
	rec.AccessesPerSec = rate(rec.Accesses, rec.Seconds)
	data, err = json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"accesses_per_sec":24690`) {
		t.Fatalf("normal record should carry the rate: %s", data)
	}
}

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-exp", "fig12", "-scale", "smoke", "-j", "3",
		"-events", "ev.jsonl"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.exp != "fig12" || o.scale != "smoke" || o.jobs != 3 || o.events != "ev.jsonl" {
		t.Fatalf("parseFlags mismatch: %+v", o)
	}
	if _, err := parseFlags([]string{"stray"}, io.Discard); err == nil {
		t.Fatal("stray positional argument should be rejected")
	}
	if _, err := parseFlags([]string{"-nosuch"}, io.Discard); err == nil {
		t.Fatal("unknown flag should be rejected")
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	if err := run(options{exp: "fig99", scale: "quick"}, io.Discard); err == nil {
		t.Fatal("unknown experiment should error")
	}
	if err := run(options{exp: "all", scale: "huge"}, io.Discard); err == nil {
		t.Fatal("unknown scale should error")
	}
	if err := run(options{exp: "all", scale: "quick", wlCSV: "nosuchwl"}, io.Discard); err == nil {
		t.Fatal("unknown workload should error")
	}
}

// TestRunTimelineEndToEnd drives the timeline experiment through run() at
// smoke scale with one workload: the -events file must pass the schema
// validator and the JSON report must round-trip.
func TestRunTimelineEndToEnd(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.jsonl")
	jsonOut := filepath.Join(dir, "report.json")
	var out bytes.Buffer
	o := options{exp: "timeline", scale: "smoke", wlCSV: "btree",
		events: events, jsonOut: jsonOut}
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	stream, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateJSONL(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("captured stream fails validation: %v", err)
	}
	if n == 0 {
		t.Fatal("captured stream is empty")
	}
	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("JSON report does not round-trip: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Name != "timeline" {
		t.Fatalf("unexpected experiments in report: %+v", rep.Experiments)
	}
	if !strings.Contains(out.String(), "== timeline NVOverlay/btree") {
		t.Fatalf("timeline block missing from output:\n%s", out.String())
	}
}
