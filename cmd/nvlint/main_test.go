package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestParseFlags(t *testing.T) {
	cases := []struct {
		args []string
		want options
	}{
		{[]string{"./..."}, options{maxallow: -1, dirs: []string{""}}},
		{[]string{}, options{maxallow: -1, dirs: []string{""}}},
		{[]string{"-json", "./internal/omc/..."}, options{json: true, maxallow: -1, dirs: []string{"internal/omc"}}},
		{[]string{"internal/cst", "cmd/nvlint"}, options{maxallow: -1, dirs: []string{"internal/cst", "cmd/nvlint"}}},
		{[]string{"-list"}, options{list: true, maxallow: -1, dirs: []string{""}}},
		{[]string{"-timing"}, options{timing: true, maxallow: -1, dirs: []string{""}}},
		{[]string{"-maxallow", "25"}, options{maxallow: 25, dirs: []string{""}}},
		{[]string{"-checks", "errlatch,guardedby"}, options{maxallow: -1, checks: []string{"errlatch", "guardedby"}, dirs: []string{""}}},
	}
	for _, c := range cases {
		got, err := parseFlags(c.args, io.Discard)
		if err != nil {
			t.Fatalf("parseFlags(%v): %v", c.args, err)
		}
		if got.json != c.want.json || got.list != c.want.list || got.timing != c.want.timing || got.maxallow != c.want.maxallow {
			t.Errorf("parseFlags(%v) flags = %+v, want %+v", c.args, got, c.want)
		}
		if len(got.dirs) != len(c.want.dirs) {
			t.Fatalf("parseFlags(%v) dirs = %v, want %v", c.args, got.dirs, c.want.dirs)
		}
		for i := range got.dirs {
			if got.dirs[i] != c.want.dirs[i] {
				t.Errorf("parseFlags(%v) dirs = %v, want %v", c.args, got.dirs, c.want.dirs)
			}
		}
		if len(got.checks) != len(c.want.checks) {
			t.Fatalf("parseFlags(%v) checks = %v, want %v", c.args, got.checks, c.want.checks)
		}
		for i := range got.checks {
			if got.checks[i] != c.want.checks[i] {
				t.Errorf("parseFlags(%v) checks = %v, want %v", c.args, got.checks, c.want.checks)
			}
		}
	}
}

// TestParseFlagsUnknownCheck pins the usage error: a typo in -checks must
// not silently run nothing.
func TestParseFlagsUnknownCheck(t *testing.T) {
	var errBuf bytes.Buffer
	if _, err := parseFlags([]string{"-checks", "bogus"}, &errBuf); err == nil {
		t.Fatalf("parseFlags(-checks bogus) = nil error, want unknown-check failure")
	}
	if !strings.Contains(errBuf.String(), "bogus") {
		t.Errorf("usage message does not name the unknown check: %q", errBuf.String())
	}
}

func TestListChecks(t *testing.T) {
	var buf bytes.Buffer
	n, err := run(options{list: true}, ".", &buf, io.Discard)
	if err != nil || n != 0 {
		t.Fatalf("run(-list) = %d, %v", n, err)
	}
	for _, check := range []string{"maprange", "wallclock", "epochwrap", "errcheck", "persistorder", "guardedby", "errlatch"} {
		if !strings.Contains(buf.String(), check) {
			t.Errorf("-list output missing %q:\n%s", check, buf.String())
		}
	}
}

// TestSelectAnalyzers verifies the -checks filter keeps suite order and
// drops everything unrequested.
func TestSelectAnalyzers(t *testing.T) {
	got := selectAnalyzers([]string{"errlatch", "maprange"})
	if len(got) != 2 {
		t.Fatalf("selectAnalyzers kept %d analyzers, want 2", len(got))
	}
	if got[0].Name != "maprange" || got[1].Name != "errlatch" {
		t.Errorf("filter broke suite order: %s, %s", got[0].Name, got[1].Name)
	}
	if all := selectAnalyzers(nil); len(all) != 7 {
		t.Errorf("empty filter kept %d analyzers, want the full suite of 7", len(all))
	}
}

// TestModuleIsClean lints the enclosing module through the CLI path: the
// repository must report zero diagnostics, text and JSON alike.
func TestModuleIsClean(t *testing.T) {
	var buf bytes.Buffer
	n, err := run(options{maxallow: -1, dirs: []string{""}}, ".", &buf, io.Discard)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Fatalf("module has %d diagnostics, want 0:\n%s", n, buf.String())
	}

	buf.Reset()
	n, err = run(options{json: true, maxallow: -1, dirs: []string{""}}, ".", &buf, io.Discard)
	if err != nil || n != 0 {
		t.Fatalf("run(-json) = %d, %v", n, err)
	}
	var diags []jsonDiag
	if err := json.Unmarshal(buf.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(diags) != 0 {
		t.Fatalf("-json reported %d diagnostics, want 0", len(diags))
	}
}

// TestJSONOutputDeterministic runs the module lint twice and demands
// byte-identical -json output: diagnostic order must not depend on map
// iteration or scheduling.
func TestJSONOutputDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := run(options{json: true, maxallow: -1, dirs: []string{""}}, ".", &a, io.Discard); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := run(options{json: true, maxallow: -1, dirs: []string{""}}, ".", &b, io.Discard); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("-json output differs between identical runs:\n--- a ---\n%s\n--- b ---\n%s", a.String(), b.String())
	}
}

// TestSuppressionBudget verifies the -maxallow gate: an impossible budget
// of 0 must fail (the repository has committed suppressions), and a huge
// budget must pass.
func TestSuppressionBudget(t *testing.T) {
	var buf bytes.Buffer
	n, err := run(options{maxallow: 0, dirs: []string{""}}, ".", &buf, io.Discard)
	if err != nil {
		t.Fatalf("run(-maxallow 0): %v", err)
	}
	if n == 0 {
		t.Fatalf("budget of 0 passed; the committed suppressions were not counted")
	}
	if !strings.Contains(buf.String(), "exceed the budget") {
		t.Errorf("budget failure message missing:\n%s", buf.String())
	}

	buf.Reset()
	n, err = run(options{maxallow: 1 << 20, dirs: []string{""}}, ".", &buf, io.Discard)
	if err != nil || n != 0 {
		t.Fatalf("run(-maxallow big) = %d, %v; want clean", n, err)
	}
}

// TestTimingOutput checks -timing emits one line per analyzer on the error
// stream, not mixed into the diagnostics.
func TestTimingOutput(t *testing.T) {
	var out, errw bytes.Buffer
	if _, err := run(options{timing: true, maxallow: -1, dirs: []string{""}}, ".", &out, &errw); err != nil {
		t.Fatalf("run(-timing): %v", err)
	}
	for _, check := range []string{"maprange", "persistorder", "errlatch"} {
		if !strings.Contains(errw.String(), check) {
			t.Errorf("timing output missing %q:\n%s", check, errw.String())
		}
	}
	if strings.Contains(out.String(), "timing") {
		t.Errorf("timing lines leaked into the diagnostics stream:\n%s", out.String())
	}
}
