package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestParseFlags(t *testing.T) {
	cases := []struct {
		args []string
		want options
	}{
		{[]string{"./..."}, options{dirs: []string{""}}},
		{[]string{}, options{dirs: []string{""}}},
		{[]string{"-json", "./internal/omc/..."}, options{json: true, dirs: []string{"internal/omc"}}},
		{[]string{"internal/cst", "cmd/nvlint"}, options{dirs: []string{"internal/cst", "cmd/nvlint"}}},
		{[]string{"-list"}, options{list: true, dirs: []string{""}}},
	}
	for _, c := range cases {
		got, err := parseFlags(c.args, io.Discard)
		if err != nil {
			t.Fatalf("parseFlags(%v): %v", c.args, err)
		}
		if got.json != c.want.json || got.list != c.want.list {
			t.Errorf("parseFlags(%v) flags = %+v, want %+v", c.args, got, c.want)
		}
		if len(got.dirs) != len(c.want.dirs) {
			t.Fatalf("parseFlags(%v) dirs = %v, want %v", c.args, got.dirs, c.want.dirs)
		}
		for i := range got.dirs {
			if got.dirs[i] != c.want.dirs[i] {
				t.Errorf("parseFlags(%v) dirs = %v, want %v", c.args, got.dirs, c.want.dirs)
			}
		}
	}
}

func TestListChecks(t *testing.T) {
	var buf bytes.Buffer
	n, err := run(options{list: true}, ".", &buf)
	if err != nil || n != 0 {
		t.Fatalf("run(-list) = %d, %v", n, err)
	}
	for _, check := range []string{"maprange", "wallclock", "epochwrap", "errcheck"} {
		if !strings.Contains(buf.String(), check) {
			t.Errorf("-list output missing %q:\n%s", check, buf.String())
		}
	}
}

// TestModuleIsClean lints the enclosing module through the CLI path: the
// repository must report zero diagnostics, text and JSON alike.
func TestModuleIsClean(t *testing.T) {
	var buf bytes.Buffer
	n, err := run(options{dirs: []string{""}}, ".", &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Fatalf("module has %d diagnostics, want 0:\n%s", n, buf.String())
	}

	buf.Reset()
	n, err = run(options{json: true, dirs: []string{""}}, ".", &buf)
	if err != nil || n != 0 {
		t.Fatalf("run(-json) = %d, %v", n, err)
	}
	var diags []jsonDiag
	if err := json.Unmarshal(buf.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(diags) != 0 {
		t.Fatalf("-json reported %d diagnostics, want 0", len(diags))
	}
}
