// Command nvlint runs the repository's custom static-analysis suite: the
// determinism, epoch-wrap, and error-handling checks of internal/analysis.
// It is stdlib-only (go/ast + go/types) and loads every non-test package of
// the module, so `nvlint ./...` is the canonical invocation.
//
//	nvlint ./...                 # lint the whole module
//	nvlint ./internal/omc        # restrict reporting to one subtree
//	nvlint -json ./...           # machine-readable output
//	nvlint -list                 # describe the checks
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// options is the parsed command line.
type options struct {
	json bool
	list bool
	dirs []string // package dir filters relative to the module root ("" = all)
}

// parseFlags decodes the command line without touching the process-global
// flag set, so tests can drive it directly.
func parseFlags(args []string, errOut io.Writer) (options, error) {
	fs := flag.NewFlagSet("nvlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	o := options{}
	fs.BoolVar(&o.json, "json", false, "emit diagnostics as a JSON array")
	fs.BoolVar(&o.list, "list", false, "list the checks and exit")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	for _, arg := range fs.Args() {
		switch arg {
		case "./...", "...", ".":
			o.dirs = append(o.dirs, "")
		default:
			dir := strings.TrimSuffix(arg, "/...")
			dir = strings.TrimPrefix(dir, "./")
			o.dirs = append(o.dirs, filepath.ToSlash(filepath.Clean(dir)))
		}
	}
	if len(o.dirs) == 0 {
		o.dirs = []string{""}
	}
	return o, nil
}

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// run loads the module rooted at or above cwd, lints it, and writes the
// diagnostics to w. It returns the number of diagnostics reported.
func run(o options, cwd string, w io.Writer) (int, error) {
	if o.list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(w, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return 0, err
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		return 0, err
	}
	diags := analysis.Run(pkgs, analysis.Analyzers())

	// Restrict reporting to the requested subtrees (everything is always
	// loaded: type-checking needs the whole module anyway).
	var kept []analysis.Diagnostic
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		rel = filepath.ToSlash(rel)
		for _, dir := range o.dirs {
			if dir == "" || rel == dir || strings.HasPrefix(rel, dir+"/") {
				kept = append(kept, d)
				break
			}
		}
	}

	if o.json {
		out := make([]jsonDiag, 0, len(kept))
		for _, d := range kept {
			rel, err := filepath.Rel(root, d.Pos.Filename)
			if err != nil {
				rel = d.Pos.Filename
			}
			out = append(out, jsonDiag{
				File: filepath.ToSlash(rel), Line: d.Pos.Line, Column: d.Pos.Column,
				Check: d.Check, Message: d.Message,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return len(kept), err
		}
		return len(kept), nil
	}
	for _, d := range kept {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", filepath.ToSlash(rel), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	if len(kept) > 0 {
		fmt.Fprintf(w, "nvlint: %d diagnostic(s)\n", len(kept))
	}
	return len(kept), nil
}

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvlint:", err)
		os.Exit(2)
	}
	n, err := run(o, cwd, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvlint:", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}
