// Command nvlint runs the repository's custom static-analysis suite: the
// determinism, epoch-wrap, and error-handling checks of internal/analysis,
// plus the flow-sensitive durability-ordering (persistorder), lock
// discipline (guardedby) and error-latch (errlatch) analyzers built on its
// CFG/dataflow engine. It is stdlib-only (go/ast + go/types) and loads
// every non-test package of the module, so `nvlint ./...` is the canonical
// invocation.
//
//	nvlint ./...                     # lint the whole module
//	nvlint ./internal/omc            # restrict reporting to one subtree
//	nvlint -json ./...               # machine-readable output (sorted, stable)
//	nvlint -list                     # describe the checks
//	nvlint -checks errlatch,guardedby ./...  # run a subset
//	nvlint -timing ./...             # per-analyzer wall time on stderr
//	nvlint -maxallow 25 ./...        # fail when suppressions exceed a budget
//
// Exit status: 0 clean, 1 diagnostics reported (or suppression budget
// exceeded), 2 usage error, 3 load or type-check error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// options is the parsed command line.
type options struct {
	json     bool
	list     bool
	timing   bool
	maxallow int      // suppression budget; negative disables the gate
	checks   []string // analyzer-name filter; empty runs the full suite
	dirs     []string // package dir filters relative to the module root ("" = all)
}

// parseFlags decodes the command line without touching the process-global
// flag set, so tests can drive it directly.
func parseFlags(args []string, errOut io.Writer) (options, error) {
	fs := flag.NewFlagSet("nvlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	o := options{maxallow: -1}
	fs.BoolVar(&o.json, "json", false, "emit diagnostics as a JSON array")
	fs.BoolVar(&o.list, "list", false, "list the checks and exit")
	fs.BoolVar(&o.timing, "timing", false, "report per-analyzer wall time")
	fs.IntVar(&o.maxallow, "maxallow", -1, "fail when //nvlint:allow suppressions exceed this budget (negative disables)")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if *checks != "" {
		known := make(map[string]bool)
		for _, a := range analysis.Analyzers() {
			known[a.Name] = true
		}
		for _, c := range strings.Split(*checks, ",") {
			c = strings.TrimSpace(c)
			if c == "" {
				continue
			}
			if !known[c] {
				fmt.Fprintf(errOut, "nvlint: unknown check %q (see -list)\n", c)
				return options{}, fmt.Errorf("unknown check %q", c)
			}
			o.checks = append(o.checks, c)
		}
	}
	for _, arg := range fs.Args() {
		switch arg {
		case "./...", "...", ".":
			o.dirs = append(o.dirs, "")
		default:
			dir := strings.TrimSuffix(arg, "/...")
			dir = strings.TrimPrefix(dir, "./")
			o.dirs = append(o.dirs, filepath.ToSlash(filepath.Clean(dir)))
		}
	}
	if len(o.dirs) == 0 {
		o.dirs = []string{""}
	}
	return o, nil
}

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// selectAnalyzers applies the -checks filter to the full suite.
func selectAnalyzers(names []string) []*analysis.Analyzer {
	all := analysis.Analyzers()
	if len(names) == 0 {
		return all
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// run loads the module rooted at or above cwd, lints it, and writes the
// diagnostics to w (timings, when requested, go to errw). It returns the
// number of findings reported, counting a blown suppression budget as one.
func run(o options, cwd string, w, errw io.Writer) (int, error) {
	if o.list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(w, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return 0, err
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		return 0, err
	}
	diags, timings := analysis.RunTimed(pkgs, selectAnalyzers(o.checks))
	if o.timing {
		for _, tm := range timings {
			fmt.Fprintf(errw, "nvlint: timing %-12s %s\n", tm.Name, tm.Duration)
		}
	}

	// Restrict reporting to the requested subtrees (everything is always
	// loaded: type-checking needs the whole module anyway).
	var kept []analysis.Diagnostic
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		rel = filepath.ToSlash(rel)
		for _, dir := range o.dirs {
			if dir == "" || rel == dir || strings.HasPrefix(rel, dir+"/") {
				kept = append(kept, d)
				break
			}
		}
	}

	if o.json {
		out := make([]jsonDiag, 0, len(kept))
		for _, d := range kept {
			rel, err := filepath.Rel(root, d.Pos.Filename)
			if err != nil {
				rel = d.Pos.Filename
			}
			out = append(out, jsonDiag{
				File: filepath.ToSlash(rel), Line: d.Pos.Line, Column: d.Pos.Column,
				Check: d.Check, Message: d.Message,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return len(kept), err
		}
		return len(kept), nil
	}
	for _, d := range kept {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", filepath.ToSlash(rel), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	if len(kept) > 0 {
		fmt.Fprintf(w, "nvlint: %d diagnostic(s)\n", len(kept))
	}
	n := len(kept)

	// Suppression budget: the committed baseline may only shrink; growing
	// it is a reviewed decision (bump the number in CI).
	if o.maxallow >= 0 {
		if count := analysis.CountSuppressions(pkgs); count > o.maxallow {
			fmt.Fprintf(w, "nvlint: %d //nvlint:allow suppression(s) exceed the budget of %d; remove one or bump the reviewed baseline\n", count, o.maxallow)
			n++
		}
	}
	return n, nil
}

// Exit codes.
const (
	exitClean = 0 // no findings
	exitFinds = 1 // diagnostics reported or suppression budget exceeded
	exitUsage = 2 // bad flags or arguments
	exitLoad  = 3 // module load or type-check failure
)

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(exitUsage)
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvlint:", err)
		os.Exit(exitUsage)
	}
	n, err := run(o, cwd, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvlint:", err)
		os.Exit(exitLoad)
	}
	if n > 0 {
		os.Exit(exitFinds)
	}
}
