// Command nvsim runs one (workload, scheme) pair through the simulator and
// prints the run summary and counter dump. It is the single-experiment
// companion to cmd/nvbench.
//
// Usage:
//
//	nvsim -scheme NVOverlay -workload btree -scale quick
//	nvsim -scheme PiCL -workload art -accesses 500000 -epoch 5000 -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		scheme   = flag.String("scheme", "NVOverlay", "scheme: Ideal, SWLog, SWShadow, HWShadow, PiCL, PiCL-L2, NVOverlay")
		wl       = flag.String("workload", "btree", "workload: "+strings.Join(workload.Names(), ", "))
		scale    = flag.String("scale", "quick", "run scale: smoke, quick, full")
		accesses = flag.Uint64("accesses", 0, "override the scale's access budget")
		epoch    = flag.Int("epoch", 0, "override the scale's epoch size (stores)")
		walker   = flag.Bool("walker", true, "enable the tag walker")
		buffer   = flag.Bool("buffer", false, "enable the OMC buffer (NVOverlay)")
		seed     = flag.Int64("seed", 42, "workload PRNG seed")
		stats    = flag.Bool("stats", false, "dump all counters")
	)
	flag.Parse()

	sc, err := scaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	if *accesses > 0 {
		sc.MaxAccesses = *accesses
	}
	res, err := experiments.Run(*scheme, *wl, sc, func(c *sim.Config) {
		if *epoch > 0 {
			c.EpochSize = *epoch
		}
		c.TagWalker = *walker
		c.OMCBuffer = *buffer
		c.Seed = *seed
	})
	if err != nil {
		fatal(err)
	}

	s := res.Sum
	fmt.Printf("scheme    %s\n", s.Scheme)
	fmt.Printf("workload  %s\n", s.Workload)
	fmt.Printf("cycles    %d\n", s.Cycles)
	fmt.Printf("accesses  %d (%d stores, %d ops)\n", s.Accesses, s.Stores, s.Ops)
	fmt.Printf("footprint %.2f MB\n", float64(s.Footprint)/(1<<20))
	fmt.Printf("nvm bytes %d (data %d, log %d, meta %d, context %d)\n",
		s.NVMBytes, s.DataBytes, s.LogBytes, s.MetaBytes, s.CtxBytes)
	if s.Stores > 0 {
		fmt.Printf("write amp %.2f NVM bytes per stored byte (store = 8 B)\n",
			float64(s.NVMBytes)/float64(s.Stores*8))
	}
	nvm := res.Scheme.NVM()
	fmt.Printf("nvm wear  max %d writes/page over %d pages\n", nvm.MaxWear(), nvm.PagesTouched())
	fmt.Printf("bandwidth %s\n", nvm.Series().Sparkline())
	if *stats {
		fmt.Println("\ncounters:")
		fmt.Print(res.Scheme.Stats().Dump("  "))
	}
}

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "smoke":
		return experiments.Smoke, nil
	case "quick":
		return experiments.Quick, nil
	case "full":
		return experiments.Full, nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (smoke, quick, full)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvsim:", err)
	os.Exit(1)
}
