// Command nvsim runs one (workload, scheme) pair through the simulator and
// prints the run summary and counter dump. It is the single-experiment
// companion to cmd/nvbench.
//
// Usage:
//
//	nvsim -scheme NVOverlay -workload btree -scale quick
//	nvsim -scheme PiCL -workload art -accesses 500000 -epoch 5000 -stats
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// options is the parsed command line.
type options struct {
	scheme   string
	wl       string
	scale    string
	accesses uint64
	epoch    int
	walker   bool
	buffer   bool
	seed     int64
	stats    bool
	events   string
	timeline bool
	store    string
}

// parseFlags decodes the command line without touching the process-global
// flag set, so tests can drive it directly.
func parseFlags(args []string, errOut io.Writer) (options, error) {
	fs := flag.NewFlagSet("nvsim", flag.ContinueOnError)
	fs.SetOutput(errOut)
	o := options{}
	fs.StringVar(&o.scheme, "scheme", "NVOverlay", "scheme: Ideal, SWLog, SWShadow, HWShadow, PiCL, PiCL-L2, NVOverlay")
	fs.StringVar(&o.wl, "workload", "btree", "workload: "+strings.Join(workload.Names(), ", "))
	fs.StringVar(&o.scale, "scale", "quick", "run scale: smoke, quick, full")
	fs.Uint64Var(&o.accesses, "accesses", 0, "override the scale's access budget")
	fs.IntVar(&o.epoch, "epoch", 0, "override the scale's epoch size (stores)")
	fs.BoolVar(&o.walker, "walker", true, "enable the tag walker")
	fs.BoolVar(&o.buffer, "buffer", false, "enable the OMC buffer (NVOverlay)")
	fs.Int64Var(&o.seed, "seed", 42, "workload PRNG seed")
	fs.BoolVar(&o.stats, "stats", false, "dump all counters")
	fs.StringVar(&o.events, "events", "", "write the run's JSONL event stream to this file")
	fs.BoolVar(&o.timeline, "timeline", false, "print the per-epoch rollup timeline")
	fs.StringVar(&o.store, "store", "", "back the NVM content plane with a file store in this fresh directory (salvage later with nvrecover -store)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	return o, nil
}

// run executes one experiment and writes the summary to w.
func run(o options, w io.Writer) error {
	sc, err := scaleByName(o.scale)
	if err != nil {
		return err
	}
	if o.accesses > 0 {
		sc.MaxAccesses = o.accesses
	}
	// The observability bus only exists when a consumer asked for it, so
	// unobserved runs keep the nil-bus fast path.
	var bus *obs.Bus
	var agg *obs.Aggregator
	var evbuf bytes.Buffer
	if o.events != "" || o.timeline {
		bus = obs.NewBus(0)
		agg = obs.NewAggregator()
		bus.Attach(agg)
		if o.events != "" {
			bus.Attach(obs.NewJSONLSink(&evbuf, ""))
		}
	}
	res, err := experiments.Run(o.scheme, o.wl, sc, func(c *sim.Config) {
		if o.epoch > 0 {
			c.EpochSize = o.epoch
		}
		c.TagWalker = o.walker
		c.OMCBuffer = o.buffer
		c.Seed = o.seed
		c.Obs = bus
		c.StoreDir = o.store
	})
	if err != nil {
		return err
	}
	if o.store != "" {
		// Flush and close the durable store; a swallowed write error here
		// would undermine every durability claim the directory makes.
		if err := res.Scheme.NVM().ClosePlane(); err != nil {
			return fmt.Errorf("closing store %s: %w", o.store, err)
		}
		fmt.Fprintf(w, "store     %s (salvage with: nvrecover -store %s)\n", o.store, o.store)
	}

	s := res.Sum
	fmt.Fprintf(w, "scheme    %s\n", s.Scheme)
	fmt.Fprintf(w, "workload  %s\n", s.Workload)
	fmt.Fprintf(w, "cycles    %d\n", s.Cycles)
	fmt.Fprintf(w, "accesses  %d (%d stores, %d ops)\n", s.Accesses, s.Stores, s.Ops)
	fmt.Fprintf(w, "footprint %.2f MB\n", float64(s.Footprint)/(1<<20))
	fmt.Fprintf(w, "nvm bytes %d (data %d, log %d, meta %d, context %d)\n",
		s.NVMBytes, s.DataBytes, s.LogBytes, s.MetaBytes, s.CtxBytes)
	if s.Stores > 0 {
		fmt.Fprintf(w, "write amp %.2f NVM bytes per stored byte (store = 8 B)\n",
			float64(s.NVMBytes)/float64(s.Stores*8))
	}
	nvm := res.Scheme.NVM()
	fmt.Fprintf(w, "nvm wear  max %d writes/page over %d pages\n", nvm.MaxWear(), nvm.PagesTouched())
	fmt.Fprintf(w, "bandwidth %s\n", nvm.Series().Sparkline())
	if o.stats {
		fmt.Fprintln(w, "\ncounters:")
		fmt.Fprint(w, res.Scheme.Stats().Dump("  "))
	}
	if o.timeline {
		cell := experiments.TimelineCell{Scheme: o.scheme, Workload: o.wl,
			Emitted: bus.Emitted(), Rolls: agg.Timeline(),
			BankDepth: agg.BankDepth, WalkSpan: agg.WalkSpan}
		experiments.PrintTimeline(w, []experiments.TimelineCell{cell})
	}
	if o.events != "" {
		if err := os.WriteFile(o.events, evbuf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("writing event stream: %w", err)
		}
		fmt.Fprintf(w, "events    %d written to %s\n", bus.Emitted(), o.events)
	}
	return nil
}

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "smoke":
		return experiments.Smoke, nil
	case "quick":
		return experiments.Quick, nil
	case "full":
		return experiments.Full, nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (smoke, quick, full)", name)
	}
}

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvsim:", err)
		os.Exit(2)
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nvsim:", err)
		os.Exit(1)
	}
}
