package main

import (
	"io"
	"strings"
	"testing"
)

// TestSmokeRun drives the full experiment path at smoke scale and checks
// the key summary lines appear.
func TestSmokeRun(t *testing.T) {
	o, err := parseFlags([]string{"-scale", "smoke", "-scheme", "NVOverlay", "-workload", "btree"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(o, &out); err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"scheme    NVOverlay",
		"workload  btree",
		"cycles    ",
		"accesses  ",
		"footprint ",
		"nvm bytes ",
		"write amp ",
		"nvm wear  ",
		"bandwidth ",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestStatsDump checks -stats appends the counter dump.
func TestStatsDump(t *testing.T) {
	o, err := parseFlags([]string{"-scale", "smoke", "-scheme", "PiCL", "-stats", "-accesses", "20000"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(o, &out); err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "scheme    PiCL") {
		t.Errorf("output missing PiCL summary:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "counters:") {
		t.Errorf("-stats did not dump counters:\n%s", out.String())
	}
}

// TestErrors checks parse- and run-time failure modes surface as errors
// rather than exits, so main can map them to status codes.
func TestErrors(t *testing.T) {
	if _, err := parseFlags([]string{"-bogus"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, err := parseFlags([]string{"stray"}, io.Discard); err == nil {
		t.Error("positional argument accepted")
	}
	o, err := parseFlags([]string{"-scale", "nope"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, io.Discard); err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Errorf("bad scale: got %v, want unknown scale error", err)
	}
	o, err = parseFlags([]string{"-scale", "smoke", "-scheme", "NoSuchScheme"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, io.Discard); err == nil {
		t.Error("unknown scheme accepted")
	}
	o, err = parseFlags([]string{"-scale", "smoke", "-workload", "nope"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, io.Discard); err == nil {
		t.Error("unknown workload accepted")
	}
}
