package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable2IdealSubstrate 	       5	  22984768 ns/op	    150045 accesses/op	 2395340 B/op	     599 allocs/op
BenchmarkFileSeal-4           	       5	  73655328 ns/op	        50.04 bytes/burst	 6000025 B/op	   60437 allocs/op
PASS
ok  	repro	0.800s
`

func writeFiles(t *testing.T, baseline string) (benchPath, basePath string) {
	t.Helper()
	dir := t.TempDir()
	benchPath = filepath.Join(dir, "bench.txt")
	basePath = filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(benchPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	return benchPath, basePath
}

func TestGatePassesWithinTolerance(t *testing.T) {
	bench, base := writeFiles(t, `{"gate": {"tolerance_pct": 15, "benchmarks": {
		"BenchmarkTable2IdealSubstrate": {"ns_per_op": 23000000, "allocs_per_op": 600},
		"BenchmarkFileSeal": {"ns_per_op": 70000000, "allocs_per_op": 60000}}}}`)
	if err := run(bench, base, 0); err != nil {
		t.Fatalf("gate failed within tolerance: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	// Baseline far below the measured numbers: both metrics regressed.
	bench, base := writeFiles(t, `{"gate": {"tolerance_pct": 15, "benchmarks": {
		"BenchmarkTable2IdealSubstrate": {"ns_per_op": 10000000, "allocs_per_op": 100}}}}`)
	if err := run(bench, base, 0); err == nil {
		t.Fatal("gate passed a 2x ns/op and 6x allocs/op regression")
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	bench, base := writeFiles(t, `{"gate": {"tolerance_pct": 15, "benchmarks": {
		"BenchmarkNotRun": {"ns_per_op": 1000, "allocs_per_op": 10}}}}`)
	if err := run(bench, base, 0); err == nil {
		t.Fatal("gate passed with a gated benchmark missing from the output")
	}
}

func TestGateFailsWithoutBenchmem(t *testing.T) {
	// Bench output without allocs/op columns (no -benchmem): the allocs
	// gate must fail loudly, not compare against an implicit zero.
	dir := t.TempDir()
	bench := filepath.Join(dir, "bench.txt")
	base := filepath.Join(dir, "baseline.json")
	noMem := "BenchmarkTable2IdealSubstrate \t 5 \t 22984768 ns/op\n"
	if err := os.WriteFile(bench, []byte(noMem), 0o644); err != nil {
		t.Fatal(err)
	}
	js := `{"gate": {"tolerance_pct": 15, "benchmarks": {
		"BenchmarkTable2IdealSubstrate": {"ns_per_op": 23000000, "allocs_per_op": 600}}}}`
	if err := os.WriteFile(base, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bench, base, 0); err == nil {
		t.Fatal("gate passed with allocs/op gated but absent from the output")
	}
}

func TestGateRequiresGateSection(t *testing.T) {
	bench, base := writeFiles(t, `{"description": "no gate here"}`)
	if err := run(bench, base, 0); err == nil {
		t.Fatal("gate passed a baseline without a gate section")
	}
}

func TestParseBenchStripsSuffixAndIgnoresCustomUnits(t *testing.T) {
	bench, _ := writeFiles(t, `{}`)
	f, err := os.Open(bench)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := parseBench(f)
	if err != nil {
		t.Fatal(err)
	}
	seal, ok := m["BenchmarkFileSeal"] // -4 suffix stripped
	if !ok {
		t.Fatalf("FileSeal missing: %v", m)
	}
	if seal.NsPerOp != 73655328 || seal.AllocsPerOp != 60437 {
		t.Fatalf("FileSeal metrics %+v", seal)
	}
	if m["BenchmarkTable2IdealSubstrate"].AllocsPerOp != 599 {
		t.Fatalf("Table2 metrics %+v", m["BenchmarkTable2IdealSubstrate"])
	}
}
