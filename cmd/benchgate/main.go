// Command benchgate is CI's performance regression gate: it parses `go test
// -bench` output and compares ns/op and allocs/op for every benchmark the
// committed baseline (BENCH_baseline.json, "gate" section) covers. A metric
// more than the tolerance above its baseline fails the build; a metric well
// below it prints a note suggesting the baseline be ratcheted down.
//
// Usage:
//
//	go test -run='^$' -bench='Table2|FileSeal' -benchtime=5x -benchmem . | tee bench.txt
//	go run ./cmd/benchgate -bench bench.txt -baseline BENCH_baseline.json
//
// allocs/op is iteration-count independent and compares exactly across
// hosts; ns/op is wall-clock, so the default tolerance is generous and the
// baseline records the host it was captured on.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// gateBaseline is the "gate" section of BENCH_baseline.json.
type gateBaseline struct {
	Description  string                 `json:"description"`
	TolerancePct float64                `json:"tolerance_pct"`
	Host         map[string]any         `json:"host"`
	Benchmarks   map[string]gateMetrics `json:"benchmarks"`
}

// gateMetrics are the gated metrics of one benchmark.
type gateMetrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	// hasAllocs records whether the bench output actually carried an
	// allocs/op column; without it a run missing -benchmem would compare
	// the baseline against an implicit 0 and "pass" half the gate.
	hasAllocs bool
}

// baselineFile is the subset of BENCH_baseline.json benchgate reads.
type baselineFile struct {
	Gate *gateBaseline `json:"gate"`
}

func main() {
	benchPath := flag.String("bench", "", "go test -bench output to check")
	basePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline with a 'gate' section")
	tol := flag.Float64("tol", 0, "regression tolerance in percent (0: the baseline's tolerance_pct)")
	flag.Parse()
	if *benchPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -bench is required")
		os.Exit(2)
	}
	if err := run(*benchPath, *basePath, *tol); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(benchPath, basePath string, tol float64) error {
	raw, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	// baselineFile only declares the gate field, so the rest of the (large)
	// baseline document is skipped during decoding.
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", basePath, err)
	}
	if base.Gate == nil || len(base.Gate.Benchmarks) == 0 {
		return fmt.Errorf("%s has no gate section", basePath)
	}
	if tol == 0 {
		tol = base.Gate.TolerancePct
	}
	if tol <= 0 {
		return fmt.Errorf("no tolerance: pass -tol or set gate.tolerance_pct")
	}

	bf, err := os.Open(benchPath)
	if err != nil {
		return err
	}
	defer bf.Close()
	measured, err := parseBench(bf)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(base.Gate.Benchmarks))
	for name := range base.Gate.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		want := base.Gate.Benchmarks[name]
		got, ok := measured[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: gated benchmark missing from %s", name, benchPath))
			continue
		}
		check := func(metric string, cur, limit float64) {
			if limit <= 0 {
				return
			}
			pct := 100 * (cur - limit) / limit
			switch {
			case pct > tol:
				failures = append(failures, fmt.Sprintf("%s %s regressed %.1f%% (%.0f vs baseline %.0f, tolerance %.0f%%)",
					name, metric, pct, cur, limit, tol))
			case pct < -tol:
				fmt.Printf("note: %s %s improved %.1f%% (%.0f vs baseline %.0f) — consider ratcheting the baseline\n",
					name, metric, -pct, cur, limit)
			default:
				fmt.Printf("ok: %s %s within %.1f%% of baseline (%.0f vs %.0f)\n", name, metric, pct, cur, limit)
			}
		}
		check("ns/op", got.NsPerOp, want.NsPerOp)
		if want.AllocsPerOp > 0 && !got.hasAllocs {
			failures = append(failures, fmt.Sprintf("%s: allocs/op gated but missing from %s (run go test with -benchmem)", name, benchPath))
			continue
		}
		check("allocs/op", got.AllocsPerOp, want.AllocsPerOp)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%", len(failures), tol)
	}
	fmt.Printf("benchgate: %d benchmark(s) within tolerance\n", len(base.Gate.Benchmarks))
	return nil
}

// parseBench extracts per-benchmark metrics from `go test -bench` output.
// Lines look like:
//
//	BenchmarkFileSeal-4   5   20406283 ns/op   152 files   1234 B/op   56 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so baselines match across runners;
// custom ReportMetric units other than ns/op and allocs/op are ignored.
func parseBench(f *os.File) (map[string]gateMetrics, error) {
	out := make(map[string]gateMetrics)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := out[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
				m.hasAllocs = true
			}
		}
		out[name] = m
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return out, nil
}
