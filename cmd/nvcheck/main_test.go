package main

import (
	"io"
	"strings"
	"testing"
)

func TestSweepMode(t *testing.T) {
	o, err := parseFlags([]string{"-traces", "6", "-every", "3", "-seed", "11"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.single {
		t.Fatal("sweep flags triggered single-trace mode")
	}
	var out strings.Builder
	if err := run(o, &out); err != nil {
		t.Fatalf("sweep failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"3/6 traces ok", "6/6 traces ok", "0 divergences in 6 traces"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestSingleTraceMode(t *testing.T) {
	args := strings.Fields("-seed 7 -cores 4 -vdcores 2 -steps 900 -lines 64 -share 60 -write 50 -epoch 10 -pattern uniform -omcs 2 -crash 3 -wrap -wrapwidth 5")
	o, err := parseFlags(args, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !o.single {
		t.Fatal("explicit trace flags did not trigger single-trace mode")
	}
	if o.p.Seed != 7 || !o.p.Wrap || o.p.WrapWidth != 5 || !o.p.Walker {
		t.Fatalf("params misparsed: %+v", o.p)
	}
	var out strings.Builder
	if err := run(o, &out); err != nil {
		t.Fatalf("single trace failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"trace ok:", "wrap-flushes=", "0 divergences in 1 trace"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestParseFlagErrors(t *testing.T) {
	if _, err := parseFlags([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if _, err := parseFlags([]string{"stray"}, io.Discard); err == nil {
		t.Fatal("positional argument accepted")
	}
	// Explicit trace params are validated at parse time in single mode.
	if _, err := parseFlags([]string{"-cores", "4", "-vdcores", "3"}, io.Discard); err == nil {
		t.Fatal("invalid trace params accepted")
	}
}
