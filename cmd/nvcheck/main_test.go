package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestSweepMode(t *testing.T) {
	o, err := parseFlags([]string{"-traces", "6", "-every", "3", "-seed", "11"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.single {
		t.Fatal("sweep flags triggered single-trace mode")
	}
	var out strings.Builder
	if err := run(context.Background(), o, &out); err != nil {
		t.Fatalf("sweep failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"3/6 traces ok", "6/6 traces ok", "0 divergences in 6 traces"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestSingleTraceMode(t *testing.T) {
	args := strings.Fields("-seed 7 -cores 4 -vdcores 2 -steps 900 -lines 64 -share 60 -write 50 -epoch 10 -pattern uniform -omcs 2 -crash 3 -wrap -wrapwidth 5")
	o, err := parseFlags(args, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !o.single {
		t.Fatal("explicit trace flags did not trigger single-trace mode")
	}
	if o.p.Seed != 7 || !o.p.Wrap || o.p.WrapWidth != 5 || !o.p.Walker {
		t.Fatalf("params misparsed: %+v", o.p)
	}
	var out strings.Builder
	if err := run(context.Background(), o, &out); err != nil {
		t.Fatalf("single trace failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"trace ok:", "wrap-flushes=", "0 divergences in 1 trace"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestSingleFaultedTrace(t *testing.T) {
	args := strings.Fields("-seed 3 -cores 4 -vdcores 2 -steps 600 -lines 48 -share 30 -write 60 -epoch 12 -pattern uniform -omcs 2 -crash 8 -fault torn")
	o, err := parseFlags(args, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !o.single || o.p.Fault != "torn" {
		t.Fatalf("fault flag misparsed: %+v", o.p)
	}
	var out strings.Builder
	if err := run(context.Background(), o, &out); err != nil {
		t.Fatalf("faulted trace failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"faulted trace ok:", "faults injected", "0 divergences in 1 trace"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestFaultSoakMode(t *testing.T) {
	o, err := parseFlags([]string{"-faults", "-fclasses", "torn,loss", "-fseeds", "2", "-seed", "5"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(context.Background(), o, &out); err != nil {
		t.Fatalf("fault soak failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"class torn ok", "class loss ok", "fault soak: 4 regimes", "0 silent corruptions"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestDiskFaultSoakMode drives the -diskfaults grid end to end: every
// configured class must pass its salvage-or-refuse sweep and the tally line
// must report zero silent corruptions.
func TestDiskFaultSoakMode(t *testing.T) {
	o, err := parseFlags([]string{"-diskfaults", "-dclasses", "crash,fsyncgate", "-dseeds", "2", "-dcuts", "3", "-seed", "5", "-j", "4"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(context.Background(), o, &out); err != nil {
		t.Fatalf("disk-fault soak failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"disk class crash ok", "disk class fsyncgate ok",
		"disk-fault soak: 4 regimes", "0 silent corruptions"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestDiskFaultSoakInterrupt: a cancelled disk-fault soak flushes its
// partial tally and exits non-zero.
func TestDiskFaultSoakInterrupt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o, err := parseFlags([]string{"-diskfaults", "-dclasses", "crash", "-dseeds", "1", "-dcuts", "2"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(ctx, o, &out); err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("interrupted disk-fault soak must error, got %v", err)
	}
	if !strings.Contains(out.String(), "disk-fault soak: 0 regimes") {
		t.Fatalf("partial tally not flushed:\n%s", out.String())
	}
}

// TestInterruptFlushesPartialResults: a cancelled soak must flush its tally
// so far and exit non-zero rather than vanishing mid-run.
func TestInterruptFlushesPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // interrupt before the first regime

	o, err := parseFlags([]string{"-faults", "-fclasses", "torn", "-fseeds", "1"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(ctx, o, &out); err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("interrupted fault soak must error, got %v", err)
	}
	if !strings.Contains(out.String(), "fault soak: 0 regimes") {
		t.Fatalf("partial tally not flushed:\n%s", out.String())
	}

	o, err = parseFlags([]string{"-traces", "4"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(ctx, o, &out); err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("interrupted sweep must error, got %v", err)
	}
	if !strings.Contains(out.String(), "interrupted: 0/4 traces ok") {
		t.Fatalf("partial tally not flushed:\n%s", out.String())
	}
}

// TestEventsCapture drives -events end to end for both single-trace modes:
// the captured stream must pass the schema validator, and -validate-events
// must accept the file it just wrote.
func TestEventsCapture(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.jsonl")
	args := strings.Fields("-seed 7 -cores 4 -vdcores 2 -steps 600 -lines 48 -share 40 -write 50 -epoch 10 -pattern uniform -omcs 2 -crash 2")
	o, err := parseFlags(append(args, "-events", plain), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !o.single {
		t.Fatal("-events did not trigger single-trace mode")
	}
	var out strings.Builder
	if err := run(context.Background(), o, &out); err != nil {
		t.Fatalf("observed trace failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "events: ") {
		t.Fatalf("events line missing:\n%s", out.String())
	}
	data, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := obs.ValidateJSONL(bytes.NewReader(data)); err != nil || n == 0 {
		t.Fatalf("captured stream invalid (%d lines): %v", n, err)
	}

	faulted := filepath.Join(dir, "faulted.jsonl")
	fargs := strings.Fields("-seed 3 -cores 4 -vdcores 2 -steps 400 -lines 48 -share 30 -write 60 -epoch 12 -pattern uniform -omcs 2 -crash 3 -fault torn")
	o, err = parseFlags(append(fargs, "-events", faulted), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(context.Background(), o, &out); err != nil {
		t.Fatalf("observed faulted trace failed: %v\n%s", err, out.String())
	}
	fdata, err := os.ReadFile(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(fdata, []byte(`"kind":"fault"`)) ||
		!bytes.Contains(fdata, []byte(`"kind":"salvage"`)) {
		t.Fatal("faulted stream carries no fault/salvage events")
	}

	// -validate-events accepts what -events wrote and rejects garbage.
	o, err = parseFlags([]string{"-validate-events", faulted}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(context.Background(), o, &out); err != nil {
		t.Fatalf("-validate-events rejected a captured stream: %v", err)
	}
	if !strings.Contains(out.String(), "events ok") {
		t.Fatalf("validation summary missing:\n%s", out.String())
	}
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"seq\":1,\"cycle\":0,\"kind\":\"fault\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	o, err = parseFlags([]string{"-validate-events", bad}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), o, io.Discard); err == nil {
		t.Fatal("-validate-events accepted a malformed stream")
	}
}

func TestParseFlagErrors(t *testing.T) {
	if _, err := parseFlags([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if _, err := parseFlags([]string{"stray"}, io.Discard); err == nil {
		t.Fatal("positional argument accepted")
	}
	// Explicit trace params are validated at parse time in single mode.
	if _, err := parseFlags([]string{"-cores", "4", "-vdcores", "3"}, io.Discard); err == nil {
		t.Fatal("invalid trace params accepted")
	}
	if _, err := parseFlags([]string{"-fault", "melt"}, io.Discard); err == nil {
		t.Fatal("unknown fault class accepted")
	}
	if _, err := parseFlags([]string{"-faults", "-fclasses", "torn,melt"}, io.Discard); err == nil {
		t.Fatal("unknown soak class accepted")
	}
	if _, err := parseFlags([]string{"-faults", "-fseeds", "0"}, io.Discard); err == nil {
		t.Fatal("zero fseeds accepted")
	}
	if _, err := parseFlags([]string{"-faults", "-cores", "4"}, io.Discard); err == nil {
		t.Fatal("-faults combined with single-trace flags accepted")
	}
	if _, err := parseFlags([]string{"-faults", "-events", "x.jsonl"}, io.Discard); err == nil {
		t.Fatal("-faults combined with -events accepted")
	}
	if _, err := parseFlags([]string{"-validate-events", "x.jsonl", "-cores", "4"}, io.Discard); err == nil {
		t.Fatal("-validate-events combined with trace flags accepted")
	}
	if _, err := parseFlags([]string{"-diskfaults", "-dclasses", "eio,melt"}, io.Discard); err == nil {
		t.Fatal("unknown disk fault class accepted")
	}
	if _, err := parseFlags([]string{"-diskfaults", "-dseeds", "0"}, io.Discard); err == nil {
		t.Fatal("zero dseeds accepted")
	}
	if _, err := parseFlags([]string{"-diskfaults", "-dcuts", "0"}, io.Discard); err == nil {
		t.Fatal("zero dcuts accepted")
	}
	if _, err := parseFlags([]string{"-diskfaults", "-faults"}, io.Discard); err == nil {
		t.Fatal("-diskfaults combined with -faults accepted")
	}
	if _, err := parseFlags([]string{"-diskfaults", "-crashsoak"}, io.Discard); err == nil {
		t.Fatal("-diskfaults combined with -crashsoak accepted")
	}
	if _, err := parseFlags([]string{"-diskfaults", "-cores", "4"}, io.Discard); err == nil {
		t.Fatal("-diskfaults combined with single-trace flags accepted")
	}
	if _, err := parseFlags([]string{"-replay", "x.trc", "-cores", "4"}, io.Discard); err == nil {
		t.Fatal("-replay combined with trace flags accepted")
	}
	if _, err := parseFlags([]string{"-replay", "x.trc", "-record", "y.trc"}, io.Discard); err == nil {
		t.Fatal("-replay combined with -record accepted")
	}
	if _, err := parseFlags([]string{"-record", "x.trc", "-fault", "torn"}, io.Discard); err == nil {
		t.Fatal("-record combined with a fault regime accepted")
	}
	if _, err := parseFlags([]string{"-record", "x.trc", "-events", "e.jsonl"}, io.Discard); err == nil {
		t.Fatal("-record combined with -events accepted")
	}
}

// TestRecordReplayModes drives the full CLI loop: record a single trace to
// a file, verify the recording run cross-checks file vs memory, then
// replay the same file standalone.
func TestRecordReplayModes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.trc")
	args := strings.Fields("-seed 7 -cores 4 -vdcores 2 -steps 900 -lines 64 -share 60 -write 50 -epoch 10 -pattern uniform -omcs 2 -crash 3")
	o, err := parseFlags(append(args, "-record", path), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !o.single {
		t.Fatal("-record did not imply single-trace mode")
	}
	var out strings.Builder
	if err := run(context.Background(), o, &out); err != nil {
		t.Fatalf("record run failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"recorded 900 accesses", "trace ok:", "file replay matches the in-memory run"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("record output missing %q:\n%s", want, out.String())
		}
	}

	ro, err := parseFlags([]string{"-replay", path}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var rout strings.Builder
	if err := run(context.Background(), ro, &rout); err != nil {
		t.Fatalf("replay run failed: %v\n%s", err, rout.String())
	}
	for _, want := range []string{"replaying " + path, "-seed 7", "trace ok:", "0 divergences in 1 replayed trace"} {
		if !strings.Contains(rout.String(), want) {
			t.Fatalf("replay output missing %q:\n%s", want, rout.String())
		}
	}

	// A missing file fails loudly.
	bad, err := parseFlags([]string{"-replay", filepath.Join(t.TempDir(), "nope.trc")}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), bad, io.Discard); err == nil {
		t.Fatal("missing trace file replayed cleanly")
	}
}
