// Command nvcheck runs the differential verification harness outside the
// test suite: long soak sweeps over the regime rotation, fault-injection
// soaks over the crash-point x fault-class grid, or a single fully
// specified trace (the mode every divergence reproducer uses). Exit status
// is non-zero when any trace diverges from the golden model, and soak runs
// flush their partial tallies before exiting when interrupted.
//
//	nvcheck -traces 5000 -seed 1           # soak: 5000 traces over the rotation
//	nvcheck -seed 17 -cores 4 -steps 1400  # single trace, explicit parameters
//	nvcheck -faults -fseeds 4              # fault soak: classes x seeds x crash points
//	nvcheck -seed 3 -fault torn -crash 8   # single faulted trace (reproducer mode)
//	nvcheck -seed 17 -events ev.jsonl      # single trace + its JSONL event stream
//	nvcheck -validate-events ev.jsonl      # schema-check a captured stream
//	nvcheck -crashsoak -loops 30           # kill -9 crash-restart soak on a file store
//	nvcheck -diskfaults -dseeds 3          # disk-fault soak: classes x seeds x crash cuts
//
// The crash soak is the one mode that leaves the process: each loop
// re-execs this binary as a child writer streaming epochs into a
// file-backed durable store, SIGKILLs it at a seeded milestone, then
// cold-salvages the directory in the parent and diffs the restored image
// against the golden model. Failures archive their salvage reports under
// -reports for CI artifact upload.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"syscall"
	"time"

	"repro/internal/diffcheck"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/soak"
)

// options is the parsed command line.
type options struct {
	traces   int
	seed     int64
	every    int
	jobs     int              // sweep workers; output is identical for every value
	faults   bool             // fault-soak mode: sweep the fault grid
	classes  string           // comma-separated fault classes for the soak
	fseeds   int              // seeds per fault class in the soak
	single   bool             // an explicit per-trace flag switches to single-trace mode
	p        diffcheck.Params // single-trace parameters
	events   string           // capture the single trace's JSONL event stream here
	timeline bool             // print the single trace's per-epoch rollup timeline
	vevents  string           // standalone mode: schema-check this JSONL file and exit
	record   string           // record the single trace to this TRC1 file, then cross-check the file replay
	replay   string           // standalone mode: replay a recorded TRC1 trace file

	crashsoak bool   // kill -9 crash-restart soak over a file-backed store
	loops     int    // crash-soak iterations
	store     string // crash-soak store base directory ("": a temp dir)
	reports   string // where failing salvage reports are archived

	diskfaults bool   // disk-fault soak: classes x seeds x crash cuts over an in-memory store
	dclasses   string // comma-separated disk fault classes
	dseeds     int    // seeds per disk fault class
	dcuts      int    // crash cut points per (class, seed) regime

	cpuProfile string // write a CPU profile here
	memProfile string // write a heap profile here at exit
	traceOut   string // write a runtime execution trace here
}

// traceFlags are the per-trace parameter flags; setting any of them runs
// one explicit trace instead of the regime sweep.
var traceFlags = map[string]bool{
	"cores": true, "vdcores": true, "steps": true, "lines": true,
	"share": true, "write": true, "epoch": true, "pattern": true,
	"omcs": true, "crash": true, "nowalker": true, "buffer": true,
	"wrap": true, "wrapwidth": true, "fault": true,
}

// parseFlags decodes the command line without touching the process-global
// flag set, so tests can drive it directly.
func parseFlags(args []string, errOut io.Writer) (options, error) {
	fs := flag.NewFlagSet("nvcheck", flag.ContinueOnError)
	fs.SetOutput(errOut)
	o := options{}
	fs.IntVar(&o.traces, "traces", 600, "traces to sweep across the regime rotation")
	fs.Int64Var(&o.seed, "seed", 1, "base seed (sweep) or trace seed (single mode)")
	fs.IntVar(&o.every, "every", 100, "print progress every N traces")
	fs.IntVar(&o.jobs, "j", 0, "sweep workers; verdicts and output are identical for every value (0: GOMAXPROCS, 1: serial)")
	fs.BoolVar(&o.faults, "faults", false, "fault soak: sweep fault classes x seeds x crash points")
	fs.StringVar(&o.classes, "fclasses", "torn,flip,loss,nak,all", "fault classes for the -faults soak")
	fs.IntVar(&o.fseeds, "fseeds", 4, "seeds per fault class in the -faults soak")
	fs.StringVar(&o.events, "events", "", "write the single trace's JSONL event stream to this file (implies single-trace mode)")
	fs.BoolVar(&o.timeline, "timeline", false, "print the single trace's per-epoch rollup timeline (implies single-trace mode)")
	fs.StringVar(&o.vevents, "validate-events", "", "schema-check a captured JSONL event stream and exit")
	fs.StringVar(&o.record, "record", "", "record the single trace to this TRC1 file, then verify the file replay matches the in-memory run (implies single-trace mode)")
	fs.StringVar(&o.replay, "replay", "", "replay a recorded TRC1 trace file through the differential harness (standalone mode)")
	fs.BoolVar(&o.crashsoak, "crashsoak", false, "crash-restart soak: re-exec child writers onto a file store, kill -9, salvage, diff")
	fs.IntVar(&o.loops, "loops", 30, "crash-soak iterations")
	fs.StringVar(&o.store, "store", "", "crash-soak store base directory (default: a temp dir, removed afterwards)")
	fs.StringVar(&o.reports, "reports", "crash-reports", "directory for salvage reports of failing crash-soak loops")
	fs.BoolVar(&o.diskfaults, "diskfaults", false, "disk-fault soak: sweep disk fault classes x seeds x crash cuts over a fault-injecting in-memory store")
	fs.StringVar(&o.dclasses, "dclasses", strings.Join(fault.DiskClasses, ","), "disk fault classes for the -diskfaults soak")
	fs.IntVar(&o.dseeds, "dseeds", 3, "seeds per disk fault class in the -diskfaults soak")
	fs.IntVar(&o.dcuts, "dcuts", 8, "crash cut points per (class, seed) regime in the -diskfaults soak")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file (taken at exit)")
	fs.StringVar(&o.traceOut, "trace", "", "write a runtime execution trace to this file")

	base := diffcheck.RegimeParams(0, 0)
	fs.IntVar(&o.p.Cores, "cores", base.Cores, "cores (single-trace mode)")
	fs.IntVar(&o.p.CoresPerVD, "vdcores", base.CoresPerVD, "cores per versioned domain")
	fs.IntVar(&o.p.Steps, "steps", base.Steps, "trace length in accesses")
	fs.IntVar(&o.p.Lines, "lines", base.Lines, "working-set lines per region")
	fs.IntVar(&o.p.SharePct, "share", base.SharePct, "percent of accesses to the shared region")
	fs.IntVar(&o.p.WritePct, "write", base.WritePct, "percent of accesses that are stores")
	fs.IntVar(&o.p.EpochSize, "epoch", base.EpochSize, "stores per epoch")
	fs.StringVar(&o.p.Pattern, "pattern", base.Pattern, "access pattern: uniform, hotspot or stride")
	fs.IntVar(&o.p.OMCs, "omcs", base.OMCs, "OMC address partitions")
	fs.IntVar(&o.p.CrashPoints, "crash", base.CrashPoints, "swept mid-run crash probes")
	nowalker := fs.Bool("nowalker", false, "disable the tag walker")
	fs.BoolVar(&o.p.Buffered, "buffer", false, "enable the battery-backed OMC buffer")
	fs.BoolVar(&o.p.Wrap, "wrap", false, "enable the epoch wrap-around protocol")
	wrapWidth := fs.Uint("wrapwidth", 5, "epoch wire width in bits (with -wrap)")
	fs.StringVar(&o.p.Fault, "fault", "", "fault class for a single faulted trace (torn, flip, loss, nak, all)")

	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("nvcheck: unexpected arguments %v", fs.Args())
	}
	fs.Visit(func(f *flag.Flag) {
		if traceFlags[f.Name] {
			o.single = true
		}
	})
	if o.events != "" || o.timeline {
		o.single = true
	}
	if o.record != "" {
		o.single = true
		if o.events != "" || o.timeline {
			return options{}, fmt.Errorf("nvcheck: -record runs the trace twice (memory + file) and cannot also capture events; drop -events/-timeline")
		}
	}
	if o.replay != "" && (o.faults || o.single || o.vevents != "" || o.crashsoak || o.diskfaults) {
		return options{}, fmt.Errorf("nvcheck: -replay is a standalone mode (the trace file supplies all parameters)")
	}
	if o.faults && o.single {
		return options{}, fmt.Errorf("nvcheck: -faults soak and single-trace flags are mutually exclusive")
	}
	if o.vevents != "" && (o.faults || o.single) {
		return options{}, fmt.Errorf("nvcheck: -validate-events is a standalone mode")
	}
	if o.crashsoak && (o.faults || o.single || o.vevents != "") {
		return options{}, fmt.Errorf("nvcheck: -crashsoak is a standalone mode")
	}
	if o.crashsoak && o.loops <= 0 {
		return options{}, fmt.Errorf("nvcheck: -loops must be positive, got %d", o.loops)
	}
	if o.diskfaults && (o.faults || o.single || o.vevents != "" || o.crashsoak) {
		return options{}, fmt.Errorf("nvcheck: -diskfaults is a standalone mode")
	}
	if o.diskfaults {
		if o.dseeds <= 0 {
			return options{}, fmt.Errorf("nvcheck: -dseeds must be positive, got %d", o.dseeds)
		}
		if o.dcuts < 1 {
			return options{}, fmt.Errorf("nvcheck: -dcuts must be at least 1, got %d", o.dcuts)
		}
		for _, c := range strings.Split(o.dclasses, ",") {
			if c == "" || !fault.ValidDiskClass(c) {
				return options{}, fmt.Errorf("nvcheck: unknown disk fault class %q in -dclasses", c)
			}
		}
	}
	o.p.Seed = o.seed
	o.p.Walker = !*nowalker
	o.p.WrapWidth = uint(*wrapWidth)
	if o.single {
		if err := o.p.Validate(); err != nil {
			return options{}, err
		}
	}
	if o.record != "" && o.p.Fault != "" {
		return options{}, fmt.Errorf("nvcheck: -record cannot capture a fault regime (the fault schedule is not part of the access stream)")
	}
	if o.faults {
		if o.fseeds <= 0 {
			return options{}, fmt.Errorf("nvcheck: -fseeds must be positive, got %d", o.fseeds)
		}
		for _, c := range strings.Split(o.classes, ",") {
			if c == "" || !fault.ValidClass(c) {
				return options{}, fmt.Errorf("nvcheck: unknown fault class %q in -fclasses", c)
			}
		}
	}
	return o, nil
}

// faultTally accumulates fault-soak results across regimes so a partial
// flush on interrupt still reports everything completed so far.
type faultTally struct {
	regimes, cells, restored, walkedBack, refused, events int
}

func (ft *faultTally) add(res diffcheck.FaultResult) {
	ft.regimes++
	ft.cells += len(res.Points)
	ft.restored += res.Restored
	ft.walkedBack += res.WalkedBack
	ft.refused += res.Refusals
	ft.events += res.Events
}

func (ft *faultTally) flush(w io.Writer, elapsed time.Duration) {
	fmt.Fprintf(w, "fault soak: %d regimes, %d cells (%d restored, %d walked back, %d refused), %d faults injected, 0 silent corruptions (%v)\n",
		ft.regimes, ft.cells, ft.restored, ft.walkedBack, ft.refused, ft.events, elapsed.Round(time.Millisecond))
}

// runFaults executes the fault-soak grid: every configured class x fseeds
// seeds, each swept across its crash points. The (class, seed) regimes fan
// over -j workers; verdicts and tallies merge in grid order, so the report
// — including which regime is blamed for a divergence — is identical for
// every -j. The tally is flushed even when a regime diverges or the
// context is cancelled, and both of those paths return a non-nil error so
// main exits non-zero.
func runFaults(ctx context.Context, o options, w io.Writer) error {
	start := time.Now()
	var ft faultTally
	classes := strings.Split(o.classes, ",")
	type cell struct {
		res diffcheck.FaultResult
		d   *diffcheck.Divergence
	}
	var ferr error
	parallel.ForEachOrdered(o.jobs, len(classes)*o.fseeds, func(i int) cell {
		p := diffcheck.FaultRegimeParams(classes[i/o.fseeds], o.seed+int64(i%o.fseeds))
		res, d := diffcheck.RunFaulted(p)
		return cell{res, d}
	}, func(i int, c cell) bool {
		class := classes[i/o.fseeds]
		if err := ctx.Err(); err != nil {
			ft.flush(w, time.Since(start))
			ferr = fmt.Errorf("interrupted after %d regimes: %w", ft.regimes, err)
			return false
		}
		if c.d != nil {
			fmt.Fprintln(w, c.d.Error())
			ft.flush(w, time.Since(start))
			ferr = fmt.Errorf("fault regime class=%s seed=%d diverged", class, c.res.Params.Seed)
			return false
		}
		ft.add(c.res)
		if o.every > 0 && i%o.fseeds == o.fseeds-1 {
			fmt.Fprintf(w, "class %s ok (%d regimes so far, %v)\n",
				class, ft.regimes, time.Since(start).Round(time.Millisecond))
		}
		return true
	})
	if ferr != nil {
		return ferr
	}
	ft.flush(w, time.Since(start))
	return nil
}

// diskTally accumulates disk-fault soak results across regimes, mirroring
// faultTally: a partial flush on interrupt or divergence still reports
// everything completed so far.
type diskTally struct {
	regimes, cells, restored, refused, wounded, faults int
}

func (dt *diskTally) add(res diffcheck.DiskResult) {
	dt.regimes++
	dt.cells += len(res.Points)
	dt.restored += res.Restored
	dt.refused += res.Refusals
	dt.wounded += res.Wounded
	dt.faults += res.Faults
}

func (dt *diskTally) flush(w io.Writer, elapsed time.Duration) {
	fmt.Fprintf(w, "disk-fault soak: %d regimes, %d cells (%d restored, %d refused, %d wounded planes), %d disk faults injected, 0 silent corruptions (%v)\n",
		dt.regimes, dt.cells, dt.restored, dt.refused, dt.wounded, dt.faults, elapsed.Round(time.Millisecond))
}

// runDiskFaults executes the disk-fault grid: every configured class x
// dseeds seeds, each swept across dcuts crash cut points plus the no-cut
// cell. Regimes fan over -j workers and merge in grid order, so the report
// is identical for every -j. A diverging cell archives its salvage report
// (when one exists) under -reports, flushes the tally, and fails the run.
func runDiskFaults(ctx context.Context, o options, w io.Writer) error {
	start := time.Now()
	var dt diskTally
	classes := strings.Split(o.dclasses, ",")
	type cell struct {
		res diffcheck.DiskResult
		d   *diffcheck.DiskDivergence
	}
	var ferr error
	parallel.ForEachOrdered(o.jobs, len(classes)*o.dseeds, func(i int) cell {
		p := diffcheck.DiskParams{
			Classes: []string{classes[i/o.dseeds]},
			Seeds:   []int64{o.seed + int64(i%o.dseeds)},
			Cuts:    o.dcuts,
		}
		res, d := diffcheck.RunDiskFaults(p, 1)
		return cell{res, d}
	}, func(i int, c cell) bool {
		class := classes[i/o.dseeds]
		if err := ctx.Err(); err != nil {
			dt.flush(w, time.Since(start))
			ferr = fmt.Errorf("interrupted after %d regimes: %w", dt.regimes, err)
			return false
		}
		if c.d != nil {
			fmt.Fprintln(w, c.d.Error())
			if c.d.Report != nil {
				archiveReport(o.reports, i, c.d.Report)
			}
			dt.flush(w, time.Since(start))
			ferr = fmt.Errorf("disk-fault regime class=%s seed=%d diverged", class, c.d.Seed)
			return false
		}
		dt.add(c.res)
		if o.every > 0 && i%o.dseeds == o.dseeds-1 {
			fmt.Fprintf(w, "disk class %s ok (%d cells so far, %v)\n",
				class, dt.cells, time.Since(start).Round(time.Millisecond))
		}
		return true
	})
	if ferr != nil {
		return ferr
	}
	dt.flush(w, time.Since(start))
	return nil
}

// archiveReport writes a failing loop's salvage report under the reports
// directory so CI can upload it as an artifact.
func archiveReport(dir string, loop int, rep interface{ JSON() ([]byte, error) }) {
	if rep == nil {
		return
	}
	js, err := rep.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvcheck: report json:", err)
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "nvcheck: reports dir:", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("salvage-loop-%03d.json", loop))
	if err := os.WriteFile(path, js, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "nvcheck: writing report:", err)
	}
}

// runCrashSoak loops start child -> write -> kill -9 -> cold salvage ->
// diff against golden. One control run (never killed) both validates the
// happy path and measures the milestone count; each loop then kills at a
// seeded milestone index, so a given -seed replays the same kill schedule
// exactly. Any contract violation archives its salvage report and fails
// the run.
func runCrashSoak(ctx context.Context, o options, w io.Writer) error {
	start := time.Now()
	bin, err := os.Executable()
	if err != nil {
		return fmt.Errorf("nvcheck: locating binary: %w", err)
	}
	base := o.store
	if base == "" {
		base, err = os.MkdirTemp("", "nvsoak-*")
		if err != nil {
			return err
		}
		defer func() {
			if err := os.RemoveAll(base); err != nil {
				fmt.Fprintln(os.Stderr, "nvcheck: cleanup:", err)
			}
		}()
	} else if err := os.MkdirAll(base, 0o755); err != nil {
		return err
	}

	// Control run: full completion, salvage must restore the final epoch.
	p := soak.DefaultParams(filepath.Join(base, "control"), o.seed)
	res, err := soak.Run(bin, nil, p, 1<<30)
	if err != nil {
		return fmt.Errorf("nvcheck: control run: %w", err)
	}
	rep, err := soak.CheckDir(p.Dir, res.DurableEpoch, soak.Golden(p))
	if err != nil {
		archiveReport(o.reports, -1, rep)
		return fmt.Errorf("nvcheck: control run salvage: %w", err)
	}
	total := res.Milestones
	fmt.Fprintf(w, "control run: %d milestones, restored epoch %d\n", total, rep.RestoredEpoch)

	rng := sim.NewRNG(o.seed)
	restored, refused := 0, 0
	// Any mid-run failure — interrupt, a child dying (ENOSPC included), a
	// salvage contract violation — flushes the partial tally before the
	// non-zero exit, so an aborted soak still reports what it proved.
	flush := func() {
		fmt.Fprintf(w, "crash soak aborted: %d/%d loops completed (%d restored, %d justified refusals, %v)\n",
			restored+refused, o.loops, restored, refused, time.Since(start).Round(time.Millisecond))
	}
	for i := 0; i < o.loops; i++ {
		if err := ctx.Err(); err != nil {
			flush()
			return fmt.Errorf("nvcheck: interrupted after %d loops: %w", i, err)
		}
		killAt := int(rng.Uint64n(uint64(total)))
		dir := filepath.Join(base, fmt.Sprintf("store-%03d", i))
		lp := soak.DefaultParams(dir, o.seed+int64(i)+1)
		res, err := soak.Run(bin, nil, lp, killAt)
		if err != nil {
			flush()
			if soak.IsNoSpace(err) {
				// The typed out-of-space path: the environment, not the store,
				// is to blame, but the run still fails loudly.
				return fmt.Errorf("nvcheck: loop %d ran out of disk space: %w", i, err)
			}
			return fmt.Errorf("nvcheck: loop %d: %w", i, err)
		}
		rep, err := soak.CheckDir(dir, res.DurableEpoch, soak.Golden(lp))
		if err != nil {
			archiveReport(o.reports, i, rep)
			flush()
			return fmt.Errorf("nvcheck: loop %d (killed at %d: %s, epoch %d; durable %d): %w",
				i, res.KillIndex, res.KillPoint, res.KillEpoch, res.DurableEpoch, err)
		}
		if rep.Refused {
			refused++
		} else {
			restored++
		}
		if err := os.RemoveAll(dir); err != nil {
			flush()
			return fmt.Errorf("nvcheck: loop %d cleanup: %w", i, err)
		}
		if o.every > 0 && (i+1)%o.every == 0 {
			fmt.Fprintf(w, "%d/%d loops ok (%v)\n", i+1, o.loops, time.Since(start).Round(time.Millisecond))
		}
	}
	fmt.Fprintf(w, "crash soak: %d kill-9 loops ok (%d restored, %d justified refusals, %d milestones/run, %v)\n",
		o.loops, restored, refused, total, time.Since(start).Round(time.Millisecond))
	return nil
}

// traceOkLine renders the standard per-trace verdict line.
func traceOkLine(res diffcheck.Result) string {
	return fmt.Sprintf("trace ok: epochs=%d rec-epoch=%d boundary-verifies=%d crash-verifies=%d wrap-flushes=%d lines=%d baselines=%v",
		res.MaxEpoch, res.RecEpoch, res.BoundaryVerifies, res.CrashVerifies,
		res.WrapFlushes, res.Lines, res.Baselines)
}

// runRecord records the single trace as a TRC1 file, runs the trace both
// in memory and from the recording, and requires the two runs to agree
// exactly — the CLI form of the record → replay → diffcheck cross-check.
func runRecord(o options, w io.Writer, start time.Time) error {
	info, err := diffcheck.RecordTrace(fault.OS, o.record, o.p)
	if err != nil {
		return fmt.Errorf("nvcheck: recording %s: %w", o.record, err)
	}
	fmt.Fprintf(w, "recorded %d accesses in %d chunks (%d bytes) to %s\n",
		info.Records, info.Chunks, info.Bytes, o.record)
	res, d := diffcheck.Run(o.p)
	if d != nil {
		fmt.Fprintln(w, d.Error())
		return fmt.Errorf("1 divergence")
	}
	fres, fd, err := diffcheck.RunFile(fault.OS, o.record)
	if err != nil {
		return fmt.Errorf("nvcheck: replaying %s: %w", o.record, err)
	}
	if fd != nil {
		fmt.Fprintln(w, fd.Error())
		return fmt.Errorf("1 divergence (file replay)")
	}
	if !reflect.DeepEqual(res, fres) {
		return fmt.Errorf("nvcheck: file replay of %s does not match the in-memory run:\n  memory %+v\n  file   %+v", o.record, res, fres)
	}
	fmt.Fprintf(w, "%s\n", traceOkLine(res))
	fmt.Fprintf(w, "file replay matches the in-memory run; 0 divergences in 2 runs (%v)\n",
		time.Since(start).Round(time.Millisecond))
	return nil
}

// runReplay replays a recorded trace file through the full differential
// harness; every parameter comes from the file's checksummed header.
func runReplay(o options, w io.Writer, start time.Time) error {
	p, err := diffcheck.ReadParams(fault.OS, o.replay)
	if err != nil {
		return fmt.Errorf("nvcheck: reading %s: %w", o.replay, err)
	}
	fmt.Fprintf(w, "replaying %s: %s\n", o.replay, p.FlagString())
	res, d, err := diffcheck.RunFile(fault.OS, o.replay)
	if err != nil {
		return fmt.Errorf("nvcheck: replaying %s: %w", o.replay, err)
	}
	if d != nil {
		fmt.Fprintln(w, d.Error())
		return fmt.Errorf("1 divergence")
	}
	fmt.Fprintf(w, "%s\n", traceOkLine(res))
	fmt.Fprintf(w, "0 divergences in 1 replayed trace (%v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// run executes the requested sweep or single trace, reporting to w. A
// divergence is printed in full (with its reproducer) and returned as an
// error so main can exit non-zero; an interrupted soak flushes its partial
// tally first.
func run(ctx context.Context, o options, w io.Writer) error {
	start := time.Now()
	if o.vevents != "" {
		return validateEvents(o.vevents, w)
	}
	if o.replay != "" {
		return runReplay(o, w, start)
	}
	if o.crashsoak {
		return runCrashSoak(ctx, o, w)
	}
	if o.diskfaults {
		return runDiskFaults(ctx, o, w)
	}
	if o.faults {
		return runFaults(ctx, o, w)
	}
	if o.single {
		// The bus only exists when -events or -timeline asked for it; nil
		// keeps the replay on the unobserved fast path.
		var bus *obs.Bus
		var agg *obs.Aggregator
		var evbuf bytes.Buffer
		if o.events != "" || o.timeline {
			bus = obs.NewBus(0)
			if o.timeline {
				agg = obs.NewAggregator()
				bus.Attach(agg)
			}
			if o.events != "" {
				bus.Attach(obs.NewJSONLSink(&evbuf, ""))
			}
		}
		report := func() error {
			if o.timeline {
				cell := experiments.TimelineCell{Scheme: "NVOverlay", Workload: "diffcheck",
					Emitted: bus.Emitted(), Rolls: agg.Timeline(),
					BankDepth: agg.BankDepth, WalkSpan: agg.WalkSpan}
				experiments.PrintTimeline(w, []experiments.TimelineCell{cell})
			}
			if o.events == "" {
				return nil
			}
			if err := os.WriteFile(o.events, evbuf.Bytes(), 0o644); err != nil {
				return fmt.Errorf("writing event stream: %w", err)
			}
			fmt.Fprintf(w, "events: %d written to %s\n", bus.Emitted(), o.events)
			return nil
		}
		if o.p.Fault != "" {
			var res diffcheck.FaultResult
			var d *diffcheck.Divergence
			if bus != nil {
				res, d = diffcheck.RunFaultedObserved(o.p, bus)
			} else {
				res, d = diffcheck.RunFaultedJobs(o.p, o.jobs)
			}
			if d != nil {
				fmt.Fprintln(w, d.Error())
				return fmt.Errorf("1 divergence")
			}
			fmt.Fprintf(w, "faulted trace ok: %d cells (%d restored, %d walked back, %d refused), %d faults injected\n",
				len(res.Points), res.Restored, res.WalkedBack, res.Refusals, res.Events)
			if err := report(); err != nil {
				return err
			}
			fmt.Fprintf(w, "0 divergences in 1 trace (%v)\n", time.Since(start).Round(time.Millisecond))
			return nil
		}
		if o.record != "" {
			return runRecord(o, w, start)
		}
		res, d := diffcheck.RunObserved(o.p, bus)
		if d != nil {
			fmt.Fprintln(w, d.Error())
			return fmt.Errorf("1 divergence")
		}
		fmt.Fprintf(w, "%s\n", traceOkLine(res))
		if err := report(); err != nil {
			return err
		}
		fmt.Fprintf(w, "0 divergences in 1 trace (%v)\n", time.Since(start).Round(time.Millisecond))
		return nil
	}
	// Regime soak: traces fan over -j workers. Verdicts are consumed in
	// trace order, so tallies, progress lines and — on failure — which
	// trace is blamed first all match the serial sweep exactly.
	var boundary, crash int
	type cell struct {
		res diffcheck.Result
		d   *diffcheck.Divergence
	}
	var ferr error
	parallel.ForEachOrdered(o.jobs, o.traces, func(i int) cell {
		res, d := diffcheck.Run(diffcheck.RegimeParams(i, o.seed))
		return cell{res, d}
	}, func(i int, c cell) bool {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(w, "interrupted: %d/%d traces ok (%d boundary + %d crash verifies, %v)\n",
				i, o.traces, boundary, crash, time.Since(start).Round(time.Millisecond))
			ferr = fmt.Errorf("interrupted after %d traces: %w", i, err)
			return false
		}
		if c.d != nil {
			fmt.Fprintln(w, c.d.Error())
			fmt.Fprintf(w, "interrupted: %d/%d traces ok (%d boundary + %d crash verifies, %v)\n",
				i, o.traces, boundary, crash, time.Since(start).Round(time.Millisecond))
			ferr = fmt.Errorf("divergence at trace %d of %d", i+1, o.traces)
			return false
		}
		boundary += c.res.BoundaryVerifies
		crash += c.res.CrashVerifies
		if o.every > 0 && (i+1)%o.every == 0 {
			fmt.Fprintf(w, "%d/%d traces ok (%d boundary + %d crash verifies, %v)\n",
				i+1, o.traces, boundary, crash, time.Since(start).Round(time.Millisecond))
		}
		return true
	})
	if ferr != nil {
		return ferr
	}
	fmt.Fprintf(w, "0 divergences in %d traces (%d boundary + %d crash verifies, %v)\n",
		o.traces, boundary, crash, time.Since(start).Round(time.Millisecond))
	return nil
}

// validateEvents schema-checks a captured JSONL event stream: known kinds,
// fixed field order, per-cell sequence numbers gapless from zero. A stream
// that fails validation returns a non-nil error so main exits non-zero.
func validateEvents(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }() // read side: validation already decided
	n, err := obs.ValidateJSONL(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(w, "%s: %d events ok\n", path, n)
	return nil
}

// withProfiles runs f under the requested profilers, making sure they are
// stopped and written before the exit status is decided.
func withProfiles(o options, f func() error) error {
	if o.cpuProfile != "" {
		pf, err := os.Create(o.cpuProfile)
		if err != nil {
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := pf.Close(); err != nil { // a lost close is a truncated profile
				fmt.Fprintln(os.Stderr, "nvcheck: cpuprofile:", err)
			}
		}()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
	}
	if o.traceOut != "" {
		tf, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		defer func() {
			rtrace.Stop()
			if err := tf.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "nvcheck: trace:", err)
			}
		}()
		if err := rtrace.Start(tf); err != nil {
			return err
		}
	}
	if o.memProfile != "" {
		defer func() {
			mf, err := os.Create(o.memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nvcheck: memprofile:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "nvcheck: memprofile:", err)
			}
			if err := mf.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "nvcheck: memprofile:", err)
			}
		}()
	}
	return f()
}

func main() {
	if soak.IsChild() {
		// Spawned by a -crashsoak parent: become the store writer. This
		// happens before flag parsing so the child is immune to the
		// parent's own command line.
		os.Exit(soak.ChildMain())
	}
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := withProfiles(o, func() error { return run(ctx, o, os.Stdout) }); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
