// Command nvcheck runs the differential verification harness outside the
// test suite: long soak sweeps over the regime rotation, fault-injection
// soaks over the crash-point x fault-class grid, or a single fully
// specified trace (the mode every divergence reproducer uses). Exit status
// is non-zero when any trace diverges from the golden model, and soak runs
// flush their partial tallies before exiting when interrupted.
//
//	nvcheck -traces 5000 -seed 1           # soak: 5000 traces over the rotation
//	nvcheck -seed 17 -cores 4 -steps 1400  # single trace, explicit parameters
//	nvcheck -faults -fseeds 4              # fault soak: classes x seeds x crash points
//	nvcheck -seed 3 -fault torn -crash 8   # single faulted trace (reproducer mode)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/diffcheck"
	"repro/internal/fault"
)

// options is the parsed command line.
type options struct {
	traces  int
	seed    int64
	every   int
	faults  bool             // fault-soak mode: sweep the fault grid
	classes string           // comma-separated fault classes for the soak
	fseeds  int              // seeds per fault class in the soak
	single  bool             // an explicit per-trace flag switches to single-trace mode
	p       diffcheck.Params // single-trace parameters
}

// traceFlags are the per-trace parameter flags; setting any of them runs
// one explicit trace instead of the regime sweep.
var traceFlags = map[string]bool{
	"cores": true, "vdcores": true, "steps": true, "lines": true,
	"share": true, "write": true, "epoch": true, "pattern": true,
	"omcs": true, "crash": true, "nowalker": true, "buffer": true,
	"wrap": true, "wrapwidth": true, "fault": true,
}

// parseFlags decodes the command line without touching the process-global
// flag set, so tests can drive it directly.
func parseFlags(args []string, errOut io.Writer) (options, error) {
	fs := flag.NewFlagSet("nvcheck", flag.ContinueOnError)
	fs.SetOutput(errOut)
	o := options{}
	fs.IntVar(&o.traces, "traces", 600, "traces to sweep across the regime rotation")
	fs.Int64Var(&o.seed, "seed", 1, "base seed (sweep) or trace seed (single mode)")
	fs.IntVar(&o.every, "every", 100, "print progress every N traces")
	fs.BoolVar(&o.faults, "faults", false, "fault soak: sweep fault classes x seeds x crash points")
	fs.StringVar(&o.classes, "fclasses", "torn,flip,loss,nak,all", "fault classes for the -faults soak")
	fs.IntVar(&o.fseeds, "fseeds", 4, "seeds per fault class in the -faults soak")

	base := diffcheck.RegimeParams(0, 0)
	fs.IntVar(&o.p.Cores, "cores", base.Cores, "cores (single-trace mode)")
	fs.IntVar(&o.p.CoresPerVD, "vdcores", base.CoresPerVD, "cores per versioned domain")
	fs.IntVar(&o.p.Steps, "steps", base.Steps, "trace length in accesses")
	fs.IntVar(&o.p.Lines, "lines", base.Lines, "working-set lines per region")
	fs.IntVar(&o.p.SharePct, "share", base.SharePct, "percent of accesses to the shared region")
	fs.IntVar(&o.p.WritePct, "write", base.WritePct, "percent of accesses that are stores")
	fs.IntVar(&o.p.EpochSize, "epoch", base.EpochSize, "stores per epoch")
	fs.StringVar(&o.p.Pattern, "pattern", base.Pattern, "access pattern: uniform, hotspot or stride")
	fs.IntVar(&o.p.OMCs, "omcs", base.OMCs, "OMC address partitions")
	fs.IntVar(&o.p.CrashPoints, "crash", base.CrashPoints, "swept mid-run crash probes")
	nowalker := fs.Bool("nowalker", false, "disable the tag walker")
	fs.BoolVar(&o.p.Buffered, "buffer", false, "enable the battery-backed OMC buffer")
	fs.BoolVar(&o.p.Wrap, "wrap", false, "enable the epoch wrap-around protocol")
	wrapWidth := fs.Uint("wrapwidth", 5, "epoch wire width in bits (with -wrap)")
	fs.StringVar(&o.p.Fault, "fault", "", "fault class for a single faulted trace (torn, flip, loss, nak, all)")

	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("nvcheck: unexpected arguments %v", fs.Args())
	}
	fs.Visit(func(f *flag.Flag) {
		if traceFlags[f.Name] {
			o.single = true
		}
	})
	if o.faults && o.single {
		return options{}, fmt.Errorf("nvcheck: -faults soak and single-trace flags are mutually exclusive")
	}
	o.p.Seed = o.seed
	o.p.Walker = !*nowalker
	o.p.WrapWidth = uint(*wrapWidth)
	if o.single {
		if err := o.p.Validate(); err != nil {
			return options{}, err
		}
	}
	if o.faults {
		if o.fseeds <= 0 {
			return options{}, fmt.Errorf("nvcheck: -fseeds must be positive, got %d", o.fseeds)
		}
		for _, c := range strings.Split(o.classes, ",") {
			if c == "" || !fault.ValidClass(c) {
				return options{}, fmt.Errorf("nvcheck: unknown fault class %q in -fclasses", c)
			}
		}
	}
	return o, nil
}

// faultTally accumulates fault-soak results across regimes so a partial
// flush on interrupt still reports everything completed so far.
type faultTally struct {
	regimes, cells, restored, walkedBack, refused, events int
}

func (ft *faultTally) add(res diffcheck.FaultResult) {
	ft.regimes++
	ft.cells += len(res.Points)
	ft.restored += res.Restored
	ft.walkedBack += res.WalkedBack
	ft.refused += res.Refusals
	ft.events += res.Events
}

func (ft *faultTally) flush(w io.Writer, elapsed time.Duration) {
	fmt.Fprintf(w, "fault soak: %d regimes, %d cells (%d restored, %d walked back, %d refused), %d faults injected, 0 silent corruptions (%v)\n",
		ft.regimes, ft.cells, ft.restored, ft.walkedBack, ft.refused, ft.events, elapsed.Round(time.Millisecond))
}

// runFaults executes the fault-soak grid: every configured class x fseeds
// seeds, each swept across its crash points by RunFaulted. The tally is
// flushed even when a regime diverges or the context is cancelled, and
// both of those paths return a non-nil error so main exits non-zero.
func runFaults(ctx context.Context, o options, w io.Writer) error {
	start := time.Now()
	var ft faultTally
	for _, class := range strings.Split(o.classes, ",") {
		for s := 0; s < o.fseeds; s++ {
			if err := ctx.Err(); err != nil {
				ft.flush(w, time.Since(start))
				return fmt.Errorf("interrupted after %d regimes", ft.regimes)
			}
			p := diffcheck.FaultRegimeParams(class, o.seed+int64(s))
			res, d := diffcheck.RunFaulted(p)
			if d != nil {
				fmt.Fprintln(w, d.Error())
				ft.flush(w, time.Since(start))
				return fmt.Errorf("fault regime class=%s seed=%d diverged", class, p.Seed)
			}
			ft.add(res)
		}
		if o.every > 0 {
			fmt.Fprintf(w, "class %s ok (%d regimes so far, %v)\n",
				class, ft.regimes, time.Since(start).Round(time.Millisecond))
		}
	}
	ft.flush(w, time.Since(start))
	return nil
}

// run executes the requested sweep or single trace, reporting to w. A
// divergence is printed in full (with its reproducer) and returned as an
// error so main can exit non-zero; an interrupted soak flushes its partial
// tally first.
func run(ctx context.Context, o options, w io.Writer) error {
	start := time.Now()
	if o.faults {
		return runFaults(ctx, o, w)
	}
	if o.single {
		if o.p.Fault != "" {
			res, d := diffcheck.RunFaulted(o.p)
			if d != nil {
				fmt.Fprintln(w, d.Error())
				return fmt.Errorf("1 divergence")
			}
			fmt.Fprintf(w, "faulted trace ok: %d cells (%d restored, %d walked back, %d refused), %d faults injected\n",
				len(res.Points), res.Restored, res.WalkedBack, res.Refusals, res.Events)
			fmt.Fprintf(w, "0 divergences in 1 trace (%v)\n", time.Since(start).Round(time.Millisecond))
			return nil
		}
		res, d := diffcheck.Run(o.p)
		if d != nil {
			fmt.Fprintln(w, d.Error())
			return fmt.Errorf("1 divergence")
		}
		fmt.Fprintf(w, "trace ok: epochs=%d rec-epoch=%d boundary-verifies=%d crash-verifies=%d wrap-flushes=%d lines=%d baselines=%v\n",
			res.MaxEpoch, res.RecEpoch, res.BoundaryVerifies, res.CrashVerifies,
			res.WrapFlushes, res.Lines, res.Baselines)
		fmt.Fprintf(w, "0 divergences in 1 trace (%v)\n", time.Since(start).Round(time.Millisecond))
		return nil
	}
	var boundary, crash int
	for i := 0; i < o.traces; i++ {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(w, "interrupted: %d/%d traces ok (%d boundary + %d crash verifies, %v)\n",
				i, o.traces, boundary, crash, time.Since(start).Round(time.Millisecond))
			return fmt.Errorf("interrupted after %d traces", i)
		}
		p := diffcheck.RegimeParams(i, o.seed)
		res, d := diffcheck.Run(p)
		if d != nil {
			fmt.Fprintln(w, d.Error())
			fmt.Fprintf(w, "interrupted: %d/%d traces ok (%d boundary + %d crash verifies, %v)\n",
				i, o.traces, boundary, crash, time.Since(start).Round(time.Millisecond))
			return fmt.Errorf("divergence at trace %d of %d", i+1, o.traces)
		}
		boundary += res.BoundaryVerifies
		crash += res.CrashVerifies
		if o.every > 0 && (i+1)%o.every == 0 {
			fmt.Fprintf(w, "%d/%d traces ok (%d boundary + %d crash verifies, %v)\n",
				i+1, o.traces, boundary, crash, time.Since(start).Round(time.Millisecond))
		}
	}
	fmt.Fprintf(w, "0 divergences in %d traces (%d boundary + %d crash verifies, %v)\n",
		o.traces, boundary, crash, time.Since(start).Round(time.Millisecond))
	return nil
}

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
