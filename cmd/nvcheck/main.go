// Command nvcheck runs the differential verification harness outside the
// test suite: long soak sweeps over the regime rotation, or a single fully
// specified trace (the mode every divergence reproducer uses). Exit status
// is non-zero when any trace diverges from the golden model.
//
//	nvcheck -traces 5000 -seed 1          # soak: 5000 traces over the rotation
//	nvcheck -seed 17 -cores 4 -steps 1400 # single trace, explicit parameters
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/diffcheck"
)

// options is the parsed command line.
type options struct {
	traces int
	seed   int64
	every  int
	single bool             // an explicit per-trace flag switches to single-trace mode
	p      diffcheck.Params // single-trace parameters
}

// traceFlags are the per-trace parameter flags; setting any of them runs
// one explicit trace instead of the regime sweep.
var traceFlags = map[string]bool{
	"cores": true, "vdcores": true, "steps": true, "lines": true,
	"share": true, "write": true, "epoch": true, "pattern": true,
	"omcs": true, "crash": true, "nowalker": true, "buffer": true,
	"wrap": true, "wrapwidth": true,
}

// parseFlags decodes the command line without touching the process-global
// flag set, so tests can drive it directly.
func parseFlags(args []string, errOut io.Writer) (options, error) {
	fs := flag.NewFlagSet("nvcheck", flag.ContinueOnError)
	fs.SetOutput(errOut)
	o := options{}
	fs.IntVar(&o.traces, "traces", 600, "traces to sweep across the regime rotation")
	fs.Int64Var(&o.seed, "seed", 1, "base seed (sweep) or trace seed (single mode)")
	fs.IntVar(&o.every, "every", 100, "print progress every N traces")

	base := diffcheck.RegimeParams(0, 0)
	fs.IntVar(&o.p.Cores, "cores", base.Cores, "cores (single-trace mode)")
	fs.IntVar(&o.p.CoresPerVD, "vdcores", base.CoresPerVD, "cores per versioned domain")
	fs.IntVar(&o.p.Steps, "steps", base.Steps, "trace length in accesses")
	fs.IntVar(&o.p.Lines, "lines", base.Lines, "working-set lines per region")
	fs.IntVar(&o.p.SharePct, "share", base.SharePct, "percent of accesses to the shared region")
	fs.IntVar(&o.p.WritePct, "write", base.WritePct, "percent of accesses that are stores")
	fs.IntVar(&o.p.EpochSize, "epoch", base.EpochSize, "stores per epoch")
	fs.StringVar(&o.p.Pattern, "pattern", base.Pattern, "access pattern: uniform, hotspot or stride")
	fs.IntVar(&o.p.OMCs, "omcs", base.OMCs, "OMC address partitions")
	fs.IntVar(&o.p.CrashPoints, "crash", base.CrashPoints, "swept mid-run crash probes")
	nowalker := fs.Bool("nowalker", false, "disable the tag walker")
	fs.BoolVar(&o.p.Buffered, "buffer", false, "enable the battery-backed OMC buffer")
	fs.BoolVar(&o.p.Wrap, "wrap", false, "enable the epoch wrap-around protocol")
	wrapWidth := fs.Uint("wrapwidth", 5, "epoch wire width in bits (with -wrap)")

	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("nvcheck: unexpected arguments %v", fs.Args())
	}
	fs.Visit(func(f *flag.Flag) {
		if traceFlags[f.Name] {
			o.single = true
		}
	})
	o.p.Seed = o.seed
	o.p.Walker = !*nowalker
	o.p.WrapWidth = uint(*wrapWidth)
	if o.single {
		if err := o.p.Validate(); err != nil {
			return options{}, err
		}
	}
	return o, nil
}

// run executes the requested sweep or single trace, reporting to w. A
// divergence is printed in full (with its reproducer) and returned as an
// error so main can exit non-zero.
func run(o options, w io.Writer) error {
	start := time.Now()
	if o.single {
		res, d := diffcheck.Run(o.p)
		if d != nil {
			fmt.Fprintln(w, d.Error())
			return fmt.Errorf("1 divergence")
		}
		fmt.Fprintf(w, "trace ok: epochs=%d rec-epoch=%d boundary-verifies=%d crash-verifies=%d wrap-flushes=%d lines=%d baselines=%v\n",
			res.MaxEpoch, res.RecEpoch, res.BoundaryVerifies, res.CrashVerifies,
			res.WrapFlushes, res.Lines, res.Baselines)
		fmt.Fprintf(w, "0 divergences in 1 trace (%v)\n", time.Since(start).Round(time.Millisecond))
		return nil
	}
	var boundary, crash int
	for i := 0; i < o.traces; i++ {
		p := diffcheck.RegimeParams(i, o.seed)
		res, d := diffcheck.Run(p)
		if d != nil {
			fmt.Fprintln(w, d.Error())
			return fmt.Errorf("divergence at trace %d of %d", i+1, o.traces)
		}
		boundary += res.BoundaryVerifies
		crash += res.CrashVerifies
		if o.every > 0 && (i+1)%o.every == 0 {
			fmt.Fprintf(w, "%d/%d traces ok (%d boundary + %d crash verifies, %v)\n",
				i+1, o.traces, boundary, crash, time.Since(start).Round(time.Millisecond))
		}
	}
	fmt.Fprintf(w, "0 divergences in %d traces (%d boundary + %d crash verifies, %v)\n",
		o.traces, boundary, crash, time.Since(start).Round(time.Millisecond))
	return nil
}

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
