package repro

import (
	"flag"
	"testing"
)

// benchSmoke runs one iteration of a benchmark function inside the regular
// test suite, so `go test` (including -short CI runs) catches bit-rot in the
// benchmark suite without paying for a timed measurement.
func benchSmoke(t *testing.T, name string, fn func(*testing.B)) {
	t.Helper()
	bt := flag.Lookup("test.benchtime")
	prev := bt.Value.String()
	if err := bt.Value.Set("1x"); err != nil {
		t.Fatal(err)
	}
	defer bt.Value.Set(prev)
	failed := true
	r := testing.Benchmark(func(b *testing.B) {
		b.Cleanup(func() { failed = b.Failed() })
		fn(b)
	})
	if failed {
		t.Fatalf("benchmark %s failed (see log above)", name)
	}
	if r.N < 1 {
		t.Fatalf("benchmark %s did not run (N=%d)", name, r.N)
	}
}

// TestBenchmarkSmoke exercises every figure/table benchmark for exactly one
// iteration each.
func TestBenchmarkSmoke(t *testing.T) {
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"Table2IdealSubstrate", BenchmarkTable2IdealSubstrate},
		{"Fig11NormalizedCycles", BenchmarkFig11NormalizedCycles},
		{"Fig12WriteAmplification", BenchmarkFig12WriteAmplification},
		{"Fig13MasterTableCost", BenchmarkFig13MasterTableCost},
		{"Fig14EpochSensitivity", BenchmarkFig14EpochSensitivity},
		{"Fig15EvictReasons", BenchmarkFig15EvictReasons},
		{"Fig16OMCBuffer", BenchmarkFig16OMCBuffer},
		{"Fig17Bandwidth", BenchmarkFig17Bandwidth},
		{"Fig17BurstyEpochs", BenchmarkFig17BurstyEpochs},
		{"AblateWalker", BenchmarkAblateWalker},
		{"AblateSuperBlock", BenchmarkAblateSuperBlock},
		{"Schemes", BenchmarkSchemes},
		{"FileSeal", BenchmarkFileSeal},
		{"FileSealFaulted", BenchmarkFileSealFaulted},
		{"TraceEncode", BenchmarkTraceEncode},
		{"TraceDecode", BenchmarkTraceDecode},
		{"WrapAround", BenchmarkWrapAround},
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench.name, func(t *testing.T) {
			benchSmoke(t, bench.name, bench.fn)
		})
	}
}
