// Replication demonstrates the fine-grained backup/replication usage
// model (paper §I usage model 3, §V-E "Remote Replication"): the primary
// machine captures frequent snapshots with NVOverlay; per-epoch deltas are
// shipped to a remote replica, which replays them as redo logs. The
// replica converges to the primary's recoverable state, and incremental
// shipping moves far fewer bytes than full-image copies would.
//
//	go run ./examples/replication
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.EpochSize = 2_000
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nvo := core.New(&cfg, core.WithRetention())
	wl, err := workload.Get("vacation")
	if err != nil {
		panic(err)
	}
	sum := trace.NewDriver(&cfg, nvo, wl, 150_000).Run()
	fmt.Printf("primary ran %d stores across %d snapshot epochs\n",
		sum.Stores, len(nvo.Group().Epochs()))

	// Ship every epoch delta to the replica and replay to the primary's
	// recoverable epoch.
	replica := recovery.NewReplica()
	shipped := recovery.Replicate(nvo.Group(), replica)
	fmt.Printf("shipped %d deltas, %d KB total on the wire\n",
		shipped, replica.BytesReceived>>10)
	fmt.Printf("replica converged to epoch %d\n", replica.AppliedEpoch())

	if err := recovery.Verify(replica.Image(), sum.Final); err != nil {
		panic(fmt.Errorf("replica diverged: %w", err))
	}
	fmt.Println("replica image verified against the primary")

	// Incremental epochs beat full-image shipping: compare the delta bytes
	// to what shipping the whole working set every epoch would have cost.
	fullPerEpoch := int64(len(sum.Final)) * 64
	epochs := int64(shipped)
	fmt.Printf("\nincremental: %d KB vs naive full-image: %d KB (%.1fx saved)\n",
		replica.BytesReceived>>10, fullPerEpoch*epochs>>10,
		float64(fullPerEpoch*epochs)/float64(replica.BytesReceived))
}
