// Quickstart: assemble the full NVOverlay stack (CST frontend + MNM
// backend on the Table II machine), run a small multithreaded workload
// through it, and read a persistent snapshot back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// 1. Configure the machine. DefaultConfig is the paper's Table II;
	//    the epoch size is the snapshot granularity in store uops.
	cfg := sim.DefaultConfig()
	cfg.EpochSize = 2_000
	if err := cfg.Validate(); err != nil {
		panic(err)
	}

	// 2. Assemble NVOverlay: version-tagged hierarchy, tag walkers, and
	//    four OMC partitions, all behind the common Scheme interface.
	nvo := core.New(&cfg)

	// 3. Pick a workload — here the paper's hash-table bulk-insert — and
	//    drive it with the 16-thread interleaving driver.
	wl, err := workload.Get("hashtable")
	if err != nil {
		panic(err)
	}
	driver := trace.NewDriver(&cfg, nvo, wl, 100_000)
	sum := driver.Run()

	fmt.Printf("ran %d accesses (%d stores) in %d cycles\n",
		sum.Accesses, sum.Stores, sum.Cycles)
	fmt.Printf("snapshot traffic: %d KB data, %d KB mapping metadata\n",
		sum.DataBytes>>10, sum.MetaBytes>>10)
	fmt.Printf("recoverable epoch: %d\n", nvo.Group().RecEpoch())

	// 4. Read the persistent snapshot back, as a crash-recovery pass
	//    would, and verify it matches the final memory contents.
	img, rep := recovery.Recover(nvo.Group())
	fmt.Printf("recovered %d lines in %d simulated cycles\n",
		rep.LinesRestored, rep.LatencyCycles)
	if err := recovery.Verify(img, sum.Final); err != nil {
		panic(err)
	}
	fmt.Println("snapshot verified: recovered image == final memory state")

	// 5. The persistent Master Table is the snapshot index; its footprint
	//    relative to the write working set is the paper's Fig 13 metric.
	ws := nvo.Group().WorkingSetBytes()
	fmt.Printf("master table: %d KB for a %d KB working set (%.1f%%)\n",
		nvo.Group().MasterBytes()>>10, ws>>10,
		100*float64(nvo.Group().MasterBytes())/float64(ws))
}
