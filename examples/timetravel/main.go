// Timetravel demonstrates the record-and-replay debugging usage model
// (paper §I usage model 1, §V-E "Debugging/Time-Travel Reads"): the
// program runs with coarse epochs, then a suspicious region is bracketed
// with tiny "watch-point" epochs (the paper's Fig 17b burst scenario), and
// afterwards the developer inspects an address's fine-grained history.
//
//	go run ./examples/timetravel
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.EpochSize = 4_000
	// Watch points: around the middle of the run the developer switches to
	// very fine epochs, capturing a dense burst of snapshots.
	cfg.Bursts = []sim.Burst{
		{From: 4_000, To: 6_000, Size: 50},
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}

	// Retention keeps every merged epoch table addressable, so any epoch
	// in the burst can be read back later.
	nvo := core.New(&cfg, core.WithRetention())
	wl, err := workload.Get("rbtree")
	if err != nil {
		panic(err)
	}
	sum := trace.NewDriver(&cfg, nvo, wl, 120_000).Run()

	epochs := nvo.Group().Epochs()
	fmt.Printf("run complete: %d stores, %d snapshot epochs captured\n",
		sum.Stores, len(epochs))

	// Find the address with the densest history — a heavily-updated tree
	// node — and walk its versions.
	var addr uint64
	best := 0
	probed := 0
	for a := range sum.Final {
		if n := len(recovery.History(nvo.Group(), a)); n > best {
			best, addr = n, a
		}
		if probed++; probed >= 512 {
			break
		}
	}
	hist := recovery.History(nvo.Group(), addr)
	fmt.Printf("\naddress %#x changed in %d captured epochs:\n", addr, len(hist))
	for i, v := range hist {
		if i >= 10 {
			fmt.Printf("  ... %d more versions\n", len(hist)-i)
			break
		}
		fmt.Printf("  epoch %5d: value %d\n", v.Epoch, v.Data)
	}

	// Fall-through reads: an epoch where the address was NOT written
	// resolves to the newest version at or before it (§V-E).
	if len(hist) >= 2 {
		probe := hist[1].Epoch + 1
		d, e, ok := recovery.TimeTravel(nvo.Group(), addr, probe)
		fmt.Printf("\nread @epoch %d falls through to epoch %d (value %d, ok=%v)\n",
			probe, e, d, ok)
	}

	// The burst region produced many more epochs per store than the
	// surrounding steady state — that is the watch-point effect.
	fmt.Printf("\nepoch count %d for %d stores (steady-state epochs would be ~%d)\n",
		len(epochs), sum.Stores, int(sum.Stores)/cfg.EpochSize)
}
