// Crashrecovery demonstrates the low-latency crash-recovery usage model
// (paper §I usage model 4, §V-E "Crash Recovery") with a genuine crash:
// the machine is powered off mid-run WITHOUT draining the caches, so only
// snapshot state that already reached the OMCs survives. Recovery rebuilds
// the image of the recoverable epoch and the example verifies that it is a
// *consistent prefix* of execution: every recovered value was really
// written, no recovered value post-dates the crash point, and all epochs
// at or below rec-epoch are complete.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/workload"

	"repro/internal/trace"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.EpochSize = 1_500
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nvo := core.New(&cfg)
	clocks := sim.NewClocks(cfg.Cores)
	nvo.Bind(clocks)

	// Drive the workload by hand so we can pull the plug mid-run; record
	// every token ever written per address (the write history oracle).
	wl, err := workload.Get("intruder")
	if err != nil {
		panic(err)
	}
	heap := trace.NewHeap(&cfg)
	wl.Setup(heap, sim.NewRNG(cfg.Seed))
	heap.Drain()
	rng := sim.NewRNG(cfg.Seed + 1)
	history := map[uint64]map[uint64]bool{}
	var stores uint64
	const crashAt = 200_000
	for i := 0; i < crashAt; {
		tid := i % cfg.Cores
		if !wl.Step(tid, heap, rng) {
			break
		}
		for _, op := range heap.Drain() {
			lat := nvo.Access(tid, op.Addr, op.Write, op.Data)
			clocks.Advance(tid, lat)
			if op.Write {
				stores++
				line := cfg.LineAddr(op.Addr)
				if history[line] == nil {
					history[line] = map[uint64]bool{}
				}
				history[line][op.Data] = true
			}
			i++
		}
	}

	// CRASH: no drain, no seal. Volatile cache state is gone; only what
	// the OMCs persisted survives.
	fmt.Printf("power failure after %d stores (machine state discarded)\n", stores)

	img, rep := recovery.Recover(nvo.Group())
	fmt.Printf("recovered epoch %d: %d lines in %d cycles (%.1f us at 3 GHz)\n",
		rep.RecEpoch, rep.LinesRestored, rep.LatencyCycles,
		float64(rep.LatencyCycles)/3e3)

	if rep.RecEpoch == 0 {
		fmt.Println("no epoch became recoverable before the crash (run longer)")
		return
	}

	// Consistency checks: every recovered value must be one the program
	// actually wrote to that address — nothing invented, nothing torn.
	checked := 0
	for addr, val := range img {
		if !history[addr][val] {
			panic(fmt.Sprintf("recovered %#x = %d was never written there", addr, val))
		}
		checked++
	}
	fmt.Printf("verified %d recovered lines against the write history\n", checked)
	fmt.Println("the image is a causally consistent prefix of the crashed execution")
	fmt.Printf("execution would resume from epoch %d's processor context\n", rep.RecEpoch)
}
