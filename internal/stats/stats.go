// Package stats provides counters, named statistic sets, distributions and
// time series used by every simulator component. All containers are plain
// (non-atomic): the simulation engine serialises accesses, so no locking is
// required on the hot path.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a named collection of integer counters. Counters are created lazily
// on first Add/Inc. Iteration order is stable (sorted by name) so dumps are
// deterministic.
type Set struct {
	name     string
	counters map[string]int64
}

// NewSet returns an empty counter set with the given name.
func NewSet(name string) *Set {
	return &Set{name: name, counters: make(map[string]int64)}
}

// Name returns the name the set was created with.
func (s *Set) Name() string { return s.name }

// Add increments counter key by delta, creating it if absent.
func (s *Set) Add(key string, delta int64) {
	s.counters[key] += delta
}

// Inc increments counter key by one.
func (s *Set) Inc(key string) { s.Add(key, 1) }

// Get returns the current value of counter key (zero if absent).
func (s *Set) Get(key string) int64 { return s.counters[key] }

// Keys returns all counter names in sorted order.
func (s *Set) Keys() []string {
	keys := make([]string, 0, len(s.counters))
	for k := range s.counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Merge adds every counter of other into s, in sorted key order. Addition
// commutes, but the deterministic order keeps every observable side effect
// (lazy counter creation, future hooks) independent of map iteration, so a
// merged set is bit-identical however the parallel sweep scheduled the
// runs that produced it.
func (s *Set) Merge(other *Set) {
	for _, k := range other.Keys() {
		s.counters[k] += other.counters[k]
	}
}

// Reset zeroes all counters but keeps the set's identity.
func (s *Set) Reset() {
	s.counters = make(map[string]int64)
}

// String renders the set as "name{k1=v1 k2=v2 ...}" with sorted keys.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('{')
	for i, k := range s.Keys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, s.counters[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Dump renders one counter per line, sorted, with the given indent prefix.
func (s *Set) Dump(indent string) string {
	var b strings.Builder
	for _, k := range s.Keys() {
		fmt.Fprintf(&b, "%s%-40s %d\n", indent, k, s.counters[k])
	}
	return b.String()
}

// Distribution tracks min/max/sum/count of an integer-valued sample stream.
type Distribution struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
}

// Observe records one sample.
func (d *Distribution) Observe(v int64) {
	if d.Count == 0 || v < d.Min {
		d.Min = v
	}
	if d.Count == 0 || v > d.Max {
		d.Max = v
	}
	d.Count++
	d.Sum += v
}

// Mean returns the arithmetic mean of the observed samples (0 when empty).
func (d *Distribution) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.Sum) / float64(d.Count)
}

// Merge folds other's samples into d. The empty side contributes nothing:
// a naive field-wise merge would clobber the populated side's Min/Max with
// the empty side's zero values (or keep a stale zero Min when d itself is
// empty), which is exactly how per-cell distributions used to vanish from
// parallel-sweep rollups.
func (d *Distribution) Merge(other *Distribution) {
	if other.Count == 0 {
		return
	}
	if d.Count == 0 || other.Min < d.Min {
		d.Min = other.Min
	}
	if d.Count == 0 || other.Max > d.Max {
		d.Max = other.Max
	}
	d.Count += other.Count
	d.Sum += other.Sum
}

// String renders the distribution compactly. An empty distribution says so
// explicitly: "min=0 max=0 mean=0.00" is indistinguishable from a stream
// of genuine zero samples.
func (d *Distribution) String() string {
	if d.Count == 0 {
		return "n=0 (empty)"
	}
	return fmt.Sprintf("n=%d min=%d max=%d mean=%.2f", d.Count, d.Min, d.Max, d.Mean())
}
