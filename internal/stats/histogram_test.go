package stats

import (
	"strings"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 0, -5} {
		h.Observe(v)
	}
	if h.Count != 6 || h.Min != -5 || h.Max != 100 || h.Sum != 101 {
		t.Fatalf("histogram = %+v", h)
	}
	// v<=0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 100 -> bucket 7.
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[2] != 2 || h.Buckets[7] != 1 {
		t.Fatalf("buckets = %v", h.Buckets[:8])
	}
}

func TestHistogramMergeEmptySides(t *testing.T) {
	obs := func(vs ...int64) Histogram {
		var h Histogram
		for _, v := range vs {
			h.Observe(v)
		}
		return h
	}
	cases := []struct {
		name string
		a, b Histogram
		want Histogram
	}{
		{"empty-empty", Histogram{}, Histogram{}, Histogram{}},
		{"empty-nonempty", Histogram{}, obs(4, 16), obs(4, 16)},
		{"nonempty-empty", obs(4, 16), Histogram{}, obs(4, 16)},
		{"both", obs(4, 16), obs(1, 1024), obs(4, 16, 1, 1024)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.a
			got.Merge(&tc.b)
			if got != tc.want {
				t.Fatalf("merge = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// Merging per-cell histograms in cell order equals observing the
// concatenated stream — the property parallel sweep rollups rely on.
func TestHistogramMergeEqualsSerial(t *testing.T) {
	streams := [][]int64{{7, 0, 3}, {}, {1 << 40}, {12, 12, 13}}
	var serial, merged Histogram
	for _, s := range streams {
		var cell Histogram
		for _, v := range s {
			serial.Observe(v)
			cell.Observe(v)
		}
		merged.Merge(&cell)
	}
	if merged != serial {
		t.Fatalf("merged != serial\nmerged %+v\nserial %+v", merged, serial)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if q := h.Quantile(0); q < 1 || q > 1 {
		t.Fatalf("p0 = %d, want 1", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("p100 = %d, want 100", q)
	}
	// The median of 1..100 lives in bucket [32,63]; the bound is its edge.
	if q := h.Quantile(0.5); q != 63 {
		t.Fatalf("p50 = %d, want 63", q)
	}
	// A quantile bound never exceeds Max even in the top bucket.
	var big Histogram
	big.Observe(5)
	big.Observe(6)
	if q := big.Quantile(0.99); q != 6 {
		t.Fatalf("p99 = %d, want 6", q)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	if got := h.String(); got != "n=0 (empty)" {
		t.Fatalf("empty String() = %q", got)
	}
	h.Observe(8)
	if s := h.String(); !strings.Contains(s, "n=1") || !strings.Contains(s, "min=8") {
		t.Fatalf("String() = %q", s)
	}
	if d := h.Dump("  "); !strings.Contains(d, "[8..15] 1") {
		t.Fatalf("Dump() = %q", d)
	}
}
