package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSetAddGet(t *testing.T) {
	s := NewSet("test")
	if got := s.Get("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
	s.Add("a", 5)
	s.Inc("a")
	if got := s.Get("a"); got != 6 {
		t.Fatalf("a = %d, want 6", got)
	}
	if s.Name() != "test" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestSetKeysSorted(t *testing.T) {
	s := NewSet("t")
	for _, k := range []string{"zeta", "alpha", "mid"} {
		s.Inc(k)
	}
	keys := s.Keys()
	want := []string{"alpha", "mid", "zeta"}
	for i, k := range want {
		if keys[i] != k {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestSetMerge(t *testing.T) {
	a, b := NewSet("a"), NewSet("b")
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Fatalf("merge gave x=%d y=%d", a.Get("x"), a.Get("y"))
	}
}

func TestSetReset(t *testing.T) {
	s := NewSet("t")
	s.Add("x", 9)
	s.Reset()
	if s.Get("x") != 0 || len(s.Keys()) != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestSetString(t *testing.T) {
	s := NewSet("nm")
	s.Add("b", 2)
	s.Add("a", 1)
	if got := s.String(); got != "nm{a=1 b=2}" {
		t.Fatalf("String() = %q", got)
	}
	if d := s.Dump("  "); !strings.Contains(d, "a") || !strings.Contains(d, "b") {
		t.Fatalf("Dump missing keys: %q", d)
	}
}

func TestDistribution(t *testing.T) {
	var d Distribution
	if d.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	for _, v := range []int64{5, 1, 9} {
		d.Observe(v)
	}
	if d.Min != 1 || d.Max != 9 || d.Count != 3 || d.Sum != 15 {
		t.Fatalf("distribution = %+v", d)
	}
	if d.Mean() != 5 {
		t.Fatalf("mean = %f", d.Mean())
	}
	if s := d.String(); !strings.Contains(s, "n=3") {
		t.Fatalf("String() = %q", s)
	}
}

// Property: merging two sets yields the per-key sum for every key.
func TestSetMergeProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := NewSet("a"), NewSet("b")
		keys := []string{"k0", "k1", "k2", "k3"}
		for _, x := range xs {
			a.Add(keys[int(x)%len(keys)], int64(x))
		}
		for _, y := range ys {
			b.Add(keys[int(y)%len(keys)], int64(y))
		}
		want := map[string]int64{}
		for _, k := range keys {
			want[k] = a.Get(k) + b.Get(k)
		}
		a.Merge(b)
		for _, k := range keys {
			if a.Get(k) != want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeriesBuckets(t *testing.T) {
	ts := NewTimeSeries(10)
	ts.Record(0.0, 5)
	ts.Record(0.05, 5)
	ts.Record(0.95, 7)
	ts.Record(1.5, 3)  // clamps to last bucket
	ts.Record(-0.5, 2) // clamps to first bucket
	if got := ts.Bucket(0); got != 12 {
		t.Fatalf("bucket 0 = %d, want 12", got)
	}
	if got := ts.Bucket(9); got != 10 {
		t.Fatalf("bucket 9 = %d, want 10", got)
	}
	if ts.Total() != 22 {
		t.Fatalf("total = %d", ts.Total())
	}
	if ts.Peak() != 12 {
		t.Fatalf("peak = %d", ts.Peak())
	}
	if ts.Len() != 10 {
		t.Fatalf("len = %d", ts.Len())
	}
}

func TestTimeSeriesBandwidth(t *testing.T) {
	ts := NewTimeSeries(4)
	ts.Tick(0.1, 100)
	ts.Record(0.1, 200)
	if bw := ts.Bandwidth(0); bw != 2.0 {
		t.Fatalf("bandwidth = %f, want 2", bw)
	}
	// 2 bytes/cycle at 1 GHz = 2 GB/s.
	if gbs := ts.BandwidthGBs(0, 1e9); gbs != 2.0 {
		t.Fatalf("GB/s = %f", gbs)
	}
	if bw := ts.Bandwidth(3); bw != 0 {
		t.Fatalf("empty bucket bandwidth = %f", bw)
	}
	// Ticks never move backwards.
	ts.Tick(0.1, 50)
	if ts.Cycles(0) != 100 {
		t.Fatalf("cycles = %d after backwards tick", ts.Cycles(0))
	}
}

func TestTimeSeriesSparkline(t *testing.T) {
	ts := NewTimeSeries(3)
	if s := ts.Sparkline(); len([]rune(s)) != 3 {
		t.Fatalf("empty sparkline = %q", s)
	}
	ts.Record(0.0, 1)
	ts.Record(0.5, 100)
	if s := ts.Sparkline(); len([]rune(s)) != 3 {
		t.Fatalf("sparkline = %q", s)
	}
	if ts.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestTimeSeriesZeroBuckets(t *testing.T) {
	ts := NewTimeSeries(0) // degenerate: clamps to one bucket
	ts.Record(0.5, 4)
	if ts.Total() != 4 {
		t.Fatalf("total = %d", ts.Total())
	}
}

// Table-driven Merge coverage: the empty side must never contribute its
// zero-valued Min/Max to the merged distribution.
func TestDistributionMerge(t *testing.T) {
	obs := func(vs ...int64) Distribution {
		var d Distribution
		for _, v := range vs {
			d.Observe(v)
		}
		return d
	}
	cases := []struct {
		name string
		a, b Distribution
		want Distribution
	}{
		{"empty-empty", Distribution{}, Distribution{}, Distribution{}},
		{"empty-nonempty", Distribution{}, obs(5, 1, 9), obs(5, 1, 9)},
		{"nonempty-empty", obs(5, 1, 9), Distribution{}, obs(5, 1, 9)},
		{"both-nonempty", obs(5, 9), obs(2, 30), obs(5, 9, 2, 30)},
		{"negatives", obs(-4, -2), obs(-10), obs(-4, -2, -10)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.a
			got.Merge(&tc.b)
			if got != tc.want {
				t.Fatalf("merge = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// Merging N per-cell distributions in cell order must equal observing the
// concatenated stream, regardless of which cells are empty.
func TestDistributionMergeEqualsSerial(t *testing.T) {
	streams := [][]int64{{7, 3}, {}, {42}, {}, {1, 100, 5}}
	var serial, merged Distribution
	for _, s := range streams {
		var cell Distribution
		for _, v := range s {
			serial.Observe(v)
			cell.Observe(v)
		}
		merged.Merge(&cell)
	}
	if merged != serial {
		t.Fatalf("merged = %+v, serial = %+v", merged, serial)
	}
}

func TestDistributionStringEmpty(t *testing.T) {
	var d Distribution
	if got := d.String(); got != "n=0 (empty)" {
		t.Fatalf("empty String() = %q, want %q", got, "n=0 (empty)")
	}
	d.Observe(0)
	if got := d.String(); got != "n=1 min=0 max=0 mean=0.00" {
		t.Fatalf("zero-sample String() = %q", got)
	}
}
