package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// histBuckets is bucket 0 (values <= 0) plus one bucket per power of two:
// bucket i (i >= 1) counts samples v with 2^(i-1) <= v < 2^i.
const histBuckets = 65

// Histogram is a log2-bucketed distribution of int64 samples. Where
// Distribution only keeps min/max/sum, the histogram additionally supports
// approximate quantiles, which the observability timelines need for
// latency- and occupancy-shaped metrics (bank-queue depth, walk spans).
// The zero value is an empty histogram ready for use; Merge is exact and
// deterministic, so parallel sweep cells aggregate bit-identically in any
// merge grouping (as long as cells merge in canonical order, which the
// sweep engine guarantees).
type Histogram struct {
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
	Buckets [histBuckets]int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if h.Count == 0 || v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bucketOf(v)]++
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Merge adds other's samples into h. An empty side never clobbers the
// populated side's Min/Max (the same empty-side rule Distribution.Merge
// follows), and bucket addition commutes, so merging in canonical cell
// order yields bit-identical state however the cells were scheduled.
func (h *Histogram) Merge(other *Histogram) {
	if other.Count == 0 {
		return
	}
	if h.Count == 0 || other.Min < h.Min {
		h.Min = other.Min
	}
	if h.Count == 0 || other.Max > h.Max {
		h.Max = other.Max
	}
	h.Count += other.Count
	h.Sum += other.Sum
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// exclusive upper edge of the bucket holding the q*Count-th sample, or Max
// when that bucket is the last occupied one. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.Count-1))
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen > rank {
			upper := h.Max
			if i > 0 && i < 63 { // 1<<63 overflows int64; that bucket's edge is Max anyway
				if edge := int64(1) << uint(i); edge-1 < upper {
					upper = edge - 1
				}
			} else if i == 0 && upper > 0 {
				upper = 0
			}
			if upper < h.Min {
				upper = h.Min
			}
			return upper
		}
	}
	return h.Max
}

// String renders the histogram compactly; empty histograms say so instead
// of printing zeros that mimic a stream of zero samples.
func (h *Histogram) String() string {
	if h.Count == 0 {
		return "n=0 (empty)"
	}
	return fmt.Sprintf("n=%d min=%d max=%d mean=%.2f p50<=%d p99<=%d",
		h.Count, h.Min, h.Max, h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
}

// Dump renders the occupied buckets one per line with the given indent.
func (h *Histogram) Dump(indent string) string {
	var b strings.Builder
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		switch {
		case i == 0:
			fmt.Fprintf(&b, "%s[..0]      %d\n", indent, c)
		case i == 1:
			fmt.Fprintf(&b, "%s[1..1]     %d\n", indent, c)
		default:
			fmt.Fprintf(&b, "%s[%d..%d] %d\n", indent, int64(1)<<uint(i-1), (int64(1)<<uint(i))-1, c)
		}
	}
	return b.String()
}
