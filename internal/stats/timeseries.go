package stats

import (
	"fmt"
	"strings"
)

// TimeSeries accumulates a value (typically bytes written) into a fixed
// number of buckets over a progress axis normalised to [0,1). It is used to
// regenerate the paper's Figure 17 (NVM write bandwidth over total progress).
type TimeSeries struct {
	buckets []int64
	// cycles[i] records the span of simulated cycles attributed to bucket i,
	// so callers can convert bytes/bucket into bytes/cycle (bandwidth).
	cycles    []int64
	lastCycle uint64
}

// NewTimeSeries creates a series with n buckets.
func NewTimeSeries(n int) *TimeSeries {
	if n <= 0 {
		n = 1
	}
	return &TimeSeries{buckets: make([]int64, n), cycles: make([]int64, n)}
}

// Len returns the number of buckets.
func (t *TimeSeries) Len() int { return len(t.buckets) }

// Record adds value to the bucket for the given progress fraction in [0,1].
func (t *TimeSeries) Record(progress float64, value int64) {
	i := t.index(progress)
	t.buckets[i] += value
}

// Tick informs the series that simulated time has advanced to cycle at the
// given progress point; the cycle delta is attributed to that bucket.
func (t *TimeSeries) Tick(progress float64, cycle uint64) {
	if cycle <= t.lastCycle {
		return
	}
	i := t.index(progress)
	t.cycles[i] += int64(cycle - t.lastCycle)
	t.lastCycle = cycle
}

func (t *TimeSeries) index(progress float64) int {
	if progress < 0 {
		progress = 0
	}
	i := int(progress * float64(len(t.buckets)))
	if i >= len(t.buckets) {
		i = len(t.buckets) - 1
	}
	return i
}

// Bucket returns the accumulated value of bucket i.
func (t *TimeSeries) Bucket(i int) int64 { return t.buckets[i] }

// Cycles returns the simulated cycles attributed to bucket i.
func (t *TimeSeries) Cycles(i int) int64 { return t.cycles[i] }

// Total returns the sum over all buckets.
func (t *TimeSeries) Total() int64 {
	var sum int64
	for _, v := range t.buckets {
		sum += v
	}
	return sum
}

// Peak returns the maximum bucket value.
func (t *TimeSeries) Peak() int64 {
	var max int64
	for _, v := range t.buckets {
		if v > max {
			max = v
		}
	}
	return max
}

// Bandwidth returns bytes-per-cycle for bucket i (0 when no cycles elapsed).
func (t *TimeSeries) Bandwidth(i int) float64 {
	if t.cycles[i] == 0 {
		return 0
	}
	return float64(t.buckets[i]) / float64(t.cycles[i])
}

// BandwidthGBs converts bucket i's bytes/cycle into GB/s at the given clock
// frequency in Hz.
func (t *TimeSeries) BandwidthGBs(i int, hz float64) float64 {
	return t.Bandwidth(i) * hz / 1e9
}

// Sparkline renders the series as a coarse ASCII chart, useful in CLI dumps.
func (t *TimeSeries) Sparkline() string {
	glyphs := []rune("▁▂▃▄▅▆▇█")
	peak := t.Peak()
	if peak == 0 {
		return strings.Repeat("▁", len(t.buckets))
	}
	var b strings.Builder
	for _, v := range t.buckets {
		idx := int(float64(v) / float64(peak) * float64(len(glyphs)-1))
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

// String summarises the series.
func (t *TimeSeries) String() string {
	return fmt.Sprintf("total=%d peak=%d %s", t.Total(), t.Peak(), t.Sparkline())
}
