package obs

import "sync"

// Bus collects events from one simulation run. It keeps the first `budget`
// events in a bounded ring for post-hoc inspection (counting the rest as
// dropped) and streams every event — including ones the ring drops — to the
// attached sinks, so aggregations never truncate.
//
// A Bus is safe for concurrent use: every method takes the bus mutex, and
// the mutable state is nvlint:guardedby-annotated so the lock discipline is
// machine-checked. The sweep engine still gives every parallel cell its own
// bus and merges the results in canonical cell order — the lock buys
// correctness for concurrent emitters (the planned serving path), not
// ordering. All methods are safe on a nil receiver and do nothing, which is
// the zero-cost guard unobserved runs rely on.
type Bus struct {
	budget int // immutable after NewBus

	mu sync.Mutex
	// nvlint:guardedby mu
	ring []Event
	// nvlint:guardedby mu
	dropped uint64
	// nvlint:guardedby mu
	seq uint64
	// nvlint:guardedby mu
	sinks []Sink
}

// DefaultBudget bounds the ring of a bus created by NewBus when the caller
// passes a negative budget. Streams that need every event attach a sink.
const DefaultBudget = 1 << 16

// NewBus returns a bus whose ring retains at most budget events. budget 0
// disables the ring entirely (sinks still see everything); a negative
// budget selects DefaultBudget.
func NewBus(budget int) *Bus {
	if budget < 0 {
		budget = DefaultBudget
	}
	return &Bus{budget: budget}
}

// Attach adds a sink; every subsequent event is forwarded to it.
func (b *Bus) Attach(s Sink) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sinks = append(b.sinks, s)
}

// Emit records one event. The sequence number is assigned here, so the
// stream's order is exactly emission order.
func (b *Bus) Emit(kind Kind, cycle uint64, actor int, epoch, addr, arg, aux uint64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.emit(Event{Cycle: cycle, Kind: kind, Actor: actor, Epoch: epoch,
		Addr: addr, Arg: arg, Aux: aux})
}

// EmitNote records one event carrying a free-form note (salvage decisions).
func (b *Bus) EmitNote(kind Kind, cycle uint64, actor int, epoch, addr, arg, aux uint64, note string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.emit(Event{Cycle: cycle, Kind: kind, Actor: actor, Epoch: epoch,
		Addr: addr, Arg: arg, Aux: aux, Note: note})
}

// emit appends one event to the ring and fans it out to the sinks.
//
// nvlint:locked mu
func (b *Bus) emit(e Event) {
	e.Seq = b.seq
	b.seq++
	if len(b.ring) < b.budget {
		b.ring = append(b.ring, e)
	} else {
		b.dropped++
	}
	for _, s := range b.sinks {
		s.Record(e)
	}
}

// Events returns the retained ring (the first min(budget, emitted) events,
// in emission order). The slice is the bus's own storage; callers must not
// mutate it.
func (b *Bus) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ring
}

// Emitted returns how many events have been emitted in total.
func (b *Bus) Emitted() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Dropped returns how many events the bounded ring did not retain. Sinks
// saw them regardless.
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}
