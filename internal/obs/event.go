// Package obs is the simulator's deterministic structured-event layer: a
// typed, epoch-stamped event stream threaded through the whole snapshot
// stack (CST frontend, OMC backend, NVM device, fault injector, recovery).
// Components emit through a *Bus reached via sim.Config.Obs; a nil bus
// makes every emission a no-op (the same record-only-when-observing guard
// trace.Heap uses), so unobserved runs pay one nil check per site.
//
// Determinism contract: events are emitted from the simulation's single
// logical thread in simulation order, stamped with a per-bus sequence
// number. A run's event stream is a pure function of its seeded
// configuration — byte-identical across -j worker counts (each sweep cell
// owns its own bus; streams are serialized in canonical cell order) and
// across seed replays. Nothing here reads wall clocks or iterates maps
// unsorted; nvlint enforces that.
package obs

import "strconv"

// Kind is the event type.
type Kind uint8

// Event kinds, one per instrumented decision in the snapshot stack.
const (
	// KindEpochAdvance is a VD-local epoch termination (store-count
	// boundary or coherence-driven jump). Actor = VD, Epoch = new epoch,
	// Arg = old epoch, Aux = 1 at a store-count boundary.
	KindEpochAdvance Kind = iota
	// KindWalkStart is a tag-walk snapshot. Actor = VD, Epoch = the
	// closing epoch, Arg = queued write-backs.
	KindWalkStart
	// KindWalkEnd is the walk's min-ver report. Actor = VD, Epoch = the
	// epoch whose walk completed, Arg = the reported min-ver.
	KindWalkEnd
	// KindVersionEvict is a dirty version leaving its VD for the OMC (or,
	// in the baselines, an L2 write-back leaving for the LLC/log). Epoch =
	// the version's OID, Addr = line address, Arg = the cst.Reason (or
	// coherence reason), Actor = VD where known (-1 otherwise).
	KindVersionEvict
	// KindOMCSeal is a sealed-epoch record append. Actor = OMC id, Epoch =
	// sealed epoch, Arg = table entries, Aux = seal log sequence.
	KindOMCSeal
	// KindOMCCommit is a commit record append. Actor = OMC id, Epoch =
	// committed rec-epoch, Arg = master-table entries, Aux = commit log
	// sequence.
	KindOMCCommit
	// KindRecEpoch is a recoverable-epoch advance. Actor = OMC id, Epoch =
	// the new rec-epoch.
	KindRecEpoch
	// KindNVMEnqueue is a device write booked on a bank. Actor = bank,
	// Addr = NVM address, Arg = bytes, Aux = bank backlog in cycles after
	// booking. Carries no epoch (the device is below the epoch layer); the
	// aggregator attributes it to the newest epoch seen so far.
	KindNVMEnqueue
	// KindNVMDrain is a bank queue entry reaching the durable array. Actor
	// = bank, Addr = first word address, Arg = words committed.
	KindNVMDrain
	// KindFault is an injected fault. Actor = bank (-1 when global), Addr/
	// Arg as in fault.Event, Aux = the fault class ordinal. Fault events
	// carry no cycle (the injector has no clock); Cycle is 0.
	KindFault
	// KindSalvage is a recovery salvage decision. Actor = partition (-1
	// for group-level decisions), Epoch = epoch concerned, Note = the
	// decision ("restored", "walked-back", "refused", or a damage kind).
	KindSalvage
	// KindIOFault is a disk-level I/O error observed by the file-backed
	// plane (injected or real). Actor = -1, Epoch = newest sealed epoch,
	// Arg = 1 when the fault is transient, Aux = the plane's mutating-op
	// ordinal where known, Note = the syscall ("write", "sync", ...).
	// Carries no cycle (the plane is below the simulated clock).
	KindIOFault
	// KindIORetry is one bounded-retry attempt against a transient disk
	// fault. Actor = -1, Epoch = newest sealed epoch, Arg = attempt index
	// (1-based), Aux = deterministic backoff ticks charged for the attempt.
	KindIORetry
	// KindPlaneWound is the plane's one-way degradation to read-only
	// wounded mode after a permanent write-path failure. Actor = -1,
	// Epoch = newest sealed epoch (still salvageable), Note = the cause.
	KindPlaneWound
	numKinds
)

// kindNames is the canonical wire spelling of each kind, in ordinal order.
var kindNames = [numKinds]string{
	"epoch_advance",
	"walk_start",
	"walk_end",
	"version_evict",
	"omc_seal",
	"omc_commit",
	"rec_epoch",
	"nvm_enqueue",
	"nvm_drain",
	"fault",
	"salvage",
	"io_fault",
	"io_retry",
	"plane_wound",
}

// String returns the canonical wire name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind" + strconv.Itoa(int(k))
}

// KindByName resolves a wire name back to its Kind.
func KindByName(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// Event is one structured observation. The zero Aux/Addr/Note fields of a
// kind that does not use them stay zero/empty, so serialized streams carry
// no incidental entropy.
type Event struct {
	Seq   uint64 // emission order on this bus, starting at 0
	Cycle uint64 // simulated cycle (0 for cycle-less layers)
	Kind  Kind
	Actor int    // VD / OMC id / bank / partition; -1 = unattributed
	Epoch uint64 // epoch stamp (0 for epoch-less layers)
	Addr  uint64
	Arg   uint64
	Aux   uint64
	Note  string // free-form tag; only salvage decisions set it
}

// AppendJSONL appends the event's canonical JSONL encoding (one line,
// fixed field order, trailing newline) to buf and returns the extended
// slice. cell, when non-empty, labels the sweep cell the event belongs to.
// The encoding is hand-rolled so byte-identity never depends on
// encoding/json internals.
func AppendJSONL(buf []byte, cell string, e Event) []byte {
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendUint(buf, e.Seq, 10)
	buf = append(buf, `,"cycle":`...)
	buf = strconv.AppendUint(buf, e.Cycle, 10)
	buf = append(buf, `,"kind":"`...)
	buf = append(buf, e.Kind.String()...)
	buf = append(buf, `","actor":`...)
	buf = strconv.AppendInt(buf, int64(e.Actor), 10)
	buf = append(buf, `,"epoch":`...)
	buf = strconv.AppendUint(buf, e.Epoch, 10)
	buf = append(buf, `,"addr":`...)
	buf = strconv.AppendUint(buf, e.Addr, 10)
	buf = append(buf, `,"arg":`...)
	buf = strconv.AppendUint(buf, e.Arg, 10)
	buf = append(buf, `,"aux":`...)
	buf = strconv.AppendUint(buf, e.Aux, 10)
	if e.Note != "" {
		buf = append(buf, `,"note":`...)
		buf = strconv.AppendQuote(buf, e.Note)
	}
	if cell != "" {
		buf = append(buf, `,"cell":`...)
		buf = strconv.AppendQuote(buf, cell)
	}
	buf = append(buf, '}', '\n')
	return buf
}
