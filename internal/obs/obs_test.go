package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestBusNilSafe(t *testing.T) {
	var b *Bus
	b.Emit(KindFault, 0, -1, 0, 0, 0, 0) // must not panic
	b.EmitNote(KindSalvage, 0, -1, 0, 0, 0, 0, "refused")
	b.Attach(Discard{})
	if b.Events() != nil || b.Emitted() != 0 || b.Dropped() != 0 {
		t.Fatal("nil bus must report nothing")
	}
}

func TestBusRingBudget(t *testing.T) {
	b := NewBus(3)
	agg := NewAggregator()
	b.Attach(agg)
	for i := 0; i < 5; i++ {
		b.Emit(KindVersionEvict, uint64(i), 0, 7, uint64(0x40*i), 0, 0)
	}
	if got := len(b.Events()); got != 3 {
		t.Fatalf("ring holds %d events, want 3", got)
	}
	if b.Emitted() != 5 || b.Dropped() != 2 {
		t.Fatalf("emitted=%d dropped=%d, want 5/2", b.Emitted(), b.Dropped())
	}
	for i, e := range b.Events() {
		if e.Seq != uint64(i) {
			t.Fatalf("ring[%d].Seq = %d (ring must keep the first events)", i, e.Seq)
		}
	}
	// Sinks see the dropped events too.
	if got := agg.Timeline()[0].DirtyLines; got != 5 {
		t.Fatalf("aggregator saw %d evicts, want 5", got)
	}
}

func TestBusZeroBudgetStreamsToSinks(t *testing.T) {
	b := NewBus(0)
	var out bytes.Buffer
	b.Attach(NewJSONLSink(&out, ""))
	b.Emit(KindEpochAdvance, 10, 2, 5, 0, 4, 1)
	if len(b.Events()) != 0 {
		t.Fatal("budget 0 must keep no ring")
	}
	if out.Len() == 0 {
		t.Fatal("sink must still receive events")
	}
}

func TestAppendJSONLGolden(t *testing.T) {
	e := Event{Seq: 3, Cycle: 120, Kind: KindNVMEnqueue, Actor: 5,
		Epoch: 0, Addr: 0x1000, Arg: 64, Aux: 12}
	got := string(AppendJSONL(nil, "", e))
	want := `{"seq":3,"cycle":120,"kind":"nvm_enqueue","actor":5,"epoch":0,"addr":4096,"arg":64,"aux":12}` + "\n"
	if got != want {
		t.Fatalf("encoding:\n got %q\nwant %q", got, want)
	}
	e2 := Event{Kind: KindSalvage, Actor: -1, Epoch: 9, Note: "refused"}
	got2 := string(AppendJSONL(nil, "NVOverlay/btree/s1", e2))
	want2 := `{"seq":0,"cycle":0,"kind":"salvage","actor":-1,"epoch":9,"addr":0,"arg":0,"aux":0,"note":"refused","cell":"NVOverlay/btree/s1"}` + "\n"
	if got2 != want2 {
		t.Fatalf("encoding:\n got %q\nwant %q", got2, want2)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Fatalf("kind %d (%s) does not round-trip", k, k)
		}
	}
	if _, ok := KindByName("bogus"); ok {
		t.Fatal("unknown name must not resolve")
	}
}

func TestValidateJSONLAccepts(t *testing.T) {
	b := NewBus(-1)
	var out bytes.Buffer
	b.Attach(NewJSONLSink(&out, "cellA"))
	b.Emit(KindEpochAdvance, 1, 0, 1, 0, 0, 1)
	b.Emit(KindWalkStart, 2, 0, 1, 0, 3, 0)
	b.EmitNote(KindSalvage, 0, -1, 1, 0, 0, 0, "restored")
	// A second cell's stream restarts at seq 0 — still valid.
	b2 := NewBus(-1)
	b2.Attach(NewJSONLSink(&out, "cellB"))
	b2.Emit(KindFault, 0, 2, 0, 0x80, 1, 0)
	n, err := ValidateJSONL(&out)
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if n != 4 {
		t.Fatalf("validated %d lines, want 4", n)
	}
}

func TestValidateJSONLRejects(t *testing.T) {
	cases := []struct {
		name  string
		lines string
		want  string
	}{
		{"not-json", "hello\n", "not a JSON object"},
		{"missing-field", `{"seq":0,"cycle":0,"kind":"fault","actor":0,"epoch":0,"addr":0,"arg":0}` + "\n", `missing field "aux"`},
		{"bad-kind", `{"seq":0,"cycle":0,"kind":"nope","actor":0,"epoch":0,"addr":0,"arg":0,"aux":0}` + "\n", "unknown kind"},
		{"negative-uint", `{"seq":0,"cycle":-1,"kind":"fault","actor":0,"epoch":0,"addr":0,"arg":0,"aux":0}` + "\n", "not a non-negative integer"},
		{"float-seq", `{"seq":0.5,"cycle":0,"kind":"fault","actor":0,"epoch":0,"addr":0,"arg":0,"aux":0}` + "\n", "not a non-negative integer"},
		{"unknown-field", `{"seq":0,"cycle":0,"kind":"fault","actor":0,"epoch":0,"addr":0,"arg":0,"aux":0,"extra":1}` + "\n", `unknown field "extra"`},
		{"seq-gap", `{"seq":0,"cycle":0,"kind":"fault","actor":0,"epoch":0,"addr":0,"arg":0,"aux":0}` + "\n" +
			`{"seq":2,"cycle":0,"kind":"fault","actor":0,"epoch":0,"addr":0,"arg":0,"aux":0}` + "\n", "gapless"},
		{"seq-not-zero", `{"seq":1,"cycle":0,"kind":"fault","actor":0,"epoch":0,"addr":0,"arg":0,"aux":0}` + "\n", "gapless"},
		{"bad-note", `{"seq":0,"cycle":0,"kind":"fault","actor":0,"epoch":0,"addr":0,"arg":0,"aux":0,"note":7}` + "\n", `field "note" is not a string`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateJSONL(strings.NewReader(tc.lines))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

// replayEvents is a small fixed stream exercising every aggregation rule.
func replayEvents(b *Bus) {
	b.Emit(KindEpochAdvance, 10, 0, 1, 0, 0, 1)
	b.Emit(KindVersionEvict, 12, 0, 1, 0x40, 0, 0)
	b.Emit(KindVersionEvict, 14, 0, 1, 0x80, 0, 0)
	b.Emit(KindWalkStart, 20, 0, 1, 0, 2, 0)
	b.Emit(KindNVMEnqueue, 22, 1, 0, 0x1000, 64, 5) // epoch-less -> epoch 1
	b.Emit(KindWalkEnd, 30, 0, 1, 0, 2, 0)
	b.Emit(KindOMCSeal, 31, 0, 1, 2, 1, 0)
	b.Emit(KindEpochAdvance, 40, 0, 2, 0, 1, 0)
	b.Emit(KindNVMEnqueue, 41, 1, 0, 0x1040, 64, 9) // -> epoch 2
	b.Emit(KindFault, 0, 1, 0, 0x1040, 0, 2)        // -> epoch 2
	b.Emit(KindOMCCommit, 45, 0, 1, 2, 1, 0)
}

func TestAggregatorRollup(t *testing.T) {
	b := NewBus(-1)
	a := NewAggregator()
	b.Attach(a)
	replayEvents(b)
	tl := a.Timeline()
	if len(tl) != 2 {
		t.Fatalf("timeline has %d epochs, want 2: %+v", len(tl), tl)
	}
	e1, e2 := tl[0], tl[1]
	if e1.Epoch != 1 || e1.Advances != 1 || e1.DirtyLines != 2 ||
		e1.Walks != 1 || e1.WalkCycles != 10 ||
		e1.NVMBytes != 64 || e1.NVMWrites != 1 || e1.MaxBankDepth != 5 ||
		e1.Seals != 1 || e1.Commits != 1 || e1.Faults != 0 {
		t.Fatalf("epoch 1 rollup = %+v", e1)
	}
	if e2.Epoch != 2 || e2.Advances != 1 || e2.NVMBytes != 64 ||
		e2.MaxBankDepth != 9 || e2.Faults != 1 {
		t.Fatalf("epoch 2 rollup = %+v", e2)
	}
	if a.BankDepth.Count != 2 || a.BankDepth.Max != 9 {
		t.Fatalf("bank-depth histogram = %+v", a.BankDepth)
	}
	if a.WalkSpan.Count != 1 || a.WalkSpan.Sum != 10 {
		t.Fatalf("walk-span histogram = %+v", a.WalkSpan)
	}
}

func TestAggregatorUnmatchedWalkEnd(t *testing.T) {
	a := NewAggregator()
	a.Record(Event{Kind: KindWalkEnd, Cycle: 5, Actor: 3, Epoch: 1})
	if a.WalkSpan.Count != 0 || len(a.Timeline()) != 0 {
		t.Fatal("an unmatched walk end must be ignored")
	}
}

func TestAggregatorMergeDeterministic(t *testing.T) {
	// One aggregator over the whole stream vs. two aggregators over a split
	// at an epoch boundary, merged: the timelines must agree.
	whole := NewAggregator()
	bw := NewBus(0)
	bw.Attach(whole)
	replayEvents(bw)

	first, second := NewAggregator(), NewAggregator()
	b1, b2 := NewBus(0), NewBus(0)
	b1.Attach(first)
	b2.Attach(second)
	b1.Emit(KindEpochAdvance, 10, 0, 1, 0, 0, 1)
	b1.Emit(KindVersionEvict, 12, 0, 1, 0x40, 0, 0)
	b1.Emit(KindVersionEvict, 14, 0, 1, 0x80, 0, 0)
	b1.Emit(KindWalkStart, 20, 0, 1, 0, 2, 0)
	b1.Emit(KindNVMEnqueue, 22, 1, 0, 0x1000, 64, 5)
	b1.Emit(KindWalkEnd, 30, 0, 1, 0, 2, 0)
	b1.Emit(KindOMCSeal, 31, 0, 1, 2, 1, 0)
	b2.Emit(KindEpochAdvance, 40, 0, 2, 0, 1, 0)
	b2.Emit(KindNVMEnqueue, 41, 1, 0, 0x1040, 64, 9)
	b2.Emit(KindFault, 0, 1, 0, 0x1040, 0, 2)
	b2.Emit(KindOMCCommit, 45, 0, 1, 2, 1, 0)
	first.Merge(second)

	w, m := whole.Timeline(), first.Timeline()
	if len(w) != len(m) {
		t.Fatalf("timeline lengths differ: %d vs %d", len(w), len(m))
	}
	for i := range w {
		if w[i] != m[i] {
			t.Fatalf("epoch %d differs:\nwhole  %+v\nmerged %+v", w[i].Epoch, w[i], m[i])
		}
	}
	if whole.BankDepth != first.BankDepth || whole.WalkSpan != first.WalkSpan {
		t.Fatal("merged histograms differ from whole-stream histograms")
	}
}

func TestJSONLSinkLatchesError(t *testing.T) {
	s := NewJSONLSink(failWriter{}, "")
	s.Record(Event{Kind: KindFault})
	if s.Err() == nil {
		t.Fatal("write error must latch")
	}
	s.Record(Event{Kind: KindFault}) // must not panic or clear the error
	if s.Err() == nil {
		t.Fatal("latched error must persist")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, errShort
}

var errShort = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "short write" }
