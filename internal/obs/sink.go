package obs

import (
	"io"
	"sort"
	"sync"

	"repro/internal/stats"
)

// Sink consumes every event a bus emits, in emission order. Sinks must not
// assume any particular call rate: hot-path kinds (NVM enqueues, version
// evicts) dominate the stream.
type Sink interface {
	Record(Event)
}

// Discard is a sink that drops everything; it exists so overhead tests can
// measure the pure emission cost with a sink attached.
type Discard struct{}

// Record implements Sink.
func (Discard) Record(Event) {}

// JSONLSink streams events to w in the canonical JSONL encoding. Writes
// are line-buffered through an internal scratch slice; the first write
// error latches and suppresses further output. Safe for concurrent use:
// Record and Err take the sink mutex (the underlying writer then needs no
// locking of its own for lines to stay whole).
type JSONLSink struct {
	w    io.Writer // immutable after NewJSONLSink
	cell string    // immutable after NewJSONLSink

	mu sync.Mutex
	// nvlint:guardedby mu
	buf []byte
	// nvlint:guardedby mu
	err error
}

// NewJSONLSink builds a sink writing to w, labelling every line with the
// given cell name ("" omits the label).
func NewJSONLSink(w io.Writer, cell string) *JSONLSink {
	return &JSONLSink{w: w, cell: cell}
}

// Record implements Sink.
func (s *JSONLSink) Record(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.buf = AppendJSONL(s.buf[:0], s.cell, e)
	_, s.err = s.w.Write(s.buf)
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// EpochRoll is one epoch's rollup in the per-epoch timeline.
type EpochRoll struct {
	Epoch uint64 `json:"epoch"`
	// Advances counts VD epoch advances that opened this epoch.
	Advances int64 `json:"epoch_advances"`
	// DirtyLines counts versions of this epoch evicted toward the OMC.
	DirtyLines int64 `json:"dirty_lines"`
	// Walks counts tag walks closing this epoch; WalkCycles is the summed
	// start-to-min-ver-report span of those walks.
	Walks      int64 `json:"tag_walks"`
	WalkCycles int64 `json:"walk_cycles"`
	// NVMBytes/NVMWrites aggregate device writes booked while this epoch
	// was the newest one observed (the device layer carries no epoch).
	NVMBytes  int64 `json:"nvm_bytes"`
	NVMWrites int64 `json:"nvm_writes"`
	// MaxBankDepth is the deepest bank backlog (cycles) seen in the epoch.
	MaxBankDepth int64 `json:"max_bank_depth"`
	// Seals/Commits count OMC seal and commit records stamped with it.
	Seals   int64 `json:"omc_seals"`
	Commits int64 `json:"omc_commits"`
	// Faults counts injected faults attributed to the epoch.
	Faults int64 `json:"faults"`
}

// walkMark remembers an in-flight tag walk per actor.
type walkMark struct {
	cycle uint64
	epoch uint64
	open  bool
}

// Aggregator folds the event stream into per-epoch rollups plus a
// log2-bucketed histogram of bank-queue depths. It is deterministic: the
// rollup depends only on the event order, and Timeline sorts by epoch.
// Record, Timeline and Merge take the aggregator mutex, so one aggregator
// can sink a concurrently shared bus; the exported histograms are read
// directly by reporting code and must only be touched after recording has
// quiesced.
type Aggregator struct {
	mu sync.Mutex
	// nvlint:guardedby mu
	rolls map[uint64]*EpochRoll
	// nvlint:guardedby mu
	walks map[int]walkMark
	// last is the newest epoch observed so far; epoch-less device events
	// are attributed to it (they were issued while it was current).
	// nvlint:guardedby mu
	last uint64
	// BankDepth observes every NVM enqueue's bank backlog in cycles.
	BankDepth stats.Histogram
	// WalkSpan observes every completed walk's start-to-report span.
	WalkSpan stats.Histogram
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{
		rolls: make(map[uint64]*EpochRoll),
		walks: make(map[int]walkMark),
	}
}

// roll returns (creating on demand) the rollup for one epoch.
//
// nvlint:locked mu
func (a *Aggregator) roll(epoch uint64) *EpochRoll {
	r := a.rolls[epoch]
	if r == nil {
		r = &EpochRoll{Epoch: epoch}
		a.rolls[epoch] = r
	}
	return r
}

// Record implements Sink.
func (a *Aggregator) Record(e Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e.Epoch > a.last {
		a.last = e.Epoch
	}
	switch e.Kind {
	case KindEpochAdvance:
		a.roll(e.Epoch).Advances++
	case KindVersionEvict:
		a.roll(e.Epoch).DirtyLines++
	case KindWalkStart:
		a.walks[e.Actor] = walkMark{cycle: e.Cycle, epoch: e.Epoch, open: true}
	case KindWalkEnd:
		m := a.walks[e.Actor]
		if !m.open {
			return // report with no observed start (stream was cut)
		}
		span := int64(e.Cycle - m.cycle)
		r := a.roll(m.epoch)
		r.Walks++
		r.WalkCycles += span
		a.WalkSpan.Observe(span)
		a.walks[e.Actor] = walkMark{}
	case KindNVMEnqueue:
		r := a.roll(a.last)
		r.NVMBytes += int64(e.Arg)
		r.NVMWrites++
		if d := int64(e.Aux); d > r.MaxBankDepth {
			r.MaxBankDepth = d
		}
		a.BankDepth.Observe(int64(e.Aux))
	case KindOMCSeal:
		a.roll(e.Epoch).Seals++
	case KindOMCCommit:
		a.roll(e.Epoch).Commits++
	case KindFault:
		a.roll(a.last).Faults++
	}
}

// Timeline returns the per-epoch rollups sorted by epoch.
func (a *Aggregator) Timeline() []EpochRoll {
	a.mu.Lock()
	defer a.mu.Unlock()
	epochs := make([]uint64, 0, len(a.rolls))
	for e := range a.rolls {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	out := make([]EpochRoll, len(epochs))
	for i, e := range epochs {
		out[i] = *a.rolls[e]
	}
	return out
}

// Merge folds another aggregator's rollups into a, epoch by epoch in
// ascending order so merged state is independent of scheduling. Transient
// walk marks are not merged: streams are only merged run-to-run, after
// every walk completed. Merge locks the receiver then the argument; the
// sweep engine merges cells from a single goroutine, so the ordering
// cannot deadlock against a concurrent reverse merge.
func (a *Aggregator) Merge(other *Aggregator) {
	a.mu.Lock()
	defer a.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
	epochs := make([]uint64, 0, len(other.rolls))
	for e := range other.rolls {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	for _, e := range epochs {
		o := other.rolls[e]
		r := a.roll(e)
		r.Advances += o.Advances
		r.DirtyLines += o.DirtyLines
		r.Walks += o.Walks
		r.WalkCycles += o.WalkCycles
		r.NVMBytes += o.NVMBytes
		r.NVMWrites += o.NVMWrites
		if o.MaxBankDepth > r.MaxBankDepth {
			r.MaxBankDepth = o.MaxBankDepth
		}
		r.Seals += o.Seals
		r.Commits += o.Commits
		r.Faults += o.Faults
	}
	if other.last > a.last {
		a.last = other.last
	}
	a.BankDepth.Merge(&other.BankDepth)
	a.WalkSpan.Merge(&other.WalkSpan)
}
