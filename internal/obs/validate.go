package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ValidateJSONL checks that every line of r conforms to the event schema
// AppendJSONL writes: required fields with the right JSON types, a known
// kind name, and per-cell sequence numbers that start at 0 and increase by
// exactly 1. It returns the number of validated event lines; the error
// pinpoints the first offending line. CI runs this over captured traces so
// schema drift between the emitter and consumers cannot land silently.
func ValidateJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lastSeq := make(map[string]uint64) // cell -> next expected seq
	lines := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		lines++
		if err := validateLine(line, lastSeq); err != nil {
			return lines, fmt.Errorf("obs: line %d: %w", lines, err)
		}
	}
	if err := sc.Err(); err != nil {
		return lines, fmt.Errorf("obs: reading stream: %w", err)
	}
	return lines, nil
}

// uintFields are the schema's required non-negative integer fields.
var uintFields = []string{"seq", "cycle", "epoch", "addr", "arg", "aux"}

func validateLine(line []byte, lastSeq map[string]uint64) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	var m map[string]any
	if err := dec.Decode(&m); err != nil {
		return fmt.Errorf("not a JSON object: %w", err)
	}
	vals := make(map[string]uint64, len(uintFields))
	for _, f := range uintFields {
		v, ok := m[f]
		if !ok {
			return fmt.Errorf("missing field %q", f)
		}
		num, ok := v.(json.Number)
		if !ok {
			return fmt.Errorf("field %q is not a number", f)
		}
		u, err := parseUint(num)
		if err != nil {
			return fmt.Errorf("field %q: %w", f, err)
		}
		vals[f] = u
	}
	actor, ok := m["actor"].(json.Number)
	if !ok {
		return fmt.Errorf("missing or non-numeric field %q", "actor")
	}
	if _, err := actor.Int64(); err != nil {
		return fmt.Errorf("field %q: %w", "actor", err)
	}
	kind, ok := m["kind"].(string)
	if !ok {
		return fmt.Errorf("missing or non-string field %q", "kind")
	}
	if _, known := KindByName(kind); !known {
		return fmt.Errorf("unknown kind %q", kind)
	}
	cell := ""
	if c, present := m["cell"]; present {
		if cell, ok = c.(string); !ok {
			return fmt.Errorf("field %q is not a string", "cell")
		}
	}
	if n, present := m["note"]; present {
		if _, ok = n.(string); !ok {
			return fmt.Errorf("field %q is not a string", "note")
		}
	}
	// Sorted so the blamed field is deterministic when several are unknown.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch k {
		case "seq", "cycle", "kind", "actor", "epoch", "addr", "arg", "aux", "note", "cell":
		default:
			return fmt.Errorf("unknown field %q", k)
		}
	}
	want := lastSeq[cell]
	if got := vals["seq"]; got != want {
		return fmt.Errorf("cell %q: seq %d, want %d (sequence must be gapless from 0)", cell, got, want)
	}
	lastSeq[cell] = want + 1
	return nil
}

func parseUint(n json.Number) (uint64, error) {
	s := n.String()
	if strings.ContainsAny(s, ".eE-") {
		return 0, fmt.Errorf("%s is not a non-negative integer", s)
	}
	var u uint64
	if err := json.Unmarshal([]byte(s), &u); err != nil {
		return 0, fmt.Errorf("%s is not a uint64", s)
	}
	return u, nil
}
