package workload

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestZipfCDFWellFormed(t *testing.T) {
	z := NewZipf(1000, 0.99)
	if z.Ranks() != 1000 {
		t.Fatalf("Ranks() = %d", z.Ranks())
	}
	if got := z.Share(1000); got != 1 {
		t.Fatalf("full share = %v", got)
	}
	if math.Abs(z.cdf[len(z.cdf)-1]-1) > 1e-12 {
		t.Fatalf("cdf does not end at 1: %v", z.cdf[len(z.cdf)-1])
	}
	for i := 1; i < len(z.cdf); i++ {
		if z.cdf[i] < z.cdf[i-1] {
			t.Fatalf("cdf not monotone at %d", i)
		}
	}
}

// TestZipfSkewSanity checks the configured traffic concentration: with the
// scale sweeps' exponents, the top 1% of ranks must soak up far more than
// their uniform share of samples, and the empirical share must track the
// analytic CDF mass.
func TestZipfSkewSanity(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		s    float64
	}{
		{"oltp-rows", OLTPRows, OLTPRowS},
		{"social-hot", 64 << 10, SocialHotS},
	} {
		z := NewZipf(tc.n, tc.s)
		top := tc.n / 100
		want := z.Share(top)
		if want < 0.20 {
			t.Fatalf("%s: top-1%% analytic share %.3f not skewed", tc.name, want)
		}
		rng := sim.NewRNG(99)
		const draws = 200000
		var hits int
		for i := 0; i < draws; i++ {
			if z.Sample(rng) < top {
				hits++
			}
		}
		got := float64(hits) / draws
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("%s: empirical top-1%% share %.3f, analytic %.3f", tc.name, got, want)
		}
	}
}

func TestZipfUniformAtZeroExponent(t *testing.T) {
	z := NewZipf(100, 0)
	if got := z.Share(50); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("uniform top-half share = %v", got)
	}
}

// TestScaleWorkloadsDeterministic locks the scale generators the same way
// TestWorkloadsAreDeterministic locks the paper's twelve: identical seeds
// must yield byte-identical op streams, including at thread counts beyond
// the historical 16-core machine.
func TestScaleWorkloadsDeterministic(t *testing.T) {
	cfg := wlCfg()
	for _, name := range []string{"oltp", "social"} {
		for _, nthreads := range []int{16, 256} {
			collect := func() []trace.Op {
				w, err := Get(name)
				if err != nil {
					t.Fatalf("Get(%q): %v", name, err)
				}
				h := trace.NewHeap(cfg)
				w.Setup(h, sim.NewRNG(7))
				h.Drain()
				r := sim.NewRNG(8)
				var all []trace.Op
				for i := 0; i < 800; i++ {
					if !w.Step(i%nthreads, h, r) {
						break
					}
					all = append(all, h.Drain()...)
				}
				return all
			}
			a, b := collect(), collect()
			if len(a) == 0 {
				t.Fatalf("%s/%d threads: empty op stream", name, nthreads)
			}
			if len(a) != len(b) {
				t.Fatalf("%s/%d threads: nondeterministic op counts %d vs %d", name, nthreads, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s/%d threads: nondeterministic op %d", name, nthreads, i)
				}
			}
		}
	}
}

// TestScaleWorkloadsMixedTraffic mirrors TestEveryWorkloadEmitsMixedTraffic
// for the generators outside Names().
func TestScaleWorkloadsMixedTraffic(t *testing.T) {
	cfg := wlCfg()
	for _, name := range []string{"oltp", "social"} {
		w, _ := Get(name)
		h := trace.NewHeap(cfg)
		w.Setup(h, sim.NewRNG(1))
		h.Drain()
		var loads, stores int
		r := sim.NewRNG(2)
		for i := 0; i < 2000; i++ {
			if !w.Step(i%256, h, r) {
				break
			}
			for _, op := range h.Drain() {
				if op.Write {
					stores++
				} else {
					loads++
				}
			}
		}
		if loads == 0 || stores == 0 {
			t.Fatalf("%s: loads=%d stores=%d after 2000 ops", name, loads, stores)
		}
		if h.Footprint() == 0 {
			t.Fatalf("%s: nothing allocated", name)
		}
	}
}

// TestGrowTids locks the auto-grow semantics the 256-thread sweeps rely on:
// existing counters never move or reset.
func TestGrowTids(t *testing.T) {
	th := newThreads(2)
	if !th.next(0) || !th.next(0) || th.next(0) {
		t.Fatal("quota broken for tid 0")
	}
	if !th.next(200) {
		t.Fatal("high tid refused")
	}
	if th.done[0] != 2 {
		t.Fatalf("tid 0 counter moved: %d", th.done[0])
	}
	if len(th.done) < 201 {
		t.Fatalf("slice not grown: %d", len(th.done))
	}
}
