package workload

import (
	"repro/internal/ds"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Vacation re-implements STAMP vacation's travel-reservation behaviour:
// four shared red-black-tree tables (cars, flights, rooms, customers);
// each transaction performs several queries and a couple of updates across
// random tables — pointer-chasing with moderate sharing.
type Vacation struct {
	th     *threads
	tables [4]*ds.RBTree
}

// NewVacation builds the benchmark.
func NewVacation() *Vacation { return &Vacation{th: newThreads(opBudget)} }

// Name implements trace.Workload.
func (w *Vacation) Name() string { return "vacation" }

// Setup implements trace.Workload: pre-populate each relation.
func (w *Vacation) Setup(h *trace.Heap, rng *sim.RNG) {
	for i := range w.tables {
		w.tables[i] = ds.NewRBTree(h)
		for j := 0; j < 8192; j++ {
			w.tables[i].Insert(rng.Uint64()%65536, rng.Uint64())
		}
	}
}

// Step implements trace.Workload: one reservation transaction.
func (w *Vacation) Step(tid int, h *trace.Heap, rng *sim.RNG) bool {
	if !w.th.next(tid) {
		return false
	}
	// Queries: price lookups across 2-4 relations.
	nq := 2 + rng.Intn(3)
	for i := 0; i < nq; i++ {
		tab := w.tables[rng.Intn(4)]
		tab.Get(rng.Uint64() % 65536)
	}
	// Updates: reserve (update/insert) in 1-2 relations.
	nu := 1 + rng.Intn(2)
	for i := 0; i < nu; i++ {
		tab := w.tables[rng.Intn(4)]
		tab.Insert(rng.Uint64()%65536, rng.Uint64())
	}
	return true
}

// Intruder re-implements STAMP intruder's packet-reassembly behaviour: a
// shared fragment map keyed by flow, per-flow fragment accumulation, and a
// detector scan over each completed flow's reassembled bytes.
type Intruder struct {
	th       *threads
	frags    *ds.HashTable
	flows    uint64 // per-flow fragment counters (shared array)
	nflows   int
	assembly uint64 // reassembly buffers
	flowSize int
}

// NewIntruder builds the benchmark.
func NewIntruder() *Intruder {
	return &Intruder{th: newThreads(opBudget), nflows: 4096, flowSize: 512}
}

// Name implements trace.Workload.
func (w *Intruder) Name() string { return "intruder" }

// Setup implements trace.Workload.
func (w *Intruder) Setup(h *trace.Heap, rng *sim.RNG) {
	w.frags = ds.NewHashTable(h, 4096)
	w.flows = h.Alloc(w.nflows * 8)
	w.assembly = h.Alloc(w.nflows * w.flowSize)
}

// Step implements trace.Workload: process one packet fragment.
func (w *Intruder) Step(tid int, h *trace.Heap, rng *sim.RNG) bool {
	if !w.th.next(tid) {
		return false
	}
	flow := rng.Intn(w.nflows)
	frag := rng.Intn(8)
	// Insert the fragment into the shared map.
	w.frags.Insert(uint64(flow)<<8|uint64(frag), rng.Uint64())
	// Bump the flow's fragment counter.
	h.Load(w.flows + uint64(flow*8))
	h.Store(w.flows + uint64(flow*8))
	// Copy the fragment payload into the reassembly buffer.
	off := w.assembly + uint64(flow*w.flowSize+frag*64)
	h.StoreRange(off, 64)
	// One in eight packets completes a flow: the detector scans it.
	if frag == 7 {
		h.LoadRange(w.assembly+uint64(flow*w.flowSize), w.flowSize)
	}
	return true
}

// Genome re-implements STAMP genome over a *real* synthetic genome: Setup
// packs a random base sequence two bits per nucleotide; sequencing
// produces overlapping windows ("reads") sampled from it. Phase 1 dedups
// segments through the shared hash table (reading the actual packed
// sequence to extract each window); phase 2 matches overlaps by probing
// the table with each unique segment's suffix half and recording the
// chain links — the Reed–de-Bruijn-style reassembly STAMP performs.
type Genome struct {
	th    *threads
	bases []uint64 // packed 2-bit nucleotides, 32 per word
	nSeq  int      // sequence length in bases
	k     int      // segment length in bases

	basesA, linksA uint64
	segments       *ds.HashTable
	inserted       []int
	segPool        []uint64 // unique segment start offsets for phase 2
	// Matches counts successful overlap links (diagnostics).
	Matches int
}

// NewGenome builds the benchmark (1M-base genome, 32-base segments).
func NewGenome() *Genome {
	return &Genome{th: newThreads(opBudget), nSeq: 1 << 20, k: 32}
}

// Name implements trace.Workload.
func (w *Genome) Name() string { return "genome" }

// Setup implements trace.Workload.
func (w *Genome) Setup(h *trace.Heap, rng *sim.RNG) {
	w.bases = make([]uint64, w.nSeq/32)
	for i := range w.bases {
		w.bases[i] = rng.Uint64()
	}
	w.basesA = h.Alloc(len(w.bases) * 8)
	w.linksA = h.Alloc(w.nSeq / w.k * 8)
	w.segments = ds.NewHashTable(h, 1<<14)
	w.inserted = make([]int, 64)
	w.segPool = make([]uint64, 1<<14)
	for i := range w.segPool {
		w.segPool[i] = uint64(rng.Intn(w.nSeq - w.k))
	}
}

// window extracts the k-base window starting at base offset off, reading
// the packed words it spans.
func (w *Genome) window(h *trace.Heap, off uint64) uint64 {
	word := off / 32
	words := uint64(w.k)/32 + 1
	h.LoadRange(w.basesA+word*8, int(words)*8)
	var v uint64
	for i := uint64(0); i <= words && word+i < uint64(len(w.bases)); i++ {
		v = v*0x9e3779b97f4a7c15 + w.bases[word+i]
	}
	return v ^ off%32 // shift phase folds into the key
}

// Step implements trace.Workload.
func (w *Genome) Step(tid int, h *trace.Heap, rng *sim.RNG) bool {
	if !w.th.next(tid) {
		return false
	}
	w.inserted = growTids(w.inserted, tid)
	if w.inserted[tid] < len(w.segPool)/16 {
		// Phase 1: sequence a read and dedup it. Reads sample the pool with
		// repetition, so duplicates really collapse in the table.
		w.inserted[tid]++
		off := w.segPool[rng.Intn(len(w.segPool))]
		seg := w.window(h, off)
		w.segments.Insert(seg, off)
		return true
	}
	// Phase 2: probe the successor window (suffix overlap); a hit links
	// the two segments in the assembly chain.
	off := w.segPool[rng.Intn(len(w.segPool))]
	next := off + uint64(w.k)/2
	if next >= uint64(w.nSeq-w.k) {
		next -= uint64(w.nSeq - w.k)
	}
	if _, ok := w.segments.Get(w.window(h, next)); ok {
		w.Matches++
		h.Store(w.linksA + (off/uint64(w.k))*8)
	}
	return true
}

// Bayes re-implements STAMP bayes' structure-learning behaviour: scans of
// a read-mostly dataset to score candidate dependencies, with small writes
// to a score cache and the learned network's adjacency structure.
type Bayes struct {
	th      *threads
	records uint64
	n, f    int
	scores  uint64 // f*f*8 score cache
	adj     uint64 // f*f bytes adjacency
}

// NewBayes builds the benchmark (64K records x 32 features).
func NewBayes() *Bayes {
	return &Bayes{th: newThreads(opBudget), n: 64 << 10, f: 32}
}

// Name implements trace.Workload.
func (w *Bayes) Name() string { return "bayes" }

// Setup implements trace.Workload.
func (w *Bayes) Setup(h *trace.Heap, rng *sim.RNG) {
	w.records = h.Alloc(w.n * w.f / 8) // bit-packed dataset
	w.scores = h.Alloc(w.f * w.f * 8)
	w.adj = h.Alloc(w.f * w.f)
}

// Step implements trace.Workload: score one candidate edge.
func (w *Bayes) Step(tid int, h *trace.Heap, rng *sim.RNG) bool {
	if !w.th.next(tid) {
		return false
	}
	a := rng.Intn(w.f)
	b := rng.Intn(w.f)
	// Sample a strided subset of records for the (a,b) contingency counts.
	start := rng.Intn(w.n / 64)
	for i := 0; i < 48; i++ {
		rec := (start + i*67) % w.n
		h.Load(w.records + uint64(rec*w.f/8))
	}
	// Update the score cache and, occasionally, the learned structure.
	h.Store(w.scores + uint64((a*w.f+b)*8))
	if rng.Intn(8) == 0 {
		h.Store(w.adj + uint64(a*w.f+b))
	}
	return true
}

// Yada re-implements STAMP yada's Delaunay-refinement behaviour: pick a
// bad triangle, read its cavity's triangles, retriangulate by writing a
// handful of new triangles, and track quality metadata in a shared
// red-black tree. Triangle records are allocated with padding gaps, which
// reproduces yada's sparse address usage (the paper's Fig 13 outlier:
// low inner-node occupancy in the Master Table).
type Yada struct {
	th    *threads
	tris  uint64
	ntris int
	pad   int
	meta  *ds.RBTree
	next  []int
}

// NewYada builds the benchmark.
func NewYada() *Yada {
	return &Yada{th: newThreads(opBudget), ntris: 1 << 17, pad: 320}
}

// Name implements trace.Workload.
func (w *Yada) Name() string { return "yada" }

// Setup implements trace.Workload.
func (w *Yada) Setup(h *trace.Heap, rng *sim.RNG) {
	// Each 64B triangle sits in its own padded slot: sparse pages.
	w.tris = h.Alloc(w.ntris * w.pad)
	w.meta = ds.NewRBTree(h)
	for i := 0; i < 4096; i++ {
		w.meta.Insert(rng.Uint64()%uint64(w.ntris), 1)
	}
	w.next = make([]int, 64)
}

func (w *Yada) tri(i int) uint64 { return w.tris + uint64(i*w.pad) }

// Step implements trace.Workload: refine one bad triangle's cavity.
func (w *Yada) Step(tid int, h *trace.Heap, rng *sim.RNG) bool {
	if !w.th.next(tid) {
		return false
	}
	w.next = growTids(w.next, tid)
	center := rng.Intn(w.ntris)
	// Read the cavity: the triangle and ~8 neighbours.
	for i := 0; i < 8; i++ {
		nb := (center + i*13) % w.ntris
		h.LoadRange(w.tri(nb), 64)
	}
	// Retriangulate: write ~6 new triangles into fresh padded slots.
	for i := 0; i < 6; i++ {
		slot := (center + 7919*(w.next[tid]+i)) % w.ntris
		h.StoreRange(w.tri(slot), 64)
	}
	w.next[tid] += 6
	// Quality metadata.
	w.meta.Insert(rng.Uint64()%uint64(w.ntris), uint64(center))
	return true
}

var _ = []trace.Workload{(*Vacation)(nil), (*Intruder)(nil), (*Genome)(nil), (*Bayes)(nil), (*Yada)(nil)}
