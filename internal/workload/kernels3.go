package workload

import (
	"math"
	"sort"

	"repro/internal/ds"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Zipf samples ranks 0..n-1 with P(k) proportional to 1/(k+1)^s via a
// precomputed CDF and binary search — deterministic given the caller's RNG,
// unlike math/rand's rejection-based zipf generator. The big-machine scale
// sweeps use it to shape multi-tenant OLTP and social-graph hot-key
// traffic, where a handful of hot tenants/keys dominate (production skew,
// not uniform microkernel traffic).
type Zipf struct {
	cdf []float64
	s   float64
}

// NewZipf builds a sampler over n ranks with exponent s (s=0 is uniform;
// s around 0.99 is the YCSB-style default).
func NewZipf(n int, s float64) *Zipf {
	z := &Zipf{cdf: make([]float64, n), s: s}
	var sum float64
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		z.cdf[k] = sum
	}
	for k := range z.cdf {
		z.cdf[k] /= sum
	}
	return z
}

// Ranks returns the number of ranks.
func (z *Zipf) Ranks() int { return len(z.cdf) }

// Sample draws one rank.
func (z *Zipf) Sample(rng *sim.RNG) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Share returns the probability mass of the top k ranks (skew-sanity
// tests check the configured traffic concentration against it).
func (z *Zipf) Share(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k >= len(z.cdf) {
		return 1
	}
	return z.cdf[k-1]
}

// OLTP skew and shape parameters, exported so tests can assert the
// configured concentration.
const (
	OLTPTenants   = 16
	OLTPRows      = 4096
	OLTPTenantS   = 1.1  // a few hot tenants dominate
	OLTPRowS      = 0.99 // YCSB-style per-tenant row skew
	oltpLogSlots  = 1 << 14
	socialUsers   = 64 << 10
	SocialHotS    = 1.2 // celebrity skew over authors/posts
	socialFanCap  = 48  // fan-out writes per post (bounded timeline push)
	socialPostCap = 1 << 15
)

// OLTP is the zipfian multi-tenant transaction mix: each tenant owns a
// hash-table index plus a row region; transactions pick a tenant by
// zipfian skew (hot tenants take most traffic), read a few zipfian-hot
// rows through the index, update one, and append a commit record to the
// shared log — the redo-log tail every tenant contends on.
type OLTP struct {
	th      *threads
	tenantZ *Zipf
	rowZ    *Zipf
	tables  []*ds.HashTable
	rowsA   []uint64
	logA    uint64
	logOff  int
}

// NewOLTP builds the benchmark.
func NewOLTP() *OLTP { return &OLTP{th: newThreads(opBudget)} }

// Name implements trace.Workload.
func (w *OLTP) Name() string { return "oltp" }

// Setup implements trace.Workload: build each tenant's index and rows.
func (w *OLTP) Setup(h *trace.Heap, rng *sim.RNG) {
	w.tenantZ = NewZipf(OLTPTenants, OLTPTenantS)
	w.rowZ = NewZipf(OLTPRows, OLTPRowS)
	w.tables = make([]*ds.HashTable, OLTPTenants)
	w.rowsA = make([]uint64, OLTPTenants)
	for t := range w.tables {
		w.tables[t] = ds.NewHashTable(h, 1024)
		for k := 0; k < OLTPRows/2; k++ {
			w.tables[t].Insert(rng.Uint64()%OLTPRows, rng.Uint64())
		}
		w.rowsA[t] = h.Alloc(OLTPRows * 64)
	}
	w.logA = h.Alloc(oltpLogSlots * 64)
}

// Step implements trace.Workload: one transaction.
func (w *OLTP) Step(tid int, h *trace.Heap, rng *sim.RNG) bool {
	if !w.th.next(tid) {
		return false
	}
	t := w.tenantZ.Sample(rng)
	// Reads: 2-4 index probes plus the row payloads.
	nr := 2 + rng.Intn(3)
	for i := 0; i < nr; i++ {
		k := w.rowZ.Sample(rng)
		w.tables[t].Get(uint64(k))
		h.LoadRange(w.rowsA[t]+uint64(k*64), 64)
	}
	// Update: read-modify-write one hot row.
	k := w.rowZ.Sample(rng)
	h.LoadRange(w.rowsA[t]+uint64(k*64), 64)
	h.StoreRange(w.rowsA[t]+uint64(k*64), 64)
	// Occasionally grow the index (new order row).
	if rng.Intn(16) == 0 {
		w.tables[t].Insert(rng.Uint64()%OLTPRows, rng.Uint64())
	}
	// Commit: append to the shared redo-log tail (all tenants contend).
	h.StoreRange(w.logA+uint64(w.logOff%oltpLogSlots)*64, 64)
	w.logOff++
	return true
}

// Social is the social-graph hot-key kernel: a power-law follower graph
// (CSR) where zipfian-selected authors post — writing the post record and
// push-fanning into their followers' timeline heads — while like traffic
// performs read-modify-writes on zipfian-hot per-post counters. Celebrity
// authors and viral posts concentrate writes on a few lines, producing
// the inter-VD hot-key coherence storm the scale sweep exercises.
type Social struct {
	th   *threads
	hotZ *Zipf

	// Real CSR follower graph (rank-skewed in-degree: celebrities).
	index []int32
	edges []int32

	indexA, edgesA uint64
	feedA, likesA  uint64
	postsA         uint64
	posted         int
	cursor         []int // per-author fan-out cursor into the follower list
}

// NewSocial builds the benchmark.
func NewSocial() *Social { return &Social{th: newThreads(opBudget)} }

// Name implements trace.Workload.
func (w *Social) Name() string { return "social" }

// Setup implements trace.Workload: generate the follower graph.
func (w *Social) Setup(h *trace.Heap, rng *sim.RNG) {
	w.hotZ = NewZipf(socialUsers, SocialHotS)
	deg := make([]int32, socialUsers)
	var edges int32
	for u := range deg {
		// Follower counts fall off with rank: the head of the zipf order
		// holds the celebrities, the tail mostly leaves.
		d := int32(1 + rng.Intn(4))
		switch {
		case u < socialUsers/1024: // top ~0.1%: celebrities
			d += int32(256 + rng.Intn(256))
		case u < socialUsers/64: // next tier: popular accounts
			d += int32(16 + rng.Intn(48))
		}
		deg[u] = d
		edges += d
	}
	w.index = make([]int32, socialUsers+1)
	for u := 0; u < socialUsers; u++ {
		w.index[u+1] = w.index[u] + deg[u]
	}
	w.edges = make([]int32, edges)
	for i := range w.edges {
		w.edges[i] = int32(rng.Intn(socialUsers))
	}
	w.indexA = h.Alloc((socialUsers + 1) * 4)
	w.edgesA = h.Alloc(int(edges) * 4)
	w.feedA = h.Alloc(socialUsers * 64)
	w.likesA = h.Alloc(socialPostCap * 8)
	w.postsA = h.Alloc(socialPostCap * 64)
	w.cursor = make([]int, socialUsers)
}

// Step implements trace.Workload: one post (with fan-out) or like burst.
func (w *Social) Step(tid int, h *trace.Heap, rng *sim.RNG) bool {
	if !w.th.next(tid) {
		return false
	}
	if rng.Intn(4) == 0 {
		// Post: a hot author writes the post record and pushes it to a
		// bounded window of followers' timeline heads.
		author := w.hotZ.Sample(rng)
		post := w.posted % socialPostCap
		w.posted++
		h.StoreRange(w.postsA+uint64(post*64), 64)
		h.Load(w.indexA + uint64(author*4))
		lo, hi := int(w.index[author]), int(w.index[author+1])
		n := hi - lo
		if n > socialFanCap {
			n = socialFanCap
		}
		start := lo
		if hi-lo > socialFanCap {
			// Rotate through the follower list so repeated posts by the
			// same celebrity touch different timeline segments.
			start = lo + (w.cursor[author] % (hi - lo - socialFanCap + 1))
			w.cursor[author] += socialFanCap
		}
		h.LoadRange(w.edgesA+uint64(start*4), n*4)
		for i := 0; i < n; i++ {
			fo := w.edges[start+i]
			h.Store(w.feedA + uint64(fo)*64)
		}
		return true
	}
	// Likes: read a hot user's feed head, then read-modify-write the hot
	// post's like counter — the shared line every domain hammers.
	reader := rng.Intn(socialUsers)
	h.Load(w.feedA + uint64(reader)*64)
	post := w.hotZ.Sample(rng) % socialPostCap
	h.Load(w.likesA + uint64(post*8))
	h.Store(w.likesA + uint64(post*8))
	return true
}

var _ = []trace.Workload{(*OLTP)(nil), (*Social)(nil)}
