// Package workload implements the paper's twelve benchmarks (§VI-C): the
// four index data-structure workloads (hash table, B+Tree, ART, red-black
// tree — insert-only with random keys, mimicking bulk database-index
// insertion) and re-implementations of the eight STAMP applications'
// memory behaviour (labyrinth, bayes, yada, intruder, vacation, kmeans,
// genome, ssca2). Every workload is a real algorithm running over the
// tracked heap; worker threads step operations against shared state, so
// coherence traffic, capacity pressure and write bursts arise naturally.
// Beyond the paper's twelve, the big-machine scale sweeps add two
// zipfian production-skew generators (oltp, social — see kernels3.go);
// they are registered for Get but excluded from Names so the default
// figure grids stay exactly the paper's.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Registry maps workload names to constructors. Sizes are tuned so a run
// of a few million accesses exhibits each benchmark's cache regime on the
// Table II machine (the paper runs 100M instructions/thread on zsim; we
// keep the same capacity relationships at simulation-friendly scale).
var registry = map[string]func() trace.Workload{
	"hashtable": func() trace.Workload { return NewDSLoad("hashtable") },
	"btree":     func() trace.Workload { return NewDSLoad("btree") },
	"art":       func() trace.Workload { return NewDSLoad("art") },
	"rbtree":    func() trace.Workload { return NewDSLoad("rbtree") },
	"labyrinth": func() trace.Workload { return NewLabyrinth() },
	"bayes":     func() trace.Workload { return NewBayes() },
	"yada":      func() trace.Workload { return NewYada() },
	"intruder":  func() trace.Workload { return NewIntruder() },
	"vacation":  func() trace.Workload { return NewVacation() },
	"kmeans":    func() trace.Workload { return NewKMeans() },
	"genome":    func() trace.Workload { return NewGenome() },
	"ssca2":     func() trace.Workload { return NewSSCA2() },
	// Beyond-the-paper scale-sweep generators (zipfian production skew).
	"oltp":   func() trace.Workload { return NewOLTP() },
	"social": func() trace.Workload { return NewSocial() },
}

// Names returns the paper's twelve workload names in Figure 11 order. The
// figure experiments iterate exactly this set, so the beyond-the-paper
// scale generators live in AllNames instead — appending them here would
// silently change the default figure grids.
func Names() []string {
	return []string{
		"hashtable", "btree", "art", "rbtree",
		"labyrinth", "bayes", "yada", "intruder",
		"vacation", "kmeans", "genome", "ssca2",
	}
}

// AllNames returns every registered workload: the paper's twelve plus the
// beyond-the-paper scale-sweep generators.
func AllNames() []string {
	return append(Names(), "oltp", "social")
}

// Get constructs a workload by name.
func Get(name string) (trace.Workload, error) {
	ctor, ok := registry[name]
	if !ok {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("workload: unknown %q (have %v)", name, known)
	}
	return ctor(), nil
}

// opBudget caps per-thread operations so workloads terminate on their own
// even when the driver's access bound is generous.
const opBudget = 1 << 20

// threads tracks per-thread completed operations.
type threads struct {
	done  []int
	quota int
}

func newThreads(quota int) *threads {
	return &threads{done: make([]int, 64), quota: quota}
}

// next reports whether tid may run another op, counting it.
func (t *threads) next(tid int) bool {
	t.done = growTids(t.done, tid)
	if t.done[tid] >= t.quota {
		return false
	}
	t.done[tid]++
	return true
}

// growTids extends a per-thread counter slice to cover tid. Workloads size
// these slices for the historical 16-core machine at construction; the
// big-machine scale sweeps run the same workloads with up to 256 threads,
// and growing on demand keeps the behaviour for existing thread ids
// byte-identical (their counters never move or reset).
func growTids(s []int, tid int) []int {
	for len(s) <= tid {
		s = append(s, 0)
	}
	return s
}

var _ = sim.NewRNG // keep import for constructors below
