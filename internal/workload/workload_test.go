package workload

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func wlCfg() *sim.Config {
	cfg := sim.DefaultConfig()
	return &cfg
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Fatalf("expected 12 workloads, have %d", len(names))
	}
	for _, n := range names {
		w, err := Get(n)
		if err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
		if w.Name() != n {
			t.Fatalf("workload %q reports name %q", n, w.Name())
		}
	}
	all := AllNames()
	if len(all) != len(registry) {
		t.Fatalf("AllNames lists %d workloads, registry has %d", len(all), len(registry))
	}
	for _, n := range all {
		w, err := Get(n)
		if err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
		if w.Name() != n {
			t.Fatalf("workload %q reports name %q", n, w.Name())
		}
	}
	if _, err := Get("nonsense"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestEveryWorkloadEmitsMixedTraffic(t *testing.T) {
	cfg := wlCfg()
	for _, name := range Names() {
		w, _ := Get(name)
		h := trace.NewHeap(cfg)
		rng := sim.NewRNG(1)
		w.Setup(h, rng)
		h.Drain()
		var loads, stores int
		perThread := sim.NewRNG(2)
		for i := 0; i < 2000; i++ {
			tid := i % 16
			if !w.Step(tid, h, perThread) {
				break
			}
			for _, op := range h.Drain() {
				if op.Write {
					stores++
				} else {
					loads++
				}
			}
		}
		if loads == 0 || stores == 0 {
			t.Fatalf("%s: loads=%d stores=%d after 2000 ops", name, loads, stores)
		}
		if h.Footprint() == 0 {
			t.Fatalf("%s: nothing allocated", name)
		}
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	cfg := wlCfg()
	for _, name := range Names() {
		collect := func() []trace.Op {
			w, _ := Get(name)
			h := trace.NewHeap(cfg)
			w.Setup(h, sim.NewRNG(7))
			h.Drain()
			r := sim.NewRNG(8)
			var all []trace.Op
			for i := 0; i < 500; i++ {
				if !w.Step(i%16, h, r) {
					break
				}
				all = append(all, h.Drain()...)
			}
			return all
		}
		a, b := collect(), collect()
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic op counts %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i].Addr != b[i].Addr || a[i].Write != b[i].Write {
				t.Fatalf("%s: nondeterministic op %d", name, i)
			}
		}
	}
}

func TestThreadsQuota(t *testing.T) {
	th := newThreads(3)
	for i := 0; i < 3; i++ {
		if !th.next(0) {
			t.Fatalf("op %d refused", i)
		}
	}
	if th.next(0) {
		t.Fatal("quota exceeded")
	}
	if !th.next(1) {
		t.Fatal("independent thread blocked")
	}
}

func TestDSLoadSharedIndexGrows(t *testing.T) {
	cfg := wlCfg()
	w := NewDSLoad("btree")
	h := trace.NewHeap(cfg)
	w.Setup(h, sim.NewRNG(1))
	r := sim.NewRNG(2)
	for i := 0; i < 1000; i++ {
		w.Step(i%16, h, r)
	}
	if w.KV().Len() < 5000 { // 4096 seed + 1000 inserts (few dup keys)
		t.Fatalf("index size = %d", w.KV().Len())
	}
}

func TestKMeansStreamingFootprint(t *testing.T) {
	cfg := wlCfg()
	w := NewKMeans()
	h := trace.NewHeap(cfg)
	w.Setup(h, sim.NewRNG(1))
	// The point stream must exceed the L2 but fit the LLC (paper §VII-B).
	if h.Footprint() < int64(cfg.L2Size)*4 {
		t.Fatalf("kmeans footprint %d too small to thrash L2", h.Footprint())
	}
	if h.Footprint() > int64(cfg.LLCSize) {
		t.Fatalf("kmeans footprint %d exceeds LLC", h.Footprint())
	}
}

func TestYadaSparseAllocation(t *testing.T) {
	cfg := wlCfg()
	w := NewYada()
	h := trace.NewHeap(cfg)
	w.Setup(h, sim.NewRNG(1))
	r := sim.NewRNG(2)
	// Collect store addresses; they must be sparse within 4KB pages (the
	// Fig 13 occupancy outlier).
	pages := map[uint64]map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		w.Step(i%16, h, r)
		for _, op := range h.Drain() {
			if !op.Write {
				continue
			}
			pg := op.Addr &^ 4095
			if pages[pg] == nil {
				pages[pg] = map[uint64]bool{}
			}
			pages[pg][op.Addr&^63] = true
		}
	}
	var lines, npages int
	for _, lns := range pages {
		npages++
		lines += len(lns)
	}
	occ := float64(lines) / float64(npages*64)
	if occ > 0.5 {
		t.Fatalf("yada page occupancy %.2f not sparse", occ)
	}
}
