package workload

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// KMeans re-implements STAMP kmeans: threads stream over a large point
// array (thrashes the small L2s, fits the LLC — the regime behind the
// paper's kmeans discussion in §VII-B), compute the nearest of k centroids
// with real squared-distance arithmetic, and accumulate into shared
// per-cluster sums, causing inter-VD coherence on the hot accumulators.
type KMeans struct {
	th        *threads
	n, k, dim int
	// Real data (mirrored at the heap addresses below).
	points    []float64
	centroids []float64
	sums      []float64
	counts    []int64

	pointsA, centroidsA, sumsA, countsA, assignA uint64
	cursor                                       []int
	pass                                         int
}

// NewKMeans builds the benchmark (64K points x 8 dims = 4 MB stream).
func NewKMeans() *KMeans {
	return &KMeans{th: newThreads(opBudget), n: 64 << 10, k: 16, dim: 8}
}

// Name implements trace.Workload.
func (w *KMeans) Name() string { return "kmeans" }

// Setup implements trace.Workload.
func (w *KMeans) Setup(h *trace.Heap, rng *sim.RNG) {
	w.points = make([]float64, w.n*w.dim)
	for i := range w.points {
		w.points[i] = rng.Float64()
	}
	w.centroids = make([]float64, w.k*w.dim)
	for i := range w.centroids {
		w.centroids[i] = rng.Float64()
	}
	w.sums = make([]float64, w.k*w.dim)
	w.counts = make([]int64, w.k)
	w.pointsA = h.Alloc(w.n * w.dim * 8)
	w.centroidsA = h.Alloc(w.k * w.dim * 8)
	w.sumsA = h.Alloc(w.k * w.dim * 8)
	w.countsA = h.Alloc(w.k * 8)
	w.assignA = h.Alloc(w.n * 8)
	w.cursor = make([]int, 64)
}

// Step implements trace.Workload: assign one point and accumulate it.
func (w *KMeans) Step(tid int, h *trace.Heap, rng *sim.RNG) bool {
	if !w.th.next(tid) {
		return false
	}
	w.cursor = growTids(w.cursor, tid)
	p := (w.cursor[tid]*16 + tid) % w.n // strided per-thread partition
	w.cursor[tid]++
	h.LoadRange(w.pointsA+uint64(p*w.dim*8), w.dim*8)
	// Real nearest-centroid search: squared Euclidean distance.
	best, bestD := 0, 1e300
	for c := 0; c < w.k; c++ {
		h.LoadRange(w.centroidsA+uint64(c*w.dim*8), w.dim*8)
		var d float64
		for j := 0; j < w.dim; j++ {
			diff := w.points[p*w.dim+j] - w.centroids[c*w.dim+j]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	h.Store(w.assignA + uint64(p*8))
	// Shared accumulators: the winning cluster's sums.
	for j := 0; j < w.dim; j++ {
		w.sums[best*w.dim+j] += w.points[p*w.dim+j]
	}
	w.counts[best]++
	h.StoreRange(w.sumsA+uint64(best*w.dim*8), w.dim*8)
	h.Store(w.countsA + uint64(best*8))
	// End of a pass: thread 0 recomputes the centroids (a write burst).
	if tid == 0 && w.cursor[0]%(w.n/16) == 0 {
		w.pass++
		for c := 0; c < w.k; c++ {
			if w.counts[c] == 0 {
				continue
			}
			for j := 0; j < w.dim; j++ {
				w.centroids[c*w.dim+j] = w.sums[c*w.dim+j] / float64(w.counts[c])
				w.sums[c*w.dim+j] = 0
			}
			w.counts[c] = 0
		}
		h.LoadRange(w.sumsA, w.k*w.dim*8)
		h.StoreRange(w.centroidsA, w.k*w.dim*8)
		h.StoreRange(w.sumsA, w.k*w.dim*8) // reset
	}
	return true
}

// SSCA2 re-implements the SSCA2 graph kernel over a *real* generated
// graph: Setup builds a CSR adjacency structure with power-law-ish degree
// skew; Step walks a vertex's actual neighbour list and performs the
// scattered per-neighbour weight updates characteristic of kernel 4
// (betweenness-style accumulation).
type SSCA2 struct {
	th *threads
	v  int
	// Real CSR graph.
	index []int32
	edges []int32

	indexA, edgesA, workA uint64
}

// NewSSCA2 builds the benchmark (128K vertices, ~8 average degree).
func NewSSCA2() *SSCA2 {
	return &SSCA2{th: newThreads(opBudget), v: 128 << 10}
}

// Name implements trace.Workload.
func (w *SSCA2) Name() string { return "ssca2" }

// Setup implements trace.Workload: generate the graph.
func (w *SSCA2) Setup(h *trace.Heap, rng *sim.RNG) {
	deg := make([]int32, w.v)
	var edges int32
	for i := range deg {
		// Skewed degrees: mostly small, a heavy tail (cliques + chains as
		// in the SSCA2 generator's clustered structure).
		d := int32(1 + rng.Intn(8))
		if rng.Intn(64) == 0 {
			d += int32(rng.Intn(56))
		}
		deg[i] = d
		edges += d
	}
	w.index = make([]int32, w.v+1)
	for i := 0; i < w.v; i++ {
		w.index[i+1] = w.index[i] + deg[i]
	}
	w.edges = make([]int32, edges)
	for i := 0; i < w.v; i++ {
		for e := w.index[i]; e < w.index[i+1]; e++ {
			// Clustered endpoints: neighbours near i with occasional long
			// jumps, as in SSCA2's inter-clique edges.
			if rng.Intn(4) == 0 {
				w.edges[e] = int32(rng.Intn(w.v))
			} else {
				w.edges[e] = int32((i + rng.Intn(512) - 256 + w.v) % w.v)
			}
		}
	}
	w.indexA = h.Alloc((w.v + 1) * 4)
	w.edgesA = h.Alloc(int(edges) * 4)
	w.workA = h.Alloc(w.v * 8)
}

// Step implements trace.Workload: process one vertex's real neighbourhood.
func (w *SSCA2) Step(tid int, h *trace.Heap, rng *sim.RNG) bool {
	if !w.th.next(tid) {
		return false
	}
	u := rng.Intn(w.v)
	h.Load(w.indexA + uint64(u*4))
	lo, hi := w.index[u], w.index[u+1]
	h.LoadRange(w.edgesA+uint64(lo*4), int(hi-lo)*4)
	// Per-neighbour accumulation: read-modify-write the neighbour's cell.
	for e := lo; e < hi; e++ {
		nb := w.edges[e]
		h.Load(w.workA + uint64(nb)*8)
		h.Store(w.workA + uint64(nb)*8)
	}
	return true
}

// Labyrinth re-implements STAMP labyrinth with a real router: each
// operation runs a bounded breadth-first wavefront expansion from a random
// source over the shared occupancy grid (reading actual cell states),
// then traces a real path toward the target and claims its cells with
// stores — the long read phase followed by a write burst that makes the
// workload bursty.
type Labyrinth struct {
	th   *threads
	dim  int
	grid []uint8 // real occupancy state
	base uint64
}

// NewLabyrinth builds the benchmark (128x128x128 grid).
func NewLabyrinth() *Labyrinth {
	return &Labyrinth{th: newThreads(opBudget), dim: 128}
}

// Name implements trace.Workload.
func (w *Labyrinth) Name() string { return "labyrinth" }

// Setup implements trace.Workload.
func (w *Labyrinth) Setup(h *trace.Heap, rng *sim.RNG) {
	w.grid = make([]uint8, w.dim*w.dim*w.dim)
	// Pre-place obstacles on ~10% of cells.
	for i := 0; i < len(w.grid)/10; i++ {
		w.grid[rng.Intn(len(w.grid))] = 0xFF
	}
	w.base = h.Alloc(len(w.grid) * 4)
}

func (w *Labyrinth) idx(x, y, z int) int { return (z*w.dim+y)*w.dim + x }

func (w *Labyrinth) cellAddr(i int) uint64 { return w.base + uint64(i*4) }

// Step implements trace.Workload: route one source->target connection.
func (w *Labyrinth) Step(tid int, h *trace.Heap, rng *sim.RNG) bool {
	if !w.th.next(tid) {
		return false
	}
	sx, sy, sz := rng.Intn(w.dim), rng.Intn(w.dim), rng.Intn(w.dim)
	tx, ty := (sx+16+rng.Intn(32))%w.dim, (sy+16+rng.Intn(32))%w.dim

	// Expansion: a bounded BFS wavefront reading real cell occupancy.
	type pt struct{ x, y, z int }
	frontier := []pt{{sx, sy, sz}}
	seen := map[int]bool{w.idx(sx, sy, sz): true}
	expanded := 0
	for len(frontier) > 0 && expanded < 256 {
		cur := frontier[0]
		frontier = frontier[1:]
		expanded++
		for _, d := range [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
			nx, ny, nz := (cur.x+d[0]+w.dim)%w.dim, (cur.y+d[1]+w.dim)%w.dim, (cur.z+d[2]+w.dim)%w.dim
			i := w.idx(nx, ny, nz)
			if seen[i] {
				continue
			}
			seen[i] = true
			h.Load(w.cellAddr(i)) // real occupancy check
			if w.grid[i] == 0 {
				frontier = append(frontier, pt{nx, ny, nz})
			}
		}
	}

	// Traceback: claim a straight-ish path from source toward target,
	// marking real grid cells (the write burst).
	cx, cy, cz := sx, sy, sz
	for steps := 0; steps < 96 && (cx != tx || cy != ty); steps++ {
		switch {
		case cx != tx:
			cx = (cx + 1) % w.dim
		case cy != ty:
			cy = (cy + 1) % w.dim
		default:
			cz = (cz + 1) % w.dim
		}
		i := w.idx(cx, cy, cz)
		if w.grid[i] == 0 {
			// tid%255+1 keeps the claim marker non-zero for every thread id
			// (identical to tid+1 for the historical <=254-thread runs).
			w.grid[i] = uint8(tid%255 + 1)
			h.Store(w.cellAddr(i))
		} else {
			h.Load(w.cellAddr(i)) // blocked: reroute reads around it
			cz = (cz + 1) % w.dim
		}
	}
	return true
}

var _ = []trace.Workload{(*KMeans)(nil), (*SSCA2)(nil), (*Labyrinth)(nil)}
