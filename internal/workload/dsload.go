package workload

import (
	"repro/internal/ds"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DSLoad is the data-structure benchmark family: 16 threads bulk-insert
// random keys into one shared index (paper §VI-C: "an insert-only workload
// with random keys to mimic bulk insertion into a database index").
type DSLoad struct {
	kind string
	kv   ds.KV
	th   *threads
}

// NewDSLoad creates the benchmark for one of "hashtable", "btree", "art",
// "rbtree".
func NewDSLoad(kind string) *DSLoad {
	return &DSLoad{kind: kind, th: newThreads(opBudget)}
}

// Name implements trace.Workload.
func (w *DSLoad) Name() string { return w.kind }

// Setup implements trace.Workload: the index is pre-warmed with a small
// seed population so early operations exercise real tree depth.
func (w *DSLoad) Setup(h *trace.Heap, rng *sim.RNG) {
	switch w.kind {
	case "hashtable":
		w.kv = ds.NewHashTable(h, 1024)
	case "btree":
		w.kv = ds.NewBTree(h)
	case "art":
		w.kv = ds.NewART(h)
	case "rbtree":
		w.kv = ds.NewRBTree(h)
	default:
		panic("workload: unknown ds kind " + w.kind)
	}
	for i := 0; i < 4096; i++ {
		w.kv.Insert(rng.Uint64(), rng.Uint64())
	}
}

// Step implements trace.Workload: one random-key insertion.
func (w *DSLoad) Step(tid int, h *trace.Heap, rng *sim.RNG) bool {
	if !w.th.next(tid) {
		return false
	}
	w.kv.Insert(rng.Uint64(), rng.Uint64())
	return true
}

// KV exposes the shared index (tests).
func (w *DSLoad) KV() ds.KV { return w.kv }
