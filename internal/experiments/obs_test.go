package experiments

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/obs"
)

// obsScale is a cheap fixed workload grid for determinism checks.
func obsScale(jobs int) Scale {
	sc := Smoke
	sc.MaxAccesses = 40_000
	sc.EpochSize = 800
	sc.Jobs = jobs
	return sc
}

var obsWorkloads = []string{"btree", "hashtable", "kmeans"}

// TestTimelineDeterministicAcrossJobs is the tentpole's acceptance bar: the
// concatenated JSONL event stream and the per-epoch timelines must be
// byte-identical whether the cells ran serially or at full parallelism.
// Run under -race this also proves per-cell bus isolation.
func TestTimelineDeterministicAcrossJobs(t *testing.T) {
	serial, err := Timeline(obsScale(1), obsWorkloads, true)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Timeline(obsScale(runtime.GOMAXPROCS(0)), obsWorkloads, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ConcatEvents(serial), ConcatEvents(par)) {
		t.Fatal("event streams differ between -j 1 and -j max")
	}
	if !reflect.DeepEqual(cellsSansEvents(serial), cellsSansEvents(par)) {
		t.Fatal("timelines differ between -j 1 and -j max")
	}
}

// TestTimelineDeterministicSeedReplay replays the same seeded grid twice and
// requires byte-identical streams.
func TestTimelineDeterministicSeedReplay(t *testing.T) {
	sc := obsScale(2)
	sc.Seed = 1234
	a, err := Timeline(sc, obsWorkloads, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Timeline(sc, obsWorkloads, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ConcatEvents(a), ConcatEvents(b)) {
		t.Fatal("event streams differ between identical seeded replays")
	}
}

// TestTimelineStreamValidates feeds the multi-cell stream back through the
// schema validator and sanity-checks the rollups carry real signal.
func TestTimelineStreamValidates(t *testing.T) {
	cells, err := Timeline(obsScale(0), obsWorkloads, true)
	if err != nil {
		t.Fatal(err)
	}
	stream := ConcatEvents(cells)
	n, err := obs.ValidateJSONL(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("captured stream fails validation: %v", err)
	}
	var emitted uint64
	for i := range cells {
		emitted += cells[i].Emitted
		if cells[i].Emitted == 0 {
			t.Fatalf("cell %s emitted no events", cells[i].CellName())
		}
		if len(cells[i].Rolls) == 0 {
			t.Fatalf("cell %s has an empty timeline", cells[i].CellName())
		}
		var dirty, nvm int64
		for _, r := range cells[i].Rolls {
			dirty += r.DirtyLines
			nvm += r.NVMBytes
		}
		if dirty == 0 || nvm == 0 {
			t.Fatalf("cell %s rollup carries no signal: dirty=%d nvm=%d",
				cells[i].CellName(), dirty, nvm)
		}
		if cells[i].BankDepth.Count == 0 {
			t.Fatalf("cell %s bank-depth histogram is empty", cells[i].CellName())
		}
	}
	if uint64(n) != emitted {
		t.Fatalf("stream has %d lines but cells emitted %d events", n, emitted)
	}
}

// TestTimelineCaptureOffMatchesOn proves capture is observation-only: the
// aggregated rollups are identical with and without the JSONL sink.
func TestTimelineCaptureOffMatchesOn(t *testing.T) {
	on, err := Timeline(obsScale(2), obsWorkloads, true)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Timeline(obsScale(2), obsWorkloads, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cellsSansEvents(on), cellsSansEvents(off)) {
		t.Fatal("rollups differ between capture on and off")
	}
}

// cellsSansEvents strips the raw streams so DeepEqual compares rollups.
func cellsSansEvents(cells []TimelineCell) []TimelineCell {
	out := make([]TimelineCell, len(cells))
	copy(out, cells)
	for i := range out {
		out[i].Events = nil
	}
	return out
}
