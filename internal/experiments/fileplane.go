package experiments

import (
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sim"
)

// FilePlaneStats summarizes one file-backed durable-plane profile: a seeded
// write/seal loop against mem.FilePlane followed by a cold LoadDir reopen
// in the same process. Every field is a deterministic function of the
// parameters — no wall-clock, no directory listing order — so the -json
// export diffs cleanly across runs and machines; wall-clock throughput for
// the same loop lives in BenchmarkFileSeal.
type FilePlaneStats struct {
	Epochs          int    `json:"epochs"`
	BurstsPerEpoch  int    `json:"bursts_per_epoch"`
	CheckpointEvery int    `json:"checkpoint_every"`
	SealedEpoch     uint64 `json:"sealed_epoch"`
	CheckpointSeq   int    `json:"checkpoint_seq"` // -1: logs only, no base image yet
	Segments        int    `json:"segments"`       // sealed delta segments layered on the checkpoint
	FilesOnDisk     int    `json:"files_on_disk"`
	BytesOnDisk     int64  `json:"bytes_on_disk"`
	WordsRestored   int    `json:"words_restored"`
	DeltaRecords    uint64 `json:"delta_records"` // bursts written across the whole run
}

// FilePlaneProfile drives the file-backed plane through epochs seals of
// perEpoch word bursts each, closes it, and cold-reopens the directory the
// way a restarted process would. dir must be fresh (OpenFilePlane refuses
// an existing store). The reopened image is checked against the plane's
// own RAM mirror before the stats are returned, so a profile that would
// publish numbers for a store that does not round-trip fails instead.
func FilePlaneProfile(dir string, epochs, perEpoch, ckptEvery int, seed int64) (FilePlaneStats, error) {
	return FilePlaneProfileFS(fault.OS, dir, epochs, perEpoch, ckptEvery, seed)
}

// FilePlaneProfileFS is FilePlaneProfile over an arbitrary filesystem.
// BenchmarkFileSealFaulted runs it against a fault-injecting in-memory
// store to price the retry policy; the profile's round-trip verification
// still applies unchanged, so a schedule that corrupts the store fails the
// profile rather than skewing its numbers.
func FilePlaneProfileFS(fsys fault.FS, dir string, epochs, perEpoch, ckptEvery int, seed int64) (FilePlaneStats, error) {
	plane, err := mem.OpenFilePlaneFS(fsys, dir, ckptEvery)
	if err != nil {
		return FilePlaneStats{}, err
	}
	rng := sim.NewRNG(seed)
	var records uint64
	burst := make([]uint64, 4)
	for e := 1; e <= epochs; e++ {
		for i := 0; i < perEpoch; i++ {
			// Cache-line-aligned bursts over a 1 MB span: wide enough that
			// checkpoints stay much larger than one epoch's delta log.
			addr := rng.Uint64n(1<<14) << 6
			for j := range burst {
				burst[j] = rng.Uint64()
			}
			plane.Apply(addr, burst)
			records++
		}
		plane.SealEpoch(uint64(e))
	}
	golden := plane.Snapshot()
	if err := plane.Close(); err != nil {
		return FilePlaneStats{}, err
	}

	img, drep, err := mem.LoadDirFS(fsys, dir)
	if err != nil {
		return FilePlaneStats{}, err
	}
	if drep.Fatal != "" || drep.Truncated || len(drep.Damage) > 0 {
		return FilePlaneStats{}, fmt.Errorf("fileplane profile: clean store reopened with damage: %+v", drep)
	}
	if img.Len() != golden.Len() {
		return FilePlaneStats{}, fmt.Errorf("fileplane profile: reopened %d words, wrote %d", img.Len(), golden.Len())
	}
	for _, addr := range golden.SortedAddrs() {
		want, _ := golden.Word(addr)
		if got, ok := img.Word(addr); !ok || got != want {
			return FilePlaneStats{}, fmt.Errorf("fileplane profile: word %#x diverged after reopen", addr)
		}
	}

	st := FilePlaneStats{
		Epochs:          epochs,
		BurstsPerEpoch:  perEpoch,
		CheckpointEvery: ckptEvery,
		SealedEpoch:     drep.SealedEpoch,
		CheckpointSeq:   drep.CheckpointSeq,
		Segments:        drep.Segments,
		WordsRestored:   img.Len(),
		DeltaRecords:    records,
	}
	// The FS seam has no Stat; sizing by reading is fine here — LoadDir just
	// read every byte of the store anyway, so the pages are warm.
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return FilePlaneStats{}, err
	}
	for _, name := range names {
		raw, err := fsys.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return FilePlaneStats{}, err
		}
		st.FilesOnDisk++
		st.BytesOnDisk += int64(len(raw))
	}
	return st, nil
}

// PrintFilePlane renders the profile in nvbench's table style.
func PrintFilePlane(w io.Writer, st FilePlaneStats) {
	fmt.Fprintf(w, "\n== fileplane: durable store profile (%d epochs x %d bursts, checkpoint every %d) ==\n",
		st.Epochs, st.BurstsPerEpoch, st.CheckpointEvery)
	fmt.Fprintf(w, "  sealed epoch    %d\n", st.SealedEpoch)
	fmt.Fprintf(w, "  delta records   %d\n", st.DeltaRecords)
	fmt.Fprintf(w, "  words restored  %d (cold reopen, verified)\n", st.WordsRestored)
	fmt.Fprintf(w, "  on disk         %d files, %d bytes (checkpoint seq %d + %d sealed segments)\n",
		st.FilesOnDisk, st.BytesOnDisk, st.CheckpointSeq, st.Segments)
}
