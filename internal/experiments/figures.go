package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/cst"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig11 regenerates Figure 11: wall-clock cycles of every scheme on every
// workload, normalised to the ideal no-snapshotting system.
func Fig11(scale Scale, workloads []string) (*Matrix, error) {
	if workloads == nil {
		workloads = workload.Names()
	}
	m := newMatrix("Fig 11: Normalized Cycles (vs no-snapshotting ideal)", workloads, SchemeNames)
	stride := 1 + len(SchemeNames) // ideal + comparison schemes per workload
	cells := make([]cellSpec, 0, len(workloads)*stride)
	for _, wl := range workloads {
		cells = append(cells, cellSpec{scheme: "Ideal", wl: wl})
		for _, sc := range SchemeNames {
			cells = append(cells, cellSpec{scheme: sc, wl: wl})
		}
	}
	res, err := runCells(scale, cells)
	if err != nil {
		return nil, err
	}
	for i, wl := range workloads {
		base := float64(res[i*stride].Sum.Cycles)
		for j, sc := range SchemeNames {
			m.Set(wl, sc, float64(res[i*stride+1+j].Sum.Cycles)/base)
		}
	}
	return m, nil
}

// Fig12 regenerates Figure 12: bytes written to NVM (data + log +
// metadata), normalised to NVOverlay, for the four hardware schemes the
// paper plots.
func Fig12(scale Scale, workloads []string) (*Matrix, error) {
	if workloads == nil {
		workloads = workload.Names()
	}
	schemes := []string{"HWShadow", "PiCL", "PiCL-L2", "NVOverlay"}
	m := newMatrix("Fig 12: NVM Write Bytes (data+log+metadata, normalized to NVOverlay)", workloads, schemes)
	stride := 1 + 3 // NVOverlay (the normalisation base) + three baselines
	cells := make([]cellSpec, 0, len(workloads)*stride)
	for _, wl := range workloads {
		cells = append(cells, cellSpec{scheme: "NVOverlay", wl: wl})
		for _, sc := range schemes[:3] {
			cells = append(cells, cellSpec{scheme: sc, wl: wl})
		}
	}
	res, err := runCells(scale, cells)
	if err != nil {
		return nil, err
	}
	for i, wl := range workloads {
		base := float64(snapshotBytes(res[i*stride].Sum))
		m.Set(wl, "NVOverlay", 1.0)
		for j, sc := range schemes[:3] {
			m.Set(wl, sc, float64(snapshotBytes(res[i*stride+1+j].Sum))/base)
		}
	}
	return m, nil
}

// snapshotBytes is the write-amplification numerator the paper uses in
// Fig 12: snapshot data, log entries and mapping metadata. Processor
// context dumps are excluded — the baselines would pay an equivalent,
// unmodelled cost.
func snapshotBytes(s trace.Summary) int64 {
	return s.DataBytes + s.LogBytes + s.MetaBytes
}

// Fig13Row is one bar of Figure 13.
type Fig13Row struct {
	Workload      string
	MasterPct     float64 // Mmaster size as % of write working set
	LeafOccupancy float64 // fraction of leaf slots mapping a line
	WorkingSetMB  float64
}

// Fig13 regenerates Figure 13: the persistent Master Table's size relative
// to the write working set, per workload, plus the leaf-occupancy statistic
// behind the paper's yada discussion.
func Fig13(scale Scale, workloads []string) ([]Fig13Row, error) {
	if workloads == nil {
		workloads = workload.Names()
	}
	cells := make([]cellSpec, len(workloads))
	for i, wl := range workloads {
		cells[i] = cellSpec{scheme: "NVOverlay", wl: wl}
	}
	res, err := runCells(scale, cells)
	if err != nil {
		return nil, err
	}
	var rows []Fig13Row
	for i, wl := range workloads {
		nvo := res[i].Scheme.(*core.NVOverlay)
		ws := nvo.Group().WorkingSetBytes()
		var pct float64
		if ws > 0 {
			pct = 100 * float64(nvo.Group().MasterBytes()) / float64(ws)
		}
		rows = append(rows, Fig13Row{
			Workload:      wl,
			MasterPct:     pct,
			LeafOccupancy: nvo.Group().LeafOccupancy(),
			WorkingSetMB:  float64(ws) / (1 << 20),
		})
	}
	return rows, nil
}

// Fig14Point is one (scheme, epoch-size) measurement of Figure 14.
type Fig14Point struct {
	Scheme     string
	EpochSize  int
	NormCycles float64 // vs ideal
	NormBytes  float64 // vs NVOverlay at the same epoch size
	RawBytes   int64   // absolute NVM bytes (trend diagnostics)
}

// Fig14 regenerates Figure 14: epoch-size sensitivity on ART for PiCL,
// PiCL-L2 and NVOverlay. Epoch sizes sweep 0.5x..4x of the scale's epoch,
// mirroring the paper's 500K..4M sweep around its 1M default.
func Fig14(scale Scale) ([]Fig14Point, error) {
	sizes := []int{scale.EpochSize / 2, scale.EpochSize, scale.EpochSize * 2, scale.EpochSize * 4}
	schemes := []string{"PiCL", "PiCL-L2", "NVOverlay"}
	const stride = 4 // Ideal + NVOverlay + PiCL + PiCL-L2 per epoch size
	cells := make([]cellSpec, 0, len(sizes)*stride)
	for _, size := range sizes {
		mod := func(c *sim.Config) { c.EpochSize = size }
		cells = append(cells,
			cellSpec{scheme: "Ideal", wl: "art", mod: mod},
			cellSpec{scheme: "NVOverlay", wl: "art", mod: mod},
			cellSpec{scheme: "PiCL", wl: "art", mod: mod},
			cellSpec{scheme: "PiCL-L2", wl: "art", mod: mod})
	}
	res, err := runCells(scale, cells)
	if err != nil {
		return nil, err
	}
	var out []Fig14Point
	for si, size := range sizes {
		ideal, nvo := res[si*stride], res[si*stride+1]
		for _, sc := range schemes {
			r := nvo
			switch sc {
			case "PiCL":
				r = res[si*stride+2]
			case "PiCL-L2":
				r = res[si*stride+3]
			}
			out = append(out, Fig14Point{
				Scheme:     sc,
				EpochSize:  size,
				NormCycles: float64(r.Sum.Cycles) / float64(ideal.Sum.Cycles),
				NormBytes:  float64(snapshotBytes(r.Sum)) / float64(snapshotBytes(nvo.Sum)),
				RawBytes:   snapshotBytes(r.Sum),
			})
		}
	}
	return out, nil
}

// Fig15Row is one stacked bar of Figure 15: the share of NVM data
// write-backs by cause.
type Fig15Row struct {
	Scheme                             string
	Walker                             bool
	CapacityPct, CoherencePct, WalkPct float64
	Total                              uint64
}

// Fig15 regenerates Figure 15: the evict-reason decomposition on ART for
// PiCL, PiCL-L2 and NVOverlay, with and without the tag walker.
func Fig15(scale Scale) ([]Fig15Row, error) {
	type variant struct {
		scheme string
		walker bool
	}
	var grid []variant
	var cells []cellSpec
	for _, walker := range []bool{true, false} {
		for _, sc := range []string{"PiCL", "PiCL-L2", "NVOverlay"} {
			grid = append(grid, variant{sc, walker})
			cells = append(cells, cellSpec{scheme: sc, wl: "art",
				mod: func(c *sim.Config) { c.TagWalker = walker }})
		}
	}
	res, err := runCells(scale, cells)
	if err != nil {
		return nil, err
	}
	var rows []Fig15Row
	for i, v := range grid {
		r := res[i]
		var capN, cohN, walkN uint64
		switch s := r.Scheme.(type) {
		case *core.NVOverlay:
			fe := s.Frontend()
			capN = fe.EvictReason(cst.ReasonCapacity) + fe.EvictReason(cst.ReasonDrain)
			cohN = fe.EvictReason(cst.ReasonCoherence) + fe.EvictReason(cst.ReasonStoreEvict)
			walkN = fe.EvictReason(cst.ReasonWalk)
		case interface {
			EvictReasons() (uint64, uint64, uint64, uint64)
		}:
			var logN uint64
			capN, cohN, walkN, logN = s.EvictReasons()
			cohN += logN // the paper groups coherence and log traffic
		}
		total := capN + cohN + walkN
		row := Fig15Row{Scheme: v.scheme, Walker: v.walker, Total: total}
		if total > 0 {
			row.CapacityPct = 100 * float64(capN) / float64(total)
			row.CoherencePct = 100 * float64(cohN) / float64(total)
			row.WalkPct = 100 * float64(walkN) / float64(total)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig16Result holds the OMC-buffer ablation of Figure 16.
type Fig16Result struct {
	NormCyclesNoBuffer float64 // with-buffer = 1.0
	WritesNoBuffer     int64   // NVM write operations
	WritesWithBuffer   int64
	BufferHitRate      float64
}

// Fig16 regenerates Figure 16: NVOverlay on ART with a single epoch for
// the whole run, with and without the battery-backed OMC buffer.
func Fig16(scale Scale) (Fig16Result, error) {
	oneEpoch := func(buf bool) func(*sim.Config) {
		return func(c *sim.Config) {
			c.EpochSize = 1 << 30 // one epoch for the entire run
			c.OMCBuffer = buf
		}
	}
	res, err := runCells(scale, []cellSpec{
		{scheme: "NVOverlay", wl: "art", mod: oneEpoch(false)},
		{scheme: "NVOverlay", wl: "art", mod: oneEpoch(true)},
	})
	if err != nil {
		return Fig16Result{}, err
	}
	noBuf, withBuf := res[0], res[1]
	nvo := withBuf.Scheme.(*core.NVOverlay)
	return Fig16Result{
		NormCyclesNoBuffer: float64(noBuf.Sum.Cycles) / float64(withBuf.Sum.Cycles),
		WritesNoBuffer:     noBuf.Scheme.NVM().TotalWrites(),
		WritesWithBuffer:   withBuf.Scheme.NVM().TotalWrites(),
		BufferHitRate:      nvo.Group().BufferHitRate(),
	}, nil
}

// Fig17Series is one curve of Figure 17.
type Fig17Series struct {
	Scheme string
	Bursty bool
	Series *stats.TimeSeries
	Hz     float64
}

// Fig17 regenerates Figure 17: NVM write bandwidth over run progress on
// the B+Tree workload, for PiCL and NVOverlay, under the default epoch and
// under the bursty time-travel-debugging epoch schedule (three windows of
// progressively larger tiny epochs, as in the paper's Fig 17b).
func Fig17(scale Scale, bursty bool) ([]Fig17Series, error) {
	mod := func(c *sim.Config) {
		if !bursty {
			return
		}
		// Three bursty windows across the run; epoch sizes scale with the
		// default the same way the paper's 1K/10K/100K relate to 1M.
		est := uint64(scale.MaxAccesses / 3) // rough stores over the run
		win := est / 10
		burst := func(div int) int {
			size := scale.EpochSize / div
			if size < 16 {
				size = 16 // an epoch below ~one operation is meaningless
			}
			return size
		}
		c.Bursts = []sim.Burst{
			{From: 1 * est / 5, To: 1*est/5 + win, Size: burst(1000)},
			{From: 2 * est / 5, To: 2*est/5 + win, Size: burst(100)},
			{From: 3 * est / 5, To: 3*est/5 + win, Size: burst(10)},
		}
	}
	schemes := []string{"PiCL", "NVOverlay"}
	cells := make([]cellSpec, len(schemes))
	for i, sc := range schemes {
		cells[i] = cellSpec{scheme: sc, wl: "btree", mod: mod}
	}
	res, err := runCells(scale, cells)
	if err != nil {
		return nil, err
	}
	var out []Fig17Series
	for i, sc := range schemes {
		cfg := sim.DefaultConfig()
		out = append(out, Fig17Series{
			Scheme: sc,
			Bursty: bursty,
			Series: res[i].Scheme.NVM().Series(),
			Hz:     cfg.ClockHz,
		})
	}
	return out, nil
}

// AblateSuperBlock quantifies §V-F's DRAM OID granularity trade-off: the
// side-band metadata footprint with per-line tags versus 4-line super
// blocks, on the B+Tree workload.
type SuperBlockResult struct {
	SideBandBytesLine  int64
	SideBandBytesSuper int64
	CyclesLine         uint64
	CyclesSuper        uint64
}

// AblateSuperBlock runs the comparison.
func AblateSuperBlock(scale Scale) (SuperBlockResult, error) {
	res, err := runCells(scale, []cellSpec{
		{scheme: "NVOverlay", wl: "btree", mod: func(c *sim.Config) { c.SuperBlock = 1 }},
		{scheme: "NVOverlay", wl: "btree", mod: func(c *sim.Config) { c.SuperBlock = 4 }},
	})
	if err != nil {
		return SuperBlockResult{}, err
	}
	line, super := res[0], res[1]
	return SuperBlockResult{
		SideBandBytesLine:  line.Scheme.(*core.NVOverlay).DRAM().SideBandBytes(),
		SideBandBytesSuper: super.Scheme.(*core.NVOverlay).DRAM().SideBandBytes(),
		CyclesLine:         line.Sum.Cycles,
		CyclesSuper:        super.Sum.Cycles,
	}, nil
}

// WalkerAblation compares NVOverlay cycles and mid-run recoverable-epoch
// progress with and without the tag walker (beyond Fig 15's decomposition):
// without walks, no min-ver reports flow and the recoverable epoch never
// advances until the final drain.
type WalkerAblation struct {
	CyclesOn, CyclesOff     uint64
	AdvancesOn, AdvancesOff int64 // mid-run rec-epoch advances
}

// AblateWalker runs the comparison on ART.
func AblateWalker(scale Scale) (WalkerAblation, error) {
	res, err := runCells(scale, []cellSpec{
		{scheme: "NVOverlay", wl: "art", mod: func(c *sim.Config) { c.TagWalker = true }},
		{scheme: "NVOverlay", wl: "art", mod: func(c *sim.Config) { c.TagWalker = false }},
	})
	if err != nil {
		return WalkerAblation{}, err
	}
	on, off := res[0], res[1]
	return WalkerAblation{
		CyclesOn:    on.Sum.Cycles,
		CyclesOff:   off.Sum.Cycles,
		AdvancesOn:  on.Scheme.Stats().Get("recepoch_advances"),
		AdvancesOff: off.Scheme.Stats().Get("recepoch_advances"),
	}, nil
}

// ScalePoint is one core-count measurement of the scalability sweep.
type ScalePoint struct {
	Cores      int
	Scheme     string
	NormCycles float64 // vs the ideal system at the same core count
}

// AblateScaling sweeps the core count (the paper's scalability motivation,
// §II-D): NVOverlay's distributed epochs and per-VD walkers should keep
// its overhead flat as the machine grows, while PiCL-L2 — the only PiCL
// variant even possible on a large non-inclusive machine — degrades.
// Cache capacities scale with the core count so per-core pressure is
// constant.
func AblateScaling(scale Scale) ([]ScalePoint, error) {
	coreCounts := []int{4, 8, 16, 32}
	schemes := []string{"PiCL-L2", "NVOverlay"}
	stride := 1 + len(schemes) // Ideal + the two schemes per core count
	cells := make([]cellSpec, 0, len(coreCounts)*stride)
	for _, cores := range coreCounts {
		mod := func(c *sim.Config) {
			base := sim.DefaultConfig()
			if scale.Machine != nil {
				scale.Machine(&base)
			}
			c.Cores = cores
			c.LLCSlices = cores / 2
			c.LLCSize = base.LLCSize / 16 * cores
			c.NVMBanks = base.NVMBanks / 16 * cores
			if c.NVMBanks < 2 {
				c.NVMBanks = 2
			}
		}
		cells = append(cells, cellSpec{scheme: "Ideal", wl: "rbtree", mod: mod})
		for _, sc := range schemes {
			cells = append(cells, cellSpec{scheme: sc, wl: "rbtree", mod: mod})
		}
	}
	res, err := runCells(scale, cells)
	if err != nil {
		return nil, err
	}
	var out []ScalePoint
	for ci, cores := range coreCounts {
		ideal := res[ci*stride]
		for j, sc := range schemes {
			r := res[ci*stride+1+j]
			out = append(out, ScalePoint{
				Cores:      cores,
				Scheme:     sc,
				NormCycles: float64(r.Sum.Cycles) / float64(ideal.Sum.Cycles),
			})
		}
	}
	return out, nil
}

var _ = fmt.Sprintf
var _ = baseline.NewIdeal
