package experiments

import (
	"repro/internal/sim"
)

// Scale256Point is one cell of the big-machine scale sweep: a (core count,
// VD layout, scheme, workload) run with its deterministic metrics. Wall
// clock is deliberately absent — the point values must stay byte-identical
// across -j and across hosts; throughput lives in nvbench's per-experiment
// accesses/sec and in the committed BENCH_scale.json capture.
type Scale256Point struct {
	Cores      int     `json:"cores"`
	VDs        int     `json:"vds"`
	OMCs       int     `json:"omcs"`
	Scheme     string  `json:"scheme"`
	Workload   string  `json:"workload"`
	Accesses   uint64  `json:"accesses"`
	Cycles     uint64  `json:"cycles"`
	NormCycles float64 `json:"norm_cycles"` // vs the ideal system at the same size
}

// Scale256Cores is the default core-count grid of the big-machine sweep.
var Scale256Cores = []int{64, 128, 256}

// Scale256Workloads is the default workload set: the zipfian multi-tenant
// OLTP mix and the social-graph hot-key kernel — production-skewed traffic
// rather than the paper's uniform microkernels, so a handful of hot lines
// are shared across most of the machine's versioned domains.
var Scale256Workloads = []string{"oltp", "social"}

// scale256Schemes are the schemes the sweep compares (the same pair as
// AblateScaling: PiCL-L2 is the only PiCL variant even possible on a large
// non-inclusive machine).
var scale256Schemes = []string{"PiCL-L2", "NVOverlay"}

// Scale256 runs the big-machine sweep: the paper stops at 16 cores, this
// pushes the same simulator to 64-256 cores / up to 256 versioned domains
// and reports overhead against a same-size ideal machine. Cache capacity,
// LLC slices, NVM banks and OMC partitions all scale with the core count
// (constant per-core pressure, the AblateScaling recipe); each core count
// runs at the default 2 cores/VD, and the 256-core point additionally runs
// a 1-core/VD layout — the full 256-domain directory the sharded SharerSet
// exists for. nil coreCounts/workloads select the default grids.
func Scale256(scale Scale, coreCounts []int, workloads []string) ([]Scale256Point, error) {
	if coreCounts == nil {
		coreCounts = Scale256Cores
	}
	if workloads == nil {
		workloads = Scale256Workloads
	}
	type layout struct{ cores, cpv int }
	var layouts []layout
	for _, cores := range coreCounts {
		layouts = append(layouts, layout{cores, 2})
		if cores >= 256 {
			layouts = append(layouts, layout{cores, 1})
		}
	}
	stride := 1 + len(scale256Schemes) // Ideal + the compared schemes
	cells := make([]cellSpec, 0, len(layouts)*len(workloads)*stride)
	for _, l := range layouts {
		mod := scale256Machine(scale, l.cores, l.cpv)
		for _, wl := range workloads {
			cells = append(cells, cellSpec{scheme: "Ideal", wl: wl, mod: mod})
			for _, sc := range scale256Schemes {
				cells = append(cells, cellSpec{scheme: sc, wl: wl, mod: mod})
			}
		}
	}
	res, err := runCells(scale, cells)
	if err != nil {
		return nil, err
	}
	var out []Scale256Point
	i := 0
	for _, l := range layouts {
		for _, wl := range workloads {
			ideal := res[i]
			for j, sc := range scale256Schemes {
				r := res[i+1+j]
				out = append(out, Scale256Point{
					Cores:      l.cores,
					VDs:        l.cores / l.cpv,
					OMCs:       l.cores / 4,
					Scheme:     sc,
					Workload:   wl,
					Accesses:   r.Sum.Accesses,
					Cycles:     r.Sum.Cycles,
					NormCycles: float64(r.Sum.Cycles) / float64(ideal.Sum.Cycles),
				})
			}
			i += stride
		}
	}
	return out, nil
}

// scale256Machine grows the Table II machine to the given core count with
// constant per-core pressure: LLC capacity, slice count, NVM banks and OMC
// partitions all scale linearly from the 16-core baseline (4 OMCs at 16
// cores, the paper's one-per-memory-controller layout).
func scale256Machine(scale Scale, cores, cpv int) func(*sim.Config) {
	return func(c *sim.Config) {
		base := sim.DefaultConfig()
		if scale.Machine != nil {
			scale.Machine(&base)
		}
		c.Cores = cores
		c.CoresPerVD = cpv
		c.LLCSlices = cores / 2
		c.LLCSize = base.LLCSize / 16 * cores
		c.NVMBanks = base.NVMBanks / 16 * cores
		if c.NVMBanks < 2 {
			c.NVMBanks = 2
		}
		c.OMCs = cores / 4
	}
}
