package experiments

import (
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracefile"
)

// TraceFileStats summarizes one trace-codec profile: a synthetic access
// stream encoded to a TRC1 file and decoded back with full verification.
// The size fields are deterministic functions of (records, seed); the
// throughput fields are wall-clock measurements and therefore pointers —
// nil (omitted from JSON) when no clock is injected, so deterministic
// consumers can diff the rest.
type TraceFileStats struct {
	Records        uint64  `json:"records"`
	Chunks         int     `json:"chunks"`
	BytesOnDisk    int64   `json:"bytes_on_disk"`
	BytesPerAccess float64 `json:"bytes_per_access"`

	EncodeAccessesPerSec *float64 `json:"encode_accesses_per_sec,omitempty"`
	DecodeAccessesPerSec *float64 `json:"decode_accesses_per_sec,omitempty"`
}

// traceFileBlock pre-generates the repeating access block the profile
// streams: a fixed-size slice reused for any record count, so the
// profile's memory stays flat in trace length and the measured loop is
// codec cost, not generation cost. The mix mirrors a driver stream —
// 16 threads, line-aligned addresses over a 16 MB span, half stores with
// monotonic payload tokens.
func traceFileBlock(seed int64) []trace.Access {
	rng := sim.NewRNG(seed)
	block := make([]trace.Access, 1<<16)
	var token uint64
	for i := range block {
		a := trace.Access{
			Tid:  int(rng.Uint64n(16)),
			Addr: (1 << 30) + rng.Uint64n(1<<18)<<6,
		}
		if rng.Uint64n(100) < 50 {
			token++
			a.Write = true
			a.Data = token
		}
		block[i] = a
	}
	return block
}

// TraceFileProfile encodes a records-long synthetic stream into a TRC1
// trace at path, then decodes it back, verifying every record and the
// counters before publishing any numbers. clock is an injected monotonic
// seconds source (the sim layer bans wall-clock reads; cmd/nvbench
// supplies one); with a nil clock the throughput fields stay nil and the
// remaining stats are fully deterministic.
func TraceFileProfile(fsys fault.FS, path string, records uint64, seed int64, clock func() float64) (TraceFileStats, error) {
	if records == 0 {
		return TraceFileStats{}, fmt.Errorf("tracefile profile: need at least one record")
	}
	block := traceFileBlock(seed)
	now := clock
	if now == nil {
		now = func() float64 { return 0 }
	}

	shape := tracefile.Shape{Cores: 16, CoresPerVD: 4, LineSize: 64, Seed: seed}
	encStart := now()
	w, err := tracefile.Create(fsys, path, shape)
	if err != nil {
		return TraceFileStats{}, err
	}
	j := 0
	for i := uint64(0); i < records; i++ {
		if err := w.Append(block[j]); err != nil {
			return TraceFileStats{}, err
		}
		if j++; j == len(block) {
			j = 0
		}
	}
	if err := w.Close(); err != nil {
		return TraceFileStats{}, err
	}
	encSecs := now() - encStart

	// Timed pass: pure decode, so the published rate is the codec's, not
	// the harness's compare loop.
	decStart := now()
	r, err := tracefile.OpenReader(fsys, path)
	if err != nil {
		return TraceFileStats{}, err
	}
	var decoded uint64
	for {
		if _, err := r.Next(); err != nil {
			if err == io.EOF {
				break
			}
			return TraceFileStats{}, fmt.Errorf("tracefile profile: decode at record %d: %w", decoded, err)
		}
		decoded++
	}
	decSecs := now() - decStart
	if cerr := r.Close(); cerr != nil {
		return TraceFileStats{}, cerr
	}
	if decoded != records || r.Records() != records {
		return TraceFileStats{}, fmt.Errorf("tracefile profile: decoded %d records (reader counted %d), wrote %d", decoded, r.Records(), records)
	}
	if r.Chunks() != w.Chunks() {
		return TraceFileStats{}, fmt.Errorf("tracefile profile: decoded %d chunks, wrote %d", r.Chunks(), w.Chunks())
	}

	// Untimed pass: verify every decoded record against the source stream
	// before publishing any numbers.
	v, err := tracefile.OpenReader(fsys, path)
	if err != nil {
		return TraceFileStats{}, err
	}
	j = 0
	for k := uint64(0); k < records; k++ {
		a, err := v.Next()
		if err != nil {
			return TraceFileStats{}, fmt.Errorf("tracefile profile: verify at record %d: %w", k, err)
		}
		if a != block[j] {
			return TraceFileStats{}, fmt.Errorf("tracefile profile: record %d decoded as %+v, want %+v", k, a, block[j])
		}
		if j++; j == len(block) {
			j = 0
		}
	}
	if _, err := v.Next(); err != io.EOF {
		return TraceFileStats{}, fmt.Errorf("tracefile profile: trailing records beyond %d", records)
	}
	if cerr := v.Close(); cerr != nil {
		return TraceFileStats{}, cerr
	}

	st := TraceFileStats{
		Records:        records,
		Chunks:         w.Chunks(),
		BytesOnDisk:    w.Bytes(),
		BytesPerAccess: float64(w.Bytes()) / float64(records),
	}
	if clock != nil {
		if rate := rateOf(records, encSecs); rate != nil {
			st.EncodeAccessesPerSec = rate
		}
		if rate := rateOf(records, decSecs); rate != nil {
			st.DecodeAccessesPerSec = rate
		}
	}
	return st, nil
}

// rateOf converts a count over a duration into an accesses/sec pointer,
// nil when the duration is unusable (zero, negative, or non-finite).
func rateOf(count uint64, secs float64) *float64 {
	if secs <= 0 {
		return nil
	}
	v := float64(count) / secs
	return &v
}

// PrintTraceFile renders the profile in nvbench's table style.
func PrintTraceFile(w io.Writer, st TraceFileStats) {
	fmt.Fprintf(w, "\n== tracefile: TRC1 codec profile (%d accesses) ==\n", st.Records)
	fmt.Fprintf(w, "  on disk        %d bytes in %d chunks (%.2f bytes/access)\n",
		st.BytesOnDisk, st.Chunks, st.BytesPerAccess)
	if st.EncodeAccessesPerSec != nil {
		fmt.Fprintf(w, "  encode         %.1fM accesses/sec\n", *st.EncodeAccessesPerSec/1e6)
	}
	if st.DecodeAccessesPerSec != nil {
		fmt.Fprintf(w, "  decode         %.1fM accesses/sec\n", *st.DecodeAccessesPerSec/1e6)
	}
}
