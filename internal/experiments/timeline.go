package experiments

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TimelineCell is one workload's observed NVOverlay run: the per-epoch
// rollup timeline, the occupancy histograms, and (when captured) the raw
// JSONL event stream labelled with the cell name.
type TimelineCell struct {
	Scheme   string          `json:"scheme"`
	Workload string          `json:"workload"`
	Emitted  uint64          `json:"events_emitted"`
	Rolls    []obs.EpochRoll `json:"timeline"`
	// BankDepth aggregates every NVM enqueue's bank backlog (cycles);
	// WalkSpan every tag walk's start-to-report span.
	BankDepth stats.Histogram `json:"-"`
	WalkSpan  stats.Histogram `json:"-"`
	// Events is the cell's canonical JSONL stream (nil unless captured).
	Events []byte `json:"-"`
}

// CellName labels a timeline cell's events in a multi-cell stream.
func (c *TimelineCell) CellName() string { return c.Scheme + "/" + c.Workload }

// Timeline runs NVOverlay over the given workloads at scale with the
// observability layer attached and returns one cell per workload, in
// workload order. Each parallel cell owns its own bus, JSONL buffer and
// aggregator (written through a slot-indexed slice, so workers never share
// state); concatenating the cells' Events in return order therefore yields
// a byte-identical multi-cell stream at every scale.Jobs. capture selects
// whether the raw JSONL streams are kept (the aggregations always run).
func Timeline(sc Scale, wls []string, capture bool) ([]TimelineCell, error) {
	out := make([]TimelineCell, len(wls))
	buses := make([]*obs.Bus, len(wls))
	bufs := make([]*bytes.Buffer, len(wls))
	aggs := make([]*obs.Aggregator, len(wls))
	cells := make([]cellSpec, len(wls))
	for i, wl := range wls {
		out[i] = TimelineCell{Scheme: "NVOverlay", Workload: wl}
		buses[i] = obs.NewBus(0) // sinks see everything; no ring needed
		aggs[i] = obs.NewAggregator()
		buses[i].Attach(aggs[i])
		if capture {
			bufs[i] = &bytes.Buffer{}
			buses[i].Attach(obs.NewJSONLSink(bufs[i], out[i].CellName()))
		}
		bus := buses[i]
		cells[i] = cellSpec{scheme: "NVOverlay", wl: wl,
			mod: func(c *sim.Config) { c.Obs = bus }}
	}
	if _, err := runCells(sc, cells); err != nil {
		return nil, err
	}
	for i := range out {
		out[i].Emitted = buses[i].Emitted()
		out[i].Rolls = aggs[i].Timeline()
		out[i].BankDepth = aggs[i].BankDepth
		out[i].WalkSpan = aggs[i].WalkSpan
		if capture {
			out[i].Events = bufs[i].Bytes()
		}
	}
	return out, nil
}

// ConcatEvents joins the cells' captured JSONL streams in cell order. The
// result is the canonical multi-cell stream: per-cell sequence numbers are
// gapless from 0, and obs.ValidateJSONL accepts it as a whole.
func ConcatEvents(cells []TimelineCell) []byte {
	var buf []byte
	for i := range cells {
		buf = append(buf, cells[i].Events...)
	}
	return buf
}

// PrintTimeline renders the per-epoch rollups as fixed-width text, one
// block per cell, for nvbench's human-readable -timeline output.
func PrintTimeline(w io.Writer, cells []TimelineCell) {
	for i := range cells {
		c := &cells[i]
		fmt.Fprintf(w, "== timeline %s (%d events) ==\n", c.CellName(), c.Emitted)
		fmt.Fprintf(w, "%8s %9s %11s %7s %11s %11s %10s %6s %8s %7s\n",
			"epoch", "advances", "dirty_lines", "walks", "walk_cycles",
			"nvm_bytes", "nvm_writes", "seals", "commits", "faults")
		for _, r := range c.Rolls {
			fmt.Fprintf(w, "%8d %9d %11d %7d %11d %11d %10d %6d %8d %7d\n",
				r.Epoch, r.Advances, r.DirtyLines, r.Walks, r.WalkCycles,
				r.NVMBytes, r.NVMWrites, r.Seals, r.Commits, r.Faults)
		}
		fmt.Fprintf(w, "  bank depth: %s\n", c.BankDepth.String())
		fmt.Fprintf(w, "  walk span:  %s\n", c.WalkSpan.String())
	}
}
