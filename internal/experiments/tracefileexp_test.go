package experiments

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracefile"
	"repro/internal/workload"
)

// TestTraceFileProfileDeterministic: without a clock the profile's stats
// are a pure function of (records, seed) and the throughput fields stay
// omitted.
func TestTraceFileProfileDeterministic(t *testing.T) {
	run := func() TraceFileStats {
		st, err := TraceFileProfile(fault.NewMemFS(), "p.trc", 200_000, 7, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("profile not deterministic:\n%+v\n%+v", a, b)
	}
	if a.EncodeAccessesPerSec != nil || a.DecodeAccessesPerSec != nil {
		t.Fatalf("clockless profile reported throughput: %+v", a)
	}
	if a.Records != 200_000 || a.Chunks < 2 || a.BytesOnDisk <= 0 {
		t.Fatalf("profile counters implausible: %+v", a)
	}
	// Delta/varint encoding must land well under raw 25-byte records.
	if a.BytesPerAccess > 10 {
		t.Fatalf("%.2f bytes/access — compression is not working", a.BytesPerAccess)
	}

	// With a fake clock the rates appear and use the injected times.
	ticks := 0.0
	clock := func() float64 { ticks += 0.5; return ticks }
	st, err := TraceFileProfile(fault.NewMemFS(), "p.trc", 10_000, 7, clock)
	if err != nil {
		t.Fatal(err)
	}
	if st.EncodeAccessesPerSec == nil || st.DecodeAccessesPerSec == nil {
		t.Fatalf("clocked profile missing throughput: %+v", st)
	}
}

// TestDriverRecordReplayThroughTraceFile is the acceptance lock at the
// experiments level: a real NVOverlay scheme driven by a real workload,
// recorded through the on-disk codec, then replayed from the file into a
// fresh scheme — scheme stats, NVM byte counters, clocks and the final
// golden image must all be byte-identical.
func TestDriverRecordReplayThroughTraceFile(t *testing.T) {
	const maxAccesses = 120_000
	cfg := sim.DefaultConfig()
	cfg.EpochSize = 4_000

	runRecorded := func(fsys fault.FS) (trace.Summary, string) {
		c := cfg
		s, err := NewScheme("NVOverlay", &c)
		if err != nil {
			t.Fatal(err)
		}
		wl, err := workload.Get("hashtable")
		if err != nil {
			t.Fatal(err)
		}
		d := trace.NewDriver(&c, s, wl, maxAccesses)
		w, err := tracefile.Create(fsys, "run.trc", tracefile.Shape{
			Cores: c.Cores, CoresPerVD: c.CoresPerVD, LineSize: c.LineSize, Seed: c.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.SetSink(w)
		sum := d.Run()
		if err := d.SinkErr(); err != nil {
			t.Fatalf("record sink: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if w.Records() != sum.Accesses {
			t.Fatalf("recorded %d accesses, driver issued %d", w.Records(), sum.Accesses)
		}
		return sum, s.Stats().String()
	}

	replayFromFile := func(fsys fault.FS) (trace.Summary, string) {
		c := cfg
		s, err := NewScheme("NVOverlay", &c)
		if err != nil {
			t.Fatal(err)
		}
		r, err := tracefile.OpenReader(fsys, "run.trc")
		if err != nil {
			t.Fatal(err)
		}
		d := trace.NewDriver(&c, s, nil, maxAccesses)
		sum, err := d.RunReplay(r)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		return sum, s.Stats().String()
	}

	fsys := fault.NewMemFS()
	want, wantStats := runRecorded(fsys)
	got, gotStats := replayFromFile(fsys)
	if wantStats != gotStats {
		t.Fatalf("scheme stats diverged under file replay:\nrecorded:\n%s\nreplayed:\n%s", wantStats, gotStats)
	}

	// Workload identity and heap footprint legitimately differ (no
	// workload ran on the replay side); everything the scheme computed
	// must not.
	want.Workload, got.Workload = "", ""
	want.Ops, got.Ops = 0, 0
	want.Footprint, got.Footprint = 0, 0
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("file replay diverged from the recorded run:\nrecorded %+v\nreplayed %+v", want, got)
	}
}
