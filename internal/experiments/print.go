package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// PrintMatrix renders a workloads x schemes table in the paper's layout.
func PrintMatrix(w io.Writer, m *Matrix) {
	fmt.Fprintf(w, "%s\n", m.Title)
	fmt.Fprintf(w, "%-12s", "workload")
	for _, sc := range m.Schemes {
		fmt.Fprintf(w, "%12s", sc)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 12+12*len(m.Schemes)))
	for _, wl := range m.Workloads {
		fmt.Fprintf(w, "%-12s", wl)
		for _, sc := range m.Schemes {
			fmt.Fprintf(w, "%12.2f", m.Get(wl, sc))
		}
		fmt.Fprintln(w)
	}
}

// PrintFig13 renders the mapping-metadata-cost bars.
func PrintFig13(w io.Writer, rows []Fig13Row) {
	fmt.Fprintln(w, "Fig 13: Persistent Mapping Metadata Cost (Mmaster as % of write working set)")
	fmt.Fprintf(w, "%-12s %12s %14s %14s\n", "workload", "Mmaster(%)", "leaf occ", "workset MB")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12.1f %14.3f %14.2f\n", r.Workload, r.MasterPct, r.LeafOccupancy, r.WorkingSetMB)
	}
}

// PrintFig14 renders the epoch-size sensitivity points.
func PrintFig14(w io.Writer, pts []Fig14Point) {
	fmt.Fprintln(w, "Fig 14: Sensitivity to epoch size (ART)")
	fmt.Fprintf(w, "%-12s %12s %14s %14s\n", "scheme", "epoch", "norm cycles", "norm bytes")
	for _, p := range pts {
		fmt.Fprintf(w, "%-12s %12d %14.2f %14.2f\n", p.Scheme, p.EpochSize, p.NormCycles, p.NormBytes)
	}
}

// PrintFig15 renders the evict-reason decomposition.
func PrintFig15(w io.Writer, rows []Fig15Row) {
	fmt.Fprintln(w, "Fig 15: Evict Reason Decomposition (ART; % of NVM data write-backs)")
	fmt.Fprintf(w, "%-12s %8s %12s %14s %10s %12s\n", "scheme", "walker", "capacity%", "coherence/log%", "walk%", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8v %12.1f %14.1f %10.1f %12d\n",
			r.Scheme, r.Walker, r.CapacityPct, r.CoherencePct, r.WalkPct, r.Total)
	}
}

// PrintFig16 renders the OMC-buffer ablation.
func PrintFig16(w io.Writer, r Fig16Result) {
	fmt.Fprintln(w, "Fig 16: Reducing Writes with OMC Buffer (ART, single epoch)")
	fmt.Fprintf(w, "  normalized cycles without buffer: %.2f (with buffer = 1.00)\n", r.NormCyclesNoBuffer)
	fmt.Fprintf(w, "  NVM writes: %d (no buffer) vs %d (with buffer)\n", r.WritesNoBuffer, r.WritesWithBuffer)
	fmt.Fprintf(w, "  buffer hit rate: %.1f%%\n", 100*r.BufferHitRate)
}

// PrintFig17 renders the bandwidth time series as peak/mean plus an ASCII
// sparkline per curve.
func PrintFig17(w io.Writer, series []Fig17Series) {
	label := "1M default epoch"
	if len(series) > 0 && series[0].Bursty {
		label = "bursty epochs"
	}
	fmt.Fprintf(w, "Fig 17: NVM Write Bandwidth Time Series (B+Tree, %s)\n", label)
	for _, s := range series {
		var peak, sum float64
		n := 0
		for i := 0; i < s.Series.Len(); i++ {
			bw := s.Series.BandwidthGBs(i, s.Hz)
			if bw > peak {
				peak = bw
			}
			if s.Series.Cycles(i) > 0 {
				sum += bw
				n++
			}
		}
		mean := 0.0
		if n > 0 {
			mean = sum / float64(n)
		}
		fmt.Fprintf(w, "  %-10s peak %6.2f GB/s  mean %6.2f GB/s  %s\n",
			s.Scheme, peak, mean, s.Series.Sparkline())
	}
}

// PrintConfig renders Table II.
func PrintConfig(w io.Writer, cfg *sim.Config) {
	fmt.Fprintln(w, "Table II: Simulated Configuration")
	fmt.Fprintf(w, "  Processor   %d cores, %d-wide VDs, %.0f GHz\n",
		cfg.Cores, cfg.CoresPerVD, cfg.ClockHz/1e9)
	fmt.Fprintf(w, "  L1-D cache  %d KB, %d B lines, %d-way, %d cycles\n",
		cfg.L1Size>>10, cfg.LineSize, cfg.L1Ways, cfg.L1Latency)
	fmt.Fprintf(w, "  L2 cache    %d KB, %d B lines, %d-way, %d cycles\n",
		cfg.L2Size>>10, cfg.LineSize, cfg.L2Ways, cfg.L2Latency)
	fmt.Fprintf(w, "  Shared LLC  %d MB, %d slices, %d-way, %d cycles\n",
		cfg.LLCSize>>20, cfg.LLCSlices, cfg.LLCWays, cfg.LLCLatency)
	fmt.Fprintf(w, "  DRAM        %d-cycle access\n", cfg.DRAMLatency)
	fmt.Fprintf(w, "  NVDIMM      %d banks, %d-cycle (133 ns) write\n", cfg.NVMBanks, cfg.NVMWriteLat)
	fmt.Fprintf(w, "  Epoch       %d store uops per VD\n", cfg.EpochSize)
}

// PrintSuperBlock renders the §V-F ablation.
func PrintSuperBlock(w io.Writer, r SuperBlockResult) {
	fmt.Fprintln(w, "Ablation: DRAM OID granularity (§V-F, B+Tree)")
	fmt.Fprintf(w, "  side-band bytes: %d (per line) vs %d (4-line super block, %.1fx smaller)\n",
		r.SideBandBytesLine, r.SideBandBytesSuper,
		float64(r.SideBandBytesLine)/float64(maxInt64(r.SideBandBytesSuper, 1)))
	fmt.Fprintf(w, "  cycles: %d vs %d\n", r.CyclesLine, r.CyclesSuper)
}

// PrintWalker renders the walker ablation.
func PrintWalker(w io.Writer, r WalkerAblation) {
	fmt.Fprintln(w, "Ablation: tag walker (ART)")
	fmt.Fprintf(w, "  cycles: %d (on) vs %d (off)\n", r.CyclesOn, r.CyclesOff)
	fmt.Fprintf(w, "  mid-run rec-epoch advances: %d (on) vs %d (off)\n", r.AdvancesOn, r.AdvancesOff)
}

// PrintScaling renders the core-count sweep.
func PrintScaling(w io.Writer, pts []ScalePoint) {
	fmt.Fprintln(w, "Ablation: core-count scaling (rbtree; overhead vs same-size ideal)")
	fmt.Fprintf(w, "%-8s %12s %14s\n", "cores", "scheme", "norm cycles")
	for _, p := range pts {
		fmt.Fprintf(w, "%-8d %12s %14.2f\n", p.Cores, p.Scheme, p.NormCycles)
	}
}

// PrintScale256 renders the big-machine scale sweep.
func PrintScale256(w io.Writer, pts []Scale256Point) {
	fmt.Fprintln(w, "Scale sweep: 64-256 cores under zipfian multi-tenant traffic (overhead vs same-size ideal)")
	fmt.Fprintf(w, "%-8s %-6s %-6s %-10s %12s %12s %14s\n",
		"cores", "vds", "omcs", "workload", "scheme", "cycles", "norm cycles")
	for _, p := range pts {
		fmt.Fprintf(w, "%-8d %-6d %-6d %-10s %12s %12d %14.2f\n",
			p.Cores, p.VDs, p.OMCs, p.Workload, p.Scheme, p.Cycles, p.NormCycles)
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
