package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// The shape assertions below encode the paper's qualitative findings at
// smoke scale: orderings and rough factors, not absolute numbers.

func TestNewSchemeKnowsAll(t *testing.T) {
	cfg := sim.DefaultConfig()
	for _, name := range append([]string{"Ideal"}, SchemeNames...) {
		s, err := NewScheme(name, &cfg)
		if err != nil {
			t.Fatalf("NewScheme(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("scheme %q reports %q", name, s.Name())
		}
	}
	if _, err := NewScheme("bogus", &cfg); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if _, err := Run("bogus", "art", Smoke, nil); err == nil {
		t.Fatal("bad scheme accepted")
	}
	if _, err := Run("PiCL", "bogus", Smoke, nil); err == nil {
		t.Fatal("bad workload accepted")
	}
	if _, err := Run("PiCL", "art", Smoke, func(c *sim.Config) { c.Cores = 0 }); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestFaultedRunReplaysByteIdentical is the replay contract behind
// `nvbench -seed N -faults C`: the entire faulted run — fault schedule,
// injector event counts, and every stats counter — is a pure function of
// (Seed, FaultClass) and reproduces byte-for-byte.
func TestFaultedRunReplaysByteIdentical(t *testing.T) {
	sc := Smoke
	sc.Seed = 9
	sc.FaultClass = "all"
	run := func() (string, string) {
		res, err := Run("NVOverlay", "btree", sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		nv, ok := res.Scheme.(*core.NVOverlay)
		if !ok {
			t.Fatalf("scheme is %T, want *core.NVOverlay", res.Scheme)
		}
		inj := nv.Injector()
		if inj == nil {
			t.Fatal("FaultClass did not arm the injector")
		}
		if inj.Total() == 0 {
			t.Fatal("no faults fired during the run")
		}
		return inj.Schedule(), res.Scheme.Stats().Dump("")
	}
	sched1, stats1 := run()
	sched2, stats2 := run()
	if sched1 != sched2 {
		t.Fatalf("fault schedule not byte-identical:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", sched1, sched2)
	}
	if stats1 != stats2 {
		t.Fatalf("stats not byte-identical:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", stats1, stats2)
	}
	// A different fault class under the same seed must change the schedule
	// (the schedule is a function of the class config, not just the seed).
	sc.FaultClass = "nak"
	res, err := Run("NVOverlay", "btree", sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Scheme.(*core.NVOverlay).Injector().Schedule(); s == sched1 {
		t.Fatal("different fault class reproduced the same schedule")
	}
	// An invalid class is rejected by config validation, not silently off.
	sc.FaultClass = "melt"
	if _, err := Run("NVOverlay", "btree", sc, nil); err == nil {
		t.Fatal("unknown fault class accepted")
	}
}

func TestFig11Shape(t *testing.T) {
	m, err := Fig11(Smoke, []string{"btree"})
	if err != nil {
		t.Fatal(err)
	}
	nvo := m.Get("btree", "NVOverlay")
	picl := m.Get("btree", "PiCL")
	swlog := m.Get("btree", "SWLog")
	swsh := m.Get("btree", "SWShadow")
	hw := m.Get("btree", "HWShadow")
	// Paper Fig 11 ordering: NVOverlay near 1.0; PiCL small; HW shadow
	// moderate; software schemes slowest with logging worst.
	if nvo < 0.95 || nvo > 2.0 {
		t.Fatalf("NVOverlay = %.2fx, want near 1", nvo)
	}
	if !(swlog > swsh && swsh > hw && hw > nvo) {
		t.Fatalf("ordering violated: swlog=%.2f swsh=%.2f hw=%.2f nvo=%.2f", swlog, swsh, hw, nvo)
	}
	if picl < nvo*0.5 {
		t.Fatalf("PiCL=%.2f implausibly fast vs NVOverlay=%.2f", picl, nvo)
	}
}

func TestFig12Shape(t *testing.T) {
	m, err := Fig12(Smoke, []string{"btree"})
	if err != nil {
		t.Fatal(err)
	}
	picl := m.Get("btree", "PiCL")
	picl2 := m.Get("btree", "PiCL-L2")
	// Logging schemes write substantially more than NVOverlay (paper:
	// 1.4-1.9x for PiCL, more for PiCL-L2).
	if picl < 1.2 {
		t.Fatalf("PiCL write amplification = %.2fx, want > 1.2", picl)
	}
	if picl2 < picl {
		t.Fatalf("PiCL-L2 (%.2f) should exceed PiCL (%.2f)", picl2, picl)
	}
	if m.Get("btree", "NVOverlay") != 1.0 {
		t.Fatal("NVOverlay not normalised to 1.0")
	}
}

func TestFig13Shape(t *testing.T) {
	rows, err := Fig13(Smoke, []string{"btree", "yada"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var btree, yada Fig13Row
	for _, r := range rows {
		switch r.Workload {
		case "btree":
			btree = r
		case "yada":
			yada = r
		}
	}
	// The radix-tree lower bound is 12.5%. At smoke scale the table is
	// inner-node dominated, so only the bound and the ordering are stable;
	// the paper-scale percentages are verified by the Quick-scale nvbench
	// runs recorded in EXPERIMENTS.md.
	if btree.MasterPct < 12.5 {
		t.Fatalf("btree Mmaster = %.1f%% below the radix lower bound", btree.MasterPct)
	}
	if yada.MasterPct <= btree.MasterPct {
		t.Fatalf("yada (%.1f%%) should exceed btree (%.1f%%)", yada.MasterPct, btree.MasterPct)
	}
	if yada.LeafOccupancy >= btree.LeafOccupancy {
		t.Fatalf("yada occupancy (%.2f) should be below btree (%.2f)",
			yada.LeafOccupancy, btree.LeafOccupancy)
	}
}

func TestFig14Shape(t *testing.T) {
	pts, err := Fig14(Smoke)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12 { // 4 epoch sizes x 3 schemes
		t.Fatalf("points = %d", len(pts))
	}
	// PiCL's write bytes drop as epochs grow (fewer walks); find its
	// smallest- and largest-epoch points.
	var piclSmall, piclBig Fig14Point
	for _, p := range pts {
		if p.Scheme != "PiCL" {
			continue
		}
		if piclSmall.EpochSize == 0 || p.EpochSize < piclSmall.EpochSize {
			piclSmall = p
		}
		if p.EpochSize > piclBig.EpochSize {
			piclBig = p
		}
	}
	// Longer epochs mean fewer walks and fewer first-write log entries:
	// PiCL's absolute write volume must fall (paper: -11% from 500K to 4M).
	if piclBig.RawBytes >= piclSmall.RawBytes {
		t.Fatalf("PiCL bytes did not drop with epoch size: %d -> %d",
			piclSmall.RawBytes, piclBig.RawBytes)
	}
}

func TestFig15Shape(t *testing.T) {
	rows, err := Fig15(Smoke)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig15Row{}
	for _, r := range rows {
		key := r.Scheme
		if !r.Walker {
			key += "-off"
		}
		byKey[key] = r
	}
	// With the walker on, PiCL depends on it far more than NVOverlay
	// (paper: >47% vs ~11%).
	if byKey["PiCL"].WalkPct <= byKey["NVOverlay"].WalkPct {
		t.Fatalf("PiCL walk share (%.1f%%) should exceed NVOverlay's (%.1f%%)",
			byKey["PiCL"].WalkPct, byKey["NVOverlay"].WalkPct)
	}
	// Without the walker there are no walk write-backs.
	if byKey["PiCL-off"].WalkPct != 0 || byKey["NVOverlay-off"].WalkPct != 0 {
		t.Fatal("walk write-backs present with walker disabled")
	}
}

func TestFig16Shape(t *testing.T) {
	r, err := Fig16(Smoke)
	if err != nil {
		t.Fatal(err)
	}
	// The buffer absorbs redundant same-epoch write-backs: fewer NVM
	// writes, decent hit rate (paper: 74.8% hits, 41% faster).
	if r.WritesWithBuffer >= r.WritesNoBuffer {
		t.Fatalf("buffer did not reduce writes: %d vs %d", r.WritesWithBuffer, r.WritesNoBuffer)
	}
	if r.BufferHitRate <= 0.2 {
		t.Fatalf("buffer hit rate = %.2f", r.BufferHitRate)
	}
	if r.NormCyclesNoBuffer < 1.0 {
		t.Fatalf("no-buffer run faster than buffered: %.2f", r.NormCyclesNoBuffer)
	}
}

func TestFig17Shape(t *testing.T) {
	series, err := Fig17(Smoke, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	var picl, nvo Fig17Series
	for _, s := range series {
		if s.Scheme == "PiCL" {
			picl = s
		} else {
			nvo = s
		}
	}
	// The paper's robust Fig 17a claims at any scale: NVOverlay's average
	// bandwidth consumption is significantly lower than PiCL's. (The peak
	// comparison additionally needs paper-scale epochs whose write sets
	// dwarf the aggregate L2 — the Quick-scale runs in EXPERIMENTS.md show
	// it; smoke-scale epochs are too small for it to be structural.)
	if picl.Series.Total() <= nvo.Series.Total() {
		t.Fatalf("PiCL total bytes (%d) should exceed NVOverlay (%d)",
			picl.Series.Total(), nvo.Series.Total())
	}
	if nvo.Series.Total()*10 >= picl.Series.Total()*9 {
		t.Fatalf("NVOverlay mean bandwidth (%d) not clearly below PiCL (%d)",
			nvo.Series.Total(), picl.Series.Total())
	}
}

func TestFig17Bursty(t *testing.T) {
	series, err := Fig17(Smoke, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if !s.Bursty {
			t.Fatal("bursty flag lost")
		}
		if s.Series.Total() == 0 {
			t.Fatalf("%s: empty series", s.Scheme)
		}
	}
}

func TestAblations(t *testing.T) {
	sb, err := AblateSuperBlock(Smoke)
	if err != nil {
		t.Fatal(err)
	}
	// 4-line super blocks shrink the DRAM side-band (paper: <0.8% vs 3.2%).
	if sb.SideBandBytesSuper >= sb.SideBandBytesLine {
		t.Fatalf("super-block side-band (%d) not smaller than per-line (%d)",
			sb.SideBandBytesSuper, sb.SideBandBytesLine)
	}
	wa, err := AblateWalker(Smoke)
	if err != nil {
		t.Fatal(err)
	}
	if wa.AdvancesOn == 0 {
		t.Fatal("no rec-epoch advances with walker on")
	}
	if wa.AdvancesOff != 0 {
		t.Fatal("rec-epoch advanced mid-run without walker")
	}
}

func TestPrinters(t *testing.T) {
	var b strings.Builder
	m := newMatrix("t", []string{"w"}, []string{"s"})
	m.Set("w", "s", 1.5)
	PrintMatrix(&b, m)
	PrintFig13(&b, []Fig13Row{{Workload: "w", MasterPct: 13}})
	PrintFig14(&b, []Fig14Point{{Scheme: "s", EpochSize: 10, NormCycles: 1, NormBytes: 1}})
	PrintFig15(&b, []Fig15Row{{Scheme: "s", Walker: true}})
	PrintFig16(&b, Fig16Result{NormCyclesNoBuffer: 1.4, BufferHitRate: 0.7})
	PrintFig17(&b, nil)
	cfg := sim.DefaultConfig()
	PrintConfig(&b, &cfg)
	PrintSuperBlock(&b, SuperBlockResult{SideBandBytesLine: 100, SideBandBytesSuper: 25})
	PrintWalker(&b, WalkerAblation{})
	out := b.String()
	for _, want := range []string{"t", "Fig 13", "Fig 14", "Fig 15", "Fig 16", "Fig 17", "Table II", "Ablation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printer output missing %q", want)
		}
	}
}

func TestScale256Shape(t *testing.T) {
	pts, err := Scale256(Smoke, []int{64}, []string{"oltp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2 (PiCL-L2 + NVOverlay)", len(pts))
	}
	var nvo, picl Scale256Point
	for _, p := range pts {
		if p.Cores != 64 || p.VDs != 32 || p.OMCs != 16 {
			t.Fatalf("layout %+v, want 64 cores / 32 VDs / 16 OMCs", p)
		}
		if p.Workload != "oltp" || p.Accesses == 0 || p.Cycles == 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		switch p.Scheme {
		case "NVOverlay":
			nvo = p
		case "PiCL-L2":
			picl = p
		}
	}
	// The sweep's reason to exist: NVOverlay's distributed epochs keep it
	// near the ideal while PiCL-L2's L2-walk traffic grows with the machine.
	if nvo.NormCycles < 0.95 || nvo.NormCycles > 3.0 {
		t.Fatalf("NVOverlay = %.2fx ideal, want near 1", nvo.NormCycles)
	}
	if picl.NormCycles <= nvo.NormCycles {
		t.Fatalf("PiCL-L2 (%.2fx) not slower than NVOverlay (%.2fx)", picl.NormCycles, nvo.NormCycles)
	}
}

// TestScale256FullDirectory runs the 256-core grid point, which carries
// both the 128-VD and the 256-VD (1 core/VD) layouts — the latter fills
// the sharer directory's full 256-domain capacity.
func TestScale256FullDirectory(t *testing.T) {
	if testing.Short() {
		t.Skip("256-core cells; skipped in -short")
	}
	pts, err := Scale256(Smoke, []int{256}, []string{"social"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4 (two layouts x two schemes)", len(pts))
	}
	vds := map[int]bool{}
	for _, p := range pts {
		vds[p.VDs] = true
		if p.Cycles == 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	if !vds[128] || !vds[256] {
		t.Fatalf("VD layouts %v, want both 128 and 256", vds)
	}
}
