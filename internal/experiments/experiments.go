// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII). Each FigN function runs the required (workload,
// scheme, configuration) combinations through the driver and reduces the
// results to the same rows/series the paper plots. cmd/nvbench and the
// repository's testing.B benchmarks are thin wrappers around this package.
package experiments

import (
	"fmt"
	"sync/atomic"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// accessesRun counts simulated accesses across every Run call in the
// process. cmd/nvbench reads the deltas to report accesses/sec per
// experiment; the final value is a deterministic sum regardless of how the
// cells were scheduled.
var accessesRun atomic.Uint64

// AccessesRun returns the total accesses simulated by Run so far.
func AccessesRun() uint64 { return accessesRun.Load() }

// Scale selects run sizes. The paper simulates 100M instructions/thread
// with 1M-store epochs on zsim; these scales keep the same epoch-to-run
// proportions at simulation-friendly sizes.
type Scale struct {
	Name        string
	MaxAccesses uint64
	EpochSize   int // stores per epoch
	// Seed, when non-zero, overrides sim.Config.Seed for every run at
	// this scale. All workload randomness flows from this one value
	// through sim's seeded PRNG, so a (seed, flags) pair replays
	// bit-identically; there is no ambient math/rand anywhere (nvlint's
	// wallclock check keeps it that way).
	Seed int64
	// FaultClass, when non-empty, arms NVOverlay's deterministic NVM fault
	// injector for every run at this scale ("torn", "flip", "loss", "nak",
	// "all"). The injector's PRNG seed derives from Seed (see
	// sim.Config.EffectiveFaultSeed), so a faulted run replays its fault
	// schedule byte-for-byte from (-seed, -faults) alone.
	FaultClass string
	// Machine, when non-nil, shrinks the cache hierarchy so the paper's
	// capacity relationships hold at reduced run length: the per-epoch
	// write set must exceed an L2 but fit the LLC, exactly as 1M-store
	// epochs relate to 256KB/32MB on the Table II machine.
	Machine func(*sim.Config)
	// Jobs is the worker count for the sweep engine: each figure fans its
	// independent (scheme, workload, config) cells over this many workers
	// and merges results in canonical cell order, so every value of Jobs
	// produces byte-identical figures (see internal/parallel). 0 means
	// runtime.GOMAXPROCS(0); 1 runs the cells serially in place.
	Jobs int
}

// Predefined scales. EpochSize counts machine-global stores; stores are
// roughly 40% of accesses, so each scale yields a few dozen epochs per
// run — and, with 8 versioned domains, several boundaries per VD.
var (
	// Smoke is for unit tests and quick CI runs.
	Smoke = Scale{Name: "smoke", MaxAccesses: 150_000, EpochSize: 1_500,
		Machine: func(c *sim.Config) {
			c.L1Size = 4 << 10
			c.L1Ways = 4
			c.L2Size = 16 << 10
			c.LLCSize = 2 << 20
			// Processor context is a fixed hardware cost; at reduced epoch
			// lengths it must scale too or it dwarfs tiny-epoch runs.
			c.ContextDumpBytes = 256
		}}
	// Quick is the default for cmd/nvbench.
	Quick = Scale{Name: "quick", MaxAccesses: 1_200_000, EpochSize: 12_000,
		Machine: func(c *sim.Config) {
			c.L1Size = 4 << 10
			c.L1Ways = 4
			c.L2Size = 16 << 10
			c.LLCSize = 4 << 20
			c.ContextDumpBytes = 256
		}}
	// Full approaches the paper's proportions on the unmodified Table II
	// machine (slow).
	Full = Scale{Name: "full", MaxAccesses: 8_000_000, EpochSize: 80_000}
)

// SchemeNames lists the comparison schemes in the paper's Fig 11 order.
var SchemeNames = []string{"SWLog", "SWShadow", "HWShadow", "PiCL", "PiCL-L2", "NVOverlay"}

// NewScheme constructs a scheme by name over the given config.
func NewScheme(name string, cfg *sim.Config) (trace.Scheme, error) {
	switch name {
	case "Ideal":
		return baseline.NewIdeal(cfg), nil
	case "SWLog":
		return baseline.NewSWLog(cfg), nil
	case "SWShadow":
		return baseline.NewSWShadow(cfg), nil
	case "HWShadow":
		return baseline.NewHWShadow(cfg), nil
	case "PiCL":
		return baseline.NewPiCL(cfg), nil
	case "PiCL-L2":
		return baseline.NewPiCLL2(cfg), nil
	case "NVOverlay":
		return core.New(cfg), nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", name)
	}
}

// RunResult bundles a run's summary with the scheme for post-run metric
// extraction (master-table sizes, evict decompositions, series).
type RunResult struct {
	Sum    trace.Summary
	Scheme trace.Scheme
}

// Run executes one (scheme, workload) pair at the given scale. cfgMod, if
// non-nil, adjusts the configuration before the run (sweeps, ablations).
func Run(schemeName, wlName string, scale Scale, cfgMod func(*sim.Config)) (RunResult, error) {
	cfg := sim.DefaultConfig()
	cfg.EpochSize = scale.EpochSize
	if scale.Seed != 0 {
		cfg.Seed = scale.Seed
	}
	cfg.FaultClass = scale.FaultClass
	if scale.Machine != nil {
		scale.Machine(&cfg)
	}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return RunResult{}, err
	}
	s, err := NewScheme(schemeName, &cfg)
	if err != nil {
		return RunResult{}, err
	}
	if cfg.StoreDir != "" {
		// Back the content plane with the on-disk store. Attaching after
		// construction is lossless: AttachPlane migrates committed words,
		// and still-queued construction writes drain onto the new plane.
		plane, err := mem.OpenFilePlane(cfg.StoreDir, cfg.CheckpointEvery)
		if err != nil {
			return RunResult{}, err
		}
		// Observed runs see the plane's I/O events (io_fault, io_retry,
		// plane_wound) in the same stream as everything else.
		plane.AttachBus(cfg.Obs)
		s.NVM().AttachPlane(plane)
	}
	wl, err := workload.Get(wlName)
	if err != nil {
		return RunResult{}, err
	}
	d := trace.NewDriver(&cfg, s, wl, scale.MaxAccesses)
	sum := d.Run()
	accessesRun.Add(sum.Accesses)
	return RunResult{Sum: sum, Scheme: s}, nil
}

// cellSpec names one independent cell of a figure's sweep grid. Cells
// share no mutable state (Run builds a fresh config, scheme, workload and
// driver per call, and all randomness is seeded from the config), which is
// what lets the figures fan them out.
type cellSpec struct {
	scheme string
	wl     string
	mod    func(*sim.Config)
}

// runCells executes every cell at scale.Jobs-way parallelism and returns
// the results in cell order — the same order a serial loop over the specs
// would produce. On failure the first error in cell order is returned,
// matching which error a serial sweep would have surfaced.
func runCells(scale Scale, cells []cellSpec) ([]RunResult, error) {
	type outcome struct {
		r   RunResult
		err error
	}
	res := parallel.Map(parallel.Jobs(scale.Jobs), len(cells), func(i int) outcome {
		r, err := Run(cells[i].scheme, cells[i].wl, scale, cells[i].mod)
		return outcome{r, err}
	})
	out := make([]RunResult, len(cells))
	for i, o := range res {
		if o.err != nil {
			return nil, o.err
		}
		out[i] = o.r
	}
	return out, nil
}

// Matrix is a workloads x schemes table of float64 values.
type Matrix struct {
	Title     string
	Workloads []string
	Schemes   []string
	Cells     map[string]map[string]float64 // workload -> scheme -> value
}

func newMatrix(title string, workloads, schemes []string) *Matrix {
	m := &Matrix{Title: title, Workloads: workloads, Schemes: schemes,
		Cells: make(map[string]map[string]float64)}
	for _, w := range workloads {
		m.Cells[w] = make(map[string]float64)
	}
	return m
}

// Set stores a cell.
func (m *Matrix) Set(wl, scheme string, v float64) { m.Cells[wl][scheme] = v }

// Get reads a cell.
func (m *Matrix) Get(wl, scheme string) float64 { return m.Cells[wl][scheme] }
