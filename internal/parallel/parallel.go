// Package parallel is the deterministic sweep engine: it fans independent
// simulation cells out across worker goroutines and merges their results in
// canonical (pre-assigned index) order, so a parallel sweep is byte-identical
// to the serial one. The engine owns no simulation state and no randomness —
// determinism rests on two contracts the callers uphold and the engine
// enforces structurally:
//
//  1. Cells share no mutable state. Every cell constructs its own scheme,
//     workload, golden model and PRNGs from its own parameters (the run seed
//     plus the cell index); the engine only ever hands a cell its index.
//  2. Results are merged by cell index, never by completion order. Map
//     writes each result into a pre-assigned slot; ForEachOrdered buffers
//     out-of-order completions and releases them to the consumer strictly in
//     index order, exactly as a serial loop would have produced them.
//
// With jobs <= 1 the engine degenerates to a plain serial loop on the
// calling goroutine — the legacy path, trivially identical to the pre-engine
// behaviour — which is what `-j 1` on the CLIs selects.
package parallel

import (
	"runtime"
	"sync"
)

// cursor hands out cell indices to workers and carries the early-stop
// signal. The fields are mutex-guarded (and nvlint:guardedby-annotated)
// rather than atomics so the claim of an index and the stop check are one
// critical section: a worker can never claim a cell after stop() returned.
type cursor struct {
	mu sync.Mutex
	// nvlint:guardedby mu
	next int
	// nvlint:guardedby mu
	stopped bool
}

// take claims the next cell index. ok is false when the sweep is exhausted
// or stopped; the worker exits without computing anything.
func (c *cursor) take(n int) (idx int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped || c.next >= n {
		return 0, false
	}
	idx = c.next
	c.next++
	return idx, true
}

// stop prevents any further take from succeeding. Cells already claimed
// finish normally and are discarded by the consumer loop.
func (c *cursor) stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = true
}

// Jobs normalises a -j flag value: non-positive means "one worker per
// available CPU" (runtime.GOMAXPROCS(0)), anything else is taken as given.
func Jobs(j int) int {
	if j <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// Map runs n independent cells on up to jobs workers and returns their
// results indexed by cell. cell(i) must be a pure function of i and of
// state the caller guarantees immutable for the duration of the call; it
// must not touch any other cell's state. The returned slice is identical to
// {cell(0), cell(1), ..., cell(n-1)} computed serially.
func Map[T any](jobs, n int, cell func(idx int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			out[i] = cell(i)
		}
		return out
	}
	var cur cursor
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := cur.take(n)
				if !ok {
					return
				}
				out[i] = cell(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// ForEachOrdered runs n independent cells on up to jobs workers and feeds
// their results to consume strictly in index order on the calling
// goroutine, buffering out-of-order completions. consume returning false
// stops the sweep: no cell with a higher index is consumed, and workers
// stop picking up new cells (cells already in flight finish and are
// discarded). This mirrors a serial `for i { if !consume(i, cell(i)) break }`
// loop exactly — including which results the consumer observes before an
// early stop — which is what lets soak CLIs stream progress and abort on
// the first divergence without perturbing the reported output.
func ForEachOrdered[T any](jobs, n int, cell func(idx int) T, consume func(idx int, v T) bool) {
	if n <= 0 {
		return
	}
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if !consume(i, cell(i)) {
				return
			}
		}
		return
	}
	type item struct {
		idx int
		v   T
	}
	ch := make(chan item, jobs)
	var cur cursor
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := cur.take(n)
				if !ok {
					return
				}
				ch <- item{idx: i, v: cell(i)}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	// Reorder buffer: results enter in completion order, leave in index
	// order. Map access here is by key only (no iteration), so delivery
	// order cannot leak into the consumer.
	pending := make(map[int]T, jobs)
	nextOut := 0
	stopped := false
	for it := range ch {
		if stopped {
			continue // draining so blocked workers can exit
		}
		pending[it.idx] = it.v
		for {
			v, ok := pending[nextOut]
			if !ok {
				break
			}
			delete(pending, nextOut)
			if !consume(nextOut, v) {
				stopped = true
				cur.stop()
				break
			}
			nextOut++
		}
	}
}
