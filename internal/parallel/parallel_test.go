package parallel

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapMatchesSerial(t *testing.T) {
	cell := func(i int) int { return i*i + 7 }
	want := Map(1, 100, cell)
	for _, j := range []int{0, 2, 3, 8, 64, 200} {
		got := Map(j, 100, cell)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Map(j=%d) diverges from serial: got %v want %v", j, got, want)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("Map over zero cells = %v, want nil", got)
	}
}

func TestMapRunsEveryCellOnce(t *testing.T) {
	const n = 500
	var counts [n]atomic.Int32
	Map(8, n, func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("cell %d ran %d times, want exactly once", i, c)
		}
	}
}

func TestForEachOrderedDeliversInOrder(t *testing.T) {
	for _, j := range []int{1, 2, 8, 33} {
		var seen []int
		ForEachOrdered(j, 64, func(i int) int { return i * 3 }, func(i, v int) bool {
			if v != i*3 {
				t.Fatalf("j=%d: cell %d delivered value %d, want %d", j, i, v, i*3)
			}
			seen = append(seen, i)
			return true
		})
		if len(seen) != 64 {
			t.Fatalf("j=%d: consumed %d results, want 64", j, len(seen))
		}
		for i, idx := range seen {
			if idx != i {
				t.Fatalf("j=%d: delivery order broken at position %d: got index %d", j, i, idx)
			}
		}
	}
}

func TestForEachOrderedEarlyStop(t *testing.T) {
	const stopAt = 10
	for _, j := range []int{1, 4, 16} {
		var consumed []int
		ForEachOrdered(j, 200, func(i int) int { return i }, func(i, v int) bool {
			consumed = append(consumed, i)
			return i < stopAt
		})
		// Exactly indices 0..stopAt are consumed — identical to the serial
		// loop — no matter how many later cells had already completed.
		if len(consumed) != stopAt+1 {
			t.Fatalf("j=%d: consumed %v, want exactly 0..%d", j, consumed, stopAt)
		}
		for i, idx := range consumed {
			if idx != i {
				t.Fatalf("j=%d: consumed[%d] = %d, want %d", j, i, idx, i)
			}
		}
	}
}

func TestJobsNormalisation(t *testing.T) {
	if got := Jobs(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Jobs(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Jobs(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Jobs(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Jobs(5); got != 5 {
		t.Fatalf("Jobs(5) = %d, want 5", got)
	}
}
