package parallel_test

// End-to-end determinism contract of the sweep engine: fanning simulation
// cells over workers must leave every observable result — summaries,
// rendered figures, fault schedules — byte-identical to the serial sweep.
// These tests are the -race companions to the unit tests in parallel_test.go:
// they drive the real simulator through internal/experiments and
// internal/diffcheck at -j 1 and -j 8 and compare outputs exactly.

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/diffcheck"
	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// TestParallelEqualsSerial runs a (scheme x workload x seed) grid of full
// simulations through parallel.Map at 1 and 8 workers and requires every
// run summary — including the Final golden-image map — to match exactly.
func TestParallelEqualsSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-simulation grid; skipped in -short")
	}
	grids := []struct {
		name    string
		schemes []string
		wls     []string
		seeds   []int64
	}{
		{"baselines", []string{"Ideal", "PiCL"}, []string{"btree", "hashtable"}, []int64{0}},
		{"nvoverlay-seeds", []string{"NVOverlay"}, []string{"btree"}, []int64{0, 7, 99}},
		{"mixed", []string{"NVOverlay", "SWLog"}, []string{"art"}, []int64{3}},
	}
	for _, g := range grids {
		t.Run(g.name, func(t *testing.T) {
			type cell struct {
				scheme, wl string
				seed       int64
			}
			var cells []cell
			for _, sc := range g.schemes {
				for _, wl := range g.wls {
					for _, seed := range g.seeds {
						cells = append(cells, cell{sc, wl, seed})
					}
				}
			}
			runAll := func(jobs int) []interface{} {
				return parallel.Map(jobs, len(cells), func(i int) interface{} {
					scale := experiments.Smoke
					scale.Seed = cells[i].seed
					r, err := experiments.Run(cells[i].scheme, cells[i].wl, scale, nil)
					if err != nil {
						t.Errorf("cell %d (%+v): %v", i, cells[i], err)
						return nil
					}
					return r.Sum
				})
			}
			serial := runAll(1)
			par := runAll(8)
			for i := range cells {
				if !reflect.DeepEqual(serial[i], par[i]) {
					t.Fatalf("cell %d (%+v): -j 8 summary diverges from -j 1:\nserial: %+v\nparallel: %+v",
						i, cells[i], serial[i], par[i])
				}
			}
		})
	}
}

// TestFig11BytesEqualAcrossJobs renders the same figure at Jobs=1 and
// Jobs=8 and compares the printed matrix byte-for-byte — the exact check
// CI's nvbench output would fail if canonical-order merging ever broke.
func TestFig11BytesEqualAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("full-simulation figure; skipped in -short")
	}
	render := func(jobs int) []byte {
		scale := experiments.Smoke
		scale.Jobs = jobs
		m, err := experiments.Fig11(scale, []string{"btree", "hashtable"})
		if err != nil {
			t.Fatalf("Fig11 jobs=%d: %v", jobs, err)
		}
		var buf bytes.Buffer
		experiments.PrintMatrix(&buf, m)
		return buf.Bytes()
	}
	serial := render(1)
	par := render(8)
	if !bytes.Equal(serial, par) {
		t.Fatalf("Fig11 output differs between Jobs=1 and Jobs=8:\n-- serial --\n%s\n-- parallel --\n%s", serial, par)
	}
}

// TestScaleSweepEqualAcrossJobs is the same contract for the big-machine
// scale sweep: a 64-core smoke grid over both zipfian generators must
// render byte-identically at Jobs=1 and Jobs=8 — the exact check CI's
// scale-smoke job applies to the 256-core quick cells via cmp.
func TestScaleSweepEqualAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("full-simulation sweep; skipped in -short")
	}
	render := func(jobs int) []byte {
		scale := experiments.Smoke
		scale.Jobs = jobs
		pts, err := experiments.Scale256(scale, []int{64}, nil)
		if err != nil {
			t.Fatalf("Scale256 jobs=%d: %v", jobs, err)
		}
		var buf bytes.Buffer
		experiments.PrintScale256(&buf, pts)
		return buf.Bytes()
	}
	serial := render(1)
	par := render(8)
	if !bytes.Equal(serial, par) {
		t.Fatalf("Scale256 output differs between Jobs=1 and Jobs=8:\n-- serial --\n%s\n-- parallel --\n%s", serial, par)
	}
}

// TestFaultSweepEqualAcrossJobs checks the diffcheck crash-point grid: the
// aggregate FaultResult — points, tallies and the concatenated canonical
// fault Schedule string — must be deeply equal at 1 and 8 workers.
func TestFaultSweepEqualAcrossJobs(t *testing.T) {
	for _, class := range []string{"torn", "all"} {
		p := diffcheck.FaultRegimeParams(class, 11)
		serial, d1 := diffcheck.RunFaultedJobs(p, 1)
		par, d8 := diffcheck.RunFaultedJobs(p, 8)
		if d1 != nil || d8 != nil {
			t.Fatalf("class %s: unexpected divergence (serial=%v parallel=%v)", class, d1, d8)
		}
		if serial.Schedule == "" {
			t.Fatalf("class %s: empty fault schedule", class)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("class %s: fault sweep diverges between jobs=1 and jobs=8:\nserial: %+v\nparallel: %+v",
				class, serial, par)
		}
	}
}

// TestDistributionMergeAcrossJobs is the parallel-sweep cross-check for
// stats.Distribution.Merge and stats.Histogram.Merge: per-cell sample
// distributions fanned over workers and merged in cell order must render
// byte-identically at every worker count, including when some cells (here
// every third) observe nothing.
func TestDistributionMergeAcrossJobs(t *testing.T) {
	const cells = 64
	sweep := func(jobs int) (string, string) {
		type pair struct {
			d stats.Distribution
			h stats.Histogram
		}
		out := parallel.Map(jobs, cells, func(i int) pair {
			var p pair
			if i%3 == 2 {
				return p // empty cell: Merge must not clobber min/max
			}
			// A deterministic per-cell stream, pure function of the index.
			v := int64(i*i + 1)
			for k := 0; k < 50; k++ {
				p.d.Observe(v)
				p.h.Observe(v)
				v = (v*6364136223846793005 + int64(i)) % 100_000
			}
			return p
		})
		var d stats.Distribution
		var h stats.Histogram
		for i := range out {
			d.Merge(&out[i].d)
			h.Merge(&out[i].h)
		}
		return d.String(), h.String()
	}
	d1, h1 := sweep(1)
	d8, h8 := sweep(8)
	if d1 != d8 {
		t.Fatalf("merged distribution differs across jobs:\n-j 1: %s\n-j 8: %s", d1, d8)
	}
	if h1 != h8 {
		t.Fatalf("merged histogram differs across jobs:\n-j 1: %s\n-j 8: %s", h1, h8)
	}
	if d1 == "n=0 (empty)" || h1 == "n=0 (empty)" {
		t.Fatal("sweep observed nothing; the cross-check is vacuous")
	}
}
