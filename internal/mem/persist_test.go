package mem

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

func contentNVM(t *testing.T) (*NVM, *sim.Config) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.NVMBanks = 4
	return NewNVM(&cfg), &cfg
}

// TestPersistTimingMatchesWrite: with faults off, Persist must book exactly
// what Write books — the content plane is timing-invisible.
func TestPersistTimingMatchesWrite(t *testing.T) {
	a, cfg := contentNVM(t)
	b, _ := contentNVM(t)
	_ = cfg
	for i := uint64(0); i < 200; i++ {
		addr := i * 64 * 3
		now := i * 50
		sa := a.Write(WData, addr, 24, now)
		sb := b.Persist(WData, addr, 24, []uint64{i, i + 1, i + 2}, now)
		if sa != sb {
			t.Fatalf("write %d: stall %d (Write) vs %d (Persist)", i, sa, sb)
		}
	}
	if a.Stats().Get("nvm_writes") != b.Stats().Get("nvm_writes") {
		t.Fatal("accounting diverged between Write and Persist")
	}
}

// TestPersistDurabilityWatermark: a word persisted at time t sits in the
// volatile bank queue — exposed to bank loss — until a full device latency
// has passed, after which no fault class can take it.
func TestPersistDurabilityWatermark(t *testing.T) {
	n, _ := contentNVM(t)
	n.AttachFaults(fault.New(fault.Config{Seed: 1, LossPer100: 100}))
	n.Persist(WData, 0x1000, 8, []uint64{7}, 100)
	if img := n.PowerCut(100); img.Len() != 0 {
		t.Fatalf("in-flight write survived a lost bank: %d words", img.Len())
	}
	n2, cfg := contentNVM(t)
	n2.AttachFaults(fault.New(fault.Config{Seed: 1, LossPer100: 100}))
	n2.Persist(WData, 0x1000, 8, []uint64{7}, 100)
	img := n2.PowerCut(100 + cfg.NVMWriteLat)
	if v, ok := img.Word(0x1000); !ok || v != 7 {
		t.Fatalf("completed write not durable after full latency: %v %v", v, ok)
	}
}

// TestPersistSilentPiggybacks: silent writes become durable at the bank
// watermark without moving it.
func TestPersistSilentPiggybacks(t *testing.T) {
	n, cfg := contentNVM(t)
	n.Persist(WMeta, 0x2000, 8, []uint64{1}, 0)
	n.PersistSilent(0x2008, []uint64{2}, 0)
	img := n.PowerCut(cfg.NVMWriteLat)
	if _, ok := img.Word(0x2008); !ok {
		t.Fatal("silent write did not ride the booked watermark")
	}
}

// TestPowerCutCleanADR: without an injector, in-flight writes drain whole.
func TestPowerCutCleanADR(t *testing.T) {
	n, _ := contentNVM(t)
	for i := uint64(0); i < 50; i++ {
		n.Persist(WData, 0x4000+i*64, 24, []uint64{i, i, i}, 0)
	}
	img := n.PowerCut(0) // nothing completed yet: ADR drains everything
	if img.Len() != 150 {
		t.Fatalf("clean cut lost words: %d/150", img.Len())
	}
}

// TestPowerCutTearsPrefix: a torn write keeps an 8-byte-word prefix; later
// words of the burst never reach the array.
func TestPowerCutTearsPrefix(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 3, TornPer100: 100})
	n, _ := contentNVM(t)
	n.AttachFaults(inj)
	n.Persist(WData, 0x5000, 24, []uint64{10, 11, 12}, 0)
	img := n.PowerCut(0)
	if inj.Count(fault.Torn) != 1 {
		t.Fatalf("tear did not fire: %d", inj.Count(fault.Torn))
	}
	keep := inj.Events()[0].Arg
	for i := uint64(0); i < 3; i++ {
		_, ok := img.Word(0x5000 + i*8)
		if want := i < keep; ok != want {
			t.Fatalf("word %d present=%v, torn prefix keep=%d", i, ok, keep)
		}
	}
}

// TestPowerCutBankLoss: a lost bank drops its whole volatile queue while
// other banks drain normally.
func TestPowerCutBankLoss(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 1, LossPer100: 100})
	n, _ := contentNVM(t)
	n.AttachFaults(inj)
	for i := uint64(0); i < 40; i++ {
		n.Persist(WData, 0x8000+i*64, 8, []uint64{i + 1}, 0)
	}
	img := n.PowerCut(0)
	if img.Len() != 0 {
		t.Fatalf("LossPer100=100 must drop every bank queue, %d words survive", img.Len())
	}
	if inj.Count(fault.BankLoss) == 0 {
		t.Fatal("no bank-loss events recorded")
	}
}

// TestNAKDropNeverReachesArray: a write abandoned after the retry budget
// leaves no content behind.
func TestNAKDropNeverReachesArray(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 2, NAKPer10k: 10_000}) // always NAK
	n, _ := contentNVM(t)
	n.AttachFaults(inj)
	stall := n.Persist(WData, 0x9000, 8, []uint64{5}, 0)
	if stall == 0 {
		t.Fatal("NAK retries must cost backoff cycles")
	}
	if inj.Count(fault.NAKDrop) != 1 {
		t.Fatalf("write was not dropped: %d", inj.Count(fault.NAKDrop))
	}
	if img := n.PowerCut(1 << 30); img.Len() != 0 {
		t.Fatal("dropped write reached the array")
	}
}

// TestImageIncludesPending: the fault-free Image() sees queued writes as if
// they had completed, and does not consume the queues.
func TestImageIncludesPending(t *testing.T) {
	n, _ := contentNVM(t)
	n.Persist(WData, 0xA000, 8, []uint64{9}, 0)
	if v, ok := n.Image().Word(0xA000); !ok || v != 9 {
		t.Fatalf("Image missed pending write: %v %v", v, ok)
	}
	if v, ok := n.Image().Word(0xA000); !ok || v != 9 {
		t.Fatalf("second Image read diverged: %v %v", v, ok)
	}
}
