package mem

import (
	"repro/internal/fault"
	"repro/internal/obs"
)

// AttachFaults installs a fault injector on the device. A nil injector (or
// one built from the zero Config) leaves the device perfect; the content
// plane still tracks durability so PowerCut yields the honest image.
func (n *NVM) AttachFaults(inj *fault.Injector) { n.inj = inj }

// Injector returns the attached fault injector (nil when faults are off).
func (n *NVM) Injector() *fault.Injector { return n.inj }

// AttachPlane replaces the content plane (usually with a FilePlane so the
// durable image survives process death). Words already committed to the
// previous plane are migrated so attachment order relative to construction
// traffic cannot lose content; callers should still attach before the run
// starts so the on-disk delta logs carry the full history.
func (n *NVM) AttachPlane(p DurablePlane) {
	if p == nil {
		return
	}
	old := n.plane.Snapshot()
	for _, a := range old.SortedAddrs() {
		v, _ := old.Word(a)
		p.Apply(a, []uint64{v})
	}
	n.plane = p
}

// Plane returns the attached content plane.
func (n *NVM) Plane() DurablePlane { return n.plane }

// SealDurable is the epoch-seal persistence barrier on durable (file)
// planes: every queued write drains into the persisted array — the sealing
// controller waits for its bank queues, the file plane logs the words —
// and the plane publishes the sealed epoch (delta-log fsync + manifest
// rename). On the default RAM plane it is a no-op so in-memory runs keep
// their historical drain schedule byte-for-byte. I/O errors accumulate in
// the plane (Err/Close); the device model cannot stall on host I/O.
func (n *NVM) SealDurable(epoch, now uint64) {
	if !n.plane.Durable() {
		return
	}
	for b := range n.pending {
		q := n.pending[b]
		n.pending[b] = nil
		for _, w := range q {
			n.commit(w, now)
		}
		if n.bankDone[b] < now {
			n.bankDone[b] = now
		}
	}
	n.plane.SealEpoch(epoch)
}

// ClosePlane flushes and closes the content plane, returning the first
// write-path I/O error. Drivers that attached a FilePlane must call it
// before trusting the directory.
func (n *NVM) ClosePlane() error { return n.plane.Close() }

// wordAlign truncates addr to 8-byte word granularity. The content plane
// models the device's atomic-persist unit, which is an 8-byte word.
func wordAlign(addr uint64) uint64 { return addr &^ 7 }

// Persist books a write exactly like Write — identical timing, accounting
// and stall behaviour — and additionally enqueues the given content words
// on addr's bank so they become durable once the bank's completion clock
// passes. It also exercises the transient-NAK path: a NAKed attempt is
// retried with bounded exponential backoff, and the write is dropped (never
// reaching the array) when the retry budget is exhausted. The returned
// stall includes both backlog stalls and NAK backoff.
func (n *NVM) Persist(class WriteClass, addr uint64, size int, words []uint64, now uint64) (stall uint64) {
	if n.inj.Enabled() {
		attempt := 0
		for n.inj.NAK(addr, attempt) {
			attempt++
			backoff := n.cfg.NVMWriteLat << uint(attempt)
			stall += backoff
			n.stat.Add("nak_backoff_cycles", int64(backoff))
			if attempt >= fault.MaxNAKRetries {
				n.inj.NoteNAKDrop(addr)
				n.stat.Inc("nak_dropped_writes")
				return stall
			}
		}
	}
	stall += n.Write(class, addr, size, now+stall)
	n.enqueue(addr, words, now+stall, true)
	return stall
}

// PersistSilent records content words as written without booking any device
// time or byte accounting. It models writes that ride an already-booked
// transfer (the per-epoch mapping-table slots, whose timing the OMC model
// charges through its own meta-write path): durability still follows the
// bank's completion clock, so recent silent writes are just as volatile at
// a power cut as booked ones. Silent writes bypass the NAK front-end.
func (n *NVM) PersistSilent(addr uint64, words []uint64, now uint64) {
	n.enqueue(addr, words, now, false)
}

// enqueue places a word burst on addr's bank queue. Booked writes complete
// a full device latency after max(bank completion clock, issue time);
// silent writes piggyback at the watermark itself.
func (n *NVM) enqueue(addr uint64, words []uint64, now uint64, booked bool) {
	if len(words) == 0 {
		return
	}
	addr = wordAlign(addr)
	b := n.bankOf(addr)
	done := n.bankDone[b]
	if done < now {
		done = now
	}
	if booked {
		done += n.cfg.NVMWriteLat
		n.bankDone[b] = done
	}
	// Drain the FIFO prefix that has already completed so queues stay
	// short; order per bank (hence per word address) is preserved.
	q := n.pending[b]
	i := 0
	for ; i < len(q) && q[i].done <= now; i++ {
		n.commit(q[i], now)
	}
	q = append(q[i:], pendingWrite{addr: addr, words: words, done: done})
	n.pending[b] = q
}

// commit applies a completed write to the persisted word array. now is the
// cycle the drain was observed at (the write's own completion may be older).
func (n *NVM) commit(w pendingWrite, now uint64) {
	n.bus.Emit(obs.KindNVMDrain, now, n.bankOf(w.addr), 0, w.addr, uint64(len(w.words)), 0)
	n.plane.Apply(w.addr, w.words)
}

// PowerCut simulates losing power at cycle now and returns the resulting
// durable image. Queued writes whose completion watermark has passed are
// durable; the rest sit in the volatile bank queues, where the attached
// injector decides their fate: a bank can lose its whole queue, the
// in-flight tail write can tear (only an 8-byte-word prefix persists), and
// finally bit flips corrupt the surviving array. Without an injector the
// cut is clean ADR: completed writes persist, in-flight ones vanish whole.
//
// The cut consumes the queues; the device can keep running afterwards (the
// harness only reads the image), but content from before the cut is final.
func (n *NVM) PowerCut(now uint64) *Image {
	for b := range n.pending {
		q := n.pending[b]
		n.pending[b] = nil
		// Durable prefix: completed before the cut.
		i := 0
		for ; i < len(q) && q[i].done <= now; i++ {
			n.commit(q[i], now)
		}
		volatileQ := q[i:]
		if len(volatileQ) == 0 {
			continue
		}
		if n.inj.Enabled() && n.inj.BankLost(b, len(volatileQ)) {
			n.stat.Add("cut_lost_writes", int64(len(volatileQ)))
			continue
		}
		// ADR drains the volatile queue in order; the injector may tear
		// the last write in flight.
		for j, w := range volatileQ {
			if j == len(volatileQ)-1 && n.inj.Enabled() {
				if keep, torn := n.inj.Tear(b, w.addr, len(w.words)); torn {
					n.stat.Inc("cut_torn_writes")
					w.words = w.words[:keep]
				}
			}
			n.commit(w, now)
		}
	}
	if n.inj.Enabled() {
		for f := 0; f < n.inj.FlipCount() && n.plane.Words() > 0; f++ {
			keys := n.plane.SortedAddrs()
			idx, bit := n.inj.Flip(len(keys))
			n.plane.XorWord(keys[idx], 1<<bit)
			n.inj.NoteFlip(keys[idx], bit)
			n.stat.Inc("cut_bit_flips")
		}
	}
	return n.plane.Snapshot()
}

// Image returns the durable content as if every queued write completed
// cleanly — the fault-free final image. It does not consume the queues.
func (n *NVM) Image() *Image {
	img := n.plane.Snapshot()
	for b := range n.pending {
		for _, w := range n.pending[b] {
			for i, v := range w.words {
				img.words[w.addr+uint64(i*8)] = v
			}
		}
	}
	return img
}
