package mem

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"path/filepath"
	"strings"

	"repro/internal/fault"
)

// FileDamage records one piece of evidence LoadDir found while replaying a
// store directory cold. Kinds mirror the image-level salvage damage
// vocabulary but are file-scoped; recovery.SalvageDir prefixes them with
// "file-" when merging into a SalvageReport.
type FileDamage struct {
	Kind string `json:"kind"`
	Path string `json:"path"`
	Note string `json:"note"`
}

// DirReport summarises a cold replay of a store directory.
type DirReport struct {
	// SealedEpoch is the newest epoch the manifest claims durable (0 when
	// no manifest was found).
	SealedEpoch uint64 `json:"sealed_epoch"`
	// CheckpointSeq is the base checkpoint sequence replayed (-1: none).
	CheckpointSeq int `json:"checkpoint_seq"`
	// Segments counts delta segments fully replayed (seal record seen).
	Segments int `json:"segments"`
	// ActiveRecords counts valid records replayed from the unsealed
	// active segment's prefix.
	ActiveRecords int `json:"active_records"`
	// Truncated reports that replay stopped early at damaged or missing
	// sealed state; words after the stop point are absent from the image
	// and image-level salvage decides how far to walk back.
	Truncated bool `json:"truncated"`
	// Fatal names the damage kind that prevented building any image at
	// all (manifest or base checkpoint unusable); empty on success.
	Fatal string `json:"fatal,omitempty"`
	// Damage lists everything abnormal in the directory.
	Damage []FileDamage `json:"damage,omitempty"`
}

func (r *DirReport) addDamage(kind, path, note string) {
	r.Damage = append(r.Damage, FileDamage{Kind: kind, Path: path, Note: note})
}

// errReplayStop marks non-fatal replay termination (torn or missing sealed
// state): the image built so far is returned and image-level salvage walks
// back to an epoch whose records fully survive.
var errReplayStop = errors.New("replay stopped")

// LoadDir opens a store directory cold — typically in a fresh process
// after the writer was killed — and replays manifest → checkpoint → delta
// segments into an Image of the persisted word array.
//
// Damage below the manifest/checkpoint layer is never fatal here: a torn
// or missing delta segment stops replay at the last intact boundary and
// the caller's image-level salvage decides which epoch survives whole.
// Fatal returns (nil image) happen only when no trustworthy base exists:
// the manifest is corrupt, from a future format, or references a
// checkpoint that is missing or fails its digest.
func LoadDir(dir string) (*Image, *DirReport, error) {
	return LoadDirFS(fault.OS, dir)
}

// LoadDirFS is LoadDir over an arbitrary filesystem: the crash-consistency
// sweep replays the post-crash durable state of an in-memory store exactly
// the way a fresh process would replay a real directory.
func LoadDirFS(fsys fault.FS, dir string) (*Image, *DirReport, error) {
	rep := &DirReport{CheckpointSeq: -1}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		rep.Fatal = "store-missing"
		rep.addDamage("store-missing", dir, "cannot read store directory")
		return nil, rep, fmt.Errorf("mem: open store: %w", err)
	}
	maxDelta, haveDelta := -1, false
	haveCkpt := false
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			// An interrupted temp write: the rename never happened, so the
			// published state does not reference it. Evidence, not damage.
			rep.addDamage("stale-temp", name, "interrupted temp-file write; ignored")
			continue
		}
		if isDeltaName(name) {
			haveDelta = true
			var seq int
			if _, err := fmt.Sscanf(name, "delta-%06d.log", &seq); err == nil && seq > maxDelta {
				maxDelta = seq
			}
		}
		if isCkptName(name) {
			haveCkpt = true
		}
	}

	raw, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case errors.Is(err, iofs.ErrNotExist):
		// No manifest. A run killed before its first epoch seal legitimately
		// leaves only delta-000000.log; anything richer means the manifest
		// itself was destroyed.
		if haveCkpt || maxDelta > 0 {
			rep.Fatal = "manifest-missing"
			rep.addDamage("manifest-missing", manifestName, "sealed store state present but manifest destroyed")
			return nil, rep, errors.New("mem: manifest missing from non-empty store")
		}
		words := make(map[uint64]uint64)
		if haveDelta {
			n, _, err := replaySegment(fsys, filepath.Join(dir, DeltaFileName(0)), words, false, rep)
			if err != nil && !errors.Is(err, errReplayStop) {
				return nil, rep, err
			}
			rep.ActiveRecords = n
		}
		return NewImage(words), rep, nil
	case err != nil:
		rep.Fatal = "manifest-unreadable"
		rep.addDamage("manifest-unreadable", manifestName, err.Error())
		return nil, rep, fmt.Errorf("mem: manifest: %w", err)
	}
	if len(raw) != manifestWords*8 {
		rep.Fatal = "manifest-corrupt"
		rep.addDamage("manifest-corrupt", manifestName, fmt.Sprintf("size %d, want %d", len(raw), manifestWords*8))
		return nil, rep, errors.New("mem: manifest corrupt: bad size")
	}
	m := make([]uint64, manifestWords)
	for i := range m {
		m[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	if !ValidRecord(m, FileManifestMagic) {
		rep.Fatal = "manifest-corrupt"
		rep.addDamage("manifest-corrupt", manifestName, "checksum or magic mismatch")
		return nil, rep, errors.New("mem: manifest corrupt: checksum mismatch")
	}
	if m[1] != FileFormatVersion {
		rep.Fatal = "manifest-version"
		rep.addDamage("manifest-version", manifestName, fmt.Sprintf("format version %d, reader supports %d", m[1], FileFormatVersion))
		return nil, rep, fmt.Errorf("mem: manifest format version %d not supported", m[1])
	}
	rep.SealedEpoch = m[2]
	ckptSeq := int(m[3]) - 1
	segBase, segCount := int(m[5]), int(m[6])
	if ckptSeq > 1<<20 || segBase > 1<<20 || segCount > 1<<20 {
		rep.Fatal = "manifest-corrupt"
		rep.addDamage("manifest-corrupt", manifestName, "implausible sequence numbers")
		return nil, rep, errors.New("mem: manifest corrupt: implausible sequence numbers")
	}

	words := make(map[uint64]uint64)
	if ckptSeq >= 0 {
		name := CheckpointFileName(ckptSeq)
		if err := replayCheckpoint(fsys, filepath.Join(dir, name), words); err != nil {
			if errors.Is(err, iofs.ErrNotExist) {
				rep.Fatal = "checkpoint-missing"
				rep.addDamage("checkpoint-missing", name, "manifest references a checkpoint that does not exist")
				return nil, rep, fmt.Errorf("mem: checkpoint missing: %w", err)
			}
			rep.Fatal = "checkpoint-corrupt"
			rep.addDamage("checkpoint-corrupt", name, err.Error())
			return nil, rep, err
		}
		rep.CheckpointSeq = ckptSeq
	}

	// Sealed segments in manifest order; damage stops replay at the last
	// intact boundary (a hole in the middle would build a frankenimage of
	// old and new words that never coexisted).
	for seq := segBase; seq < segBase+segCount; seq++ {
		name := DeltaFileName(seq)
		_, sealed, err := replaySegment(fsys, filepath.Join(dir, name), words, true, rep)
		if err != nil {
			if errors.Is(err, iofs.ErrNotExist) {
				rep.addDamage("segment-missing", name, "manifest references a sealed delta segment that does not exist")
				rep.Truncated = true
				return NewImage(words), rep, nil
			}
			if errors.Is(err, errReplayStop) {
				rep.Truncated = true
				return NewImage(words), rep, nil
			}
			return nil, rep, err
		}
		if !sealed {
			rep.addDamage("segment-unsealed", name, "sealed delta segment has no seal record")
			rep.Truncated = true
			return NewImage(words), rep, nil
		}
		rep.Segments++
	}

	// Active segment: the writer's open log when it died. A torn tail here
	// is the expected kill -9 shape; the valid prefix still holds committed
	// (but unsealed) writes that image-level salvage may use.
	active := DeltaFileName(segBase + segCount)
	n, _, err := replaySegment(fsys, filepath.Join(dir, active), words, false, rep)
	if err != nil && !errors.Is(err, errReplayStop) && !errors.Is(err, iofs.ErrNotExist) {
		return nil, rep, err
	}
	rep.ActiveRecords = n
	return NewImage(words), rep, nil
}

// replaySegment applies one delta log's valid record prefix into words.
// sealed selects strict mode: damage in a manifest-listed segment is
// reported as segment-torn and replay stops (errReplayStop); in the active
// segment a torn tail is normal kill -9 evidence (active-torn) and the
// valid prefix is kept. Returns the record count and whether a seal record
// terminated the segment.
func replaySegment(fsys fault.FS, path string, words map[uint64]uint64, sealed bool, rep *DirReport) (int, bool, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, false, err
	}
	r := bufio.NewReaderSize(f, 1<<16)
	name := filepath.Base(path)
	recs := 0
	sawSeal := false
	var replayErr error
	torn := func(note string) {
		if sealed {
			rep.addDamage("segment-torn", name, note)
			replayErr = errReplayStop
		} else if note != "clean end" {
			rep.addDamage("active-torn", name, note)
		}
	}
loop:
	for {
		header, err := readWords(r, 3)
		switch {
		case errors.Is(err, io.EOF):
			break loop
		case err != nil:
			torn("torn record header")
			break loop
		}
		switch header[0] {
		case FileDeltaMagic:
			addr, n := header[1], header[2]
			if n == 0 || n > maxDeltaWords || addr&7 != 0 {
				torn(fmt.Sprintf("implausible delta record (addr %#x, %d words)", addr, n))
				break loop
			}
			body, err := readWords(r, int(n)+1)
			if err != nil {
				torn(fmt.Sprintf("torn delta record body: %v", err))
				break loop
			}
			rec := append(header, body...)
			if !ValidRecord(rec, FileDeltaMagic) {
				torn("delta record checksum mismatch")
				break loop
			}
			for i, v := range body[:n] {
				words[addr+uint64(i*8)] = v
			}
			recs++
		case FileSealMagic:
			body, err := readWords(r, 1)
			if err != nil {
				torn(fmt.Sprintf("torn seal record: %v", err))
				break loop
			}
			rec := append(header, body...)
			if !ValidRecord(rec, FileSealMagic) {
				torn("seal record checksum mismatch")
				break loop
			}
			if rec[2] != uint64(recs) {
				torn(fmt.Sprintf("seal record counts %d records, segment has %d", rec[2], recs))
				break loop
			}
			sawSeal = true
			// A seal record terminates the segment; trailing bytes would
			// mean the file was appended to after sealing. A Peek error is
			// the expected clean EOF and carries no information.
			if _, err := r.Peek(1); err == nil { //nvlint:allow errlatch a Peek error here is the expected clean EOF
				torn("bytes after seal record")
			}
			break loop
		default:
			torn(fmt.Sprintf("unknown record magic %#x", header[0]))
			break loop
		}
	}
	if err := f.Close(); err != nil && replayErr == nil {
		replayErr = err
	}
	return recs, sawSeal, replayErr
}

// replayCheckpoint loads a base image into words, verifying the header
// checksum and the running digest over all (addr, word) pairs. Any
// mismatch is an error: a checkpoint is all-or-nothing, there is no older
// state underneath it to fall back on.
func replayCheckpoint(fsys fault.FS, path string, words map[uint64]uint64) error {
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	name := filepath.Base(path)
	r := bufio.NewReaderSize(f, 1<<16)
	fail := func(note string) error {
		_ = f.Close() // the corruption is the error worth reporting
		return fmt.Errorf("mem: checkpoint %s: %s", name, note)
	}
	header, err := readWords(r, 5)
	if err != nil {
		return fail(fmt.Sprintf("torn header: %v", err))
	}
	if !ValidRecord(header, FileCkptMagic) {
		return fail("header checksum mismatch")
	}
	if header[1] != FileFormatVersion {
		return fail(fmt.Sprintf("format version %d not supported", header[1]))
	}
	n := header[3]
	if n > 1<<28 {
		return fail("implausible word count")
	}
	digest := ckptDigestSeed
	for i := uint64(0); i < n; i++ {
		pair, err := readWords(r, 2)
		if err != nil {
			return fail(fmt.Sprintf("torn body: %v", err))
		}
		if pair[0]&7 != 0 {
			return fail("misaligned word address")
		}
		words[pair[0]] = pair[1]
		digest = PairMix(PairMix(digest, pair[0]), pair[1])
	}
	trailer, err := readWords(r, 1)
	if err != nil {
		return fail(fmt.Sprintf("missing digest: %v", err))
	}
	if trailer[0] != digest {
		return fail("digest mismatch")
	}
	// A Peek error here is the expected clean EOF and carries no information.
	if _, err := r.Peek(1); err == nil { //nvlint:allow errlatch a Peek error here is the expected clean EOF
		return fail("bytes after digest")
	}
	return f.Close()
}

// readWords reads exactly n little-endian uint64 words.
func readWords(r io.Reader, n int) ([]uint64, error) {
	buf := make([]byte, n*8)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	words := make([]uint64, n)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return words, nil
}
