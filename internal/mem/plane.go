package mem

// DurablePlane is the storage backend of the NVM content plane: the words
// the simulated device would actually hold after losing power. The timing
// model (bank queues, backlog stalls) is unchanged by the plane choice —
// a plane only records what committed writes persist and where.
//
// Two implementations exist:
//
//   - RAMPlane keeps the persisted word array in memory. This is the
//     historical behaviour: a "power cut" is the in-process PowerCut
//     probe, and recovery runs against the returned Image in the same
//     process.
//   - FilePlane additionally mirrors every committed word into an
//     append/checkpoint file format under a directory, with an atomically
//     renamed manifest per sealed epoch. A fresh process can open the
//     directory cold after a real kill -9 and salvage it (LoadDir +
//     recovery.SalvageDir).
//
// Apply and XorWord mutate the persisted array; Snapshot, Word, Words and
// SortedAddrs read it. SealEpoch is the epoch-seal persistence barrier:
// RAMPlane ignores it, FilePlane flushes and publishes a new manifest.
type DurablePlane interface {
	// Apply records a committed word burst at addr (8-byte aligned).
	Apply(addr uint64, words []uint64)
	// SealEpoch marks epoch as sealed: everything applied so far must be
	// durable before the seal is visible to a cold reopen.
	SealEpoch(epoch uint64)
	// Durable reports whether the plane survives process death (file
	// planes). The device only pays seal barriers on durable planes.
	Durable() bool
	// Word reads one persisted word.
	Word(addr uint64) (uint64, bool)
	// Words returns the persisted word count.
	Words() int
	// SortedAddrs returns every persisted word address ascending.
	SortedAddrs() []uint64
	// XorWord flips bits of a persisted word (fault injection at power
	// cut); it is a no-op when the word does not exist.
	XorWord(addr, mask uint64)
	// Snapshot copies the persisted array into an Image.
	Snapshot() *Image
	// Err returns the first I/O error the plane swallowed on the write
	// path (Apply has no error return: the device model cannot stall on
	// host I/O). Always nil for RAMPlane.
	Err() error
	// Close releases plane resources, flushing buffered state first, and
	// returns Err() if any write was lost.
	Close() error
}

// RAMPlane is the in-memory durable plane: a sparse 8-byte word array.
type RAMPlane struct {
	words map[uint64]uint64
}

// NewRAMPlane returns an empty in-memory plane.
func NewRAMPlane() *RAMPlane {
	return &RAMPlane{words: make(map[uint64]uint64)}
}

// Apply implements DurablePlane.
func (p *RAMPlane) Apply(addr uint64, words []uint64) {
	for i, v := range words {
		p.words[addr+uint64(i*8)] = v
	}
}

// SealEpoch implements DurablePlane; RAM has no seal barrier.
func (p *RAMPlane) SealEpoch(epoch uint64) {}

// Durable implements DurablePlane.
func (p *RAMPlane) Durable() bool { return false }

// Word implements DurablePlane.
func (p *RAMPlane) Word(addr uint64) (uint64, bool) {
	v, ok := p.words[addr]
	return v, ok
}

// Words implements DurablePlane.
func (p *RAMPlane) Words() int { return len(p.words) }

// SortedAddrs implements DurablePlane.
func (p *RAMPlane) SortedAddrs() []uint64 { return sortedWordAddrs(p.words) }

// XorWord implements DurablePlane.
func (p *RAMPlane) XorWord(addr, mask uint64) {
	if v, ok := p.words[addr]; ok {
		p.words[addr] = v ^ mask
	}
}

// Snapshot implements DurablePlane.
func (p *RAMPlane) Snapshot() *Image { return snapshotImage(p.words) }

// Err implements DurablePlane.
func (p *RAMPlane) Err() error { return nil }

// Close implements DurablePlane.
func (p *RAMPlane) Close() error { return nil }
