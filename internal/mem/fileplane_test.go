package mem

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

// applyBurst writes a deterministic burst pattern for epoch e.
func applyBurst(p DurablePlane, e uint64, n int) {
	for i := 0; i < n; i++ {
		addr := uint64(i%7) << 12
		p.Apply(addr, []uint64{e<<32 | uint64(i), e ^ uint64(i)})
	}
}

func openTestPlane(t *testing.T, every int) (*FilePlane, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	p, err := OpenFilePlane(dir, every)
	if err != nil {
		t.Fatalf("OpenFilePlane: %v", err)
	}
	return p, dir
}

func reload(t *testing.T, dir string) (*Image, *DirReport) {
	t.Helper()
	img, rep, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v (report %+v)", err, rep)
	}
	return img, rep
}

func imagesEqual(t *testing.T, got, want *Image) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("image length %d, want %d", got.Len(), want.Len())
	}
	for _, a := range want.SortedAddrs() {
		w, _ := want.Word(a)
		g, ok := got.Word(a)
		if !ok || g != w {
			t.Fatalf("word %#x: got %#x (present %v), want %#x", a, g, ok, w)
		}
	}
}

// TestFilePlaneRoundTrip seals a few epochs, closes, and reopens the
// directory cold: the replayed image must equal the live snapshot
// (Close flushes the active segment, so even unsealed trailing writes
// survive a clean shutdown).
func TestFilePlaneRoundTrip(t *testing.T) {
	p, dir := openTestPlane(t, 0)
	for e := uint64(1); e <= 3; e++ {
		applyBurst(p, e, 10)
		p.SealEpoch(e)
	}
	applyBurst(p, 4, 3) // unsealed tail
	want := p.Snapshot()
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	img, rep := reload(t, dir)
	imagesEqual(t, img, want)
	if rep.SealedEpoch != 3 {
		t.Fatalf("sealed epoch %d, want 3", rep.SealedEpoch)
	}
	if rep.Segments != 3 {
		t.Fatalf("replayed %d sealed segments, want 3", rep.Segments)
	}
	if rep.ActiveRecords != 3 {
		t.Fatalf("replayed %d active records, want 3", rep.ActiveRecords)
	}
	if len(rep.Damage) != 0 {
		t.Fatalf("unexpected damage: %+v", rep.Damage)
	}
}

// TestFilePlaneCheckpoint verifies base-image compaction: with a
// checkpoint every 2 seals, old delta segments are deleted once the
// manifest stops referencing them, and a cold reload still reproduces
// the full image from checkpoint + remaining deltas.
func TestFilePlaneCheckpoint(t *testing.T) {
	p, dir := openTestPlane(t, 2)
	for e := uint64(1); e <= 5; e++ {
		applyBurst(p, e, 12)
		p.SealEpoch(e)
	}
	want := p.Snapshot()
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Seals 1..5 with checkpoints after 2 and 4: segments 0..3 compacted
	// away, segment 4 sealed, segment 5 active.
	for _, gone := range []string{DeltaFileName(0), DeltaFileName(3), CheckpointFileName(1)} {
		if _, err := os.Stat(filepath.Join(dir, gone)); !os.IsNotExist(err) {
			t.Fatalf("%s should have been compacted away (err %v)", gone, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, CheckpointFileName(3))); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	img, rep := reload(t, dir)
	imagesEqual(t, img, want)
	if rep.CheckpointSeq != 3 {
		t.Fatalf("checkpoint seq %d, want 3", rep.CheckpointSeq)
	}
	if rep.SealedEpoch != 5 {
		t.Fatalf("sealed epoch %d, want 5", rep.SealedEpoch)
	}
}

// TestOpenFilePlaneRefusesExistingStore: writers only ever start fresh.
func TestOpenFilePlaneRefusesExistingStore(t *testing.T) {
	p, dir := openTestPlane(t, 0)
	p.SealEpoch(1)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := OpenFilePlane(dir, 0); err == nil {
		t.Fatal("OpenFilePlane reopened a non-empty store")
	}
}

// TestLoadDirYoungRun: a store killed before its first seal has no
// manifest, only delta-000000.log; the valid prefix is replayed.
func TestLoadDirYoungRun(t *testing.T) {
	p, dir := openTestPlane(t, 0)
	applyBurst(p, 1, 5)
	want := p.Snapshot()
	if err := p.Close(); err != nil { // flush without seal: no manifest yet
		t.Fatalf("Close: %v", err)
	}
	img, rep := reload(t, dir)
	imagesEqual(t, img, want)
	if rep.SealedEpoch != 0 || rep.Segments != 0 {
		t.Fatalf("young run misread: %+v", rep)
	}
}

// TestLoadDirMissing: a nonexistent directory is a fatal store-missing.
func TestLoadDirMissing(t *testing.T) {
	_, rep, err := LoadDir(filepath.Join(t.TempDir(), "nope"))
	if err == nil {
		t.Fatal("LoadDir succeeded on a missing directory")
	}
	if rep.Fatal != "store-missing" {
		t.Fatalf("fatal %q, want store-missing", rep.Fatal)
	}
}

// TestNVMSealDurableRAMNoop: on the default RAM plane SealDurable must not
// perturb the device at all — the in-memory image with seal barriers
// sprinkled in is byte-identical to one without.
func TestNVMSealDurableRAMNoop(t *testing.T) {
	build := func(seal bool) *Image {
		cfg := sim.DefaultConfig()
		n := NewNVM(&cfg)
		for i := uint64(0); i < 40; i++ {
			n.Persist(WData, i<<12, 64, []uint64{i, i * 3}, i*100)
			if seal && i%10 == 9 {
				n.SealDurable(i/10, i*100)
			}
		}
		return n.Image()
	}
	imagesEqual(t, build(true), build(false))
}
