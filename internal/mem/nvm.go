// Package mem models the off-chip memory devices of the simulated machine:
// a banked NVDIMM (write latency, bank queueing, per-class byte accounting,
// wear counters, bandwidth time series) and a DRAM working-memory model with
// the per-line OID side-band that NVOverlay requires (§IV-A4).
package mem

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// WriteClass labels NVM traffic so write amplification can be decomposed the
// way the paper's Figure 12 does.
type WriteClass int

const (
	// WData is snapshot/working data written in cache-line units.
	WData WriteClass = iota
	// WLog is undo/redo log traffic (72-byte entries in PiCL and SW logging).
	WLog
	// WMeta is persistent mapping-table traffic (8-byte entry writes).
	WMeta
	// WContext is processor context dumped at epoch boundaries.
	WContext
	numWriteClasses
)

// String returns the counter-key name of the class.
func (c WriteClass) String() string {
	switch c {
	case WData:
		return "data"
	case WLog:
		return "log"
	case WMeta:
		return "meta"
	case WContext:
		return "context"
	default:
		return fmt.Sprintf("class%d", int(c))
	}
}

// NVM models a banked non-volatile DIMM with a cumulative-work bandwidth
// model: each bank accumulates the busy time of the writes booked on it;
// when accumulated work runs ahead of the issuer's clock by more than the
// configured backlog (the controller's write-buffer depth), the issuer is
// charged the excess as a stall. Idle bank time acts as buffer credit,
// which matches the paper's assumption of a write-back DRAM buffer large
// enough to absorb bursts (§VI-B): only *sustained* oversubscription
// back-pressures execution.
type NVM struct {
	cfg *sim.Config

	bankBusy []uint64 // cumulative booked work per bank (cycles)
	lastLine []uint64 // last line buffered per bank (write combining)
	bytes    [numWriteClasses]int64
	writes   [numWriteClasses]int64

	wear     map[uint64]int64 // per-page write counts (line writes land here)
	series   *stats.TimeSeries
	progress func() float64 // supplied by the driver; nil means no series
	stat     *stats.Set

	// Content plane (durability model). The timing model above books bank
	// occupancy; the content plane additionally tracks what the array
	// would actually hold after a power cut. plane is the persisted word
	// array (in RAM by default, mirrored to disk when a FilePlane is
	// attached); pending holds per-bank FIFO queues of writes whose device
	// completion watermark has not passed yet — those are the writes a
	// power cut can tear or lose. bankDone is the per-bank completion
	// clock: unlike bankBusy (cumulative work, which grants idle credit
	// for the *stall* model), a write issued at cycle t can never be
	// durable before t+latency.
	plane    DurablePlane
	pending  [][]pendingWrite
	bankDone []uint64
	inj      *fault.Injector
	bus      *obs.Bus // nil when the run is unobserved
}

// pendingWrite is one word burst sitting in a bank's volatile queue.
type pendingWrite struct {
	addr  uint64   // first word address (8-byte aligned)
	words []uint64 // payload, 8 bytes per element
	done  uint64   // device completion cycle; durable once done <= now
}

// NewNVM constructs the device from the machine config.
func NewNVM(cfg *sim.Config) *NVM {
	return &NVM{
		cfg:      cfg,
		bankBusy: make([]uint64, cfg.NVMBanks),
		lastLine: make([]uint64, cfg.NVMBanks),
		wear:     make(map[uint64]int64),
		series:   stats.NewTimeSeries(cfg.TimeSeriesBuckets),
		stat:     stats.NewSet("nvm"),
		plane:    NewRAMPlane(),
		pending:  make([][]pendingWrite, cfg.NVMBanks),
		bankDone: make([]uint64, cfg.NVMBanks),
		bus:      cfg.Obs,
	}
}

// SetProgress installs the driver's progress callback (fraction of the trace
// issued so far); it positions bandwidth samples on the Fig-17 axis.
func (n *NVM) SetProgress(f func() float64) { n.progress = f }

func (n *NVM) bankOf(addr uint64) int {
	line := addr / uint64(n.cfg.LineSize)
	return int(line % uint64(n.cfg.NVMBanks))
}

// bookLine queues one device write on addr's bank and returns its backlog
// stall. Sub-line writes (8-byte mapping-table entries) that hit the same
// line as the bank's pending write coalesce in the controller's write
// buffer: bytes are accounted but no extra bank time is consumed.
func (n *NVM) bookLine(addr uint64, size int, now uint64) (stall uint64) {
	b := n.bankOf(addr)
	line := addr / uint64(n.cfg.LineSize)
	occ := n.cfg.NVMWriteLat
	if size < n.cfg.LineSize {
		if n.lastLine[b] == line && n.bankBusy[b] > now {
			return 0 // write-combined with the buffered line
		}
		occ = n.cfg.NVMWriteLat / 4
		if occ == 0 {
			occ = 1
		}
	}
	n.lastLine[b] = line
	n.bankBusy[b] += occ
	if n.bus != nil {
		var depth uint64
		if n.bankBusy[b] > now {
			depth = n.bankBusy[b] - now
		}
		n.bus.Emit(obs.KindNVMEnqueue, now, b, 0, addr, uint64(size), depth)
	}
	if n.bankBusy[b] > now+n.cfg.NVMMaxBacklog {
		stall = n.bankBusy[b] - now - n.cfg.NVMMaxBacklog
		n.stat.Add("stall_cycles", int64(stall))
		n.stat.Inc("stalled_writes")
	}
	return stall
}

// Write books a write of size bytes at address addr, issued at cycle now.
// Multi-line transfers stripe line by line across banks. It returns the
// stall charged to the issuer: zero while the device keeps up, positive
// once a bank's backlog exceeds the configured limit. Synchronous callers
// (software persistence barriers) should use WriteSync instead.
func (n *NVM) Write(class WriteClass, addr uint64, size int, now uint64) (stall uint64) {
	n.account(class, addr, size)
	if size <= n.cfg.LineSize {
		return n.bookLine(addr, size, now)
	}
	for off := 0; off < size; off += n.cfg.LineSize {
		chunk := n.cfg.LineSize
		if size-off < chunk {
			chunk = size - off // partial tail (e.g. a 72-byte log entry's tag)
		}
		stall += n.bookLine(addr+uint64(off), chunk, now+stall)
	}
	return stall
}

// WriteSync books a write and returns the full completion latency relative
// to now. It models a software persistence barrier: the issuing thread waits
// for the line to be durable.
func (n *NVM) WriteSync(class WriteClass, addr uint64, size int, now uint64) (latency uint64) {
	n.account(class, addr, size)
	if size <= n.cfg.LineSize {
		return n.syncLine(addr, size, now)
	}
	for off := 0; off < size; off += n.cfg.LineSize {
		chunk := n.cfg.LineSize
		if size-off < chunk {
			chunk = size - off
		}
		latency += n.syncLine(addr+uint64(off), chunk, now+latency)
	}
	return latency
}

func (n *NVM) syncLine(addr uint64, size int, now uint64) uint64 {
	b := n.bankOf(addr)
	occ := n.cfg.NVMWriteLat
	if size < n.cfg.LineSize {
		occ = n.cfg.NVMWriteLat / 4
		if occ == 0 {
			occ = 1
		}
	}
	n.lastLine[b] = addr / uint64(n.cfg.LineSize)
	// The barrier waits for everything queued ahead plus this write.
	var queued uint64
	if n.bankBusy[b] > now {
		queued = n.bankBusy[b] - now
	}
	n.bankBusy[b] += occ
	return queued + occ
}

func (n *NVM) account(class WriteClass, addr uint64, size int) {
	n.bytes[class] += int64(size)
	n.writes[class]++
	n.wear[n.cfg.PageAddr(addr)]++
	n.stat.Add("bytes_"+class.String(), int64(size))
	n.stat.Inc("writes_" + class.String())
	if n.progress != nil {
		n.series.Record(n.progress(), int64(size))
	}
}

// Read returns the read latency of the device; NVM reads during recovery and
// time-travel use this. Reads are not bandwidth-modelled (the paper's
// evaluation is write-bound).
func (n *NVM) Read() uint64 { return n.cfg.NVMReadLat }

// Tick attributes elapsed simulated time to the bandwidth series.
func (n *NVM) Tick(now uint64) {
	if n.progress != nil {
		n.series.Tick(n.progress(), now)
	}
}

// Bytes returns bytes written for a class.
func (n *NVM) Bytes(class WriteClass) int64 { return n.bytes[class] }

// TotalBytes returns all bytes written across classes.
func (n *NVM) TotalBytes() int64 {
	var sum int64
	for _, b := range n.bytes {
		sum += b
	}
	return sum
}

// Writes returns the number of write operations for a class.
func (n *NVM) Writes(class WriteClass) int64 { return n.writes[class] }

// TotalWrites returns write operations across all classes.
func (n *NVM) TotalWrites() int64 {
	var sum int64
	for _, w := range n.writes {
		sum += w
	}
	return sum
}

// MaxWear returns the highest per-page write count (endurance proxy).
func (n *NVM) MaxWear() int64 {
	var m int64
	//nvlint:allow maprange commutative max over wear counters
	for _, w := range n.wear {
		if w > m {
			m = w
		}
	}
	return m
}

// PagesTouched returns how many distinct NVM pages have been written.
func (n *NVM) PagesTouched() int { return len(n.wear) }

// Series exposes the bandwidth time series (Fig 17).
func (n *NVM) Series() *stats.TimeSeries { return n.series }

// Stats exposes the device counter set.
func (n *NVM) Stats() *stats.Set { return n.stat }
