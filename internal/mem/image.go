package mem

import "sort"

// Image is the durable NVM content after a power cut: a sparse 8-byte word
// array. Recovery reads it through Word and must treat every absence as a
// write that never reached the array. The fuzz harness mutates images
// directly through Delete and FlipBit to model corruption beyond what the
// injector draws.
type Image struct {
	words map[uint64]uint64
}

func snapshotImage(store map[uint64]uint64) *Image {
	words := make(map[uint64]uint64, len(store))
	//nvlint:allow maprange copying into the Image snapshot map
	for a, v := range store {
		words[a] = v
	}
	return &Image{words: words}
}

// NewImage builds an image from an explicit word map (test helper).
func NewImage(words map[uint64]uint64) *Image {
	if words == nil {
		words = make(map[uint64]uint64)
	}
	return &Image{words: words}
}

// Word returns the persisted 8-byte word at addr and whether it exists.
func (im *Image) Word(addr uint64) (uint64, bool) {
	if im == nil {
		return 0, false
	}
	v, ok := im.words[wordAlign(addr)]
	return v, ok
}

// Len returns how many persisted words the image holds.
func (im *Image) Len() int {
	if im == nil {
		return 0
	}
	return len(im.words)
}

// SortedAddrs returns every persisted word address in ascending order.
func (im *Image) SortedAddrs() []uint64 {
	if im == nil {
		return nil
	}
	return sortedWordAddrs(im.words)
}

// Delete removes a persisted word (corruption modelling: a write that was
// thought durable but never reached the array).
func (im *Image) Delete(addr uint64) { delete(im.words, wordAlign(addr)) }

// FlipBit flips one bit of a persisted word; it is a no-op when the word
// does not exist.
func (im *Image) FlipBit(addr uint64, bit uint) {
	a := wordAlign(addr)
	if v, ok := im.words[a]; ok {
		im.words[a] = v ^ (1 << (bit & 63))
	}
}

func sortedWordAddrs(m map[uint64]uint64) []uint64 {
	addrs := make([]uint64, 0, len(m))
	//nvlint:allow maprange collect-then-sort
	for a := range m {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}
