package mem

import (
	"errors"

	"repro/internal/fault"
	"repro/internal/obs"
)

// I/O robustness policy of the file-backed plane, sitting between the
// store's writers and the fault.FS seam.
//
// Retry happens here — below bufio — because bufio.Writer latches its first
// error permanently: once a Flush fails, every later call returns the same
// error and the buffered bytes are unrecoverable. retryFile absorbs
// transient faults (short writes, transient EIO) before bufio ever sees
// them, resuming short writes from the already-written prefix so the byte
// stream reaching the file is exactly the byte stream the caller wrote.
//
// Sync is deliberately NOT retried. A failed fsync may have dropped the
// dirty pages and a retry may falsely report success (fsyncgate); the only
// sound reaction is to treat the first Sync error as final and wound the
// plane. The same goes for directory fsyncs.
const (
	// MaxIORetries bounds the transient-fault retries of one Write call.
	// The bound is small: a device that needs more than a handful of
	// retries for one write is a device to stop trusting.
	MaxIORetries = 4

	// retryBackoffCap caps the per-attempt deterministic backoff ticks.
	retryBackoffCap = 8
)

// ErrPlaneWounded is the typed error writers receive after the plane
// degrades to read-only wounded mode: a permanent write-path failure was
// latched, no further bytes will be written, and durability claims stop at
// the last published manifest. The RAM mirror stays live (reads and
// snapshots keep working) and everything already sealed remains readable
// and salvageable; errors.Is(plane.Err(), ErrPlaneWounded) identifies the
// state.
var ErrPlaneWounded = errors.New("mem: durable plane wounded; store is read-only")

// backoffTicks is the deterministic backoff schedule: attempt i (1-based)
// charges min(2^(i-1), retryBackoffCap) abstract ticks. No wall clock is
// involved — the simulator has no real time to wait in — but the charge is
// recorded in the retry stats and io_retry events, so a policy layer above
// (or a real deployment translating ticks to sleeps) sees the intended
// exponential shape.
func backoffTicks(attempt int) uint64 {
	t := uint64(1) << uint(attempt-1)
	if t > retryBackoffCap {
		return retryBackoffCap
	}
	return t
}

// retryFile adapts one fault.File with the transient-retry policy. It
// implements fault.File itself, so bufio.Writer and the direct writers run
// unchanged above it.
type retryFile struct {
	f fault.File
	p *FilePlane // retry/fault accounting and obs emission
}

// Write writes p fully, absorbing up to MaxIORetries transient faults.
// Short writes resume from the written prefix; a permanent fault (or
// exhausting the budget) surfaces to the caller — which latches it into
// the plane via the usual fail path.
func (r *retryFile) Write(p []byte) (int, error) {
	written := 0
	retries := 0
	for {
		n, err := r.f.Write(p[written:])
		written += n
		if err == nil {
			if written < len(p) {
				// A short write without an error still means the tail is
				// unwritten; resume. (io.Writer implementations shouldn't do
				// this, but the retry layer is exactly where paranoia lives.)
				continue
			}
			return written, nil
		}
		r.p.noteIOFault("write", err)
		if !fault.IsTransient(err) || retries >= MaxIORetries {
			return written, err
		}
		retries++
		r.p.noteIORetry(retries, backoffTicks(retries))
	}
}

func (r *retryFile) Read(p []byte) (int, error) { return r.f.Read(p) }

// Sync is passed through with no retry: fsync errors are final (fsyncgate).
func (r *retryFile) Sync() error {
	err := r.f.Sync()
	if err != nil {
		r.p.noteIOFault("sync", err)
	}
	return err
}

func (r *retryFile) Close() error { return r.f.Close() }

// noteIOFault records one observed disk fault on the plane's counters and
// bus. Transience is what the retry policy keyed on, so it rides in Arg.
func (p *FilePlane) noteIOFault(op string, err error) {
	p.ioFaults++
	arg := uint64(0)
	if fault.IsTransient(err) {
		arg = 1
	}
	var aux uint64
	var de *fault.DiskError
	if errors.As(err, &de) {
		aux = uint64(de.OpIndex)
	}
	p.bus.EmitNote(obs.KindIOFault, 0, -1, p.sealedEpoch, 0, arg, aux, op)
}

// noteIORetry records one transient-fault retry attempt.
func (p *FilePlane) noteIORetry(attempt int, ticks uint64) {
	p.ioRetries++
	p.backoff += ticks
	p.bus.Emit(obs.KindIORetry, 0, -1, p.sealedEpoch, 0, uint64(attempt), ticks)
}

// IOStats reports the plane's fault/retry accounting: disk faults observed
// (after retry absorption the caller may never have seen them), retry
// attempts spent, and deterministic backoff ticks charged.
func (p *FilePlane) IOStats() (faults, retries int, backoffTicks uint64) {
	return p.ioFaults, p.ioRetries, p.backoff
}
