package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testCfg() *sim.Config {
	cfg := sim.DefaultConfig()
	return &cfg
}

func TestNVMWriteAccounting(t *testing.T) {
	n := NewNVM(testCfg())
	n.Write(WData, 0x1000, 64, 0)
	n.Write(WLog, 0x2000, 72, 0)
	n.Write(WMeta, 0x3000, 8, 0)
	n.Write(WContext, 0x4000, 2048, 0)
	if n.Bytes(WData) != 64 || n.Bytes(WLog) != 72 || n.Bytes(WMeta) != 8 || n.Bytes(WContext) != 2048 {
		t.Fatalf("byte accounting wrong: %d %d %d %d",
			n.Bytes(WData), n.Bytes(WLog), n.Bytes(WMeta), n.Bytes(WContext))
	}
	if n.TotalBytes() != 64+72+8+2048 {
		t.Fatalf("total = %d", n.TotalBytes())
	}
	if n.TotalWrites() != 4 {
		t.Fatalf("writes = %d", n.TotalWrites())
	}
	if n.Writes(WData) != 1 {
		t.Fatalf("data writes = %d", n.Writes(WData))
	}
}

func TestNVMBankBackpressure(t *testing.T) {
	cfg := testCfg()
	cfg.NVMMaxBacklog = 800 // two writes deep
	n := NewNVM(cfg)
	addr := uint64(0x1000) // fixed bank
	var stalled bool
	for i := 0; i < 10; i++ {
		if s := n.Write(WData, addr, 64, 0); s > 0 {
			stalled = true
		}
	}
	if !stalled {
		t.Fatal("expected backpressure stall on a saturated bank")
	}
	if n.Stats().Get("stalled_writes") == 0 {
		t.Fatal("stall counter not incremented")
	}
}

func TestNVMBanksIndependent(t *testing.T) {
	cfg := testCfg()
	cfg.NVMMaxBacklog = 400
	n := NewNVM(cfg)
	// Writes striped across all banks should not stall.
	for i := 0; i < cfg.NVMBanks; i++ {
		addr := uint64(i * cfg.LineSize)
		if s := n.Write(WData, addr, 64, 0); s != 0 {
			t.Fatalf("unexpected stall %d on bank %d", s, i)
		}
	}
}

func TestNVMWriteSyncLatency(t *testing.T) {
	n := NewNVM(testCfg())
	lat := n.WriteSync(WData, 0x40, 64, 100)
	if lat != n.cfg.NVMWriteLat {
		t.Fatalf("sync latency = %d, want %d", lat, n.cfg.NVMWriteLat)
	}
	// Second sync write to the same bank queues behind the first. Under the
	// cumulative-work model the bank's idle time before cycle 100 counts as
	// buffer credit, so the queue ahead is 400-100 = 300 cycles.
	lat2 := n.WriteSync(WData, 0x40, 64, 100)
	if lat2 != 300+n.cfg.NVMWriteLat {
		t.Fatalf("queued sync latency = %d, want %d", lat2, 300+n.cfg.NVMWriteLat)
	}
}

func TestNVMSubLineWriteCheaper(t *testing.T) {
	n := NewNVM(testCfg())
	full := n.WriteSync(WData, 0x0, 64, 0)
	small := n.WriteSync(WMeta, 0x40+uint64(64*16), 8, 0) // different bank
	if small >= full {
		t.Fatalf("8B write (%d) should cost less than 64B write (%d)", small, full)
	}
}

func TestNVMMultiLineOccupancy(t *testing.T) {
	n := NewNVM(testCfg())
	lat := n.WriteSync(WContext, 0x0, 2048, 0)
	if lat != n.cfg.NVMWriteLat*32 {
		t.Fatalf("2048B write latency = %d, want %d", lat, n.cfg.NVMWriteLat*32)
	}
}

func TestNVMWear(t *testing.T) {
	n := NewNVM(testCfg())
	for i := 0; i < 5; i++ {
		n.Write(WData, 0x1000, 64, 0)
	}
	n.Write(WData, 0x2000_0000, 64, 0)
	if n.MaxWear() != 5 {
		t.Fatalf("max wear = %d", n.MaxWear())
	}
	if n.PagesTouched() != 2 {
		t.Fatalf("pages touched = %d", n.PagesTouched())
	}
}

func TestNVMSeriesProgress(t *testing.T) {
	n := NewNVM(testCfg())
	p := 0.0
	n.SetProgress(func() float64 { return p })
	n.Write(WData, 0, 64, 0)
	p = 0.99
	n.Write(WData, 64, 64, 0)
	if n.Series().Bucket(0) != 64 {
		t.Fatalf("bucket 0 = %d", n.Series().Bucket(0))
	}
	if n.Series().Bucket(n.Series().Len()-1) != 64 {
		t.Fatalf("last bucket = %d", n.Series().Bucket(n.Series().Len()-1))
	}
	n.Tick(1000)
	if n.Series().Cycles(n.Series().Len()-1) != 1000 {
		t.Fatalf("cycles = %d", n.Series().Cycles(n.Series().Len()-1))
	}
}

func TestNVMRead(t *testing.T) {
	n := NewNVM(testCfg())
	if n.Read() != n.cfg.NVMReadLat {
		t.Fatalf("read latency = %d", n.Read())
	}
}

func TestWriteClassString(t *testing.T) {
	names := map[WriteClass]string{WData: "data", WLog: "log", WMeta: "meta", WContext: "context"}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if WriteClass(99).String() != "class99" {
		t.Fatal("unknown class string")
	}
}

// Property: bank booking never moves a bank's free time backwards, and byte
// accounting equals the sum of sizes written.
func TestNVMBookingProperty(t *testing.T) {
	f := func(addrs []uint16, sizes []uint8) bool {
		n := NewNVM(testCfg())
		var want int64
		for i, a := range addrs {
			size := 8
			if i < len(sizes) {
				size = int(sizes[i]%200) + 1
			}
			n.Write(WData, uint64(a)*64, size, uint64(i))
			want += int64(size)
		}
		prev := make([]uint64, len(n.bankBusy))
		copy(prev, n.bankBusy)
		n.Write(WData, 0, 64, 0)
		for i := range prev {
			if n.bankBusy[i] < prev[i] {
				return false
			}
		}
		return n.Bytes(WData) == want+64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDRAMOIDRoundTrip(t *testing.T) {
	d := NewDRAM(testCfg())
	if d.OID(0x1000) != 0 {
		t.Fatal("untouched line should have OID 0")
	}
	d.WriteBack(0x1000, 7, 111)
	if d.OID(0x1000) != 7 {
		t.Fatalf("OID = %d, want 7", d.OID(0x1000))
	}
	if d.Latency() != testCfg().DRAMLatency {
		t.Fatal("latency mismatch")
	}
	if d.TaggedLines() != 1 || d.SideBandBytes() != 2 {
		t.Fatalf("tagged=%d sideband=%d", d.TaggedLines(), d.SideBandBytes())
	}
	if d.Data(0x1000) != 111 {
		t.Fatalf("Data = %d, want 111", d.Data(0x1000))
	}
	if d.Data(0x9999000) != 0 {
		t.Fatal("untouched data should be zero")
	}
}

func TestDRAMSuperBlockMonotonic(t *testing.T) {
	cfg := testCfg()
	cfg.SuperBlock = 4
	d := NewDRAM(cfg)
	// Four lines share one granule; OID only rises.
	d.WriteBack(0x1000, 9, 1)
	d.WriteBack(0x1040, 3, 2) // same 256B super block, older epoch
	if d.OID(0x1080) != 9 {
		t.Fatalf("super-block OID = %d, want 9 (monotonic)", d.OID(0x1080))
	}
	d.WriteBack(0x10C0, 12, 3)
	if d.OID(0x1000) != 12 {
		t.Fatalf("super-block OID = %d, want 12", d.OID(0x1000))
	}
	if d.TaggedLines() != 1 {
		t.Fatalf("granules = %d, want 1", d.TaggedLines())
	}
}

func TestDRAMPerLineIndependent(t *testing.T) {
	d := NewDRAM(testCfg())
	d.WriteBack(0x1000, 9, 1)
	d.WriteBack(0x1040, 3, 2)
	if d.OID(0x1000) != 9 || d.OID(0x1040) != 3 {
		t.Fatal("per-line OIDs should be independent with SuperBlock=1")
	}
}
