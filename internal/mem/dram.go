package mem

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// DRAM models the working-memory device. It is latency-only (the paper
// assumes a write-back DRAM buffer large enough for the whole working set),
// but it carries the per-line OID side-band that NVOverlay stores in ECC
// bits or reserved words (§IV-A4). OIDs may be tracked per line or per
// 4-line "super block" (§V-F); with super blocks the stored OID is only
// raised, never lowered, exactly as the paper specifies.
type DRAM struct {
	cfg  *sim.Config
	oids map[uint64]uint64 // line (or super-block) address -> version
	data map[uint64]uint64 // line address -> payload token
	// dataOID orders write-backs per line: a stale dirty copy evicted from
	// the LLC after a newer version already reached DRAM (e.g. via the tag
	// walker's working-copy refresh) must not clobber the newer data. Real
	// systems get this ordering from coherence; the model enforces it here.
	dataOID map[uint64]uint64
	stat    *stats.Set
}

// NewDRAM constructs the device.
func NewDRAM(cfg *sim.Config) *DRAM {
	return &DRAM{
		cfg:     cfg,
		oids:    make(map[uint64]uint64),
		data:    make(map[uint64]uint64),
		dataOID: make(map[uint64]uint64),
		stat:    stats.NewSet("dram"),
	}
}

// key maps a line address onto its OID tracking granule.
func (d *DRAM) key(addr uint64) uint64 {
	granule := uint64(d.cfg.LineSize * d.cfg.SuperBlock)
	return addr &^ (granule - 1)
}

// Latency returns the access latency of the device.
func (d *DRAM) Latency() uint64 { return d.cfg.DRAMLatency }

// WriteBack records a dirty line landing in DRAM with the given version and
// payload token. With super-block tracking the existing OID is only updated
// if the incoming OID is larger; the payload is always the newest data.
func (d *DRAM) WriteBack(addr uint64, oid uint64, data uint64) {
	k := d.key(addr)
	if cur, ok := d.oids[k]; !ok || oid > cur {
		d.oids[k] = oid
	}
	line := d.cfg.LineAddr(addr)
	if cur, ok := d.dataOID[line]; !ok || oid >= cur {
		d.data[line] = data
		d.dataOID[line] = oid
	} else {
		d.stat.Inc("stale_writebacks_dropped")
	}
	d.stat.Inc("writebacks")
	d.stat.Add("bytes_written", int64(d.cfg.LineSize))
}

// Data returns the payload token last written back to addr's line (zero for
// untouched memory).
func (d *DRAM) Data(addr uint64) uint64 { return d.data[d.cfg.LineAddr(addr)] }

// OID returns the version tag stored for addr's granule (0 if never written:
// version 0 predates all epochs, so fetching untouched memory never advances
// anyone's epoch).
func (d *DRAM) OID(addr uint64) uint64 {
	d.stat.Inc("oid_lookups")
	return d.oids[d.key(addr)]
}

// TaggedLines returns how many OID granules DRAM currently tracks; the
// experiment harness uses it to report the side-band overhead trade-off of
// super-block tracking.
func (d *DRAM) TaggedLines() int { return len(d.oids) }

// SideBandBytes returns the bytes of OID metadata implied by the current
// tracked set (2 bytes per granule, mirroring the 16-bit tag).
func (d *DRAM) SideBandBytes() int64 { return int64(len(d.oids)) * 2 }

// Stats exposes the device counter set.
func (d *DRAM) Stats() *stats.Set { return d.stat }
