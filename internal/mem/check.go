package mem

// Record checksum primitives shared by every durable byte the simulated
// machine emits: the OMC's commit/seal/genesis records (internal/omc wraps
// these helpers) and the file-backed durable plane's on-disk manifest,
// checkpoint and delta-log records. Keeping one encoding means a record
// that round-trips through the file plane validates with exactly the same
// code that validates it inside a raw NVM image.

// mix64 is the splitmix64 finalizer: a cheap full-avalanche word mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// PairMix combines two words into one avalanche-mixed digest word. It is
// the unit of both record checksums and table digests.
func PairMix(a, b uint64) uint64 {
	return mix64(a*0x9e3779b97f4a7c15 ^ mix64(b))
}

// RecordCheck folds a record's payload words into its trailing checksum.
func RecordCheck(words []uint64) uint64 {
	c := uint64(0x5245434b53554d31) // "RECKSUM1"
	for _, w := range words {
		c = PairMix(c, w)
	}
	return c
}

// ValidRecord reports whether a full record slot (checksum in the last
// word) is internally consistent and carries the expected magic.
func ValidRecord(words []uint64, magic uint64) bool {
	n := len(words)
	if n < 2 || words[0] != magic {
		return false
	}
	return words[n-1] == RecordCheck(words[:n-1])
}
