package mem

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/obs"
)

// File-backed durable plane: an append/checkpoint on-disk format with
// manifest discipline, modelled on LSM manifest/WAL layering (NoKV) and
// CoW base-image + delta overlays (dh-cli). The directory holds
//
//   - MANIFEST — one fixed-size checksummed record naming the durable
//     state: newest sealed epoch, the base checkpoint (if any) and the
//     contiguous range of sealed delta segments layered on top of it.
//     Every epoch seal rewrites it atomically: write MANIFEST.tmp, fsync
//     the file, rename over MANIFEST, fsync the parent directory.
//   - delta-NNNNNN.log — append-only word-burst records (the committed
//     NVM writes of one seal interval), terminated by a seal record. The
//     segment is fsynced before the manifest lists it; the highest-
//     numbered segment is the active one and may have a torn tail after
//     kill -9.
//   - checkpoint-NNNNNN.img — a full base image written every
//     CheckpointEvery seals so unchanged words are shared across epochs
//     on disk instead of replayed from ever-growing logs. Superseded
//     segments and checkpoints are deleted only after the manifest that
//     stops referencing them is durable.
//
// All records reuse the repository's checksummed word-record encoding
// (RecordCheck / ValidRecord), serialised little-endian.
//
// Every filesystem operation goes through the fault.FS seam: production
// runs over fault.OS, the crash-consistency sweep over a MemFS wrapped in
// a FaultFS. Transient write faults are absorbed by retryFile (retry.go);
// any permanent write-path failure wounds the plane (ErrPlaneWounded):
// writes stop, the RAM mirror and everything already sealed stay readable.
const (
	// FileFormatVersion is the manifest schema version.
	FileFormatVersion = 1

	// FileManifestMagic marks the manifest record ("NVO-MFS1").
	FileManifestMagic uint64 = 0x4e564f2d4d465331
	// FileCkptMagic marks a checkpoint header ("NVO-CKP1").
	FileCkptMagic uint64 = 0x4e564f2d434b5031
	// FileDeltaMagic marks a delta-log word-burst record ("NVO-DLT1").
	FileDeltaMagic uint64 = 0x4e564f2d444c5431
	// FileSealMagic marks a delta-segment seal record ("NVO-SSL1").
	FileSealMagic uint64 = 0x4e564f2d53534c31

	// manifestWords is the manifest record size: [magic, version,
	// sealedEpoch, ckptSeq+1, ckptEpoch, segBase, segCount, check].
	manifestWords = 8

	// maxDeltaWords bounds one Apply burst on disk; anything larger in a
	// record header is corruption, not data.
	maxDeltaWords = 1 << 16

	// DefaultCheckpointEvery is the checkpoint cadence (epoch seals per
	// base-image rewrite) when the config leaves it zero.
	DefaultCheckpointEvery = 8

	manifestName = "MANIFEST"
	manifestTemp = "MANIFEST.tmp"
)

// ckptDigestSeed seeds the running digest over checkpoint (addr, word)
// pairs ("CKPTSUM1").
const ckptDigestSeed uint64 = 0x434b505453554d31

// DeltaFileName returns the delta segment file name for a sequence number.
func DeltaFileName(seq int) string { return fmt.Sprintf("delta-%06d.log", seq) }

// CheckpointFileName returns the checkpoint file name for a sequence number.
func CheckpointFileName(seq int) string { return fmt.Sprintf("checkpoint-%06d.img", seq) }

// ManifestFileName returns the manifest file name.
func ManifestFileName() string { return manifestName }

// FilePlane is the file-backed DurablePlane implementation. It keeps the
// live word array in RAM (Snapshot and fault-flip reads stay cheap) and
// mirrors every committed burst into the active delta segment.
type FilePlane struct {
	fsys fault.FS
	dir  string
	ram  *RAMPlane

	seg       *retryFile
	w         *bufio.Writer
	seq       int // active segment sequence number
	segBase   int // first sealed segment still referenced
	segCount  int // sealed segments in [segBase, segBase+segCount)
	recsInSeg uint64

	ckptSeq        int // -1: no checkpoint yet
	ckptEpoch      uint64
	ckptEvery      int
	sealsSinceCkpt int
	sealedEpoch    uint64

	err  error
	hook func(point string, epoch uint64)

	bus       *obs.Bus // nil when unobserved
	ioFaults  int
	ioRetries int
	backoff   uint64

	scratch []byte
}

// OpenFilePlane creates a fresh durable store in dir on the real
// filesystem. See OpenFilePlaneFS.
func OpenFilePlane(dir string, checkpointEvery int) (*FilePlane, error) {
	return OpenFilePlaneFS(fault.OS, dir, checkpointEvery)
}

// OpenFilePlaneFS creates a fresh durable store in dir (created if needed)
// of the given filesystem. It refuses a directory that already holds a
// manifest or delta segments: writers always start clean, recovery of an
// old store goes through LoadDir / recovery.SalvageDir. checkpointEvery
// <= 0 selects DefaultCheckpointEvery.
func OpenFilePlaneFS(fsys fault.FS, dir string, checkpointEvery int) (*FilePlane, error) {
	if checkpointEvery <= 0 {
		checkpointEvery = DefaultCheckpointEvery
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("mem: store dir: %w", err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("mem: store dir: %w", err)
	}
	for _, name := range names {
		switch {
		case name == manifestName, isDeltaName(name), isCkptName(name):
			return nil, fmt.Errorf("mem: store dir %s already holds %s; refusing to overwrite an existing store", dir, name)
		}
	}
	p := &FilePlane{
		fsys:      fsys,
		dir:       dir,
		ram:       NewRAMPlane(),
		seq:       0,
		ckptSeq:   -1,
		ckptEvery: checkpointEvery,
		scratch:   make([]byte, 8),
	}
	if err := p.openSegment(); err != nil {
		return nil, err
	}
	return p, nil
}

func isDeltaName(name string) bool {
	var seq int
	_, err := fmt.Sscanf(name, "delta-%06d.log", &seq)
	return err == nil && filepath.Ext(name) == ".log"
}

func isCkptName(name string) bool {
	var seq int
	_, err := fmt.Sscanf(name, "checkpoint-%06d.img", &seq)
	return err == nil && filepath.Ext(name) == ".img"
}

// SetSealHook installs a callback invoked at the durable-path boundaries of
// every epoch seal: "segment-synced" (delta log fsynced, manifest not yet
// rewritten), "checkpoint-written" (base image renamed into place),
// "manifest-temp" (MANIFEST.tmp fsynced, rename pending) and
// "manifest-renamed" (manifest and parent directory durable). The crash
// soak parks the child writer on these points so kill -9 lands on exact,
// seeded boundaries.
func (p *FilePlane) SetSealHook(f func(point string, epoch uint64)) { p.hook = f }

// AttachBus forwards the plane's I/O-fault, retry and wound events to the
// observability bus. The plane holds the bus, not a wrapper, so the
// zero-cost nil-bus guard applies.
func (p *FilePlane) AttachBus(b *obs.Bus) { p.bus = b }

func (p *FilePlane) at(point string, epoch uint64) {
	if p.hook != nil {
		p.hook(point, epoch)
	}
}

// fail latches the first permanent write-path error and degrades the plane
// to read-only wounded mode: the latched error wraps ErrPlaneWounded, every
// later Apply/SealEpoch is a no-op on disk, and the error is what Err,
// Close and the sweep's typed-refusal check observe. The RAM mirror stays
// live so the in-process run can continue, and nothing already sealed is
// touched — wounded stores salvage to their last published manifest.
func (p *FilePlane) fail(err error) {
	if p.err == nil && err != nil {
		p.err = fmt.Errorf("%w: %w", ErrPlaneWounded, err)
		p.bus.EmitNote(obs.KindPlaneWound, 0, -1, p.sealedEpoch, 0, 0, 0, err.Error())
	}
}

// Wounded reports whether a permanent write-path failure has degraded the
// plane to read-only mode.
func (p *FilePlane) Wounded() bool { return p.err != nil }

func (p *FilePlane) openSegment() error {
	f, err := p.fsys.CreateExcl(filepath.Join(p.dir, DeltaFileName(p.seq)))
	if err != nil {
		return fmt.Errorf("mem: delta segment: %w", err)
	}
	p.seg = &retryFile{f: f, p: p}
	p.w = bufio.NewWriter(p.seg)
	p.recsInSeg = 0
	return nil
}

func (p *FilePlane) putWord(w *bufio.Writer, v uint64) {
	binary.LittleEndian.PutUint64(p.scratch, v)
	if _, err := w.Write(p.scratch); err != nil {
		p.fail(err)
	}
}

// Apply implements DurablePlane: mirror to RAM, append a checksummed
// word-burst record to the active delta segment.
func (p *FilePlane) Apply(addr uint64, words []uint64) {
	p.ram.Apply(addr, words)
	if p.err != nil {
		return
	}
	header := []uint64{FileDeltaMagic, addr, uint64(len(words))}
	check := RecordCheck(append(header, words...))
	for _, v := range header {
		p.putWord(p.w, v)
	}
	for _, v := range words {
		p.putWord(p.w, v)
	}
	p.putWord(p.w, check)
	p.recsInSeg++
}

// SealEpoch implements DurablePlane: terminate and fsync the active
// segment, periodically rewrite the base checkpoint, atomically publish a
// new manifest (temp + rename + parent-directory fsync), then open the
// next segment. Obsolete segments and checkpoints are removed only after
// the manifest that drops them is durable.
//
// Sync errors are never retried anywhere on this path (fsyncgate: a
// failed fsync may have dropped the dirty pages, and retrying can falsely
// succeed); the first one wounds the plane with the segment unsealed and
// the old manifest still in force.
//
// nvlint:durable
func (p *FilePlane) SealEpoch(epoch uint64) {
	if p.err != nil {
		return
	}
	if epoch > p.sealedEpoch {
		p.sealedEpoch = epoch
	}
	seal := []uint64{FileSealMagic, epoch, p.recsInSeg}
	check := RecordCheck(seal)
	for _, v := range seal {
		p.putWord(p.w, v)
	}
	p.putWord(p.w, check)
	if err := p.w.Flush(); err != nil {
		p.fail(err)
		return
	}
	if err := p.seg.Sync(); err != nil {
		p.fail(err)
		return
	}
	if err := p.seg.Close(); err != nil {
		p.fail(err)
		return
	}
	p.seg, p.w = nil, nil
	p.segCount++
	p.sealsSinceCkpt++
	p.at("segment-synced", epoch)

	var obsolete []string
	if p.sealsSinceCkpt >= p.ckptEvery {
		if err := p.writeCheckpoint(p.seq); err != nil {
			p.fail(err)
			return
		}
		for s := p.segBase; s <= p.seq; s++ {
			obsolete = append(obsolete, DeltaFileName(s))
		}
		if p.ckptSeq >= 0 {
			obsolete = append(obsolete, CheckpointFileName(p.ckptSeq))
		}
		p.ckptSeq = p.seq
		p.ckptEpoch = p.sealedEpoch
		p.segBase = p.seq + 1
		p.segCount = 0
		p.sealsSinceCkpt = 0
		p.at("checkpoint-written", epoch)
	}

	if err := p.writeManifest(epoch); err != nil {
		p.fail(err)
		return
	}
	// The durable manifest no longer references these; losing them now can
	// only waste space, never state. Removal failures still count: a store
	// that cannot clean up is a store whose disk is misbehaving.
	for _, name := range obsolete {
		if err := p.fsys.Remove(filepath.Join(p.dir, name)); err != nil {
			p.fail(err)
			return
		}
	}
	p.seq++
	if err := p.openSegment(); err != nil {
		p.fail(err)
	}
}

// writeCheckpoint dumps the full word array as checkpoint seq: header
// [magic, version, epoch, nwords, check], sorted (addr, word) pairs, one
// trailing running digest word. Written to a temp name, fsynced, renamed,
// parent directory fsynced.
//
// nvlint:durable
func (p *FilePlane) writeCheckpoint(seq int) error {
	name := CheckpointFileName(seq)
	tmp := filepath.Join(p.dir, name+".tmp")
	f, err := p.fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("mem: checkpoint: %w", err)
	}
	rf := &retryFile{f: f, p: p}
	w := bufio.NewWriterSize(rf, 1<<16)
	addrs := p.ram.SortedAddrs()
	header := []uint64{FileCkptMagic, FileFormatVersion, p.sealedEpoch, uint64(len(addrs))}
	for _, v := range header {
		p.putWord(w, v)
	}
	p.putWord(w, RecordCheck(header))
	digest := ckptDigestSeed
	for _, a := range addrs {
		v, _ := p.ram.Word(a)
		p.putWord(w, a)
		p.putWord(w, v)
		digest = PairMix(PairMix(digest, a), v)
	}
	p.putWord(w, digest)
	if p.err != nil {
		// putWord failures landed in p.err; surface them as the checkpoint
		// error so the temp file is not renamed into place.
		err := p.err
		_ = rf.Close() // the write error is the one worth reporting
		return err
	}
	if err := w.Flush(); err != nil {
		_ = rf.Close() // the flush error is the one worth reporting
		return fmt.Errorf("mem: checkpoint: %w", err)
	}
	if err := rf.Sync(); err != nil {
		_ = rf.Close() // the sync error is the one worth reporting
		return fmt.Errorf("mem: checkpoint: %w", err)
	}
	if err := rf.Close(); err != nil {
		return fmt.Errorf("mem: checkpoint: %w", err)
	}
	if err := p.fsys.Rename(tmp, filepath.Join(p.dir, name)); err != nil {
		return fmt.Errorf("mem: checkpoint: %w", err)
	}
	if err := p.fsys.SyncDir(p.dir); err != nil {
		return fmt.Errorf("mem: dir sync: %w", err)
	}
	return nil
}

// writeManifest atomically publishes the current durable state. The
// sequence is the classic one: write MANIFEST.tmp, fsync it, rename over
// MANIFEST, fsync the parent directory so the rename itself is durable —
// a kill -9 at any point leaves either the old or the new manifest,
// never a torn one.
//
// nvlint:durable
func (p *FilePlane) writeManifest(epoch uint64) error {
	words := []uint64{
		FileManifestMagic,
		FileFormatVersion,
		p.sealedEpoch,
		uint64(p.ckptSeq + 1), // 0: no checkpoint
		p.ckptEpoch,
		uint64(p.segBase),
		uint64(p.segCount),
	}
	words = append(words, RecordCheck(words))
	tmp := filepath.Join(p.dir, manifestTemp)
	f, err := p.fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("mem: manifest: %w", err)
	}
	rf := &retryFile{f: f, p: p}
	buf := make([]byte, 8*len(words))
	for i, v := range words {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	if _, err := rf.Write(buf); err != nil {
		_ = rf.Close() // the write error is the one worth reporting
		return fmt.Errorf("mem: manifest: %w", err)
	}
	if err := rf.Sync(); err != nil {
		_ = rf.Close() // the sync error is the one worth reporting
		return fmt.Errorf("mem: manifest: %w", err)
	}
	if err := rf.Close(); err != nil {
		return fmt.Errorf("mem: manifest: %w", err)
	}
	p.at("manifest-temp", epoch)
	if err := p.fsys.Rename(tmp, filepath.Join(p.dir, manifestName)); err != nil {
		return fmt.Errorf("mem: manifest: %w", err)
	}
	if err := p.fsys.SyncDir(p.dir); err != nil {
		return fmt.Errorf("mem: dir sync: %w", err)
	}
	p.at("manifest-renamed", epoch)
	return nil
}

// Durable implements DurablePlane.
func (p *FilePlane) Durable() bool { return true }

// SealedEpoch returns the newest epoch a published manifest claims.
func (p *FilePlane) SealedEpoch() uint64 { return p.sealedEpoch }

// Dir returns the store directory.
func (p *FilePlane) Dir() string { return p.dir }

// Word implements DurablePlane.
func (p *FilePlane) Word(addr uint64) (uint64, bool) { return p.ram.Word(addr) }

// Words implements DurablePlane.
func (p *FilePlane) Words() int { return p.ram.Words() }

// SortedAddrs implements DurablePlane.
func (p *FilePlane) SortedAddrs() []uint64 { return p.ram.SortedAddrs() }

// XorWord implements DurablePlane. Fault-injection flips mutate only the
// RAM mirror: on-disk corruption is modelled by the torn-file tests
// mutating the files directly.
func (p *FilePlane) XorWord(addr, mask uint64) { p.ram.XorWord(addr, mask) }

// Snapshot implements DurablePlane.
func (p *FilePlane) Snapshot() *Image { return p.ram.Snapshot() }

// Err implements DurablePlane. After a permanent write failure it wraps
// ErrPlaneWounded around the root cause.
func (p *FilePlane) Err() error { return p.err }

// Close implements DurablePlane: flush and close the active segment
// without sealing it (durability is defined by sealed epochs, and a
// clean Close is indistinguishable from a kill right after it — exactly
// the guarantee the soak verifies).
func (p *FilePlane) Close() error {
	if p.seg != nil {
		if err := p.w.Flush(); err != nil {
			p.fail(err)
		} else if err := p.seg.Sync(); err != nil {
			p.fail(err)
		}
		if err := p.seg.Close(); err != nil {
			p.fail(err)
		}
		p.seg, p.w = nil, nil
	}
	return p.err
}
