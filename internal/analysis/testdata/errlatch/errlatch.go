// Package eltest exercises nvlint's errlatch analyzer: a captured error
// must reach a return or latch on every CFG path.
package eltest

import (
	"errors"
	"fmt"
	"os"
)

var errBoom = errors.New("boom")

func mayFail() error { return errBoom }

func alsoFails() error { return errBoom }

type latcher struct {
	err error
}

// goodReturn hands the error straight back.
func goodReturn() error {
	err := mayFail()
	return err
}

// goodWrap consumes the error on the non-nil branch by wrapping it.
func goodWrap() error {
	if err := mayFail(); err != nil {
		return fmt.Errorf("wrapped: %w", err)
	}
	return nil
}

// goodLatch stores the error into the latched field.
func (l *latcher) goodLatch() {
	err := mayFail()
	l.err = err
}

// goodProvenNil returns the error on the non-nil edge; past the test the
// variable is proven nil and dropping it is fine.
func goodProvenNil() error {
	err := mayFail()
	if err != nil {
		return err
	}
	return nil
}

// goodNilExprUse returns the comparison itself: a nested nil test is an
// ordinary consuming use.
func goodNilExprUse() bool {
	err := mayFail()
	return err == nil
}

// goodAbortPath may panic with the error: panic paths have no exit edge.
func goodAbortPath() {
	if err := mayFail(); err != nil {
		panic(err)
	}
}

// goodCapturedLatch assigns a captured variable inside a closure: the
// assignment is the latch, the closure does not own the variable.
func goodCapturedLatch() error {
	var ferr error
	f := func() {
		ferr = mayFail()
	}
	f()
	return ferr
}

// dropOnOneBranch is the seeded bug: the error reaches a return on the true
// branch but is silently dropped on the fall-through.
func dropOnOneBranch(keep bool) error {
	err := mayFail() // want "error err assigned here does not reach a return or latch on every path"
	if keep {
		return err
	}
	return nil
}

// emptyNilCheck looks at the error and then forgets it: an empty-bodied
// nil test is not handling.
func emptyNilCheck() {
	err := mayFail() // want "error err assigned here does not reach a return or latch on every path"
	if err != nil {
	}
}

// overwrittenUnhandled clobbers a still-unhandled error with a new one.
func overwrittenUnhandled(retry bool) error {
	err := mayFail() // want "error assigned here is overwritten at line \d+ while still unhandled"
	if retry {
		err = alsoFails()
	}
	return err
}

// exitPathExempt reports and exits: os.Exit paths have no exit edge, so
// only the fall-through return is audited, and it consumes the error.
func exitPathExempt() error {
	err := mayFail()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fatal:", err)
		os.Exit(1)
	}
	return err
}
