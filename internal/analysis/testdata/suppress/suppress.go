// Package suppress exercises the suppression machinery: an
// //nvlint:allow without a reason is itself a finding and does not cancel
// the diagnostic it was meant to hide. The harness checks this package's
// diagnostics programmatically (no // want annotations: a trailing comment
// on the allow line would become its reason).
package suppress

func sum(m map[uint64]uint64) uint64 {
	var s uint64
	//nvlint:allow maprange
	for _, v := range m {
		s += v
	}
	return s
}
