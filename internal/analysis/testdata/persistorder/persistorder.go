// Package potest exercises nvlint's persistorder analyzer: nvlint:durable
// functions must write → fsync → rename → fsync parent dir on every path.
package potest

import (
	"bufio"
	"os"
	"path/filepath"
)

// syncDir is the parent-directory fsync helper shape the analyzer
// recognises by name.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}

// goodSeal follows the full discipline: write, fsync, close, rename,
// parent-directory fsync.
//
// nvlint:durable
func goodSeal(dir string, data []byte) error {
	tmp := filepath.Join(dir, "seal.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "seal")); err != nil {
		return err
	}
	return syncDir(dir)
}

// renameUnsynced is the seeded ordering bug: the temp file is renamed into
// place while its data has never been fsynced.
//
// nvlint:durable
func renameUnsynced(dir string, data []byte) error {
	tmp := filepath.Join(dir, "seal.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "seal")); err != nil { // want "rename while f is written but not fsynced"
		return err
	}
	return syncDir(dir)
}

// renameNoDirSync is the second seeded bug: the rename itself is never made
// durable — no parent-directory fsync before the success return.
//
// nvlint:durable
func renameNoDirSync(dir string, data []byte) error {
	tmp := filepath.Join(dir, "seal.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "seal")); err != nil { // want "rename is published without an fsync of the parent directory"
		return err
	}
	return nil
}

// bufferedGood writes through a bufio.Writer: the alias is followed, and
// Flush + Sync restore the discipline.
//
// nvlint:durable
func bufferedGood(dir string, data []byte) error {
	tmp := filepath.Join(dir, "ckpt.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "ckpt")); err != nil {
		return err
	}
	return syncDir(dir)
}

// bufferedUnflushed renames while writes are only in the bufio buffer — the
// alias makes the underlying handle written, and it is never fsynced.
//
// nvlint:durable
func bufferedUnflushed(dir string, data []byte) error {
	tmp := filepath.Join(dir, "ckpt.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "ckpt")); err != nil { // want "rename while f is written but not fsynced"
		return err
	}
	return syncDir(dir)
}

// dirHandleSync discharges the rename obligation with the
// open-the-directory-and-sync idiom instead of the named helper.
//
// nvlint:durable
func dirHandleSync(dir string, data []byte) error {
	tmp := filepath.Join(dir, "m.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "m")); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}

// syncOnOneBranchOnly fsyncs only when the payload is large; the small-path
// merge leaves the handle written at the rename.
//
// nvlint:durable
func syncOnOneBranchOnly(dir string, data []byte) error {
	tmp := filepath.Join(dir, "seal.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if len(data) > 4096 {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "seal")); err != nil { // want "rename while f is written but not fsynced"
		return err
	}
	return syncDir(dir)
}

// escapeAssumedWritten hands the handle to an opaque helper; the analyzer
// assumes the helper wrote, so the rename without a later fsync is flagged.
//
// nvlint:durable
func escapeAssumedWritten(dir string, fill func(*os.File)) error {
	tmp := filepath.Join(dir, "seal.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fill(f)
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "seal")); err != nil { // want "rename while f is written but not fsynced"
		return err
	}
	return syncDir(dir)
}

// FS is a local copy of the VFS seam shape: the analyzer recognises
// Create/CreateExcl/Open/Rename/SyncDir method calls by the receiver's
// type *name*, so this fixture needs no import of the real seam.
type FS interface {
	Open(name string) (handleFile, error)
	Create(name string) (handleFile, error)
	CreateExcl(name string) (handleFile, error)
	Rename(oldpath, newpath string) error
	SyncDir(dir string) error
}

type handleFile interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// wrapFile is the retryFile adapter shape: a struct literal capturing a
// tracked handle aliases it, so writes through the wrapper dirty the
// handle and Sync through it discharges.
type wrapFile struct {
	f     handleFile
	extra int
}

func (w *wrapFile) Write(p []byte) (int, error) { return w.f.Write(p) }
func (w *wrapFile) Sync() error                 { return w.f.Sync() }
func (w *wrapFile) Close() error                { return w.f.Close() }

// vfsGoodSeal follows the full discipline over the VFS seam: handle from
// fsys.Create, writes through the wrapper adapter, Sync, Close, fsys.Rename,
// fsys.SyncDir.
//
// nvlint:durable
func vfsGoodSeal(fsys FS, dir string, data []byte) error {
	tmp := filepath.Join(dir, "seal.tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	rf := &wrapFile{f: f}
	if _, err := rf.Write(data); err != nil {
		_ = rf.Close()
		return err
	}
	if err := rf.Sync(); err != nil {
		_ = rf.Close()
		return err
	}
	if err := rf.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, "seal")); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// vfsRenameUnsynced is the seeded VFS ordering bug: data written through
// the adapter is published by fsys.Rename without ever being fsynced.
//
// nvlint:durable
func vfsRenameUnsynced(fsys FS, dir string, data []byte) error {
	tmp := filepath.Join(dir, "seal.tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	rf := &wrapFile{f: f}
	if _, err := rf.Write(data); err != nil {
		_ = rf.Close()
		return err
	}
	if err := rf.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, "seal")); err != nil { // want "rename while f is written but not fsynced"
		return err
	}
	return fsys.SyncDir(dir)
}

// vfsRenameNoDirSync publishes over the seam but never fsyncs the parent
// directory: the rename obligation survives to the success return.
//
// nvlint:durable
func vfsRenameNoDirSync(fsys FS, dir string, data []byte) error {
	tmp := filepath.Join(dir, "seal.tmp")
	f, err := fsys.CreateExcl(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, "seal")); err != nil { // want "rename is published without an fsync of the parent directory"
		return err
	}
	return nil
}

// vfsBufferedUnflushed writes through bufio over the adapter over the VFS
// handle; the alias chain is followed and the unflushed rename is flagged.
//
// nvlint:durable
func vfsBufferedUnflushed(fsys FS, dir string, data []byte) error {
	tmp := filepath.Join(dir, "ckpt.tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	rf := &wrapFile{f: f}
	w := bufio.NewWriter(rf)
	if _, err := w.Write(data); err != nil {
		_ = rf.Close()
		return err
	}
	if err := rf.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, "ckpt")); err != nil { // want "rename while f is written but not fsynced"
		return err
	}
	return fsys.SyncDir(dir)
}

// notAnnotated has the same bugs as renameUnsynced but no durable
// directive in its doc comment: the analyzer must stay silent.
func notAnnotated(dir string, data []byte) error {
	tmp := filepath.Join(dir, "seal.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "seal")); err != nil {
		return err
	}
	return nil
}
