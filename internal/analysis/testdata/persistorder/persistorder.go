// Package potest exercises nvlint's persistorder analyzer: nvlint:durable
// functions must write → fsync → rename → fsync parent dir on every path.
package potest

import (
	"bufio"
	"os"
	"path/filepath"
)

// syncDir is the parent-directory fsync helper shape the analyzer
// recognises by name.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}

// goodSeal follows the full discipline: write, fsync, close, rename,
// parent-directory fsync.
//
// nvlint:durable
func goodSeal(dir string, data []byte) error {
	tmp := filepath.Join(dir, "seal.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "seal")); err != nil {
		return err
	}
	return syncDir(dir)
}

// renameUnsynced is the seeded ordering bug: the temp file is renamed into
// place while its data has never been fsynced.
//
// nvlint:durable
func renameUnsynced(dir string, data []byte) error {
	tmp := filepath.Join(dir, "seal.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "seal")); err != nil { // want "os.Rename while f is written but not fsynced"
		return err
	}
	return syncDir(dir)
}

// renameNoDirSync is the second seeded bug: the rename itself is never made
// durable — no parent-directory fsync before the success return.
//
// nvlint:durable
func renameNoDirSync(dir string, data []byte) error {
	tmp := filepath.Join(dir, "seal.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "seal")); err != nil { // want "rename is published without an fsync of the parent directory"
		return err
	}
	return nil
}

// bufferedGood writes through a bufio.Writer: the alias is followed, and
// Flush + Sync restore the discipline.
//
// nvlint:durable
func bufferedGood(dir string, data []byte) error {
	tmp := filepath.Join(dir, "ckpt.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "ckpt")); err != nil {
		return err
	}
	return syncDir(dir)
}

// bufferedUnflushed renames while writes are only in the bufio buffer — the
// alias makes the underlying handle written, and it is never fsynced.
//
// nvlint:durable
func bufferedUnflushed(dir string, data []byte) error {
	tmp := filepath.Join(dir, "ckpt.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "ckpt")); err != nil { // want "os.Rename while f is written but not fsynced"
		return err
	}
	return syncDir(dir)
}

// dirHandleSync discharges the rename obligation with the
// open-the-directory-and-sync idiom instead of the named helper.
//
// nvlint:durable
func dirHandleSync(dir string, data []byte) error {
	tmp := filepath.Join(dir, "m.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "m")); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}

// syncOnOneBranchOnly fsyncs only when the payload is large; the small-path
// merge leaves the handle written at the rename.
//
// nvlint:durable
func syncOnOneBranchOnly(dir string, data []byte) error {
	tmp := filepath.Join(dir, "seal.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if len(data) > 4096 {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "seal")); err != nil { // want "os.Rename while f is written but not fsynced"
		return err
	}
	return syncDir(dir)
}

// escapeAssumedWritten hands the handle to an opaque helper; the analyzer
// assumes the helper wrote, so the rename without a later fsync is flagged.
//
// nvlint:durable
func escapeAssumedWritten(dir string, fill func(*os.File)) error {
	tmp := filepath.Join(dir, "seal.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fill(f)
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "seal")); err != nil { // want "os.Rename while f is written but not fsynced"
		return err
	}
	return syncDir(dir)
}

// notAnnotated has the same bugs as renameUnsynced but no durable
// directive in its doc comment: the analyzer must stay silent.
func notAnnotated(dir string, data []byte) error {
	tmp := filepath.Join(dir, "seal.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "seal")); err != nil {
		return err
	}
	return nil
}
