// Package wallclock exercises nvlint's wallclock analyzer: ambient time
// and entropy sources are forbidden in simulation-visible code.
package wallclock

import (
	crand "crypto/rand"
	"fmt"
	"math/rand"
	"os"
	"time"
)

func readsClock() int64 {
	t := time.Now() // want "is forbidden in simulation-visible code"
	return t.UnixNano()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "is forbidden in simulation-visible code"
}

func pid() int {
	return os.Getpid() // want "ambient entropy breaks replay"
}

func globalRand() int {
	return rand.Intn(10) // want "use sim.NewRNG with an explicit seed"
}

func cryptoRand(buf []byte) {
	_, _ = crand.Read(buf) // want "use sim.NewRNG with an explicit seed"
}

func durationsAreFine() time.Duration {
	return 5 * time.Millisecond
}

func otherOSCallsAreFine() {
	h, _ := os.Hostname()
	fmt.Println(h)
}

func suppressedClock() int64 {
	//nvlint:allow wallclock startup banner only, never feeds simulated state
	return time.Now().Unix()
}
