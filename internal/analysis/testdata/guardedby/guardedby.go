// Package gbtest exercises nvlint's guardedby analyzer: fields annotated
// nvlint:guardedby <mu> may only be touched while <mu> is held.
package gbtest

import "sync"

// counter is the annotated type under test.
type counter struct {
	mu sync.Mutex
	// nvlint:guardedby mu
	n int
	// nvlint:guardedby mu
	names []string

	// free is unguarded; touching it without the lock is fine.
	free int
}

// rwbox exercises RWMutex and read locks.
type rwbox struct {
	mu sync.RWMutex
	// nvlint:guardedby mu
	v uint64
}

// goodAdd locks around the access.
func (c *counter) goodAdd(d int) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

// goodDeferred holds the lock to return: a deferred unlock does not release
// at the defer site.
func (c *counter) goodDeferred(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.names = append(c.names, name)
	return c.n
}

// badBare is the seeded bug: the field is touched with no lock held.
func (c *counter) badBare() int {
	return c.n // want "field n is guarded by c.mu which is not held here"
}

// badAfterUnlock touches the field after releasing.
func (c *counter) badAfterUnlock() int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	n += c.n // want "field n is guarded by c.mu which is not held here"
	return n
}

// badOneBranch locks on only one path; the merge drops the lock.
func (c *counter) badOneBranch(lock bool) {
	if lock {
		c.mu.Lock()
	}
	c.n++ // want "field n is guarded by c.mu which is not held here"
	if lock {
		c.mu.Unlock()
	}
}

// freeAccess touches only the unguarded field: no lock needed.
func (c *counter) freeAccess() int {
	return c.free
}

// lockedHelper documents the caller-holds-the-lock contract: the analyzer
// starts it with c.mu held.
//
// nvlint:locked mu
func (c *counter) lockedHelper() {
	c.n++
	c.names = c.names[:0]
}

// unannotatedHelper has no such contract and is flagged.
func (c *counter) unannotatedHelper() {
	c.n++ // want "field n is guarded by c.mu which is not held here"
}

// goodRead uses the read lock; RLock counts as holding mu.
func (b *rwbox) goodRead() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.v
}

// badRead drops the read lock first.
func (b *rwbox) badRead() uint64 {
	b.mu.RLock()
	b.mu.RUnlock()
	return b.v // want "field v is guarded by b.mu which is not held here"
}

// literalConstruction never trips the check: a composite literal names
// fields by key, not by selector.
func literalConstruction() *counter {
	return &counter{n: 1, names: []string{"seed"}}
}
