// Package epochwrap exercises nvlint's epochwrap analyzer: raw ordering
// and arithmetic on wrap-sensitive epoch types must go through wrap-safe
// helpers.
package epochwrap

// Wire is a 16-bit wrapping epoch as it appears on the simulated wire.
//
// nvlint:wrapsensitive
type Wire uint16

// plain is an ordinary integer type: raw operators on it are fine.
type plain uint16

func rawLess(a, b Wire) bool {
	return a < b // want "use a nvlint:wrapsafe helper"
}

func rawAdd(a Wire) Wire {
	return a + 1 // want "use a nvlint:wrapsafe helper"
}

func rawIncrement(a Wire) Wire {
	a++ // want "use a nvlint:wrapsafe helper"
	return a
}

func rawAddAssign(a Wire) Wire {
	a += 2 // want "use a nvlint:wrapsafe helper"
	return a
}

func equalityIsFine(a, b Wire) bool {
	return a == b
}

func plainTypesAreFine(a, b plain) bool {
	return a < b
}

// less orders two wire values; the raw operator is legal here because the
// test pretends a sense-bit protocol makes it correct.
//
// nvlint:wrapsafe
func less(a, b Wire) bool {
	return a < b
}

// distance is wrap-safe, and its closure inherits the marker.
//
// nvlint:wrapsafe
func distance(a, b Wire) uint16 {
	d := func() Wire { return b - a }
	return uint16(d())
}
