// Package maprange exercises nvlint's maprange analyzer. The harness in
// analysis_test.go loads it under a simulation-visible import path and
// checks the reported diagnostics against the `// want` annotations.
package maprange

import "sort"

func plainRange(m map[uint64]uint64) uint64 {
	var last uint64
	for _, v := range m { // want "map iteration order is randomised"
		last = v
	}
	return last
}

func collectThenSort(m map[uint64]uint64) []uint64 {
	var keys []uint64
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func guardedCollect(m, other map[uint64]uint64) []uint64 {
	var keys []uint64
	for k := range m {
		if _, dup := other[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func collectWithoutSort(m map[uint64]uint64) []uint64 {
	var keys []uint64
	for k := range m { // want "map iteration order is randomised"
		keys = append(keys, k)
	}
	return keys
}

func suppressedSum(m map[uint64]uint64) uint64 {
	var sum uint64
	//nvlint:allow maprange commutative sum, exercised by the analyzer tests
	for _, v := range m {
		sum += v
	}
	return sum
}

func sliceRangeIsFine(s []uint64) uint64 {
	var sum uint64
	for _, v := range s {
		sum += v
	}
	return sum
}
