// Package errcheck exercises nvlint's errcheck analyzer: device and
// recovery paths must not drop error returns.
package errcheck

import (
	"errors"
	"fmt"
)

var errBoom = errors.New("boom")

func mayFail() error { return errBoom }

func readLine() (uint64, error) { return 0, errBoom }

func pureCall() uint64 { return 42 }

func dropsError() {
	mayFail() // want "error return is silently discarded"
}

func goDropsError() {
	go mayFail() // want "error return is silently discarded"
}

func deferDropsError() {
	defer mayFail() // want "error return is silently discarded"
}

func blanksError() uint64 {
	v, _ := readLine() // want "is blanked"
	return v
}

func explicitDiscardIsFine() {
	_ = mayFail()
}

func handledIsFine() error {
	if err := mayFail(); err != nil {
		return err
	}
	v, err := readLine()
	if err != nil {
		return err
	}
	fmt.Println(v)
	return nil
}

func fmtIsExempt() {
	fmt.Println("terminal write errors are not recoverable state")
}

func noErrorNoProblem() {
	pureCall()
}
