package analysis

import (
	"path/filepath"
	"regexp"
	"testing"
)

// wantRe extracts the expectation pattern from a `// want "regex"` comment
// trailing the line a diagnostic is expected on.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// expectation is one parsed // want annotation.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants parses every // want annotation of the package's files.
func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// loadTestdata loads one testdata package under the given import path.
func loadTestdata(t *testing.T, dir, asPath string) *Package {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", dir), asPath)
	if err != nil {
		t.Fatalf("loading testdata/%s: %v", dir, err)
	}
	return pkg
}

// checkAnalyzer runs one analyzer over a testdata package and verifies the
// diagnostics against the // want annotations: every diagnostic must be
// wanted, and every want must be hit.
func checkAnalyzer(t *testing.T, a *Analyzer, dir, asPath string) {
	t.Helper()
	pkg := loadTestdata(t, dir, asPath)
	diags := Run([]*Package{pkg}, []*Analyzer{a})
	wants := collectWants(t, pkg)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestMapRange(t *testing.T) {
	checkAnalyzer(t, MapRange, "maprange", "repro/internal/sim/mrtest")
}

func TestWallClock(t *testing.T) {
	checkAnalyzer(t, WallClock, "wallclock", "repro/internal/sim/wctest")
}

func TestEpochWrap(t *testing.T) {
	checkAnalyzer(t, EpochWrap, "epochwrap", "repro/internal/cst/ewtest")
}

func TestErrCheck(t *testing.T) {
	checkAnalyzer(t, ErrCheck, "errcheck", "repro/internal/recovery/ectest")
}

func TestPersistOrder(t *testing.T) {
	checkAnalyzer(t, PersistOrder, "persistorder", "repro/internal/mem/potest")
}

func TestGuardedBy(t *testing.T) {
	checkAnalyzer(t, GuardedBy, "guardedby", "repro/internal/obs/gbtest")
}

func TestErrLatch(t *testing.T) {
	checkAnalyzer(t, ErrLatch, "errlatch", "repro/internal/recovery/eltest")
}

// TestPersistOrderScopeExcluded loads the persistorder fixtures outside the
// durable-store packages: even annotated functions are not audited there.
func TestPersistOrderScopeExcluded(t *testing.T) {
	pkg := loadTestdata(t, "persistorder", "repro/internal/sim/potest")
	if diags := Run([]*Package{pkg}, []*Analyzer{PersistOrder}); len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics, want 0: %v", len(diags), diags)
	}
}

// TestScopeExcludesOtherPackages loads the maprange fixtures under an
// import path outside the simulation-visible set: the analyzer must not
// fire at all.
func TestScopeExcludesOtherPackages(t *testing.T) {
	pkg := loadTestdata(t, "maprange", "repro/cmd/sometool")
	if diags := Run([]*Package{pkg}, []*Analyzer{MapRange}); len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics, want 0: %v", len(diags), diags)
	}
}

// TestSuppressionRequiresReason checks that a reason-less //nvlint:allow is
// itself reported and does not cancel the finding it precedes.
func TestSuppressionRequiresReason(t *testing.T) {
	pkg := loadTestdata(t, "suppress", "repro/internal/sim/suptest")
	diags := Run([]*Package{pkg}, []*Analyzer{MapRange})
	var gotSuppress, gotMapRange bool
	for _, d := range diags {
		switch d.Check {
		case "suppress":
			gotSuppress = true
		case "maprange":
			gotMapRange = true
		}
	}
	if len(diags) != 2 || !gotSuppress || !gotMapRange {
		t.Fatalf("diagnostics = %v, want one reason-less-suppression finding and one surviving maprange finding", diags)
	}
}

// TestAnalyzerRegistry pins the suite's composition: CI and the self-clean
// test below both assume these seven checks exist.
func TestAnalyzerRegistry(t *testing.T) {
	want := map[string]bool{
		"maprange": true, "wallclock": true, "epochwrap": true, "errcheck": true,
		"persistorder": true, "guardedby": true, "errlatch": true,
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d checks, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc string", a.Name)
		}
	}
}
