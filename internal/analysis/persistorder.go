package analysis

// PersistOrder enforces the durable-path ordering discipline of the
// file-backed plane: data is written, then fsynced, and only then published
// by rename — and a rename is not durable until the parent directory is
// fsynced. PR 6's kill -9 soak checks this dynamically for the schedules it
// happens to execute; this analyzer proves it for every path of every
// function that opts in with `nvlint:durable` in its doc comment, inside
// internal/mem and internal/soak.
//
// The dataflow fact is a per-file-handle state machine
//
//	clean → written → synced
//
// advanced by operations the analyzer recognises (handles are tracked by
// their rendered expression, so fields like p.seg work alongside locals):
//
//   - os.OpenFile / os.Create / os.Open results start a handle at clean, as
//     do Open/Create/CreateExcl/OpenFile method calls on a VFS value (any
//     expression whose static type is named FS or *…FS — the fault.FS seam);
//   - a Write/WriteString/WriteAt/Flush call on a handle, a write through a
//     bufio.Writer wrapping it (bufio.NewWriter aliases are followed, as is
//     a struct literal capturing the handle — the retryFile adapter shape),
//     or the handle escaping into any unrecognised call marks it written;
//   - Sync() moves it to synced; Close() preserves whatever state it had —
//     closing does not sync, so written-then-closed is still unpublishable;
//   - os.Rename — or Rename on a VFS value — demands every tracked handle
//     be clean or synced: a handle
//     still written means data is being published before it is durable.
//     The rename also arms a pending-rename obligation that only a
//     parent-directory fsync discharges: a call to a function named
//     syncDir/SyncDir, or Sync() on a handle that was never written (the
//     open-the-directory-and-sync idiom);
//   - reaching a return with the obligation still armed is a finding —
//     unless the path is an error abort (it passed through the true edge
//     of an `err != nil` test), where durability is not being claimed.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PersistOrder is the durability-ordering analyzer.
var PersistOrder = &Analyzer{
	Name:  "persistorder",
	Doc:   "nvlint:durable functions must write → fsync → rename → fsync parent dir, on every path",
	Match: persistScope,
	Run:   runPersistOrder,
}

// Handle states. Absence from the fact map means the expression is not a
// tracked handle.
const (
	hClean   = iota // opened, nothing unflushed
	hWritten        // data written since the last fsync
	hSynced         // fsynced; contents durable under the current name
)

// poFact is the persistorder dataflow fact. Facts are immutable: every
// transfer that changes anything clones first.
type poFact struct {
	handles map[string]int // rendered handle expr -> hClean/hWritten/hSynced
	aliases map[string]string
	// pendingRename: an os.Rename happened and no parent-dir fsync has yet
	// made it durable. renamePos is the arming call, for the report.
	pendingRename bool
	renamePos     ast.Node
	// aborted: this path took the error edge of a nil test; it is an abort
	// path and durability claims are off.
	aborted bool
}

func (f poFact) clone() poFact {
	g := f
	g.handles = make(map[string]int, len(f.handles))
	for k, v := range f.handles {
		g.handles[k] = v
	}
	g.aliases = make(map[string]string, len(f.aliases))
	for k, v := range f.aliases {
		g.aliases[k] = v
	}
	return g
}

// resolve follows writer aliases (w := bufio.NewWriter(f)) to the handle.
func (f poFact) resolve(key string) string {
	for i := 0; i < 8 && key != ""; i++ { // alias chains are short
		next, ok := f.aliases[key]
		if !ok {
			return key
		}
		key = next
	}
	return key
}

// joinHandleState merges the states a handle has on two converging paths:
// written on either path dominates (the merge must still forbid a rename),
// synced survives only when proven on both.
func joinHandleState(a, b int) int {
	if a == hWritten || b == hWritten {
		return hWritten
	}
	if a == hSynced && b == hSynced {
		return hSynced
	}
	return hClean
}

func poJoin(a, b poFact) poFact {
	out := poFact{
		handles:       make(map[string]int, len(a.handles)+len(b.handles)),
		aliases:       make(map[string]string, len(a.aliases)+len(b.aliases)),
		pendingRename: a.pendingRename || b.pendingRename,
		aborted:       a.aborted && b.aborted,
	}
	for k, v := range a.handles {
		if bv, ok := b.handles[k]; ok {
			out.handles[k] = joinHandleState(v, bv)
		} else {
			out.handles[k] = v
		}
	}
	for k, v := range b.handles {
		if _, ok := a.handles[k]; !ok {
			out.handles[k] = v
		}
	}
	for k, v := range a.aliases {
		out.aliases[k] = v
	}
	for k, v := range b.aliases {
		out.aliases[k] = v
	}
	out.renamePos = a.renamePos
	if out.renamePos == nil {
		out.renamePos = b.renamePos
	}
	return out
}

func poEqual(a, b poFact) bool {
	if a.pendingRename != b.pendingRename || a.aborted != b.aborted ||
		len(a.handles) != len(b.handles) || len(a.aliases) != len(b.aliases) {
		return false
	}
	for k, v := range a.handles {
		if bv, ok := b.handles[k]; !ok || bv != v {
			return false
		}
	}
	for k, v := range a.aliases {
		if bv, ok := b.aliases[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func runPersistOrder(pass *Pass) {
	eachFuncCFG(pass, func(fn ast.Node, g *CFG) {
		fd, ok := fn.(*ast.FuncDecl)
		if !ok || !commentHas(fd.Doc, directiveDurable) {
			return
		}
		po := &persistOrder{pass: pass}
		flow := Flow[poFact]{
			Entry:    poFact{handles: map[string]int{}, aliases: map[string]string{}},
			Join:     poJoin,
			Equal:    poEqual,
			Transfer: po.transfer,
			Edge:     errAbortEdge(pass),
		}
		in := flow.Forward(g)
		// The replay re-applies the same transfer with reporting armed; the
		// diagnostics land exactly where the fixpoint facts say they must.
		po.report = true
		flow.Replay(g, in, func(*Block, ast.Node, poFact) {})
	})
}

// errAbortEdge marks the condition-true edge of an `X != nil` (or the
// false edge of an `X == nil`) test on an error-typed X as an abort path.
// Shared with any fact type carrying the aborted bit via the poFact shape.
func errAbortEdge(pass *Pass) func(from *Block, branch int, f poFact) poFact {
	return func(from *Block, branch int, f poFact) poFact {
		if from.Cond == nil {
			return f
		}
		nonNil, _, ok := errNilTest(pass, from.Cond)
		if !ok {
			return f
		}
		// branch 0 is the condition-true edge.
		errPath := (branch == 0) == nonNil
		if errPath && !f.aborted {
			g := f.clone()
			g.aborted = true
			return g
		}
		return f
	}
}

// errNilTest recognises `X != nil` / `nil != X` (nonNil=true) and
// `X == nil` / `nil == X` (nonNil=false) where X is error-typed, returning
// the non-nil operand.
func errNilTest(pass *Pass, cond ast.Expr) (nonNil bool, x ast.Expr, ok bool) {
	be, isBin := cond.(*ast.BinaryExpr)
	if !isBin || (be.Op != token.NEQ && be.Op != token.EQL) {
		return false, nil, false
	}
	if isNilIdent(be.Y) {
		x = be.X
	} else if isNilIdent(be.X) {
		x = be.Y
	} else {
		return false, nil, false
	}
	tv, found := pass.Info.Types[x]
	if !found || tv.Type == nil || !types.Identical(tv.Type, errorType) {
		return false, nil, false
	}
	return be.Op == token.NEQ, x, true
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

type persistOrder struct {
	pass   *Pass
	report bool
}

// transfer folds one node into the fact. With report set (the replay pass)
// it also emits diagnostics.
func (po *persistOrder) transfer(n ast.Node, f poFact) poFact {
	switch n.(type) {
	case *ast.ReturnStmt, *EndMarker:
		// Calls in the return expression (`return syncDir(dir)`) discharge
		// the obligation before the exit check.
		out := po.applyNode(n, f)
		if po.report && out.pendingRename && !out.aborted {
			pos := n.Pos()
			if out.renamePos != nil {
				pos = out.renamePos.Pos()
			}
			po.pass.Reportf(pos, "rename is published without an fsync of the parent directory on some path to return; sync the directory before claiming durability")
		}
		return out
	}
	return po.applyNode(n, f)
}

// applyNode folds the assignments and calls of one node, in source order.
func (po *persistOrder) applyNode(n ast.Node, f poFact) poFact {
	out := f
	if as, ok := n.(*ast.AssignStmt); ok {
		out = po.applyAssign(as, out)
	}
	walkShallow(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			out = po.applyCall(call, out)
		}
		return true
	})
	return out
}

// applyAssign tracks handle creation (`f, err := os.OpenFile(...)` and the
// VFS form `f, err := p.fsys.Create(...)`), writer aliasing
// (`w := bufio.NewWriter(f)`), and adapter aliasing through a struct
// literal capturing a tracked handle (`rf := &retryFile{f: f, p: p}`).
func (po *persistOrder) applyAssign(as *ast.AssignStmt, f poFact) poFact {
	if len(as.Rhs) != 1 {
		return f
	}
	if lit := compositeLit(as.Rhs[0]); lit != nil && len(as.Lhs) == 1 {
		dst := exprKey(as.Lhs[0])
		if dst == "" || dst == "_" {
			return f
		}
		for _, elt := range lit.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			src := f.resolve(exprKey(v))
			if _, tracked := f.handles[src]; tracked {
				out := f.clone()
				out.aliases[dst] = src
				return out
			}
		}
		return f
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return f
	}
	pkg, name := calleePkgFunc(po.pass, call)
	switch {
	case pkg == "os" && (name == "OpenFile" || name == "Create" || name == "Open"),
		isVFSCall(po.pass, call, "Open", "OpenFile", "Create", "CreateExcl"):
		if len(as.Lhs) >= 1 {
			if key := exprKey(as.Lhs[0]); key != "" && key != "_" {
				out := f.clone()
				out.handles[key] = hClean
				return out
			}
		}
	case pkg == "bufio" && (name == "NewWriter" || name == "NewWriterSize"):
		if len(as.Lhs) == 1 && len(call.Args) >= 1 {
			dst := exprKey(as.Lhs[0])
			src := f.resolve(exprKey(call.Args[0]))
			if dst != "" && src != "" {
				out := f.clone()
				out.aliases[dst] = src
				return out
			}
		}
	}
	return f
}

// compositeLit unwraps `T{...}` and `&T{...}` assignment sources.
func compositeLit(e ast.Expr) *ast.CompositeLit {
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ue.X
	}
	if lit, ok := e.(*ast.CompositeLit); ok {
		return lit
	}
	return nil
}

// applyCall advances the state machine for one call expression.
func (po *persistOrder) applyCall(call *ast.CallExpr, f poFact) poFact {
	pkg, name := calleePkgFunc(po.pass, call)
	if (pkg == "os" && name == "Rename") || isVFSCall(po.pass, call, "Rename") {
		out := f.clone()
		if po.report && !f.aborted {
			var dirty []string
			for h, st := range f.handles {
				if st == hWritten {
					dirty = append(dirty, h)
				}
			}
			sort.Strings(dirty)
			for _, h := range dirty {
				po.pass.Reportf(call.Pos(), "rename while %s is written but not fsynced; sync before publishing (rename makes un-fsynced data reachable)", h)
			}
		}
		out.pendingRename = true
		out.renamePos = call
		return out
	}
	switch pkg {
	case "os":
		if name == "OpenFile" || name == "Create" || name == "Open" {
			return f // handle creation is handled at the assignment
		}
	case "bufio":
		if name == "NewWriter" || name == "NewWriterSize" {
			return f // aliasing, not a write; handled at the assignment
		}
	}
	if isVFSCall(po.pass, call, "Open", "OpenFile", "Create", "CreateExcl") {
		return f // handle creation is handled at the assignment
	}

	// Method calls on tracked handles / writer aliases.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		key := f.resolve(exprKey(sel.X))
		if st, tracked := f.handles[key]; tracked {
			switch sel.Sel.Name {
			case "Sync":
				out := f.clone()
				if st == hClean && f.pendingRename {
					// Sync on a never-written handle is the
					// open-directory-and-sync idiom: the rename is durable.
					out.pendingRename = false
					out.renamePos = nil
				}
				out.handles[key] = hSynced
				return out
			case "Close":
				return f // state survives: close does not sync
			case "Write", "WriteString", "WriteAt", "Flush":
				out := f.clone()
				out.handles[key] = hWritten
				return out
			}
		}
	}

	// A syncDir-style helper discharges the parent-fsync obligation.
	if isSyncDirCall(call) {
		if f.pendingRename {
			out := f.clone()
			out.pendingRename = false
			out.renamePos = nil
			return out
		}
		return f
	}

	// Any unrecognised call that a handle (or an alias of one) escapes
	// into is assumed to write: putWord(w, v) dirties the file behind w.
	out := f
	cloned := false
	for _, arg := range call.Args {
		key := f.resolve(exprKey(arg))
		if _, tracked := out.handles[key]; tracked {
			if !cloned {
				out = f.clone()
				cloned = true
			}
			out.handles[key] = hWritten
		}
	}
	return out
}

// isSyncDirCall recognises a call to a function named syncDir (package
// local or selected), the repository's parent-directory fsync helper shape.
func isSyncDirCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "syncDir"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "SyncDir" || fun.Sel.Name == "syncDir"
	}
	return false
}

// isVFSCall reports whether call is a method call with one of the given
// names on a VFS value: an expression whose static type (pointer stripped)
// is a named type called FS or ending in FS — the fault.FS seam and its
// implementations. Matching on the type name rather than the package path
// keeps the analyzer decoupled from the seam's import path (and lets the
// fixture tests declare their own FS).
func isVFSCall(pass *Pass, call *ast.CallExpr, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	found := false
	for _, n := range names {
		if sel.Sel.Name == n {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "FS" || strings.HasSuffix(name, "FS")
}

// calleePkgFunc resolves a call to (package path, function name) when the
// callee is a package-level function accessed through a package name
// (os.Rename, bufio.NewWriter). Returns "" otherwise.
func calleePkgFunc(pass *Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path(), sel.Sel.Name
	}
	return "", ""
}

// exprKey renders an expression as a stable tracking key: identifiers and
// dotted selector paths only ("f", "p.seg"); anything else is untrackable
// and returns "".
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	}
	return ""
}
