package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock forbids ambient entropy in simulation-visible packages: wall
// clocks, timers, the implicitly seeded global math/rand generator, process
// ids, and crypto randomness. Simulated time comes from sim.Clocks and
// randomness from sim.RNG, both seeded explicitly, so that a (seed, flags)
// pair replays bit-identically across runs, machines, and Go versions.
var WallClock = &Analyzer{
	Name:  "wallclock",
	Doc:   "simulation-visible code must use sim clocks and sim.RNG, not ambient time/entropy",
	Match: simVisible,
	Run:   runWallClock,
}

// forbiddenFuncs maps package path -> function name -> replacement hint.
// An empty inner map forbids every reference to the package.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":       "use the sim.Clocks cycle count",
		"Since":     "use the sim.Clocks cycle count",
		"Until":     "use the sim.Clocks cycle count",
		"Sleep":     "simulated time does not pass in wall-clock sleeps",
		"After":     "use the sim.Clocks cycle count",
		"Tick":      "use the sim.Clocks cycle count",
		"NewTicker": "use the sim.Clocks cycle count",
		"NewTimer":  "use the sim.Clocks cycle count",
		"AfterFunc": "use the sim.Clocks cycle count",
	},
	"os": {
		"Getpid":  "ambient entropy breaks replay",
		"Getppid": "ambient entropy breaks replay",
	},
	"math/rand":    {}, // any use: the global source is implicitly seeded
	"math/rand/v2": {},
	"crypto/rand":  {},
}

func runWallClock(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			funcs, banned := forbiddenFuncs[path]
			if !banned {
				return true
			}
			if len(funcs) == 0 {
				pass.Reportf(sel.Pos(), "%s.%s: %s is forbidden in simulation-visible code; use sim.NewRNG with an explicit seed", id.Name, sel.Sel.Name, path)
				return true
			}
			if hint, bad := funcs[sel.Sel.Name]; bad {
				pass.Reportf(sel.Pos(), "%s.%s is forbidden in simulation-visible code; %s", path, sel.Sel.Name, hint)
			}
			return true
		})
	}
}
