package analysis

// Intra-procedural control-flow graphs over go/ast, stdlib-only. BuildCFG
// decomposes one function body into basic blocks connected by edges for
// branches, loops, switch/select dispatch, break/continue/goto, and the
// defer-then-exit path every return takes. Analyzers never see a nested
// statement inside a block: structured statements are flattened so a block's
// node list is exactly the straight-line work of one path segment, which is
// what makes the dataflow transfer functions in dataflow.go simple folds.
//
// Conventions:
//
//   - Blocks[0] is the entry block; Exit is a synthetic, empty final block.
//   - A block ending in a two-way conditional branch records the condition
//     in Cond, and then Succs[0] is the true edge, Succs[1] the false edge.
//     Multi-way dispatch (switch, select, range) leaves Cond nil.
//   - Every return statement edges to Ret, the synthetic block holding the
//     function's deferred calls (wrapped in DeferRun, in reverse
//     registration order); Ret edges to Exit. Control falling off the end
//     of the body takes the same path through an EndMarker node.
//   - panic and os.Exit terminate their block with no successors, so facts
//     on dead paths never reach exit checks.
//   - Function literals are opaque: their bodies are separate CFGs (see
//     Pass.FuncCFG), never spliced into the enclosing function's graph.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: straight-line nodes plus outgoing edges.
type Block struct {
	Index int
	Nodes []ast.Node
	// Cond is the branch condition when the block ends in a two-way
	// conditional; then Succs[0] is the true edge and Succs[1] the false
	// edge. Nil for unconditional or multi-way successors.
	Cond  ast.Expr
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block // in creation order; Blocks[0] is the entry
	Entry  *Block
	// Ret collects every return path before Exit and holds the deferred
	// calls (as DeferRun nodes, last registered first).
	Ret  *Block
	Exit *Block // synthetic, empty, no successors
}

// DeferRun marks a deferred call executing on the function's return path;
// it appears in Ret, while the registering *ast.DeferStmt stays at its
// source position. Position info delegates to the call.
type DeferRun struct {
	*ast.CallExpr
}

// RangeHead is the per-iteration evaluation of a range statement — the
// ranged operand plus the key/value assignment — without its body, so block
// nodes never nest statements. Position info delegates to the statement.
type RangeHead struct {
	*ast.RangeStmt
}

// EndMarker is the implicit return taken when control falls off the end of
// a function body; analyzers use it for exit checks on void paths.
// Position info delegates to the body.
type EndMarker struct {
	*ast.BlockStmt
}

// Reachable returns the blocks reachable from the entry, in index order.
func (g *CFG) Reachable() []*Block {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	seen[g.Entry.Index] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	var out []*Block
	for _, b := range g.Blocks {
		if seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{labels: make(map[string]*Block)}
	entry := b.newBlock()
	b.ret = b.newBlock()
	b.cur = entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, &EndMarker{body})
		b.edge(b.cur, b.ret)
	}
	exit := b.newBlock()
	for i := len(b.deferred) - 1; i >= 0; i-- {
		b.ret.Nodes = append(b.ret.Nodes, &DeferRun{b.deferred[i]})
	}
	b.edge(b.ret, exit)
	return &CFG{Blocks: b.blocks, Entry: entry, Ret: b.ret, Exit: exit}
}

// loopCtx is one enclosing break/continue target. A switch or select
// contributes a ctx with a nil continue target.
type loopCtx struct {
	label     string
	breakB    *Block
	continueB *Block // nil when the ctx is a switch/select
}

type cfgBuilder struct {
	blocks   []*Block
	cur      *Block // nil after a terminator (return/break/panic/...)
	ret      *Block
	deferred []*ast.CallExpr
	loops    []loopCtx
	labels   map[string]*Block // goto targets, created on demand
	label    string            // pending label for the next loop/switch
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// block returns the current block, starting a fresh unreachable one when a
// terminator already ended the path (dead code still gets parsed into
// blocks; it simply has no incoming edges, so dataflow never visits it).
func (b *cfgBuilder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

// takeLabel consumes the pending label set by a LabeledStmt.
func (b *cfgBuilder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

// findLoop resolves a break/continue target; wantContinue restricts the
// search to loops. An empty label selects the innermost eligible ctx.
func (b *cfgBuilder) findLoop(label string, wantContinue bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := &b.loops[i]
		if wantContinue && lc.continueB == nil {
			continue
		}
		if label == "" || lc.label == label {
			return lc
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && callTerminates(call) {
			b.cur = nil
		}
	case *ast.DeferStmt:
		b.add(s)
		b.deferred = append(b.deferred, s.Call)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.block(), b.ret)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.LabeledStmt:
		lb, ok := b.labels[s.Label.Name]
		if !ok {
			lb = b.newBlock()
			b.labels[s.Label.Name] = lb
		}
		if b.cur != nil {
			b.edge(b.cur, lb)
		}
		b.cur = lb
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case nil, *ast.EmptyStmt:
		// no effect, no node
	default:
		// Assign, IncDec, Decl, Go, Send, ...: plain straight-line work.
		b.add(s)
	}
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		if lc := b.findLoop(label, false); lc != nil {
			b.add(s)
			b.edge(b.block(), lc.breakB)
		}
		b.cur = nil
	case token.CONTINUE:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		if lc := b.findLoop(label, true); lc != nil {
			b.add(s)
			b.edge(b.block(), lc.continueB)
		}
		b.cur = nil
	case token.GOTO:
		lb, ok := b.labels[s.Label.Name]
		if !ok {
			lb = b.newBlock()
			b.labels[s.Label.Name] = lb
		}
		b.add(s)
		b.edge(b.block(), lb)
		b.cur = nil
	case token.FALLTHROUGH:
		// Wired by switchStmt: the clause body's trailing fallthrough edges
		// into the next clause's body block.
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.block()
	head.Nodes = append(head.Nodes, s.Cond)
	head.Cond = s.Cond
	thenB := b.newBlock()
	join := b.newBlock()
	elseTarget := join
	var elseB *Block
	if s.Else != nil {
		elseB = b.newBlock()
		elseTarget = elseB
	}
	b.edge(head, thenB)
	b.edge(head, elseTarget)
	b.cur = thenB
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, join)
	}
	if s.Else != nil {
		b.cur = elseB
		b.stmt(s.Else)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	body := b.newBlock()
	exit := b.newBlock()
	b.cur = head
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		head.Cond = s.Cond
		b.edge(head, body)
		b.edge(head, exit)
	} else {
		b.edge(head, body)
	}
	continueB := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		continueB = post
	}
	b.loops = append(b.loops, loopCtx{label: label, breakB: exit, continueB: continueB})
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, continueB)
	}
	if post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.block(), head)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = exit
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	head.Nodes = append(head.Nodes, &RangeHead{s})
	body := b.newBlock()
	exit := b.newBlock()
	b.edge(head, body)
	b.edge(head, exit)
	b.loops = append(b.loops, loopCtx{label: label, breakB: exit, continueB: head})
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = exit
}

// switchStmt builds expression and type switches. A tagless expression
// switch (`switch { case cond: ... }`) is sugar for an if/else-if chain and
// is built as one: each case expression becomes a conditional block with
// true/false edges, so edge-sensitive analyzers see `case err != nil:`
// exactly like `if err != nil`. Tagged and type switches keep a dispatch
// shape — tag evaluation in the head, one block per clause with the case
// expressions leading it, a head edge per clause plus a default edge to the
// join when no clause is `default:`. Both shapes wire fallthrough edges
// between consecutive clause bodies.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.block()
	join := b.newBlock()
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	bodies := make([]*Block, len(clauses))
	defaultIdx := -1
	for i, cc := range clauses {
		bodies[i] = b.newBlock()
		if cc.List == nil {
			defaultIdx = i
		}
	}
	if tag == nil && assign == nil {
		// Tagless: chain the case tests. Each expression gets its own
		// conditional block — true to the clause body, false on to the next
		// test, ending at the default body (or the join).
		miss := join
		if defaultIdx >= 0 {
			miss = bodies[defaultIdx]
		}
		prev := head // falls into the first test
		var tests []*Block
		var targets []*Block
		for i, cc := range clauses {
			for _, e := range cc.List {
				t := b.newBlock()
				t.Nodes = append(t.Nodes, e)
				t.Cond = e
				tests = append(tests, t)
				targets = append(targets, bodies[i])
			}
		}
		for i, t := range tests {
			if i == 0 {
				b.edge(prev, t)
			}
			b.edge(t, targets[i]) // true edge
			if i+1 < len(tests) {
				b.edge(t, tests[i+1]) // false edge
			} else {
				b.edge(t, miss)
			}
		}
		if len(tests) == 0 { // no case expressions at all
			b.edge(prev, miss)
		}
	} else {
		for i, cc := range clauses {
			for _, e := range cc.List {
				bodies[i].Nodes = append(bodies[i].Nodes, e)
			}
			b.edge(head, bodies[i])
		}
		if defaultIdx < 0 {
			b.edge(head, join)
		}
	}
	b.loops = append(b.loops, loopCtx{label: label, breakB: join})
	for i, cc := range clauses {
		b.cur = bodies[i]
		stmts := cc.Body
		fellThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				stmts = stmts[:n-1]
				fellThrough = true
			}
		}
		b.stmtList(stmts)
		if b.cur != nil {
			if fellThrough && i+1 < len(bodies) {
				b.edge(b.cur, bodies[i+1])
			} else {
				b.edge(b.cur, join)
			}
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.block()
	join := b.newBlock()
	b.loops = append(b.loops, loopCtx{label: label, breakB: join})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		clause := b.newBlock()
		b.edge(head, clause)
		b.cur = clause
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = join
}

// callTerminates reports whether a call statement never returns: the panic
// builtin and direct os.Exit calls. (Purely syntactic on purpose — the CFG
// is built before any type information is consulted.)
func callTerminates(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}
