package analysis

// Forward dataflow over the CFGs of cfg.go: a small worklist fixpoint
// framework. An analyzer describes its lattice as a Flow — entry fact, join,
// equality, a per-node transfer and an optional per-edge transfer — and gets
// back the fact holding at the entry of every reachable block. Facts must be
// treated as immutable: Transfer and Edge return fresh values (copy-on-write
// is fine) and never mutate their argument, because one fact may be the
// stored in-state of several blocks at once.
//
// Termination is the analyzer's contract: Join must be monotone over a
// lattice of finite height (all three shipped analyzers use small maps keyed
// by objects or rendered expressions, joined pointwise).

import "go/ast"

// Flow describes one forward dataflow problem.
type Flow[F any] struct {
	// Entry is the fact in force at function entry.
	Entry F
	// Join merges the facts of two converging paths.
	Join func(a, b F) F
	// Equal reports whether two facts are indistinguishable (fixpoint test).
	Equal func(a, b F) bool
	// Transfer applies one block node to a fact.
	Transfer func(n ast.Node, f F) F
	// Edge, when non-nil, refines the fact flowing along one outgoing edge:
	// branch indexes from.Succs, so with from.Cond != nil branch 0 is the
	// condition-true edge and branch 1 the condition-false edge. Analyzers
	// use it for condition-sensitive facts (`err != nil` proving a variable
	// nil on the false edge).
	Edge func(from *Block, branch int, f F) F
}

// Forward computes the fixpoint and returns the fact at the entry of every
// reachable block. Unreachable blocks have no entry in the result.
func (fl Flow[F]) Forward(g *CFG) map[*Block]F {
	in := map[*Block]F{g.Entry: fl.Entry}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		f := in[b]
		for _, n := range b.Nodes {
			f = fl.Transfer(n, f)
		}
		for i, s := range b.Succs {
			ef := f
			if fl.Edge != nil {
				ef = fl.Edge(b, i, ef)
			}
			cur, ok := in[s]
			if ok {
				joined := fl.Join(cur, ef)
				if fl.Equal(joined, cur) {
					continue
				}
				in[s] = joined
			} else {
				in[s] = ef
			}
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// Replay re-applies Transfer across every reachable block in index order,
// invoking visit with the fact in force immediately before each node. It is
// the reporting pass: Forward finds the fixpoint, Replay walks it once more
// so analyzers can diagnose with exact per-node facts.
func (fl Flow[F]) Replay(g *CFG, in map[*Block]F, visit func(b *Block, n ast.Node, f F)) {
	for _, b := range g.Blocks {
		f, ok := in[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			visit(b, n, f)
			f = fl.Transfer(n, f)
		}
	}
}

// walkShallow visits n's subtree in source order without descending into
// function literals (their bodies are separate functions with their own
// CFGs) and without re-entering nested statements behind the cfg wrapper
// nodes: a RangeHead visits only the range operand and key/value targets.
func walkShallow(n ast.Node, visit func(ast.Node) bool) {
	switch w := n.(type) {
	case *RangeHead:
		if w.Key != nil {
			walkShallow(w.Key, visit)
		}
		if w.Value != nil {
			walkShallow(w.Value, visit)
		}
		walkShallow(w.X, visit)
		return
	case *DeferRun:
		walkShallow(w.CallExpr, visit)
		return
	case *EndMarker:
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		return visit(m)
	})
}
