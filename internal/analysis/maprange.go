package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `for ... range m` over map values in simulation-visible
// packages. Go randomises map iteration order per run, so any such loop
// whose effect is order-dependent silently breaks deterministic replay and
// byte-stable reproducer output.
//
// One shape is recognised as safe without a suppression: a loop whose body
// only appends the key (or values derived from it) to slices that are later
// passed to a sort call in the same function — the canonical
// collect-then-sort idiom. Everything else needs either a rewrite or an
// explicit `//nvlint:allow maprange <reason>` (e.g. commutative reductions
// like sums, min/max selection, or map-to-map merges).
var MapRange = &Analyzer{
	Name:  "maprange",
	Doc:   "map iteration in simulation-visible code must be sorted or explicitly suppressed",
	Match: simVisible,
	Run:   runMapRange,
}

func runMapRange(pass *Pass) {
	for _, file := range pass.Files {
		funcs := collectFuncs(file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			fn := enclosingFunc(funcs, rs.Pos())
			if fn != nil && isSortedKeyCollect(pass, rs, fn) {
				return true
			}
			pass.Reportf(rs.Pos(), "map iteration order is randomised; sort the keys first (or //nvlint:allow maprange <reason> if provably order-independent)")
			return true
		})
	}
}

// isSortedKeyCollect reports whether the range loop only appends to slices
// that are sorted later in the enclosing function. Appends may sit directly
// in the body or under a single level of if/else guarding.
func isSortedKeyCollect(pass *Pass, rs *ast.RangeStmt, fn ast.Node) bool {
	targets := appendTargets(pass, rs.Body.List, true)
	if targets == nil || len(targets) == 0 {
		return false
	}
	body := funcBody(fn)
	if body == nil {
		return false
	}
	for obj := range targets {
		if !sortedAfter(pass, body, rs.End(), obj) {
			return false
		}
	}
	return true
}

// appendTargets returns the objects of slice variables the statements append
// to, or nil if any statement is not an append-assignment (recursing one
// level into if statements when allowGuard is set).
func appendTargets(pass *Pass, stmts []ast.Stmt, allowGuard bool) map[types.Object]bool {
	targets := make(map[types.Object]bool)
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return nil
			}
			lhs, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return nil
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return nil
			}
			fun, ok := call.Fun.(*ast.Ident)
			if !ok || fun.Name != "append" {
				return nil
			}
			if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); !isBuiltin {
				return nil
			}
			obj := pass.Info.Uses[lhs]
			if obj == nil {
				obj = pass.Info.Defs[lhs]
			}
			if obj == nil {
				return nil
			}
			targets[obj] = true
		case *ast.IfStmt:
			if !allowGuard || s.Else != nil || !pureGuardInit(s.Init) {
				return nil
			}
			sub := appendTargets(pass, s.Body.List, false)
			if sub == nil {
				return nil
			}
			for o := range sub {
				targets[o] = true
			}
		default:
			return nil
		}
	}
	return targets
}

// pureGuardInit reports whether an if-guard's init statement is absent or a
// call-free short declaration (`if _, dup := m[k]; !dup { ... }`), which
// cannot affect iteration-order sensitivity.
func pureGuardInit(init ast.Stmt) bool {
	if init == nil {
		return true
	}
	as, ok := init.(*ast.AssignStmt)
	if !ok || as.Tok != token.DEFINE {
		return false
	}
	pure := true
	for _, rhs := range as.Rhs {
		ast.Inspect(rhs, func(n ast.Node) bool {
			if _, isCall := n.(*ast.CallExpr); isCall {
				pure = false
				return false
			}
			return true
		})
	}
	return pure
}

// sortedAfter reports whether obj appears as an argument to a sort call
// after pos within body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fnObj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fnObj.Pkg() == nil {
			return true
		}
		pkgPath := fnObj.Pkg().Path()
		if pkgPath != "sort" && pkgPath != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
