package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EpochWrap flags raw ordering comparisons and arithmetic on values whose
// type is marked `nvlint:wrapsensitive` (16-bit wire epochs and OIDs).
// `a < b` and `a + 1` are wrong on a wrapping space — exactly the bug
// family behind the 65535->0 epoch wrap (paper §IV-D) that PR 1's fuzzing
// caught dynamically in omc.Group.Seal. Comparisons must go through the
// designated wrap-safe helpers (functions marked `nvlint:wrapsafe`, e.g.
// cst.WrapSpace.Less), where the raw operators are allowed because the
// sense-bit protocol makes them correct.
//
// Equality (== and !=) is exempt: it is wrap-oblivious.
var EpochWrap = &Analyzer{
	Name: "epochwrap",
	Doc:  "wrap-sensitive epoch values must be compared via wrap-safe helpers",
	Run:  runEpochWrap,
}

func runEpochWrap(pass *Pass) {
	if len(pass.Shared.WrapSensitive) == 0 {
		return
	}
	sensitive := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			return false
		}
		return pass.Shared.WrapSensitive[named.Obj()]
	}
	for _, file := range pass.Files {
		funcs := collectFuncs(file)
		wrapSafe := func(pos token.Pos) bool {
			for fn := enclosingFunc(funcs, pos); fn != nil; fn = enclosingFunc(funcs, fn.Pos()-1) {
				fd, ok := fn.(*ast.FuncDecl)
				if !ok {
					continue // func literals inherit their enclosing decl's marker
				}
				return commentHas(fd.Doc, directiveWrapSafe)
			}
			return false
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				switch e.Op {
				case token.LSS, token.GTR, token.LEQ, token.GEQ,
					token.ADD, token.SUB:
				default:
					return true
				}
				if !sensitive(e.X) && !sensitive(e.Y) {
					return true
				}
				if wrapSafe(e.Pos()) {
					return true
				}
				pass.Reportf(e.Pos(), "raw %s on wrap-sensitive epoch value; use a nvlint:wrapsafe helper (wire epochs wrap at the group boundary)", e.Op)
			case *ast.IncDecStmt:
				if !sensitive(e.X) || wrapSafe(e.Pos()) {
					return true
				}
				pass.Reportf(e.Pos(), "raw %s on wrap-sensitive epoch value; use a nvlint:wrapsafe helper (wire epochs wrap at the group boundary)", e.Tok)
			case *ast.AssignStmt:
				switch e.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN:
				default:
					return true
				}
				for _, lhs := range e.Lhs {
					if sensitive(lhs) && !wrapSafe(e.Pos()) {
						pass.Reportf(e.Pos(), "raw %s on wrap-sensitive epoch value; use a nvlint:wrapsafe helper (wire epochs wrap at the group boundary)", e.Tok)
						break
					}
				}
			}
			return true
		})
	}
}
