package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked module package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				return p, nil
			}
			return rest, nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadModule parses and type-checks every non-test package under the module
// rooted at root, in dependency order, and returns them sorted by import
// path. Test files are excluded: the determinism contracts nvlint enforces
// bind simulation code, not its tests.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	// Discover package directories.
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type parsed struct {
		path    string
		dir     string
		files   []*ast.File
		imports map[string]bool // module-internal imports
	}
	byPath := make(map[string]*parsed)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		p := &parsed{path: imp, dir: dir, imports: make(map[string]bool)}
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			n := e.Name()
			if !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
				continue
			}
			file, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			p.files = append(p.files, file)
			for _, spec := range file.Imports {
				ip, _ := strconv.Unquote(spec.Path.Value)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					p.imports[ip] = true
				}
			}
		}
		if len(p.files) > 0 {
			byPath[imp] = p
		}
	}

	// Topologically order by module-internal imports.
	var order []*parsed
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *parsed) error
	visit = func(p *parsed) error {
		switch state[p.path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", p.path)
		case 2:
			return nil
		}
		state[p.path] = 1
		deps := make([]string, 0, len(p.imports))
		for d := range p.imports {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		for _, d := range deps {
			if dp, ok := byPath[d]; ok {
				if err := visit(dp); err != nil {
					return err
				}
			}
		}
		state[p.path] = 2
		order = append(order, p)
		return nil
	}
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(byPath[p]); err != nil {
			return nil, err
		}
	}

	// Type-check in dependency order. Module-internal imports resolve to
	// the packages just checked; everything else falls back to the
	// toolchain importer (with a from-source importer as backstop, for
	// environments without compiled stdlib export data).
	checked := make(map[string]*types.Package)
	imp := &moduleImporter{
		internal: checked,
		def:      importer.Default(),
		src:      importer.ForCompiler(fset, "source", nil),
	}
	var out []*Package
	for _, p := range order {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.path, fset, p.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", p.path, err)
		}
		checked[p.path] = tpkg
		out = append(out, &Package{
			Path:  p.path,
			Dir:   p.dir,
			Fset:  fset,
			Files: p.files,
			Types: tpkg,
			Info:  info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks the single package in dir, assigning it
// the given import path. Analyzer tests use it to load testdata packages
// under a path that matches (or deliberately misses) an analyzer's scope.
func LoadDir(dir, asPath string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		n := e.Name()
		if !strings.HasSuffix(n, ".go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, file)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	imp := &moduleImporter{
		internal: map[string]*types.Package{},
		def:      importer.Default(),
		src:      importer.ForCompiler(fset, "source", nil),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(asPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", dir, err)
	}
	return &Package{Path: asPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// moduleImporter resolves module-internal paths from the packages already
// type-checked this run and delegates the rest to the Go toolchain.
type moduleImporter struct {
	internal map[string]*types.Package
	def      types.Importer
	src      types.Importer
	srcCache map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.internal[path]; ok {
		return pkg, nil
	}
	if pkg, err := m.def.Import(path); err == nil {
		return pkg, nil
	}
	if m.srcCache == nil {
		m.srcCache = make(map[string]*types.Package)
	}
	if pkg, ok := m.srcCache[path]; ok {
		return pkg, nil
	}
	pkg, err := m.src.Import(path)
	if err != nil {
		return nil, err
	}
	m.srcCache[path] = pkg
	return pkg, nil
}
