// Package analysis is nvlint's static-analysis engine: a stdlib-only
// (go/ast + go/parser + go/types, no x/tools) framework that loads every
// package of the module and runs a pluggable set of analyzers enforcing the
// simulator's determinism and invariant contracts. The checks exist because
// the whole reproduction rests on deterministic replay: a single map
// iteration in hash order, one wall-clock read, or one raw comparison on a
// wrapping epoch silently breaks the bit-identical reproducers that
// internal/diffcheck emits.
//
// Findings are suppressed site by site with
//
//	//nvlint:allow <check> <reason>
//
// placed on the offending line or the line directly above it. The reason is
// mandatory: a suppression without one is itself reported, so every escape
// hatch in the tree carries its own audit trail.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Path  string // import path of the package under analysis
	Pkg   *types.Package
	Info  *types.Info

	// Shared is cross-package state the driver computes before any
	// analyzer runs (e.g. the set of wrap-sensitive epoch types, which may
	// be declared in one package and used from another).
	Shared *Shared

	check string
	diags *[]Diagnostic
}

// Reportf records a finding at pos under the running analyzer's check name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one pluggable check.
type Analyzer struct {
	Name string
	Doc  string
	// Match reports whether the analyzer applies to a package import path.
	// A nil Match applies everywhere.
	Match func(path string) bool
	Run   func(*Pass)
}

// Shared is the driver's cross-package pre-scan: state that an analyzer
// needs about declarations outside the package it is currently visiting.
type Shared struct {
	// WrapSensitive holds the type names marked `nvlint:wrapsensitive`
	// (values of these types wrap around and must not be compared or
	// advanced with raw operators).
	WrapSensitive map[*types.TypeName]bool
}

// directiveWrapSensitive and directiveWrapSafe are the comment markers the
// epochwrap analyzer honours (see epochwrap.go).
const (
	directiveWrapSensitive = "nvlint:wrapsensitive"
	directiveWrapSafe      = "nvlint:wrapsafe"
)

// newShared pre-scans all loaded packages for cross-package directives.
func newShared(pkgs []*Package) *Shared {
	sh := &Shared{WrapSensitive: make(map[*types.TypeName]bool)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				gd, ok := n.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					return true
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !commentHas(gd.Doc, directiveWrapSensitive) &&
						!commentHas(ts.Doc, directiveWrapSensitive) &&
						!commentHas(ts.Comment, directiveWrapSensitive) {
						continue
					}
					if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						sh.WrapSensitive[tn] = true
					}
				}
				return true
			})
		}
	}
	return sh
}

func commentHas(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// allowRe matches a suppression comment: //nvlint:allow <check> <reason>.
var allowRe = regexp.MustCompile(`^//\s*nvlint:allow\s+([a-z-]+)\s*(.*)$`)

// suppression is one parsed //nvlint:allow comment.
type suppression struct {
	pos    token.Position
	check  string
	reason string
}

// collectSuppressions parses every //nvlint:allow comment of a file.
func collectSuppressions(fset *token.FileSet, file *ast.File) []suppression {
	var out []suppression
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			out = append(out, suppression{
				pos:    fset.Position(c.Pos()),
				check:  m[1],
				reason: strings.TrimSpace(m[2]),
			})
		}
	}
	return out
}

// Run executes the analyzers over the loaded packages, applies
// suppressions, and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	shared := newShared(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Fset:   pkg.Fset,
				Files:  pkg.Files,
				Path:   pkg.Path,
				Pkg:    pkg.Types,
				Info:   pkg.Info,
				Shared: shared,
				check:  a.Name,
				diags:  &diags,
			}
			a.Run(pass)
		}
	}

	// Gather suppressions across all files, then filter. A suppression
	// cancels diagnostics of its check on its own line and the line below
	// (so it can trail the offending statement or sit on its own line
	// above it). Suppressions without a reason are themselves findings.
	type key struct {
		file  string
		line  int
		check string
	}
	allowed := make(map[key]bool)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, s := range collectSuppressions(pkg.Fset, file) {
				if s.reason == "" {
					diags = append(diags, Diagnostic{
						Pos:     s.pos,
						Check:   "suppress",
						Message: fmt.Sprintf("//nvlint:allow %s needs a reason", s.check),
					})
					continue
				}
				allowed[key{s.pos.Filename, s.pos.Line, s.check}] = true
				allowed[key{s.pos.Filename, s.pos.Line + 1, s.check}] = true
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if allowed[key{d.Pos.Filename, d.Pos.Line, d.Check}] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return kept
}

// simVisible is the set of packages whose behaviour is simulation-visible:
// anything here feeding stats, traces, or replay must be deterministic.
// internal/parallel and internal/stats are in scope because the sweep
// engine's merge paths carry the byte-identical-across-jobs guarantee: a
// map range or wall-clock read there would leak scheduling order into
// results that must depend only on cell indices. internal/obs is in scope
// for the same reason: its event streams and rollups ship the
// byte-identical-across-jobs promise, so an order or clock leak there is a
// determinism bug even though the simulation itself never reads the bus.
var simVisible = prefixMatcher(
	"repro/internal/sim",
	"repro/internal/fault",
	"repro/internal/cst",
	"repro/internal/omc",
	"repro/internal/coherence",
	"repro/internal/cache",
	"repro/internal/mem",
	"repro/internal/core",
	"repro/internal/recovery",
	"repro/internal/baseline",
	"repro/internal/diffcheck",
	"repro/internal/parallel",
	"repro/internal/stats",
	"repro/internal/obs",
)

// errcheckScope covers the NVM/DRAM device models and the recovery paths,
// where a silently dropped error means a corrupted or unverified image.
var errcheckScope = prefixMatcher(
	"repro/internal/mem",
	"repro/internal/recovery",
	"repro/internal/omc",
	"repro/internal/soak",
	"repro/cmd/nvrecover",
	"repro/cmd/nvcheck",
	"repro/cmd/nvsim",
)

// prefixMatcher matches an import path equal to, or nested under, any of
// the given paths.
func prefixMatcher(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, base := range paths {
			if p == base || strings.HasPrefix(p, base+"/") {
				return true
			}
		}
		return false
	}
}

// Analyzers returns the full nvlint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapRange, WallClock, EpochWrap, ErrCheck}
}
