// Package analysis is nvlint's static-analysis engine: a stdlib-only
// (go/ast + go/parser + go/types, no x/tools) framework that loads every
// package of the module and runs a pluggable set of analyzers enforcing the
// simulator's determinism and invariant contracts. The checks exist because
// the whole reproduction rests on deterministic replay: a single map
// iteration in hash order, one wall-clock read, or one raw comparison on a
// wrapping epoch silently breaks the bit-identical reproducers that
// internal/diffcheck emits.
//
// Findings are suppressed site by site with
//
//	//nvlint:allow <check> <reason>
//
// placed on the offending line or the line directly above it. The reason is
// mandatory: a suppression without one is itself reported, so every escape
// hatch in the tree carries its own audit trail.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one analyzer finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Path  string // import path of the package under analysis
	Pkg   *types.Package
	Info  *types.Info

	// Shared is cross-package state the driver computes before any
	// analyzer runs (e.g. the set of wrap-sensitive epoch types, which may
	// be declared in one package and used from another).
	Shared *Shared

	check string
	diags *[]Diagnostic
}

// Reportf records a finding at pos under the running analyzer's check name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one pluggable check.
type Analyzer struct {
	Name string
	Doc  string
	// Match reports whether the analyzer applies to a package import path.
	// A nil Match applies everywhere.
	Match func(path string) bool
	Run   func(*Pass)
}

// Shared is the driver's cross-package pre-scan: state that an analyzer
// needs about declarations outside the package it is currently visiting,
// plus caches that outlive a single (package, analyzer) pass.
type Shared struct {
	// WrapSensitive holds the type names marked `nvlint:wrapsensitive`
	// (values of these types wrap around and must not be compared or
	// advanced with raw operators).
	WrapSensitive map[*types.TypeName]bool

	// GuardedFields maps a struct field marked `nvlint:guardedby <mu>` to
	// the name of the sibling mutex field that must be held around every
	// access (see guardedby.go).
	GuardedFields map[*types.Var]string

	// cfgs caches one control-flow graph per function body across all
	// analyzers and packages of the run.
	cfgs map[*ast.BlockStmt]*CFG
}

// The comment markers (directives) the analyzers honour. Each is written in
// a doc or trailing comment of the declaration it annotates:
//
//	nvlint:wrapsensitive        on a type: values wrap, raw compares banned
//	nvlint:wrapsafe             on a func: raw operators allowed inside
//	nvlint:durable              on a func: persistorder audits its body
//	nvlint:guardedby <mu>       on a field: accesses must hold sibling <mu>
//	nvlint:locked <mu>          on a method: caller already holds recv.<mu>
const (
	directiveWrapSensitive = "nvlint:wrapsensitive"
	directiveWrapSafe      = "nvlint:wrapsafe"
	directiveDurable       = "nvlint:durable"
	directiveGuardedBy     = "nvlint:guardedby"
	directiveLocked        = "nvlint:locked"
)

// guardedByRe extracts the mutex field name from a guardedby directive.
var guardedByRe = regexp.MustCompile(directiveGuardedBy + `\s+([A-Za-z_]\w*)`)

// lockedRe extracts the mutex field name from a locked directive.
var lockedRe = regexp.MustCompile(directiveLocked + `\s+([A-Za-z_]\w*)`)

// commentDirectiveArg returns the first capture of re across the comment
// groups, or "".
func commentDirectiveArg(re *regexp.Regexp, groups ...*ast.CommentGroup) string {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := re.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

// newShared pre-scans all loaded packages for cross-package directives.
func newShared(pkgs []*Package) *Shared {
	sh := &Shared{
		WrapSensitive: make(map[*types.TypeName]bool),
		GuardedFields: make(map[*types.Var]string),
		cfgs:          make(map[*ast.BlockStmt]*CFG),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				gd, ok := n.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					return true
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if commentHas(gd.Doc, directiveWrapSensitive) ||
						commentHas(ts.Doc, directiveWrapSensitive) ||
						commentHas(ts.Comment, directiveWrapSensitive) {
						if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
							sh.WrapSensitive[tn] = true
						}
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, fld := range st.Fields.List {
						guard := commentDirectiveArg(guardedByRe, fld.Doc, fld.Comment)
						if guard == "" {
							continue
						}
						for _, name := range fld.Names {
							if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
								sh.GuardedFields[v] = guard
							}
						}
					}
				}
				return true
			})
		}
	}
	return sh
}

func commentHas(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// allowRe matches a suppression comment: //nvlint:allow <check> <reason>.
var allowRe = regexp.MustCompile(`^//\s*nvlint:allow\s+([a-z-]+)\s*(.*)$`)

// suppression is one parsed //nvlint:allow comment.
type suppression struct {
	pos    token.Position
	check  string
	reason string
}

// collectSuppressions parses every //nvlint:allow comment of a file.
func collectSuppressions(fset *token.FileSet, file *ast.File) []suppression {
	var out []suppression
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			out = append(out, suppression{
				pos:    fset.Position(c.Pos()),
				check:  m[1],
				reason: strings.TrimSpace(m[2]),
			})
		}
	}
	return out
}

// Timing is the accumulated wall time one analyzer spent across every
// package of a run.
type Timing struct {
	Name     string
	Duration time.Duration
}

// Run executes the analyzers over the loaded packages, applies
// suppressions, and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(pkgs, analyzers)
	return diags
}

// RunTimed is Run plus a per-analyzer wall-time breakdown, in the order the
// analyzers were given (cmd/nvlint -timing).
func RunTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	shared := newShared(pkgs)
	var diags []Diagnostic
	elapsed := make([]time.Duration, len(analyzers))
	for _, pkg := range pkgs {
		for i, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Fset:   pkg.Fset,
				Files:  pkg.Files,
				Path:   pkg.Path,
				Pkg:    pkg.Types,
				Info:   pkg.Info,
				Shared: shared,
				check:  a.Name,
				diags:  &diags,
			}
			start := time.Now()
			a.Run(pass)
			elapsed[i] += time.Since(start)
		}
	}

	// Gather suppressions across all files, then filter. A suppression
	// cancels diagnostics of its check on its own line and the line below
	// (so it can trail the offending statement or sit on its own line
	// above it). Suppressions without a reason are themselves findings.
	type key struct {
		file  string
		line  int
		check string
	}
	allowed := make(map[key]bool)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, s := range collectSuppressions(pkg.Fset, file) {
				if s.reason == "" {
					diags = append(diags, Diagnostic{
						Pos:     s.pos,
						Check:   "suppress",
						Message: fmt.Sprintf("//nvlint:allow %s needs a reason", s.check),
					})
					continue
				}
				allowed[key{s.pos.Filename, s.pos.Line, s.check}] = true
				allowed[key{s.pos.Filename, s.pos.Line + 1, s.check}] = true
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if allowed[key{d.Pos.Filename, d.Pos.Line, d.Check}] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	// Flow-sensitive analyzers can report the same fact once per CFG path
	// that reaches it; identical diagnostics collapse to one.
	uniq := kept[:0]
	for i, d := range kept {
		if i > 0 {
			p := kept[i-1]
			if p.Pos == d.Pos && p.Check == d.Check && p.Message == d.Message {
				continue
			}
		}
		uniq = append(uniq, d)
	}
	kept = uniq
	timings := make([]Timing, len(analyzers))
	for i, a := range analyzers {
		timings[i] = Timing{Name: a.Name, Duration: elapsed[i]}
	}
	return kept, timings
}

// CountSuppressions counts every //nvlint:allow comment across the loaded
// packages — the number the CI suppression budget gates on.
func CountSuppressions(pkgs []*Package) int {
	n := 0
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			n += len(collectSuppressions(pkg.Fset, file))
		}
	}
	return n
}

// simVisible is the set of packages whose behaviour is simulation-visible:
// anything here feeding stats, traces, or replay must be deterministic.
// internal/parallel and internal/stats are in scope because the sweep
// engine's merge paths carry the byte-identical-across-jobs guarantee: a
// map range or wall-clock read there would leak scheduling order into
// results that must depend only on cell indices. internal/obs is in scope
// for the same reason: its event streams and rollups ship the
// byte-identical-across-jobs promise, so an order or clock leak there is a
// determinism bug even though the simulation itself never reads the bus.
// internal/trace, internal/workload and internal/experiments joined with
// the big-machine scale sweep: the driver loop, the workload generators
// (including the zipfian scale kernels) and the figure/sweep reductions
// all feed the byte-identical figure outputs directly.
// internal/tracefile is the record/replay codec: a recorded trace must
// replay byte-identically, so its encode/decode paths are as
// simulation-visible as the driver that feeds them, and a dropped
// file-plane error there is a silently damaged trace (errcheck scope).
var simVisible = prefixMatcher(
	"repro/internal/sim",
	"repro/internal/trace",
	"repro/internal/tracefile",
	"repro/internal/workload",
	"repro/internal/experiments",
	"repro/internal/fault",
	"repro/internal/cst",
	"repro/internal/omc",
	"repro/internal/coherence",
	"repro/internal/cache",
	"repro/internal/mem",
	"repro/internal/core",
	"repro/internal/recovery",
	"repro/internal/baseline",
	"repro/internal/diffcheck",
	"repro/internal/parallel",
	"repro/internal/stats",
	"repro/internal/obs",
)

// errcheckScope covers the NVM/DRAM device models and the recovery paths,
// where a silently dropped error means a corrupted or unverified image.
var errcheckScope = prefixMatcher(
	"repro/internal/mem",
	"repro/internal/recovery",
	"repro/internal/tracefile",
	"repro/internal/omc",
	"repro/internal/soak",
	"repro/cmd/nvrecover",
	"repro/cmd/nvcheck",
	"repro/cmd/nvsim",
)

// persistScope covers the packages that own the on-disk manifest
// discipline: the file-backed plane and the crash-soak writer. persistorder
// only audits functions there that carry the `nvlint:durable` marker.
var persistScope = prefixMatcher(
	"repro/internal/mem",
	"repro/internal/soak",
)

// prefixMatcher matches an import path equal to, or nested under, any of
// the given paths.
func prefixMatcher(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, base := range paths {
			if p == base || strings.HasPrefix(p, base+"/") {
				return true
			}
		}
		return false
	}
}

// Analyzers returns the full nvlint suite: the four syntactic-era checks
// plus the three flow-sensitive ones built on the CFG/dataflow engine.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapRange, WallClock, EpochWrap, ErrCheck, PersistOrder, GuardedBy, ErrLatch}
}
