package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFor parses a function body and builds its CFG.
func buildFor(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body)
}

// succIndexes renders a block's successor list as indexes.
func succIndexes(b *Block) []int {
	out := make([]int, len(b.Succs))
	for i, s := range b.Succs {
		out[i] = s.Index
	}
	return out
}

// reachableSet returns the reachable block indexes.
func reachableSet(g *CFG) map[int]bool {
	out := make(map[int]bool)
	for _, b := range g.Reachable() {
		out[b.Index] = true
	}
	return out
}

func TestCFGStraightLine(t *testing.T) {
	g := buildFor(t, "x := 1\n_ = x")
	r := g.Reachable()
	if len(r) < 3 { // entry, ret, exit at minimum
		t.Fatalf("reachable blocks = %d, want >= 3", len(r))
	}
	if !reachableSet(g)[g.Exit.Index] {
		t.Fatalf("exit not reachable in a straight-line function")
	}
	// The entry must end with the fall-off-the-end marker.
	last := g.Entry.Nodes[len(g.Entry.Nodes)-1]
	if _, ok := last.(*EndMarker); !ok {
		t.Fatalf("last entry node = %T, want *EndMarker", last)
	}
}

func TestCFGBranch(t *testing.T) {
	g := buildFor(t, "x := 1\nif x > 0 {\n x = 2\n} else {\n x = 3\n}\n_ = x")
	// The entry block must be conditional with exactly two successors:
	// true edge first, false edge second.
	if g.Entry.Cond == nil {
		t.Fatalf("entry block has no condition")
	}
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("conditional block has %d successors, want 2: %v", n, succIndexes(g.Entry))
	}
	if g.Entry.Succs[0] == g.Entry.Succs[1] {
		t.Fatalf("true and false edges point at the same block")
	}
	if !reachableSet(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable")
	}
}

func TestCFGBranchWithoutElse(t *testing.T) {
	g := buildFor(t, "x := 1\nif x > 0 {\n x = 2\n}\n_ = x")
	if g.Entry.Cond == nil || len(g.Entry.Succs) != 2 {
		t.Fatalf("if-without-else: entry cond=%v succs=%v", g.Entry.Cond, succIndexes(g.Entry))
	}
	// The false edge must bypass the then-block straight to the join.
	thenB, joinB := g.Entry.Succs[0], g.Entry.Succs[1]
	if len(thenB.Succs) != 1 || thenB.Succs[0] != joinB {
		t.Fatalf("then block does not fall through to the join: %v", succIndexes(thenB))
	}
}

func TestCFGLoop(t *testing.T) {
	g := buildFor(t, "s := 0\nfor i := 0; i < 10; i++ {\n s += i\n}\n_ = s")
	// Some reachable block must have a back edge (successor with an index
	// not greater than its own).
	hasBack := false
	for _, b := range g.Reachable() {
		for _, s := range b.Succs {
			if s.Index <= b.Index {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatalf("for loop produced no back edge")
	}
	if !reachableSet(g)[g.Exit.Index] {
		t.Fatalf("loop exit unreachable")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	g := buildFor(t, "s := 0\nfor _, v := range []int{1, 2} {\n s += v\n}\n_ = s")
	// The range head is a two-way branch (iterate / exhausted) holding a
	// RangeHead wrapper, with Cond nil (there is no boolean condition).
	var head *Block
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			if _, ok := n.(*RangeHead); ok {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatalf("no block carries the RangeHead wrapper")
	}
	if len(head.Succs) != 2 || head.Cond != nil {
		t.Fatalf("range head: cond=%v succs=%v, want nil cond and 2 successors", head.Cond, succIndexes(head))
	}
}

func TestCFGDeferOrder(t *testing.T) {
	g := buildFor(t, "defer println(1)\ndefer println(2)\nprintln(3)")
	// Deferred calls run in reverse registration order in the ret block.
	var runs []*DeferRun
	for _, n := range g.Ret.Nodes {
		if d, ok := n.(*DeferRun); ok {
			runs = append(runs, d)
		}
	}
	if len(runs) != 2 {
		t.Fatalf("ret block holds %d DeferRun nodes, want 2", len(runs))
	}
	lit1 := runs[0].Args[0].(*ast.BasicLit).Value
	lit2 := runs[1].Args[0].(*ast.BasicLit).Value
	if lit1 != "2" || lit2 != "1" {
		t.Fatalf("defer run order = %s, %s; want 2, 1 (reverse registration)", lit1, lit2)
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	g := buildFor(t, "x := 1\nreturn\n_ = x")
	// The statement after the return parses into a block with no in-edges.
	r := reachableSet(g)
	found := false
	for _, b := range g.Blocks {
		if r[b.Index] {
			continue
		}
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.AssignStmt); ok {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("dead assignment after return is not in an unreachable block")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	g := buildFor(t, "x := 1\nif x > 0 {\n panic(\"no\")\n}\n_ = x")
	// The panic block must have no successors: no edge claims the code
	// after it executes.
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok && callTerminates(call) {
				if len(b.Succs) != 0 {
					t.Fatalf("panic block has successors %v, want none", succIndexes(b))
				}
			}
		}
	}
}

func TestCFGTaglessSwitchChain(t *testing.T) {
	g := buildFor(t, "x := 1\nswitch {\ncase x > 0:\n x = 2\ncase x < 0:\n x = 3\ndefault:\n x = 4\n}\n_ = x")
	// Every case test of a tagless switch is a two-way conditional.
	tests := 0
	for _, b := range g.Reachable() {
		if b.Cond == nil {
			continue
		}
		if be, ok := b.Cond.(*ast.BinaryExpr); ok && (be.Op == token.GTR || be.Op == token.LSS) {
			tests++
			if len(b.Succs) != 2 {
				t.Fatalf("case test has %d successors, want 2", len(b.Succs))
			}
		}
	}
	if tests != 2 {
		t.Fatalf("found %d conditional case tests, want 2", tests)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildFor(t, "x := 1\nswitch x {\ncase 1:\n x = 2\n fallthrough\ncase 2:\n x = 3\n}\n_ = x")
	// The first clause body must have an edge into the second clause body:
	// find the block assigning 2 and check a successor assigns 3.
	assigns := func(b *Block, lit string) bool {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			if bl, ok := as.Rhs[0].(*ast.BasicLit); ok && bl.Value == lit {
				return true
			}
		}
		return false
	}
	for _, b := range g.Reachable() {
		if !assigns(b, "2") {
			continue
		}
		for _, s := range b.Succs {
			if assigns(s, "3") {
				return
			}
		}
		t.Fatalf("fallthrough edge missing: successors of the first clause are %v", succIndexes(b))
	}
	t.Fatalf("first clause body not found")
}

func TestCFGBreakContinue(t *testing.T) {
	g := buildFor(t, "for i := 0; i < 10; i++ {\n if i == 3 {\n  continue\n }\n if i == 7 {\n  break\n }\n println(i)\n}\nprintln(\"done\")")
	if !reachableSet(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable through break")
	}
	// continue must produce a second back edge (to the post block).
	backs := 0
	for _, b := range g.Reachable() {
		for _, s := range b.Succs {
			if s.Index <= b.Index {
				backs++
			}
		}
	}
	if backs < 2 {
		t.Fatalf("found %d back edges, want >= 2 (loop latch and continue)", backs)
	}
}

func TestCFGLabeledGoto(t *testing.T) {
	g := buildFor(t, "i := 0\nagain:\n i++\n if i < 3 {\n  goto again\n }\n_ = i")
	hasBack := false
	for _, b := range g.Reachable() {
		for _, s := range b.Succs {
			if s.Index <= b.Index {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatalf("goto loop produced no back edge")
	}
	if !reachableSet(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable")
	}
}

// TestForwardFixpointLoop verifies the dataflow engine reaches a fixpoint on
// a loop: a monotone counting lattice capped at a ceiling must converge and
// report the in-fact of the loop body as the cap, not diverge.
func TestForwardFixpointLoop(t *testing.T) {
	g := buildFor(t, "s := 0\nfor i := 0; i < 10; i++ {\n s += i\n}\n_ = s")
	const cap = 3
	fl := Flow[int]{
		Entry: 0,
		Join: func(a, b int) int {
			if a > b {
				return a
			}
			return b
		},
		Equal: func(a, b int) bool { return a == b },
		Transfer: func(n ast.Node, f int) int {
			if _, ok := n.(*ast.AssignStmt); ok && f < cap {
				return f + 1
			}
			return f
		},
	}
	in := fl.Forward(g)
	if len(in) == 0 {
		t.Fatalf("no in-facts computed")
	}
	exitFact, ok := in[g.Exit]
	if !ok {
		t.Fatalf("exit has no in-fact")
	}
	if exitFact != cap {
		t.Fatalf("exit in-fact = %d, want the cap %d (loop must iterate to fixpoint)", exitFact, cap)
	}
}

// TestForwardJoinMeets verifies facts from both arms of a branch join.
func TestForwardJoinMeets(t *testing.T) {
	g := buildFor(t, "x := 1\nif x > 0 {\n x = 2\n} else {\n x = 3\n}\n_ = x")
	// Transfer records the set of literal values assigned; join unions.
	fl := Flow[map[string]bool]{
		Entry: map[string]bool{},
		Join: func(a, b map[string]bool) map[string]bool {
			out := map[string]bool{}
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(n ast.Node, f map[string]bool) map[string]bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return f
			}
			bl, ok := as.Rhs[0].(*ast.BasicLit)
			if !ok {
				return f
			}
			out := map[string]bool{}
			for k := range f {
				out[k] = true
			}
			out[bl.Value] = true
			return out
		},
	}
	in := fl.Forward(g)
	exitFact := in[g.Exit]
	for _, want := range []string{"1", "2", "3"} {
		if !exitFact[want] {
			t.Fatalf("exit fact %v is missing %q: branch facts not joined", exitFact, want)
		}
	}
}

// TestEdgeTransfer verifies branch-sensitive edge facts: the true and false
// edges of a conditional receive different facts.
func TestEdgeTransfer(t *testing.T) {
	g := buildFor(t, "x := 1\nif x > 0 {\n x = 2\n} else {\n x = 3\n}\n_ = x")
	fl := Flow[string]{
		Entry: "",
		Join: func(a, b string) string {
			if a > b {
				return a
			}
			return b
		},
		Equal:    func(a, b string) bool { return a == b },
		Transfer: func(n ast.Node, f string) string { return f },
		Edge: func(from *Block, branch int, f string) string {
			if from.Cond == nil {
				return f
			}
			if branch == 0 {
				return "true-edge"
			}
			return "false-edge"
		},
	}
	in := fl.Forward(g)
	thenB, elseB := g.Entry.Succs[0], g.Entry.Succs[1]
	if in[thenB] != "true-edge" || in[elseB] != "false-edge" {
		t.Fatalf("edge facts: then=%q else=%q, want true-edge/false-edge", in[thenB], in[elseB])
	}
}

// TestWalkShallowSkipsFuncLit verifies nested function literals are opaque
// to the shallow walk (they have their own CFGs).
func TestWalkShallowSkipsFuncLit(t *testing.T) {
	src := "package p\nfunc f() {\n g := func() { inner() }\n _ = g\n}\nfunc inner() {}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "w.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	sawInner := false
	for _, stmt := range fd.Body.List {
		walkShallow(stmt, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "inner" {
				sawInner = true
			}
			return true
		})
	}
	if sawInner {
		t.Fatalf("walkShallow descended into a FuncLit body")
	}
}
