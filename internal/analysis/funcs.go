package analysis

// Function enumeration and CFG caching shared by every analyzer. The
// flow-sensitive checks all follow the same shape: enumerate the functions
// of a file (declarations and literals — a literal's body is its own
// function, never part of the enclosing graph), fetch the cached CFG, run a
// Flow over it.

import (
	"go/ast"
	"go/token"
)

// collectFuncs gathers every function node in the file, in source order.
func collectFuncs(file *ast.File) []ast.Node {
	var out []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			out = append(out, n)
		}
		return true
	})
	return out
}

// enclosingFunc returns the innermost function containing pos.
func enclosingFunc(funcs []ast.Node, pos token.Pos) ast.Node {
	var best ast.Node
	for _, fn := range funcs {
		if fn.Pos() <= pos && pos < fn.End() {
			if best == nil || fn.Pos() > best.Pos() {
				best = fn
			}
		}
	}
	return best
}

// funcBody returns the body of a function declaration or literal (nil for
// bodyless declarations).
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}

// FuncCFG returns the control-flow graph of a function body, built on first
// use and cached across analyzers and packages for the rest of the run.
func (p *Pass) FuncCFG(body *ast.BlockStmt) *CFG {
	if g, ok := p.Shared.cfgs[body]; ok {
		return g
	}
	g := BuildCFG(body)
	p.Shared.cfgs[body] = g
	return g
}

// eachFuncCFG invokes f for every function with a body in the pass's files,
// handing it the (cached) CFG. fn is the declaration or literal node, so
// analyzers can inspect receivers and doc comments.
func eachFuncCFG(pass *Pass, f func(fn ast.Node, g *CFG)) {
	for _, file := range pass.Files {
		for _, fn := range collectFuncs(file) {
			body := funcBody(fn)
			if body == nil {
				continue
			}
			f(fn, pass.FuncCFG(body))
		}
	}
}
