package analysis

// GuardedBy is the lock-discipline analyzer: a struct field annotated
//
//	// nvlint:guardedby mu
//
// (where mu is a sibling sync.Mutex/RWMutex field) may only be accessed
// while that mutex is held. The analyzer runs a forward lock-set dataflow
// over each function's CFG: x.mu.Lock() adds the rendered key "x.mu" to the
// set, x.mu.Unlock() removes it, and at a merge point only locks held on
// every incoming path survive. Every selector access to a guarded field
// then demands its owner's mutex in the set.
//
// Two escape hatches keep the discipline writable:
//
//   - `defer x.mu.Unlock()` does not release at the defer site — the lock
//     is held until return, which is exactly the idiom's meaning;
//   - a method whose doc comment carries `nvlint:locked mu` starts with
//     recv.mu already held: it documents (and the analyzer then enforces at
//     the *callers'* annotated bodies) a caller-holds-the-lock contract for
//     internal helpers.
//
// Composite literals never trip the check (a literal names fields by key,
// not by selector), so constructors of fresh, unshared values stay clean.
// Accesses through anything but a renderable base expression (call results,
// index expressions) cannot be matched to a lock and are reported, so the
// discipline also discourages unanalyzable aliasing of guarded state.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// GuardedBy is the lock-discipline analyzer.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields marked nvlint:guardedby <mu> must only be touched with <mu> held",
	Run:  runGuardedBy,
}

// lockSet is the dataflow fact: the rendered mutex expressions provably
// held. Immutable; transfers clone before changing.
type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// lsJoin intersects: a lock is held at a merge only if held on every path.
func lsJoin(a, b lockSet) lockSet {
	out := make(lockSet)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func lsEqual(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func runGuardedBy(pass *Pass) {
	if len(pass.Shared.GuardedFields) == 0 {
		return
	}
	eachFuncCFG(pass, func(fn ast.Node, g *CFG) {
		gb := &guardedBy{pass: pass}
		flow := Flow[lockSet]{
			Entry:    entryLocks(pass, fn),
			Join:     lsJoin,
			Equal:    lsEqual,
			Transfer: gb.transfer,
		}
		in := flow.Forward(g)
		gb.report = true
		flow.Replay(g, in, func(*Block, ast.Node, lockSet) {})
	})
}

// entryLocks builds the entry fact from an `nvlint:locked <mu>` directive:
// the receiver's (or, for free functions, the first parameter's) mutex is
// already held when the function is entered.
func entryLocks(pass *Pass, fn ast.Node) lockSet {
	fd, ok := fn.(*ast.FuncDecl)
	if !ok {
		return lockSet{}
	}
	mu := commentDirectiveArg(lockedRe, fd.Doc)
	if mu == "" {
		return lockSet{}
	}
	base := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		base = fd.Recv.List[0].Names[0].Name
	} else if fd.Type.Params != nil && len(fd.Type.Params.List) > 0 && len(fd.Type.Params.List[0].Names) > 0 {
		base = fd.Type.Params.List[0].Names[0].Name
	}
	if base == "" {
		return lockSet{}
	}
	return lockSet{base + "." + mu: true}
}

type guardedBy struct {
	pass   *Pass
	report bool
}

// transfer applies one node: check guarded accesses against the in-fact,
// then fold lock/unlock calls.
func (gb *guardedBy) transfer(n ast.Node, f lockSet) lockSet {
	if gb.report {
		gb.checkAccesses(n, f)
	}
	_, isDefer := n.(*ast.DeferStmt)
	out := f
	walkShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op := mutexOp(gb.pass, call)
		if key == "" {
			return true
		}
		switch op {
		case "Lock", "RLock":
			if !out[key] {
				out = out.clone()
				out[key] = true
			}
		case "Unlock", "RUnlock":
			// A deferred unlock releases at return, not here; the Ret
			// block replays it as a DeferRun, where releasing is moot.
			if !isDefer && out[key] {
				out = out.clone()
				delete(out, key)
			}
		}
		return true
	})
	return out
}

// mutexOp recognises x.mu.Lock()/Unlock()/RLock()/RUnlock() where x.mu is
// a sync.Mutex or sync.RWMutex, returning the rendered key "x.mu".
func mutexOp(pass *Pass, call *ast.CallExpr) (key, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil || !isSyncMutex(tv.Type) {
		return "", ""
	}
	k := exprKey(sel.X)
	if k == "" {
		return "", ""
	}
	return k, sel.Sel.Name
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkAccesses reports every guarded-field selector in n whose mutex is
// not in the lock set.
func (gb *guardedBy) checkAccesses(n ast.Node, f lockSet) {
	type finding struct {
		sel   *ast.SelectorExpr
		field string
		need  string
	}
	var found []finding
	walkShallow(n, func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := gb.pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		fieldObj, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		guard, guarded := gb.pass.Shared.GuardedFields[fieldObj]
		if !guarded {
			return true
		}
		base := exprKey(sel.X)
		need := base + "." + guard
		if base == "" || !f[need] {
			if base == "" {
				need = "<base>." + guard
			}
			found = append(found, finding{sel: sel, field: fieldObj.Name(), need: need})
		}
		return true
	})
	// Source order within the node; findings are already deterministic but
	// keep the sort in case walk order ever changes.
	sort.Slice(found, func(i, j int) bool { return found[i].sel.Pos() < found[j].sel.Pos() })
	for _, fd := range found {
		held := make([]string, 0, len(f))
		for k := range f {
			held = append(held, k)
		}
		sort.Strings(held)
		holding := "no locks held"
		if len(held) > 0 {
			holding = "holding " + strings.Join(held, ", ")
		}
		gb.pass.Reportf(fd.sel.Pos(), "field %s is guarded by %s which is not held here (%s); lock it or mark the helper nvlint:locked", fd.field, fd.need, holding)
	}
}
