package analysis

import "testing"

// TestRepositoryLintsClean loads the whole module and runs the full nvlint
// suite over it: the tree must stay lint-clean, with every intentional
// exception carrying an //nvlint:allow <check> <reason> audit trail. This
// is the same invariant CI enforces via `go run ./cmd/nvlint ./...`.
func TestRepositoryLintsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the loader is missing most of the module", len(pkgs))
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}
