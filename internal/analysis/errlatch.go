package analysis

// ErrLatch is the flow-sensitive completion of ErrCheck: on the durable
// paths (the same scope as errcheck — device models, recovery, the soak and
// its CLIs), an error value that *was* captured must still reach a
// consumer on every CFG path: a return, a latch (assignment into a field or
// variable), or any call that takes it (p.fail(err), fmt.Errorf("%w", err),
// abort(err)...). ErrCheck catches errors that were never looked at;
// ErrLatch catches the subtler drop where `err` is assigned, perhaps even
// nil-checked, and then forgotten on one branch.
//
// The dataflow fact maps each error-typed variable to the position of its
// latest unconsumed assignment-from-a-call. A variable leaves the map when
//
//   - any expression uses it, other than a *top-level block condition* that
//     is a bare nil test (`if err != nil {}` with an empty body must not
//     count as handling — the branch verdict is applied per edge instead);
//     a nil test nested in a larger expression (`return err == nil`,
//     `err == nil && more`) is an ordinary consuming use;
//   - control passes the edge that proves it nil (`err != nil` false edge,
//     `err == nil` true edge).
//
// Reports fire at the assignment's position when
//
//   - the variable is overwritten by a new call result while still
//     unconsumed on some path, or
//   - a return (or fall-off-the-end) is reached with the variable still
//     unconsumed and not proven nil.
//
// Paths that end in panic or os.Exit are exempt by construction: the CFG
// gives them no edge to the exit.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ErrLatch is the flow-sensitive dropped-error analyzer.
var ErrLatch = &Analyzer{
	Name:  "errlatch",
	Doc:   "on durable paths a captured error must reach a return or latch on every CFG path",
	Match: errcheckScope,
	Run:   runErrLatch,
}

// elFact maps an error variable to the position of the assignment whose
// result is still unconsumed. Immutable; transfers clone before changing.
type elFact map[types.Object]token.Pos

func (f elFact) clone() elFact {
	out := make(elFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// elJoin unions: a variable unconsumed on either path is unconsumed at the
// merge (the report names the earliest assignment).
func elJoin(a, b elFact) elFact {
	out := a.clone()
	for k, v := range b {
		if cur, ok := out[k]; !ok || v < cur {
			out[k] = v
		}
	}
	return out
}

func elEqual(a, b elFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func runErrLatch(pass *Pass) {
	eachFuncCFG(pass, func(fn ast.Node, g *CFG) {
		el := &errLatch{pass: pass, fn: fn, conds: make(map[ast.Node]bool)}
		for _, b := range g.Reachable() {
			if b.Cond != nil {
				el.conds[b.Cond] = true
			}
		}
		flow := Flow[elFact]{
			Entry:    elFact{},
			Join:     elJoin,
			Equal:    elEqual,
			Transfer: el.transfer,
			Edge:     el.edge,
		}
		in := flow.Forward(g)
		el.report = true
		flow.Replay(g, in, func(*Block, ast.Node, elFact) {})
	})
}

type errLatch struct {
	pass   *Pass
	fn     ast.Node          // the function whose CFG is being analyzed
	conds  map[ast.Node]bool // block conditions: nil tests here get edge semantics
	report bool
}

// edge consumes a variable along the edge that proves it nil.
func (el *errLatch) edge(from *Block, branch int, f elFact) elFact {
	if from.Cond == nil {
		return f
	}
	nonNil, x, ok := errNilTest(el.pass, from.Cond)
	if !ok {
		return f
	}
	obj := el.errObj(x)
	if obj == nil {
		return f
	}
	// The variable is proven nil on the false edge of `!= nil` and the
	// true edge of `== nil`.
	nilPath := (branch == 1) == nonNil
	if nilPath {
		if _, tracked := f[obj]; tracked {
			out := f.clone()
			delete(out, obj)
			return out
		}
	}
	return f
}

// localTo reports whether obj is declared inside the function under
// analysis. A captured variable (a closure latching into its enclosing
// function's err) escapes the CFG — assigning it IS the latch, so it is
// never tracked.
func (el *errLatch) localTo(obj types.Object) bool {
	return obj.Pos() >= el.fn.Pos() && obj.Pos() <= el.fn.End()
}

// errObj resolves an expression to a tracked-able error variable object.
func (el *errLatch) errObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := el.pass.Info.Uses[id]
	if obj == nil {
		obj = el.pass.Info.Defs[id]
	}
	if v, ok := obj.(*types.Var); ok && types.Identical(v.Type(), errorType) {
		return v
	}
	return nil
}

// transfer folds one node: consume uses, then record fresh assignments,
// then run the exit check on returns.
func (el *errLatch) transfer(n ast.Node, f elFact) elFact {
	out := f
	cloned := false
	mutable := func() elFact {
		if !cloned {
			out = out.clone()
			cloned = true
		}
		return out
	}

	// A node that *is* a block condition and a bare nil test consumes
	// nothing: the edge transfer dispenses its verdict per branch, so
	// `if err != nil {}` with an empty body still owes a consumer on the
	// non-nil edge. A nil test anywhere else — nested (`return err == nil`,
	// `err == nil && more`) or a switch case expression, which has no
	// branch-sensitive edges — is an ordinary use and handles the error.
	if el.conds[n] {
		if cond, isExpr := n.(ast.Expr); isExpr {
			if _, _, isNilTest := errNilTest(el.pass, cond); isNilTest {
				return out
			}
		}
	}

	// 1. Uses anywhere in the node consume — except the LHS targets of an
	// assignment (that is the def, handled below).
	skip := make(map[*ast.Ident]bool)
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, isIdent := lhs.(*ast.Ident); isIdent {
				skip[id] = true
			}
		}
	}
	walkShallow(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		obj := el.errObj(id)
		if obj == nil {
			return true
		}
		if _, tracked := out[obj]; tracked {
			delete(mutable(), obj)
		}
		return true
	})

	// 2. Fresh assignment from a call arms tracking; overwriting a still
	// unconsumed value is itself a drop.
	if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
		if _, isCall := as.Rhs[0].(*ast.CallExpr); isCall {
			for _, lhs := range as.Lhs {
				id, isIdent := lhs.(*ast.Ident)
				if !isIdent || id.Name == "_" {
					continue
				}
				obj := el.errObj(id)
				if obj == nil || !el.localTo(obj) {
					continue
				}
				if pos, tracked := out[obj]; tracked && el.report {
					el.pass.Reportf(pos, "error assigned here is overwritten at line %d while still unhandled on some path; latch or return it first", el.pass.Fset.Position(as.Pos()).Line)
				}
				mutable()[obj] = as.Pos()
			}
		} else {
			// A non-call assignment (err = nil, err = otherErr) settles the
			// variable: tracking follows call results only.
			for _, lhs := range as.Lhs {
				if id, isIdent := lhs.(*ast.Ident); isIdent {
					if obj := el.errObj(id); obj != nil {
						if _, tracked := out[obj]; tracked {
							delete(mutable(), obj)
						}
					}
				}
			}
		}
	}

	// 3. Exit check: a return or fall-off-the-end with unconsumed errors.
	switch n.(type) {
	case *ast.ReturnStmt, *EndMarker:
		if el.report && len(out) > 0 {
			type drop struct {
				name string
				pos  token.Pos
			}
			var drops []drop
			for obj, pos := range out {
				drops = append(drops, drop{name: obj.Name(), pos: pos})
			}
			sort.Slice(drops, func(i, j int) bool {
				if drops[i].pos != drops[j].pos {
					return drops[i].pos < drops[j].pos
				}
				return drops[i].name < drops[j].name
			})
			for _, d := range drops {
				el.pass.Reportf(d.pos, "error %s assigned here does not reach a return or latch on every path; handle it on the branch that drops it", d.name)
			}
		}
	}
	return out
}
