package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheck is a scoped errcheck: on the NVM/DRAM device models and the
// recovery paths, a silently dropped error means a snapshot that was never
// durable or an image that was never verified. It flags
//
//   - call statements discarding an error-returning result,
//   - `go`/`defer` on error-returning calls, and
//   - multi-value assignments blanking an error position (`v, _ := f()`).
//
// A single-value explicit discard (`_ = f()`) is allowed: the blank is the
// audit trail. Calls into package fmt are exempt (terminal write errors are
// not recoverable state).
//
// The check walks the CFG rather than the raw AST: only statements on a
// path reachable from the function entry are audited, so code the flow
// graph proves dead (after a return, in a branch cut off by panic/os.Exit)
// no longer demands handling. The flow-sensitive completion of this check —
// "an error that *was* captured must reach a latch or return on every
// path" — is ErrLatch.
var ErrCheck = &Analyzer{
	Name:  "errcheck",
	Doc:   "device and recovery paths must not ignore error returns",
	Match: errcheckScope,
	Run:   runErrCheck,
}

func runErrCheck(pass *Pass) {
	eachFuncCFG(pass, func(fn ast.Node, g *CFG) {
		for _, b := range g.Reachable() {
			for _, n := range b.Nodes {
				switch s := n.(type) {
				case *ast.ExprStmt:
					if call, ok := s.X.(*ast.CallExpr); ok {
						checkDiscardedCall(pass, call, "")
					}
				case *ast.GoStmt:
					checkDiscardedCall(pass, s.Call, "go ")
				case *ast.DeferStmt:
					checkDiscardedCall(pass, s.Call, "defer ")
				case *ast.AssignStmt:
					checkBlankedError(pass, s)
				}
			}
		}
	})
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
	default:
		return types.Identical(t, errorType)
	}
	return false
}

// exemptCall reports whether the callee's error is conventionally ignored.
func exemptCall(pass *Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "fmt"
}

func checkDiscardedCall(pass *Pass, call *ast.CallExpr, prefix string) {
	if !returnsError(pass, call) || exemptCall(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "%serror return is silently discarded; handle it or assign to _ explicitly", prefix)
}

// checkBlankedError flags `v, _ := f()` where the blank swallows an error.
func checkBlankedError(pass *Pass, s *ast.AssignStmt) {
	if len(s.Rhs) != 1 || len(s.Lhs) < 2 {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || exemptCall(pass, call) {
		return
	}
	tv, ok := pass.Info.Types[call]
	if !ok {
		return
	}
	tuple, ok := tv.Type.(*types.Tuple)
	if !ok || tuple.Len() != len(s.Lhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if types.Identical(tuple.At(i).Type(), errorType) {
			pass.Reportf(s.Pos(), "error result %d of %d is blanked; handle it (recovery/device errors must not vanish)", i+1, tuple.Len())
		}
	}
}
