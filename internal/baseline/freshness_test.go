package baseline

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestBaselineFreshness runs the data-freshness oracle through every
// baseline scheme: loads must observe the newest stored payload even as
// epoch boundaries flush, mark lines clean, and refresh the DRAM working
// copy underneath.
func TestBaselineFreshness(t *testing.T) {
	builders := map[string]func(cfg *sim.Config) trace.Scheme{
		"Ideal":    func(cfg *sim.Config) trace.Scheme { return NewIdeal(cfg) },
		"SWLog":    func(cfg *sim.Config) trace.Scheme { return NewSWLog(cfg) },
		"SWShadow": func(cfg *sim.Config) trace.Scheme { return NewSWShadow(cfg) },
		"HWShadow": func(cfg *sim.Config) trace.Scheme { return NewHWShadow(cfg) },
		"PiCL":     func(cfg *sim.Config) trace.Scheme { return NewPiCL(cfg) },
		"PiCL-L2":  func(cfg *sim.Config) trace.Scheme { return NewPiCLL2(cfg) },
	}
	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			cfg := blCfg()
			cfg.EpochSize = 40
			s := build(cfg)
			clocks := sim.NewClocks(cfg.Cores)
			s.Bind(clocks)
			h := s.(interface{ Hierarchy() *coherence.Hierarchy }).Hierarchy()
			r := sim.NewRNG(17)
			latest := map[uint64]uint64{}
			var token uint64
			for i := 0; i < 15000; i++ {
				tid := r.Intn(cfg.Cores)
				addr := uint64(r.Intn(200) * 64)
				if r.Intn(3) == 0 {
					token++
					clocks.Advance(tid, s.Access(tid, addr, true, token)+2)
					latest[addr] = token
				} else {
					clocks.Advance(tid, s.Access(tid, addr, false, 0)+2)
					ln := h.L1(tid).Peek(addr)
					if ln == nil {
						t.Fatalf("iteration %d: loaded line %#x absent", i, addr)
					}
					if ln.Data != latest[addr] {
						t.Fatalf("iteration %d: tid %d read %d of %#x, want %d (stale, scheme %s)",
							i, tid, ln.Data, addr, latest[addr], name)
					}
				}
			}
			if err := h.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
