package baseline

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// swTrackCost is the software bookkeeping cost (cycles) charged on the
// first write to a line in an epoch: the transactional library records the
// address in its write set.
const swTrackCost = 20

// SWLog is software undo logging (§VI-B "SW Logging"): before the first
// write to a line in an epoch, a 72-byte undo entry is flushed to NVM
// behind a persistence barrier — the storing thread waits for durability.
// At every epoch boundary the library synchronously flushes the write set
// to the data's home locations; execution resumes only when the flush is
// durable.
type SWLog struct {
	*base
}

// NewSWLog builds the scheme.
func NewSWLog(cfg *sim.Config) *SWLog {
	s := &SWLog{base: newBase("SWLog", cfg)}
	s.h = coherence.New(cfg, s.dram, coherence.Callbacks{
		OnStore: func(tid, vd int, ln *cache.Line) uint64 {
			if ln.OID >= s.epoch {
				return 0 // already logged this epoch
			}
			ln.OID = s.epoch
			s.evLog++
			s.stat.Inc("log_entries")
			// Synchronous barrier: pipeline waits for the log entry.
			return swTrackCost + s.nvm.WriteSync(mem.WLog, s.nextLog(), 72, s.now(tid))
		},
	})
	return s
}

// Access implements trace.Scheme.
func (s *SWLog) Access(tid int, addr uint64, write bool, data uint64) uint64 {
	if !write {
		return s.h.Load(tid, addr)
	}
	lat := s.h.Store(tid, addr)
	if ln := s.h.L1(tid).Peek(s.cfg.LineAddr(addr)); ln != nil {
		ln.Data = data
	}
	s.bumpStore(func(closing uint64) {
		// Synchronous write-set flush: all threads stall until durable.
		s.stallAll(s.flushDirtySync(closing, 0, mem.WData))
	})
	return lat
}

// Drain implements trace.Scheme.
func (s *SWLog) Drain(now uint64) {
	s.flushDirtySync(s.epoch, 0, mem.WData)
}

var _ trace.Scheme = (*SWLog)(nil)

// SWShadow is software shadow paging (§VI-B "SW Shadow", Romulus-style):
// the first write to a line in an epoch synchronously copies the line to
// its shadow location; at the boundary the library synchronously flushes
// the write set's final values and updates the persistent mapping table
// (one 8-byte pointer per dirty line) behind barriers.
type SWShadow struct {
	*base
}

// NewSWShadow builds the scheme.
func NewSWShadow(cfg *sim.Config) *SWShadow {
	s := &SWShadow{base: newBase("SWShadow", cfg)}
	s.h = coherence.New(cfg, s.dram, coherence.Callbacks{
		OnStore: func(tid, vd int, ln *cache.Line) uint64 {
			if ln.OID >= s.epoch {
				return 0
			}
			// Shadow paging defers the NVM write to the commit-time flush;
			// the first write only pays the software write-set tracking.
			ln.OID = s.epoch
			s.stat.Inc("shadow_copies")
			return swTrackCost
		},
	})
	return s
}

// Access implements trace.Scheme.
func (s *SWShadow) Access(tid int, addr uint64, write bool, data uint64) uint64 {
	if !write {
		return s.h.Load(tid, addr)
	}
	lat := s.h.Store(tid, addr)
	if ln := s.h.L1(tid).Peek(s.cfg.LineAddr(addr)); ln != nil {
		ln.Data = data
	}
	s.bumpStore(func(closing uint64) {
		flush := s.flushDirtySync(closing, shadowBase, mem.WData)
		table := s.tableUpdateSync()
		s.stallAll(flush + table)
	})
	return lat
}

// tableUpdateSync writes the persistent mapping-table entries for the
// epoch's write set, serialized (software walks its write set).
func (s *SWShadow) tableUpdateSync() uint64 {
	n := s.stat.Get("flushed_lines") - s.stat.Get("table_lines_done")
	s.stat.Add("table_lines_done", n)
	now := s.maxNow()
	var finish uint64
	for i := int64(0); i < n; i++ {
		lat := s.nvm.WriteSync(mem.WMeta, tableBase+uint64(i*8)%(1<<20), 8, now)
		if lat > finish {
			finish = lat
		}
	}
	return finish
}

// Drain implements trace.Scheme.
func (s *SWShadow) Drain(now uint64) {
	s.flushDirtySync(s.epoch, shadowBase, mem.WData)
	s.tableUpdateSync()
}

var _ trace.Scheme = (*SWShadow)(nil)
