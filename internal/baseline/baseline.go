// Package baseline implements the five comparison schemes of the paper's
// evaluation (§VI-B) plus the no-snapshotting ideal that Figure 11
// normalises against:
//
//   - Ideal      — plain hierarchy, no persistence work at all.
//   - SWLog      — software undo logging: a synchronous 72-byte log entry
//     behind a persistence barrier on the first write to each
//     line per epoch, plus a synchronous write-set flush at
//     every epoch boundary.
//   - SWShadow   — software shadow paging: a synchronous shadow-copy write
//     on first write, plus a synchronous flush and persistent
//     mapping-table update at every boundary.
//   - HWShadow   — ThyNVM-style hardware shadow paging: data persistence is
//     overlapped with execution, but the centralized mapping
//     table is updated synchronously at each boundary.
//   - PiCL       — hardware undo logging with a version-tagged inclusive
//     LLC and an epoch-boundary LLC tag walk (ACS).
//   - PiCLL2     — the paper's hypothetical PiCL variant tracking at the
//     L2, for machines without a monolithic inclusive LLC.
//
// All six run on the directory-MESI hierarchy of internal/coherence and
// share epoch bookkeeping via the embedded base type.
package baseline

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// NVM address-space regions used by baseline persistence traffic.
const (
	logBase    uint64 = 1 << 43 // undo/redo log area
	shadowBase uint64 = 1 << 44 // shadow-copy area
	tableBase  uint64 = 1 << 45 // persistent mapping tables
)

// base carries the state shared by every baseline: the hierarchy, devices,
// a global epoch driven by the total store count, and counters.
type base struct {
	name   string
	cfg    *sim.Config
	nvm    *mem.NVM
	dram   *mem.DRAM
	h      *coherence.Hierarchy
	clocks *sim.Clocks
	stat   *stats.Set

	epoch     uint64
	stores    int
	totStores uint64
	logCursor uint64

	// evict-reason accounting for Fig 15.
	evCapacity, evCoherence, evWalk, evLog uint64
}

func newBase(name string, cfg *sim.Config) *base {
	return &base{
		name:      name,
		cfg:       cfg,
		nvm:       mem.NewNVM(cfg),
		dram:      mem.NewDRAM(cfg),
		stat:      stats.NewSet(name),
		epoch:     1,
		logCursor: logBase,
	}
}

// Name implements trace.Scheme.
func (b *base) Name() string { return b.name }

// Bind implements trace.Scheme.
func (b *base) Bind(clocks *sim.Clocks) { b.clocks = clocks }

// Stats implements trace.Scheme.
func (b *base) Stats() *stats.Set {
	s := stats.NewSet(b.name)
	s.Merge(b.stat)
	s.Merge(b.h.Stats())
	s.Merge(b.nvm.Stats())
	return s
}

// NVM implements trace.Scheme.
func (b *base) NVM() *mem.NVM { return b.nvm }

// Hierarchy exposes the cache hierarchy (tests).
func (b *base) Hierarchy() *coherence.Hierarchy { return b.h }

// DRAM exposes the working-memory model; the differential harness reads it
// as the crash-free image oracle for the baseline schemes.
func (b *base) DRAM() *mem.DRAM { return b.dram }

// Epoch returns the current global epoch.
func (b *base) Epoch() uint64 { return b.epoch }

// EvictReasons returns (capacity, coherence, walk) version/data write
// counts for the Fig 15 decomposition; log writes are reported separately.
func (b *base) EvictReasons() (capacity, coher, walk, logw uint64) {
	return b.evCapacity, b.evCoherence, b.evWalk, b.evLog
}

// now returns the current time of thread tid (schemes issue background NVM
// traffic at the triggering thread's clock).
func (b *base) now(tid int) uint64 { return b.clocks.Now(tid) }

// maxNow returns the latest thread clock (epoch-boundary work happens when
// the whole machine reaches the boundary).
func (b *base) maxNow() uint64 { return b.clocks.Max() }

// nextLog returns the next log-entry address, striding across NVM banks.
func (b *base) nextLog() uint64 {
	a := b.logCursor
	b.logCursor += uint64(b.cfg.LineSize) // 72B entries padded to a line stride
	if b.logCursor >= logBase+(1<<30) {
		b.logCursor = logBase
	}
	return a
}

// bumpStore advances the global epoch after cfg.EpochSize stores and
// invokes the scheme's boundary hook.
func (b *base) bumpStore(onBoundary func(closing uint64)) {
	b.stores++
	b.totStores++
	if b.stores >= b.cfg.EpochSizeAt(b.totStores) {
		b.stores = 0
		closing := b.epoch
		b.epoch++
		b.stat.Inc("epoch_boundaries")
		if onBoundary != nil {
			onBoundary(closing)
		}
	}
}

// stallAll stalls every thread for cost cycles (software barriers and
// synchronous table updates are global).
func (b *base) stallAll(cost uint64) {
	if cost > 0 {
		b.clocks.StallGroup(0, b.cfg.Cores, cost)
		b.stat.Add("barrier_stall_cycles", int64(cost))
	}
}

// flushDirtySync synchronously writes every dirty line at most maxOID to
// dst (home or shadow), returning when the last write is durable. All
// lines are also marked clean in place and the DRAM working copy is
// refreshed so the oracle stays consistent.
func (b *base) flushDirtySync(maxOID uint64, region uint64, class mem.WriteClass) uint64 {
	lines := b.h.DirtyLines(maxOID)
	now := b.maxNow()
	var finish uint64
	for _, ln := range lines {
		lat := b.nvm.WriteSync(class, region+ln.Tag, b.cfg.LineSize, now)
		if lat > finish {
			finish = lat
		}
	}
	b.markClean(lines)
	b.stat.Add("flushed_lines", int64(len(lines)))
	return finish
}

// flushDirtyAsync writes the dirty lines in the background (bank bookings
// only) — used by the hardware schemes that overlap persistence.
func (b *base) flushDirtyAsync(maxOID uint64, region uint64, class mem.WriteClass) (stall uint64) {
	lines := b.h.DirtyLines(maxOID)
	now := b.maxNow()
	for _, ln := range lines {
		stall += b.nvm.Write(class, region+ln.Tag, b.cfg.LineSize, now+stall)
	}
	b.markClean(lines)
	b.stat.Add("flushed_lines", int64(len(lines)))
	return stall
}

// markClean clears the dirty bit of the given addresses throughout the
// hierarchy and refreshes DRAM so silently dropped clean lines stay
// coherent with the backing store.
func (b *base) markClean(lines []cache.Line) {
	addrs := make(map[uint64]cache.Line, len(lines))
	for _, ln := range lines {
		addrs[ln.Tag] = ln
	}
	clean := func(c *cache.Cache) {
		c.ForEach(func(ln *cache.Line) {
			if newest, ok := addrs[ln.Tag]; ok {
				// The checkpoint persisted the newest copy; every cached
				// copy — including stale clean ones in the inclusive LLC —
				// is synchronised to it, so nothing stale can resurface
				// after the newest copies lose their dirty bits and are
				// silently dropped.
				ln.Dirty = false
				ln.Data = newest.Data
				ln.OID = newest.OID
			}
		})
	}
	for tid := 0; tid < b.cfg.Cores; tid++ {
		clean(b.h.L1(tid))
	}
	for vd := 0; vd < b.cfg.VDs(); vd++ {
		clean(b.h.L2(vd))
	}
	for i := 0; i < b.h.Slices(); i++ {
		clean(b.h.LLCSlice(i))
	}
	for _, ln := range lines {
		b.dram.WriteBack(ln.Tag, ln.OID, ln.Data)
	}
}

var (
	_ = tableBase
)
