package baseline

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// HWShadow models hardware shadow paging in the style of ThyNVM (§VI-B "HW
// Shadow"): dirty data of the closing epoch is persisted to shadow
// locations in the background, overlapped with the next epoch's execution,
// but the *centralized* mapping table is updated synchronously at each
// boundary — every thread stalls while the single controller writes one
// 8-byte entry per checkpointed line through a single serialization point.
type HWShadow struct {
	*base
	tableCursor uint64
}

// NewHWShadow builds the scheme.
func NewHWShadow(cfg *sim.Config) *HWShadow {
	s := &HWShadow{base: newBase("HWShadow", cfg)}
	s.h = coherence.New(cfg, s.dram, coherence.Callbacks{
		OnStore: func(tid, vd int, ln *cache.Line) uint64 {
			// Hardware tags the line with the epoch; no software cost.
			ln.OID = s.epoch
			return 0
		},
		OnLLCWriteBack: func(ln cache.Line, reason coherence.Reason) uint64 {
			// Dirty data leaving the LLC mid-epoch is persisted to its
			// shadow location in the background.
			s.evCapacity++
			s.stat.Inc("background_writes")
			return s.nvm.Write(mem.WData, shadowBase+ln.Tag, s.cfg.LineSize, s.maxNow())
		},
	})
	return s
}

// Access implements trace.Scheme.
func (s *HWShadow) Access(tid int, addr uint64, write bool, data uint64) uint64 {
	if !write {
		return s.h.Load(tid, addr)
	}
	lat := s.h.Store(tid, addr)
	if ln := s.h.L1(tid).Peek(s.cfg.LineAddr(addr)); ln != nil {
		ln.Data = data
	}
	s.bumpStore(func(closing uint64) {
		// Data persistence overlaps with execution: background writes only.
		lines := s.h.DirtyLines(closing)
		now := s.maxNow()
		for _, ln := range lines {
			now += s.nvm.Write(mem.WData, shadowBase+ln.Tag, s.cfg.LineSize, now)
		}
		s.markClean(lines)
		s.stat.Add("flushed_lines", int64(len(lines)))
		s.evWalk += uint64(len(lines))
		// The mapping-table update cannot be overlapped: it must complete
		// before the next epoch's writes may land in the shadow area.
		s.stallAll(s.tableUpdateSync(len(lines)))
	})
	return lat
}

// tableUpdateSync serializes n 8-byte entry writes through the centralized
// controller (a single NVM bank region), returning the completion latency.
func (s *HWShadow) tableUpdateSync(n int) uint64 {
	now := s.maxNow()
	var finish uint64
	for i := 0; i < n; i++ {
		// All entries funnel through one table region: same-bank addresses
		// serialize, which is exactly the centralization the paper faults.
		addr := tableBase + s.tableCursor%(1<<12)
		s.tableCursor += 8
		lat := s.nvm.WriteSync(mem.WMeta, addr, 8, now)
		if lat > finish {
			finish = lat
		}
	}
	s.stat.Add("table_entries", int64(n))
	return finish
}

// Drain implements trace.Scheme.
func (s *HWShadow) Drain(now uint64) {
	s.flushDirtyAsync(s.epoch, shadowBase, mem.WData)
}

var _ trace.Scheme = (*HWShadow)(nil)
