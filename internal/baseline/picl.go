package baseline

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// PiCL is hardware undo logging at the LLC (Nguyen & Wentzlaff, MICRO'18;
// §VI-B): on the first store to a line in an epoch the old value is logged
// to NVM in the background (72-byte entry); the inclusive LLC is
// version-tagged, and after each epoch boundary a tag walker (ACS) writes
// the previous epoch's dirty lines back to their NVM home. Dirty lines
// evicted from the LLC mid-epoch also write their home location. Per the
// paper we ignore global epoch-synchronisation overhead and model the data
// path only.
type PiCL struct {
	*base
}

// NewPiCL builds the scheme.
func NewPiCL(cfg *sim.Config) *PiCL {
	s := &PiCL{base: newBase("PiCL", cfg)}
	s.h = coherence.New(cfg, s.dram, coherence.Callbacks{
		OnStore: func(tid, vd int, ln *cache.Line) uint64 {
			var extra uint64
			if ln.OID < s.epoch {
				// First store this epoch: log the old value (background).
				s.evLog++
				s.stat.Inc("log_entries")
				extra = s.nvm.Write(mem.WLog, s.nextLog(), 72, s.now(tid))
			}
			ln.OID = s.epoch
			return extra
		},
		OnLLCWriteBack: func(ln cache.Line, reason coherence.Reason) uint64 {
			// A dirty line leaving the LLC writes its NVM home.
			s.evCapacity++
			s.stat.Inc("home_writes")
			return s.nvm.Write(mem.WData, ln.Tag, s.cfg.LineSize, s.maxNow())
		},
		OnLLCFill: func(ln *cache.Line) {
			// Epoch tags live in the LLC only: a line refetched from DRAM
			// has lost its tag and will be re-logged on its next store.
			ln.OID = 0
		},
	})
	return s
}

// Access implements trace.Scheme.
func (s *PiCL) Access(tid int, addr uint64, write bool, data uint64) uint64 {
	if !write {
		return s.h.Load(tid, addr)
	}
	lat := s.h.Store(tid, addr)
	if ln := s.h.L1(tid).Peek(s.cfg.LineAddr(addr)); ln != nil {
		ln.Data = data
	}
	s.bumpStore(func(closing uint64) { s.ackWalk(closing) })
	return lat
}

// ackWalk is PiCL's epoch-boundary tag walk over the LLC: upper-level dirty
// lines of the closing epoch are first folded into the LLC, then every LLC
// dirty line tagged <= closing is written home in the background and marked
// clean. When the walker is disabled (ablation), dirty lines persist only
// through natural evictions.
func (s *PiCL) ackWalk(closing uint64) {
	if !s.cfg.TagWalker {
		return
	}
	lines := s.h.DirtyLines(closing)
	now := s.maxNow()
	for _, ln := range lines {
		now += s.nvm.Write(mem.WData, ln.Tag, s.cfg.LineSize, now)
	}
	s.markClean(lines)
	s.evWalk += uint64(len(lines))
	s.stat.Add("acs_writebacks", int64(len(lines)))
	s.stat.Inc("acs_walks")
}

// Drain implements trace.Scheme.
func (s *PiCL) Drain(now uint64) {
	s.flushDirtyAsync(s.epoch, 0, mem.WData)
}

var _ trace.Scheme = (*PiCL)(nil)

// PiCLL2 is the paper's hypothetical PiCL variant that tracks epochs at
// the per-VD L2 instead of a monolithic inclusive LLC (§VI-B "PiCL-L2"):
// large multicores with non-inclusive LLCs cannot host PiCL's tag walker,
// so logging and walking move to the (much smaller) L2s. The smaller
// on-chip tracked set causes both extra data write-backs and extra log
// entries — lines evicted from an L2 lose their epoch tag and are
// re-logged when refetched and stored to again.
type PiCLL2 struct {
	*base
}

// NewPiCLL2 builds the scheme.
func NewPiCLL2(cfg *sim.Config) *PiCLL2 {
	s := &PiCLL2{base: newBase("PiCL-L2", cfg)}
	s.h = coherence.New(cfg, s.dram, coherence.Callbacks{
		OnStore: func(tid, vd int, ln *cache.Line) uint64 {
			var extra uint64
			if ln.OID < s.epoch {
				s.evLog++
				s.stat.Inc("log_entries")
				extra = s.nvm.Write(mem.WLog, s.nextLog(), 72, s.now(tid))
			}
			ln.OID = s.epoch
			return extra
		},
		OnL2WriteBack: func(vd int, ln cache.Line, reason coherence.Reason) uint64 {
			// Dirty data leaving an L2 writes its NVM home (the L2 is the
			// last tracked level).
			if reason == coherence.ReasonCoherence {
				s.evCoherence++
			} else {
				s.evCapacity++
			}
			s.stat.Inc("home_writes")
			return s.nvm.Write(mem.WData, ln.Tag, s.cfg.LineSize, s.maxNow())
		},
		OnL2Fill: func(vd int, ln *cache.Line) {
			// Tags are tracked at the L2 only: fills from below lose them.
			ln.OID = 0
		},
	})
	return s
}

// Access implements trace.Scheme.
func (s *PiCLL2) Access(tid int, addr uint64, write bool, data uint64) uint64 {
	if !write {
		return s.h.Load(tid, addr)
	}
	lat := s.h.Store(tid, addr)
	if ln := s.h.L1(tid).Peek(s.cfg.LineAddr(addr)); ln != nil {
		ln.Data = data
	}
	s.bumpStore(func(closing uint64) { s.ackWalk(closing) })
	return lat
}

// ackWalk walks every VD's L1+L2 at the boundary, writing dirty lines of
// the closing epoch home in the background.
func (s *PiCLL2) ackWalk(closing uint64) {
	if !s.cfg.TagWalker {
		return
	}
	now := s.maxNow()
	var count int64
	var lines []cache.Line
	collect := func(c *cache.Cache) {
		c.ForEach(func(ln *cache.Line) {
			if ln.Dirty && ln.OID <= closing {
				lines = append(lines, *ln)
			}
		})
	}
	for tid := 0; tid < s.cfg.Cores; tid++ {
		collect(s.h.L1(tid))
	}
	for vd := 0; vd < s.cfg.VDs(); vd++ {
		collect(s.h.L2(vd))
	}
	seen := map[uint64]bool{}
	var uniq []cache.Line
	for _, ln := range lines {
		if !seen[ln.Tag] {
			seen[ln.Tag] = true
			uniq = append(uniq, ln)
			now += s.nvm.Write(mem.WData, ln.Tag, s.cfg.LineSize, now)
			count++
		}
	}
	s.markClean(uniq)
	s.evWalk += uint64(count)
	s.stat.Add("acs_writebacks", count)
	s.stat.Inc("acs_walks")
}

// Drain implements trace.Scheme.
func (s *PiCLL2) Drain(now uint64) {
	s.flushDirtyAsync(s.epoch, 0, mem.WData)
}

var _ trace.Scheme = (*PiCLL2)(nil)
