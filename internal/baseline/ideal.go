package baseline

import (
	"repro/internal/coherence"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Ideal is the no-snapshotting system every Fig 11 bar is normalised to:
// the plain hierarchy with zero persistence work.
type Ideal struct {
	*base
}

// NewIdeal builds the ideal baseline.
func NewIdeal(cfg *sim.Config) *Ideal {
	s := &Ideal{base: newBase("Ideal", cfg)}
	s.h = coherence.New(cfg, s.dram, coherence.Callbacks{})
	return s
}

// Access implements trace.Scheme.
func (s *Ideal) Access(tid int, addr uint64, write bool, data uint64) uint64 {
	if write {
		lat := s.h.Store(tid, addr)
		if ln := s.h.L1(tid).Peek(s.cfg.LineAddr(addr)); ln != nil {
			ln.Data = data
		}
		return lat
	}
	return s.h.Load(tid, addr)
}

// Drain implements trace.Scheme (nothing to persist).
func (s *Ideal) Drain(now uint64) {}

var _ trace.Scheme = (*Ideal)(nil)
