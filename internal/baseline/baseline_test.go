package baseline

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

func blCfg() *sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Cores = 4
	cfg.CoresPerVD = 2
	cfg.LLCSlices = 2
	cfg.L1Size = 4 * 2 * 64
	cfg.L1Ways = 2
	cfg.L2Size = 8 * 2 * 64
	cfg.L2Ways = 2
	cfg.LLCSize = 2 * 8 * 4 * 64
	cfg.LLCWays = 4
	cfg.EpochSize = 50
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &cfg
}

// runRandom drives a scheme with a fixed random mix and returns the wall
// clock and the scheme itself for inspection.
func runRandom(t *testing.T, s trace.Scheme, cfg *sim.Config, n int) uint64 {
	t.Helper()
	clocks := sim.NewClocks(cfg.Cores)
	s.Bind(clocks)
	r := sim.NewRNG(5)
	var token uint64
	for i := 0; i < n; i++ {
		tid := r.Intn(cfg.Cores)
		addr := uint64(r.Intn(400) * 64)
		lat := uint64(0)
		if r.Intn(2) == 0 {
			token++
			lat = s.Access(tid, addr, true, token)
		} else {
			lat = s.Access(tid, addr, false, 0)
		}
		clocks.Advance(tid, lat+2)
	}
	s.Drain(clocks.Max())
	return clocks.Max()
}

func TestIdealNoNVMTraffic(t *testing.T) {
	cfg := blCfg()
	s := NewIdeal(cfg)
	runRandom(t, s, cfg, 5000)
	if s.NVM().TotalBytes() != 0 {
		t.Fatalf("ideal wrote %d NVM bytes", s.NVM().TotalBytes())
	}
	if s.Name() != "Ideal" {
		t.Fatal("name")
	}
	if err := s.Hierarchy().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSWLogWritesLogAndData(t *testing.T) {
	cfg := blCfg()
	s := NewSWLog(cfg)
	runRandom(t, s, cfg, 5000)
	if s.NVM().Bytes(mem.WLog) == 0 {
		t.Fatal("no log traffic")
	}
	if s.NVM().Bytes(mem.WData) == 0 {
		t.Fatal("no data traffic")
	}
	if s.Stats().Get("log_entries") == 0 || s.Stats().Get("epoch_boundaries") == 0 {
		t.Fatal("log/boundary counters empty")
	}
	// Undo logging writes at least one log entry per flushed line.
	if s.Stats().Get("log_entries") < s.Stats().Get("flushed_lines")/2 {
		t.Fatal("implausibly few log entries")
	}
}

func TestSWLogBarrierOnCriticalPath(t *testing.T) {
	cfg := blCfg()
	cfg.EpochSize = 1 << 30 // no boundary: isolate the per-write barrier
	s := NewSWLog(cfg)
	clocks := sim.NewClocks(cfg.Cores)
	s.Bind(clocks)
	lat := s.Access(0, 0x40, true, 1)
	if lat < cfg.NVMWriteLat {
		t.Fatalf("first-write latency %d lacks the sync log write", lat)
	}
	// Second store to the same line in the same epoch is cheap.
	lat2 := s.Access(0, 0x40, true, 2)
	if lat2 >= cfg.NVMWriteLat {
		t.Fatalf("re-write latency %d should not pay a barrier", lat2)
	}
}

func TestSWShadowTableUpdates(t *testing.T) {
	cfg := blCfg()
	s := NewSWShadow(cfg)
	runRandom(t, s, cfg, 5000)
	if s.NVM().Bytes(mem.WMeta) == 0 {
		t.Fatal("no mapping-table traffic")
	}
	if s.NVM().Bytes(mem.WLog) != 0 {
		t.Fatal("shadow paging must not write logs")
	}
	if s.Stats().Get("shadow_copies") == 0 {
		t.Fatal("no shadow copies")
	}
}

func TestHWShadowOverlapsDataPersistence(t *testing.T) {
	cfg := blCfg()
	hw := NewHWShadow(cfg)
	sw := NewSWShadow(cfg)
	hwCycles := runRandom(t, hw, cfg, 8000)
	swCycles := runRandom(t, sw, cfg, 8000)
	if hwCycles >= swCycles {
		t.Fatalf("HW shadow (%d cycles) not faster than SW shadow (%d)", hwCycles, swCycles)
	}
	if hw.NVM().Bytes(mem.WMeta) == 0 {
		t.Fatal("HW shadow wrote no table entries")
	}
	if hw.Stats().Get("barrier_stall_cycles") == 0 {
		t.Fatal("HW shadow's synchronous table update did not stall")
	}
}

func TestPiCLLogsOncePerLinePerEpoch(t *testing.T) {
	cfg := blCfg()
	cfg.EpochSize = 10
	s := NewPiCL(cfg)
	clocks := sim.NewClocks(cfg.Cores)
	s.Bind(clocks)
	// 5 stores to the same line within one epoch: one log entry.
	for i := 0; i < 5; i++ {
		s.Access(0, 0x40, true, uint64(i))
	}
	if got := s.Stats().Get("log_entries"); got != 1 {
		t.Fatalf("log entries = %d, want 1", got)
	}
	// Cross the boundary (5 more stores) and write again: a second entry.
	for i := 0; i < 5; i++ {
		s.Access(0, uint64(0x1000+i*64), true, uint64(i))
	}
	s.Access(0, 0x40, true, 99)
	if got := s.Stats().Get("log_entries"); got != 7 {
		t.Fatalf("log entries = %d, want 7 (6 first-writes + 1 re-log)", got)
	}
}

func TestPiCLWalkWritesHomeLocations(t *testing.T) {
	cfg := blCfg()
	cfg.EpochSize = 20
	s := NewPiCL(cfg)
	runRandom(t, s, cfg, 3000)
	if s.Stats().Get("acs_walks") == 0 {
		t.Fatal("no ACS walks")
	}
	_, _, walk, logw := s.EvictReasons()
	if walk == 0 || logw == 0 {
		t.Fatalf("evict decomposition: walk=%d log=%d", walk, logw)
	}
}

func TestPiCLWalkerDisabled(t *testing.T) {
	cfg := blCfg()
	cfg.EpochSize = 20
	cfg.TagWalker = false
	s := NewPiCL(cfg)
	runRandom(t, s, cfg, 3000)
	if s.Stats().Get("acs_walks") != 0 {
		t.Fatal("walker ran despite ablation")
	}
	_, _, walk, _ := s.EvictReasons()
	if walk != 0 {
		t.Fatal("walk evictions without walker")
	}
}

func TestPiCLL2MoreTrafficThanPiCL(t *testing.T) {
	cfg := blCfg()
	// The contrast requires the paper's capacity relationship: the working
	// set (400 lines) fits in the LLC but thrashes the small per-VD L2s,
	// and epochs long enough that lines are re-stored within one epoch
	// (tag loss then forces PiCL-L2 to re-log).
	cfg.LLCSize = 2 * 64 * 4 * 64 // 512 lines
	cfg.EpochSize = 2000
	p := NewPiCL(cfg)
	p2 := NewPiCLL2(cfg)
	runRandom(t, p, cfg, 10000)
	runRandom(t, p2, cfg, 10000)
	// The L2-tracked variant loses tags on its tiny L2s: more log entries
	// and at least as many home writes.
	if p2.Stats().Get("log_entries") <= p.Stats().Get("log_entries") {
		t.Fatalf("PiCL-L2 logs (%d) not more than PiCL (%d)",
			p2.Stats().Get("log_entries"), p.Stats().Get("log_entries"))
	}
	if p2.NVM().TotalBytes() <= p.NVM().TotalBytes() {
		t.Fatalf("PiCL-L2 bytes (%d) not more than PiCL (%d)",
			p2.NVM().TotalBytes(), p.NVM().TotalBytes())
	}
}

func TestSchemeOrderingMatchesPaper(t *testing.T) {
	// The qualitative Fig 11 ordering on a random mix: SW logging slowest,
	// SW shadow close behind, HW shadow faster, PiCL/ideal fastest.
	cfg := blCfg()
	ideal := runRandom(t, NewIdeal(cfg), cfg, 8000)
	swlog := runRandom(t, NewSWLog(cfg), cfg, 8000)
	swsh := runRandom(t, NewSWShadow(cfg), cfg, 8000)
	picl := runRandom(t, NewPiCL(cfg), cfg, 8000)
	if !(swlog > swsh) {
		t.Fatalf("SWLog (%d) should be slower than SWShadow (%d)", swlog, swsh)
	}
	if !(swsh > picl) {
		t.Fatalf("SWShadow (%d) should be slower than PiCL (%d)", swsh, picl)
	}
	if picl < ideal {
		t.Fatalf("PiCL (%d) faster than ideal (%d)?", picl, ideal)
	}
	if float64(picl) > float64(ideal)*1.5 {
		t.Fatalf("PiCL (%d) should be near ideal (%d)", picl, ideal)
	}
}

func TestDrainPersistsOutstandingState(t *testing.T) {
	cfg := blCfg()
	cfg.EpochSize = 1 << 30 // never hit a boundary
	for _, s := range []trace.Scheme{NewSWLog(cfg), NewSWShadow(cfg), NewHWShadow(cfg), NewPiCL(cfg), NewPiCLL2(cfg)} {
		clocks := sim.NewClocks(cfg.Cores)
		s.Bind(clocks)
		s.Access(0, 0x40, true, 7)
		before := s.NVM().Bytes(mem.WData)
		s.Drain(100)
		if s.NVM().Bytes(mem.WData) <= before {
			t.Fatalf("%s: drain wrote no data", s.Name())
		}
	}
}
