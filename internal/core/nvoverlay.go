// Package core assembles NVOverlay, the paper's primary contribution: the
// Coherent Snapshot Tracking frontend (internal/cst) in front of the
// Multi-snapshot NVM Mapping backend (internal/omc), packaged behind the
// common Scheme interface so the experiment harness can compare it against
// the baselines under identical workloads.
package core

import (
	"fmt"

	"repro/internal/cst"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/omc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// NVOverlay is the full design: version-tagged hierarchy, distributed
// epochs, tag walkers, and one OMC per memory-controller partition.
type NVOverlay struct {
	cfg    *sim.Config
	nvm    *mem.NVM
	dram   *mem.DRAM
	group  *omc.Group
	fe     *cst.Frontend
	clocks *sim.Clocks

	lastStoreOID uint64
}

// Option configures the NVOverlay assembly.
type Option func(*options)

type options struct {
	omcs      int
	retention bool
}

// WithOMCs sets the number of OMC address partitions (default 4, matching
// the paper's four memory controllers).
func WithOMCs(n int) Option { return func(o *options) { o.omcs = n } }

// WithRetention keeps merged epoch tables for time-travel reads (the
// debugging usage model).
func WithRetention() Option { return func(o *options) { o.retention = true } }

// New assembles NVOverlay from the machine configuration. cfg.TagWalker and
// cfg.OMCBuffer select the §IV-C walker and §IV-E buffer.
func New(cfg *sim.Config, opts ...Option) *NVOverlay {
	// cfg.OMCs sizes the OMC sharding (0 keeps the paper's four memory
	// controllers); WithOMCs still overrides for tests that pin a layout.
	o := options{omcs: 4}
	if cfg.OMCs > 0 {
		o.omcs = cfg.OMCs
	}
	for _, opt := range opts {
		opt(&o)
	}
	nvm := mem.NewNVM(cfg)
	if cfg.FaultClass != "" {
		fc, err := fault.ClassConfig(cfg.FaultClass, cfg.EffectiveFaultSeed())
		if err != nil {
			// cfg.Validate() rejects unknown classes; reaching here means
			// the caller skipped validation.
			panic(fmt.Sprintf("core: %v", err))
		}
		inj := fault.New(fc)
		inj.AttachBus(cfg.Obs)
		nvm.AttachFaults(inj)
	}
	dram := mem.NewDRAM(cfg)
	var gopts []omc.Option
	if cfg.OMCBuffer {
		gopts = append(gopts, omc.WithBuffer(cfg.OMCBufferSize))
	}
	if o.retention {
		gopts = append(gopts, omc.WithRetention())
	}
	group := omc.NewGroup(cfg, nvm, o.omcs, gopts...)
	return &NVOverlay{
		cfg:   cfg,
		nvm:   nvm,
		dram:  dram,
		group: group,
		fe:    cst.New(cfg, dram, group),
	}
}

// Name implements trace.Scheme.
func (n *NVOverlay) Name() string { return "NVOverlay" }

// Bind implements trace.Scheme.
func (n *NVOverlay) Bind(clocks *sim.Clocks) { n.clocks = clocks }

// Access implements trace.Scheme: the access runs through the versioned
// hierarchy; epoch advances stall the whole versioned domain.
func (n *NVOverlay) Access(tid int, addr uint64, write bool, data uint64) uint64 {
	now := n.clocks.Now(tid)
	res := n.fe.Access(tid, addr, write, data, now)
	n.lastStoreOID = res.StoreOID
	if res.VDStall > 0 {
		vd := n.cfg.VDOf(tid)
		n.clocks.StallGroup(vd*n.cfg.CoresPerVD, (vd+1)*n.cfg.CoresPerVD, res.VDStall)
	}
	return res.Lat
}

// LastStoreOID returns the epoch tag the version access protocol assigned
// to the most recent Access when it was a store (0 after a load). The
// differential verification harness uses it to version its golden
// shadow-memory model with exactly the epochs the hardware assigned.
func (n *NVOverlay) LastStoreOID() uint64 { return n.lastStoreOID }

// Drain implements trace.Scheme: the hierarchy flushes its versions and the
// OMCs merge every remaining epoch.
func (n *NVOverlay) Drain(now uint64) {
	n.fe.Drain(now)
	n.group.Seal(now)
}

// Stats implements trace.Scheme, merging frontend and backend counters.
func (n *NVOverlay) Stats() *stats.Set {
	s := stats.NewSet("nvoverlay")
	s.Merge(n.fe.Stats())
	s.Merge(n.group.Stats())
	s.Merge(n.nvm.Stats())
	if inj := n.nvm.Injector(); inj != nil {
		f := stats.NewSet("fault")
		for _, c := range []fault.Class{fault.Torn, fault.BitFlip, fault.BankLoss, fault.NAK, fault.NAKDrop} {
			f.Add("injected_"+c.String(), inj.Count(c))
		}
		s.Merge(f)
	}
	return s
}

// Injector returns the NVM fault injector, nil when fault injection is off.
func (n *NVOverlay) Injector() *fault.Injector { return n.nvm.Injector() }

// PowerCut cuts power at cycle now and returns the durable NVM image the
// attached fault injector leaves behind; recovery.Salvage consumes it.
func (n *NVOverlay) PowerCut(now uint64) *mem.Image { return n.nvm.PowerCut(now) }

// NVM implements trace.Scheme.
func (n *NVOverlay) NVM() *mem.NVM { return n.nvm }

// Group exposes the MNM backend (recovery, time travel, Fig 13/16 stats).
func (n *NVOverlay) Group() *omc.Group { return n.group }

// Frontend exposes the CST frontend (Fig 15 evict decomposition).
func (n *NVOverlay) Frontend() *cst.Frontend { return n.fe }

// DRAM exposes the working-memory model.
func (n *NVOverlay) DRAM() *mem.DRAM { return n.dram }

var _ trace.Scheme = (*NVOverlay)(nil)
