package core
