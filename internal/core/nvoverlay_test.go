package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func coreCfg() *sim.Config {
	cfg := sim.DefaultConfig()
	cfg.EpochSize = 4000
	return &cfg
}

func TestNVOverlayImplementsScheme(t *testing.T) {
	cfg := coreCfg()
	var s trace.Scheme = New(cfg)
	if s.Name() != "NVOverlay" {
		t.Fatal("name")
	}
	if s.NVM() == nil || s.Stats() == nil {
		t.Fatal("accessors nil")
	}
}

func TestNVOverlayOptions(t *testing.T) {
	cfg := coreCfg()
	cfg.OMCBuffer = true
	n := New(cfg, WithOMCs(2), WithRetention())
	if n.Group().Size() != 2 {
		t.Fatalf("OMCs = %d", n.Group().Size())
	}
	if n.Group().OMC(0).Buffer() == nil {
		t.Fatal("buffer not enabled")
	}
	if n.Frontend() == nil || n.DRAM() == nil {
		t.Fatal("accessors nil")
	}
}

func TestNVOverlayEndToEndWorkload(t *testing.T) {
	cfg := coreCfg()
	n := New(cfg, WithOMCs(2))
	wl, err := workload.Get("hashtable")
	if err != nil {
		t.Fatal(err)
	}
	d := trace.NewDriver(cfg, n, wl, 60_000)
	sum := d.Run()
	// The driver finishes the in-flight operation, so it may slightly
	// overshoot the access budget.
	if sum.Accesses < 60_000 || sum.Accesses > 61_000 {
		t.Fatalf("accesses = %d", sum.Accesses)
	}
	if sum.DataBytes == 0 {
		t.Fatal("no snapshot data persisted")
	}
	if sum.MetaBytes == 0 {
		t.Fatal("no master-table metadata persisted")
	}
	// After the drain the recovered image equals the final write state.
	img, _ := n.Group().RecoverImage()
	if len(img) != len(sum.Final) {
		t.Fatalf("image %d lines, final %d", len(img), len(sum.Final))
	}
	for addr, want := range sum.Final {
		if img[addr] != want {
			t.Fatalf("addr %#x = %d, want %d", addr, img[addr], want)
		}
	}
	// Mid-run epochs advanced and merged.
	if n.Stats().Get("epoch_advances") == 0 {
		t.Fatal("no epoch advances")
	}
	if n.Stats().Get("epochs_merged") == 0 {
		t.Fatal("no merges")
	}
}

func TestNVOverlayVDStallOnAdvance(t *testing.T) {
	cfg := coreCfg()
	cfg.EpochSize = 4 // per-VD threshold of 4 stores
	n := New(cfg)
	clocks := sim.NewClocks(cfg.Cores)
	n.Bind(clocks)
	for i := 0; i < 4; i++ {
		lat := n.Access(0, uint64(i*64), true, uint64(i))
		clocks.Advance(0, lat)
	}
	// The boundary stalled the whole VD: the sibling core's clock moved
	// even though it never issued an access.
	if clocks.Now(1) == 0 {
		t.Fatal("sibling core not stalled by the VD epoch advance")
	}
	if clocks.Now(2) != 0 {
		t.Fatal("foreign VD stalled")
	}
}
