package fault

import (
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
)

// MemFS is an in-memory FS that models exactly the durability semantics the
// store's manifest discipline depends on, so a "crash" can be simulated
// in-process with syscall precision:
//
//   - a file's content has a durable prefix (what fsync has promised) and a
//     volatile rest (page cache); Sync promotes volatile to durable;
//   - a directory's entry table likewise has a current view (what the
//     process sees) and a durable view (what survives power loss); Create,
//     Rename and Remove mutate the current view immediately, and only
//     SyncDir promotes the directory's current entries to durable;
//   - Crash throws away everything volatile: the namespace reverts to the
//     durable entry view and every file's content reverts to its durable
//     prefix — the precise discard a kill -9 plus power loss performs.
//
// MemFS itself never injects errors; wrap it in a FaultFS for that. It is
// not safe for concurrent use: each sweep cell owns its own instance.
type MemFS struct {
	cur  map[string]*memFile // current namespace: cleaned path -> file
	dur  map[string]*memFile // durable namespace (what a crash keeps)
	dirs map[string]bool     // existing directories, cleaned paths
}

// memFile is one file's content: data is the current bytes, durable the
// fsync-promised prefix snapshot.
type memFile struct {
	data    []byte
	durable []byte
	// gated: a failed fsync dropped the dirty bytes (fsyncgate); kept so
	// tests can assert the state was entered.
	gated bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		cur:  make(map[string]*memFile),
		dur:  make(map[string]*memFile),
		dirs: map[string]bool{".": true, "/": true},
	}
}

func pathErr(op, name string, err error) error {
	return &fs.PathError{Op: op, Path: name, Err: err}
}

func (m *MemFS) clean(name string) string { return filepath.Clean(name) }

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	name = m.clean(name)
	f, ok := m.cur[name]
	if !ok {
		return nil, pathErr("open", name, fs.ErrNotExist)
	}
	return &memHandle{f: f, path: name}, nil
}

// Create implements FS: the new entry exists in the current namespace at
// once, but survives a crash only after the parent directory is synced; the
// replaced file's durable content survives until then.
func (m *MemFS) Create(name string) (File, error) {
	name = m.clean(name)
	if !m.dirs[dirOf(name)] {
		return nil, pathErr("create", name, fs.ErrNotExist)
	}
	f := &memFile{}
	m.cur[name] = f
	return &memHandle{f: f, path: name, writable: true}, nil
}

// CreateExcl implements FS.
func (m *MemFS) CreateExcl(name string) (File, error) {
	name = m.clean(name)
	if _, ok := m.cur[name]; ok {
		return nil, pathErr("create", name, fs.ErrExist)
	}
	return m.Create(name)
}

// Rename implements FS: current namespace changes at once (atomically
// replacing any target), durable namespace only at the next SyncDir.
func (m *MemFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = m.clean(oldpath), m.clean(newpath)
	f, ok := m.cur[oldpath]
	if !ok {
		return pathErr("rename", oldpath, fs.ErrNotExist)
	}
	if !m.dirs[dirOf(newpath)] {
		return pathErr("rename", newpath, fs.ErrNotExist)
	}
	delete(m.cur, oldpath)
	m.cur[newpath] = f
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	name = m.clean(name)
	if _, ok := m.cur[name]; !ok {
		return pathErr("remove", name, fs.ErrNotExist)
	}
	delete(m.cur, name)
	return nil
}

// ReadDir implements FS: sorted base names of dir's current entries.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	dir = m.clean(dir)
	if !m.dirs[dir] {
		return nil, pathErr("readdir", dir, fs.ErrNotExist)
	}
	var names []string
	for p := range m.cur {
		if dirOf(p) == dir {
			names = append(names, filepath.Base(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	name = m.clean(name)
	f, ok := m.cur[name]
	if !ok {
		return nil, pathErr("readfile", name, fs.ErrNotExist)
	}
	return append([]byte(nil), f.data...), nil
}

// MkdirAll implements FS. Directory entries for directories themselves are
// modelled as immediately durable: the store only ever creates its root
// once, before any durability claim.
func (m *MemFS) MkdirAll(dir string) error {
	dir = m.clean(dir)
	for d := dir; !m.dirs[d]; d = dirOf(d) {
		m.dirs[d] = true
		if d == dirOf(d) {
			break
		}
	}
	return nil
}

// SyncDir implements FS: dir's current entry table becomes the durable one —
// entries created, renamed in, renamed away and removed are all promoted.
func (m *MemFS) SyncDir(dir string) error {
	dir = m.clean(dir)
	if !m.dirs[dir] {
		return pathErr("syncdir", dir, fs.ErrNotExist)
	}
	var durable []string
	for p := range m.dur {
		durable = append(durable, p)
	}
	sort.Strings(durable)
	for _, p := range durable {
		if dirOf(p) != dir {
			continue
		}
		if _, ok := m.cur[p]; !ok {
			delete(m.dur, p) // entry removed/renamed away since the last sync
		}
	}
	var live []string
	for p := range m.cur {
		if dirOf(p) == dir {
			live = append(live, p)
		}
	}
	sort.Strings(live)
	for _, p := range live {
		m.dur[p] = m.cur[p]
	}
	return nil
}

// Crash discards everything volatile, exactly as power loss would: the
// namespace reverts to the durable entry view, and every file's content
// reverts to its durable (fsynced) prefix. The filesystem stays usable
// afterwards — a cold salvage reads the surviving state.
func (m *MemFS) Crash() {
	var keep []string
	for p := range m.dur {
		keep = append(keep, p)
	}
	sort.Strings(keep)
	next := make(map[string]*memFile, len(keep))
	for _, p := range keep {
		f := m.dur[p]
		f.data = append([]byte(nil), f.durable...)
		f.gated = false
		next[p] = f
	}
	m.cur = next
}

// DurableNames lists the durable namespace, sorted — what a crash right now
// would keep. Tests use it to assert entry-durability semantics.
func (m *MemFS) DurableNames() []string {
	var names []string
	for p := range m.dur {
		names = append(names, p)
	}
	sort.Strings(names)
	return names
}

// memHandle is an open MemFS file: reads walk the current content, writes
// append volatile bytes.
type memHandle struct {
	f        *memFile
	path     string
	off      int
	writable bool
	closed   bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	if h.closed {
		return 0, pathErr("read", h.path, fs.ErrClosed)
	}
	if h.off >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	if h.closed {
		return 0, pathErr("write", h.path, fs.ErrClosed)
	}
	if !h.writable {
		return 0, pathErr("write", h.path, fmt.Errorf("read-only handle"))
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

// Sync promotes the file's current content to durable.
func (h *memHandle) Sync() error {
	if h.closed {
		return pathErr("sync", h.path, fs.ErrClosed)
	}
	h.f.durable = append(h.f.durable[:0], h.f.data...)
	return nil
}

// DropUnsynced implements the fsyncgate content loss: the kernel marked the
// dirty pages clean without writing them, so the volatile bytes are gone —
// reads after the failed fsync see only the durable prefix. FaultFS calls
// this when it injects a Sync failure.
func (h *memHandle) DropUnsynced() {
	h.f.data = append(h.f.data[:0], h.f.durable...)
	h.f.gated = true
}

func (h *memHandle) Close() error {
	if h.closed {
		return pathErr("close", h.path, fs.ErrClosed)
	}
	h.closed = true
	return nil
}
