package fault

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/sim"
)

// FaultFS is the disk-level fault injector: an FS decorator that draws
// deterministic error schedules from a seeded PRNG, in the same design
// language as the NVM Injector above. It models the failure classes the
// fsyncgate literature and crash-consistency testing call out for real
// filesystems:
//
//   - short writes at 8-byte granularity: only a word-aligned prefix of a
//     Write reaches the file, and the caller gets a transient error to
//     resume from (retrying the remainder is correct);
//   - transient and permanent EIO on any mutating syscall;
//   - ENOSPC on writes and creates (always permanent: the device does not
//     grow space back mid-run);
//   - fsyncgate: an injected Sync failure drops the file's
//     buffered-but-unsynced bytes, and a retried Sync succeeds without
//     re-reporting the error — the data is simply gone (the trap that makes
//     treating fsync as retryable a silent-corruption bug);
//   - a crash cut point: at the Nth mutating syscall the filesystem loses
//     power — the inner FS (a MemFS) discards everything unsynced and every
//     later operation fails with ErrCrashed.
//
// Every draw is recorded as an ordered DiskEvent; Schedule() renders the
// canonical, byte-stable schedule so a cell's fault history replays
// byte-for-byte from (config, seed).
//
// Typed sentinels. *DiskError wraps exactly one of these:
var (
	// ErrDiskIO: an injected EIO.
	ErrDiskIO = errors.New("injected disk I/O error")
	// ErrNoSpace: an injected ENOSPC.
	ErrNoSpace = errors.New("injected device full")
	// ErrCrashed: the filesystem hit its crash cut point; all state not
	// fsynced before the cut is gone and every further call fails.
	ErrCrashed = errors.New("filesystem crashed at injected cut point")
)

// DiskClass enumerates the injectable disk-fault classes.
type DiskClass uint8

const (
	// DiskShortWrite persists only an 8-byte-aligned prefix of a Write.
	DiskShortWrite DiskClass = iota
	// DiskEIO is an I/O error on a mutating syscall (transient or
	// permanent per draw).
	DiskEIO
	// DiskENOSPC is out-of-space on a write or create (permanent).
	DiskENOSPC
	// DiskSyncFail is a failed fsync with fsyncgate semantics.
	DiskSyncFail
	// DiskCrash is the crash cut point firing.
	DiskCrash
)

// String returns the schedule/class name.
func (c DiskClass) String() string {
	switch c {
	case DiskShortWrite:
		return "shortwrite"
	case DiskEIO:
		return "eio"
	case DiskENOSPC:
		return "enospc"
	case DiskSyncFail:
		return "fsyncgate"
	case DiskCrash:
		return "crash"
	default:
		return fmt.Sprintf("diskclass%d", int(c))
	}
}

// DiskClasses lists the named disk-fault regimes understood by
// DiskClassConfig, in the order the sweep grids iterate them.
var DiskClasses = []string{"crash", "shortwrite", "eio", "enospc", "fsyncgate"}

// ValidDiskClass reports whether name is a known disk-fault regime
// ("" = crash cut only, no error injection).
func ValidDiskClass(name string) bool {
	switch name {
	case "", "crash", "shortwrite", "eio", "enospc", "fsyncgate", "all":
		return true
	}
	return false
}

// DiskError is one injected disk fault, carried inside the error chain so
// policy layers can classify it. Transient errors are safe to retry;
// everything else is final.
type DiskError struct {
	Op    string // "write", "sync", "create", "rename", ...
	Path  string
	Class DiskClass
	// Transient marks a fault that a bounded retry may clear.
	Transient bool
	// OpIndex is the 1-based mutating-syscall ordinal the fault fired at.
	OpIndex int
}

// Error implements error.
func (e *DiskError) Error() string {
	t := "permanent"
	if e.Transient {
		t = "transient"
	}
	return fmt.Sprintf("fault: %s %s on %s %s (op %d): %v", t, e.Class, e.Op, e.Path, e.OpIndex, e.Unwrap())
}

// Unwrap maps the class onto its sentinel.
func (e *DiskError) Unwrap() error {
	switch e.Class {
	case DiskENOSPC:
		return ErrNoSpace
	case DiskCrash:
		return ErrCrashed
	default:
		return ErrDiskIO
	}
}

// IsTransient reports whether err is an injected fault that a bounded retry
// may clear. Real-OS errors are never transient: the policy layer has no
// way to know, and assuming permanence is the safe direction.
func IsTransient(err error) bool {
	var de *DiskError
	return errors.As(err, &de) && de.Transient
}

// IsDiskFault reports whether err originates from a FaultFS injection.
func IsDiskFault(err error) bool {
	var de *DiskError
	return errors.As(err, &de)
}

// DiskConfig selects disk-fault probabilities. The zero value injects
// nothing (CrashAt 0 = never crash).
type DiskConfig struct {
	Seed int64
	// ShortPer100 is the per-Write probability (percent) of an 8-byte
	// granularity short write (transient).
	ShortPer100 int
	// EIOPer100 is the per-mutating-syscall probability (percent) of EIO.
	EIOPer100 int
	// PermPer100 is, given an EIO fired on a write-class op, the
	// probability (percent) it is permanent rather than transient.
	// EIO on Sync is always permanent (fsync failure is final).
	PermPer100 int
	// NoSpacePer100 is the per-write/create probability (percent) of
	// ENOSPC (always permanent).
	NoSpacePer100 int
	// SyncFailPer100 is the per-Sync probability (percent) of an fsyncgate
	// failure: unsynced bytes dropped, error not re-reported on retry.
	SyncFailPer100 int
	// CrashAt, when positive, crashes the filesystem at the CrashAt-th
	// mutating syscall: the inner FS reverts to its durable state and all
	// further calls fail with ErrCrashed.
	CrashAt int
}

// Enabled reports whether any fault can fire.
func (c DiskConfig) Enabled() bool {
	return c.ShortPer100 > 0 || c.EIOPer100 > 0 || c.NoSpacePer100 > 0 ||
		c.SyncFailPer100 > 0 || c.CrashAt > 0
}

// DiskClassConfig returns the preset configuration of a named disk-fault
// regime. Rates are tuned so a soak-shaped run (~150 mutating syscalls)
// sees faults on most runs while still regularly surviving long enough to
// make epochs durable first — the sweep needs cells in every outcome
// (clean restore, wounded-but-salvageable, refusal), not a wall of
// first-syscall woundings.
func DiskClassConfig(name string, seed int64) (DiskConfig, error) {
	c := DiskConfig{Seed: seed}
	switch name {
	case "", "crash":
		// No error injection: the crash cut point is the only fault. The
		// pure power-loss baseline — every cut must restore exactly.
	case "shortwrite":
		c.ShortPer100 = 35
	case "eio":
		c.EIOPer100 = 4
		c.PermPer100 = 25
	case "enospc":
		c.NoSpacePer100 = 2
	case "fsyncgate":
		c.SyncFailPer100 = 6
	case "all":
		c.ShortPer100 = 15
		c.EIOPer100 = 2
		c.PermPer100 = 25
		c.NoSpacePer100 = 1
		c.SyncFailPer100 = 3
	default:
		return DiskConfig{}, fmt.Errorf("fault: unknown disk fault class %q (crash, shortwrite, eio, enospc, fsyncgate, all)", name)
	}
	return c, nil
}

// DiskEvent is one injected disk fault, in injection order.
type DiskEvent struct {
	OpIndex int // 1-based mutating-syscall ordinal
	Op      string
	Path    string // base name; directories keep their full cleaned path
	Class   DiskClass
	// Arg is class-specific: bytes kept (short write), 1 = permanent /
	// 0 = transient (EIO), unsynced bytes dropped (fsyncgate).
	Arg uint64
}

// String renders the event in the canonical schedule form.
func (e DiskEvent) String() string {
	return fmt.Sprintf("op=%d %s %s %s arg=%d", e.OpIndex, e.Class, e.Op, e.Path, e.Arg)
}

// Crasher is the optional inner-FS hook FaultFS uses at its crash cut
// point; MemFS implements it.
type Crasher interface{ Crash() }

// syncDropper is the optional handle hook for fsyncgate content loss;
// MemFS handles implement it.
type syncDropper interface{ DropUnsynced() }

// FaultFS decorates an inner FS with the deterministic fault schedule.
type FaultFS struct {
	inner   FS
	cfg     DiskConfig
	rng     *sim.RNG
	ops     int // mutating syscalls seen
	crashed bool
	events  []DiskEvent
	stat    map[DiskClass]int64
}

// NewFaultFS wraps inner with a seeded disk-fault schedule. For crash cut
// points to discard unsynced state, inner must implement Crasher (MemFS);
// other inners still get the error schedule.
func NewFaultFS(inner FS, cfg DiskConfig) *FaultFS {
	return &FaultFS{
		inner: inner,
		cfg:   cfg,
		rng:   sim.NewRNG(cfg.Seed),
		stat:  make(map[DiskClass]int64),
	}
}

// Inner returns the wrapped filesystem (post-crash salvage reads it
// directly, the way a fresh process would).
func (f *FaultFS) Inner() FS { return f.inner }

// Crashed reports whether the crash cut point has fired.
func (f *FaultFS) Crashed() bool { return f.crashed }

// Ops returns the number of mutating syscalls observed so far — the axis
// crash cut points are expressed on.
func (f *FaultFS) Ops() int { return f.ops }

// Events returns the injected faults so far, in order.
func (f *FaultFS) Events() []DiskEvent { return f.events }

// Count returns how many events of the class fired.
func (f *FaultFS) Count(c DiskClass) int64 { return f.stat[c] }

// Schedule renders the full disk-fault schedule in a canonical, byte-stable
// form; replays of the same (inner ops, config) produce identical strings.
func (f *FaultFS) Schedule() string {
	var b strings.Builder
	for i, e := range f.events {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.String())
	}
	return b.String()
}

func (f *FaultFS) record(op, path string, class DiskClass, arg uint64) {
	f.events = append(f.events, DiskEvent{OpIndex: f.ops, Op: op, Path: path, Class: class, Arg: arg})
	f.stat[class]++
}

// evName reduces a path to its stable schedule spelling: the base name
// (store files are all in one directory; temp-dir prefixes would break
// byte-identical replay across runs).
func evName(path string) string { return filepath.Base(filepath.Clean(path)) }

// mutate gates one mutating syscall: bumps the op counter and fires the
// crash cut when it is reached. It returns a non-nil error when the call
// must fail without touching the inner FS.
func (f *FaultFS) mutate(op, path string) error {
	if f.crashed {
		return &DiskError{Op: op, Path: evName(path), Class: DiskCrash, OpIndex: f.ops}
	}
	f.ops++
	if f.cfg.CrashAt > 0 && f.ops >= f.cfg.CrashAt {
		f.crashed = true
		f.record(op, evName(path), DiskCrash, 0)
		if c, ok := f.inner.(Crasher); ok {
			c.Crash()
		}
		return &DiskError{Op: op, Path: evName(path), Class: DiskCrash, OpIndex: f.ops}
	}
	return nil
}

// draw returns whether a per100-percent fault fires.
func (f *FaultFS) draw(per100 int) bool {
	return per100 > 0 && f.rng.Intn(100) < per100
}

// injectOp draws the EIO/ENOSPC schedule for a non-write mutating syscall.
// allowNoSpace selects ops that allocate (create).
func (f *FaultFS) injectOp(op, path string, allowNoSpace bool) error {
	if allowNoSpace && f.draw(f.cfg.NoSpacePer100) {
		f.record(op, evName(path), DiskENOSPC, 0)
		return &DiskError{Op: op, Path: evName(path), Class: DiskENOSPC, OpIndex: f.ops}
	}
	if f.draw(f.cfg.EIOPer100) {
		perm := f.draw(f.cfg.PermPer100)
		arg := uint64(0)
		if perm {
			arg = 1
		}
		f.record(op, evName(path), DiskEIO, arg)
		return &DiskError{Op: op, Path: evName(path), Class: DiskEIO, Transient: !perm, OpIndex: f.ops}
	}
	return nil
}

// readGate fails read-path calls after the crash cut (a crashed machine
// serves nothing; salvage reopens the inner FS cold).
func (f *FaultFS) readGate(op, path string) error {
	if f.crashed {
		return &DiskError{Op: op, Path: evName(path), Class: DiskCrash, OpIndex: f.ops}
	}
	return nil
}

// Open implements FS (read path: no injection beyond the crash gate).
func (f *FaultFS) Open(name string) (File, error) {
	if err := f.readGate("open", name); err != nil {
		return nil, err
	}
	h, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: h, path: name}, nil
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if err := f.mutate("create", name); err != nil {
		return nil, err
	}
	if err := f.injectOp("create", name, true); err != nil {
		return nil, err
	}
	h, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: h, path: name}, nil
}

// CreateExcl implements FS.
func (f *FaultFS) CreateExcl(name string) (File, error) {
	if err := f.mutate("create", name); err != nil {
		return nil, err
	}
	if err := f.injectOp("create", name, true); err != nil {
		return nil, err
	}
	h, err := f.inner.CreateExcl(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: h, path: name}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.mutate("rename", newpath); err != nil {
		return err
	}
	if err := f.injectOp("rename", newpath, false); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.mutate("remove", name); err != nil {
		return err
	}
	if err := f.injectOp("remove", name, false); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// ReadDir implements FS (read path).
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err := f.readGate("readdir", dir); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

// ReadFile implements FS (read path).
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.readGate("readfile", name); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

// MkdirAll implements FS. Directory creation happens once, before any
// durability claim, so it is gated but not error-injected.
func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.mutate("mkdir", dir); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

// SyncDir implements FS. A failed directory fsync is always permanent:
// like fsync, there is no sound way to retry it.
func (f *FaultFS) SyncDir(dir string) error {
	if err := f.mutate("syncdir", dir); err != nil {
		return err
	}
	if f.draw(f.cfg.SyncFailPer100) {
		f.record("syncdir", filepath.Clean(dir), DiskSyncFail, 0)
		return &DiskError{Op: "syncdir", Path: filepath.Clean(dir), Class: DiskSyncFail, OpIndex: f.ops}
	}
	if f.draw(f.cfg.EIOPer100) {
		f.record("syncdir", filepath.Clean(dir), DiskEIO, 1)
		return &DiskError{Op: "syncdir", Path: filepath.Clean(dir), Class: DiskEIO, OpIndex: f.ops}
	}
	return f.inner.SyncDir(dir)
}

// faultFile decorates an inner handle with the write/sync fault schedule.
type faultFile struct {
	fs   *FaultFS
	f    File
	path string
	// gated: a Sync already failed on this handle; fsyncgate semantics say
	// later Syncs succeed silently and the dropped bytes stay dropped.
	gated bool
}

func (h *faultFile) Read(p []byte) (int, error) {
	if err := h.fs.readGate("read", h.path); err != nil {
		return 0, err
	}
	return h.f.Read(p)
}

// Write draws, in order: crash cut, ENOSPC, EIO, short write. A short
// write persists an 8-byte-aligned prefix and reports a transient error,
// so a resuming retry of the remainder is both possible and exercised.
func (h *faultFile) Write(p []byte) (int, error) {
	if err := h.fs.mutate("write", h.path); err != nil {
		return 0, err
	}
	name := evName(h.path)
	if h.fs.draw(h.fs.cfg.NoSpacePer100) {
		h.fs.record("write", name, DiskENOSPC, 0)
		return 0, &DiskError{Op: "write", Path: name, Class: DiskENOSPC, OpIndex: h.fs.ops}
	}
	if h.fs.draw(h.fs.cfg.EIOPer100) {
		perm := h.fs.draw(h.fs.cfg.PermPer100)
		arg := uint64(0)
		if perm {
			arg = 1
		}
		h.fs.record("write", name, DiskEIO, arg)
		return 0, &DiskError{Op: "write", Path: name, Class: DiskEIO, Transient: !perm, OpIndex: h.fs.ops}
	}
	if len(p) >= 16 && h.fs.draw(h.fs.cfg.ShortPer100) {
		keep := 8 * h.fs.rng.Intn(len(p)/8) // 0..len-8: at least one word is lost
		h.fs.record("write", name, DiskShortWrite, uint64(keep))
		n, err := h.f.Write(p[:keep])
		if err != nil {
			return n, err
		}
		return keep, &DiskError{Op: "write", Path: name, Class: DiskShortWrite, Transient: true, OpIndex: h.fs.ops}
	}
	return h.f.Write(p)
}

// Sync draws the fsyncgate schedule: on an injected failure the handle's
// unsynced bytes are dropped from the inner file and the handle is gated —
// every later Sync succeeds without re-reporting, exactly the trap that
// makes "retry the fsync" a silent-corruption bug.
func (h *faultFile) Sync() error {
	if err := h.fs.mutate("sync", h.path); err != nil {
		return err
	}
	if h.gated {
		// fsyncgate: the kernel marked the pages clean at the failed sync;
		// there is nothing left to write and no error left to report.
		return nil
	}
	name := evName(h.path)
	if h.fs.draw(h.fs.cfg.SyncFailPer100) {
		h.gated = true
		if d, ok := h.f.(syncDropper); ok {
			d.DropUnsynced()
		}
		h.fs.record("sync", name, DiskSyncFail, 0)
		return &DiskError{Op: "sync", Path: name, Class: DiskSyncFail, OpIndex: h.fs.ops}
	}
	if h.fs.draw(h.fs.cfg.EIOPer100) {
		// EIO on fsync is always permanent: the caller cannot know what the
		// kernel did with the dirty pages (fsyncgate's lesson).
		h.fs.record("sync", name, DiskEIO, 1)
		return &DiskError{Op: "sync", Path: name, Class: DiskEIO, OpIndex: h.fs.ops}
	}
	return h.f.Sync()
}

func (h *faultFile) Close() error {
	if h.fs.crashed {
		return &DiskError{Op: "close", Path: evName(h.path), Class: DiskCrash, OpIndex: h.fs.ops}
	}
	return h.f.Close()
}
