package fault

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// The VFS seam under the durable plane. The file-backed store (mem.FilePlane,
// mem.LoadDir, recovery.SalvageDir) performs every filesystem operation
// through this interface, so the same write-seal-salvage code runs over the
// real OS (OSFS), an in-memory crash-modelling filesystem (MemFS), or the
// deterministic disk-error injector (FaultFS) — the disk-level analogue of
// the NVM injector above.
//
// The interface is deliberately tiny: exactly the syscalls the store's
// manifest discipline is built from. Durability semantics follow POSIX:
// Write buffers, Sync makes a file's content durable under its current name,
// Rename atomically replaces the target entry, and a rename is not itself
// durable until the parent directory is fsynced (SyncDir).

// File is one open file of an FS. Writes are sequential appends from the
// store's point of view; Sync is fsync.
type File interface {
	io.Reader
	io.Writer
	// Sync makes everything written so far durable (fsync). Implementations
	// follow fsync semantics, including the fsyncgate trap: after a failed
	// Sync the dirty bytes may be gone and a retry may falsely succeed —
	// callers must treat a Sync error as final for this file.
	Sync() error
	Close() error
}

// FS is the filesystem seam. Paths are ordinary slash-joined paths as
// produced by path/filepath.Join.
type FS interface {
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Create creates or truncates name for writing (O_CREATE|O_TRUNC).
	Create(name string) (File, error)
	// CreateExcl creates name for writing, failing with fs.ErrExist if it
	// already exists (O_CREATE|O_EXCL).
	CreateExcl(name string) (File, error)
	// Rename atomically renames oldpath to newpath, replacing any existing
	// target entry. Durability of the rename requires SyncDir on the parent.
	Rename(oldpath, newpath string) error
	// Remove unlinks a file.
	Remove(name string) error
	// ReadDir lists the base names of dir's entries in sorted order.
	ReadDir(dir string) ([]string, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs a directory so renames and entry creations inside it
	// are durable.
	SyncDir(dir string) error
}

// OS is the passthrough filesystem: every call maps 1:1 onto the os package.
// The production store runs over it; it carries no state.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (osFS) CreateExcl(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names) // os.ReadDir sorts already; make the contract explicit
	return names, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir fsyncs a directory so a rename inside it is durable.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // the sync error is the one worth reporting
		return err
	}
	return d.Close()
}

// dirOf returns the parent directory of a cleaned path.
func dirOf(name string) string { return filepath.Dir(filepath.Clean(name)) }
