package fault

import (
	"errors"
	"io"
	"io/fs"
	"path/filepath"
	"reflect"
	"testing"
)

func writeAll(t *testing.T, f File, p []byte) {
	t.Helper()
	if _, err := f.Write(p); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func readAll(t *testing.T, fsys FS, name string) []byte {
	t.Helper()
	b, err := fsys.ReadFile(name)
	if err != nil {
		t.Fatalf("readfile %s: %v", name, err)
	}
	return b
}

// TestOSFSRoundTrip drives the passthrough FS through the manifest idiom:
// create temp, write, sync, rename over target, sync dir, read back.
func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "MANIFEST.tmp")
	final := filepath.Join(dir, "MANIFEST")

	f, err := OS.Create(tmp)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	writeAll(t, f, []byte("hello manifest"))
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := OS.Rename(tmp, final); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatalf("syncdir: %v", err)
	}
	if got := string(readAll(t, OS, final)); got != "hello manifest" {
		t.Fatalf("content = %q", got)
	}
	names, err := OS.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	if !reflect.DeepEqual(names, []string{"MANIFEST"}) {
		t.Fatalf("readdir = %v", names)
	}
	if _, err := OS.CreateExcl(final); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("createexcl over existing = %v, want ErrExist", err)
	}
}

// TestMemFSContentDurability: Sync promotes content; Crash reverts to the
// synced prefix.
func TestMemFSContentDurability(t *testing.T) {
	m := NewMemFS()
	f, err := m.Create("a.log")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	writeAll(t, f, []byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	writeAll(t, f, []byte("+volatile"))
	if err := m.SyncDir("."); err != nil {
		t.Fatalf("syncdir: %v", err)
	}
	if got := string(readAll(t, m, "a.log")); got != "durable+volatile" {
		t.Fatalf("pre-crash content = %q", got)
	}
	m.Crash()
	if got := string(readAll(t, m, "a.log")); got != "durable" {
		t.Fatalf("post-crash content = %q, want synced prefix only", got)
	}
}

// TestMemFSEntryDurability: file content can be fully synced, but the entry
// itself vanishes at a crash if the parent directory was never synced.
func TestMemFSEntryDurability(t *testing.T) {
	m := NewMemFS()
	f, _ := m.Create("a.log")
	writeAll(t, f, []byte("x"))
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if len(m.DurableNames()) != 0 {
		t.Fatalf("entry durable before SyncDir: %v", m.DurableNames())
	}
	m.Crash()
	if _, err := m.ReadFile("a.log"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("unsynced-dir entry survived crash: %v", err)
	}
}

// TestMemFSRenameAtomicity: before SyncDir a crash keeps the *old* target
// content; after SyncDir it keeps the new one. Never a mix.
func TestMemFSRenameAtomicity(t *testing.T) {
	mk := func() *MemFS {
		m := NewMemFS()
		old, _ := m.Create("MANIFEST")
		writeAll(t, old, []byte("v1"))
		if err := old.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
		if err := m.SyncDir("."); err != nil {
			t.Fatalf("syncdir: %v", err)
		}
		tmp, _ := m.Create("MANIFEST.tmp")
		writeAll(t, tmp, []byte("v2"))
		if err := tmp.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
		if err := m.Rename("MANIFEST.tmp", "MANIFEST"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		return m
	}

	m := mk()
	m.Crash() // rename not yet durable
	if got := string(readAll(t, m, "MANIFEST")); got != "v1" {
		t.Fatalf("pre-syncdir crash kept %q, want old v1", got)
	}

	m = mk()
	if err := m.SyncDir("."); err != nil {
		t.Fatalf("syncdir: %v", err)
	}
	m.Crash()
	if got := string(readAll(t, m, "MANIFEST")); got != "v2" {
		t.Fatalf("post-syncdir crash kept %q, want new v2", got)
	}
	if _, err := m.ReadFile("MANIFEST.tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("rename source survived: %v", err)
	}
}

// TestMemFSRemoveDurability: a Remove is durable only after SyncDir.
func TestMemFSRemoveDurability(t *testing.T) {
	m := NewMemFS()
	f, _ := m.Create("a.log")
	writeAll(t, f, []byte("x"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("a.log"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.ReadFile("a.log"); err != nil {
		t.Fatalf("unsynced remove lost the file: %v", err)
	}
	if err := m.Remove("a.log"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.ReadFile("a.log"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("synced remove resurrected the file: %v", err)
	}
}

// TestFaultFSCrashCut: at the configured mutating-syscall ordinal the
// filesystem reverts to durable state and every further op fails typed.
func TestFaultFSCrashCut(t *testing.T) {
	m := NewMemFS()
	ff := NewFaultFS(m, DiskConfig{CrashAt: 3})
	f, err := ff.Create("a.log") // op 1
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Write(make([]byte, 8)); err != nil { // op 2
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) { // op 3 → crash
		t.Fatalf("sync at cut = %v, want ErrCrashed", err)
	}
	if !ff.Crashed() {
		t.Fatal("Crashed() false after cut")
	}
	if _, err := ff.Create("b.log"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create = %v, want ErrCrashed", err)
	}
	if _, err := ff.ReadFile("a.log"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read through FaultFS = %v, want ErrCrashed", err)
	}
	// The inner FS carries the post-crash durable truth: nothing was synced,
	// so nothing survives.
	if _, err := m.ReadFile("a.log"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("unsynced file survived crash: %v", err)
	}
}

// TestFaultFSFsyncgate: an injected Sync failure drops the unsynced bytes
// and the retried Sync falsely succeeds without promoting anything.
func TestFaultFSFsyncgate(t *testing.T) {
	m := NewMemFS()
	ff := NewFaultFS(m, DiskConfig{Seed: 1, SyncFailPer100: 100})
	f, err := ff.Create("a.log")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	writeAll(t, f, []byte("doomed bytes"))
	err = f.Sync()
	if !errors.Is(err, ErrDiskIO) || !IsDiskFault(err) {
		t.Fatalf("first sync = %v, want injected disk fault", err)
	}
	var de *DiskError
	if !errors.As(err, &de) || de.Class != DiskSyncFail {
		t.Fatalf("class = %v, want fsyncgate", err)
	}
	// The retry "succeeds" — and must NOT have made anything durable.
	if err := f.Sync(); err != nil {
		t.Fatalf("retried sync re-reported: %v", err)
	}
	if got := string(readAll(t, m, "a.log")); got != "" {
		t.Fatalf("content after fsyncgate = %q, want dropped", got)
	}
	if ff.Count(DiskSyncFail) != 1 {
		t.Fatalf("syncfail count = %d", ff.Count(DiskSyncFail))
	}
}

// TestFaultFSShortWrite: a short write persists an 8-byte-aligned prefix,
// reports a transient error, and a resuming retry completes the content.
func TestFaultFSShortWrite(t *testing.T) {
	m := NewMemFS()
	ff := NewFaultFS(m, DiskConfig{Seed: 7, ShortPer100: 100})
	f, err := ff.Create("a.log")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i)
	}
	off := 0
	for off < len(buf) {
		n, err := f.Write(buf[off:])
		off += n
		if err == nil {
			continue
		}
		if !IsTransient(err) {
			t.Fatalf("short write reported non-transient: %v", err)
		}
		if n%8 != 0 {
			t.Fatalf("short write kept %d bytes, not word-aligned", n)
		}
	}
	got, err := m.ReadFile("a.log")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, buf) {
		t.Fatalf("resumed content mismatch: %v", got)
	}
	if ff.Count(DiskShortWrite) == 0 {
		t.Fatal("no short writes fired at 100%")
	}
}

// TestFaultFSScheduleReplay: same (config, seed, op sequence) → byte-identical
// schedule; different seed → different schedule.
func TestFaultFSScheduleReplay(t *testing.T) {
	run := func(seed int64) string {
		cfg, err := DiskClassConfig("all", seed)
		if err != nil {
			t.Fatal(err)
		}
		ff := NewFaultFS(NewMemFS(), cfg)
		for i := 0; i < 40; i++ {
			f, err := ff.Create("f.log")
			if err != nil {
				continue
			}
			_, _ = f.Write(make([]byte, 32))
			_ = f.Sync()
			_ = f.Close()
			_ = ff.SyncDir(".")
		}
		return ff.Schedule()
	}
	a, b := run(3), run(3)
	if a != b {
		t.Fatalf("replay diverged:\n%s\n----\n%s", a, b)
	}
	if a == "" {
		t.Fatal("aggressive preset injected nothing over 160 ops")
	}
	if c := run(4); c == a {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestDiskClassConfig: every advertised class parses, unknowns refuse.
func TestDiskClassConfig(t *testing.T) {
	for _, name := range DiskClasses {
		cfg, err := DiskClassConfig(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// "crash" injects no errors by design: its only fault is the cut
		// point, which the sweep sets separately via CrashAt.
		if !cfg.Enabled() && name != "crash" {
			t.Fatalf("%s preset injects nothing", name)
		}
		if !ValidDiskClass(name) {
			t.Fatalf("%s not valid", name)
		}
	}
	if _, err := DiskClassConfig("bogus", 1); err == nil {
		t.Fatal("bogus class accepted")
	}
	if ValidDiskClass("bogus") {
		t.Fatal("bogus class valid")
	}
}

// TestDiskErrorTyping: sentinels unwrap per class; transience is carried.
func TestDiskErrorTyping(t *testing.T) {
	cases := []struct {
		e    *DiskError
		want error
	}{
		{&DiskError{Class: DiskEIO, Transient: true}, ErrDiskIO},
		{&DiskError{Class: DiskShortWrite, Transient: true}, ErrDiskIO},
		{&DiskError{Class: DiskSyncFail}, ErrDiskIO},
		{&DiskError{Class: DiskENOSPC}, ErrNoSpace},
		{&DiskError{Class: DiskCrash}, ErrCrashed},
	}
	for _, c := range cases {
		if !errors.Is(c.e, c.want) {
			t.Fatalf("%v does not unwrap to %v", c.e, c.want)
		}
		if !IsDiskFault(c.e) {
			t.Fatalf("%v not a disk fault", c.e)
		}
		if IsTransient(c.e) != c.e.Transient {
			t.Fatalf("%v transience mismatch", c.e)
		}
	}
	if IsTransient(io.ErrShortWrite) || IsDiskFault(errors.New("x")) {
		t.Fatal("real errors classified as injected")
	}
}

// TestMemHandleReadOffset: reads walk the file with a private offset.
func TestMemHandleReadOffset(t *testing.T) {
	m := NewMemFS()
	f, _ := m.Create("a.log")
	writeAll(t, f, []byte("abcdef"))
	r, err := m.Open("a.log")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(r)
	if err != nil || string(b) != "abcdef" {
		t.Fatalf("ReadAll = %q, %v", b, err)
	}
	if _, err := r.Write([]byte("x")); err == nil {
		t.Fatal("write on read-only handle succeeded")
	}
}
