// Package fault is the deterministic NVM fault-injection layer. It models
// the failure classes the hybrid-memory emulation and NVRAM-persistence
// literature calls out for real devices: torn line writes (a power cut
// persists only an 8-byte-granularity prefix of the word burst in flight),
// per-word bit flips in the persisted array, whole-bank write-queue loss
// when the ADR flush fails at power cut, and transient write NAKs that the
// device front-end retries with bounded exponential backoff.
//
// Every fault is drawn from one seeded internal/sim PRNG and recorded both
// as a stats counter and as an ordered Event list, so a run's fault
// schedule is a pure function of (trace seed, fault seed) and replays
// byte-for-byte — the property the differential harness relies on to turn
// "the image survived corruption X" into a regression test.
package fault

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Class enumerates the injectable fault classes.
type Class uint8

const (
	// Torn tears the bank's in-flight write at power cut: only a prefix
	// of its 8-byte words reaches the array.
	Torn Class = iota
	// BitFlip flips one bit of a persisted word at power cut.
	BitFlip
	// BankLoss drops a whole bank's volatile write queue at power cut
	// (the battery/ADR domain failed for that bank).
	BankLoss
	// NAK is a transient device write reject at issue time; the front-end
	// retries with bounded exponential backoff and drops the write when
	// the retry budget is exhausted.
	NAK
	// NAKDrop marks a write abandoned after the retry budget.
	NAKDrop
)

// String returns the schedule/counter name of the class.
func (c Class) String() string {
	switch c {
	case Torn:
		return "torn"
	case BitFlip:
		return "flip"
	case BankLoss:
		return "loss"
	case NAK:
		return "nak"
	case NAKDrop:
		return "nakdrop"
	default:
		return fmt.Sprintf("class%d", int(c))
	}
}

// MaxNAKRetries bounds the front-end's retry loop per write.
const MaxNAKRetries = 4

// Config selects fault probabilities. The zero value injects nothing.
type Config struct {
	Seed int64
	// NAKPer10k is the per-attempt probability (basis points) that a
	// persist is NAKed by the device.
	NAKPer10k int
	// TornPer100 is the per-bank probability (percent) that the bank's
	// last in-flight write tears at power cut.
	TornPer100 int
	// LossPer100 is the per-bank probability (percent) that the bank's
	// whole volatile write queue is lost at power cut.
	LossPer100 int
	// Flips is the number of bit flips applied to the surviving image at
	// power cut.
	Flips int
}

// Enabled reports whether any fault class can fire.
func (c Config) Enabled() bool {
	return c.NAKPer10k > 0 || c.TornPer100 > 0 || c.LossPer100 > 0 || c.Flips > 0
}

// Classes lists the named fault regimes understood by ClassConfig, in the
// order the sweep grids iterate them.
var Classes = []string{"torn", "flip", "loss", "nak"}

// ValidClass reports whether name is a known fault regime ("" = off).
func ValidClass(name string) bool {
	switch name {
	case "", "torn", "flip", "loss", "nak", "all":
		return true
	}
	return false
}

// ClassConfig returns the preset configuration of a named fault regime.
// The presets are deliberately aggressive: the harness wants faults to
// fire on nearly every power cut, not once per thousand runs.
func ClassConfig(name string, seed int64) (Config, error) {
	c := Config{Seed: seed}
	switch name {
	case "":
		// Injection off.
	case "torn":
		c.TornPer100 = 100
	case "flip":
		c.Flips = 3
	case "loss":
		c.LossPer100 = 40
	case "nak":
		c.NAKPer10k = 300
	case "all":
		c.TornPer100 = 50
		c.Flips = 1
		c.LossPer100 = 20
		c.NAKPer10k = 150
	default:
		return Config{}, fmt.Errorf("fault: unknown fault class %q (torn, flip, loss, nak, all)", name)
	}
	return c, nil
}

// Event is one injected fault, in injection order.
type Event struct {
	Class Class
	Bank  int
	Addr  uint64
	// Arg is class-specific: words kept (Torn), bit index (BitFlip),
	// queued writes dropped (BankLoss), attempt number (NAK).
	Arg uint64
}

// String renders the event in the canonical schedule form.
func (e Event) String() string {
	return fmt.Sprintf("%s bank=%d addr=%#x arg=%d", e.Class, e.Bank, e.Addr, e.Arg)
}

// Injector draws faults from a seeded PRNG and records every one.
type Injector struct {
	cfg    Config
	rng    *sim.RNG
	events []Event
	stat   map[Class]int64
	bus    *obs.Bus // nil when the run is unobserved
}

// New builds an injector for the given configuration.
func New(cfg Config) *Injector {
	return &Injector{
		cfg:  cfg,
		rng:  sim.NewRNG(cfg.Seed),
		stat: make(map[Class]int64),
	}
}

// Enabled reports whether the injector can fire at all.
func (in *Injector) Enabled() bool { return in != nil && in.cfg.Enabled() }

// AttachBus forwards every injected fault to the observability bus. The
// injector has no clock, so fault events carry cycle 0.
func (in *Injector) AttachBus(b *obs.Bus) {
	if in != nil {
		in.bus = b
	}
}

func (in *Injector) record(c Class, bank int, addr, arg uint64) {
	in.events = append(in.events, Event{Class: c, Bank: bank, Addr: addr, Arg: arg})
	in.stat[c]++
	in.bus.Emit(obs.KindFault, 0, bank, 0, addr, arg, uint64(c))
}

// NAK draws whether the given persist attempt is rejected by the device.
func (in *Injector) NAK(addr uint64, attempt int) bool {
	if in.cfg.NAKPer10k <= 0 {
		return false
	}
	if in.rng.Intn(10_000) >= in.cfg.NAKPer10k {
		return false
	}
	in.record(NAK, -1, addr, uint64(attempt))
	return true
}

// NoteNAKDrop records a write abandoned after MaxNAKRetries.
func (in *Injector) NoteNAKDrop(addr uint64) { in.record(NAKDrop, -1, addr, 0) }

// BankLost draws whether a bank's whole volatile queue (queued writes
// deep) is lost at power cut.
func (in *Injector) BankLost(bank, queued int) bool {
	if in.cfg.LossPer100 <= 0 || queued == 0 {
		return false
	}
	if in.rng.Intn(100) >= in.cfg.LossPer100 {
		return false
	}
	in.record(BankLoss, bank, 0, uint64(queued))
	return true
}

// Tear draws whether the bank's in-flight write of `words` 8-byte words
// tears at power cut, returning the persisted prefix length.
func (in *Injector) Tear(bank int, addr uint64, words int) (keep int, torn bool) {
	if in.cfg.TornPer100 <= 0 || words == 0 {
		return words, false
	}
	if in.rng.Intn(100) >= in.cfg.TornPer100 {
		return words, false
	}
	keep = in.rng.Intn(words) // 0..words-1: at least one word is lost
	in.record(Torn, bank, addr, uint64(keep))
	return keep, true
}

// FlipCount returns how many bit flips the power cut applies.
func (in *Injector) FlipCount() int { return in.cfg.Flips }

// Flip draws a flip target: an index into the (sorted) persisted word set
// and a bit position. The caller records the resolved address via NoteFlip.
func (in *Injector) Flip(nCandidates int) (idx int, bit uint) {
	return in.rng.Intn(nCandidates), uint(in.rng.Intn(64))
}

// NoteFlip records a bit flip applied to the persisted word at addr.
func (in *Injector) NoteFlip(addr uint64, bit uint) {
	in.record(BitFlip, -1, addr, uint64(bit))
}

// Events returns the faults injected so far, in order.
func (in *Injector) Events() []Event { return in.events }

// Count returns how many events of the class fired.
func (in *Injector) Count(c Class) int64 { return in.stat[c] }

// Total returns the total number of injected faults.
func (in *Injector) Total() int { return len(in.events) }

// Schedule renders the full fault schedule in a canonical, byte-stable
// form. Two runs of the same seeded trace must produce identical
// schedules; the replay tests diff this string directly.
func (in *Injector) Schedule() string {
	var b strings.Builder
	for i, e := range in.events {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.String())
	}
	return b.String()
}
