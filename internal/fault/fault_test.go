package fault

import "testing"

func TestClassConfigs(t *testing.T) {
	for _, name := range Classes {
		cfg, err := ClassConfig(name, 1)
		if err != nil {
			t.Fatalf("class %q rejected: %v", name, err)
		}
		if !cfg.Enabled() {
			t.Fatalf("class %q produced a disabled config", name)
		}
	}
	if _, err := ClassConfig("melt", 1); err == nil {
		t.Fatal("unknown class accepted")
	}
	if !ValidClass("") || !ValidClass("all") || ValidClass("melt") {
		t.Fatal("ValidClass envelope wrong")
	}
}

func TestInjectorNilSafe(t *testing.T) {
	// The device guards every draw behind Enabled(); nil and zero-config
	// injectors must both read as off.
	var inj *Injector
	if inj.Enabled() {
		t.Fatal("nil injector claims enabled")
	}
	if New(Config{Seed: 1}).Enabled() {
		t.Fatal("zero-config injector claims enabled")
	}
}

// TestInjectorDeterminism: the same seed must draw the same fault decisions
// and record the same canonical schedule, the replay contract every higher
// layer depends on.
func TestInjectorDeterminism(t *testing.T) {
	run := func() (string, int) {
		cfg, err := ClassConfig("all", 99)
		if err != nil {
			t.Fatal(err)
		}
		inj := New(cfg)
		for i := uint64(0); i < 200; i++ {
			addr := 0x1000 + i*64
			attempt := 0
			for inj.NAK(addr, attempt) {
				attempt++
				if attempt >= MaxNAKRetries {
					inj.NoteNAKDrop(addr)
					break
				}
			}
			if inj.BankLost(int(i%16), int(i%5)) {
				continue
			}
			inj.Tear(int(i%16), addr, 3)
		}
		for i := 0; i < inj.FlipCount(); i++ {
			idx, bit := inj.Flip(64)
			inj.NoteFlip(uint64(0x2000+idx*8), bit)
		}
		return inj.Schedule(), inj.Total()
	}
	s1, n1 := run()
	s2, n2 := run()
	if s1 != s2 {
		t.Fatalf("schedules differ:\n%s\n---\n%s", s1, s2)
	}
	if n1 != n2 || n1 == 0 {
		t.Fatalf("event counts %d vs %d (must match and be non-zero)", n1, n2)
	}
}

func TestTearKeepsPrefix(t *testing.T) {
	cfg, err := ClassConfig("torn", 7)
	if err != nil {
		t.Fatal(err)
	}
	inj := New(cfg)
	tore := 0
	for i := 0; i < 100; i++ {
		keep, torn := inj.Tear(0, uint64(i)*64, 4)
		if !torn {
			t.Fatalf("torn class must always tear (i=%d)", i)
		}
		if keep < 0 || keep >= 4 {
			t.Fatalf("torn prefix %d out of [0,4)", keep)
		}
		tore++
	}
	if inj.Count(Torn) != int64(tore) {
		t.Fatalf("counted %d tears, want %d", inj.Count(Torn), tore)
	}
}
