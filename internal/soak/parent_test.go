package soak

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
)

// TestNoSpaceClassification pins the ENOSPC contract: a child writer dying
// with the errno text on stderr is typed ErrNoSpace, anything else stays an
// ordinary child failure, and a raw ENOSPC from a parent-side filesystem
// call is recognised too.
func TestNoSpaceClassification(t *testing.T) {
	exit := errors.New("exit status 1")

	err := wrapChildErr(exit, "nvsoak child: write store/seg-000001.nvlog: no space left on device\n")
	if !IsNoSpace(err) {
		t.Fatalf("ENOSPC child failure not typed: %v", err)
	}
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("typed wrap lost the sentinel: %v", err)
	}

	err = wrapChildErr(exit, "nvsoak child: checksum mismatch\n")
	if IsNoSpace(err) {
		t.Fatalf("unrelated child failure typed as ENOSPC: %v", err)
	}
	if err == nil || errors.Is(err, ErrNoSpace) {
		t.Fatalf("plain child failure misclassified: %v", err)
	}

	if !IsNoSpace(fmt.Errorf("soak: mkdir: %w", syscall.ENOSPC)) {
		t.Fatal("raw ENOSPC not recognised")
	}
	if IsNoSpace(errors.New("soak: child failed")) {
		t.Fatal("untyped error recognised as ENOSPC")
	}
}
