// Package soak implements the kill-9 crash-restart soak harness: a
// deterministic writer that drives an OMC group onto a file-backed durable
// plane in a child process, a milestone protocol that parks the child on
// exact durable-path boundaries so the parent can SIGKILL it at seeded
// points, and a checker that cold-salvages the directory in the parent and
// compares the restored image against the golden diffcheck-style model.
//
// The writer and the golden model consume the same PRNG stream, so parent
// and child agree on every version ever written without sharing state —
// the only channel between them is the store directory itself, which is
// the point: durability claims are tested across real process death.
package soak

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/omc"
	"repro/internal/sim"
)

// Members is the OMC partition count the soak writer drives. Each member
// seals every epoch on the shared plane, so one epoch becomes durable only
// after Members manifest renames.
const Members = 2

// pagSpan is the page-address span versions land in; small enough that
// epochs overlap heavily (overwrites exercise master-table merging).
const pageSpan = 24

// Params configures one soak run. The same Params must be given to the
// child writer and the parent checker.
type Params struct {
	Dir             string
	Seed            int64
	Epochs          int
	PerEpoch        int
	CheckpointEvery int
}

// DefaultParams returns the standard soak shape: 6 epochs of 24 versions
// with a base checkpoint every 3 segment seals, so a full run crosses
// several checkpoint rewrites and dozens of kill-eligible boundaries.
func DefaultParams(dir string, seed int64) Params {
	return Params{Dir: dir, Seed: seed, Epochs: 6, PerEpoch: 24, CheckpointEvery: 3}
}

// Child-process environment protocol. A binary that wants to host the soak
// writer (the recovery test binary, nvcheck) checks IsChild() at startup
// and hands control to ChildMain.
const (
	envChild    = "NVSOAK_CHILD"
	envDir      = "NVSOAK_DIR"
	envSeed     = "NVSOAK_SEED"
	envEpochs   = "NVSOAK_EPOCHS"
	envPerEpoch = "NVSOAK_PEREPOCH"
	envCkpt     = "NVSOAK_CKPT"
)

// IsChild reports whether this process was spawned as a soak writer child.
func IsChild() bool { return os.Getenv(envChild) == "1" }

// ChildEnv renders Params as the child's environment variables.
func ChildEnv(p Params) []string {
	return []string{
		envChild + "=1",
		envDir + "=" + p.Dir,
		envSeed + "=" + strconv.FormatInt(p.Seed, 10),
		envEpochs + "=" + strconv.Itoa(p.Epochs),
		envPerEpoch + "=" + strconv.Itoa(p.PerEpoch),
		envCkpt + "=" + strconv.Itoa(p.CheckpointEvery),
	}
}

func paramsFromEnv() (Params, error) {
	var p Params
	p.Dir = os.Getenv(envDir)
	if p.Dir == "" {
		return p, fmt.Errorf("%s not set", envDir)
	}
	for _, v := range []struct {
		env string
		dst *int
	}{
		{envEpochs, &p.Epochs},
		{envPerEpoch, &p.PerEpoch},
		{envCkpt, &p.CheckpointEvery},
	} {
		n, err := strconv.Atoi(os.Getenv(v.env))
		if err != nil {
			return p, fmt.Errorf("%s: %w", v.env, err)
		}
		*v.dst = n
	}
	seed, err := strconv.ParseInt(os.Getenv(envSeed), 10, 64)
	if err != nil {
		return p, fmt.Errorf("%s: %w", envSeed, err)
	}
	p.Seed = seed
	return p, nil
}

// ChildMain runs the soak writer in a child process: params from the
// environment, milestones on stdout, permission to proceed read from
// stdin. Returns the process exit code.
func ChildMain() int {
	p, err := paramsFromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvsoak child:", err)
		return 2
	}
	ms := &milestones{out: os.Stdout, in: bufio.NewReader(os.Stdin)}
	if err := WriteStore(p, ms.hit); err != nil {
		fmt.Fprintln(os.Stderr, "nvsoak child:", err)
		return 1
	}
	return 0
}

// milestones implements the child half of the park-and-kill protocol:
// after every durable-path boundary the child prints one line
//
//	M <index> <point> <epoch>
//
// and blocks until the parent answers "GO". A SIGKILL therefore always
// lands while the child is parked at a known boundary — the kill point is
// exact and seeded, not racy.
type milestones struct {
	n   int
	out io.Writer
	in  *bufio.Reader
}

func (m *milestones) hit(point string, epoch uint64) {
	fmt.Fprintf(m.out, "M %d %s %d\n", m.n, point, epoch)
	m.n++
	line, err := m.in.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "GO" {
		// Orphaned (parent gone) or protocol breakdown: nothing to salvage
		// from this process, the store directory is the only output.
		os.Exit(3)
	}
}

// nextVersion derives the next deterministic version from the shared PRNG
// stream. Both the writer and Golden call it in the same order.
func nextVersion(rng *sim.RNG, epoch uint64) omc.Version {
	addr := (rng.Uint64n(pageSpan) + 1) << 12
	return omc.Version{Addr: addr, Epoch: epoch, Data: rng.Uint64()}
}

// writerConfig is the machine shape the writer drives: one versioned
// domain over a Members-partition OMC group, file plane attached.
func writerConfig(p Params) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	cfg.CoresPerVD = 2
	cfg.StoreDir = p.Dir
	cfg.CheckpointEvery = p.CheckpointEvery
	return cfg
}

// WriteStore runs the deterministic soak writer to completion: a fresh
// file-backed store in p.Dir, p.Epochs sealed epochs of p.PerEpoch
// versions each. hit (may be nil) is invoked at every kill-eligible
// boundary: the writer-level points "epoch-start", "mid-writes" and
// "pre-seal", plus the plane's own durable-path points ("segment-synced",
// "checkpoint-written", "manifest-temp", "manifest-renamed").
//
// It is also usable in-process (hit == nil): the corruption tests build a
// complete store this way before mutilating its files.
//
// nvlint:durable
func WriteStore(p Params, hit func(point string, epoch uint64)) error {
	return WriteStoreFS(fault.OS, p, hit)
}

// WriteStoreFS is WriteStore over an arbitrary filesystem: the disk-fault
// sweep drives exactly this writer against a fault-injecting in-memory
// store. A fault-wounded plane surfaces here as the mem.ErrPlaneWounded
// error ClosePlane returns; everything sealed before the wound is already
// on the filesystem for salvage.
//
// nvlint:durable
func WriteStoreFS(fsys fault.FS, p Params, hit func(point string, epoch uint64)) error {
	cfg := writerConfig(p)
	nvm := mem.NewNVM(&cfg)
	plane, err := mem.OpenFilePlaneFS(fsys, p.Dir, p.CheckpointEvery)
	if err != nil {
		return err
	}
	if hit != nil {
		plane.SetSealHook(hit)
	} else {
		hit = func(string, uint64) {}
	}
	nvm.AttachPlane(plane)
	g := omc.NewGroup(&cfg, nvm, Members, omc.WithRetention())
	rng := sim.NewRNG(p.Seed)
	now := uint64(0)
	for e := uint64(1); e <= uint64(p.Epochs); e++ {
		hit("epoch-start", e)
		for i := 0; i < p.PerEpoch; i++ {
			if i == p.PerEpoch/2 {
				hit("mid-writes", e)
			}
			now += 2500 // let bank drains stream between seals
			g.ReceiveVersion(nextVersion(rng, e), now)
		}
		hit("pre-seal", e)
		// The single VD's tag walker reports min-ver e+1: epoch e becomes
		// recoverable and every member seals it onto the plane.
		g.ReportMinVer(0, e+1, now)
	}
	hit("run-done", 0)
	return nvm.ClosePlane()
}

// Golden replays the version stream that WriteStore(p, ...) writes and
// returns the cumulative last-write-wins image after each epoch;
// golden[0] is the empty pre-run state. This is the diffcheck-style model
// the salvaged image must match byte-for-byte.
func Golden(p Params) map[uint64]map[uint64]uint64 {
	rng := sim.NewRNG(p.Seed)
	golden := map[uint64]map[uint64]uint64{0: {}}
	cur := map[uint64]uint64{}
	for e := uint64(1); e <= uint64(p.Epochs); e++ {
		for i := 0; i < p.PerEpoch; i++ {
			v := nextVersion(rng, e)
			cur[v.Addr] = v.Data
		}
		snap := make(map[uint64]uint64, len(cur))
		//nvlint:allow maprange golden snapshot copy, order-independent
		for a, d := range cur {
			snap[a] = d
		}
		golden[e] = snap
	}
	return golden
}
