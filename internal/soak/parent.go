package soak

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"syscall"

	"repro/internal/fault"
	"repro/internal/recovery"
)

// ErrNoSpace types a soak failure caused by the store's filesystem running
// out of space. The crash-soak harness must distinguish this from a
// durability contract violation: the run still fails (non-zero exit, the
// partial tally is flushed), but the blame is the environment, not the
// store. Callers detect it with IsNoSpace.
var ErrNoSpace = errors.New("soak: store filesystem out of space")

// IsNoSpace reports whether err is an out-of-space failure — either the
// typed ErrNoSpace wrap from a child writer or a raw ENOSPC surfaced by a
// parent-side filesystem call.
func IsNoSpace(err error) bool {
	return errors.Is(err, ErrNoSpace) || errors.Is(err, syscall.ENOSPC)
}

// wrapChildErr types a failed child writer's exit. A child that died on
// ENOSPC prints the errno text to stderr before exiting non-zero; that is
// the only channel the parent has, so classification is textual.
func wrapChildErr(err error, stderr string) error {
	if strings.Contains(stderr, "no space left on device") {
		return fmt.Errorf("%w: child failed: %v; stderr: %s", ErrNoSpace, err, stderr)
	}
	return fmt.Errorf("soak: child failed: %v; stderr: %s", err, stderr)
}

// Result summarises one parent-side soak run.
type Result struct {
	// Killed reports whether the child was SIGKILLed (false: ran to
	// completion and exited 0).
	Killed bool
	// KillIndex / KillPoint / KillEpoch identify the milestone the child
	// was parked on when killed (index -1 when not killed).
	KillIndex int
	KillPoint string
	KillEpoch uint64
	// DurableEpoch is the newest epoch whose seal every member published
	// (Members manifest renames acknowledged) before the run ended — the
	// epoch the store directory must provably restore.
	DurableEpoch uint64
	// Milestones counts milestones the child reached.
	Milestones int
}

// Run spawns bin args... as a soak writer child (ChildEnv(p) appended to
// the environment), feeds it permission milestone by milestone, and
// SIGKILLs it while it is parked on milestone killAt. A killAt beyond the
// run's milestone count lets the child run to completion (useful both as
// the control case and to count milestones).
//
// Because the child blocks on stdin after announcing each milestone, the
// kill lands at an exact, reproducible boundary: killing at index k after
// seed s always leaves byte-identical directory contents modulo file
// timestamps.
func Run(bin string, args []string, p Params, killAt int) (*Result, error) {
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), ChildEnv(p)...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("soak: stdin pipe: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("soak: stdout pipe: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("soak: start child: %w", err)
	}
	abort := func(err error) (*Result, error) {
		_ = cmd.Process.Kill() // best-effort teardown; err already holds the cause
		_ = cmd.Wait()
		return nil, err
	}
	res := &Result{KillIndex: -1}
	renamed := make(map[uint64]int)
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		var (
			idx   int
			point string
			epoch uint64
		)
		if _, err := fmt.Sscanf(sc.Text(), "M %d %s %d", &idx, &point, &epoch); err != nil {
			return abort(fmt.Errorf("soak: bad milestone %q from child: %w", sc.Text(), err))
		}
		res.Milestones = idx + 1
		// Milestones announce completed actions, so a rename milestone means
		// the manifest is already durable — even if we kill on it.
		if point == "manifest-renamed" {
			renamed[epoch]++
			if renamed[epoch] >= Members && epoch > res.DurableEpoch {
				res.DurableEpoch = epoch
			}
		}
		if idx == killAt {
			res.Killed = true
			res.KillIndex, res.KillPoint, res.KillEpoch = idx, point, epoch
			if err := cmd.Process.Kill(); err != nil {
				return abort(fmt.Errorf("soak: kill child: %w", err))
			}
			_ = stdin.Close()
			_ = cmd.Wait() // SIGKILL: the non-zero exit is the point
			return res, nil
		}
		if _, err := io.WriteString(stdin, "GO\n"); err != nil {
			return abort(fmt.Errorf("soak: feeding child: %w", err))
		}
	}
	if err := sc.Err(); err != nil {
		return abort(fmt.Errorf("soak: reading child: %w", err))
	}
	if err := cmd.Wait(); err != nil {
		return nil, wrapChildErr(err, stderr.String())
	}
	return res, nil
}

// CheckDir cold-salvages the store directory and verifies the
// salvage-or-refuse contract against what the parent observed:
//
//   - a refusal is acceptable only when nothing was ever durable
//     (durable == 0) and the report carries findings;
//   - a restored image must be of an epoch >= durable (the store may
//     legitimately hold more than was acknowledged — a later seal's data
//     can be on disk even if its rename was not observed) and must match
//     the golden model of that epoch exactly.
//
// The salvage report is returned in all cases so callers can archive it.
func CheckDir(dir string, durable uint64, golden map[uint64]map[uint64]uint64) (*recovery.SalvageReport, error) {
	return CheckDirFS(fault.OS, dir, durable, golden)
}

// CheckDirFS is CheckDir over an arbitrary filesystem: the disk-fault
// sweep verifies the post-crash state of its in-memory stores through
// exactly the contract above.
func CheckDirFS(fsys fault.FS, dir string, durable uint64, golden map[uint64]map[uint64]uint64) (*recovery.SalvageReport, error) {
	// A refusal with nothing acknowledged durable is the expected outcome
	// for a store killed before its first seal, so that branch drops the
	// typed refusal on purpose: it carries no extra signal for the caller.
	out, rep, err := recovery.SalvageDirFS(fsys, dir) //nvlint:allow errlatch refusal with durable==0 is the expected outcome, not a failure
	if err != nil {
		if durable == 0 && rep.NonEmpty() {
			return rep, nil
		}
		return rep, fmt.Errorf("soak: salvage refused but epoch %d was durable: %w", durable, err)
	}
	if rep.RestoredEpoch < durable {
		return rep, fmt.Errorf("soak: restored epoch %d below durable epoch %d", rep.RestoredEpoch, durable)
	}
	g, ok := golden[rep.RestoredEpoch]
	if !ok {
		return rep, fmt.Errorf("soak: restored epoch %d was never written", rep.RestoredEpoch)
	}
	if err := recovery.Verify(out, g); err != nil {
		return rep, fmt.Errorf("soak: restored epoch %d diverges from golden: %w", rep.RestoredEpoch, err)
	}
	return rep, nil
}
