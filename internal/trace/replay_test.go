package trace

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/sim"
)

// burstWorkload issues one multi-access op (a StoreRange over several
// lines) per step, forever. Its final op straddles any access bound that
// is not a multiple of the burst size.
type burstWorkload struct {
	lines int
	base  uint64
}

func (w *burstWorkload) Name() string { return "burst" }
func (w *burstWorkload) Setup(h *Heap, rng *sim.RNG) {
	w.base = h.Alloc(1 << 20)
}
func (w *burstWorkload) Step(tid int, h *Heap, rng *sim.RNG) bool {
	h.StoreRange(w.base+uint64(tid)<<12, w.lines*64)
	return true
}

// TestDriverStopsMidOp locks the access-bound fix: a multi-access final
// op must stop at maxAccesses exactly, not finish the op and overshoot.
func TestDriverStopsMidOp(t *testing.T) {
	c := cfg()
	s := newFixedScheme(c, 1)
	// 7 stores per op, bound 100: the 15th op of the round crosses the
	// bound mid-op (14*7 = 98).
	d := NewDriver(c, s, &burstWorkload{lines: 7}, 100)
	sum := d.Run()
	if sum.Accesses != 100 {
		t.Fatalf("accesses = %d, want exactly 100", sum.Accesses)
	}
	if got := len(s.seen); got != 100 {
		t.Fatalf("scheme saw %d accesses, want 100", got)
	}
	if sum.Stores != 100 {
		t.Fatalf("stores = %d, want 100", sum.Stores)
	}
}

// TestDriverProgressClamped locks the progress-callback fix: the ratio
// reported to the NVM never exceeds 1.0 even when issued passes target.
func TestDriverProgressClamped(t *testing.T) {
	c := cfg()
	d := NewDriver(c, newFixedScheme(c, 1), &burstWorkload{lines: 7}, 100)
	if got := d.progress(); got != 0 {
		t.Fatalf("progress before run = %v", got)
	}
	d.issued = 99
	if got := d.progress(); got != 0.99 {
		t.Fatalf("progress at 99/100 = %v", got)
	}
	d.issued = 107 // a 7-access op that overshot the bound
	if got := d.progress(); got != 1.0 {
		t.Fatalf("progress past target = %v, want clamp to 1.0", got)
	}
	d.target = 0
	if got := d.progress(); got != 0 {
		t.Fatalf("progress with zero target = %v", got)
	}
}

// memTrace is an in-memory Sink + Source for driver-level tests (the
// on-disk codec has its own round-trip suite in internal/tracefile).
type memTrace struct {
	recs []Access
	pos  int
	// failAfter, when > 0, makes Append fail once that many records are in.
	failAfter int
}

func (m *memTrace) Append(a Access) error {
	if m.failAfter > 0 && len(m.recs) >= m.failAfter {
		return errors.New("sink full")
	}
	m.recs = append(m.recs, a)
	return nil
}

func (m *memTrace) Next() (Access, error) {
	if m.pos >= len(m.recs) {
		return Access{}, io.EOF
	}
	a := m.recs[m.pos]
	m.pos++
	return a, nil
}

// TestDriverRecordReplayIdentical runs a workload with a record sink, then
// replays the captured stream into a fresh driver and requires identical
// clocks, counters, access sequence, and golden image.
func TestDriverRecordReplayIdentical(t *testing.T) {
	c := cfg()
	rec := newFixedScheme(c, 3)
	d := NewDriver(c, rec, &countWorkload{n: 40}, 500)
	sink := &memTrace{}
	d.SetSink(sink)
	want := d.Run()
	if err := d.SinkErr(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	if uint64(len(sink.recs)) != want.Accesses {
		t.Fatalf("recorded %d accesses, run issued %d", len(sink.recs), want.Accesses)
	}

	rep := newFixedScheme(c, 3)
	d2 := NewDriver(c, rep, nil, 500)
	got, err := d2.RunReplay(sink)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got.Cycles != want.Cycles || got.Accesses != want.Accesses || got.Stores != want.Stores {
		t.Fatalf("replay summary %+v, recorded run %+v", got, want)
	}
	if got.NVMBytes != want.NVMBytes {
		t.Fatalf("replay NVM bytes %d, want %d", got.NVMBytes, want.NVMBytes)
	}
	if len(rep.seen) != len(rec.seen) {
		t.Fatalf("replay issued %d accesses, want %d", len(rep.seen), len(rec.seen))
	}
	for i := range rec.seen {
		if rep.seen[i] != rec.seen[i] {
			t.Fatalf("access %d went to tid %d, recorded tid %d", i, rep.seen[i], rec.seen[i])
		}
	}
	if len(got.Final) != len(want.Final) {
		t.Fatalf("replay final image has %d lines, want %d", len(got.Final), len(want.Final))
	}
	for addr, tok := range want.Final {
		if got.Final[addr] != tok {
			t.Fatalf("final[%#x] = %d, want %d", addr, got.Final[addr], tok)
		}
	}
	if got.Workload != "replay" || got.Ops != 0 {
		t.Fatalf("replay summary identity: %+v", got)
	}
}

// TestDriverSinkErrorLatches: a failing sink stops recording but not the
// run, and the first error is reported.
func TestDriverSinkErrorLatches(t *testing.T) {
	c := cfg()
	d := NewDriver(c, newFixedScheme(c, 1), &countWorkload{n: 10}, 1<<20)
	sink := &memTrace{failAfter: 5}
	d.SetSink(sink)
	sum := d.Run()
	if sum.Accesses != uint64(c.Cores*10) {
		t.Fatalf("run truncated by sink failure: %d accesses", sum.Accesses)
	}
	if err := d.SinkErr(); err == nil {
		t.Fatal("sink error not reported")
	}
	if len(sink.recs) != 5 {
		t.Fatalf("sink holds %d records after failure at 5", len(sink.recs))
	}
}

// TestRunReplayHonoursBoundAndValidatesTids: replay stops at maxAccesses
// like Run, and rejects out-of-range tids.
func TestRunReplayHonoursBoundAndValidatesTids(t *testing.T) {
	c := cfg()
	src := &memTrace{}
	for i := 0; i < 50; i++ {
		src.recs = append(src.recs, Access{Tid: i % c.Cores, Addr: uint64(i) * 64, Write: true, Data: uint64(i + 1)})
	}
	d := NewDriver(c, newFixedScheme(c, 1), nil, 20)
	sum, err := d.RunReplay(src)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if sum.Accesses != 20 {
		t.Fatalf("bounded replay issued %d accesses, want 20", sum.Accesses)
	}

	bad := &memTrace{recs: []Access{{Tid: c.Cores, Addr: 64}}}
	d2 := NewDriver(c, newFixedScheme(c, 1), nil, 100)
	if _, err := d2.RunReplay(bad); err == nil {
		t.Fatal("out-of-range tid accepted")
	} else if want := fmt.Sprintf("tid %d out of range", c.Cores); !containsStr(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
