// Package trace provides the glue between workloads and snapshotting
// schemes: a tracked heap that real algorithms allocate from and whose
// loads/stores become the simulated access stream, the Scheme interface all
// six designs implement, and the driver that interleaves the 16 worker
// threads by smallest local clock.
package trace

import (
	"fmt"
	"io"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Op is one memory access produced by a workload.
type Op struct {
	Addr  uint64
	Write bool
	Data  uint64 // payload token for stores
}

// Access is one issued access with its thread attached — the unit the
// record/replay plane moves: a Driver with a Sink emits the stream it
// issues, and RunReplay consumes the same stream from a Source.
type Access struct {
	Tid   int
	Addr  uint64
	Write bool
	Data  uint64 // payload token for stores
}

// Sink receives the access stream a driver issues, in issue order.
// *tracefile.Writer implements it. A Sink error latches: the driver stops
// feeding the sink and reports the error via SinkErr, without perturbing
// the run itself.
type Sink interface {
	Append(a Access) error
}

// Source supplies a recorded access stream for RunReplay. A clean end of
// stream is io.EOF; any other error aborts the replay.
// *tracefile.Reader implements it.
type Source interface {
	Next() (Access, error)
}

// Scheme is a complete snapshotting design under test: NVOverlay or one of
// the five baselines. Access returns the latency charged to the issuing
// thread; schemes stall whole thread groups (epoch flushes, VD drains)
// through the bound clock set.
type Scheme interface {
	Name() string
	// Bind attaches the driver's thread clocks before the run starts.
	Bind(clocks *sim.Clocks)
	// Access performs one memory operation at the thread's current time.
	Access(tid int, addr uint64, write bool, data uint64) uint64
	// Drain flushes all in-flight snapshot state at end of run.
	Drain(now uint64)
	// Stats returns the scheme's counters.
	Stats() *stats.Set
	// NVM exposes the scheme's NVM device for write-amplification and
	// bandwidth accounting.
	NVM() *mem.NVM
}

// Heap is the tracked address space workloads run on. Allocation is a bump
// allocator over the simulated physical space; every Load/Store is recorded
// and later replayed into the scheme by the driver. Payload tokens are
// auto-generated so recovery tests can verify snapshot contents.
type Heap struct {
	cfg       *sim.Config
	brk       uint64
	ops       []Op
	token     uint64
	recording bool

	// TotalAllocated tracks the heap footprint.
	TotalAllocated int64
}

// HeapBase is where workload allocations start in the physical space.
const HeapBase uint64 = 1 << 30

// NewHeap creates an empty heap with recording enabled.
func NewHeap(cfg *sim.Config) *Heap {
	return &Heap{cfg: cfg, brk: HeapBase, recording: true}
}

// SetRecording switches access recording on or off. With recording off,
// Load/Store skip the op buffer entirely (the driver disables it for
// workload Setup, whose accesses are untimed and would otherwise be
// recorded only to be discarded — by far the largest allocation source in
// a run). Store still consumes a token either way, so the payload stream a
// workload observes is identical in both modes.
func (h *Heap) SetRecording(on bool) { h.recording = on }

// Alloc reserves size bytes and returns the base address. Allocations are
// line-aligned when size >= one line, 8-byte aligned otherwise, mimicking a
// real allocator's behaviour for cache-conscious structures.
func (h *Heap) Alloc(size int) uint64 {
	if size <= 0 {
		panic("trace: Alloc with non-positive size")
	}
	align := uint64(8)
	if size >= h.cfg.LineSize {
		align = uint64(h.cfg.LineSize)
	}
	h.brk = (h.brk + align - 1) &^ (align - 1)
	addr := h.brk
	h.brk += uint64(size)
	h.TotalAllocated += int64(size)
	return addr
}

// Load records a read of the word at addr.
func (h *Heap) Load(addr uint64) {
	if !h.recording {
		return
	}
	h.ops = append(h.ops, Op{Addr: addr})
}

// Store records a write of the word at addr and returns the token written.
func (h *Heap) Store(addr uint64) uint64 {
	h.token++
	if h.recording {
		h.ops = append(h.ops, Op{Addr: addr, Write: true, Data: h.token})
	}
	return h.token
}

// LoadRange records reads covering [addr, addr+size), one per cache line.
func (h *Heap) LoadRange(addr uint64, size int) {
	for a := h.cfg.LineAddr(addr); a < addr+uint64(size); a += uint64(h.cfg.LineSize) {
		h.Load(a)
	}
}

// StoreRange records writes covering [addr, addr+size), one per cache line.
func (h *Heap) StoreRange(addr uint64, size int) {
	for a := h.cfg.LineAddr(addr); a < addr+uint64(size); a += uint64(h.cfg.LineSize) {
		h.Store(a)
	}
}

// Drain removes and returns the accesses recorded since the last call. The
// returned slice is detached (a subsequent record never overwrites it), so
// callers may hold on to it; the driver's replay loop uses Ops/ResetOps
// instead to reuse one buffer for the whole run.
func (h *Heap) Drain() []Op {
	ops := h.ops
	h.ops = h.ops[len(h.ops):]
	return ops
}

// Ops returns the accesses recorded since the last Drain/ResetOps without
// detaching them: the slice is only valid until the next recorded access
// after ResetOps.
func (h *Heap) Ops() []Op { return h.ops }

// ResetOps discards the recorded accesses, retaining the buffer for reuse.
func (h *Heap) ResetOps() { h.ops = h.ops[:0] }

// Pending returns the number of recorded, undelivered accesses.
func (h *Heap) Pending() int { return len(h.ops) }

// Footprint returns the bytes allocated so far.
func (h *Heap) Footprint() int64 { return h.TotalAllocated }

// Workload is a multithreaded benchmark. Step executes one operation for
// the given thread against the shared state, recording its memory accesses
// on the heap; it returns false when the thread has no more work.
type Workload interface {
	Name() string
	// Setup builds initial state (untimed; its accesses are discarded).
	Setup(h *Heap, rng *sim.RNG)
	// Step runs one operation for thread tid.
	Step(tid int, h *Heap, rng *sim.RNG) bool
}

// Summary reports one driver run.
type Summary struct {
	Scheme    string
	Workload  string
	Cycles    uint64 // wall-clock: max thread clock at completion
	Accesses  uint64
	Stores    uint64
	Ops       uint64 // workload operations completed
	NVMBytes  int64
	DataBytes int64
	LogBytes  int64
	MetaBytes int64
	CtxBytes  int64
	Footprint int64
	// Final holds the last token written per line address (the golden
	// image used by recovery verification).
	Final map[uint64]uint64
}

// Driver interleaves worker threads over a scheme: the thread with the
// smallest local clock executes its next workload operation, and each of
// the operation's accesses advances that thread's clock by the access
// latency plus a fixed per-access pipeline cost.
type Driver struct {
	cfg     *sim.Config
	scheme  Scheme
	wl      Workload
	heap    *Heap
	clocks  *sim.Clocks
	rngs    []*sim.RNG
	final   map[uint64]uint64
	issued  uint64
	target  uint64
	perOpNs uint64
	sink    Sink
	sinkErr error
}

// pipelineCost is the non-memory work charged per access (a 4-wide core
// retires a handful of ALU ops between memory references).
const pipelineCost = 2

// NewDriver wires a workload to a scheme. maxAccesses bounds the run (the
// paper bounds runs at 100M instructions/thread); progress for bandwidth
// time series is measured against it.
func NewDriver(cfg *sim.Config, scheme Scheme, wl Workload, maxAccesses uint64) *Driver {
	d := &Driver{
		cfg:    cfg,
		scheme: scheme,
		wl:     wl,
		heap:   NewHeap(cfg),
		clocks: sim.NewClocks(cfg.Cores),
		rngs:   make([]*sim.RNG, cfg.Cores),
		final:  make(map[uint64]uint64),
		target: maxAccesses,
	}
	for i := range d.rngs {
		d.rngs[i] = sim.NewRNG(cfg.Seed + int64(i)*7919)
	}
	scheme.Bind(d.clocks)
	scheme.NVM().SetProgress(d.progress)
	return d
}

// progress reports run completion in [0, 1] for bandwidth-over-progress
// bucketing. The final workload operation can push issued past target by a
// few accesses before the driver notices, so the ratio is clamped: a >1.0
// progress value would land bandwidth samples in a phantom bucket past the
// end of the time series.
func (d *Driver) progress() float64 {
	if d.target == 0 {
		return 0
	}
	p := float64(d.issued) / float64(d.target)
	if p > 1 {
		return 1
	}
	return p
}

// SetSink attaches a record sink; every access the driver issues is
// appended in issue order. Attach before Run. A nil sink detaches.
func (d *Driver) SetSink(s Sink) { d.sink = s }

// SinkErr returns the first error the record sink reported, if any. After
// an error the driver stops feeding the sink but completes the run.
func (d *Driver) SinkErr() error { return d.sinkErr }

// Clocks exposes the thread clocks (tests use this).
func (d *Driver) Clocks() *sim.Clocks { return d.clocks }

// Heap exposes the tracked heap.
func (d *Driver) Heap() *Heap { return d.heap }

// issue charges one access to tid: scheme access, clock advance, golden
// image update, record sink, periodic NVM tick. It is the single path both
// Run and RunReplay go through, so a replayed stream drives the scheme
// through exactly the state sequence of the run that recorded it.
func (d *Driver) issue(tid int, addr uint64, write bool, data uint64, stores *uint64) {
	lat := d.scheme.Access(tid, addr, write, data)
	d.clocks.Advance(tid, lat+pipelineCost)
	d.issued++
	if write {
		*stores++
		d.final[d.cfg.LineAddr(addr)] = data
	}
	if d.sink != nil && d.sinkErr == nil {
		if err := d.sink.Append(Access{Tid: tid, Addr: addr, Write: write, Data: data}); err != nil {
			d.sinkErr = err
		}
	}
	if d.issued%256 == 0 {
		d.scheme.NVM().Tick(d.clocks.Max())
	}
}

// teardown drains the scheme at end of run. Teardown (drain + seal) is not
// part of the run's bandwidth profile, so the progress hook comes off
// first.
func (d *Driver) teardown() {
	end := d.clocks.Max()
	d.scheme.NVM().Tick(end)
	d.scheme.NVM().SetProgress(nil)
	d.scheme.Drain(end)
}

// summary assembles the run report shared by Run and RunReplay.
func (d *Driver) summary(workload string, ops, stores uint64) Summary {
	nvm := d.scheme.NVM()
	return Summary{
		Scheme:    d.scheme.Name(),
		Workload:  workload,
		Cycles:    d.clocks.Max(),
		Accesses:  d.issued,
		Stores:    stores,
		Ops:       ops,
		NVMBytes:  nvm.TotalBytes(),
		DataBytes: nvm.Bytes(mem.WData),
		LogBytes:  nvm.Bytes(mem.WLog),
		MetaBytes: nvm.Bytes(mem.WMeta),
		CtxBytes:  nvm.Bytes(mem.WContext),
		Footprint: d.heap.Footprint(),
		Final:     d.final,
	}
}

// Run executes the workload to completion or until maxAccesses, drains the
// scheme, and returns the run summary.
func (d *Driver) Run() Summary {
	setupRNG := sim.NewRNG(d.cfg.Seed)
	d.heap.SetRecording(false) // setup accesses are untimed
	d.wl.Setup(d.heap, setupRNG)
	d.heap.SetRecording(true)

	var ops, stores uint64
	for d.issued < d.target {
		tid := d.clocks.MinLive()
		if tid < 0 {
			break
		}
		if !d.wl.Step(tid, d.heap, d.rngs[tid]) {
			d.clocks.Retire(tid)
			d.heap.ResetOps()
			continue
		}
		ops++
		for _, op := range d.heap.Ops() {
			// The bound is exact: a multi-access final op (a StoreRange,
			// say) stops mid-op rather than overshooting maxAccesses.
			if d.issued >= d.target {
				break
			}
			d.issue(tid, op.Addr, op.Write, op.Data, &stores)
		}
		d.heap.ResetOps()
	}
	d.teardown()
	return d.summary(d.wl.Name(), ops, stores)
}

// RunReplay drives the scheme from a recorded access stream instead of a
// workload, honouring the same maxAccesses bound, tick cadence, and
// teardown as Run. A driver replaying a trace recorded by an identically
// configured driver reproduces its scheme stats and golden image exactly.
// The workload may be nil (replay drivers need none); Summary.Ops and
// Summary.Footprint are zero since no workload ran.
func (d *Driver) RunReplay(src Source) (Summary, error) {
	var stores uint64
	var err error
	for d.issued < d.target {
		var a Access
		if a, err = src.Next(); err != nil {
			if err == io.EOF {
				err = nil
			}
			break
		}
		if a.Tid < 0 || a.Tid >= d.cfg.Cores {
			err = fmt.Errorf("trace: replayed tid %d out of range for %d cores", a.Tid, d.cfg.Cores)
			break
		}
		d.issue(a.Tid, a.Addr, a.Write, a.Data, &stores)
	}
	d.teardown()
	return d.summary("replay", 0, stores), err
}
