// Package trace provides the glue between workloads and snapshotting
// schemes: a tracked heap that real algorithms allocate from and whose
// loads/stores become the simulated access stream, the Scheme interface all
// six designs implement, and the driver that interleaves the 16 worker
// threads by smallest local clock.
package trace

import (
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Op is one memory access produced by a workload.
type Op struct {
	Addr  uint64
	Write bool
	Data  uint64 // payload token for stores
}

// Scheme is a complete snapshotting design under test: NVOverlay or one of
// the five baselines. Access returns the latency charged to the issuing
// thread; schemes stall whole thread groups (epoch flushes, VD drains)
// through the bound clock set.
type Scheme interface {
	Name() string
	// Bind attaches the driver's thread clocks before the run starts.
	Bind(clocks *sim.Clocks)
	// Access performs one memory operation at the thread's current time.
	Access(tid int, addr uint64, write bool, data uint64) uint64
	// Drain flushes all in-flight snapshot state at end of run.
	Drain(now uint64)
	// Stats returns the scheme's counters.
	Stats() *stats.Set
	// NVM exposes the scheme's NVM device for write-amplification and
	// bandwidth accounting.
	NVM() *mem.NVM
}

// Heap is the tracked address space workloads run on. Allocation is a bump
// allocator over the simulated physical space; every Load/Store is recorded
// and later replayed into the scheme by the driver. Payload tokens are
// auto-generated so recovery tests can verify snapshot contents.
type Heap struct {
	cfg       *sim.Config
	brk       uint64
	ops       []Op
	token     uint64
	recording bool

	// TotalAllocated tracks the heap footprint.
	TotalAllocated int64
}

// HeapBase is where workload allocations start in the physical space.
const HeapBase uint64 = 1 << 30

// NewHeap creates an empty heap with recording enabled.
func NewHeap(cfg *sim.Config) *Heap {
	return &Heap{cfg: cfg, brk: HeapBase, recording: true}
}

// SetRecording switches access recording on or off. With recording off,
// Load/Store skip the op buffer entirely (the driver disables it for
// workload Setup, whose accesses are untimed and would otherwise be
// recorded only to be discarded — by far the largest allocation source in
// a run). Store still consumes a token either way, so the payload stream a
// workload observes is identical in both modes.
func (h *Heap) SetRecording(on bool) { h.recording = on }

// Alloc reserves size bytes and returns the base address. Allocations are
// line-aligned when size >= one line, 8-byte aligned otherwise, mimicking a
// real allocator's behaviour for cache-conscious structures.
func (h *Heap) Alloc(size int) uint64 {
	if size <= 0 {
		panic("trace: Alloc with non-positive size")
	}
	align := uint64(8)
	if size >= h.cfg.LineSize {
		align = uint64(h.cfg.LineSize)
	}
	h.brk = (h.brk + align - 1) &^ (align - 1)
	addr := h.brk
	h.brk += uint64(size)
	h.TotalAllocated += int64(size)
	return addr
}

// Load records a read of the word at addr.
func (h *Heap) Load(addr uint64) {
	if !h.recording {
		return
	}
	h.ops = append(h.ops, Op{Addr: addr})
}

// Store records a write of the word at addr and returns the token written.
func (h *Heap) Store(addr uint64) uint64 {
	h.token++
	if h.recording {
		h.ops = append(h.ops, Op{Addr: addr, Write: true, Data: h.token})
	}
	return h.token
}

// LoadRange records reads covering [addr, addr+size), one per cache line.
func (h *Heap) LoadRange(addr uint64, size int) {
	for a := h.cfg.LineAddr(addr); a < addr+uint64(size); a += uint64(h.cfg.LineSize) {
		h.Load(a)
	}
}

// StoreRange records writes covering [addr, addr+size), one per cache line.
func (h *Heap) StoreRange(addr uint64, size int) {
	for a := h.cfg.LineAddr(addr); a < addr+uint64(size); a += uint64(h.cfg.LineSize) {
		h.Store(a)
	}
}

// Drain removes and returns the accesses recorded since the last call. The
// returned slice is detached (a subsequent record never overwrites it), so
// callers may hold on to it; the driver's replay loop uses Ops/ResetOps
// instead to reuse one buffer for the whole run.
func (h *Heap) Drain() []Op {
	ops := h.ops
	h.ops = h.ops[len(h.ops):]
	return ops
}

// Ops returns the accesses recorded since the last Drain/ResetOps without
// detaching them: the slice is only valid until the next recorded access
// after ResetOps.
func (h *Heap) Ops() []Op { return h.ops }

// ResetOps discards the recorded accesses, retaining the buffer for reuse.
func (h *Heap) ResetOps() { h.ops = h.ops[:0] }

// Pending returns the number of recorded, undelivered accesses.
func (h *Heap) Pending() int { return len(h.ops) }

// Footprint returns the bytes allocated so far.
func (h *Heap) Footprint() int64 { return h.TotalAllocated }

// Workload is a multithreaded benchmark. Step executes one operation for
// the given thread against the shared state, recording its memory accesses
// on the heap; it returns false when the thread has no more work.
type Workload interface {
	Name() string
	// Setup builds initial state (untimed; its accesses are discarded).
	Setup(h *Heap, rng *sim.RNG)
	// Step runs one operation for thread tid.
	Step(tid int, h *Heap, rng *sim.RNG) bool
}

// Summary reports one driver run.
type Summary struct {
	Scheme    string
	Workload  string
	Cycles    uint64 // wall-clock: max thread clock at completion
	Accesses  uint64
	Stores    uint64
	Ops       uint64 // workload operations completed
	NVMBytes  int64
	DataBytes int64
	LogBytes  int64
	MetaBytes int64
	CtxBytes  int64
	Footprint int64
	// Final holds the last token written per line address (the golden
	// image used by recovery verification).
	Final map[uint64]uint64
}

// Driver interleaves worker threads over a scheme: the thread with the
// smallest local clock executes its next workload operation, and each of
// the operation's accesses advances that thread's clock by the access
// latency plus a fixed per-access pipeline cost.
type Driver struct {
	cfg     *sim.Config
	scheme  Scheme
	wl      Workload
	heap    *Heap
	clocks  *sim.Clocks
	rngs    []*sim.RNG
	final   map[uint64]uint64
	issued  uint64
	target  uint64
	perOpNs uint64
}

// pipelineCost is the non-memory work charged per access (a 4-wide core
// retires a handful of ALU ops between memory references).
const pipelineCost = 2

// NewDriver wires a workload to a scheme. maxAccesses bounds the run (the
// paper bounds runs at 100M instructions/thread); progress for bandwidth
// time series is measured against it.
func NewDriver(cfg *sim.Config, scheme Scheme, wl Workload, maxAccesses uint64) *Driver {
	d := &Driver{
		cfg:    cfg,
		scheme: scheme,
		wl:     wl,
		heap:   NewHeap(cfg),
		clocks: sim.NewClocks(cfg.Cores),
		rngs:   make([]*sim.RNG, cfg.Cores),
		final:  make(map[uint64]uint64),
		target: maxAccesses,
	}
	for i := range d.rngs {
		d.rngs[i] = sim.NewRNG(cfg.Seed + int64(i)*7919)
	}
	scheme.Bind(d.clocks)
	scheme.NVM().SetProgress(func() float64 {
		if d.target == 0 {
			return 0
		}
		return float64(d.issued) / float64(d.target)
	})
	return d
}

// Clocks exposes the thread clocks (tests use this).
func (d *Driver) Clocks() *sim.Clocks { return d.clocks }

// Heap exposes the tracked heap.
func (d *Driver) Heap() *Heap { return d.heap }

// Run executes the workload to completion or until maxAccesses, drains the
// scheme, and returns the run summary.
func (d *Driver) Run() Summary {
	setupRNG := sim.NewRNG(d.cfg.Seed)
	d.heap.SetRecording(false) // setup accesses are untimed
	d.wl.Setup(d.heap, setupRNG)
	d.heap.SetRecording(true)

	var ops, stores uint64
	for d.issued < d.target {
		tid := d.clocks.MinLive()
		if tid < 0 {
			break
		}
		if !d.wl.Step(tid, d.heap, d.rngs[tid]) {
			d.clocks.Retire(tid)
			d.heap.ResetOps()
			continue
		}
		ops++
		for _, op := range d.heap.Ops() {
			lat := d.scheme.Access(tid, op.Addr, op.Write, op.Data)
			d.clocks.Advance(tid, lat+pipelineCost)
			d.issued++
			if op.Write {
				stores++
				d.final[d.cfg.LineAddr(op.Addr)] = op.Data
			}
			if d.issued%256 == 0 {
				d.scheme.NVM().Tick(d.clocks.Max())
			}
		}
		d.heap.ResetOps()
	}
	end := d.clocks.Max()
	// Teardown (drain + seal) is not part of the run's bandwidth profile.
	d.scheme.NVM().Tick(end)
	d.scheme.NVM().SetProgress(nil)
	d.scheme.Drain(end)

	nvm := d.scheme.NVM()
	return Summary{
		Scheme:    d.scheme.Name(),
		Workload:  d.wl.Name(),
		Cycles:    d.clocks.Max(),
		Accesses:  d.issued,
		Stores:    stores,
		Ops:       ops,
		NVMBytes:  nvm.TotalBytes(),
		DataBytes: nvm.Bytes(mem.WData),
		LogBytes:  nvm.Bytes(mem.WLog),
		MetaBytes: nvm.Bytes(mem.WMeta),
		CtxBytes:  nvm.Bytes(mem.WContext),
		Footprint: d.heap.Footprint(),
		Final:     d.final,
	}
}
