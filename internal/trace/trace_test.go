package trace

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

func cfg() *sim.Config {
	c := sim.DefaultConfig()
	return &c
}

func TestHeapAllocAlignment(t *testing.T) {
	h := NewHeap(cfg())
	a := h.Alloc(8)
	if a%8 != 0 {
		t.Fatalf("small alloc misaligned: %#x", a)
	}
	b := h.Alloc(128)
	if b%64 != 0 {
		t.Fatalf("line-sized alloc not line-aligned: %#x", b)
	}
	c := h.Alloc(8)
	if c <= b {
		t.Fatal("allocator not monotonic")
	}
	if h.Footprint() != 8+128+8 {
		t.Fatalf("footprint = %d", h.Footprint())
	}
}

func TestHeapAllocPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHeap(cfg()).Alloc(0)
}

func TestHeapRecordsOps(t *testing.T) {
	h := NewHeap(cfg())
	a := h.Alloc(256)
	h.Load(a)
	tok := h.Store(a + 64)
	if tok == 0 {
		t.Fatal("store token should be non-zero")
	}
	ops := h.Drain()
	if len(ops) != 2 {
		t.Fatalf("ops = %d", len(ops))
	}
	if ops[0].Write || !ops[1].Write || ops[1].Data != tok {
		t.Fatalf("ops = %+v", ops)
	}
	if h.Pending() != 0 {
		t.Fatal("drain left ops")
	}
}

func TestHeapRanges(t *testing.T) {
	h := NewHeap(cfg())
	a := h.Alloc(4096)
	h.LoadRange(a, 256) // 4 lines
	if got := len(h.Drain()); got != 4 {
		t.Fatalf("LoadRange emitted %d ops", got)
	}
	h.StoreRange(a+32, 64) // straddles two lines
	if got := len(h.Drain()); got != 2 {
		t.Fatalf("straddling StoreRange emitted %d ops", got)
	}
	// Store tokens are strictly increasing.
	h.StoreRange(a, 192)
	ops := h.Drain()
	for i := 1; i < len(ops); i++ {
		if ops[i].Data <= ops[i-1].Data {
			t.Fatal("tokens not increasing")
		}
	}
}

// fixedScheme is a Scheme stub with constant latency.
type fixedScheme struct {
	lat  uint64
	nvm  *mem.NVM
	seen []int // tids in access order
}

func newFixedScheme(c *sim.Config, lat uint64) *fixedScheme {
	return &fixedScheme{lat: lat, nvm: mem.NewNVM(c)}
}

func (f *fixedScheme) Name() string      { return "fixed" }
func (f *fixedScheme) Bind(*sim.Clocks)  {}
func (f *fixedScheme) Drain(uint64)      {}
func (f *fixedScheme) Stats() *stats.Set { return stats.NewSet("fixed") }
func (f *fixedScheme) NVM() *mem.NVM     { return f.nvm }
func (f *fixedScheme) Access(tid int, addr uint64, w bool, d uint64) uint64 {
	f.seen = append(f.seen, tid)
	return f.lat
}

// countWorkload issues n single-store ops per thread.
type countWorkload struct {
	n    int
	done map[int]int
	base uint64
}

func (w *countWorkload) Name() string { return "count" }
func (w *countWorkload) Setup(h *Heap, rng *sim.RNG) {
	w.done = map[int]int{}
	w.base = h.Alloc(1 << 20)
}
func (w *countWorkload) Step(tid int, h *Heap, rng *sim.RNG) bool {
	if w.done[tid] >= w.n {
		return false
	}
	w.done[tid]++
	h.Store(w.base + uint64(tid*1000+w.done[tid])*64)
	return true
}

func TestDriverRunCompletesAndSummarises(t *testing.T) {
	c := cfg()
	s := newFixedScheme(c, 10)
	d := NewDriver(c, s, &countWorkload{n: 5}, 1<<20)
	sum := d.Run()
	want := uint64(c.Cores * 5)
	if sum.Accesses != want || sum.Stores != want || sum.Ops != want {
		t.Fatalf("summary = %+v, want %d accesses", sum, want)
	}
	// Every thread advanced by n*(lat+pipeline).
	if sum.Cycles != 5*(10+pipelineCost) {
		t.Fatalf("cycles = %d", sum.Cycles)
	}
	if len(sum.Final) != int(want) {
		t.Fatalf("final map = %d entries", len(sum.Final))
	}
	if sum.Scheme != "fixed" || sum.Workload != "count" {
		t.Fatal("names")
	}
}

func TestDriverInterleavesBySmallestClock(t *testing.T) {
	c := cfg()
	c.Cores = 4
	s := newFixedScheme(c, 10)
	d := NewDriver(c, s, &countWorkload{n: 3}, 1<<20)
	d.Run()
	// With equal costs the driver round-robins: the first four accesses
	// must come from four distinct threads.
	seen := map[int]bool{}
	for _, tid := range s.seen[:4] {
		seen[tid] = true
	}
	if len(seen) != 4 {
		t.Fatalf("first accesses from %d distinct threads, want 4 (%v)", len(seen), s.seen[:4])
	}
}

func TestDriverRespectsMaxAccesses(t *testing.T) {
	c := cfg()
	s := newFixedScheme(c, 1)
	d := NewDriver(c, s, &countWorkload{n: 1 << 20}, 100)
	sum := d.Run()
	if sum.Accesses != 100 {
		t.Fatalf("accesses = %d, want 100", sum.Accesses)
	}
}

func TestDriverFinalTracksLastStore(t *testing.T) {
	c := cfg()
	s := newFixedScheme(c, 1)
	wl := &rewriteWorkload{}
	d := NewDriver(c, s, wl, 1<<20)
	sum := d.Run()
	if len(sum.Final) != 1 {
		t.Fatalf("final = %v", sum.Final)
	}
	for _, tok := range sum.Final {
		if tok != wl.last {
			t.Fatalf("final token %d, want %d", tok, wl.last)
		}
	}
}

type rewriteWorkload struct {
	addr  uint64
	count int
	last  uint64
}

func (w *rewriteWorkload) Name() string { return "rewrite" }
func (w *rewriteWorkload) Setup(h *Heap, rng *sim.RNG) {
	w.addr = h.Alloc(64)
}
func (w *rewriteWorkload) Step(tid int, h *Heap, rng *sim.RNG) bool {
	if tid != 0 || w.count >= 10 {
		return false
	}
	w.count++
	w.last = h.Store(w.addr)
	return true
}
