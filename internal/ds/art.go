package ds

import "repro/internal/trace"

// ART node kinds, sized like the original adaptive radix tree (Leis et
// al., ICDE'13): Node4 and Node16 hold sorted key arrays, Node48 an
// indirection byte-index, Node256 a direct child array. Allocation sizes
// below match the paper's layouts so growth produces realistic copy
// traffic (the ART workload is the paper's NVM-bandwidth-bound outlier).
const (
	artNode4 = iota
	artNode16
	artNode48
	artNode256
)

var artSizes = [4]int{56, 160, 656, 2064}
var artCaps = [4]int{4, 16, 48, 256}

type artNode struct {
	addr     uint64
	kind     int
	children map[byte]*artNode
	// leaf payload
	isLeaf bool
	key    uint64
	val    uint64
}

// ART is an adaptive radix tree over 8-byte big-endian keys (no path
// compression; every level consumes one key byte, as in a radix trie with
// adaptive node sizing).
type ART struct {
	sharedHeap
	root *artNode
	size int

	// Grows counts node-type promotions (4->16->48->256).
	Grows int
}

// NewART creates an empty tree.
func NewART(h *trace.Heap) *ART {
	t := &ART{sharedHeap: sharedHeap{h}}
	t.root = t.newNode(artNode4)
	return t
}

func (t *ART) newNode(kind int) *artNode {
	return &artNode{
		addr:     t.h.Alloc(artSizes[kind]),
		kind:     kind,
		children: make(map[byte]*artNode),
	}
}

func (t *ART) newLeaf(key, val uint64) *artNode {
	return &artNode{addr: t.h.Alloc(24), isLeaf: true, key: key, val: val}
}

func keyByte(key uint64, depth int) byte {
	return byte(key >> (56 - 8*depth))
}

// findChild emits the loads of a child lookup for the node's kind: Node4
// and Node16 scan their key arrays (one line), Node48 reads the 256-byte
// child index first, Node256 reads the slot directly.
func (t *ART) findChild(n *artNode, b byte) *artNode {
	t.h.Load(n.addr) // header
	switch n.kind {
	case artNode4, artNode16:
		t.h.Load(n.addr + 16) // key array
	case artNode48:
		t.h.Load(n.addr + 16 + uint64(b))
	}
	child := n.children[b]
	if child != nil {
		t.h.Load(n.addr + 32 + uint64(b%32)*8) // pointer slot
	}
	return child
}

// grow promotes a full node to the next kind, copying its contents (the
// load/store burst of an ART node growth).
func (t *ART) grow(n *artNode) *artNode {
	if len(n.children) < artCaps[n.kind] || n.kind == artNode256 {
		return n
	}
	t.Grows++
	bigger := t.newNode(n.kind + 1)
	bigger.children = n.children
	t.h.LoadRange(n.addr, artSizes[n.kind])
	t.h.StoreRange(bigger.addr, artSizes[n.kind+1])
	return bigger
}

// Insert adds or updates a key.
func (t *ART) Insert(key, val uint64) {
	t.root = t.insert(t.root, key, val, 0)
}

// insert descends recursively and returns the (possibly replaced, after a
// growth) node occupying this position.
func (t *ART) insert(n *artNode, key, val uint64, depth int) *artNode {
	b := keyByte(key, depth)
	child := t.findChild(n, b)
	if child == nil {
		leaf := t.newLeaf(key, val)
		t.h.Store(leaf.addr)
		n = t.grow(n)
		n.children[b] = leaf
		t.h.Store(n.addr + 32 + uint64(b%32)*8)
		t.h.Store(n.addr)
		t.size++
		return n
	}
	if child.isLeaf {
		t.h.Load(child.addr)
		if child.key == key {
			t.h.Store(child.addr + 16)
			child.val = val
			return n
		}
		n.children[b] = t.splitLeaf(child, key, val, depth+1)
		t.h.Store(n.addr + 32 + uint64(b%32)*8)
		t.size++
		return n
	}
	n.children[b] = t.insert(child, key, val, depth+1)
	return n
}

// splitLeaf replaces a leaf with the chain of Node4s covering the common
// key-byte prefix of the old and new keys, ending at the first byte where
// they diverge.
func (t *ART) splitLeaf(old *artNode, key, val uint64, depth int) *artNode {
	top := t.newNode(artNode4)
	t.h.StoreRange(top.addr, artSizes[artNode4])
	node := top
	d := depth
	for d < 7 && keyByte(old.key, d) == keyByte(key, d) {
		next := t.newNode(artNode4)
		t.h.StoreRange(next.addr, artSizes[artNode4])
		node.children[keyByte(key, d)] = next
		t.h.Store(node.addr + 32)
		node = next
		d++
	}
	node.children[keyByte(old.key, d)] = old
	leaf := t.newLeaf(key, val)
	t.h.Store(leaf.addr)
	node.children[keyByte(key, d)] = leaf
	t.h.Store(node.addr + 32)
	return top
}

// Get looks a key up.
func (t *ART) Get(key uint64) (uint64, bool) {
	n := t.root
	for depth := 0; ; depth++ {
		if n == nil {
			return 0, false
		}
		if n.isLeaf {
			t.h.Load(n.addr)
			if n.key == key {
				return n.val, true
			}
			return 0, false
		}
		n = t.findChild(n, keyByte(key, depth))
	}
}

// Len returns the number of keys.
func (t *ART) Len() int { return t.size }
