// Package ds implements the four index data structures of the paper's
// evaluation (§VI-C) — a chained hash table (std::unordered_map-like), a
// B+Tree (BTreeOLC-like), an adaptive radix tree (ART), and a red-black
// tree (std::map-like) — as real algorithms over the tracked heap: every
// logical field access they perform is emitted as a simulated load or
// store, so the cache/coherence behaviour that differentiates the
// snapshotting schemes comes from genuine algorithm executions.
package ds

import "repro/internal/trace"

// KV is the common index interface the workloads drive.
type KV interface {
	Insert(key, val uint64)
	Get(key uint64) (uint64, bool)
	Len() int
}

// hash64 is splitmix64's finalizer, a good 64-bit mixer.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

var (
	_ KV = (*HashTable)(nil)
	_ KV = (*BTree)(nil)
	_ KV = (*ART)(nil)
	_ KV = (*RBTree)(nil)
)

// sharedHeap is embedded by all structures.
type sharedHeap struct {
	h *trace.Heap
}
