package ds

import "repro/internal/trace"

// rbNode layout: key, val, left, right, parent, color — 48 bytes, one
// cache line when allocated 8-byte aligned (matching std::map's
// _Rb_tree_node on 64-bit platforms).
type rbNode struct {
	addr        uint64
	key, val    uint64
	left, right *rbNode
	parent      *rbNode
	red         bool
}

// RBTree is a classic red-black tree in the style of std::map: pointer
// chasing on descent, rotations with parent-pointer maintenance, and
// recolouring walks on insert.
type RBTree struct {
	sharedHeap
	root *rbNode
	size int

	// Rotations counts tree rotations.
	Rotations int
}

// NewRBTree creates an empty tree.
func NewRBTree(h *trace.Heap) *RBTree {
	return &RBTree{sharedHeap: sharedHeap{h}}
}

func (t *RBTree) newNode(key, val uint64) *rbNode {
	n := &rbNode{addr: t.h.Alloc(48), key: key, val: val, red: true}
	t.h.Store(n.addr) // key/val/pointers/colour initialised together
	return n
}

// Insert adds or updates a key.
func (t *RBTree) Insert(key, val uint64) {
	var parent *rbNode
	cur := t.root
	for cur != nil {
		t.h.Load(cur.addr)
		parent = cur
		switch {
		case key < cur.key:
			cur = cur.left
		case key > cur.key:
			cur = cur.right
		default:
			t.h.Store(cur.addr + 8)
			cur.val = val
			return
		}
	}
	n := t.newNode(key, val)
	n.parent = parent
	if parent == nil {
		t.root = n
	} else if key < parent.key {
		parent.left = n
		t.h.Store(parent.addr + 16)
	} else {
		parent.right = n
		t.h.Store(parent.addr + 24)
	}
	t.size++
	t.fixInsert(n)
}

func (t *RBTree) rotateLeft(x *rbNode) {
	t.Rotations++
	y := x.right
	t.h.Load(y.addr)
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
		t.h.Store(y.left.addr + 32)
	}
	y.parent = x.parent
	if x.parent == nil {
		t.root = y
	} else if x == x.parent.left {
		x.parent.left = y
		t.h.Store(x.parent.addr + 16)
	} else {
		x.parent.right = y
		t.h.Store(x.parent.addr + 24)
	}
	y.left = x
	x.parent = y
	t.h.Store(x.addr)
	t.h.Store(y.addr)
}

func (t *RBTree) rotateRight(x *rbNode) {
	t.Rotations++
	y := x.left
	t.h.Load(y.addr)
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
		t.h.Store(y.right.addr + 32)
	}
	y.parent = x.parent
	if x.parent == nil {
		t.root = y
	} else if x == x.parent.right {
		x.parent.right = y
		t.h.Store(x.parent.addr + 24)
	} else {
		x.parent.left = y
		t.h.Store(x.parent.addr + 16)
	}
	y.right = x
	x.parent = y
	t.h.Store(x.addr)
	t.h.Store(y.addr)
}

func (t *RBTree) fixInsert(n *rbNode) {
	for n.parent != nil && n.parent.red {
		g := n.parent.parent
		t.h.Load(g.addr)
		if n.parent == g.left {
			u := g.right
			if u != nil && u.red {
				t.h.Store(n.parent.addr + 40) // recolour
				t.h.Store(u.addr + 40)
				t.h.Store(g.addr + 40)
				n.parent.red = false
				u.red = false
				g.red = true
				n = g
				continue
			}
			if n == n.parent.right {
				n = n.parent
				t.rotateLeft(n)
			}
			n.parent.red = false
			g.red = true
			t.h.Store(n.parent.addr + 40)
			t.h.Store(g.addr + 40)
			t.rotateRight(g)
		} else {
			u := g.left
			if u != nil && u.red {
				t.h.Store(n.parent.addr + 40)
				t.h.Store(u.addr + 40)
				t.h.Store(g.addr + 40)
				n.parent.red = false
				u.red = false
				g.red = true
				n = g
				continue
			}
			if n == n.parent.left {
				n = n.parent
				t.rotateRight(n)
			}
			n.parent.red = false
			g.red = true
			t.h.Store(n.parent.addr + 40)
			t.h.Store(g.addr + 40)
			t.rotateLeft(g)
		}
	}
	if t.root.red {
		t.root.red = false
		t.h.Store(t.root.addr + 40)
	}
}

// Get looks a key up.
func (t *RBTree) Get(key uint64) (uint64, bool) {
	cur := t.root
	for cur != nil {
		t.h.Load(cur.addr)
		switch {
		case key < cur.key:
			cur = cur.left
		case key > cur.key:
			cur = cur.right
		default:
			return cur.val, true
		}
	}
	return 0, false
}

// Len returns the number of keys.
func (t *RBTree) Len() int { return t.size }

// Validate checks the red-black invariants: root black, no red-red
// parent/child, equal black height on every path, and BST ordering.
func (t *RBTree) Validate() bool {
	if t.root == nil {
		return true
	}
	if t.root.red {
		return false
	}
	ok := true
	var walk func(n *rbNode, lo, hi uint64) int
	walk = func(n *rbNode, lo, hi uint64) int {
		if n == nil {
			return 1
		}
		if n.key < lo || n.key > hi {
			ok = false
		}
		if n.red && ((n.left != nil && n.left.red) || (n.right != nil && n.right.red)) {
			ok = false
		}
		var lmax, rmin uint64 = n.key, n.key
		if n.key > 0 {
			lmax = n.key - 1
		}
		if n.key < ^uint64(0) {
			rmin = n.key + 1
		}
		lb := walk(n.left, lo, lmax)
		rb := walk(n.right, rmin, hi)
		if lb != rb {
			ok = false
		}
		if n.red {
			return lb
		}
		return lb + 1
	}
	walk(t.root, 0, ^uint64(0))
	return ok
}
