package ds

import (
	"sort"

	"repro/internal/trace"
)

// btFanout is the maximum number of keys per node. With 8-byte keys and
// values the node spans ~1 KB — 16 cache lines — so inserting into the
// middle of a leaf shifts a run of lines, which is exactly the bursty
// write pattern the paper calls out for the B+Tree workload ("shifting
// existing elements after locating a B+Tree leaf node").
const btFanout = 64

type btNode struct {
	addr     uint64
	leaf     bool
	keys     []uint64
	vals     []uint64  // leaves only
	children []*btNode // inner nodes only
}

// nodeBytes is the allocation size of one node: header + key array +
// value/child array.
const btNodeBytes = 16 + btFanout*8 + (btFanout+1)*8

func (n *btNode) keyAddr(i int) uint64 { return n.addr + 16 + uint64(i*8) }
func (n *btNode) valAddr(i int) uint64 { return n.addr + 16 + btFanout*8 + uint64(i*8) }

// BTree is a B+Tree with sorted leaf arrays and in-node binary search,
// modelled on the BTreeOLC index used in the paper's evaluation.
type BTree struct {
	sharedHeap
	root *btNode
	size int

	// Splits counts node splits.
	Splits int
}

// NewBTree creates an empty tree.
func NewBTree(h *trace.Heap) *BTree {
	t := &BTree{sharedHeap: sharedHeap{h}}
	t.root = t.newNode(true)
	return t
}

func (t *BTree) newNode(leaf bool) *btNode {
	n := &btNode{addr: t.h.Alloc(btNodeBytes), leaf: leaf}
	if leaf {
		n.vals = make([]uint64, 0, btFanout)
	} else {
		n.children = make([]*btNode, 0, btFanout+1)
	}
	n.keys = make([]uint64, 0, btFanout)
	return n
}

// search emits the loads of an in-node binary search: the header line plus
// the key lines the probe sequence touches.
func (t *BTree) search(n *btNode, key uint64) int {
	t.h.Load(n.addr) // header: count, type
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		t.h.Load(n.keyAddr(mid))
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds or updates a key.
func (t *BTree) Insert(key, val uint64) {
	if len(t.root.keys) == btFanout {
		// Split the root: the tree grows one level.
		old := t.root
		t.root = t.newNode(false)
		t.root.children = append(t.root.children, old)
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, key, val)
}

func (t *BTree) insertNonFull(n *btNode, key, val uint64) {
	for !n.leaf {
		i := t.search(n, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++ // separator equal to key: right child holds it
		}
		child := n.children[i]
		t.h.Load(n.valAddr(i)) // child pointer
		if len(child.keys) == btFanout {
			t.splitChild(n, i)
			// Equal keys route right, consistently with search()'s i++.
			if key >= n.keys[i] {
				i++
			}
			child = n.children[i]
		}
		n = child
	}
	i := t.search(n, key)
	if i < len(n.keys) && n.keys[i] == key {
		t.h.Store(n.valAddr(i))
		n.vals[i] = val
		return
	}
	// Shift the tail right: a memmove reads every moved element and writes
	// it one slot over (the write burst the paper highlights; the loads are
	// what pull leaf lines dirtied by other VDs through coherence).
	n.keys = append(n.keys, 0)
	n.vals = append(n.vals, 0)
	copy(n.keys[i+1:], n.keys[i:])
	copy(n.vals[i+1:], n.vals[i:])
	n.keys[i] = key
	n.vals[i] = val
	for j := len(n.keys) - 1; j > i; j-- {
		t.h.Load(n.keyAddr(j - 1))
		t.h.Store(n.keyAddr(j))
		t.h.Load(n.valAddr(j - 1))
		t.h.Store(n.valAddr(j))
	}
	t.h.Store(n.keyAddr(i))
	t.h.Store(n.valAddr(i))
	t.h.Store(n.addr) // count in header
	t.size++
}

// splitChild splits the full child at index i of parent p.
func (t *BTree) splitChild(p *btNode, i int) {
	t.Splits++
	child := p.children[i]
	mid := btFanout / 2
	right := t.newNode(child.leaf)

	right.keys = append(right.keys, child.keys[mid:]...)
	if child.leaf {
		right.vals = append(right.vals, child.vals[mid:]...)
		child.keys = child.keys[:mid]
		child.vals = child.vals[:mid]
	} else {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
		child.keys = child.keys[:mid]
	}
	sep := right.keys[0]
	if !child.leaf {
		sep = right.keys[0]
		right.keys = right.keys[1:]
	}

	// Copy traffic: the moved half of the child writes into the new node.
	t.h.LoadRange(child.keyAddr(mid), (btFanout-mid)*8)
	t.h.StoreRange(right.keyAddr(0), len(right.keys)*8+16)
	t.h.StoreRange(right.valAddr(0), (btFanout-mid)*8)
	t.h.Store(child.addr) // shrunk count

	// Parent gains a separator: shift its arrays.
	p.keys = append(p.keys, 0)
	copy(p.keys[i+1:], p.keys[i:])
	p.keys[i] = sep
	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
	for j := i; j < len(p.keys); j++ {
		t.h.Store(p.keyAddr(j))
		t.h.Store(p.valAddr(j + 1))
	}
	t.h.Store(p.addr)
}

// Get looks a key up.
func (t *BTree) Get(key uint64) (uint64, bool) {
	n := t.root
	for !n.leaf {
		i := t.search(n, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		t.h.Load(n.valAddr(i))
		n = n.children[i]
	}
	i := t.search(n, key)
	if i < len(n.keys) && n.keys[i] == key {
		t.h.Load(n.valAddr(i))
		return n.vals[i], true
	}
	return 0, false
}

// Len returns the number of keys.
func (t *BTree) Len() int { return t.size }

// Depth returns the tree height (diagnostics).
func (t *BTree) Depth() int {
	d := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		d++
	}
	return d
}

// Validate checks B+Tree ordering invariants (tests).
func (t *BTree) Validate() bool {
	var walk func(n *btNode, lo, hi uint64) bool
	walk = func(n *btNode, lo, hi uint64) bool {
		if !sort.SliceIsSorted(n.keys, func(a, b int) bool { return n.keys[a] < n.keys[b] }) {
			return false
		}
		for _, k := range n.keys {
			if k < lo || k > hi {
				return false
			}
		}
		if n.leaf {
			return len(n.keys) == len(n.vals)
		}
		if len(n.children) != len(n.keys)+1 {
			return false
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			}
			if !walk(c, clo, chi) {
				return false
			}
		}
		return true
	}
	return walk(t.root, 0, ^uint64(0))
}
