package ds

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/trace"
)

func newHeap() *trace.Heap {
	cfg := sim.DefaultConfig()
	return trace.NewHeap(&cfg)
}

// each constructor under test.
func builders() map[string]func(h *trace.Heap) KV {
	return map[string]func(h *trace.Heap) KV{
		"hashtable": func(h *trace.Heap) KV { return NewHashTable(h, 16) },
		"btree":     func(h *trace.Heap) KV { return NewBTree(h) },
		"art":       func(h *trace.Heap) KV { return NewART(h) },
		"rbtree":    func(h *trace.Heap) KV { return NewRBTree(h) },
	}
}

func TestInsertGetBasic(t *testing.T) {
	for name, build := range builders() {
		h := newHeap()
		kv := build(h)
		if _, ok := kv.Get(42); ok {
			t.Fatalf("%s: empty Get hit", name)
		}
		kv.Insert(42, 1)
		kv.Insert(7, 2)
		kv.Insert(42, 3) // update
		if v, ok := kv.Get(42); !ok || v != 3 {
			t.Fatalf("%s: Get(42) = %d,%v", name, v, ok)
		}
		if v, ok := kv.Get(7); !ok || v != 2 {
			t.Fatalf("%s: Get(7) = %d,%v", name, v, ok)
		}
		if _, ok := kv.Get(99); ok {
			t.Fatalf("%s: phantom key", name)
		}
		if kv.Len() != 2 {
			t.Fatalf("%s: len = %d", name, kv.Len())
		}
	}
}

func TestEmitsAccesses(t *testing.T) {
	for name, build := range builders() {
		h := newHeap()
		kv := build(h)
		h.Drain()
		kv.Insert(1234, 1)
		ops := h.Drain()
		if len(ops) == 0 {
			t.Fatalf("%s: insert emitted no accesses", name)
		}
		stores := 0
		for _, op := range ops {
			if op.Write {
				stores++
			}
		}
		if stores == 0 {
			t.Fatalf("%s: insert emitted no stores", name)
		}
	}
}

// Property: every structure behaves exactly like a map under random
// insert/update/get sequences.
func TestMatchesMapOracle(t *testing.T) {
	for name, build := range builders() {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				r := sim.NewRNG(seed)
				h := newHeap()
				kv := build(h)
				oracle := map[uint64]uint64{}
				for i := 0; i < 2000; i++ {
					key := uint64(r.Intn(500))
					switch r.Intn(3) {
					case 0, 1:
						val := r.Uint64()
						kv.Insert(key, val)
						oracle[key] = val
					case 2:
						got, ok := kv.Get(key)
						want, wok := oracle[key]
						if ok != wok || (ok && got != want) {
							return false
						}
					}
					h.Drain()
				}
				if kv.Len() != len(oracle) {
					return false
				}
				for k, want := range oracle {
					if got, ok := kv.Get(k); !ok || got != want {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBTreeStructure(t *testing.T) {
	h := newHeap()
	bt := NewBTree(h)
	r := sim.NewRNG(4)
	for i := 0; i < 20000; i++ {
		bt.Insert(r.Uint64(), uint64(i))
	}
	if !bt.Validate() {
		t.Fatal("B+Tree ordering invariant violated")
	}
	if bt.Splits == 0 {
		t.Fatal("no splits at 20k keys")
	}
	if d := bt.Depth(); d < 2 || d > 5 {
		t.Fatalf("depth = %d, implausible for 20k keys at fanout 64", d)
	}
}

func TestBTreeSequentialKeys(t *testing.T) {
	h := newHeap()
	bt := NewBTree(h)
	for i := uint64(0); i < 5000; i++ {
		bt.Insert(i, i*2)
	}
	if !bt.Validate() {
		t.Fatal("invariant violated on sequential keys")
	}
	for i := uint64(0); i < 5000; i++ {
		if v, ok := bt.Get(i); !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestRBTreeInvariants(t *testing.T) {
	h := newHeap()
	rb := NewRBTree(h)
	r := sim.NewRNG(9)
	for i := 0; i < 10000; i++ {
		rb.Insert(r.Uint64()%5000, uint64(i))
		if i%1000 == 0 && !rb.Validate() {
			t.Fatalf("red-black invariants violated at insert %d", i)
		}
	}
	if !rb.Validate() {
		t.Fatal("final red-black invariants violated")
	}
	if rb.Rotations == 0 {
		t.Fatal("no rotations over 10k inserts")
	}
}

func TestARTGrowth(t *testing.T) {
	h := newHeap()
	art := NewART(h)
	// Keys sharing the top 7 bytes force a dense final level that must
	// grow 4 -> 16 -> 48 -> 256.
	for i := uint64(0); i < 256; i++ {
		art.Insert(0xAABBCCDDEEFF0000|i, i)
	}
	if art.Grows < 3 {
		t.Fatalf("grows = %d, want >= 3 (4->16->48->256)", art.Grows)
	}
	for i := uint64(0); i < 256; i++ {
		if v, ok := art.Get(0xAABBCCDDEEFF0000 | i); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestARTDeepSplit(t *testing.T) {
	h := newHeap()
	art := NewART(h)
	// Two keys differing only in the last byte: the leaf split must build
	// a chain down to depth 7.
	art.Insert(0x1111111111111100, 1)
	art.Insert(0x1111111111111101, 2)
	if v, _ := art.Get(0x1111111111111100); v != 1 {
		t.Fatal("first key lost after deep split")
	}
	if v, _ := art.Get(0x1111111111111101); v != 2 {
		t.Fatal("second key lost after deep split")
	}
	if art.Len() != 2 {
		t.Fatalf("len = %d", art.Len())
	}
}

func TestHashTableRehash(t *testing.T) {
	h := newHeap()
	ht := NewHashTable(h, 16)
	for i := uint64(0); i < 1000; i++ {
		ht.Insert(i, i)
	}
	if ht.Rehashes == 0 {
		t.Fatal("no rehash after 1000 inserts into 16 buckets")
	}
	for i := uint64(0); i < 1000; i++ {
		if v, ok := ht.Get(i); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v after rehash", i, v, ok)
		}
	}
}

func TestBTreeWriteBurst(t *testing.T) {
	// Inserting into the front of a near-full leaf must emit a burst of
	// stores (the shifted tail), the pattern the paper highlights.
	h := newHeap()
	bt := NewBTree(h)
	for i := uint64(2); i <= 60; i++ {
		bt.Insert(i*10, i)
	}
	h.Drain()
	bt.Insert(1, 1) // lands at position 0: shifts 59 entries
	ops := h.Drain()
	stores := 0
	for _, op := range ops {
		if op.Write {
			stores++
		}
	}
	if stores < 60 {
		t.Fatalf("front insert emitted %d stores, want a shift burst", stores)
	}
}
