package ds

import "repro/internal/trace"

// htNode is one chain node: key, value, next (24 bytes, one line).
type htNode struct {
	key, val uint64
	next     uint64 // heap address of next node, 0 = nil
	addr     uint64
}

// HashTable is a chained hash table in the style of std::unordered_map:
// an array of bucket head pointers plus per-entry chain nodes, doubling
// the bucket array when the load factor reaches 1 (a full rehash that
// touches every node — the bursty behaviour the paper's Hash Table
// workload stresses).
type HashTable struct {
	sharedHeap
	bucketBase uint64
	nbuckets   int
	buckets    []uint64
	nodes      map[uint64]*htNode
	size       int

	// Rehashes counts full-table rehash events.
	Rehashes int
}

// NewHashTable creates a table with the given initial bucket count
// (rounded up to a power of two).
func NewHashTable(h *trace.Heap, initialBuckets int) *HashTable {
	n := 16
	for n < initialBuckets {
		n *= 2
	}
	t := &HashTable{
		sharedHeap: sharedHeap{h},
		nbuckets:   n,
		buckets:    make([]uint64, n),
		nodes:      make(map[uint64]*htNode),
	}
	t.bucketBase = h.Alloc(n * 8)
	return t
}

func (t *HashTable) bucketAddr(idx int) uint64 { return t.bucketBase + uint64(idx*8) }

// Insert adds or updates a key.
func (t *HashTable) Insert(key, val uint64) {
	idx := int(hash64(key) % uint64(t.nbuckets))
	t.h.Load(t.bucketAddr(idx))
	cur := t.buckets[idx]
	for cur != 0 {
		n := t.nodes[cur]
		t.h.Load(n.addr) // key + next share the node's line
		if n.key == key {
			t.h.Store(n.addr + 8)
			n.val = val
			return
		}
		cur = n.next
	}
	addr := t.h.Alloc(24)
	n := &htNode{key: key, val: val, next: t.buckets[idx], addr: addr}
	t.nodes[addr] = n
	t.h.Store(addr) // key/val/next written together (one line)
	t.h.Store(t.bucketAddr(idx))
	t.buckets[idx] = addr
	t.size++
	if t.size > t.nbuckets {
		t.rehash()
	}
}

// Get looks a key up.
func (t *HashTable) Get(key uint64) (uint64, bool) {
	idx := int(hash64(key) % uint64(t.nbuckets))
	t.h.Load(t.bucketAddr(idx))
	cur := t.buckets[idx]
	for cur != 0 {
		n := t.nodes[cur]
		t.h.Load(n.addr)
		if n.key == key {
			return n.val, true
		}
		cur = n.next
	}
	return 0, false
}

// Len returns the number of entries.
func (t *HashTable) Len() int { return t.size }

// rehash doubles the bucket array and relinks every node, emitting the
// full-table traffic burst real unordered_map growth causes.
func (t *HashTable) rehash() {
	t.Rehashes++
	old := t.buckets
	t.nbuckets *= 2
	t.buckets = make([]uint64, t.nbuckets)
	t.bucketBase = t.h.Alloc(t.nbuckets * 8)
	for _, head := range old {
		cur := head
		for cur != 0 {
			n := t.nodes[cur]
			t.h.Load(n.addr)
			next := n.next
			idx := int(hash64(n.key) % uint64(t.nbuckets))
			n.next = t.buckets[idx]
			t.h.Store(n.addr + 16) // relink
			t.h.Store(t.bucketAddr(idx))
			t.buckets[idx] = cur
			cur = next
		}
	}
}
