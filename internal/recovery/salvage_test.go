package recovery

import (
	"errors"
	"testing"

	"repro/internal/mem"
	"repro/internal/omc"
	"repro/internal/sim"
)

// buildSalvageImage drives a two-partition group through three sealed
// epochs and returns the durable NVM image plus the cumulative golden
// image after each epoch (goldenAt[0] is the empty pre-run state).
func buildSalvageImage(t *testing.T) (*mem.Image, map[uint64]map[uint64]uint64) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	cfg.CoresPerVD = 2
	nvm := mem.NewNVM(&cfg)
	g := omc.NewGroup(&cfg, nvm, 2, omc.WithRetention())
	goldenAt := map[uint64]map[uint64]uint64{0: {}}
	cur := map[uint64]uint64{}
	for e := uint64(1); e <= 3; e++ {
		for i := uint64(0); i < 20; i++ {
			addr := (i % (8 + e*4)) << 12 // overlapping ranges per epoch
			data := e*1000 + i
			g.ReceiveVersion(omc.Version{Addr: addr, Epoch: e, Data: data}, 0)
			cur[addr] = data
		}
		snap := make(map[uint64]uint64, len(cur))
		for a, v := range cur { //nvlint:allow maprange test golden snapshot
			snap[a] = v
		}
		goldenAt[e] = snap
	}
	g.Seal(0)
	return nvm.Image(), goldenAt
}

// newestCommit scans partition id's commit log in the image and returns the
// newest valid record's words (nil if none).
func newestCommit(img *mem.Image, id int) []uint64 {
	var best []uint64
	for seq := 1; seq < 64; seq++ {
		words := make([]uint64, omc.CommitWords)
		present := true
		for i := range words {
			w, ok := img.Word(omc.CommitRecAddr(id, seq) + uint64(i*8))
			if !ok {
				present = false
				break
			}
			words[i] = w
		}
		if !present || !omc.ValidRecord(words, omc.CommitMagic) {
			continue
		}
		if best == nil || words[1] >= best[1] {
			best = words
		}
	}
	return best
}

// sealRoots scans partition id's seal log and returns epoch -> table root.
func sealRoots(img *mem.Image, id int) map[uint64]uint64 {
	roots := map[uint64]uint64{}
	for seq := 0; seq < 64; seq++ {
		words := make([]uint64, omc.SealWords)
		present := true
		for i := range words {
			w, ok := img.Word(omc.SealRecAddr(id, seq) + uint64(i*8))
			if !ok {
				present = false
				break
			}
			words[i] = w
		}
		if present && omc.ValidRecord(words, omc.SealMagic) {
			roots[words[1]] = words[2]
		}
	}
	return roots
}

// radixSlotAddrs descends the persisted radix from root and returns the
// address of the first live slot word at every level: four interior levels
// of pointers plus the leaf slot holding a pool address.
func radixSlotAddrs(t *testing.T, img *mem.Image, root uint64) []uint64 {
	t.Helper()
	var slots []uint64
	node := root
	for level := 0; level <= 4; level++ {
		found := false
		for i := 0; i < 4096/8; i++ {
			a := node + uint64(i*8)
			w, ok := img.Word(a)
			if !ok || w == 0 {
				continue
			}
			slots = append(slots, a)
			node = w
			found = true
			break
		}
		if !found {
			t.Fatalf("radix level %d of root %#x has no live slot", level, root)
		}
	}
	return slots
}

// payloadAddrOf finds the pool address mapped for lineAddr at each sealed
// epoch, searching both partitions' sealed tables.
func payloadAddrOf(t *testing.T, img *mem.Image, lineAddr uint64) map[uint64]uint64 {
	t.Helper()
	out := map[uint64]uint64{}
	for id := 0; id < 2; id++ {
		for e, root := range sealRoots(img, id) { //nvlint:allow maprange test lookup, order irrelevant
			mapping, _, ok := omc.WalkImageTable(img, id, root)
			if !ok {
				t.Fatalf("clean image: sealed table of epoch %d failed to walk", e)
			}
			if pa, hit := mapping[lineAddr]; hit {
				out[e] = pa
			}
		}
	}
	return out
}

func TestSalvageCleanImage(t *testing.T) {
	img, goldenAt := buildSalvageImage(t)
	restored, rep, err := Salvage(img)
	if err != nil {
		t.Fatalf("clean image refused: %v\n%+v", err, rep)
	}
	if rep.RestoredEpoch != 3 || rep.WalkedBack || len(rep.Damage) != 0 {
		t.Fatalf("clean image report: %+v", rep)
	}
	for _, pr := range rep.Partitions {
		if !pr.UsedMaster {
			t.Fatalf("clean image should restore via the master fast path: %+v", pr)
		}
	}
	if err := Verify(restored, goldenAt[3]); err != nil {
		t.Fatal(err)
	}
}

// TestSalvageErrorPaths is the table of refusal and walk-back scenarios the
// issue names: truncated mapping tables, checksum mismatches on every radix
// level, commit records whose pages are gone, and an empty image.
func TestSalvageErrorPaths(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, img *mem.Image)
		// Expected outcome: wantErr nil means salvage must succeed at
		// wantEpoch (checked against goldenAt); otherwise the typed error.
		wantErr    error
		wantEpoch  uint64
		wantDamage string // a damage kind that must appear in the report
	}{
		{
			name:    "empty NVM image",
			mutate:  func(t *testing.T, img *mem.Image) {},
			wantErr: ErrUnrecoverable,
		},
		{
			name: "genesis record torn",
			mutate: func(t *testing.T, img *mem.Image) {
				img.Delete(omc.GenesisAddr(0) + 8)
			},
			wantErr:    ErrUnrecoverable,
			wantDamage: "genesis-corrupt",
		},
		{
			name: "commit log destroyed on one partition",
			mutate: func(t *testing.T, img *mem.Image) {
				for seq := 1; seq < 64; seq++ {
					for i := 0; i < omc.CommitWords; i++ {
						img.Delete(omc.CommitRecAddr(0, seq) + uint64(i*8))
					}
				}
			},
			wantErr:    ErrTornEpoch,
			wantDamage: "commit-log-lost",
		},
		{
			name: "commit record present but mapped pages missing",
			mutate: func(t *testing.T, img *mem.Image) {
				for _, pa := range payloadAddrOf(t, img, 0) { //nvlint:allow maprange test mutation, order irrelevant
					img.Delete(pa)
					img.Delete(pa + 8)
					img.Delete(pa + 16)
				}
			},
			wantErr:    ErrTornEpoch,
			wantDamage: "payload-missing",
		},
		{
			name: "payload checksum mismatch at the tip walks back",
			mutate: func(t *testing.T, img *mem.Image) {
				pas := payloadAddrOf(t, img, 0)
				img.FlipBit(pas[3], 7)
			},
			wantEpoch:  2,
			wantDamage: "payload-checksum",
		},
		{
			name: "payload checksum mismatch on every epoch refuses",
			mutate: func(t *testing.T, img *mem.Image) {
				for _, pa := range payloadAddrOf(t, img, 0) { //nvlint:allow maprange test mutation, order irrelevant
					img.FlipBit(pa, 7)
				}
			},
			wantErr:    ErrChecksum,
			wantDamage: "payload-checksum",
		},
	}
	// Checksum mismatch on each radix level of the master table: the fast
	// path must reject it and the seal-log fold must still restore epoch 3.
	levelName := []string{"root", "interior-1", "interior-2", "interior-3", "leaf"}
	for lvl := 0; lvl <= 4; lvl++ {
		lvl := lvl
		cases = append(cases, struct {
			name       string
			mutate     func(t *testing.T, img *mem.Image)
			wantErr    error
			wantEpoch  uint64
			wantDamage string
		}{
			name: "master radix corrupt at level " + levelName[lvl],
			mutate: func(t *testing.T, img *mem.Image) {
				commit := newestCommit(img, 0)
				if commit == nil {
					t.Fatal("clean image has no commit record")
				}
				slots := radixSlotAddrs(t, img, commit[4])
				img.FlipBit(slots[lvl], 5)
			},
			wantEpoch:  3,
			wantDamage: "table-digest",
		})
	}
	// Truncated mapping table: a whole interior pointer deleted, not just
	// flipped — the walk sees an empty subtree and the entry count shrinks.
	cases = append(cases, struct {
		name       string
		mutate     func(t *testing.T, img *mem.Image)
		wantErr    error
		wantEpoch  uint64
		wantDamage string
	}{
		name: "master mapping table truncated",
		mutate: func(t *testing.T, img *mem.Image) {
			commit := newestCommit(img, 0)
			if commit == nil {
				t.Fatal("clean image has no commit record")
			}
			img.Delete(radixSlotAddrs(t, img, commit[4])[0])
		},
		wantEpoch:  3,
		wantDamage: "table-digest",
	})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var img *mem.Image
			var goldenAt map[uint64]map[uint64]uint64
			if tc.name == "empty NVM image" {
				img = mem.NewImage(nil)
			} else {
				img, goldenAt = buildSalvageImage(t)
			}
			tc.mutate(t, img)
			restored, rep, err := Salvage(img)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v\nreport: %+v", err, tc.wantErr, rep)
				}
				if !rep.Refused || !rep.NonEmpty() {
					t.Fatalf("refusal must carry a non-empty report: %+v", rep)
				}
				if restored != nil {
					t.Fatal("refusal returned an image")
				}
			} else {
				if err != nil {
					t.Fatalf("salvage refused: %v\nreport: %+v", err, rep)
				}
				if rep.RestoredEpoch != tc.wantEpoch {
					t.Fatalf("restored epoch %d, want %d\nreport: %+v", rep.RestoredEpoch, tc.wantEpoch, rep)
				}
				if verr := Verify(restored, goldenAt[tc.wantEpoch]); verr != nil {
					t.Fatalf("restored image diverges from golden at epoch %d: %v", tc.wantEpoch, verr)
				}
				if rep.WalkedBack != (tc.wantEpoch < rep.ClaimedEpoch) {
					t.Fatalf("WalkedBack flag inconsistent: %+v", rep)
				}
			}
			if tc.wantDamage != "" {
				found := false
				for _, d := range rep.Damage {
					if d.Kind == tc.wantDamage {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("damage kind %q not reported: %+v", tc.wantDamage, rep.Damage)
				}
			}
		})
	}
}

// TestSalvageSealLogLoss covers the coverage cap: whole seal records gone
// while the commit record still promises them must never fold past the
// surviving prefix.
func TestSalvageSealLogLoss(t *testing.T) {
	img, _ := buildSalvageImage(t)
	// Also break the master fast path so salvage is forced onto the fold.
	commit := newestCommit(img, 0)
	if commit == nil {
		t.Fatal("clean image has no commit record")
	}
	img.FlipBit(radixSlotAddrs(t, img, commit[4])[0], 5)
	// Wipe partition 0's entire seal log: absent slots look like a natural
	// log tail, only the commit record's seal count betrays the loss.
	for seq := 0; seq < 64; seq++ {
		for i := 0; i < omc.SealWords; i++ {
			img.Delete(omc.SealRecAddr(0, seq) + uint64(i*8))
		}
	}
	restored, rep, err := Salvage(img)
	if err == nil {
		t.Fatalf("salvage accepted an incomplete seal log: %+v (%d lines)", rep, len(restored))
	}
	found := false
	for _, d := range rep.Damage {
		if d.Kind == "seal-log-lost" {
			found = true
		}
	}
	if !found {
		t.Fatalf("seal-log-lost not reported: %+v", rep.Damage)
	}
}
