// Package recovery implements the snapshot usage models of paper §V-E on
// top of the MNM backend: crash recovery (rebuild the consistent image of
// rec-epoch and resume), remote replication (ship per-epoch deltas to a
// backup machine that replays them as redo logs), and time-travel reads
// for debugging.
package recovery

import (
	"fmt"
	"sort"

	"repro/internal/omc"
)

// Report summarises one crash-recovery run.
type Report struct {
	RecEpoch      uint64
	LinesRestored int
	// LatencyCycles is the simulated recovery time: NVM reads for every
	// mapped line (proportional to the working set, §III-C).
	LatencyCycles uint64
}

// Recover rebuilds the consistent memory image from the Master Tables
// ("the recovery procedure loads the consistent image from the NVM by
// scanning Mmaster and reading all versions into their corresponding
// addresses", §V-E) and returns it with a report.
func Recover(g *omc.Group) (map[uint64]uint64, Report) {
	img, lat := g.RecoverImage()
	return img, Report{
		RecEpoch:      g.RecEpoch(),
		LinesRestored: len(img),
		LatencyCycles: lat,
	}
}

// Verify compares a recovered image against a golden address->payload map
// and returns a descriptive error for the first divergence.
func Verify(img, golden map[uint64]uint64) error {
	if len(img) != len(golden) {
		return fmt.Errorf("recovery: image has %d lines, golden has %d", len(img), len(golden))
	}
	// Walk the golden image in address order so the first divergence
	// reported is the same on every run (map order would make the error
	// text nondeterministic).
	addrs := make([]uint64, 0, len(golden))
	for addr := range golden {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		want := golden[addr]
		got, ok := img[addr]
		if !ok {
			return fmt.Errorf("recovery: line %#x missing from image", addr)
		}
		if got != want {
			return fmt.Errorf("recovery: line %#x = %d, want %d", addr, got, want)
		}
	}
	return nil
}

// Replica is a remote backup machine (paper §V-E "Remote Replication"):
// it receives per-epoch snapshot deltas over the (abstracted) network and
// replays them, in epoch order, as redo logs into its own image.
type Replica struct {
	pending map[uint64]map[uint64]uint64 // epoch -> delta
	applied uint64
	image   map[uint64]uint64

	// BytesReceived counts delta payload shipped to this replica.
	BytesReceived int64
}

// NewReplica creates an empty backup machine.
func NewReplica() *Replica {
	return &Replica{
		pending: make(map[uint64]map[uint64]uint64),
		image:   make(map[uint64]uint64),
	}
}

// Receive accepts epoch e's delta. Deltas may arrive out of order; replay
// applies them in epoch order.
func (r *Replica) Receive(e uint64, delta map[uint64]uint64) {
	cp := make(map[uint64]uint64, len(delta))
	//nvlint:allow maprange map copy plus size accounting, order-independent
	for a, d := range delta {
		cp[a] = d
		r.BytesReceived += 64 // one line per entry on the wire
	}
	r.pending[e] = cp
}

// ReplayTo applies all pending deltas with epoch <= target, in order, and
// returns how many epochs were applied. Epochs at or below the already
// applied point are ignored (idempotent redo).
func (r *Replica) ReplayTo(target uint64) int {
	var epochs []uint64
	for e := range r.pending {
		if e > r.applied && e <= target {
			epochs = append(epochs, e)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	for _, e := range epochs {
		//nvlint:allow maprange redo-log apply into a map: last write per address within one epoch delta is unique
		for a, d := range r.pending[e] {
			r.image[a] = d
		}
		delete(r.pending, e)
		r.applied = e
	}
	return len(epochs)
}

// AppliedEpoch returns the newest epoch reflected in the replica's image.
func (r *Replica) AppliedEpoch() uint64 { return r.applied }

// Image returns the replica's current materialised state.
func (r *Replica) Image() map[uint64]uint64 { return r.image }

// Replicate ships every accessible epoch of the primary's MNM backend to
// the replica and replays up to the recoverable epoch. It returns the
// number of epochs shipped.
func Replicate(g *omc.Group, r *Replica) int {
	epochs := g.Epochs()
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	for _, e := range epochs {
		r.Receive(e, g.EpochDelta(e))
	}
	r.ReplayTo(g.RecEpoch())
	return len(epochs)
}

// TimeTravel reads addr as of the given epoch with fall-through semantics
// (§V-E), returning the value, the epoch that produced it, and whether any
// version at or before the requested epoch is still materialised.
func TimeTravel(g *omc.Group, addr, epoch uint64) (uint64, uint64, bool) {
	return g.TimeTravelRead(addr, epoch)
}

// History returns the full version history of addr across accessible
// epochs, oldest first — the watch-point inspection flow of the
// distributed-debugging usage model.
type Version struct {
	Epoch uint64
	Data  uint64
}

// History enumerates addr's versions.
func History(g *omc.Group, addr uint64) []Version {
	epochs := g.Epochs()
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	var out []Version
	for _, e := range epochs {
		if delta := g.EpochDelta(e); delta != nil {
			if d, ok := delta[addr]; ok {
				out = append(out, Version{Epoch: e, Data: d})
			}
		}
	}
	return out
}
