package recovery

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/omc"
)

// Typed salvage errors. Salvage never panics and never silently succeeds:
// it either returns an image provably equal to a sealed epoch, or one of
// these wrapped errors plus a non-empty report saying exactly what was
// damaged.
var (
	// ErrTornEpoch: in-flight state was torn or lost and no fully-durable
	// sealed epoch below the damage could be reconstructed.
	ErrTornEpoch = errors.New("torn epoch")
	// ErrChecksum: persisted state failed checksum/digest validation and
	// no intact epoch below the corruption could be reconstructed.
	ErrChecksum = errors.New("checksum mismatch")
	// ErrUnrecoverable: the image's roots of trust (genesis record,
	// commit log) are missing or destroyed; nothing can be proven.
	ErrUnrecoverable = errors.New("unrecoverable image")
)

// Damage is one validated finding about the image, machine-readable.
type Damage struct {
	Kind  string `json:"kind"`  // e.g. "record-torn", "table-digest", "payload-checksum"
	OMC   int    `json:"omc"`   // owning partition (-1: global)
	Epoch uint64 `json:"epoch"` // epoch involved (0 when not epoch-specific)
	Addr  uint64 `json:"addr"`  // NVM address involved (0 when structural)
	Note  string `json:"note"`
}

// PartitionReport summarises one OMC partition's salvage.
type PartitionReport struct {
	ID            int    `json:"id"`
	CommitEpoch   uint64 `json:"commit_epoch"`   // newest valid committed epoch
	CommitRecords int    `json:"commit_records"` // valid commit records seen
	SealedEpochs  int    `json:"sealed_epochs"`  // valid seal-log prefix length
	UsedMaster    bool   `json:"used_master"`    // fast path: master matched its commit record
	RestoredEpoch uint64 `json:"restored_epoch"`
}

// SalvageReport is the machine-readable result of a salvage attempt.
type SalvageReport struct {
	GroupSize     int    `json:"group_size"`
	ClaimedEpoch  uint64 `json:"claimed_epoch"` // group-wide committed epoch (min over partitions)
	RestoredEpoch uint64 `json:"restored_epoch"`
	// StoreSealedEpoch is the newest epoch the on-disk manifest claimed
	// durable when salvage ran against a file-backed store directory
	// (SalvageDir); zero for in-memory salvage.
	StoreSealedEpoch uint64            `json:"store_sealed_epoch,omitempty"`
	WalkedBack       bool              `json:"walked_back"`
	Refused          bool              `json:"refused"`
	Reason           string            `json:"reason,omitempty"`
	LinesRestored    int               `json:"lines_restored"`
	Partitions       []PartitionReport `json:"partitions"`
	Damage           []Damage          `json:"damage"`
}

// JSON renders the report for machine consumption.
func (r *SalvageReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// NonEmpty reports whether the report carries actual findings — the
// harness requires every refusal to come with one.
func (r *SalvageReport) NonEmpty() bool {
	return r != nil && (len(r.Damage) > 0 || r.Reason != "")
}

func (r *SalvageReport) addDamage(kind string, id int, epoch, addr uint64, note string) {
	r.Damage = append(r.Damage, Damage{Kind: kind, OMC: id, Epoch: epoch, Addr: addr, Note: note})
}

// logRecord is one scanned slot of a commit or seal log.
type logRecord struct {
	seq   int
	words []uint64
	// absent: no word of the slot is persisted. torn: partially persisted
	// or checksum-invalid.
	absent bool
	valid  bool
}

// scanLog reads an append-only record log from the image: fixed 64-byte
// slots, each a magic-prefixed checksummed record. The scan stops after a
// run of fully-absent slots (the log's tail).
func scanLog(img *mem.Image, addrOf func(seq int) uint64, nwords int, magic uint64) []logRecord {
	const tailGap = 8 // consecutive absent slots ending the scan
	var out []logRecord
	gap := 0
	for seq := 0; gap < tailGap && seq < 1<<16; seq++ {
		base := addrOf(seq)
		words := make([]uint64, 0, nwords)
		present := 0
		for i := 0; i < nwords; i++ {
			w, ok := img.Word(base + uint64(i*8))
			if ok {
				present++
			}
			words = append(words, w)
		}
		r := logRecord{seq: seq, words: words}
		if present == 0 {
			r.absent = true
			gap++
			out = append(out, r)
			continue
		}
		gap = 0
		r.valid = present == nwords && omc.ValidRecord(words, magic)
		out = append(out, r)
	}
	return out
}

// sealInfo is one valid sealed-epoch record plus its lazily walked table.
type sealInfo struct {
	epoch   uint64
	root    uint64
	entries int
	digest  uint64

	walked  bool
	mapping map[uint64]uint64
	tableOK bool
}

// partition is the per-OMC salvage state.
type partition struct {
	id  int
	img *mem.Image
	rep *SalvageReport

	commitEpoch   uint64 // newest valid committed epoch
	commitRoot    uint64
	commitEntries int
	commitDigest  uint64
	commitSeals   int  // seal records the newest commit record promises
	commitValid   bool // at least one valid commit record
	commitRecords int

	seals []*sealInfo // valid seal-log prefix, ascending epochs

	// coverage is the highest epoch whose delta fold is provably complete.
	// When the valid seal prefix is shorter than the newest commit record's
	// promised seal count, records committed before the crash are missing —
	// folding past the prefix tip would silently drop their deltas.
	coverage uint64

	masterChecked bool
	masterImage   map[uint64]uint64 // lineAddr -> data, validated
	masterOK      bool
}

// scanPartition reads partition id's logs out of the image.
func scanPartition(img *mem.Image, id int, rep *SalvageReport) *partition {
	p := &partition{id: id, img: img, rep: rep}

	commits := scanLog(img, func(seq int) uint64 { return omc.CommitRecAddr(p.id, seq) }, omc.CommitWords, omc.CommitMagic)
	for _, r := range commits {
		if r.seq == 0 {
			continue // genesis slot, validated separately
		}
		if r.absent {
			continue
		}
		if !r.valid {
			p.rep.addDamage("record-torn", p.id, 0, omc.CommitRecAddr(p.id, r.seq),
				fmt.Sprintf("commit record %d torn or corrupt", r.seq))
			continue
		}
		p.commitRecords++
		if e := r.words[1]; !p.commitValid || e >= p.commitEpoch {
			p.commitValid = true
			p.commitEpoch = e
			p.commitEntries = int(r.words[2])
			p.commitSeals = int(r.words[3])
			p.commitRoot = r.words[4]
			p.commitDigest = r.words[5]
		}
	}

	sealRecs := scanLog(img, func(seq int) uint64 { return omc.SealRecAddr(p.id, seq) }, omc.SealWords, omc.SealMagic)
	prefixOpen := true
	var lastEpoch uint64
	for _, r := range sealRecs {
		if r.absent {
			if prefixOpen {
				// Check whether anything follows: a valid record beyond a
				// gap means the gap is damage, not the log tail.
				prefixOpen = false
			}
			continue
		}
		if !prefixOpen {
			p.rep.addDamage("record-stranded", p.id, 0, omc.SealRecAddr(p.id, r.seq),
				fmt.Sprintf("seal record %d follows a damaged slot; epochs beyond the gap cannot be trusted", r.seq))
			continue
		}
		if !r.valid {
			p.rep.addDamage("record-torn", p.id, 0, omc.SealRecAddr(p.id, r.seq),
				fmt.Sprintf("seal record %d torn or corrupt", r.seq))
			prefixOpen = false
			continue
		}
		e := r.words[1]
		if e == 0 || (len(p.seals) > 0 && e <= lastEpoch) {
			p.rep.addDamage("record-order", p.id, e, omc.SealRecAddr(p.id, r.seq),
				"seal log epochs must be strictly ascending and non-zero")
			prefixOpen = false
			continue
		}
		lastEpoch = e
		p.seals = append(p.seals, &sealInfo{
			epoch:   e,
			root:    r.words[2],
			entries: int(r.words[3]),
			digest:  r.words[4],
		})
	}

	// Seal-log coverage: every seal record the newest commit record promises
	// (commitSeals of them, at seqs below it) must survive in the valid
	// prefix, or epochs past the prefix tip have silently lost deltas.
	p.coverage = ^uint64(0)
	if p.commitValid && len(p.seals) < p.commitSeals {
		p.coverage = 0
		if len(p.seals) > 0 {
			p.coverage = p.seals[len(p.seals)-1].epoch
		}
		p.rep.addDamage("seal-log-lost", p.id, p.coverage, 0,
			fmt.Sprintf("commit record promises %d seal records but only %d survive; restorable horizon capped at epoch %d",
				p.commitSeals, len(p.seals), p.coverage))
	}
	return p
}

// payloadAt validates a persisted payload record against its mapping.
func payloadAt(img *mem.Image, lineAddr, poolAddr uint64) (data, etag uint64, present, valid bool) {
	data, ok1 := img.Word(poolAddr)
	etag, ok2 := img.Word(poolAddr + 8)
	chk, ok3 := img.Word(poolAddr + 16)
	present = ok1 && ok2 && ok3
	if !present {
		return data, etag, false, false
	}
	return data, etag, true, chk == omc.LineCheck(lineAddr, etag, data)
}

// walkSeal walks (and caches) a sealed table from the image, proving it
// against the seal record's digest and entry count.
func (p *partition) walkSeal(s *sealInfo) bool {
	if s.walked {
		return s.tableOK
	}
	s.walked = true
	mapping, digest, structOK := omc.WalkImageTable(p.img, p.id, s.root)
	if !structOK || digest != s.digest || len(mapping) != s.entries {
		p.rep.addDamage("table-digest", p.id, s.epoch, s.root,
			fmt.Sprintf("sealed table of epoch %d does not match its record (walk ok=%v, %d entries)",
				s.epoch, structOK, len(mapping)))
		s.tableOK = false
		return false
	}
	s.mapping = mapping
	s.tableOK = true
	return true
}

// checkMaster validates the Master Table fast path once: the walked
// master must match the newest commit record exactly, and every mapped
// payload must validate with an epoch tag at or below the committed epoch.
func (p *partition) checkMaster() bool {
	if p.masterChecked {
		return p.masterOK
	}
	p.masterChecked = true
	if !p.commitValid {
		return false
	}
	mapping, digest, structOK := omc.WalkImageTable(p.img, p.id, p.commitRoot)
	if !structOK || digest != p.commitDigest || len(mapping) != p.commitEntries {
		p.rep.addDamage("table-digest", p.id, p.commitEpoch, p.commitRoot,
			fmt.Sprintf("master table does not match commit record at epoch %d (walk ok=%v, %d entries, want %d)",
				p.commitEpoch, structOK, len(mapping), p.commitEntries))
		return false
	}
	img := make(map[uint64]uint64, len(mapping))
	for _, line := range omc.SortedKeys(mapping) {
		poolAddr := mapping[line]
		data, etag, present, valid := payloadAt(p.img, line, poolAddr)
		switch {
		case !present:
			p.rep.addDamage("payload-missing", p.id, p.commitEpoch, poolAddr,
				fmt.Sprintf("master-mapped payload of line %#x not fully persisted", line))
			return false
		case !valid:
			p.rep.addDamage("payload-checksum", p.id, etag, poolAddr,
				fmt.Sprintf("master-mapped payload of line %#x fails its checksum", line))
			return false
		case etag > p.commitEpoch:
			p.rep.addDamage("payload-epoch", p.id, etag, poolAddr,
				fmt.Sprintf("master-mapped payload of line %#x tagged epoch %d beyond committed epoch %d",
					line, etag, p.commitEpoch))
			return false
		}
		img[line] = data
	}
	p.masterImage = img
	p.masterOK = true
	return true
}

// restoreAt returns the largest epoch e <= target this partition can
// restore exactly, with the restored partition image. It always succeeds
// at some e >= 0 (e = 0 is the empty pre-run image).
func (p *partition) restoreAt(target uint64) (uint64, map[uint64]uint64) {
	if p.commitValid && target == p.commitEpoch && p.checkMaster() {
		return target, p.masterImage
	}
	// Fold fallback: replay the valid seal-log prefix up to target,
	// newest epoch winning per line, then prove every winning payload.
	// Any damage lowers the target below the damaged epoch and re-folds.
	e := target
	if e > p.coverage {
		e = p.coverage
	}
	for e > 0 {
		// Every sealed table at or below e must prove out; one that does
		// not caps the restorable horizon below its epoch.
		bad := false
		for _, s := range p.seals {
			if s.epoch > e {
				break
			}
			if !p.walkSeal(s) {
				e = s.epoch - 1
				bad = true
				break
			}
		}
		if bad {
			continue
		}
		type winner struct {
			poolAddr uint64
			epoch    uint64
		}
		win := make(map[uint64]winner)
		for _, s := range p.seals {
			if s.epoch > e {
				break
			}
			for _, line := range omc.SortedKeys(s.mapping) {
				win[line] = winner{poolAddr: s.mapping[line], epoch: s.epoch}
			}
		}
		lines := make([]uint64, 0, len(win))
		//nvlint:allow maprange collect-then-sort
		for line := range win {
			lines = append(lines, line)
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
		img := make(map[uint64]uint64, len(win))
		damaged := false
		lowest := e
		for _, line := range lines {
			w := win[line]
			data, etag, present, valid := payloadAt(p.img, line, w.poolAddr)
			switch {
			case !present:
				p.rep.addDamage("payload-missing", p.id, w.epoch, w.poolAddr,
					fmt.Sprintf("payload of line %#x (epoch %d) not fully persisted", line, w.epoch))
			case !valid:
				p.rep.addDamage("payload-checksum", p.id, w.epoch, w.poolAddr,
					fmt.Sprintf("payload of line %#x (epoch %d) fails its checksum", line, w.epoch))
			case etag != w.epoch:
				p.rep.addDamage("payload-epoch", p.id, w.epoch, w.poolAddr,
					fmt.Sprintf("payload of line %#x tagged epoch %d where table claims %d", line, etag, w.epoch))
			default:
				img[line] = data
				continue
			}
			damaged = true
			if w.epoch-1 < lowest {
				lowest = w.epoch - 1
			}
		}
		if damaged {
			e = lowest
			continue
		}
		return e, img
	}
	return 0, map[uint64]uint64{}
}

// Salvage reconstructs the newest provably-consistent memory image from a
// raw durable NVM image, with salvage-or-refuse semantics:
//
//   - success: the returned image equals the group's state at exactly
//     report.RestoredEpoch — either the committed tip (master fast path)
//     or an older sealed epoch when the tip was torn (report.WalkedBack).
//   - refusal: a typed error (ErrTornEpoch, ErrChecksum, ErrUnrecoverable)
//     wrapped with context, plus a non-empty report. No image is returned.
//
// Every partition must restore the same epoch; the global fixpoint walks
// all partitions back to the highest epoch they can all prove.
func Salvage(img *mem.Image) (map[uint64]uint64, *SalvageReport, error) {
	rep := &SalvageReport{Partitions: []PartitionReport{}, Damage: []Damage{}}
	if img.Len() == 0 {
		rep.Refused = true
		rep.Reason = "empty NVM image: no genesis record"
		rep.addDamage("genesis-missing", -1, 0, 0, "image holds no persisted words")
		return nil, rep, fmt.Errorf("recovery: empty NVM image: %w", ErrUnrecoverable)
	}

	// Genesis: partition 0's record is the root of trust for group shape.
	gwords := make([]uint64, 0, omc.GenesisWords)
	present := 0
	for i := 0; i < omc.GenesisWords; i++ {
		w, ok := img.Word(omc.GenesisAddr(0) + uint64(i*8))
		if ok {
			present++
		}
		gwords = append(gwords, w)
	}
	if present != omc.GenesisWords || !omc.ValidRecord(gwords, omc.GenesisMagic) {
		rep.Refused = true
		rep.Reason = "genesis record missing or corrupt"
		rep.addDamage("genesis-corrupt", 0, 0, omc.GenesisAddr(0),
			fmt.Sprintf("genesis record invalid (%d/%d words persisted)", present, omc.GenesisWords))
		return nil, rep, fmt.Errorf("recovery: genesis record missing or corrupt: %w", ErrUnrecoverable)
	}
	n := int(gwords[1])
	if n <= 0 || n > 64 {
		rep.Refused = true
		rep.Reason = fmt.Sprintf("genesis record claims implausible group size %d", n)
		rep.addDamage("genesis-corrupt", 0, 0, omc.GenesisAddr(0), rep.Reason)
		return nil, rep, fmt.Errorf("recovery: implausible group size %d: %w", n, ErrUnrecoverable)
	}
	rep.GroupSize = n

	parts := make([]*partition, n)
	anyCommit := false
	for i := 0; i < n; i++ {
		parts[i] = scanPartition(img, i, rep)
		if parts[i].commitValid {
			anyCommit = true
		}
	}

	// The group's claim is the minimum committed epoch across partitions
	// (Group.Seal raises all partitions together, so a partition whose
	// commit log lags — or was destroyed — drags the claim down).
	var claim uint64
	if anyCommit {
		claim = parts[0].commitEpoch
		claimKnown := parts[0].commitValid
		for _, p := range parts[1:] {
			switch {
			case !p.commitValid:
				claimKnown = false
			case !claimKnown:
				// A partition with no valid commit record caps the claim at 0:
				// nothing group-wide can be proven beyond the pre-run state.
			case p.commitEpoch < claim:
				claim = p.commitEpoch
			}
		}
		if !claimKnown {
			claim = 0
			rep.addDamage("commit-log-lost", -1, 0, 0,
				"at least one partition has no valid commit record; group claim capped at epoch 0")
		}
	}
	rep.ClaimedEpoch = claim

	// Global fixpoint: every partition must restore the same epoch.
	target := claim
	images := make([]map[uint64]uint64, n)
	restored := make([]uint64, n)
	for {
		lowest := target
		for i, p := range parts {
			restored[i], images[i] = p.restoreAt(target)
			if restored[i] < lowest {
				lowest = restored[i]
			}
		}
		if lowest == target {
			break
		}
		target = lowest
	}

	for i, p := range parts {
		rep.Partitions = append(rep.Partitions, PartitionReport{
			ID:            p.id,
			CommitEpoch:   p.commitEpoch,
			CommitRecords: p.commitRecords,
			SealedEpochs:  len(p.seals),
			UsedMaster:    p.masterOK && restored[i] == p.commitEpoch,
			RestoredEpoch: restored[i],
		})
	}
	rep.RestoredEpoch = target
	rep.WalkedBack = target < claim

	if target == 0 && (claim > 0 || len(rep.Damage) > 0) {
		// Damage forced us all the way back to the empty pre-run image:
		// that is a refusal, not a salvage.
		rep.Refused = true
		kind := classifyRefusal(rep.Damage)
		rep.Reason = fmt.Sprintf("no fully-durable sealed epoch survives (claimed epoch %d)", claim)
		if !rep.NonEmpty() {
			rep.addDamage("refused", -1, 0, 0, rep.Reason)
		}
		return nil, rep, fmt.Errorf("recovery: %s: %w", rep.Reason, kind)
	}

	out := make(map[uint64]uint64)
	for i := range images {
		// Partitions own disjoint address sets; merge order is irrelevant
		// but iterate deterministically anyway.
		for _, line := range omc.SortedKeys(images[i]) {
			out[line] = images[i][line]
		}
	}
	rep.LinesRestored = len(out)
	return out, rep, nil
}

// SalvageObserved runs Salvage and additionally narrates its decisions on
// the observability bus as KindSalvage events, in report order: one per
// damage finding (Note = the damage kind), one per partition verdict (Note
// = "restored", Arg = 1 when the master fast path applied), and one final
// group decision (Note = "refused", "walked-back" or "restored"). Recovery
// runs outside simulated time, so salvage events carry cycle 0.
func SalvageObserved(img *mem.Image, bus *obs.Bus) (map[uint64]uint64, *SalvageReport, error) {
	out, rep, err := Salvage(img)
	if bus != nil && rep != nil {
		for _, d := range rep.Damage {
			bus.EmitNote(obs.KindSalvage, 0, d.OMC, d.Epoch, d.Addr, 0, 0, d.Kind)
		}
		for _, p := range rep.Partitions {
			var master uint64
			if p.UsedMaster {
				master = 1
			}
			bus.EmitNote(obs.KindSalvage, 0, p.ID, p.RestoredEpoch, 0, master, 0, "restored")
		}
		decision := "restored"
		switch {
		case rep.Refused:
			decision = "refused"
		case rep.WalkedBack:
			decision = "walked-back"
		}
		bus.EmitNote(obs.KindSalvage, 0, -1, rep.RestoredEpoch, 0,
			uint64(rep.LinesRestored), rep.ClaimedEpoch, decision)
	}
	return out, rep, err
}

// classifyRefusal picks the typed error matching the observed damage:
// checksum-class findings dominate torn/missing ones; an image whose roots
// of trust vanished entirely is unrecoverable.
func classifyRefusal(damage []Damage) error {
	torn := false
	for _, d := range damage {
		switch d.Kind {
		case "payload-checksum", "table-digest", "record-order", "payload-epoch":
			return ErrChecksum
		case "record-torn", "payload-missing", "record-stranded",
			"seal-log-lost", "commit-log-lost":
			torn = true
		}
	}
	if torn {
		return ErrTornEpoch
	}
	return ErrUnrecoverable
}
