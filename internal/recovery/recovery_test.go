package recovery

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/omc"
	"repro/internal/sim"
)

func buildGroup(t *testing.T, retain bool) (*omc.Group, map[uint64]uint64) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	cfg.CoresPerVD = 2
	nvm := mem.NewNVM(&cfg)
	var opts []omc.Option
	if retain {
		opts = append(opts, omc.WithRetention())
	}
	g := omc.NewGroup(&cfg, nvm, 2, opts...)
	golden := map[uint64]uint64{}
	// Three epochs of versions; later epochs overwrite some addresses.
	for e := uint64(1); e <= 3; e++ {
		for i := uint64(0); i < 20; i++ {
			addr := (i % (8 + e*4)) << 6 << 6 // overlapping ranges per epoch
			data := e*1000 + i
			g.ReceiveVersion(omc.Version{Addr: addr, Epoch: e, Data: data}, 0)
			golden[addr] = data // within an epoch, last write wins; epochs ascend
		}
	}
	g.Seal(0)
	return g, golden
}

func TestRecoverMatchesGolden(t *testing.T) {
	g, golden := buildGroup(t, false)
	img, rep := Recover(g)
	if rep.RecEpoch != 3 {
		t.Fatalf("rec epoch = %d", rep.RecEpoch)
	}
	if rep.LinesRestored != len(golden) || rep.LatencyCycles == 0 {
		t.Fatalf("report = %+v, golden lines %d", rep, len(golden))
	}
	if err := Verify(img, golden); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsDivergence(t *testing.T) {
	img := map[uint64]uint64{0x40: 1, 0x80: 2}
	if err := Verify(img, map[uint64]uint64{0x40: 1, 0x80: 2}); err != nil {
		t.Fatal(err)
	}
	if err := Verify(img, map[uint64]uint64{0x40: 1}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := Verify(img, map[uint64]uint64{0x40: 1, 0x80: 9}); err == nil {
		t.Fatal("value mismatch accepted")
	}
	if err := Verify(map[uint64]uint64{0x40: 1, 0xC0: 2}, map[uint64]uint64{0x40: 1, 0x80: 2}); err == nil {
		t.Fatal("missing line accepted")
	}
}

func TestReplication(t *testing.T) {
	g, golden := buildGroup(t, true)
	r := NewReplica()
	shipped := Replicate(g, r)
	if shipped == 0 {
		t.Fatal("no epochs shipped")
	}
	if r.AppliedEpoch() != g.RecEpoch() {
		t.Fatalf("replica at epoch %d, primary rec-epoch %d", r.AppliedEpoch(), g.RecEpoch())
	}
	if err := Verify(r.Image(), golden); err != nil {
		t.Fatalf("replica image diverged: %v", err)
	}
	if r.BytesReceived == 0 {
		t.Fatal("no bytes on the wire")
	}
}

func TestReplicaOutOfOrderDeltas(t *testing.T) {
	r := NewReplica()
	r.Receive(2, map[uint64]uint64{0x40: 20})
	r.Receive(1, map[uint64]uint64{0x40: 10, 0x80: 11})
	r.Receive(3, map[uint64]uint64{0x80: 30})
	if n := r.ReplayTo(2); n != 2 {
		t.Fatalf("replayed %d epochs, want 2", n)
	}
	if r.Image()[0x40] != 20 || r.Image()[0x80] != 11 {
		t.Fatalf("image after epoch 2 = %v", r.Image())
	}
	if n := r.ReplayTo(3); n != 1 {
		t.Fatalf("replayed %d, want 1", n)
	}
	if r.Image()[0x80] != 30 {
		t.Fatal("epoch 3 not applied")
	}
	// Replays are idempotent.
	if n := r.ReplayTo(3); n != 0 {
		t.Fatalf("idempotent replay applied %d epochs", n)
	}
}

func TestHistoryAndTimeTravel(t *testing.T) {
	g, _ := buildGroup(t, true)
	addr := uint64(0) // written in every epoch (i=0 maps to 0)
	hist := History(g, addr)
	if len(hist) != 3 {
		t.Fatalf("history length = %d, want 3", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i-1].Epoch >= hist[i].Epoch {
			t.Fatal("history not in epoch order")
		}
	}
	if d, e, ok := TimeTravel(g, addr, 2); !ok || e != 2 || d != hist[1].Data {
		t.Fatalf("time travel = %d,%d,%v", d, e, ok)
	}
}

// TestEndToEndCrashRecovery drives the full NVOverlay stack with a real
// workload-style store sequence, "crashes" (drains and seals), recovers,
// and verifies the image matches the final memory contents.
func TestEndToEndCrashRecovery(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Cores = 4
	cfg.CoresPerVD = 2
	cfg.LLCSlices = 2
	cfg.L1Size = 8 * 2 * 64
	cfg.L1Ways = 2
	cfg.L2Size = 16 * 2 * 64
	cfg.L2Ways = 2
	cfg.LLCSize = 2 * 8 * 4 * 64
	cfg.LLCWays = 4
	cfg.EpochSize = 64
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	nvo := core.New(&cfg, core.WithOMCs(2))
	clocks := sim.NewClocks(cfg.Cores)
	nvo.Bind(clocks)
	r := sim.NewRNG(3)
	golden := map[uint64]uint64{}
	var token uint64
	for i := 0; i < 20000; i++ {
		tid := r.Intn(cfg.Cores)
		addr := uint64(r.Intn(400) * 64)
		if r.Intn(2) == 0 {
			token++
			lat := nvo.Access(tid, addr, true, token)
			clocks.Advance(tid, lat)
			golden[addr] = token
		} else {
			clocks.Advance(tid, nvo.Access(tid, addr, false, 0))
		}
	}
	nvo.Drain(clocks.Max())
	img, rep := Recover(nvo.Group())
	if err := Verify(img, golden); err != nil {
		t.Fatal(err)
	}
	if rep.LinesRestored != len(golden) {
		t.Fatalf("restored %d, want %d", rep.LinesRestored, len(golden))
	}
}
