package recovery_test

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/recovery"
	"repro/internal/soak"
)

// buildStore writes a complete soak store in-process and returns its
// directory plus golden images. CheckpointEvery 5 leaves a mixed layout
// at completion — base checkpoint, two sealed delta segments, one empty
// active segment — so every file class exists to corrupt:
//
//	MANIFEST  checkpoint-000009.img  delta-0000{10,11,12}.log
//
// (12 seals total: 6 epochs x 2 members; checkpoints after seals 5 and
// 10; epoch 6 is sealed by segments 10 and 11.)
func buildStore(t *testing.T) (string, map[uint64]map[uint64]uint64) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	p := soak.Params{Dir: dir, Seed: 7, Epochs: 6, PerEpoch: 24, CheckpointEvery: 5}
	if err := soak.WriteStore(p, nil); err != nil {
		t.Fatalf("WriteStore: %v", err)
	}
	return dir, soak.Golden(p)
}

// storeFiles classifies the directory: checkpoint, sealed delta segments
// (ascending), and the active (highest-numbered) segment.
func storeFiles(t *testing.T, dir string) (ckpt string, sealed []string, active string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var deltas []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "checkpoint-"):
			ckpt = name
		case strings.HasPrefix(name, "delta-"):
			deltas = append(deltas, name)
		}
	}
	sort.Strings(deltas)
	if len(deltas) == 0 || ckpt == "" {
		t.Fatalf("unexpected store layout: %v", entries)
	}
	return ckpt, deltas[:len(deltas)-1], deltas[len(deltas)-1]
}

func truncateFile(t *testing.T, path string, cut int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= cut {
		t.Fatalf("%s too small (%d bytes) to cut %d", path, fi.Size(), cut)
	}
	if err := os.Truncate(path, fi.Size()-cut); err != nil {
		t.Fatal(err)
	}
}

func flipFileBit(t *testing.T, path string, byteOff int64) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) <= byteOff {
		byteOff = int64(len(raw)) / 2
	}
	raw[byteOff] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTornFileCorruption mutilates one on-disk artifact per case and
// checks the salvage-or-refuse contract holds across a cold reopen:
// either an older epoch is restored byte-identical to golden, or the
// typed error matches the damage class and the report names it.
func TestTornFileCorruption(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(t *testing.T, dir string)
		want    error  // nil: salvage must succeed
		epoch   uint64 // exact restored epoch when want == nil (0: any)
		kind    string // damage kind that must appear in the report
		refused bool
	}{
		{
			// Tear the last sealed segment mid-record, losing half its
			// records: member 1's epoch-6 seal can no longer be proven, the
			// claim drops to the epoch both members still prove, and salvage
			// walks the store back to epoch 5.
			name: "truncate-sealed-delta-mid-record",
			mutate: func(t *testing.T, dir string) {
				_, sealed, _ := storeFiles(t, dir)
				path := filepath.Join(dir, sealed[len(sealed)-1])
				fi, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				truncateFile(t, path, fi.Size()/2+3) // mid-record, mid-file
			},
			want:  nil,
			epoch: 5,
			kind:  "file-segment-torn",
		},
		{
			// Tear only the trailing seal record: every delta record of the
			// segment survives, so the full final epoch is still provable —
			// the tear is reported but costs nothing.
			name: "truncate-sealed-delta-seal-record",
			mutate: func(t *testing.T, dir string) {
				_, sealed, _ := storeFiles(t, dir)
				truncateFile(t, filepath.Join(dir, sealed[len(sealed)-1]), 11)
			},
			want:  nil,
			epoch: 6,
			kind:  "file-segment-torn",
		},
		{
			name: "delete-sealed-delta-segment",
			mutate: func(t *testing.T, dir string) {
				_, sealed, _ := storeFiles(t, dir)
				if err := os.Remove(filepath.Join(dir, sealed[len(sealed)-1])); err != nil {
					t.Fatal(err)
				}
			},
			want:  nil,
			epoch: 5,
			kind:  "file-segment-missing",
		},
		{
			name: "flip-bit-in-manifest",
			mutate: func(t *testing.T, dir string) {
				flipFileBit(t, filepath.Join(dir, "MANIFEST"), 20)
			},
			want:    recovery.ErrUnrecoverable,
			kind:    "file-manifest-corrupt",
			refused: true,
		},
		{
			name: "delete-manifest",
			mutate: func(t *testing.T, dir string) {
				if err := os.Remove(filepath.Join(dir, "MANIFEST")); err != nil {
					t.Fatal(err)
				}
			},
			want:    recovery.ErrUnrecoverable,
			kind:    "file-manifest-missing",
			refused: true,
		},
		{
			name: "delete-checkpoint-segment",
			mutate: func(t *testing.T, dir string) {
				ckpt, _, _ := storeFiles(t, dir)
				if err := os.Remove(filepath.Join(dir, ckpt)); err != nil {
					t.Fatal(err)
				}
			},
			want:    recovery.ErrTornEpoch,
			kind:    "file-checkpoint-missing",
			refused: true,
		},
		{
			name: "flip-bit-in-checkpoint",
			mutate: func(t *testing.T, dir string) {
				ckpt, _, _ := storeFiles(t, dir)
				flipFileBit(t, filepath.Join(dir, ckpt), 4096)
			},
			want:    recovery.ErrChecksum,
			kind:    "file-checkpoint-corrupt",
			refused: true,
		},
		{
			// A stale temp file from an interrupted rename is evidence, not
			// damage: the published manifest never referenced it.
			name: "stale-temp-from-interrupted-rename",
			mutate: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, "MANIFEST.tmp"), []byte("garbage half-written"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want:  nil,
			epoch: 6,
			kind:  "file-stale-temp",
		},
		{
			// Garbage appended to the active segment models a torn tail
			// write: the valid prefix (here empty) still replays and the
			// sealed state is untouched.
			name: "garbage-tail-on-active-segment",
			mutate: func(t *testing.T, dir string) {
				_, _, active := storeFiles(t, dir)
				f, err := os.OpenFile(filepath.Join(dir, active), os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte("torn tail bytes that are not a record")); err != nil {
					t.Fatal(err)
				}
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}
			},
			want:  nil,
			epoch: 6,
			kind:  "file-active-torn",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, golden := buildStore(t)
			tc.mutate(t, dir)
			out, rep, err := recovery.SalvageDir(dir)
			if tc.want != nil {
				if err == nil {
					t.Fatalf("salvage succeeded (restored %d), want %v", rep.RestoredEpoch, tc.want)
				}
				if !errors.Is(err, tc.want) {
					t.Fatalf("error %v, want %v", err, tc.want)
				}
				if tc.refused && !rep.Refused {
					t.Fatal("refusal not marked in report")
				}
				if !rep.NonEmpty() {
					t.Fatal("refusal carries no findings")
				}
			} else {
				if err != nil {
					t.Fatalf("salvage failed: %v (report %+v)", err, rep)
				}
				if tc.epoch != 0 && rep.RestoredEpoch != tc.epoch {
					t.Fatalf("restored epoch %d, want %d", rep.RestoredEpoch, tc.epoch)
				}
				if verr := recovery.Verify(out, golden[rep.RestoredEpoch]); verr != nil {
					t.Fatalf("restored image diverges from golden: %v", verr)
				}
			}
			if tc.kind != "" {
				found := false
				for _, d := range rep.Damage {
					if d.Kind == tc.kind {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("damage kind %q missing from report: %+v", tc.kind, rep.Damage)
				}
			}
		})
	}
}

// TestSalvageDirCleanStore: the zero-damage path — a cleanly closed store
// restores its final epoch with an empty damage list and the manifest's
// sealed epoch surfaced in the report.
func TestSalvageDirCleanStore(t *testing.T) {
	dir, golden := buildStore(t)
	out, rep, err := recovery.SalvageDir(dir)
	if err != nil {
		t.Fatalf("SalvageDir: %v", err)
	}
	if rep.RestoredEpoch != 6 || rep.StoreSealedEpoch != 6 {
		t.Fatalf("restored %d / store sealed %d, want 6/6", rep.RestoredEpoch, rep.StoreSealedEpoch)
	}
	if len(rep.Damage) != 0 {
		t.Fatalf("clean store reported damage: %+v", rep.Damage)
	}
	if err := recovery.Verify(out, golden[6]); err != nil {
		t.Fatalf("clean store diverges from golden: %v", err)
	}
}

// TestSalvageDirEmptyDir: an empty directory refuses like an empty image.
func TestSalvageDirEmptyDir(t *testing.T) {
	_, rep, err := recovery.SalvageDir(t.TempDir())
	if !errors.Is(err, recovery.ErrUnrecoverable) {
		t.Fatalf("error %v, want ErrUnrecoverable", err)
	}
	if !rep.NonEmpty() {
		t.Fatal("refusal carries no findings")
	}
	// LoadDir treats words durable only once flushed; the plane's RAM
	// mirror is irrelevant to a cold open. Salvage must therefore report
	// the image-level genesis-missing refusal, not a file-level fatal.
	if !rep.Refused {
		t.Fatal("refusal not marked")
	}
	_ = mem.FileFormatVersion // anchor: format version is part of the contract
}
