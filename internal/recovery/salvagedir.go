package recovery

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/mem"
)

// SalvageDir opens a file-backed store directory cold — a fresh process,
// no shared state with the writer that died — and runs the full recovery
// stack over it: mem.LoadDir replays manifest → checkpoint → delta logs
// into the persisted word image, then Salvage applies the usual
// salvage-or-refuse protocol to that image.
//
// The layering preserves PR 3's guarantee across real process death:
// file-level damage (torn delta tail after kill -9, a missing sealed
// segment, a flipped manifest bit) either truncates the image at the last
// intact boundary — and image-level salvage walks back to the newest epoch
// whose records fully survive — or, when no trustworthy base exists at
// all, maps onto the same typed errors:
//
//   - manifest missing/corrupt/unreadable, wrong format version:
//     ErrUnrecoverable (the directory's root of trust is gone);
//   - base checkpoint missing: ErrTornEpoch (the referenced durable state
//     was lost whole, like a lost bank);
//   - base checkpoint corrupt: ErrChecksum.
//
// File-level findings are merged into the returned report with their kind
// prefixed "file-" (OMC -1, epoch 0), before the image-level damage.
func SalvageDir(dir string) (map[uint64]uint64, *SalvageReport, error) {
	return SalvageDirFS(fault.OS, dir)
}

// SalvageDirFS is SalvageDir over an arbitrary filesystem. The
// crash-consistency sweep salvages the surviving in-memory state of a
// crashed fault-injected store through exactly this path.
func SalvageDirFS(fsys fault.FS, dir string) (map[uint64]uint64, *SalvageReport, error) {
	img, drep, err := mem.LoadDirFS(fsys, dir)
	if err != nil {
		rep := &SalvageReport{Refused: true, Partitions: []PartitionReport{}, Damage: []Damage{}}
		rep.Reason = fmt.Sprintf("store directory unusable: %s", drep.Fatal)
		mergeFileDamage(rep, drep)
		var typed error
		switch drep.Fatal {
		case "checkpoint-missing":
			typed = ErrTornEpoch
		case "checkpoint-corrupt":
			typed = ErrChecksum
		default: // manifest-* and store-missing: no root of trust at all
			typed = ErrUnrecoverable
		}
		return nil, rep, fmt.Errorf("recovery: %w: %w", err, typed)
	}
	out, rep, serr := Salvage(img)
	mergeFileDamage(rep, drep)
	rep.StoreSealedEpoch = drep.SealedEpoch
	return out, rep, serr
}

// mergeFileDamage prepends file-level findings (kind prefixed "file-") to
// an image-level report, so one report tells the whole story of a cold
// reopen.
func mergeFileDamage(rep *SalvageReport, drep *mem.DirReport) {
	if drep == nil || len(drep.Damage) == 0 {
		return
	}
	merged := make([]Damage, 0, len(drep.Damage)+len(rep.Damage))
	for _, d := range drep.Damage {
		merged = append(merged, Damage{
			Kind: "file-" + d.Kind,
			OMC:  -1,
			Note: fmt.Sprintf("%s: %s", d.Path, d.Note),
		})
	}
	rep.Damage = append(merged, rep.Damage...)
}
