package recovery_test

import (
	"errors"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/recovery"
	"repro/internal/soak"
)

// buildMemStore writes a complete soak store onto an in-memory filesystem
// (same shape as buildStore: checkpoint + two sealed segments + empty
// active segment) so edge cases that are awkward to stage on a real disk —
// zero-length files, vanished directories — are one map mutation away.
func buildMemStore(t *testing.T) (*fault.MemFS, string, map[uint64]map[uint64]uint64) {
	t.Helper()
	mfs := fault.NewMemFS()
	p := soak.Params{Dir: "store", Seed: 7, Epochs: 6, PerEpoch: 24, CheckpointEvery: 5}
	if err := soak.WriteStoreFS(mfs, p, nil); err != nil {
		t.Fatalf("WriteStoreFS: %v", err)
	}
	return mfs, p.Dir, soak.Golden(p)
}

// memStoreFiles classifies the store: checkpoint, sealed delta segments
// (ascending) and the active (highest-numbered) segment.
func memStoreFiles(t *testing.T, mfs *fault.MemFS, dir string) (ckpt string, sealed []string, active string) {
	t.Helper()
	names, err := mfs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var deltas []string
	for _, name := range names {
		switch {
		case strings.HasPrefix(name, "checkpoint-"):
			ckpt = name
		case strings.HasPrefix(name, "delta-"):
			deltas = append(deltas, name)
		}
	}
	sort.Strings(deltas)
	if len(deltas) < 2 || ckpt == "" {
		t.Fatalf("unexpected store layout: %v", names)
	}
	return ckpt, deltas[:len(deltas)-1], deltas[len(deltas)-1]
}

// zeroLen truncates a file to zero length in the current namespace (Create
// replaces the content, like O_TRUNC).
func zeroLen(t *testing.T, mfs *fault.MemFS, path string) {
	t.Helper()
	f, err := mfs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// writeBytes creates path holding exactly b.
func writeBytes(t *testing.T, mfs *fault.MemFS, path string, b []byte) {
	t.Helper()
	f, err := mfs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadDirEdgeCases stages the degenerate directory shapes a crashed or
// misbehaving filesystem can leave behind and pins, for each, the exact
// DirReport damage kind AND the salvage-or-refuse outcome: walk back to a
// provable epoch, restore in full, or refuse with the matching typed error.
func TestLoadDirEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		// mutate stages the edge case and returns the directory to salvage.
		mutate func(t *testing.T, mfs *fault.MemFS, dir string) string
		// dirKind is the exact FileDamage.Kind LoadDirFS must report
		// ("": the damage list must be empty).
		dirKind string
		fatal   string // expected DirReport.Fatal ("": not fatal)
		want    error  // expected typed refusal (nil: salvage must succeed)
		epoch   uint64 // exact restored epoch when want == nil
	}{
		{
			// A sealed segment truncated to zero bytes: its seal record is
			// gone, the final epoch can no longer be proven, salvage walks
			// back to the epoch the surviving segments still prove.
			name: "zero-length-sealed-delta",
			mutate: func(t *testing.T, mfs *fault.MemFS, dir string) string {
				_, sealed, _ := memStoreFiles(t, mfs, dir)
				zeroLen(t, mfs, filepath.Join(dir, sealed[len(sealed)-1]))
				return dir
			},
			dirKind: "segment-unsealed",
			epoch:   5,
		},
		{
			// The active segment at zero length is the cleanest kill shape
			// there is: nothing unsealed was in flight, nothing to report.
			name: "zero-length-active-delta",
			mutate: func(t *testing.T, mfs *fault.MemFS, dir string) string {
				_, _, active := memStoreFiles(t, mfs, dir)
				zeroLen(t, mfs, filepath.Join(dir, active))
				return dir
			},
			dirKind: "",
			epoch:   6,
		},
		{
			// A zero-length manifest temp is an interrupted atomic publish
			// caught before any byte landed: the published MANIFEST was never
			// touched, so the temp is evidence only.
			name: "zero-length-manifest-temp",
			mutate: func(t *testing.T, mfs *fault.MemFS, dir string) string {
				zeroLen(t, mfs, filepath.Join(dir, mem.ManifestFileName()+".tmp"))
				return dir
			},
			dirKind: "stale-temp",
			epoch:   6,
		},
		{
			// Rename target already exists: a later manifest publish died
			// between writing its temp and renaming it, so MANIFEST (valid,
			// older) and MANIFEST.tmp (garbage) coexist. The loader must
			// trust only the published name.
			name: "rename-target-exists",
			mutate: func(t *testing.T, mfs *fault.MemFS, dir string) string {
				writeBytes(t, mfs, filepath.Join(dir, mem.ManifestFileName()+".tmp"),
					[]byte("half-written next manifest"))
				return dir
			},
			dirKind: "stale-temp",
			epoch:   6,
		},
		{
			// A sealed segment vanished entirely (directory entry lost):
			// replay truncates at the hole rather than building an image of
			// words that never coexisted.
			name: "sealed-segment-vanished",
			mutate: func(t *testing.T, mfs *fault.MemFS, dir string) string {
				_, sealed, _ := memStoreFiles(t, mfs, dir)
				if err := mfs.Remove(filepath.Join(dir, sealed[len(sealed)-1])); err != nil {
					t.Fatal(err)
				}
				return dir
			},
			dirKind: "segment-missing",
			epoch:   5,
		},
		{
			// The manifest references a checkpoint whose file is gone: no
			// trustworthy base image exists and the refusal is typed as a
			// torn epoch (durable state lost whole).
			name: "checkpoint-vanished",
			mutate: func(t *testing.T, mfs *fault.MemFS, dir string) string {
				ckpt, _, _ := memStoreFiles(t, mfs, dir)
				if err := mfs.Remove(filepath.Join(dir, ckpt)); err != nil {
					t.Fatal(err)
				}
				return dir
			},
			dirKind: "checkpoint-missing",
			fatal:   "checkpoint-missing",
			want:    recovery.ErrTornEpoch,
		},
		{
			// The directory the manifest discipline built simply is not
			// there any more — wrong mount, deleted tree. Refuse, typed.
			name: "store-directory-missing",
			mutate: func(t *testing.T, mfs *fault.MemFS, dir string) string {
				return dir + "-gone"
			},
			dirKind: "store-missing",
			fatal:   "store-missing",
			want:    recovery.ErrUnrecoverable,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mfs, dir, golden := buildMemStore(t)
			dir = tc.mutate(t, mfs, dir)

			// File layer: the DirReport must name the exact damage kind.
			_, drep, lerr := mem.LoadDirFS(mfs, dir)
			if tc.dirKind == "" {
				if len(drep.Damage) != 0 {
					t.Fatalf("unexpected file damage: %+v", drep.Damage)
				}
			} else {
				found := false
				for _, d := range drep.Damage {
					if d.Kind == tc.dirKind {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("damage kind %q missing from DirReport: %+v", tc.dirKind, drep.Damage)
				}
			}
			if drep.Fatal != tc.fatal {
				t.Fatalf("DirReport.Fatal = %q, want %q", drep.Fatal, tc.fatal)
			}
			if (tc.fatal != "") != (lerr != nil) {
				t.Fatalf("LoadDirFS error %v inconsistent with fatal %q", lerr, tc.fatal)
			}

			// Full stack: salvage-or-refuse through the same filesystem.
			out, rep, err := recovery.SalvageDirFS(mfs, dir)
			if tc.want != nil {
				if !errors.Is(err, tc.want) {
					t.Fatalf("error %v, want %v", err, tc.want)
				}
				if !rep.Refused || !rep.NonEmpty() {
					t.Fatalf("refusal unmarked or without findings: %+v", rep)
				}
				return
			}
			if err != nil {
				t.Fatalf("salvage failed: %v (report %+v)", err, rep)
			}
			if rep.RestoredEpoch != tc.epoch {
				t.Fatalf("restored epoch %d, want %d", rep.RestoredEpoch, tc.epoch)
			}
			if verr := recovery.Verify(out, golden[rep.RestoredEpoch]); verr != nil {
				t.Fatalf("restored image diverges from golden: %v", verr)
			}
		})
	}
}
