package recovery_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/soak"
)

// TestMain routes the re-exec: when the soak parent spawns this test
// binary with the child environment set, it becomes the deterministic
// store writer instead of running the test suite.
func TestMain(m *testing.M) {
	if soak.IsChild() {
		os.Exit(soak.ChildMain())
	}
	os.Exit(m.Run())
}

// killGrid is the milestone-index grid the soak kills at. The early
// indices land before any durability was promised (justified refusals),
// the middle of the grid lands on segment-sync/manifest-rename
// boundaries, and the tail lands deep in the run after checkpoints have
// been written and old segments compacted away.
var killGrid = []int{0, 1, 2, 4, 6, 9, 13, 18, 24, 31, 45}

var soakSeeds = []int64{1, 2, 3}

// TestCrashRestartSoak is the real thing: a child process writes a
// file-backed store, the parent SIGKILLs it parked on a seeded milestone,
// and a cold salvage of the directory must either restore an epoch at
// least as new as every fully-acknowledged manifest rename — matching the
// golden model byte-for-byte — or refuse with findings when nothing was
// durable yet.
func TestCrashRestartSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child writer processes")
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	for _, seed := range soakSeeds {
		for _, killAt := range killGrid {
			t.Run(fmt.Sprintf("seed%d_kill%02d", seed, killAt), func(t *testing.T) {
				t.Parallel()
				dir := filepath.Join(t.TempDir(), "store")
				p := soak.DefaultParams(dir, seed)
				res, err := soak.Run(bin, nil, p, killAt)
				if err != nil {
					t.Fatalf("soak run: %v", err)
				}
				if !res.Killed {
					t.Fatalf("kill index %d not reached (%d milestones)", killAt, res.Milestones)
				}
				rep, err := soak.CheckDir(dir, res.DurableEpoch, soak.Golden(p))
				if err != nil {
					if rep != nil {
						if js, jerr := rep.JSON(); jerr == nil {
							t.Logf("salvage report:\n%s", js)
						}
					}
					t.Fatalf("killed at %d (%s, epoch %d), durable %d: %v",
						res.KillIndex, res.KillPoint, res.KillEpoch, res.DurableEpoch, err)
				}
			})
		}
	}
}

// TestCrashSoakCompletes is the control case: an unkilled child finishes,
// every epoch's seal is acknowledged by all members, and cold salvage
// restores exactly the final epoch.
func TestCrashSoakCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child writer process")
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	p := soak.DefaultParams(dir, 99)
	res, err := soak.Run(bin, nil, p, 1<<30)
	if err != nil {
		t.Fatalf("soak run: %v", err)
	}
	if res.Killed {
		t.Fatal("control run was killed")
	}
	if res.DurableEpoch != uint64(p.Epochs) {
		t.Fatalf("durable epoch %d, want %d", res.DurableEpoch, p.Epochs)
	}
	// The kill grid must fit inside the run with margin: every index is a
	// real boundary, not a no-op past the end.
	if max := killGrid[len(killGrid)-1]; res.Milestones <= max {
		t.Fatalf("run has %d milestones, kill grid reaches %d", res.Milestones, max)
	}
	rep, err := soak.CheckDir(dir, res.DurableEpoch, soak.Golden(p))
	if err != nil {
		t.Fatalf("salvage after clean run: %v", err)
	}
	if rep.RestoredEpoch != uint64(p.Epochs) {
		t.Fatalf("restored epoch %d, want %d", rep.RestoredEpoch, p.Epochs)
	}
}
