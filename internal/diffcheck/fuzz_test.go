package diffcheck

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/obs"
)

// clampParams maps arbitrary fuzz inputs onto a valid Params value. Every
// clamped field stays inside Validate()'s envelope, so the fuzzer explores
// machine shapes and access mixes, not input validation.
func clampParams(seed int64, cores, vdcores, share, write, epoch, pattern, flags uint8, steps uint16) Params {
	c := 1 << (int(cores) % 4) // 1, 2, 4 or 8 cores
	per := 1 << (int(vdcores) % 4)
	if per > c {
		per = c
	}
	p := Params{
		Seed:        seed,
		Cores:       c,
		CoresPerVD:  per,
		Steps:       200 + int(steps)%1200,
		Lines:       16 + int(share)%112,
		SharePct:    int(share) % 101,
		WritePct:    25 + int(write)%76, // stores must occur for epochs to close
		EpochSize:   1 + int(epoch)%24,
		Pattern:     []string{PatternUniform, PatternHotspot, PatternStride}[int(pattern)%3],
		Walker:      flags&1 == 0, // walker on for most inputs
		Buffered:    flags&2 != 0,
		OMCs:        1 + int(flags>>4)%4,
		CrashPoints: 3,
	}
	if flags&4 != 0 {
		p.Wrap = true
		// Narrow widths only when sharing keeps VD epoch skew below half
		// the wire space (the protocol's own §IV-D operating condition).
		p.WrapWidth = 8
		if p.SharePct >= 50 {
			p.WrapWidth = 5
		}
	}
	return p
}

// FuzzDifferentialTrace feeds fuzzer-chosen trace parameters through the
// full differential harness: any divergence between the snapshot stack and
// the golden model fails the fuzz run with a deterministic reproducer. Each
// input also replays with an observability aggregator attached — the bus is
// observation-only, so the Result figures must match the unobserved run
// exactly on every machine shape the fuzzer invents.
func FuzzDifferentialTrace(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(1), uint8(50), uint8(25), uint8(13), uint8(0), uint8(0), uint16(800))
	f.Add(int64(2), uint8(3), uint8(1), uint8(60), uint8(25), uint8(9), uint8(1), uint8(4), uint16(1000))
	f.Add(int64(3), uint8(2), uint8(0), uint8(70), uint8(50), uint8(9), uint8(2), uint8(6), uint16(900))
	f.Add(int64(4), uint8(3), uint8(1), uint8(40), uint8(75), uint8(17), uint8(0), uint8(2), uint16(700))
	f.Add(int64(5), uint8(1), uint8(0), uint8(90), uint8(30), uint8(5), uint8(1), uint8(17), uint16(600))
	f.Fuzz(func(t *testing.T, seed int64, cores, vdcores, share, write, epoch, pattern, flags uint8, steps uint16) {
		p := clampParams(seed, cores, vdcores, share, write, epoch, pattern, flags, steps)
		if err := p.Validate(); err != nil {
			t.Fatalf("clamp produced invalid params: %v (%+v)", err, p)
		}
		res, d := Run(p)
		if d != nil {
			t.Fatal(d.Error())
		}
		bus := obs.NewBus(0)
		agg := obs.NewAggregator()
		bus.Attach(agg)
		obsRes, d := RunObserved(p, bus)
		if d != nil {
			t.Fatalf("observed replay diverged: %s", d.Error())
		}
		if !reflect.DeepEqual(res, obsRes) {
			t.Fatalf("attaching the observability bus changed the figures:\nunobserved %+v\nobserved   %+v", res, obsRes)
		}
		if bus.Emitted() == 0 || len(agg.Timeline()) == 0 {
			t.Fatalf("observed replay emitted no events (emitted=%d)", bus.Emitted())
		}
	})
}

// FuzzFaultedRecovery mutates a persisted NVM image — fault-injected power
// cut, then fuzzer-directed bit flips and word deletions on top — and
// asserts the salvage-or-refuse contract: recovery either restores an image
// byte-equal to a golden-verified epoch or returns a typed error with a
// non-empty report. It must never hand back a silently wrong image.
func FuzzFaultedRecovery(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(200), uint64(0), uint64(0), uint8(0))
	f.Add(int64(2), uint8(1), uint16(350), uint64(3), uint64(1<<43), uint8(9))
	f.Add(int64(3), uint8(2), uint16(500), uint64(7), uint64(1<<41), uint8(63))
	f.Add(int64(4), uint8(3), uint16(420), uint64(2), uint64(1<<40), uint8(17))
	f.Add(int64(5), uint8(4), uint16(600), uint64(5), uint64(1<<44), uint8(31))
	f.Fuzz(func(t *testing.T, seed int64, class uint8, cut uint16, mutCount, mutAddr uint64, mutBit uint8) {
		classes := append([]string{""}, fault.Classes...)
		p := FaultRegimeParams(classes[int(class)%len(classes)], seed)
		c := 1 + int(cut)%p.Steps
		// The mutator walks the image's persisted words from a fuzzer-chosen
		// offset, alternating bit flips and deletions — torn-looking damage
		// the injector itself did not schedule.
		mutate := func(img *mem.Image) {
			addrs := img.SortedAddrs()
			if len(addrs) == 0 {
				return
			}
			for i := uint64(0); i < mutCount%16; i++ {
				a := addrs[int(mutAddr+i*1021)%len(addrs)]
				if i%2 == 0 {
					img.FlipBit(a, uint(mutBit)+uint(i))
				} else {
					img.Delete(a)
				}
			}
		}
		if _, _, d := RunFaultPoint(p, c, mutate); d != nil {
			t.Fatal(d.Error())
		}
	})
}
