package diffcheck

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/parallel"
	"repro/internal/recovery"
	"repro/internal/soak"
)

// Disk-fault crash-consistency sweep: the filesystem-level analogue of the
// NVM fault grid in faultsweep.go. Each cell runs the deterministic soak
// writer over an in-memory filesystem wrapped in a fault.FaultFS — a seeded
// schedule of short writes, EIO, ENOSPC and fsyncgate failures, plus a
// crash cut at a chosen mutating-syscall ordinal — then crashes the
// filesystem (discarding everything unsynced), cold-salvages the surviving
// state, and cross-checks it against the golden model. The invariant every
// cell must satisfy is the PR's acceptance bar:
//
//	every injected schedule ends in either a correct salvage to an epoch
//	>= the last durable epoch, or a typed refusal with findings — never a
//	silently wrong image.
//
// "Durable" is tracked exactly as the kill -9 soak parent tracks it: epoch
// e is durable once all soak.Members manifest renames for e were announced
// by the seal hook before the crash.

// DiskParams configures the disk-fault grid.
type DiskParams struct {
	// Classes are the fault.DiskClasses regimes to sweep.
	Classes []string
	// Seeds seed both the writer's version stream and the fault schedule.
	Seeds []int64
	// Cuts is the number of crash cut points swept per (class, seed); one
	// extra no-crash cell (faults only, then a clean crash at the end) is
	// always added.
	Cuts int
	// Epochs/PerEpoch/CheckpointEvery shape the writer run (zero values
	// select soak.DefaultParams' shape).
	Epochs          int
	PerEpoch        int
	CheckpointEvery int
}

// DefaultDiskParams is the grid the acceptance criteria call for: every
// fault class, 8 crash cut points, 3 seeds.
func DefaultDiskParams() DiskParams {
	return DiskParams{Classes: fault.DiskClasses, Seeds: []int64{1, 2, 3}, Cuts: 8}
}

func (p DiskParams) soakParams(seed int64) soak.Params {
	sp := soak.DefaultParams("store", seed)
	if p.Epochs > 0 {
		sp.Epochs = p.Epochs
	}
	if p.PerEpoch > 0 {
		sp.PerEpoch = p.PerEpoch
	}
	if p.CheckpointEvery > 0 {
		sp.CheckpointEvery = p.CheckpointEvery
	}
	return sp
}

// Validate rejects grids that cannot satisfy the sweep's contract.
func (p DiskParams) Validate() error {
	if len(p.Classes) == 0 || len(p.Seeds) == 0 || p.Cuts < 1 {
		return errors.New("diffcheck: disk grid needs >=1 class, seed and cut")
	}
	for _, c := range p.Classes {
		if !fault.ValidDiskClass(c) {
			return fmt.Errorf("diffcheck: unknown disk fault class %q", c)
		}
	}
	return nil
}

// DiskPoint is the outcome of one (class, seed, cut) cell.
type DiskPoint struct {
	Class string `json:"class"`
	Seed  int64  `json:"seed"`
	// Cut is the mutating-syscall ordinal the crash fired at (0: no
	// injected crash; the filesystem was crashed after the run instead).
	Cut int `json:"cut"`
	// DurableEpoch is the newest epoch fully acknowledged durable before
	// the crash; RestoredEpoch is what salvage proved (0 on refusal).
	DurableEpoch  uint64 `json:"durable_epoch"`
	RestoredEpoch uint64 `json:"restored_epoch"`
	Refused       bool   `json:"refused"`
	// Wounded reports the plane degraded to read-only before the run ended.
	Wounded bool `json:"wounded"`
	// Faults counts injected disk faults in this cell; Retried counts the
	// transient ones the plane's retry policy absorbed.
	Faults  int    `json:"faults"`
	Retried int    `json:"retried"`
	Err     string `json:"err,omitempty"`
}

// DiskResult aggregates one disk-fault sweep.
type DiskResult struct {
	Params   DiskParams
	Points   []DiskPoint
	Restored int // cells salvaging an epoch >= durable
	Refusals int // cells refusing with a typed error (durable == 0)
	Wounded  int // cells whose plane entered wounded mode
	Faults   int // total injected disk faults
	// Schedule concatenates every cell's canonical fault schedule;
	// byte-identical across replays of the same Params and jobs counts.
	Schedule string
}

// DiskDivergence is one cell's contract violation, with the reproducer.
type DiskDivergence struct {
	Class  string
	Seed   int64
	Cut    int
	Kind   string
	Detail string
	// Report is the salvage report of the failing cell, when one exists —
	// nvcheck archives it.
	Report *recovery.SalvageReport
}

func (d *DiskDivergence) Error() string {
	return fmt.Sprintf("disk-fault cell (class=%s seed=%d cut=%d) violated salvage-or-refuse [%s]: %s",
		d.Class, d.Seed, d.Cut, d.Kind, d.Detail)
}

// controlOps runs the writer fault-free over a fresh in-memory filesystem
// and returns how many mutating syscalls a complete run performs — the
// axis the crash cuts are laid out on.
func controlOps(sp soak.Params) (int, error) {
	ffs := fault.NewFaultFS(fault.NewMemFS(), fault.DiskConfig{})
	if err := soak.WriteStoreFS(ffs, sp, nil); err != nil {
		return 0, fmt.Errorf("diffcheck: fault-free control run failed: %w", err)
	}
	return ffs.Ops(), nil
}

// RunDiskFaults sweeps the grid with the cells fanned over jobs workers.
// Cells are independent (each owns its filesystem, writer and golden
// model) and merge in canonical class-major order, so the aggregate —
// including the Schedule string and which divergence is reported first —
// is byte-identical for every jobs value.
func RunDiskFaults(p DiskParams, jobs int) (DiskResult, *DiskDivergence) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	res := DiskResult{Params: p}

	// One fault-free control run per seed fixes the cut axis.
	ops := make(map[int64]int, len(p.Seeds))
	for _, seed := range p.Seeds {
		n, err := controlOps(p.soakParams(seed))
		if err != nil {
			return res, &DiskDivergence{Kind: "control-run", Seed: seed, Detail: err.Error()}
		}
		ops[seed] = n
	}

	type key struct {
		class string
		seed  int64
		cut   int
	}
	var cells []key
	for _, class := range p.Classes {
		for _, seed := range p.Seeds {
			n := ops[seed]
			for j := 1; j <= p.Cuts; j++ {
				cells = append(cells, key{class, seed, j * n / (p.Cuts + 1)})
			}
			cells = append(cells, key{class, seed, 0}) // faults without a cut
		}
	}

	type cellOut struct {
		pt    DiskPoint
		sched string
		d     *DiskDivergence
	}
	var firstDiv *DiskDivergence
	var sched strings.Builder
	parallel.ForEachOrdered(jobs, len(cells), func(i int) cellOut {
		k := cells[i]
		pt, s, d := RunDiskFaultPoint(k.class, k.seed, k.cut, p.soakParams(k.seed))
		return cellOut{pt, s, d}
	}, func(i int, c cellOut) bool {
		if c.d != nil {
			firstDiv = c.d
			return false
		}
		res.Points = append(res.Points, c.pt)
		res.Faults += c.pt.Faults
		if c.pt.Refused {
			res.Refusals++
		} else {
			res.Restored++
		}
		if c.pt.Wounded {
			res.Wounded++
		}
		fmt.Fprintf(&sched, "# class=%s seed=%d cut=%d\n%s\n", c.pt.Class, c.pt.Seed, c.pt.Cut, c.sched)
		return true
	})
	if firstDiv != nil {
		return res, firstDiv
	}
	res.Schedule = sched.String()
	return res, nil
}

// RunDiskFaultPoint runs one cell: writer under the (class, seed, cut)
// fault schedule, crash, cold salvage, golden cross-check. The returned
// schedule string is the cell's canonical fault history; replaying the
// same cell yields it byte-for-byte.
func RunDiskFaultPoint(class string, seed int64, cut int, sp soak.Params) (DiskPoint, string, *DiskDivergence) {
	pt := DiskPoint{Class: class, Seed: seed, Cut: cut}
	div := func(kind, format string, args ...interface{}) *DiskDivergence {
		return &DiskDivergence{Class: class, Seed: seed, Cut: cut, Kind: kind,
			Detail: fmt.Sprintf(format, args...)}
	}
	cfg, err := fault.DiskClassConfig(class, seed)
	if err != nil {
		return pt, "", div("bad-class", "%v", err)
	}
	cfg.CrashAt = cut
	mfs := fault.NewMemFS()
	ffs := fault.NewFaultFS(mfs, cfg)

	// Durable tracking, exactly as the kill -9 soak parent does it: epoch e
	// is durable once all Members announced their manifest rename for it.
	renamed := make(map[uint64]int)
	hit := func(point string, epoch uint64) {
		if point == "manifest-renamed" {
			renamed[epoch]++
			if renamed[epoch] >= soak.Members && epoch > pt.DurableEpoch {
				pt.DurableEpoch = epoch
			}
		}
	}

	werr := soak.WriteStoreFS(ffs, sp, hit)
	pt.Faults = len(ffs.Events())
	pt.Retried = int(ffs.Count(fault.DiskShortWrite))
	sched := ffs.Schedule()
	if werr != nil {
		// The only acceptable writer failures are the plane wounding itself
		// on a permanent fault, or an injected fault surfacing directly
		// (plane construction, the first segment create). Anything else is
		// a policy bug.
		if !errors.Is(werr, mem.ErrPlaneWounded) && !fault.IsDiskFault(werr) {
			return pt, sched, div("writer-error", "writer failed outside the fault policy: %v", werr)
		}
		if errors.Is(werr, mem.ErrPlaneWounded) {
			pt.Wounded = true
		}
		pt.Err = werr.Error()
	}

	// Crash. If the schedule's cut already fired, the filesystem is crashed;
	// otherwise pull the plug now — durability is always what is tested,
	// never the in-process state.
	if !ffs.Crashed() {
		mfs.Crash()
	}

	golden := soak.Golden(sp)
	out, rep, serr := recovery.SalvageDirFS(mfs, sp.Dir)
	if serr != nil {
		if !errors.Is(serr, recovery.ErrTornEpoch) &&
			!errors.Is(serr, recovery.ErrChecksum) &&
			!errors.Is(serr, recovery.ErrUnrecoverable) {
			return pt, sched, div("untyped-refusal", "salvage failed with untyped error: %v", serr)
		}
		if rep == nil || !rep.NonEmpty() || !rep.Refused {
			d := div("empty-salvage-report", "refusal without findings: %v", serr)
			d.Report = rep
			return pt, sched, d
		}
		if pt.DurableEpoch > 0 {
			d := div("durable-epoch-lost", "salvage refused but epoch %d was durable: %v", pt.DurableEpoch, serr)
			d.Report = rep
			return pt, sched, d
		}
		pt.Refused = true
		pt.Err = serr.Error()
		return pt, sched, nil
	}
	if rep.RestoredEpoch < pt.DurableEpoch {
		d := div("durable-epoch-lost", "restored epoch %d below durable epoch %d", rep.RestoredEpoch, pt.DurableEpoch)
		d.Report = rep
		return pt, sched, d
	}
	g, ok := golden[rep.RestoredEpoch]
	if !ok {
		d := div("phantom-epoch", "restored epoch %d was never written", rep.RestoredEpoch)
		d.Report = rep
		return pt, sched, d
	}
	if verr := recovery.Verify(out, g); verr != nil {
		d := div("silent-corruption", "restored epoch %d diverges from golden: %v", rep.RestoredEpoch, verr)
		d.Report = rep
		return pt, sched, d
	}
	pt.RestoredEpoch = rep.RestoredEpoch
	return pt, sched, nil
}
