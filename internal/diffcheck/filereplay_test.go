package diffcheck

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/tracefile"
)

// TestEachMatchesOps locks the streaming generator against the
// materialised trace, including early stop and prefix stability.
func TestEachMatchesOps(t *testing.T) {
	for i := 0; i < RegimeCount; i++ {
		p := RegimeParams(i, 77)
		ops := p.Ops()
		if len(ops) != p.Steps {
			t.Fatalf("regime %d: Ops() returned %d steps, want %d", i, len(ops), p.Steps)
		}
		var streamed []Step
		p.Each(p.Steps, func(k int, s Step) bool {
			if k != len(streamed) {
				t.Fatalf("regime %d: Each index %d out of order", i, k)
			}
			streamed = append(streamed, s)
			return true
		})
		if !reflect.DeepEqual(ops, streamed) {
			t.Fatalf("regime %d: Each and Ops disagree", i)
		}
		// A prefix iteration equals the prefix of the full trace.
		n := 0
		p.Each(p.Steps/3, func(k int, s Step) bool {
			if s != ops[k] {
				t.Fatalf("regime %d: prefix step %d = %+v, want %+v", i, k, s, ops[k])
			}
			n++
			return true
		})
		if n != p.Steps/3 {
			t.Fatalf("regime %d: prefix yielded %d steps", i, n)
		}
		// Early stop stops.
		n = 0
		p.Each(p.Steps, func(int, Step) bool { n++; return n < 10 })
		if n != 10 {
			t.Fatalf("regime %d: early stop ran %d steps", i, n)
		}
	}
}

// TestParamsShapeRoundTrip locks the header packing across every regime.
func TestParamsShapeRoundTrip(t *testing.T) {
	for i := 0; i < RegimeCount; i++ {
		p := RegimeParams(i, 123)
		s, err := p.shape()
		if err != nil {
			t.Fatalf("regime %d: shape: %v", i, err)
		}
		got, err := paramsFromShape(s)
		if err != nil {
			t.Fatalf("regime %d: paramsFromShape: %v", i, err)
		}
		if got != p {
			t.Fatalf("regime %d: params round-trip\n got %+v\nwant %+v", i, got, p)
		}
	}
	// A forged extra section is rejected, not misread.
	s, err := RegimeParams(0, 1).shape()
	if err != nil {
		t.Fatal(err)
	}
	s.Extra = s.Extra[:len(s.Extra)-1]
	if _, err := paramsFromShape(s); err == nil {
		t.Fatal("short extra section accepted")
	}
	s2, err := RegimeParams(0, 1).shape()
	if err != nil {
		t.Fatal(err)
	}
	s2.Extra[6] = 99 // unknown pattern enum
	if _, err := paramsFromShape(s2); err == nil {
		t.Fatal("unknown pattern enum accepted")
	}
}

// TestRecordReplayByteIdentical is the tentpole lock: for every regime,
// generate → record → replay-from-file produces exactly the in-memory
// run's Result — same counters, same golden-model verdicts, same decoded
// Params — with the trace streamed off disk.
func TestRecordReplayByteIdentical(t *testing.T) {
	for i := 0; i < RegimeCount; i++ {
		p := RegimeParams(i, 9)
		want, d := Run(p)
		if d != nil {
			t.Fatalf("regime %d diverged in memory: %s", i, d.Error())
		}
		fsys := fault.NewMemFS()
		info, err := RecordTrace(fsys, "r.trc", p)
		if err != nil {
			t.Fatalf("regime %d: record: %v", i, err)
		}
		if info.Records != uint64(p.Steps) {
			t.Fatalf("regime %d: recorded %d steps, want %d", i, info.Records, p.Steps)
		}
		rp, err := ReadParams(fsys, "r.trc")
		if err != nil {
			t.Fatalf("regime %d: read params: %v", i, err)
		}
		if rp != p {
			t.Fatalf("regime %d: header params %+v, want %+v", i, rp, p)
		}
		got, d, err := RunFile(fsys, "r.trc")
		if err != nil {
			t.Fatalf("regime %d: replay: %v", i, err)
		}
		if d != nil {
			t.Fatalf("regime %d diverged from file: %s", i, d.Error())
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("regime %d: file replay result differs\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestRecordReplayParallelJobs locks the -j contract for file-backed
// regimes: a sweep replaying recorded traces through the parallel engine
// yields the identical Result sequence at -j 1 and -j 4, and both match
// the serial in-memory sweep.
func TestRecordReplayParallelJobs(t *testing.T) {
	const seed = 31
	want := make([]Result, RegimeCount)
	fsys := fault.NewMemFS()
	paths := make([]string, RegimeCount)
	for i := 0; i < RegimeCount; i++ {
		p := RegimeParams(i, seed)
		res, d := Run(p)
		if d != nil {
			t.Fatalf("regime %d diverged: %s", i, d.Error())
		}
		want[i] = res
		paths[i] = fmt.Sprintf("regime-%d.trc", i)
		if _, err := RecordTrace(fsys, paths[i], p); err != nil {
			t.Fatalf("regime %d: record: %v", i, err)
		}
	}
	// Recording is done: from here the MemFS is only read, so concurrent
	// replays are safe.
	for _, jobs := range []int{1, 4} {
		got := make([]Result, RegimeCount)
		parallel.ForEachOrdered(jobs, RegimeCount, func(i int) Result {
			res, d, err := RunFile(fsys, paths[i])
			if err != nil {
				t.Errorf("jobs=%d regime %d: %v", jobs, i, err)
			}
			if d != nil {
				t.Errorf("jobs=%d regime %d diverged: %s", jobs, i, d.Error())
			}
			return res
		}, func(i int, r Result) bool {
			got[i] = r
			return true
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("jobs=%d: file-backed sweep differs from serial in-memory sweep", jobs)
		}
	}
}

// TestRecordTraceRefusesFaultRegimes: the fault schedule lives outside the
// access stream, so recording one must fail loudly.
func TestRecordTraceRefusesFaultRegimes(t *testing.T) {
	p := RegimeParams(0, 5)
	p.Fault = "torn"
	if _, err := RecordTrace(fault.NewMemFS(), "f.trc", p); err == nil {
		t.Fatal("fault regime recorded")
	}
}

// TestRunFileErrors: damaged and short trace files surface as errors, not
// divergences or panics.
func TestRunFileErrors(t *testing.T) {
	fsys := fault.NewMemFS()
	if _, _, err := RunFile(fsys, "missing.trc"); err == nil {
		t.Fatal("missing file accepted")
	}

	// A trace whose header promises more steps than its chunks hold: record
	// a full trace, then rewrite it cut before the end marker plus a chunk.
	p := RegimeParams(0, 3)
	if _, err := RecordTrace(fsys, "full.trc", p); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile("full.trc")
	if err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Create("torn.trc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data[:len(data)-17]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunFile(fsys, "torn.trc"); err == nil {
		t.Fatal("torn trace replayed cleanly")
	}

	// A header that decodes but lies about step count (steps beyond the
	// recorded stream) is caught by the short-file check.
	short := RegimeParams(1, 3)
	if _, err := RecordTrace(fsys, "short.trc", short); err != nil {
		t.Fatal(err)
	}
	raw, err := fsys.ReadFile("short.trc")
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild with a bigger Steps in the extra words and a fresh header
	// checksum, keeping the chunks: replay must fail on exhaustion.
	big := short
	big.Steps = short.Steps * 2
	bigShape, err := big.shape()
	if err != nil {
		t.Fatal(err)
	}
	hw := headerBytes(t, bigShape)
	f2, err := fsys.Create("lying.trc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write(append(hw, raw[len(hw):]...)); err != nil {
		t.Fatal(err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunFile(fsys, "lying.trc"); err == nil {
		t.Fatal("short trace with an oversized header step count replayed cleanly")
	}
}

// headerBytes renders a shape's header through a throwaway recording, so
// the test does not re-implement the header encoding.
func headerBytes(t *testing.T, s tracefile.Shape) []byte {
	t.Helper()
	fsys := fault.NewMemFS()
	w, err := tracefile.Create(fsys, "h.trc", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile("h.trc")
	if err != nil {
		t.Fatal(err)
	}
	return data[:len(data)-16] // drop the end marker
}
