package diffcheck

import (
	"reflect"
	"testing"

	"repro/internal/fault"
)

// TestFaultGrid is the acceptance grid: every fault class x seed x crash
// point must satisfy the salvage-or-refuse contract with zero silent
// corruptions. Loose shape assertions on top make sure the grid actually
// exercises both outcomes rather than degenerating into all-clean runs.
func TestFaultGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("fault grid is a long test")
	}
	seeds := []int64{1, 2, 3, 4}
	perClass := make(map[string]int)
	perClassDirty := make(map[string]int)
	perClassClean := make(map[string]int)
	for _, class := range fault.Classes {
		for _, seed := range seeds {
			p := FaultRegimeParams(class, seed)
			res, d := RunFaulted(p)
			if d != nil {
				t.Fatalf("class=%s seed=%d: %s at step %d: %s\n  reproduce: %s",
					class, seed, d.Kind, d.Step, d.Detail, p.FlagString())
			}
			if len(res.Points) != p.CrashPoints+1 {
				t.Fatalf("class=%s seed=%d: %d points, want %d",
					class, seed, len(res.Points), p.CrashPoints+1)
			}
			perClass[class] += res.Events
			perClassDirty[class] += res.WalkedBack + res.Refusals
			perClassClean[class] += res.Restored
			if res.Restored+res.WalkedBack+res.Refusals != len(res.Points) {
				t.Fatalf("class=%s seed=%d: tally mismatch %+v", class, seed, res)
			}
		}
	}
	for _, class := range fault.Classes {
		if perClass[class] == 0 {
			t.Errorf("class=%s: zero faults injected across the grid", class)
		}
		if perClassClean[class] == 0 {
			t.Errorf("class=%s: no cell across the grid restored its claimed epoch cleanly", class)
		}
		// Torn/lost in-flight state beyond the commit point is survivable
		// cleanly, so not every seed forces a walk-back — but across four
		// seeds each destructive class must hurt at least once. NAKs only
		// add latency unless the (rare) retry budget is exhausted.
		if class != "nak" && perClassDirty[class] == 0 {
			t.Errorf("class=%s: faults never forced a walk-back or refusal across the grid", class)
		}
	}
}

// TestFaultReplayDeterminism proves the headline robustness claim: the same
// Params replay the same fault schedule byte-for-byte and reach identical
// salvage outcomes.
func TestFaultReplayDeterminism(t *testing.T) {
	p := FaultRegimeParams("all", 7)
	a, d1 := RunFaulted(p)
	b, d2 := RunFaulted(p)
	if d1 != nil || d2 != nil {
		t.Fatalf("unexpected divergence: %v / %v", d1, d2)
	}
	if a.Schedule == "" {
		t.Fatal("empty fault schedule: injector never fired")
	}
	if a.Schedule != b.Schedule {
		t.Fatalf("fault schedule not byte-identical across replays:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			a.Schedule, b.Schedule)
	}
	if !reflect.DeepEqual(a.Points, b.Points) {
		t.Fatalf("salvage outcomes differ across replays:\n%+v\n%+v", a.Points, b.Points)
	}
}

// TestFaultFreeSweep checks the degenerate grid cell: with no fault class
// configured every power cut still loses in-flight queue contents, so
// salvage must restore or walk back — never corrupt — and no fault events
// may be recorded.
func TestFaultFreeSweep(t *testing.T) {
	p := FaultRegimeParams("", 11)
	res, d := RunFaulted(p)
	if d != nil {
		t.Fatalf("%s at step %d: %s\n  reproduce: %s", d.Kind, d.Step, d.Detail, p.FlagString())
	}
	if res.Events != 0 {
		t.Fatalf("fault-free sweep recorded %d fault events", res.Events)
	}
	if res.Restored == 0 {
		t.Fatal("fault-free sweep never restored cleanly")
	}
}
