package diffcheck

import (
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Access patterns the generator can produce. They mirror the shapes of the
// internal/workload suite at trace granularity: uniform random, a hot set
// absorbing most of the traffic, and a strided sweep.
const (
	PatternUniform = "uniform"
	PatternHotspot = "hotspot"
	PatternStride  = "stride"
)

// Params describes one differential trace: the machine shape, the access
// mix, and the verification schedule. A Params value plus nothing else
// deterministically reproduces a full run — it is the reproducer printed
// with every divergence.
type Params struct {
	Seed       int64
	Cores      int
	CoresPerVD int
	Steps      int // trace length in accesses
	Lines      int // working-set lines per region (shared and per-core private)
	SharePct   int // 0..100: chance an access targets the shared region
	WritePct   int // 0..100: chance an access is a store
	EpochSize  int // stores per epoch (per VD for NVOverlay, global for baselines)
	Pattern    string

	Walker    bool // NVOverlay tag walker (min-ver reports need it)
	Buffered  bool // battery-backed OMC buffer
	Wrap      bool // 16-bit two-group epoch wrap-around protocol
	WrapWidth uint
	OMCs      int

	CrashPoints int // swept mid-run crash probes

	// Fault selects a deterministic NVM fault-injection class for the
	// fault-sweep runner ("", "torn", "flip", "loss", "nak", "all").
	Fault string
}

// Step is one generated access: which thread issues it and what it does.
type Step struct {
	Tid   int
	Addr  uint64
	Write bool
	Data  uint64 // step index + 1 for stores; unique and non-zero
}

// Validate rejects parameter combinations the harness cannot run.
func (p Params) Validate() error {
	switch {
	case p.Cores <= 0:
		return fmt.Errorf("diffcheck: Cores must be positive, got %d", p.Cores)
	case p.CoresPerVD <= 0 || p.Cores%p.CoresPerVD != 0:
		return fmt.Errorf("diffcheck: CoresPerVD %d must divide Cores %d", p.CoresPerVD, p.Cores)
	case p.Steps <= 0:
		return fmt.Errorf("diffcheck: Steps must be positive, got %d", p.Steps)
	case p.Lines <= 0:
		return fmt.Errorf("diffcheck: Lines must be positive, got %d", p.Lines)
	case p.SharePct < 0 || p.SharePct > 100:
		return fmt.Errorf("diffcheck: SharePct must be in [0,100], got %d", p.SharePct)
	case p.WritePct < 0 || p.WritePct > 100:
		return fmt.Errorf("diffcheck: WritePct must be in [0,100], got %d", p.WritePct)
	case p.EpochSize <= 0:
		return fmt.Errorf("diffcheck: EpochSize must be positive, got %d", p.EpochSize)
	case p.Pattern != PatternUniform && p.Pattern != PatternHotspot && p.Pattern != PatternStride:
		return fmt.Errorf("diffcheck: unknown pattern %q", p.Pattern)
	case p.Wrap && (p.WrapWidth < 4 || p.WrapWidth > 16):
		return fmt.Errorf("diffcheck: WrapWidth must be in [4,16], got %d", p.WrapWidth)
	case p.OMCs <= 0:
		return fmt.Errorf("diffcheck: OMCs must be positive, got %d", p.OMCs)
	case p.CrashPoints < 0 || p.CrashPoints >= p.Steps:
		return fmt.Errorf("diffcheck: CrashPoints %d must be in [0,Steps)", p.CrashPoints)
	case !fault.ValidClass(p.Fault):
		return fmt.Errorf("diffcheck: unknown fault class %q", p.Fault)
	}
	return nil
}

// Config builds the simulated machine for this trace: a deliberately tiny
// hierarchy so capacity evictions, coherence transfers and walker traffic
// all fire within a short trace.
func (p Params) Config() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Cores = p.Cores
	cfg.CoresPerVD = p.CoresPerVD
	cfg.LLCSlices = 2
	cfg.L1Size = 1 << 10
	cfg.L1Ways = 2
	cfg.L2Size = 4 << 10
	cfg.L2Ways = 4
	cfg.LLCSize = 16 << 10
	cfg.LLCWays = 4
	cfg.EpochSize = p.EpochSize
	cfg.EpochAdvanceCost = 100
	cfg.TagWalker = p.Walker
	cfg.OMCBuffer = p.Buffered
	cfg.OMCBufferSize = 2 << 10 // small: force buffer evictions
	cfg.NVMPoolPages = 0        // unbounded pool, no compaction: exact retention
	cfg.WrapEpochs = p.Wrap
	if p.Wrap {
		cfg.WrapWidth = p.WrapWidth
	}
	cfg.Seed = p.Seed
	cfg.FaultClass = p.Fault // injector seed derives from Seed
	return cfg
}

// Each deterministically generates the first n trace steps from the seed,
// streaming each to f in order without materialising the trace; f returns
// false to stop early. Thread choice, region choice, line choice and
// load/store choice all come from one internal/sim PRNG stream consumed
// strictly in step order, so the stream is bit-identical across runs and
// any prefix of a longer trace equals the shorter trace outright — the
// property the file-backed replay and Minimize both lean on.
func (p Params) Each(n int, f func(i int, s Step) bool) {
	cfg := p.Config()
	rng := sim.NewRNG(p.Seed)
	line := uint64(cfg.LineSize)
	hot := p.Lines / 5
	if hot < 1 {
		hot = 1
	}
	for i := 0; i < n; i++ {
		tid := rng.Intn(p.Cores)
		var idx int
		switch p.Pattern {
		case PatternHotspot:
			if rng.Intn(100) < 80 {
				idx = rng.Intn(hot)
			} else {
				idx = rng.Intn(p.Lines)
			}
		case PatternStride:
			idx = (i * 3) % p.Lines
		default:
			idx = rng.Intn(p.Lines)
		}
		base := trace.HeapBase + uint64(1+tid)<<20 // private region of tid
		if rng.Intn(100) < p.SharePct {
			base = trace.HeapBase // shared region
		}
		st := Step{Tid: tid, Addr: base + uint64(idx)*line}
		if rng.Intn(100) < p.WritePct {
			st.Write = true
			st.Data = uint64(i) + 1
		}
		if !f(i, st) {
			return
		}
	}
}

// Ops materialises the full trace. Short traces and tests use it; the
// replay paths stream via Each so trace length never dictates memory.
func (p Params) Ops() []Step {
	ops := make([]Step, 0, p.Steps)
	p.Each(p.Steps, func(_ int, s Step) bool {
		ops = append(ops, s)
		return true
	})
	return ops
}

// crashSteps returns the swept crash-probe schedule: CrashPoints step
// indices spread evenly across the trace.
func (p Params) crashSteps() map[int]bool {
	pts := make(map[int]bool, p.CrashPoints)
	for i := 1; i <= p.CrashPoints; i++ {
		pts[i*p.Steps/(p.CrashPoints+1)] = true
	}
	return pts
}

// FlagString renders the params as nvcheck CLI flags, the second half of
// every divergence reproducer.
func (p Params) FlagString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-seed %d -cores %d -vdcores %d -steps %d -lines %d -share %d -write %d -epoch %d -pattern %s -omcs %d -crash %d",
		p.Seed, p.Cores, p.CoresPerVD, p.Steps, p.Lines, p.SharePct, p.WritePct, p.EpochSize, p.Pattern, p.OMCs, p.CrashPoints)
	if !p.Walker {
		b.WriteString(" -nowalker")
	}
	if p.Buffered {
		b.WriteString(" -buffer")
	}
	if p.Wrap {
		fmt.Fprintf(&b, " -wrap -wrapwidth %d", p.WrapWidth)
	}
	if p.Fault != "" {
		fmt.Fprintf(&b, " -fault %s", p.Fault)
	}
	return b.String()
}
