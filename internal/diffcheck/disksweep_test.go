package diffcheck

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/recovery"
	"repro/internal/soak"
)

// TestDiskSweepContract runs the acceptance grid — every disk fault class
// x 8 crash cut points x 3 seeds — and requires every cell to satisfy
// salvage-or-refuse: zero silent corruptions, zero untyped errors, zero
// durable epochs lost.
func TestDiskSweepContract(t *testing.T) {
	p := DefaultDiskParams()
	res, d := RunDiskFaults(p, 4)
	if d != nil {
		t.Fatalf("contract violation: %v", d)
	}
	want := len(p.Classes) * len(p.Seeds) * (p.Cuts + 1)
	if len(res.Points) != want {
		t.Fatalf("swept %d cells, want %d", len(res.Points), want)
	}
	if res.Restored == 0 {
		t.Fatal("no cell restored anything; the grid is vacuous")
	}
	if res.Refusals == 0 {
		t.Fatal("no cell refused; early-crash cells should refuse with durable == 0")
	}
	if res.Wounded == 0 {
		t.Fatal("no cell wounded the plane; the fault rates are too low to test degradation")
	}
	if res.Faults == 0 {
		t.Fatal("no faults injected across the whole grid")
	}
	// Refusals are legitimate only before anything is durable; the sweep
	// enforces this per cell, recheck the aggregate for drift.
	for _, pt := range res.Points {
		if pt.Refused && pt.DurableEpoch > 0 {
			t.Fatalf("cell %+v refused after epoch %d was durable", pt, pt.DurableEpoch)
		}
		if !pt.Refused && pt.RestoredEpoch < pt.DurableEpoch {
			t.Fatalf("cell %+v restored below its durable epoch", pt)
		}
	}
}

// TestDiskSweepDeterminism: the aggregate — including the concatenated
// fault schedule — is byte-identical across jobs counts and replays.
func TestDiskSweepDeterminism(t *testing.T) {
	p := DiskParams{Classes: []string{"all"}, Seeds: []int64{7, 8}, Cuts: 4}
	run := func(jobs int) DiskResult {
		res, d := RunDiskFaults(p, jobs)
		if d != nil {
			t.Fatalf("jobs=%d: %v", jobs, d)
		}
		return res
	}
	a, b, c := run(1), run(4), run(1)
	if a.Schedule != b.Schedule {
		t.Fatal("schedule differs between jobs=1 and jobs=4")
	}
	if a.Schedule != c.Schedule {
		t.Fatal("schedule differs across replays")
	}
	if a.Schedule == "" || !strings.Contains(a.Schedule, "# class=all seed=7") {
		t.Fatalf("schedule missing cell headers:\n%.200s", a.Schedule)
	}
	if a.Restored != b.Restored || a.Refusals != b.Refusals || a.Wounded != b.Wounded || a.Faults != b.Faults {
		t.Fatalf("aggregates differ across jobs: %+v vs %+v", a, b)
	}
}

// TestDiskPointCrashBaseline: the pure power-loss class must restore the
// durable epoch exactly on every cut (no faults to excuse anything).
func TestDiskPointCrashBaseline(t *testing.T) {
	sp := soak.DefaultParams("store", 11)
	n, err := controlOps(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{n / 4, n / 2, 3 * n / 4, 0} {
		pt, sched, d := RunDiskFaultPoint("crash", 11, cut, sp)
		if d != nil {
			t.Fatalf("cut=%d: %v", cut, d)
		}
		if cut == 0 {
			// Complete run, then power loss: everything sealed must survive.
			if pt.Refused || pt.RestoredEpoch != uint64(sp.Epochs) {
				t.Fatalf("clean run restored epoch %d (refused=%v), want %d", pt.RestoredEpoch, pt.Refused, sp.Epochs)
			}
		}
		if !pt.Refused && pt.RestoredEpoch < pt.DurableEpoch {
			t.Fatalf("cut=%d restored %d < durable %d", cut, pt.RestoredEpoch, pt.DurableEpoch)
		}
		// The crash class injects exactly one event: the cut itself.
		if cut > 0 && !strings.Contains(sched, "crash") {
			t.Fatalf("cut=%d schedule missing the crash event:\n%s", cut, sched)
		}
	}
}

// TestWoundedPlaneStaysSalvageable drives a writer into certain wounding
// (permanent EIO on every sync) after its early epochs sealed, then proves
// the wounded store still salvages everything that was durable.
func TestWoundedPlaneStaysSalvageable(t *testing.T) {
	sp := soak.DefaultParams("store", 3)
	mfs := fault.NewMemFS()
	// Let the run proceed fault-free for a while, then crash mid-run; the
	// cut makes every later op fail permanently, wounding the plane with
	// sealed epochs behind it.
	n, err := controlOps(sp)
	if err != nil {
		t.Fatal(err)
	}
	ffs := fault.NewFaultFS(mfs, fault.DiskConfig{Seed: 3, CrashAt: 3 * n / 4})
	var durable uint64
	renamed := make(map[uint64]int)
	werr := soak.WriteStoreFS(ffs, sp, func(point string, epoch uint64) {
		if point == "manifest-renamed" {
			renamed[epoch]++
			if renamed[epoch] >= soak.Members && epoch > durable {
				durable = epoch
			}
		}
	})
	if werr == nil {
		t.Fatal("writer survived a crash cut at 3/4 of its syscalls")
	}
	if !errors.Is(werr, mem.ErrPlaneWounded) && !fault.IsDiskFault(werr) {
		t.Fatalf("writer error is neither a wound nor a disk fault: %v", werr)
	}
	if durable == 0 {
		t.Fatal("nothing became durable before the cut; the test is vacuous")
	}
	golden := soak.Golden(sp)
	out, rep, serr := recovery.SalvageDirFS(mfs, sp.Dir)
	if serr != nil {
		t.Fatalf("wounded store refused salvage with epoch %d durable: %v", durable, serr)
	}
	if rep.RestoredEpoch < durable {
		t.Fatalf("restored %d < durable %d", rep.RestoredEpoch, durable)
	}
	if err := recovery.Verify(out, golden[rep.RestoredEpoch]); err != nil {
		t.Fatalf("wounded store's salvage diverges from golden: %v", err)
	}
}
