package diffcheck

import (
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/tracefile"
)

// stepSource yields the first n steps of a trace in order. Every call
// restarts from step 0 — the differential harness replays the same trace
// once per scheme — and the callback returning false stops the iteration
// early (divergence found, or a Minimize cut).
type stepSource interface {
	each(n int, f func(i int, s Step) bool) error
}

// genSource streams steps straight out of the deterministic generator.
type genSource struct{ p Params }

func (g genSource) each(n int, f func(int, Step) bool) error {
	g.p.Each(n, f)
	return nil
}

// fileSource streams steps from a recorded TRC1 trace, opening the file
// afresh per replay so each scheme reads from the start while holding one
// chunk in memory.
type fileSource struct {
	fsys fault.FS
	path string
}

func (s fileSource) each(n int, f func(int, Step) bool) (err error) {
	r, rerr := tracefile.OpenReader(s.fsys, s.path)
	if rerr != nil {
		return rerr
	}
	defer func() {
		if cerr := r.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	for i := 0; i < n; i++ {
		a, rerr := r.Next()
		if rerr == io.EOF {
			return fmt.Errorf("diffcheck: trace %s holds only %d steps, need %d", s.path, i, n)
		}
		if rerr != nil {
			return rerr
		}
		if !f(i, Step{Tid: a.Tid, Addr: a.Addr, Write: a.Write, Data: a.Data}) {
			return nil
		}
	}
	return nil
}

// extraLayoutVersion versions the Params packing in the trace header's
// extra words; extraWords is its fixed length.
const (
	extraLayoutVersion = 1
	extraWords         = 11
)

// patternEnums gives each access pattern a stable wire value.
var patternEnums = []string{PatternUniform, PatternHotspot, PatternStride}

// shape packs the full Params into a tracefile header shape: the machine
// fields ride in the fixed header words, everything else in the
// checksummed extra section, so a trace file alone reproduces its run.
func (p Params) shape() (tracefile.Shape, error) {
	pat := -1
	for i, name := range patternEnums {
		if name == p.Pattern {
			pat = i
		}
	}
	if pat < 0 {
		return tracefile.Shape{}, fmt.Errorf("diffcheck: pattern %q has no wire value", p.Pattern)
	}
	var flags uint64
	if p.Walker {
		flags |= 1
	}
	if p.Buffered {
		flags |= 2
	}
	if p.Wrap {
		flags |= 4
	}
	return tracefile.Shape{
		Cores:      p.Cores,
		CoresPerVD: p.CoresPerVD,
		LineSize:   p.Config().LineSize,
		Seed:       p.Seed,
		Extra: []uint64{
			extraLayoutVersion, uint64(p.Steps), uint64(p.Lines),
			uint64(p.SharePct), uint64(p.WritePct), uint64(p.EpochSize),
			uint64(pat), flags, uint64(p.WrapWidth), uint64(p.OMCs),
			uint64(p.CrashPoints),
		},
	}, nil
}

// paramsFromShape inverts shape. The rebuilt Params must survive Validate,
// so a forged or stale header cannot smuggle an unrunnable configuration
// past the harness.
func paramsFromShape(s tracefile.Shape) (Params, error) {
	x := s.Extra
	if len(x) != extraWords || x[0] != extraLayoutVersion {
		return Params{}, fmt.Errorf("diffcheck: trace header extra layout %v not understood (want version %d, %d words)",
			x, extraLayoutVersion, extraWords)
	}
	if x[6] >= uint64(len(patternEnums)) {
		return Params{}, fmt.Errorf("diffcheck: trace header pattern enum %d unknown", x[6])
	}
	p := Params{
		Seed:        s.Seed,
		Cores:       s.Cores,
		CoresPerVD:  s.CoresPerVD,
		Steps:       int(x[1]),
		Lines:       int(x[2]),
		SharePct:    int(x[3]),
		WritePct:    int(x[4]),
		EpochSize:   int(x[5]),
		Pattern:     patternEnums[x[6]],
		Walker:      x[7]&1 != 0,
		Buffered:    x[7]&2 != 0,
		Wrap:        x[7]&4 != 0,
		WrapWidth:   uint(x[8]),
		OMCs:        int(x[9]),
		CrashPoints: int(x[10]),
	}
	if err := p.Validate(); err != nil {
		return Params{}, fmt.Errorf("diffcheck: trace header decodes to unrunnable params: %w", err)
	}
	return p, nil
}

// TraceInfo summarises one recording.
type TraceInfo struct {
	Records uint64
	Chunks  int
	Bytes   int64
}

// RecordTrace streams p's generated trace into a TRC1 file at path. The
// generation is the same prefix-stable stream the in-memory replay
// consumes, so the recording is byte-faithful by construction; memory
// stays flat in Steps. Fault-injection regimes are refused: their fault
// schedule lives in the NVM plane, outside the access stream a trace file
// captures.
func RecordTrace(fsys fault.FS, path string, p Params) (TraceInfo, error) {
	if err := p.Validate(); err != nil {
		return TraceInfo{}, err
	}
	if p.Fault != "" {
		return TraceInfo{}, fmt.Errorf("diffcheck: fault regime %q cannot be recorded: the fault schedule is not part of the access stream", p.Fault)
	}
	shape, err := p.shape()
	if err != nil {
		return TraceInfo{}, err
	}
	w, err := tracefile.Create(fsys, path, shape)
	if err != nil {
		return TraceInfo{}, err
	}
	var aerr error
	p.Each(p.Steps, func(_ int, s Step) bool {
		if err := w.Append(trace.Access{Tid: s.Tid, Addr: s.Addr, Write: s.Write, Data: s.Data}); err != nil {
			aerr = err
			return false
		}
		return true
	})
	if aerr != nil {
		// Append already latched the writer; Close reports the same error.
		_ = w.Close()
		return TraceInfo{}, aerr
	}
	if err := w.Close(); err != nil {
		return TraceInfo{}, err
	}
	return TraceInfo{Records: w.Records(), Chunks: w.Chunks(), Bytes: w.Bytes()}, nil
}

// ReadParams decodes and validates the Params a trace file was recorded
// with, without reading any of its chunks.
func ReadParams(fsys fault.FS, path string) (Params, error) {
	r, err := tracefile.OpenReader(fsys, path)
	if err != nil {
		return Params{}, err
	}
	p, perr := paramsFromShape(r.Shape())
	if cerr := r.Close(); cerr != nil && perr == nil {
		return Params{}, cerr
	}
	return p, perr
}

// RunFile is Run fed from a recorded trace file instead of the generator:
// the header's params drive the same machine configuration and
// verification schedule, and the access stream comes off disk one chunk at
// a time. A recording of Params p replayed through RunFile produces the
// identical Result and divergence verdict as Run(p). The error covers file
// damage (typed tracefile errors) and header/params mismatches; divergence
// stays a *Divergence, exactly as in Run.
func RunFile(fsys fault.FS, path string) (Result, *Divergence, error) {
	return RunFileObserved(fsys, path, nil)
}

// RunFileObserved is RunFile with the replay narrated on an observability
// bus (nil behaves exactly like RunFile).
func RunFileObserved(fsys fault.FS, path string, bus *obs.Bus) (Result, *Divergence, error) {
	p, err := ReadParams(fsys, path)
	if err != nil {
		return Result{}, nil, err
	}
	return runSource(p, fileSource{fsys: fsys, path: path}, bus)
}
