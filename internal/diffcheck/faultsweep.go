package diffcheck

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/recovery"
	"repro/internal/sim"
)

// FaultPoint is the outcome of one (trace prefix, power cut) cell of the
// fault grid.
type FaultPoint struct {
	Step          int    // trace step at which power was cut
	RestoredEpoch uint64 // epoch salvage proved (0 on refusal)
	WalkedBack    bool   // restored below the claimed epoch
	Refused       bool   // typed-error refusal
	Err           string // typed error text ("" on success)
	Lines         int    // lines in the restored image
	Events        int    // faults injected during this cell
}

// FaultResult aggregates one fault-sweep run: every crash point of the
// trace cut under the configured fault class, salvaged, and cross-checked
// against the golden model.
type FaultResult struct {
	Params     Params
	Points     []FaultPoint
	Restored   int // cells restoring the claimed epoch cleanly
	WalkedBack int // cells that salvaged an older sealed epoch
	Refusals   int // cells refusing with a typed error
	Events     int // total faults injected across cells
	// Schedule is the concatenated canonical fault schedule of every
	// cell. Byte-identical across replays of the same Params.
	Schedule string
}

// faultCuts returns the power-cut schedule: every swept crash point plus
// the full trace length (cut after the final drain-less step).
func faultCuts(p Params) []int {
	cuts := make([]int, 0, p.CrashPoints+1)
	for i := 1; i <= p.CrashPoints; i++ {
		cuts = append(cuts, i*p.Steps/(p.CrashPoints+1))
	}
	return append(cuts, p.Steps)
}

// RunFaulted sweeps power cuts across the trace under the configured fault
// class. Every cell must satisfy the salvage-or-refuse contract; the first
// violation is returned as a Divergence with a deterministic reproducer.
func RunFaulted(p Params) (FaultResult, *Divergence) {
	return RunFaultedJobs(p, 1)
}

// RunFaultedJobs is RunFaulted with the crash-point cells fanned over jobs
// workers. Each cell replays its own trace prefix from the shared Params
// (no mutable state crosses cells) and results merge in cut order, so the
// aggregate — including the concatenated Schedule string and which
// Divergence is reported first — is byte-identical for every jobs value.
func RunFaultedJobs(p Params, jobs int) (FaultResult, *Divergence) {
	return runFaulted(p, jobs, nil)
}

// RunFaultedObserved is RunFaulted narrated on an observability bus: every
// crash-point cell's replay, injected faults and salvage decisions land on
// the one stream. The cells run serially so the stream is in cut order
// (and byte-identical across replays); the verdict matches RunFaulted.
func RunFaultedObserved(p Params, bus *obs.Bus) (FaultResult, *Divergence) {
	return runFaulted(p, 1, bus)
}

func runFaulted(p Params, jobs int, bus *obs.Bus) (FaultResult, *Divergence) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if bus != nil {
		jobs = 1 // cells share the bus; serialise so the stream stays canonical
	}
	cuts := faultCuts(p)
	res := FaultResult{Params: p}
	var sched strings.Builder
	type cell struct {
		pt    FaultPoint
		sched string
		d     *Divergence
	}
	var firstDiv *Divergence
	parallel.ForEachOrdered(jobs, len(cuts), func(i int) cell {
		pt, cellSched, d := RunFaultPointObserved(p, cuts[i], nil, bus)
		return cell{pt, cellSched, d}
	}, func(i int, c cell) bool {
		if c.d != nil {
			firstDiv = c.d
			return false
		}
		res.Points = append(res.Points, c.pt)
		res.Events += c.pt.Events
		switch {
		case c.pt.Refused:
			res.Refusals++
		case c.pt.WalkedBack:
			res.WalkedBack++
		default:
			res.Restored++
		}
		fmt.Fprintf(&sched, "# cut=%d\n%s\n", cuts[i], c.sched)
		return true
	})
	if firstDiv != nil {
		return res, firstDiv
	}
	res.Schedule = sched.String()
	return res, nil
}

// RunFaultPoint replays the first cut steps, cuts power under the fault
// injector, optionally mutates the surviving image further (the fuzz
// harness's hook), and salvages. The contract it enforces is the PR's
// acceptance bar: salvage either restores an image byte-equal to the
// golden model at exactly its reported epoch, or refuses with a typed
// error and a non-empty report — never a silently wrong image.
func RunFaultPoint(p Params, cut int, mutate func(*mem.Image)) (FaultPoint, string, *Divergence) {
	return RunFaultPointObserved(p, cut, mutate, nil)
}

// RunFaultPointObserved is RunFaultPoint narrated on an observability bus
// (nil behaves exactly like RunFaultPoint): the replay's emissions, the
// injector's faults and the salvage decisions all land on the one stream.
func RunFaultPointObserved(p Params, cut int, mutate func(*mem.Image), bus *obs.Bus) (FaultPoint, string, *Divergence) {
	cfg := p.Config()
	cfg.Obs = bus
	ops := p.Ops()[:cut]
	nv := core.New(&cfg, core.WithRetention(), core.WithOMCs(p.OMCs))
	clocks := sim.NewClocks(cfg.Cores)
	nv.Bind(clocks)
	g := NewGolden()
	div := func(kind string, format string, args ...interface{}) *Divergence {
		return &Divergence{Params: p, Scheme: "NVOverlay+fault", Kind: kind, Step: cut - 1,
			Detail: fmt.Sprintf(format, args...)}
	}
	for i, op := range ops {
		lat := nv.Access(op.Tid, op.Addr, op.Write, op.Data)
		clocks.Advance(op.Tid, lat+pipelineCost)
		if op.Write {
			oid := nv.LastStoreOID()
			if oid == 0 {
				return FaultPoint{}, "", div("store-oid", "store to %#x was assigned no epoch tag at step %d", op.Addr, i)
			}
			if err := g.Store(i, cfg.LineAddr(op.Addr), oid, op.Data); err != nil {
				return FaultPoint{}, "", div("epoch-monotonicity", "%v", err)
			}
		}
	}
	img := nv.PowerCut(clocks.Max())
	if mutate != nil {
		mutate(img)
	}
	pt := FaultPoint{Step: cut}
	sched := ""
	if inj := nv.Injector(); inj != nil {
		pt.Events = inj.Total()
		sched = inj.Schedule()
	}
	restored, rep, err := recovery.SalvageObserved(img, bus)
	if err != nil {
		if !errors.Is(err, recovery.ErrTornEpoch) &&
			!errors.Is(err, recovery.ErrChecksum) &&
			!errors.Is(err, recovery.ErrUnrecoverable) {
			return pt, sched, div("untyped-error", "salvage failed with untyped error: %v", err)
		}
		if !rep.NonEmpty() || !rep.Refused {
			return pt, sched, div("empty-salvage-report", "refusal without findings: %v", err)
		}
		pt.Refused = true
		pt.Err = err.Error()
		return pt, sched, nil
	}
	if rep == nil {
		return pt, sched, div("missing-salvage-report", "salvage succeeded without a report")
	}
	want := g.ImageAt(rep.RestoredEpoch)
	if verr := recovery.Verify(restored, want); verr != nil {
		return pt, sched, div("silent-corruption",
			"salvaged image claims epoch %d (walked_back=%v) but diverges from golden: %v\n  %s",
			rep.RestoredEpoch, rep.WalkedBack, verr, diffImages(restored, want))
	}
	pt.RestoredEpoch = rep.RestoredEpoch
	pt.WalkedBack = rep.WalkedBack
	pt.Lines = rep.LinesRestored
	return pt, sched, nil
}

// FaultRegimeParams is the canonical compact trace of the fault grid: big
// enough to seal multiple epochs per partition and keep bank queues busy,
// small enough that a 4-class x 8-cut x 4-seed grid runs inside the test
// budget.
func FaultRegimeParams(class string, seed int64) Params {
	return Params{
		Seed:        seed,
		Cores:       4,
		CoresPerVD:  2,
		Steps:       600,
		Lines:       48,
		SharePct:    30,
		WritePct:    60,
		EpochSize:   12,
		Pattern:     PatternUniform,
		Walker:      true,
		OMCs:        2,
		CrashPoints: 8,
		Fault:       class,
	}
}
