package diffcheck

// RegimeParams returns the i-th trace of the standard verification sweep:
// a deterministic rotation over machine shapes and access mixes, each
// regime seeded differently so a sweep of n traces explores n distinct
// traces across six regimes. Every regime closes well over eight epochs
// and sweeps at least three crash points; regimes 1 and 5 run the epoch
// wrap-around protocol with narrow wire widths so group transitions fire
// many times within a short trace. The test suite and the nvcheck soak CLI
// share this schedule.
func RegimeParams(i int, baseSeed int64) Params {
	p := Params{
		Seed:        baseSeed + int64(i),
		Cores:       4,
		CoresPerVD:  2,
		Steps:       1400,
		Lines:       80,
		SharePct:    50,
		WritePct:    50,
		EpochSize:   14,
		Pattern:     PatternUniform,
		Walker:      true,
		OMCs:        2,
		CrashPoints: 4,
	}
	switch i % 6 {
	case 0:
		// Baseline regime: defaults above.
	case 1:
		// Wrap-around: 5-bit wire, group transition every 16 epochs.
		p.Wrap = true
		p.WrapWidth = 5
		p.SharePct = 60
		p.EpochSize = 10
	case 2:
		// Battery-backed OMC buffer with a tiny capacity (forced evictions).
		p.Buffered = true
		p.Pattern = PatternHotspot
	case 3:
		// Wider machine: 8 cores, 4 versioned domains, 4 OMC partitions.
		p.Cores = 8
		p.Lines = 96
		p.OMCs = 4
		p.Steps = 1600
	case 4:
		// One core per VD, store-heavy, strided sweep.
		p.CoresPerVD = 1
		p.WritePct = 70
		p.Pattern = PatternStride
	case 5:
		// Wrap-around at the narrowest legal width plus the OMC buffer:
		// 4-bit wire wraps every 8 epochs while versions sit buffered.
		p.Wrap = true
		p.WrapWidth = 4
		p.Buffered = true
		p.SharePct = 70
		p.EpochSize = 10
	}
	return p
}

// RegimeCount is the size of the rotation in RegimeParams.
const RegimeCount = 6
