package diffcheck

import (
	"strings"
	"testing"
)

// traceBudget is the sweep size. The -short acceptance budget is 504
// traces (84 per regime); full mode doubles it.
func traceBudget() int {
	if testing.Short() {
		return 504
	}
	return 1008
}

// TestDifferentialTraces is the tentpole sweep: every trace of the regime
// rotation must replay divergence-free through NVOverlay, the baseline
// rotation and the golden model, and must actually exercise the machinery
// it claims to (epochs, crash probes, wrap transitions).
func TestDifferentialTraces(t *testing.T) {
	n := traceBudget()
	const shards = 8
	for s := 0; s < shards; s++ {
		s := s
		t.Run("", func(t *testing.T) {
			t.Parallel()
			for i := s; i < n; i += shards {
				p := RegimeParams(i, 1)
				res, d := Run(p)
				if d != nil {
					t.Fatal(d.Error())
				}
				if res.MaxEpoch < 9 {
					t.Fatalf("trace %d (%s): reached epoch %d, want >= 9", i, p.FlagString(), res.MaxEpoch)
				}
				if res.CrashVerifies < p.CrashPoints {
					t.Fatalf("trace %d (%s): %d crash verifies, want >= %d",
						i, p.FlagString(), res.CrashVerifies, p.CrashPoints)
				}
				if res.BoundaryVerifies < 3 {
					t.Fatalf("trace %d (%s): %d boundary verifies, want >= 3",
						i, p.FlagString(), res.BoundaryVerifies)
				}
				if p.Wrap && res.WrapFlushes < 1 {
					t.Fatalf("trace %d (%s): wrap regime crossed no group transition", i, p.FlagString())
				}
				if res.Lines == 0 {
					t.Fatalf("trace %d (%s): no lines written", i, p.FlagString())
				}
			}
		})
	}
}

// TestNoWalkerRegime covers the walker-disabled ablation: min-ver is never
// reported so the recoverable epoch stays at zero until the final seal,
// but the sealed image must still match the golden final state.
func TestNoWalkerRegime(t *testing.T) {
	p := RegimeParams(0, 77)
	p.Walker = false
	res, d := Run(p)
	if d != nil {
		t.Fatal(d.Error())
	}
	if res.BoundaryVerifies != 0 {
		t.Fatalf("walker disabled but %d boundary verifies fired", res.BoundaryVerifies)
	}
	if res.RecEpoch < 9 {
		t.Fatalf("sealed rec-epoch %d, want >= 9", res.RecEpoch)
	}
}

// TestRunDeterminism re-runs one trace per regime and requires identical
// results: the property the reproducer in every divergence report rests on.
func TestRunDeterminism(t *testing.T) {
	for i := 0; i < RegimeCount; i++ {
		p := RegimeParams(i, 4242)
		a, da := Run(p)
		b, db := Run(p)
		if (da == nil) != (db == nil) {
			t.Fatalf("regime %d: divergence not deterministic: %v vs %v", i, da, db)
		}
		if a.MaxEpoch != b.MaxEpoch || a.RecEpoch != b.RecEpoch ||
			a.BoundaryVerifies != b.BoundaryVerifies || a.CrashVerifies != b.CrashVerifies ||
			a.WrapFlushes != b.WrapFlushes || a.Lines != b.Lines {
			t.Fatalf("regime %d: results differ across identical runs:\n%+v\n%+v", i, a, b)
		}
	}
}

// TestGoldenModel unit-tests the shadow memory in isolation.
func TestGoldenModel(t *testing.T) {
	g := NewGolden()
	must := func(step int, addr, epoch, data uint64) {
		t.Helper()
		if err := g.Store(step, addr, epoch, data); err != nil {
			t.Fatal(err)
		}
	}
	must(0, 0x40, 1, 10)
	must(1, 0x80, 1, 11)
	must(2, 0x40, 1, 12)
	must(3, 0x40, 3, 13)
	must(4, 0xc0, 4, 14)

	if err := g.Store(5, 0x40, 2, 99); err == nil {
		t.Fatal("epoch regression not rejected")
	}
	if g.Lines() != 3 {
		t.Fatalf("Lines() = %d, want 3", g.Lines())
	}
	wantFinal := map[uint64]uint64{0x40: 13, 0x80: 11, 0xc0: 14}
	for a, w := range wantFinal {
		if got := g.Final()[a]; got != w {
			t.Fatalf("Final()[%#x] = %d, want %d", a, got, w)
		}
	}
	img := g.ImageAt(2)
	if len(img) != 2 || img[0x40] != 12 || img[0x80] != 11 {
		t.Fatalf("ImageAt(2) = %v, want {0x40:12, 0x80:11}", img)
	}
	if img := g.ImageAt(0); len(img) != 0 {
		t.Fatalf("ImageAt(0) = %v, want empty", img)
	}
	if d, e, ok := g.VersionAt(0x40, 5); !ok || d != 13 || e != 3 {
		t.Fatalf("VersionAt(0x40, 5) = (%d,%d,%v), want (13,3,true)", d, e, ok)
	}
	if d, e, ok := g.VersionAt(0x40, 1); !ok || d != 12 || e != 1 {
		t.Fatalf("VersionAt(0x40, 1) = (%d,%d,%v), want (12,1,true)", d, e, ok)
	}
	if _, _, ok := g.VersionAt(0xc0, 3); ok {
		t.Fatal("VersionAt(0xc0, 3) found a version before the first write")
	}
}

// TestTraceGen checks the generator's determinism and knobs.
func TestTraceGen(t *testing.T) {
	p := RegimeParams(0, 9)
	a, b := p.Ops(), p.Ops()
	if len(a) != p.Steps {
		t.Fatalf("generated %d steps, want %d", len(a), p.Steps)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs across identical generations: %+v vs %+v", i, a[i], b[i])
		}
	}
	var writes int
	for _, op := range a {
		if op.Write {
			writes++
			if op.Data == 0 {
				t.Fatal("store with zero data token")
			}
		}
		if op.Tid < 0 || op.Tid >= p.Cores {
			t.Fatalf("step tid %d out of range", op.Tid)
		}
	}
	if writes < p.Steps/4 || writes > 3*p.Steps/4 {
		t.Fatalf("write mix %d/%d far from WritePct %d", writes, p.Steps, p.WritePct)
	}
	all := Params{Seed: 5, Cores: 2, CoresPerVD: 1, Steps: 200, Lines: 8, SharePct: 100,
		WritePct: 100, EpochSize: 4, Pattern: PatternUniform, Walker: true, OMCs: 1, CrashPoints: 0}
	for _, op := range all.Ops() {
		if !op.Write {
			t.Fatal("WritePct=100 generated a load")
		}
	}
}

// TestParamsValidate covers the guard rails the fuzz clamp relies on.
func TestParamsValidate(t *testing.T) {
	good := RegimeParams(0, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Cores = 0 },
		func(p *Params) { p.CoresPerVD = 3 },
		func(p *Params) { p.Steps = 0 },
		func(p *Params) { p.Lines = 0 },
		func(p *Params) { p.SharePct = 101 },
		func(p *Params) { p.WritePct = -1 },
		func(p *Params) { p.EpochSize = 0 },
		func(p *Params) { p.Pattern = "zipf" },
		func(p *Params) { p.Wrap = true; p.WrapWidth = 3 },
		func(p *Params) { p.OMCs = 0 },
		func(p *Params) { p.CrashPoints = p.Steps },
	}
	for i, mod := range bad {
		p := good
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("mutation %d accepted: %+v", i, p)
		}
	}
}

// TestDivergenceReport checks the reproducer format end to end without
// needing a real protocol bug: the report must carry the seed, the step,
// the nvcheck flags, and the minimized prefix.
func TestDivergenceReport(t *testing.T) {
	p := RegimeParams(1, 123)
	d := &Divergence{Params: p, Scheme: "NVOverlay", Kind: "crash-image", Step: 812,
		MinSteps: 97, Detail: "rec-epoch 7: line 0x40 = 3, want 5"}
	msg := d.Error()
	for _, want := range []string{
		"seed=124", "step 812", "kind=crash-image",
		"-seed 124", "-wrap -wrapwidth 5", "nvcheck", "first 97 steps",
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("divergence report missing %q:\n%s", want, msg)
		}
	}
	dEnd := &Divergence{Params: p, Scheme: "PiCL", Kind: "final-dram", Step: -1, Detail: "x"}
	if !strings.Contains(dEnd.Error(), "end of run") {
		t.Fatalf("end-of-run divergence mislabelled:\n%s", dEnd.Error())
	}
}

// TestDiffImages pins the deterministic divergence diff rendering.
func TestDiffImages(t *testing.T) {
	got := map[uint64]uint64{0x40: 1, 0x80: 2}
	want := map[uint64]uint64{0x40: 1, 0x80: 3, 0xc0: 4}
	s := diffImages(got, want)
	if !strings.Contains(s, "0x80: got 2 want 3") || !strings.Contains(s, "0xc0: missing (want 4)") {
		t.Fatalf("diff = %q", s)
	}
	if s := diffImages(got, got); s != "images identical" {
		t.Fatalf("self-diff = %q", s)
	}
}
