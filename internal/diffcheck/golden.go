// Package diffcheck is the differential verification harness for the
// snapshot stack. It replays seeded randomized multi-core traces through
// the full NVOverlay stack (cst + omc + recovery) and the baseline schemes
// while maintaining a trivially-correct golden shadow-memory model, and
// cross-checks the recovered image at every recoverable-epoch advance, at
// swept mid-run crash points, and at end of run. Any divergence is
// reported with a deterministic reproducer (seed + step index).
//
// The golden model works because of one protocol invariant the frontend
// provides: the epoch tag assigned to successive stores of the same line
// is non-decreasing (coherence-driven Lamport synchronisation, §IV-B2).
// Golden.Store checks that invariant directly; everything else about the
// hardware image then reduces to "last write with tag <= rec-epoch wins".
package diffcheck

import (
	"fmt"
	"sort"
)

// write is one store observed by the golden model.
type write struct {
	step  int
	epoch uint64
	data  uint64
}

// Golden is the trivially-correct shadow memory: a flat map keyed by line
// address whose per-address history is versioned by the epoch tags the
// hardware itself assigned. It has no caches, no protocol and no timing —
// just the semantics the snapshot stack must preserve.
type Golden struct {
	hist map[uint64][]write
}

// NewGolden returns an empty shadow memory.
func NewGolden() *Golden {
	return &Golden{hist: make(map[uint64][]write)}
}

// Store records a write of data to line addr tagged with epoch at trace
// step. It returns an error when the tag regresses for the address — the
// monotonicity invariant every later golden comparison relies on.
func (g *Golden) Store(step int, addr, epoch, data uint64) error {
	h := g.hist[addr]
	if n := len(h); n > 0 && epoch < h[n-1].epoch {
		return fmt.Errorf("golden: line %#x tagged epoch %d at step %d after epoch %d at step %d",
			addr, epoch, step, h[n-1].epoch, h[n-1].step)
	}
	g.hist[addr] = append(h, write{step: step, epoch: epoch, data: data})
	return nil
}

// Lines returns how many distinct line addresses have been written.
func (g *Golden) Lines() int { return len(g.hist) }

// Addrs returns every written line address in ascending order.
func (g *Golden) Addrs() []uint64 {
	out := make([]uint64, 0, len(g.hist))
	for a := range g.hist {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Final returns the crash-free final image: the last write per address.
func (g *Golden) Final() map[uint64]uint64 {
	img := make(map[uint64]uint64, len(g.hist))
	//nvlint:allow maprange map-to-map build keyed by the source map, order-independent
	for a, h := range g.hist {
		img[a] = h[len(h)-1].data
	}
	return img
}

// ImageAt returns the consistent image of the given epoch: per address,
// the last write whose tag is <= epoch; addresses first written in a later
// epoch are absent. This is what recovery.Recover must reproduce when the
// recoverable epoch equals epoch.
func (g *Golden) ImageAt(epoch uint64) map[uint64]uint64 {
	img := make(map[uint64]uint64, len(g.hist))
	//nvlint:allow maprange map-to-map build keyed by the source map, order-independent
	for a, h := range g.hist {
		// Per-address epochs are non-decreasing, so the writes with tag
		// <= epoch form a prefix of the history.
		i := sort.Search(len(h), func(i int) bool { return h[i].epoch > epoch })
		if i > 0 {
			img[a] = h[i-1].data
		}
	}
	return img
}

// VersionAt returns addr's value as of the given epoch with the paper's
// fall-through semantics: the last write of the greatest epoch <= epoch,
// that epoch, and whether any such write exists. It is the golden
// counterpart of recovery.TimeTravel under full retention.
func (g *Golden) VersionAt(addr, epoch uint64) (data uint64, foundEpoch uint64, ok bool) {
	h := g.hist[addr]
	i := sort.Search(len(h), func(i int) bool { return h[i].epoch > epoch })
	if i == 0 {
		return 0, 0, false
	}
	return h[i-1].data, h[i-1].epoch, true
}
