package diffcheck

import (
	"fmt"
	"sort"

	"repro/internal/baseline"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/trace"
)

// pipelineCost mirrors the trace driver's per-access non-memory work.
const pipelineCost = 2

// Result summarises one divergence-free differential run; the test suite
// asserts on its counters to prove each trace actually exercised the
// machinery (epochs closed, crash points probed, wraps crossed).
type Result struct {
	Params           Params
	MaxEpoch         uint64 // max per-VD epoch reached by the NVOverlay frontend
	RecEpoch         uint64 // final recoverable epoch (after seal)
	BoundaryVerifies int    // recovery verifications at rec-epoch advances
	CrashVerifies    int    // recovery verifications at swept crash points
	WrapFlushes      int    // group-transition flushes (wrap regimes)
	Lines            int    // distinct lines written
	Baselines        []string
}

// Divergence is the first observed disagreement between a scheme and the
// golden model. Error() prints a deterministic reproducer: the seed and
// step index replay the failure bit-identically.
type Divergence struct {
	Params   Params
	Scheme   string
	Kind     string
	Step     int // step index at detection; -1 = end of run
	MinSteps int // shortest failing prefix found by Minimize (0 = full trace)
	Detail   string
}

// Error implements error with the full reproducer.
func (d *Divergence) Error() string {
	step := fmt.Sprintf("step %d", d.Step)
	if d.Step < 0 {
		step = "end of run"
	}
	msg := fmt.Sprintf("diffcheck: DIVERGENCE scheme=%s kind=%s seed=%d at %s\n  %s\n  reproduce: go run ./cmd/nvcheck %s",
		d.Scheme, d.Kind, d.Params.Seed, step, d.Detail, d.Params.FlagString())
	if d.MinSteps > 0 {
		msg += fmt.Sprintf("\n  minimized: first %d steps of the trace suffice (append -steps %d)",
			d.MinSteps, d.MinSteps)
	}
	return msg
}

// Run replays one trace through NVOverlay and the baseline rotation,
// cross-checking every scheme against the golden model. It returns the
// first divergence (with a minimized reproducer when possible) or nil.
func Run(p Params) (Result, *Divergence) {
	return RunObserved(p, nil)
}

// RunObserved is Run with the whole replay narrated on an observability
// bus (nil behaves exactly like Run). The bus sees the NVOverlay replay
// and every baseline in rotation order, so the stream is deterministic for
// a given Params.
func RunObserved(p Params, bus *obs.Bus) (Result, *Divergence) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	res, d, err := runSource(p, genSource{p}, bus)
	if err != nil {
		panic(err) // generated sources cannot fail
	}
	return res, d
}

// runSource replays one trace — generated or file-backed — through
// NVOverlay and the baseline rotation, cross-checking every scheme against
// the golden model. The error return carries source failures (trace-file
// damage, short files); divergences stay *Divergence.
func runSource(p Params, src stepSource, bus *obs.Bus) (Result, *Divergence, error) {
	res := Result{Params: p}
	d, err := replayNVOverlay(p, src, &res, p.Steps, true, bus)
	if err != nil {
		return res, nil, err
	}
	if d != nil {
		d.MinSteps = Minimize(p)
		return res, d, nil
	}
	for _, name := range baselineRotation(p) {
		d, err := replayBaseline(p, src, name, &res, bus)
		if err != nil {
			return res, nil, err
		}
		if d != nil {
			return res, d, nil
		}
		res.Baselines = append(res.Baselines, name)
	}
	return res, nil, nil
}

// baselineRotation picks the baseline schemes cross-checked alongside
// NVOverlay: PiCL and SW logging always, plus one rotating third so the
// whole zoo is covered across a seed sweep without tripling runtime.
func baselineRotation(p Params) []string {
	third := []string{"PiCL-L2", "SWShadow", "HWShadow"}
	return []string{"PiCL", "SWLog", third[uint64(p.Seed)%3]}
}

// replayNVOverlay drives the first n trace steps through the full stack,
// verifying the recovered image at every recoverable-epoch advance and at
// each crash probe. With finish set it also drains, seals, and verifies
// the final image, the replica path, and time-travel reads; without it the
// run ends in a crash probe at step n (Minimize uses that mode). The error
// return carries step-source failures (trace-file damage, short files).
func replayNVOverlay(p Params, src stepSource, res *Result, n int, finish bool, bus *obs.Bus) (*Divergence, error) {
	cfg := p.Config()
	cfg.Obs = bus
	nv := core.New(&cfg, core.WithRetention(), core.WithOMCs(p.OMCs))
	clocks := sim.NewClocks(cfg.Cores)
	nv.Bind(clocks)
	g := NewGolden()
	div := func(kind string, step int, format string, args ...interface{}) *Divergence {
		return &Divergence{Params: p, Scheme: "NVOverlay", Kind: kind, Step: step,
			Detail: fmt.Sprintf(format, args...)}
	}
	crash := p.crashSteps()
	lastRec := nv.Group().RecEpoch()
	var dd *Divergence
	err := src.each(n, func(i int, op Step) bool {
		lat := nv.Access(op.Tid, op.Addr, op.Write, op.Data)
		clocks.Advance(op.Tid, lat+pipelineCost)
		if op.Write {
			oid := nv.LastStoreOID()
			if oid == 0 {
				dd = div("store-oid", i, "store to %#x was assigned no epoch tag", op.Addr)
				return false
			}
			if err := g.Store(i, cfg.LineAddr(op.Addr), oid, op.Data); err != nil {
				dd = div("epoch-monotonicity", i, "%v", err)
				return false
			}
		}
		if rec := nv.Group().RecEpoch(); rec != lastRec {
			if rec < lastRec {
				dd = div("rec-epoch-regression", i, "recoverable epoch fell from %d to %d", lastRec, rec)
				return false
			}
			if d := verifyRecovered(p, nv, g, rec, i, "boundary-image"); d != nil {
				dd = d
				return false
			}
			res.BoundaryVerifies++
			lastRec = rec
		}
		if crash[i] {
			if err := nv.Frontend().CheckInvariants(); err != nil {
				dd = div("cst-invariant", i, "%v", err)
				return false
			}
			if d := verifyRecovered(p, nv, g, nv.Group().RecEpoch(), i, "crash-image"); d != nil {
				dd = d
				return false
			}
			res.CrashVerifies++
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if dd != nil {
		return dd, nil
	}
	for vd := 0; vd < cfg.VDs(); vd++ {
		if e := nv.Frontend().CurEpoch(vd); e > res.MaxEpoch {
			res.MaxEpoch = e
		}
	}
	res.WrapFlushes = nv.Frontend().WrapFlushes()
	res.Lines = g.Lines()
	if err := nv.Frontend().CheckInvariants(); err != nil {
		return div("cst-invariant", n-1, "%v", err), nil
	}
	if !finish {
		// Crash at step n: whatever is recoverable now must be consistent.
		return verifyRecovered(p, nv, g, nv.Group().RecEpoch(), n-1, "crash-image"), nil
	}
	nv.Drain(clocks.Max())
	res.RecEpoch = nv.Group().RecEpoch()
	img, _ := recovery.Recover(nv.Group())
	want := g.Final()
	if err := recovery.Verify(img, want); err != nil {
		return div("final-image", -1, "%v\n  %s", err, diffImages(img, want)), nil
	}
	repl := recovery.NewReplica()
	recovery.Replicate(nv.Group(), repl)
	if err := recovery.Verify(repl.Image(), want); err != nil {
		return div("replica-image", -1, "%v\n  %s", err, diffImages(repl.Image(), want)), nil
	}
	// Time-travel spot checks against the golden history (full retention
	// makes every epoch's value exactly recoverable).
	addrs := g.Addrs()
	if len(addrs) > 0 && res.MaxEpoch > 0 {
		rng := sim.NewRNG(p.Seed ^ 0x74726176) // independent probe stream
		for k := 0; k < 32; k++ {
			addr := addrs[rng.Intn(len(addrs))]
			e := 1 + rng.Uint64n(res.MaxEpoch)
			data, fe, ok := recovery.TimeTravel(nv.Group(), addr, e)
			wdata, wfe, wok := g.VersionAt(addr, e)
			if ok != wok || (ok && (data != wdata || fe != wfe)) {
				return div("time-travel", -1,
					"addr %#x at epoch %d: got (data=%d, epoch=%d, ok=%v), want (data=%d, epoch=%d, ok=%v)",
					addr, e, data, fe, ok, wdata, wfe, wok), nil
			}
		}
	}
	return nil, nil
}

// verifyRecovered cross-checks the recovered image against the golden
// image of the recoverable epoch. recovery.Recover is read-only with
// respect to correctness state, so mid-run probes do not perturb the run.
func verifyRecovered(p Params, nv *core.NVOverlay, g *Golden, rec uint64, step int, kind string) *Divergence {
	img, _ := recovery.Recover(nv.Group())
	want := g.ImageAt(rec)
	if err := recovery.Verify(img, want); err != nil {
		return &Divergence{Params: p, Scheme: "NVOverlay", Kind: kind, Step: step,
			Detail: fmt.Sprintf("rec-epoch %d: %v\n  %s", rec, err, diffImages(img, want))}
	}
	return nil
}

// baselineScheme is the slice of the baseline API the harness relies on.
type baselineScheme interface {
	trace.Scheme
	Epoch() uint64
	Hierarchy() *coherence.Hierarchy
	DRAM() *mem.DRAM
}

func newBaseline(name string, cfg *sim.Config) baselineScheme {
	switch name {
	case "PiCL":
		return baseline.NewPiCL(cfg)
	case "PiCL-L2":
		return baseline.NewPiCLL2(cfg)
	case "SWLog":
		return baseline.NewSWLog(cfg)
	case "SWShadow":
		return baseline.NewSWShadow(cfg)
	case "HWShadow":
		return baseline.NewHWShadow(cfg)
	}
	panic("diffcheck: unknown baseline " + name)
}

// replayBaseline drives the trace through one baseline scheme and checks
// its persistence contract: at every epoch boundary the closing epoch's
// dirty lines must have been persisted and the DRAM working copy must
// match the last store of every line with no dirty copy left; after drain
// the DRAM image must equal the golden final image exactly.
func replayBaseline(p Params, src stepSource, name string, res *Result, bus *obs.Bus) (*Divergence, error) {
	cfg := p.Config()
	cfg.Obs = bus
	s := newBaseline(name, &cfg)
	clocks := sim.NewClocks(cfg.Cores)
	s.Bind(clocks)
	div := func(kind string, step int, format string, args ...interface{}) *Divergence {
		return &Divergence{Params: p, Scheme: name, Kind: kind, Step: step,
			Detail: fmt.Sprintf(format, args...)}
	}
	last := make(map[uint64]uint64)
	crash := p.crashSteps()
	prevEpoch := s.Epoch()
	var dd *Divergence
	err := src.each(p.Steps, func(i int, op Step) bool {
		lat := s.Access(op.Tid, op.Addr, op.Write, op.Data)
		clocks.Advance(op.Tid, lat+pipelineCost)
		if op.Write {
			last[cfg.LineAddr(op.Addr)] = op.Data
		}
		if e := s.Epoch(); e != prevEpoch {
			if e < prevEpoch {
				dd = div("epoch-regression", i, "epoch fell from %d to %d", prevEpoch, e)
				return false
			}
			if d := checkBaselineBoundary(p, name, s, &cfg, last, i); d != nil {
				dd = d
				return false
			}
			prevEpoch = e
		}
		if crash[i] {
			if err := s.Hierarchy().CheckInvariants(); err != nil {
				dd = div("hierarchy-invariant", i, "%v", err)
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if dd != nil {
		return dd, nil
	}
	s.Drain(clocks.Max())
	for _, addr := range sortedAddrs(last) {
		if got := s.DRAM().Data(addr); got != last[addr] {
			return div("final-dram", -1, "line %#x = %d after drain, want %d", addr, got, last[addr]), nil
		}
	}
	return nil, nil
}

// checkBaselineBoundary asserts the scheme-specific boundary contract.
// PiCL, SWLog, SWShadow and HWShadow checkpoint every dirty line at the
// boundary (the tag walker / synchronous flush covers all levels), so no
// dirty line may survive. PiCL-L2 tracks epochs at the L2 only: its walker
// cleans L1+L2 but the LLC may legitimately keep dirty lines, which are
// then excluded from the DRAM comparison. When the trace disables the tag
// walker (the ablation regime), the PiCL variants skip their walk entirely
// and any dirty line is legal — only the DRAM contract for clean lines
// remains checkable.
func checkBaselineBoundary(p Params, name string, s baselineScheme, cfg *sim.Config, last map[uint64]uint64, step int) *Divergence {
	h := s.Hierarchy()
	walks := p.Walker || (name != "PiCL" && name != "PiCL-L2")
	dirty := make(map[uint64]bool)
	scanDirty := func(c *cache.Cache, level string) *Divergence {
		var d *Divergence
		c.ForEach(func(ln *cache.Line) {
			if d == nil && ln.Dirty {
				if !walks || (level == "llc" && name == "PiCL-L2") {
					dirty[ln.Tag] = true // legal: not covered by a boundary walk
					return
				}
				d = &Divergence{Params: p, Scheme: name, Kind: "boundary-dirty", Step: step,
					Detail: fmt.Sprintf("line %#x (epoch %d) still dirty in %s after the boundary flush",
						ln.Tag, ln.OID, level)}
			}
		})
		return d
	}
	for tid := 0; tid < cfg.Cores; tid++ {
		if d := scanDirty(h.L1(tid), fmt.Sprintf("l1.%d", tid)); d != nil {
			return d
		}
	}
	for vd := 0; vd < cfg.VDs(); vd++ {
		if d := scanDirty(h.L2(vd), fmt.Sprintf("l2.%d", vd)); d != nil {
			return d
		}
	}
	for i := 0; i < h.Slices(); i++ {
		if d := scanDirty(h.LLCSlice(i), "llc"); d != nil {
			return d
		}
	}
	for _, addr := range sortedAddrs(last) {
		if dirty[addr] {
			continue
		}
		if got := s.DRAM().Data(addr); got != last[addr] {
			return &Divergence{Params: p, Scheme: name, Kind: "boundary-dram", Step: step,
				Detail: fmt.Sprintf("line %#x = %d in DRAM after boundary, want %d", addr, got, last[addr])}
		}
	}
	return nil
}

// Minimize bisects the failing trace to the shortest prefix that still
// diverges when the run is cut there and crash-verified, giving the
// reproducer a tight step count. Returns 0 when only the full run (drain,
// replica or time-travel checks) exposes the failure.
func Minimize(p Params) int {
	if runPrefix(p, p.Steps) == nil {
		return 0
	}
	lo, hi := 1, p.Steps
	for lo < hi {
		mid := (lo + hi) / 2
		if runPrefix(p, mid) != nil {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}

// runPrefix replays the first n generated steps and crash-verifies at the
// cut. Minimize always bisects against the generator: a recorded trace
// decodes to the identical stream, so the minimized reproducer holds for
// file-backed runs too.
func runPrefix(p Params, n int) *Divergence {
	var scratch Result
	d, err := replayNVOverlay(p, genSource{p}, &scratch, n, false, nil)
	if err != nil {
		panic(err) // generated sources cannot fail
	}
	return d
}

// diffImages renders a deterministic, sorted sample of the differences
// between a recovered image and the golden expectation. recovery.Verify
// reports the first mismatch it hits in map order, which varies run to
// run; divergence reports need stable text.
func diffImages(got, want map[uint64]uint64) string {
	addrs := make(map[uint64]bool, len(got)+len(want))
	//nvlint:allow maprange building an address set; sortedAddrs2 orders it before rendering
	for a := range got {
		addrs[a] = true
	}
	//nvlint:allow maprange building an address set; sortedAddrs2 orders it before rendering
	for a := range want {
		addrs[a] = true
	}
	var diffs []string
	for _, a := range sortedAddrs2(addrs) {
		g, gok := got[a]
		w, wok := want[a]
		switch {
		case !gok:
			diffs = append(diffs, fmt.Sprintf("%#x: missing (want %d)", a, w))
		case !wok:
			diffs = append(diffs, fmt.Sprintf("%#x: spurious %d", a, g))
		case g != w:
			diffs = append(diffs, fmt.Sprintf("%#x: got %d want %d", a, g, w))
		}
		if len(diffs) == 8 {
			diffs = append(diffs, "...")
			break
		}
	}
	if len(diffs) == 0 {
		return "images identical"
	}
	return fmt.Sprintf("first diffs (sorted): %v", diffs)
}

func sortedAddrs(m map[uint64]uint64) []uint64 {
	out := make([]uint64, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedAddrs2(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
