// Package coherence implements a directory-based MESI cache hierarchy for
// the simulated multicore: per-core L1s, per-VD shared L2s, and a shared,
// address-interleaved, *inclusive* LLC. The five baseline schemes (software
// logging/shadowing, hardware shadow, PiCL, PiCL-L2) run on this hierarchy
// and observe protocol events through Callbacks.
//
// NVOverlay's Coherent Snapshot Tracking needs deeper protocol changes
// (store-eviction, multi-version residency, a non-inclusive LLC with an OMC
// bypass path) and therefore implements its own versioned hierarchy in
// internal/cst; the two share the cache arrays and the directory idioms
// defined here.
package coherence

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Reason classifies why a dirty line was written back.
type Reason int

// Write-back reasons, used for the paper's Fig 15 evict-reason decomposition.
const (
	ReasonCapacity  Reason = iota // LRU victim on a fill
	ReasonCoherence               // invalidation or downgrade from another VD
	ReasonWalk                    // tag-walker write-back
	ReasonDrain                   // end-of-run or epoch flush
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonCapacity:
		return "capacity"
	case ReasonCoherence:
		return "coherence"
	case ReasonWalk:
		return "walk"
	case ReasonDrain:
		return "drain"
	default:
		return fmt.Sprintf("reason%d", int(r))
	}
}

// Callbacks let a scheme observe and extend the protocol. Any field may be
// nil. Extra cycles returned by write-back hooks are added to the latency of
// the access that triggered the write-back (modelling backpressure).
type Callbacks struct {
	// OnStore fires once permissions are held, before the line is marked
	// dirty; the scheme may inspect the pre-store OID (first-store detection)
	// and retag the line.
	OnStore func(tid, vd int, ln *cache.Line) (extra uint64)
	// OnL2WriteBack fires when a dirty line leaves a VD for the LLC.
	OnL2WriteBack func(vd int, ln cache.Line, reason Reason) (extra uint64)
	// OnLLCWriteBack fires when a dirty line leaves the LLC for DRAM.
	OnLLCWriteBack func(ln cache.Line, reason Reason) (extra uint64)
	// OnResponse fires with the version (OID) of data delivered to a VD.
	OnResponse func(vd int, rv uint64) (extra uint64)
	// OnL2Fill fires when a line is installed in a VD's L2 on a miss fill;
	// schemes that track epoch tags only at the L2 (PiCL-L2) zero the OID
	// here, modelling the tag being lost below their tracking level.
	OnL2Fill func(vd int, ln *cache.Line)
	// OnLLCFill fires when a line is installed in the LLC from DRAM;
	// LLC-level trackers (PiCL) zero the OID here.
	OnLLCFill func(ln *cache.Line)
}

// Hierarchy is the full cache system of the simulated machine. The
// directory is a sharded open-addressing table (cache.Directory) rather
// than a Go map: the per-access lookups dominate the simulator's hot path,
// and the table avoids per-entry allocation and hash-seed randomisation.
type Hierarchy struct {
	cfg  *sim.Config
	l1   []*cache.Cache // per core
	l2   []*cache.Cache // per VD
	llc  []*cache.Cache // slices
	dir  *cache.Directory
	dram *mem.DRAM
	cb   Callbacks
	stat *stats.Set
	bus  *obs.Bus // nil when the run is unobserved
}

// New builds the hierarchy from the machine configuration.
func New(cfg *sim.Config, dram *mem.DRAM, cb Callbacks) *Hierarchy {
	h := &Hierarchy{
		cfg:  cfg,
		l1:   make([]*cache.Cache, cfg.Cores),
		l2:   make([]*cache.Cache, cfg.VDs()),
		llc:  make([]*cache.Cache, cfg.LLCSlices),
		dir:  cache.NewDirectory(),
		dram: dram,
		cb:   cb,
		stat: stats.NewSet("coherence"),
		bus:  cfg.Obs,
	}
	for i := range h.l1 {
		h.l1[i] = cache.New(fmt.Sprintf("l1.%d", i), cfg.L1Size, cfg.L1Ways, cfg.LineSize)
	}
	for i := range h.l2 {
		h.l2[i] = cache.New(fmt.Sprintf("l2.%d", i), cfg.L2Size, cfg.L2Ways, cfg.LineSize)
	}
	sliceSize := cfg.LLCSize / cfg.LLCSlices
	for i := range h.llc {
		h.llc[i] = cache.NewStrided(fmt.Sprintf("llc.%d", i), sliceSize, cfg.LLCWays,
			cfg.LineSize, cfg.LLCSlices)
	}
	return h
}

// L1 returns core tid's L1 array.
func (h *Hierarchy) L1(tid int) *cache.Cache { return h.l1[tid] }

// L2 returns versioned domain vd's L2 array.
func (h *Hierarchy) L2(vd int) *cache.Cache { return h.l2[vd] }

// LLCSlice returns LLC slice i.
func (h *Hierarchy) LLCSlice(i int) *cache.Cache { return h.llc[i] }

// Slices returns the number of LLC slices.
func (h *Hierarchy) Slices() int { return len(h.llc) }

// Stats returns the hierarchy counter set.
func (h *Hierarchy) Stats() *stats.Set { return h.stat }

func (h *Hierarchy) sliceOf(addr uint64) *cache.Cache {
	return h.llc[int((addr/uint64(h.cfg.LineSize))%uint64(len(h.llc)))]
}

// entry resolves addr's directory entry, creating it when absent. The
// returned pointer is valid until the next entry() call (cache.Directory's
// pointer contract); every protocol operation resolves its entry once and
// finishes with it before the next access begins.
func (h *Hierarchy) entry(addr uint64) *cache.DirEntry {
	return h.dir.GetOrCreate(addr)
}

func (h *Hierarchy) coresOf(vd int) (lo, hi int) {
	return vd * h.cfg.CoresPerVD, (vd + 1) * h.cfg.CoresPerVD
}

// Load performs a read by thread tid and returns its latency in cycles.
func (h *Hierarchy) Load(tid int, addr uint64) uint64 {
	addr = h.cfg.LineAddr(addr)
	vd := h.cfg.VDOf(tid)
	lat := h.cfg.L1Latency
	if ln := h.l1[tid].Lookup(addr); ln != nil {
		h.stat.Inc("l1_load_hits")
		return lat
	}
	lat += h.cfg.L2Latency
	if ln := h.l2[vd].Lookup(addr); ln != nil {
		h.stat.Inc("l2_load_hits")
		lat += h.response(vd, ln.OID)
		// If a sibling L1 holds the line writable, downgrade it to Shared
		// (its dirty data merges into the L2) so no two L1s are writable.
		sibling := false
		lo, hi := h.coresOf(vd)
		for c := lo; c < hi; c++ {
			if c == tid {
				continue
			}
			if sib := h.l1[c].Peek(addr); sib != nil {
				sibling = true
				if sib.Dirty {
					ln.Dirty = true
					ln.OID = sib.OID
					ln.Data = sib.Data
					sib.Dirty = false
				}
				sib.State = cache.Shared
			}
		}
		state := cache.Shared
		if ln.State != cache.Shared && !sibling {
			state = cache.Exclusive
		}
		lat += h.fillL1(tid, addr, state, ln.OID, ln.Data)
		return lat
	}
	lat += h.cfg.LLCLatency
	rv, data, extra := h.fetch(vd, addr, false)
	lat += extra
	lat += h.response(vd, rv)
	e := h.entry(addr)
	state := cache.Shared
	if e.Sharers.Only(vd) && e.Owner == -1 {
		state = cache.Exclusive
		e.Sharers = cache.SharerSet{}
		e.Owner = vd
	}
	lat += h.fillL2(vd, addr, state, rv, data)
	if l2ln := h.l2[vd].Peek(addr); l2ln != nil {
		rv = l2ln.OID // the OnL2Fill hook may have adjusted the tag
	}
	lat += h.fillL1(tid, addr, state, rv, data)
	return lat
}

// Store performs a write by thread tid and returns its latency in cycles.
func (h *Hierarchy) Store(tid int, addr uint64) uint64 {
	addr = h.cfg.LineAddr(addr)
	vd := h.cfg.VDOf(tid)
	lat := h.cfg.L1Latency
	if ln := h.l1[tid].Lookup(addr); ln != nil && ln.State.Writable() {
		h.stat.Inc("l1_store_hits")
		lat += h.store(tid, vd, ln)
		return lat
	}
	lat += h.cfg.L2Latency
	if l2ln := h.l2[vd].Lookup(addr); l2ln != nil && l2ln.State.Writable() {
		h.stat.Inc("l2_store_hits")
		// Invalidate sibling L1 copies within the VD, merging dirty data.
		lo, hi := h.coresOf(vd)
		for c := lo; c < hi; c++ {
			if c == tid {
				continue
			}
			if removed, ok := h.l1[c].Invalidate(addr); ok && removed.Dirty {
				l2ln.Dirty = true
				l2ln.OID = removed.OID
				l2ln.Data = removed.Data
			}
		}
		lat += h.response(vd, l2ln.OID)
		l2ln.State = cache.Modified
		lat += h.fillL1(tid, addr, cache.Exclusive, l2ln.OID, l2ln.Data)
		ln := h.l1[tid].Peek(addr)
		lat += h.store(tid, vd, ln)
		return lat
	}
	lat += h.cfg.LLCLatency
	rv, data, extra := h.fetch(vd, addr, true)
	lat += extra
	lat += h.response(vd, rv)
	// Invalidate stale shared copies held by sibling L1s within this VD.
	lo, hi := h.coresOf(vd)
	for c := lo; c < hi; c++ {
		if c == tid {
			continue
		}
		h.l1[c].Invalidate(addr)
	}
	e := h.entry(addr)
	e.Sharers = cache.SharerSet{}
	e.Owner = vd
	lat += h.fillL2(vd, addr, cache.Modified, rv, data)
	if l2ln := h.l2[vd].Peek(addr); l2ln != nil {
		rv = l2ln.OID // the OnL2Fill hook may have adjusted the tag
	}
	lat += h.fillL1(tid, addr, cache.Exclusive, rv, data)
	ln := h.l1[tid].Peek(addr)
	lat += h.store(tid, vd, ln)
	return lat
}

func (h *Hierarchy) store(tid, vd int, ln *cache.Line) (extra uint64) {
	if h.cb.OnStore != nil {
		extra = h.cb.OnStore(tid, vd, ln)
	}
	ln.State = cache.Modified
	ln.Dirty = true
	return extra
}

func (h *Hierarchy) response(vd int, rv uint64) uint64 {
	if h.cb.OnResponse != nil {
		return h.cb.OnResponse(vd, rv)
	}
	return 0
}

// fetch resolves a VD miss at the directory: it invalidates or downgrades
// remote VDs, ensures the line is resident in the (inclusive) LLC, and
// returns the version of the data supplied plus any extra latency.
func (h *Hierarchy) fetch(vd int, addr uint64, exclusive bool) (rv, data uint64, lat uint64) {
	e := h.entry(addr)

	// Resolve remote copies.
	if e.Owner != -1 && e.Owner != vd {
		lat += h.cfg.RemoteL2Lat
		if exclusive {
			h.invalidateVD(e.Owner, addr, ReasonCoherence)
			e.Owner = -1
			h.stat.Inc("remote_invalidations")
		} else {
			h.downgradeVD(e.Owner, addr)
			e.Sharers.Add(e.Owner)
			e.Owner = -1
			h.stat.Inc("remote_downgrades")
		}
	}
	if exclusive && !e.Sharers.None() {
		// Value copy: O(set-bits) ascending walk, same invalidation order as
		// the old O(VDs) bitmask scan.
		sharers := e.Sharers
		sharers.ForEach(func(other int) {
			if other == vd {
				return
			}
			lat += h.cfg.RemoteL2Lat
			h.invalidateVD(other, addr, ReasonCoherence)
			e.Sharers.Remove(other)
			h.stat.Inc("remote_invalidations")
		})
	}

	// Ensure LLC residency (inclusive LLC: every VD-cached line is here).
	slice := h.sliceOf(addr)
	if ln := slice.Lookup(addr); ln != nil {
		h.stat.Inc("llc_hits")
		rv = ln.OID
		data = ln.Data
	} else {
		h.stat.Inc("llc_misses")
		lat += h.dram.Latency()
		rv = h.dram.OID(addr)
		data = h.dram.Data(addr)
		lat += h.installLLC(addr, rv, data, false)
		if h.cb.OnLLCFill != nil {
			if ln := h.sliceOf(addr).Peek(addr); ln != nil {
				h.cb.OnLLCFill(ln)
				rv = ln.OID
			}
		}
	}
	if !exclusive {
		e.Sharers.Add(vd)
	}
	return rv, data, lat
}

// installLLC inserts addr into its LLC slice, handling the victim with
// back-invalidation (inclusive LLC) and DRAM write-back.
func (h *Hierarchy) installLLC(addr uint64, oid, data uint64, dirty bool) (lat uint64) {
	slice := h.sliceOf(addr)
	ln, victim, evicted := slice.Insert(addr)
	if evicted {
		lat += h.evictLLCVictim(victim)
	}
	ln.State = cache.Shared
	ln.OID = oid
	ln.Data = data
	ln.Dirty = dirty
	return lat
}

func (h *Hierarchy) evictLLCVictim(victim cache.Line) (lat uint64) {
	// Back-invalidate all

	// VD copies; their dirty data merges into the victim before write-back.
	if e := h.dir.Get(victim.Tag); e != nil {
		vds := e.Sharers
		if e.Owner != -1 {
			vds.Add(e.Owner)
		}
		vds.ForEach(func(vd int) {
			if wb, ok := h.recallVD(vd, victim.Tag); ok {
				victim.Dirty = true
				victim.OID = wb.OID
				victim.Data = wb.Data
			}
			h.stat.Inc("back_invalidations")
		})
		h.dir.Delete(victim.Tag)
	}
	if victim.Dirty {
		h.dram.WriteBack(victim.Tag, victim.OID, victim.Data)
		h.stat.Inc("llc_dirty_evictions")
		if h.cb.OnLLCWriteBack != nil {
			lat += h.cb.OnLLCWriteBack(victim, ReasonCapacity)
		}
	}
	return lat
}

// recallVD removes every copy of addr from a VD (back-invalidation) and
// returns the newest dirty line, if any. No LLC interaction: the caller owns
// the LLC side.
func (h *Hierarchy) recallVD(vd int, addr uint64) (newest cache.Line, dirty bool) {
	lo, hi := h.coresOf(vd)
	for c := lo; c < hi; c++ {
		if removed, ok := h.l1[c].Invalidate(addr); ok && removed.Dirty {
			newest = removed
			dirty = true
		}
	}
	if removed, ok := h.l2[vd].Invalidate(addr); ok && removed.Dirty && !dirty {
		newest = removed
		dirty = true
	}
	return newest, dirty
}

// invalidateVD removes addr from a VD in response to a remote GETX; dirty
// data is merged into the LLC line and reported via OnL2WriteBack.
func (h *Hierarchy) invalidateVD(vd int, addr uint64, reason Reason) {
	if wb, ok := h.recallVD(vd, addr); ok {
		h.mergeIntoLLC(wb)
		if h.cb.OnL2WriteBack != nil {
			h.cb.OnL2WriteBack(vd, wb, reason)
		}
		h.noteWriteBack(vd, wb, reason)
		h.stat.Inc("coherence_writebacks")
	}
}

// noteWriteBack reports a dirty line leaving a VD on the observability bus.
// The hierarchy itself is clockless (schemes keep their own time), so these
// events carry cycle 0; the bus sequence still preserves their order.
func (h *Hierarchy) noteWriteBack(vd int, ln cache.Line, reason Reason) {
	h.bus.Emit(obs.KindVersionEvict, 0, vd, ln.OID, ln.Tag, uint64(reason), 0)
}

// downgradeVD demotes a VD's copies of addr to Shared in response to a
// remote GETS; dirty data is merged into the LLC line.
func (h *Hierarchy) downgradeVD(vd int, addr uint64) {
	var wb cache.Line
	dirty := false
	lo, hi := h.coresOf(vd)
	for c := lo; c < hi; c++ {
		if ln := h.l1[c].Peek(addr); ln != nil {
			if ln.Dirty {
				wb = *ln
				dirty = true
				ln.Dirty = false
			}
			ln.State = cache.Shared
		}
	}
	if ln := h.l2[vd].Peek(addr); ln != nil {
		if ln.Dirty {
			if !dirty {
				wb = *ln
				dirty = true
			}
			ln.Dirty = false
		}
		if dirty {
			// The L1 write-back flows through the L2 (paper Fig 5): the L2
			// copy is refreshed so later intra-VD fills serve current data.
			ln.OID = wb.OID
			ln.Data = wb.Data
		}
		ln.State = cache.Shared
	}
	if dirty {
		h.mergeIntoLLC(wb)
		if h.cb.OnL2WriteBack != nil {
			h.cb.OnL2WriteBack(vd, wb, ReasonCoherence)
		}
		h.noteWriteBack(vd, wb, ReasonCoherence)
		h.stat.Inc("coherence_writebacks")
	}
}

// mergeIntoLLC folds a dirty line written back by a VD into the inclusive
// LLC copy (which must exist; defensively installs it otherwise).
func (h *Hierarchy) mergeIntoLLC(wb cache.Line) {
	slice := h.sliceOf(wb.Tag)
	if ln := slice.Peek(wb.Tag); ln != nil {
		ln.Dirty = true
		ln.OID = wb.OID
		ln.Data = wb.Data
		return
	}
	h.installLLC(wb.Tag, wb.OID, wb.Data, true)
}

// fillL2 installs addr into vd's L2; the victim is written back and its L1
// copies recalled (inclusive L2).
func (h *Hierarchy) fillL2(vd int, addr uint64, state cache.State, oid, data uint64) (lat uint64) {
	ln, victim, evicted := h.l2[vd].Insert(addr)
	if evicted {
		lat += h.evictL2Victim(vd, victim, ReasonCapacity)
	}
	ln.State = state
	ln.OID = oid
	ln.Data = data
	ln.Dirty = false
	if h.cb.OnL2Fill != nil {
		h.cb.OnL2Fill(vd, ln)
	}
	return lat
}

func (h *Hierarchy) evictL2Victim(vd int, victim cache.Line, reason Reason) (lat uint64) {
	// Recall L1 copies first (inclusive L2); newest dirty data wins.
	lo, hi := h.coresOf(vd)
	for c := lo; c < hi; c++ {
		if removed, ok := h.l1[c].Invalidate(victim.Tag); ok && removed.Dirty {
			victim.Dirty = true
			victim.OID = removed.OID
			victim.Data = removed.Data
		}
	}
	// Directory: this VD no longer caches the line.
	if e := h.dir.Get(victim.Tag); e != nil {
		e.Sharers.Remove(vd)
		if e.Owner == vd {
			e.Owner = -1
		}
		h.dir.DeleteIfEmpty(victim.Tag)
	}
	if victim.Dirty {
		h.mergeIntoLLC(victim)
		if h.cb.OnL2WriteBack != nil {
			lat += h.cb.OnL2WriteBack(vd, victim, reason)
		}
		h.noteWriteBack(vd, victim, reason)
		h.stat.Inc("l2_dirty_evictions")
	}
	return lat
}

// fillL1 installs addr into tid's L1 with the given state; a dirty victim is
// written back into the L2 (which holds it by inclusion).
func (h *Hierarchy) fillL1(tid int, addr uint64, state cache.State, oid, data uint64) (lat uint64) {
	vd := h.cfg.VDOf(tid)
	ln, victim, evicted := h.l1[tid].Insert(addr)
	if evicted && victim.Dirty {
		if l2ln := h.l2[vd].Peek(victim.Tag); l2ln != nil {
			l2ln.Dirty = true
			l2ln.OID = victim.OID
			l2ln.Data = victim.Data
			l2ln.State = cache.Modified
		} else {
			// L2 lost the line (shouldn't happen under inclusion); push to LLC.
			h.mergeIntoLLC(victim)
		}
		h.stat.Inc("l1_dirty_evictions")
	}
	ln.State = state
	ln.OID = oid
	ln.Data = data
	ln.Dirty = false
	return lat
}

// WriteBackLLCLine persists an LLC-resident dirty line in place (tag-walk
// style): the line is downgraded to clean Exclusive-equivalent without
// leaving the LLC. Returns false if the line is not dirty/resident.
func (h *Hierarchy) WriteBackLLCLine(addr uint64) (cache.Line, bool) {
	slice := h.sliceOf(addr)
	ln := slice.Peek(addr)
	if ln == nil || !ln.Dirty {
		return cache.Line{}, false
	}
	copyLn := *ln
	ln.Dirty = false
	h.dram.WriteBack(ln.Tag, ln.OID, ln.Data)
	return copyLn, true
}

// FlushVD recalls every line of a VD (L1s + L2), returning all dirty lines.
// Used by epoch drains in schemes that track at VD granularity.
func (h *Hierarchy) FlushVD(vd int) []cache.Line {
	var dirty []cache.Line
	lo, hi := h.coresOf(vd)
	for c := lo; c < hi; c++ {
		for _, ln := range h.l1[c].Flush() {
			dirty = append(dirty, ln)
		}
	}
	for _, ln := range h.l2[vd].Flush() {
		dirty = append(dirty, ln)
	}
	// Merge into LLC and fix the directory.
	for _, ln := range dirty {
		h.mergeIntoLLC(ln)
	}
	h.dir.ForEach(func(addr uint64, e *cache.DirEntry) {
		e.Sharers.Remove(vd)
		if e.Owner == vd {
			e.Owner = -1
		}
		if e.Sharers.None() && e.Owner == -1 {
			h.dir.Delete(addr)
		}
	})
	return dirty
}

// DirtyLines returns copies of all dirty lines currently in the hierarchy
// whose OID is at most maxOID, deduplicated by address keeping the newest
// copy (L1 over L2 over LLC). Schemes use it for epoch-boundary flushes.
func (h *Hierarchy) DirtyLines(maxOID uint64) []cache.Line {
	seen := make(map[uint64]bool)
	var out []cache.Line
	add := func(ln *cache.Line) {
		if ln.Dirty && ln.OID <= maxOID && !seen[ln.Tag] {
			seen[ln.Tag] = true
			out = append(out, *ln)
		}
	}
	for _, c := range h.l1 {
		c.ForEach(add)
	}
	for _, c := range h.l2 {
		c.ForEach(add)
	}
	for _, c := range h.llc {
		c.ForEach(add)
	}
	return out
}

// CheckInvariants validates inclusion and directory consistency; tests call
// it after randomised access sequences. It returns the first violation.
func (h *Hierarchy) CheckInvariants() error {
	// L1 ⊆ L2 ⊆ LLC.
	for tid, l1 := range h.l1 {
		vd := h.cfg.VDOf(tid)
		var err error
		l1.ForEach(func(ln *cache.Line) {
			if err != nil {
				return
			}
			if h.l2[vd].Peek(ln.Tag) == nil {
				err = fmt.Errorf("L1 %d holds %#x but L2 %d does not (inclusion)", tid, ln.Tag, vd)
			}
		})
		if err != nil {
			return err
		}
	}
	for vd, l2 := range h.l2 {
		var err error
		l2.ForEach(func(ln *cache.Line) {
			if err != nil {
				return
			}
			if h.sliceOf(ln.Tag).Peek(ln.Tag) == nil {
				err = fmt.Errorf("L2 %d holds %#x but LLC does not (inclusion)", vd, ln.Tag)
			}
			e := h.dir.Get(ln.Tag)
			if e == nil {
				err = fmt.Errorf("L2 %d holds %#x with no directory entry", vd, ln.Tag)
				return
			}
			if e.Owner != vd && !e.Sharers.Has(vd) {
				err = fmt.Errorf("L2 %d holds %#x but directory disagrees (owner=%d sharers=%s)",
					vd, ln.Tag, e.Owner, e.Sharers)
			}
			if ln.State.Writable() && e.Owner != vd {
				err = fmt.Errorf("L2 %d holds %#x writable but owner=%d", vd, ln.Tag, e.Owner)
			}
		})
		if err != nil {
			return err
		}
	}
	// At most one writable VD per address. Walk the directory in address
	// order so the first violation reported is stable across runs.
	addrs := h.dir.AppendKeys(make([]uint64, 0, h.dir.Len()))
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		e := h.dir.Get(addr)
		if e.Owner != -1 && e.Sharers.Has(e.Owner) {
			return fmt.Errorf("addr %#x: owner %d also listed as sharer", addr, e.Owner)
		}
	}
	// At most one writable L1 copy per address within a VD.
	for tid, l1 := range h.l1 {
		vd := h.cfg.VDOf(tid)
		var err error
		l1.ForEach(func(ln *cache.Line) {
			if err != nil || !ln.State.Writable() {
				return
			}
			lo, hi := h.coresOf(vd)
			for c := lo; c < hi; c++ {
				if c == tid {
					continue
				}
				if h.l1[c].Peek(ln.Tag) != nil {
					err = fmt.Errorf("L1 %d holds %#x writable while sibling %d caches it", tid, ln.Tag, c)
				}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
