package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
)

// smallCfg returns a shrunken machine so tests exercise evictions quickly.
func smallCfg() *sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Cores = 4
	cfg.CoresPerVD = 2
	cfg.LLCSlices = 2
	cfg.L1Size = 4 * 2 * 64 // 4 sets, 2 ways
	cfg.L1Ways = 2
	cfg.L2Size = 8 * 2 * 64
	cfg.L2Ways = 2
	cfg.LLCSize = 2 * 16 * 4 * 64 // 2 slices * (4 sets * 16... )
	cfg.LLCWays = 4
	cfg.LLCSize = 2 * 4 * 4 * 64 // slice = 4 sets * 4 ways
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &cfg
}

func newH(cfg *sim.Config, cb Callbacks) *Hierarchy {
	return New(cfg, mem.NewDRAM(cfg), cb)
}

func TestLoadHitLatencies(t *testing.T) {
	cfg := smallCfg()
	h := newH(cfg, Callbacks{})
	// Cold miss goes to DRAM.
	lat := h.Load(0, 0x1000)
	want := cfg.L1Latency + cfg.L2Latency + cfg.LLCLatency + cfg.DRAMLatency
	if lat != want {
		t.Fatalf("cold load latency = %d, want %d", lat, want)
	}
	// Second load hits L1.
	if lat := h.Load(0, 0x1000); lat != cfg.L1Latency {
		t.Fatalf("L1 hit latency = %d, want %d", lat, cfg.L1Latency)
	}
	// Sibling core load hits the shared L2.
	if lat := h.Load(1, 0x1000); lat != cfg.L1Latency+cfg.L2Latency {
		t.Fatalf("L2 hit latency = %d", lat)
	}
}

func TestStoreGrantsExclusive(t *testing.T) {
	cfg := smallCfg()
	h := newH(cfg, Callbacks{})
	h.Store(0, 0x40)
	ln := h.L1(0).Peek(0x40)
	if ln == nil || ln.State != cache.Modified || !ln.Dirty {
		t.Fatalf("post-store L1 line = %+v", ln)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Store hit is cheap afterwards.
	if lat := h.Store(0, 0x40); lat != cfg.L1Latency {
		t.Fatalf("store hit latency = %d", lat)
	}
}

func TestRemoteInvalidationOnStore(t *testing.T) {
	cfg := smallCfg()
	var coherenceWBs int
	h := newH(cfg, Callbacks{
		OnL2WriteBack: func(vd int, ln cache.Line, reason Reason) uint64 {
			if reason == ReasonCoherence {
				coherenceWBs++
			}
			return 0
		},
	})
	h.Store(0, 0x80) // VD0 owns dirty
	h.Store(2, 0x80) // VD1 steals: VD0's dirty copy must be written back
	if coherenceWBs != 1 {
		t.Fatalf("coherence write-backs = %d, want 1", coherenceWBs)
	}
	if h.L1(0).Peek(0x80) != nil || h.L2(0).Peek(0x80) != nil {
		t.Fatal("VD0 still caches the line after invalidation")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteDowngradeOnLoad(t *testing.T) {
	cfg := smallCfg()
	h := newH(cfg, Callbacks{})
	h.Store(0, 0x80)
	h.Load(2, 0x80) // VD1 reads: VD0 downgraded to S
	if ln := h.L1(0).Peek(0x80); ln != nil && ln.State.Writable() {
		t.Fatal("VD0 L1 still writable after remote load")
	}
	if ln := h.L2(0).Peek(0x80); ln == nil || ln.State.Writable() {
		t.Fatal("VD0 L2 should retain a shared copy")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSiblingDowngradeWithinVD(t *testing.T) {
	cfg := smallCfg()
	h := newH(cfg, Callbacks{})
	h.Store(0, 0xC0)
	h.Load(1, 0xC0) // sibling load: core 0 must lose writability
	if ln := h.L1(0).Peek(0xC0); ln != nil && ln.State.Writable() {
		t.Fatal("sibling L1 still writable")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Store by core 1 must invalidate core 0's copy.
	h.Store(1, 0xC0)
	if h.L1(0).Peek(0xC0) != nil {
		t.Fatal("stale sibling copy survived a store")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOnStoreCallbackSeesPreStoreLine(t *testing.T) {
	cfg := smallCfg()
	var sawDirty []bool
	h := newH(cfg, Callbacks{
		OnStore: func(tid, vd int, ln *cache.Line) uint64 {
			sawDirty = append(sawDirty, ln.Dirty)
			ln.OID = 99
			return 7
		},
	})
	lat1 := h.Store(0, 0x40)
	lat2 := h.Store(0, 0x40)
	if len(sawDirty) != 2 || sawDirty[0] || !sawDirty[1] {
		t.Fatalf("pre-store dirty flags = %v", sawDirty)
	}
	if h.L1(0).Peek(0x40).OID != 99 {
		t.Fatal("OnStore retag lost")
	}
	if lat2-cfg.L1Latency != 7 {
		t.Fatalf("extra cycles not charged: %d then %d", lat1, lat2)
	}
}

func TestOnResponseRV(t *testing.T) {
	cfg := smallCfg()
	var rvs []uint64
	h := newH(cfg, Callbacks{
		OnStore:    func(tid, vd int, ln *cache.Line) uint64 { ln.OID = 55; return 0 },
		OnResponse: func(vd int, rv uint64) uint64 { rvs = append(rvs, rv); return 0 },
	})
	h.Store(0, 0x40) // response rv=0 (from DRAM)
	h.Load(2, 0x40)  // VD1 fetches, must observe rv=55
	found := false
	for _, rv := range rvs {
		if rv == 55 {
			found = true
		}
	}
	if !found {
		t.Fatalf("remote load did not observe the writer's version: %v", rvs)
	}
}

func TestLLCEvictionWritesDRAM(t *testing.T) {
	cfg := smallCfg()
	dram := mem.NewDRAM(cfg)
	var llcWBs int
	h := New(cfg, dram, Callbacks{
		OnLLCWriteBack: func(ln cache.Line, reason Reason) uint64 { llcWBs++; return 0 },
	})
	// Dirty many distinct lines mapping across the tiny LLC to force
	// capacity evictions.
	for i := 0; i < 256; i++ {
		h.Store(0, uint64(i*64))
	}
	if llcWBs == 0 {
		t.Fatal("no LLC write-backs despite capacity pressure")
	}
	if dram.Stats().Get("writebacks") == 0 {
		t.Fatal("DRAM saw no write-backs")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInclusionUnderPressure(t *testing.T) {
	cfg := smallCfg()
	h := newH(cfg, Callbacks{})
	// Mixed loads/stores from all cores over a window larger than the LLC.
	r := sim.NewRNG(11)
	for i := 0; i < 5000; i++ {
		tid := r.Intn(cfg.Cores)
		addr := uint64(r.Intn(512) * 64)
		if r.Intn(2) == 0 {
			h.Load(tid, addr)
		} else {
			h.Store(tid, addr)
		}
		if i%500 == 0 {
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDataFreshness uses OID tags as a data oracle: every store stamps the
// line with a global version; every load must then observe the most recent
// version stored to that address, no matter which caches the data traversed.
func TestDataFreshness(t *testing.T) {
	cfg := smallCfg()
	var version uint64
	latest := map[uint64]uint64{}
	var h *Hierarchy
	h = New(cfg, mem.NewDRAM(cfg), Callbacks{
		OnStore: func(tid, vd int, ln *cache.Line) uint64 {
			version++
			ln.OID = version
			ln.Data = version * 3
			latest[ln.Tag] = version
			return 0
		},
	})
	r := sim.NewRNG(99)
	for i := 0; i < 20000; i++ {
		tid := r.Intn(cfg.Cores)
		addr := uint64(r.Intn(256) * 64)
		if r.Intn(3) == 0 {
			h.Store(tid, addr)
		} else {
			h.Load(tid, addr)
			ln := h.L1(tid).Peek(addr)
			if ln == nil {
				t.Fatalf("iteration %d: loaded line %#x absent from L1", i, addr)
			}
			if want := latest[addr]; ln.OID != want {
				t.Fatalf("iteration %d: tid %d read version %d of %#x, want %d (stale data)",
					i, tid, ln.OID, addr, want)
			}
			if want := latest[addr] * 3; ln.Data != want {
				t.Fatalf("iteration %d: tid %d read payload %d of %#x, want %d (stale payload)",
					i, tid, ln.Data, addr, want)
			}
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyLines(t *testing.T) {
	cfg := smallCfg()
	h := newH(cfg, Callbacks{
		OnStore: func(tid, vd int, ln *cache.Line) uint64 { ln.OID = 5; return 0 },
	})
	h.Store(0, 0x40)
	h.Store(2, 0x80)
	dirty := h.DirtyLines(10)
	if len(dirty) != 2 {
		t.Fatalf("dirty lines = %d, want 2", len(dirty))
	}
	if got := h.DirtyLines(4); len(got) != 0 {
		t.Fatalf("maxOID filter failed: %d lines", len(got))
	}
}

func TestFlushVD(t *testing.T) {
	cfg := smallCfg()
	h := newH(cfg, Callbacks{})
	h.Store(0, 0x40)
	h.Store(1, 0x80)
	dirty := h.FlushVD(0)
	if len(dirty) != 2 {
		t.Fatalf("flush returned %d dirty lines, want 2", len(dirty))
	}
	if h.L1(0).CountValid() != 0 || h.L2(0).CountValid() != 0 {
		t.Fatal("VD0 not empty after flush")
	}
	// LLC retains the merged dirty data.
	if ln := h.LLCSlice(1).Peek(0x40); ln == nil || !ln.Dirty {
		// address 0x40 -> line 1 -> slice 1
		t.Fatal("flushed dirty line not merged into LLC")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBackLLCLine(t *testing.T) {
	cfg := smallCfg()
	dram := mem.NewDRAM(cfg)
	h := New(cfg, dram, Callbacks{})
	h.Store(0, 0x40)
	h.FlushVD(0) // dirty line now in LLC
	ln, ok := h.WriteBackLLCLine(0x40)
	if !ok || ln.Tag != 0x40 {
		t.Fatalf("WriteBackLLCLine = %+v, %v", ln, ok)
	}
	if dram.Stats().Get("writebacks") == 0 {
		t.Fatal("walk write-back did not reach DRAM")
	}
	if _, ok := h.WriteBackLLCLine(0x40); ok {
		t.Fatal("clean line written back twice")
	}
}

func TestReasonString(t *testing.T) {
	for r, want := range map[Reason]string{
		ReasonCapacity: "capacity", ReasonCoherence: "coherence",
		ReasonWalk: "walk", ReasonDrain: "drain",
	} {
		if r.String() != want {
			t.Fatalf("%d.String() = %q", r, r.String())
		}
	}
	if Reason(9).String() != "reason9" {
		t.Fatal("unknown reason")
	}
}
