package tracefile

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/trace"
)

func testShape() Shape {
	return Shape{Cores: 16, CoresPerVD: 4, LineSize: 64, Seed: 42}
}

// record writes accs to path on fsys and returns the writer's counters.
func record(t *testing.T, fsys fault.FS, path string, shape Shape, accs []trace.Access) *Writer {
	t.Helper()
	w, err := Create(fsys, path, shape)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i, a := range accs {
		if err := w.Append(a); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return w
}

// readAll decodes path until EOF or error, returning the salvaged records
// and the terminal error (nil for a clean EOF).
func readAll(t *testing.T, fsys fault.FS, path string) ([]trace.Access, *Reader, error) {
	t.Helper()
	r, err := OpenReader(fsys, path)
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Fatalf("reader close: %v", err)
		}
	}()
	var got []trace.Access
	for {
		a, err := r.Next()
		if err == io.EOF {
			return got, r, nil
		}
		if err != nil {
			return got, r, err
		}
		got = append(got, a)
	}
}

// lcg is a tiny deterministic generator for synthetic streams.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g)
}

func synthetic(n int, seed uint64) []trace.Access {
	g := lcg(seed)
	accs := make([]trace.Access, n)
	for i := range accs {
		r := g.next()
		a := trace.Access{
			Tid:   int(r % 16),
			Addr:  (1 << 30) + (r>>8)%(1<<20)*64,
			Write: r&1 == 0,
		}
		if a.Write {
			a.Data = g.next()
		}
		accs[i] = a
	}
	return accs
}

func TestRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		accs []trace.Access
	}{
		{"empty", nil},
		{"single-read", []trace.Access{{Tid: 3, Addr: 0x40000040}}},
		{"single-write", []trace.Access{{Tid: 15, Addr: 0x40000040, Write: true, Data: 7}}},
		{"max-uint64-addr", []trace.Access{
			{Tid: 0, Addr: math.MaxUint64, Write: true, Data: math.MaxUint64},
			{Tid: 1, Addr: 0}, // delta wraps all the way back down
			{Tid: 2, Addr: math.MaxUint64},
		}},
		{"backwards-deltas", []trace.Access{
			{Tid: 0, Addr: 1 << 40},
			{Tid: 0, Addr: 64},
			{Tid: 0, Addr: 1 << 50, Write: true, Data: 100},
			{Tid: 0, Addr: 0, Write: true, Data: 1}, // token also runs backwards
		}},
		{"wrapped-16bit-epochs", func() []trace.Access {
			// Payload tokens cycling through a 16-bit wrap, the shape a
			// wrapped WireEpoch stream produces: forward deltas up to
			// 65535, then a large backwards jump.
			var accs []trace.Access
			for i := 0; i < 200_000; i += 1017 {
				accs = append(accs, trace.Access{
					Tid: i % 16, Addr: uint64(i) * 64, Write: true, Data: uint64(i % 65536),
				})
			}
			return accs
		}()},
		{"zero-addr-run", []trace.Access{
			{Tid: 0, Addr: 0}, {Tid: 0, Addr: 0}, {Tid: 0, Addr: 0, Write: true, Data: 0},
		}},
		{"multi-chunk", synthetic(60_000, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fsys := fault.NewMemFS()
			shape := testShape()
			shape.Extra = []uint64{11, 22, 33}
			w := record(t, fsys, "t.trc", shape, tc.accs)
			if w.Records() != uint64(len(tc.accs)) {
				t.Fatalf("writer records = %d, want %d", w.Records(), len(tc.accs))
			}
			got, r, err := readAll(t, fsys, "t.trc")
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(got) != len(tc.accs) {
				t.Fatalf("decoded %d records, want %d", len(got), len(tc.accs))
			}
			for i := range tc.accs {
				if got[i] != tc.accs[i] {
					t.Fatalf("record %d = %+v, want %+v", i, got[i], tc.accs[i])
				}
			}
			if r.Records() != uint64(len(tc.accs)) || r.Chunks() != w.Chunks() {
				t.Fatalf("reader counters records=%d chunks=%d, writer records=%d chunks=%d",
					r.Records(), r.Chunks(), w.Records(), w.Chunks())
			}
			rs := r.Shape()
			if rs.Cores != shape.Cores || rs.CoresPerVD != shape.CoresPerVD ||
				rs.LineSize != shape.LineSize || rs.Seed != shape.Seed {
				t.Fatalf("shape round-trip: %+v vs %+v", rs, shape)
			}
			if len(rs.Extra) != 3 || rs.Extra[0] != 11 || rs.Extra[2] != 33 {
				t.Fatalf("extra round-trip: %v", rs.Extra)
			}
		})
	}
}

func TestMultiChunkStaysFlat(t *testing.T) {
	// A 60K-record trace spans several chunks; the reader buffer must stay
	// chunk-sized, not trace-sized.
	fsys := fault.NewMemFS()
	w := record(t, fsys, "t.trc", testShape(), synthetic(60_000, 2))
	if w.Chunks() < 3 {
		t.Fatalf("expected a multi-chunk trace, got %d chunks", w.Chunks())
	}
	r, err := OpenReader(fsys, "t.trc")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if cap(r.recs) > maxChunkRecs {
			t.Fatalf("reader buffer grew to %d records", cap(r.recs))
		}
	}
}

func TestShapeValidation(t *testing.T) {
	fsys := fault.NewMemFS()
	bad := []Shape{
		{Cores: 0},
		{Cores: -1},
		{Cores: 4, LineSize: -64},
		{Cores: 4, Extra: make([]uint64, MaxExtraWords+1)},
	}
	for i, s := range bad {
		if _, err := Create(fsys, "bad.trc", s); err == nil {
			t.Fatalf("shape %d accepted: %+v", i, s)
		}
	}
}

func TestWriterRejectsBadTidAndLateAppend(t *testing.T) {
	fsys := fault.NewMemFS()
	w, err := Create(fsys, "t.trc", testShape())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(trace.Access{Tid: 16}); err == nil {
		t.Fatal("out-of-range tid accepted")
	}
	if err := w.Append(trace.Access{Tid: -1}); err == nil {
		t.Fatal("negative tid accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(trace.Access{Tid: 0}); err == nil {
		t.Fatal("append after Close accepted")
	}
}

// rewrite replaces path's content on fsys.
func rewrite(t *testing.T, fsys fault.FS, path string, data []byte) {
	t.Helper()
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// chunkOffsets parses a well-formed trace and returns the byte offset of
// each chunk frame (including the end marker).
func chunkOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	nextra := binary.LittleEndian.Uint64(data[6*8:])
	off := (headerFixedWords + int(nextra) + 1) * 8
	var offs []int
	for off < len(data) {
		offs = append(offs, off)
		hdr := binary.LittleEndian.Uint64(data[off:])
		plen := int(hdr & 0xffffffff)
		if plen == 0 {
			break
		}
		off += 8 + plen + 8
	}
	return offs
}

// TestCorruptionMatrix mirrors TestTornFileCorruption's style: each row
// damages a well-formed multi-chunk trace in one specific way and asserts
// the typed error plus the salvage behaviour.
func TestCorruptionMatrix(t *testing.T) {
	accs := synthetic(60_000, 3)
	base := fault.NewMemFS()
	record(t, base, "t.trc", testShape(), accs)
	pristine, err := base.ReadFile("t.trc")
	if err != nil {
		t.Fatal(err)
	}
	offs := chunkOffsets(t, pristine)
	if len(offs) < 4 {
		t.Fatalf("need >= 3 chunks + end marker, got %d frames", len(offs))
	}

	// perChunk[i] is the record count of chunk i, from its header word.
	perChunk := make([]uint64, len(offs)-1)
	for i := range perChunk {
		perChunk[i] = binary.LittleEndian.Uint64(pristine[offs[i]:]) >> 32
	}
	sumThrough := func(n int) uint64 {
		var s uint64
		for i := 0; i < n; i++ {
			s += perChunk[i]
		}
		return s
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		want    error // typed error class
		openErr bool  // error surfaces at OpenReader, not Next
		salvage uint64
	}{
		{
			name:    "truncated-header",
			mutate:  func(b []byte) []byte { return b[:20] },
			want:    ErrTruncated,
			openErr: true,
		},
		{
			name: "bad-magic",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[0:], 0xdeadbeef)
				return b
			},
			want:    ErrFormat,
			openErr: true,
		},
		{
			name: "bad-version",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[8:], 99)
				return b
			},
			want:    ErrFormat,
			openErr: true,
		},
		{
			name: "flipped-header-byte",
			mutate: func(b []byte) []byte {
				b[3*8] ^= 0x40 // coresPerVD word
				return b
			},
			want:    ErrChecksum,
			openErr: true,
		},
		{
			name:    "torn-final-chunk",
			mutate:  func(b []byte) []byte { return b[:offs[len(offs)-2]+13] },
			want:    ErrTruncated,
			salvage: sumThrough(len(perChunk) - 1),
		},
		{
			name:    "missing-end-marker",
			mutate:  func(b []byte) []byte { return b[:offs[len(offs)-1]] },
			want:    ErrTruncated,
			salvage: uint64(len(accs)),
		},
		{
			name: "flipped-payload-byte-chunk1",
			mutate: func(b []byte) []byte {
				b[offs[1]+17] ^= 0x01
				return b
			},
			want:    ErrChecksum,
			salvage: sumThrough(1),
		},
		{
			name: "flipped-checksum-byte-chunk2",
			mutate: func(b []byte) []byte {
				hdr := binary.LittleEndian.Uint64(b[offs[2]:])
				plen := int(hdr & 0xffffffff)
				b[offs[2]+8+plen] ^= 0x80
				return b
			},
			want:    ErrChecksum,
			salvage: sumThrough(2),
		},
		{
			name: "oversized-chunk-claim",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[offs[0]:], uint64(maxChunkBytes+1))
				return b
			},
			want:    ErrFormat,
			salvage: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fsys := fault.NewMemFS()
			rewrite(t, fsys, "t.trc", tc.mutate(append([]byte(nil), pristine...)))
			got, r, err := readAll(t, fsys, "t.trc")
			if err == nil {
				t.Fatal("damage decoded cleanly")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want class %v", err, tc.want)
			}
			if tc.openErr {
				if r != nil {
					t.Fatal("damaged header produced a reader")
				}
				return
			}
			if uint64(len(got)) != tc.salvage {
				t.Fatalf("salvaged %d records, want %d", len(got), tc.salvage)
			}
			if r.Records() != tc.salvage {
				t.Fatalf("Records() = %d, want salvage %d", r.Records(), tc.salvage)
			}
			// Salvaged prefix is intact, not garbage.
			for i := range got {
				if got[i] != accs[i] {
					t.Fatalf("salvaged record %d = %+v, want %+v", i, got[i], accs[i])
				}
			}
			// The terminal error is latched: Next keeps returning it.
			r2, err2 := OpenReader(fsys, "t.trc")
			if err2 != nil {
				t.Fatal(err2)
			}
			defer func() {
				if err := r2.Close(); err != nil {
					t.Fatal(err)
				}
			}()
			var firstErr error
			for {
				_, err := r2.Next()
				if err != nil {
					firstErr = err
					break
				}
			}
			if _, err := r2.Next(); !errors.Is(err, tc.want) || err.Error() != firstErr.Error() {
				t.Fatalf("error not latched: %v then %v", firstErr, err)
			}
		})
	}
}

// TestDecodeBoundsCheckedAgainstForgedPayload: a chunk whose checksum is
// valid (re-stamped by the attacker/test) but whose payload lies about its
// record count yields ErrFormat, never a panic.
func TestDecodeBoundsCheckedAgainstForgedPayload(t *testing.T) {
	shape := testShape()
	forge := func(payload []byte, nrecs uint64) []byte {
		hdrWords := shape.headerWords()
		var b []byte
		for _, w := range hdrWords {
			b = binary.LittleEndian.AppendUint64(b, w)
		}
		hdr := uint64(len(payload)) | nrecs<<32
		b = binary.LittleEndian.AppendUint64(b, hdr)
		b = append(b, payload...)
		b = binary.LittleEndian.AppendUint64(b, chunkCheck(hdr, payload))
		// Clean end marker after the forged chunk.
		b = binary.LittleEndian.AppendUint64(b, 0)
		return binary.LittleEndian.AppendUint64(b, chunkCheck(0, nil))
	}
	cases := []struct {
		name    string
		payload []byte
		nrecs   uint64
	}{
		{"count-exceeds-payload", []byte{0x00, 0x00}, 5},             // one read record, claims five
		{"payload-exceeds-count", []byte{0x00, 0x00, 0x00, 0x00}, 1}, // two records, claims one
		{"truncated-varint", []byte{0x80, 0x80, 0x80}, 1},            // head varint never terminates
		{"tid-out-of-range", []byte{0xff, 0x01, 0x00}, 1},            // tid 255 on a 16-core shape
		{"varint-overflow", append([]byte{0x00}, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}...), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fsys := fault.NewMemFS()
			rewrite(t, fsys, "t.trc", forge(tc.payload, tc.nrecs))
			_, _, err := readAll(t, fsys, "t.trc")
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("error = %v, want ErrFormat", err)
			}
		})
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag round-trip %d -> %d", v, got)
		}
	}
}
