package tracefile

import (
	"errors"
	"io"
	"testing"

	"repro/internal/fault"
	"repro/internal/trace"
)

// FuzzTraceFileRoundTrip drives the codec from both ends. The fuzzer's
// bytes are used twice per input:
//
//  1. as a synthetic access stream (decoded field-by-field from the raw
//     bytes) that must round-trip encode → decode exactly, and
//  2. as a raw candidate trace file fed straight to the Reader, which must
//     either decode cleanly or return one of the typed errors — never
//     panic, never loop, never hand back records from a damaged chunk.
func FuzzTraceFileRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02})
	// A well-formed one-record trace, so the corpus starts with valid
	// structure for the mutator to damage.
	{
		fsys := fault.NewMemFS()
		w, err := Create(fsys, "seed.trc", Shape{Cores: 4, CoresPerVD: 2, LineSize: 64, Seed: 9})
		if err != nil {
			f.Fatal(err)
		}
		if err := w.Append(trace.Access{Tid: 1, Addr: 1 << 30, Write: true, Data: 5}); err != nil {
			f.Fatal(err)
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		data, err := fsys.ReadFile("seed.trc")
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		// Leg 1: raw bytes as an access stream, round-tripped.
		var accs []trace.Access
		for b := raw; len(b) >= 10; b = b[10:] {
			a := trace.Access{
				Tid:   int(b[0]) % 8,
				Addr:  uint64(b[1]) | uint64(b[2])<<8 | uint64(b[3])<<24 | uint64(b[4])<<56,
				Write: b[5]&1 == 0,
			}
			if a.Write {
				a.Data = uint64(b[6]) | uint64(b[7])<<16 | uint64(b[8])<<40 | uint64(b[9])<<60
			}
			accs = append(accs, a)
		}
		fsys := fault.NewMemFS()
		shape := Shape{Cores: 8, CoresPerVD: 2, LineSize: 64, Seed: 7}
		w, err := Create(fsys, "t.trc", shape)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range accs {
			if err := w.Append(a); err != nil {
				t.Fatalf("append %+v: %v", a, err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(fsys, "t.trc")
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		for i, want := range accs {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("record %d = %+v, want %+v", i, got, want)
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("trailing state = %v, want io.EOF", err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}

		// Leg 2: raw bytes as a candidate trace file.
		cand := fault.NewMemFS()
		cf, err := cand.Create("raw.trc")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cf.Write(raw); err != nil {
			t.Fatal(err)
		}
		if err := cf.Close(); err != nil {
			t.Fatal(err)
		}
		rr, err := OpenReader(cand, "raw.trc")
		if err != nil {
			requireTyped(t, err)
			return
		}
		for n := 0; ; n++ {
			if n > len(raw)+1 {
				t.Fatalf("decoder yielded more records than input bytes (%d)", n)
			}
			_, err := rr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				requireTyped(t, err)
				break
			}
		}
		if err := rr.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// requireTyped asserts a decode failure is one of the three typed error
// classes — the contract callers branch on.
func requireTyped(t *testing.T, err error) {
	t.Helper()
	if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("untyped decode error: %v", err)
	}
}
