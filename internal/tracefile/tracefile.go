// Package tracefile implements the TRC1 on-disk trace format: a
// delta/varint-encoded, chunked, checksummed binary encoding of a memory
// access stream, with a streaming Writer and Reader that hold one chunk in
// memory at any trace length. Captured workloads become first-class,
// compact, reproducible inputs to the replay machinery (the driver's
// replay source, diffcheck's file-backed regimes, nvcheck -record/-replay)
// instead of living in RAM as []Op slices that cap trace length.
//
// # Layout
//
// A trace file is a header followed by a sequence of chunks, terminated by
// an end-marker chunk. All fixed-width fields are little-endian uint64
// words; the checksum discipline is internal/mem's (RecordCheck for the
// header, PairMix folding for chunk payloads), so a trace record validates
// with the same primitives as the durable plane's on-disk records.
//
//	header:  [magic, version, cores, coresPerVD, lineSize, seed,
//	          nextra, extra[0..nextra), check]
//	chunk:   [len|recs] payload[len] [check]
//	end:     [0] [check]
//
// The chunk header word packs the payload byte length (low 32 bits) and
// the record count (high 32 bits); the trailing check word folds the
// header word and the payload. Damage — a torn tail, a flipped byte —
// fails the chunk it lands in, and the Reader salvages every record up to
// the last intact chunk boundary before returning a typed error.
//
// # Records
//
// Each record encodes one access as two to three varints:
//
//	head:  uvarint(tid<<1 | write)
//	addr:  zigzag-varint of (addr - prevAddr), wrapping mod 2^64
//	token: zigzag-varint of (data - prevToken), stores only
//
// Delta state (prevAddr, prevToken) resets at every chunk boundary so each
// chunk decodes independently of damaged predecessors. Sequential and
// strided streams encode in two to four bytes per access; the deltas wrap
// modulo 2^64, so max-uint64 addresses and backwards jumps cost at most a
// full ten-byte varint, never an error.
package tracefile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/trace"
)

const (
	// Magic identifies a TRC1 trace file ("NVO-TRC1").
	Magic uint64 = 0x4e564f2d54524331
	// Version is the format version this package reads and writes.
	Version = 1

	// MaxExtraWords bounds the caller-defined header extension.
	MaxExtraWords = 64

	// chunkTarget is the payload size a Writer flushes at.
	chunkTarget = 64 << 10
	// maxChunkBytes is the largest chunk payload a Reader accepts; a
	// header word claiming more is corruption, not data.
	maxChunkBytes = 1 << 20
	// maxChunkRecs likewise bounds the per-chunk record count.
	maxChunkRecs = 1 << 20

	// headerFixedWords counts the header words before the extra section.
	headerFixedWords = 7

	// chunkCheckSeed seeds the per-chunk payload digest ("TRCCHUNK").
	chunkCheckSeed uint64 = 0x5452434348554e4b
)

// Typed decode errors. Every Reader failure wraps exactly one of these, so
// callers can distinguish structural garbage from damage to a valid file.
var (
	// ErrFormat marks structural corruption: a bad magic or version, an
	// out-of-range length or record field, varint overflow, or payload
	// bytes left over after the declared record count.
	ErrFormat = errors.New("tracefile: malformed trace")
	// ErrChecksum marks a header or chunk whose checksum does not match
	// its content.
	ErrChecksum = errors.New("tracefile: checksum mismatch")
	// ErrTruncated marks a file that ends mid-header, mid-chunk, or
	// before the end marker (a torn tail after a crash or partial copy).
	ErrTruncated = errors.New("tracefile: truncated trace")
)

// Shape is the machine shape a trace was captured on, stored in the header
// so a replay can rebuild the same configuration. Extra carries up to
// MaxExtraWords caller-defined words (diffcheck packs its full trace
// parameters there), checksummed with the rest of the header and
// round-tripped verbatim.
type Shape struct {
	Cores      int
	CoresPerVD int
	LineSize   int
	Seed       int64
	Extra      []uint64
}

// validate rejects shapes the format cannot represent.
func (s Shape) validate() error {
	switch {
	case s.Cores <= 0:
		return fmt.Errorf("tracefile: shape needs at least one core, got %d", s.Cores)
	case s.CoresPerVD < 0 || s.LineSize < 0:
		return fmt.Errorf("tracefile: negative shape field")
	case len(s.Extra) > MaxExtraWords:
		return fmt.Errorf("tracefile: %d extra header words exceed the %d-word bound", len(s.Extra), MaxExtraWords)
	}
	return nil
}

// headerWords renders the checksummed header record.
func (s Shape) headerWords() []uint64 {
	words := make([]uint64, 0, headerFixedWords+len(s.Extra)+1)
	words = append(words, Magic, Version, uint64(s.Cores), uint64(s.CoresPerVD),
		uint64(s.LineSize), uint64(s.Seed), uint64(len(s.Extra)))
	words = append(words, s.Extra...)
	return append(words, mem.RecordCheck(words))
}

// chunkCheck folds a chunk's header word and payload bytes into the
// trailing check word. The payload is folded eight bytes at a time with
// the final partial word zero-padded; the header word carries the true
// byte length, so padding cannot alias a different payload.
func chunkCheck(hdr uint64, payload []byte) uint64 {
	c := mem.PairMix(chunkCheckSeed, hdr)
	for len(payload) >= 8 {
		c = mem.PairMix(c, binary.LittleEndian.Uint64(payload))
		payload = payload[8:]
	}
	if len(payload) > 0 {
		var w uint64
		for i, b := range payload {
			w |= uint64(b) << (8 * i)
		}
		c = mem.PairMix(c, w)
	}
	return c
}

// zigzag maps a signed delta onto an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer streams accesses into a trace file, holding one chunk of payload
// in memory regardless of trace length. The first I/O error latches: every
// later Append and the final Close return it.
type Writer struct {
	f     fault.File
	shape Shape

	payload []byte // current chunk's encoded records
	frame   []byte // reusable on-disk frame (header + payload + check)
	recs    uint64 // records in the current chunk
	prev    uint64 // previous address (delta base, reset per chunk)
	prevTok uint64 // previous store token (delta base, reset per chunk)

	records uint64
	chunks  int
	bytes   int64

	err    error
	closed bool
}

// Create opens path for writing on fsys and writes the TRC1 header.
func Create(fsys fault.FS, path string, shape Shape) (*Writer, error) {
	if err := shape.validate(); err != nil {
		return nil, err
	}
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("tracefile: create: %w", err)
	}
	shape.Extra = append([]uint64(nil), shape.Extra...) // detach from the caller
	w := &Writer{f: f, shape: shape, payload: make([]byte, 0, chunkTarget+32)}
	hdr := shape.headerWords()
	buf := make([]byte, 8*len(hdr))
	for i, v := range hdr {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	if _, err := f.Write(buf); err != nil {
		w.err = fmt.Errorf("tracefile: header: %w", err)
		if cerr := f.Close(); cerr != nil {
			// The write error is the one worth reporting.
			_ = cerr
		}
		return nil, w.err
	}
	w.bytes = int64(len(buf))
	return w, nil
}

// putUvarint appends v to the current chunk payload.
func (w *Writer) putUvarint(v uint64) {
	for v >= 0x80 {
		w.payload = append(w.payload, byte(v)|0x80)
		v >>= 7
	}
	w.payload = append(w.payload, byte(v))
}

// Append encodes one access. It implements trace.Sink, so a *Writer plugs
// directly into the driver's record hook.
func (w *Writer) Append(a trace.Access) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("tracefile: append after Close")
	}
	if a.Tid < 0 || a.Tid >= w.shape.Cores {
		return fmt.Errorf("tracefile: tid %d out of range for %d cores", a.Tid, w.shape.Cores)
	}
	head := uint64(a.Tid) << 1
	if a.Write {
		head |= 1
	}
	w.putUvarint(head)
	w.putUvarint(zigzag(int64(a.Addr - w.prev)))
	w.prev = a.Addr
	if a.Write {
		w.putUvarint(zigzag(int64(a.Data - w.prevTok)))
		w.prevTok = a.Data
	}
	w.recs++
	w.records++
	if len(w.payload) >= chunkTarget {
		w.flushChunk()
	}
	return w.err
}

// flushChunk writes the buffered payload as one framed chunk and resets
// the delta state so the next chunk decodes independently.
func (w *Writer) flushChunk() {
	if w.err != nil {
		return
	}
	hdr := uint64(len(w.payload)) | w.recs<<32
	w.frame = w.frame[:0]
	w.frame = binary.LittleEndian.AppendUint64(w.frame, hdr)
	w.frame = append(w.frame, w.payload...)
	w.frame = binary.LittleEndian.AppendUint64(w.frame, chunkCheck(hdr, w.payload))
	if _, err := w.f.Write(w.frame); err != nil {
		w.err = fmt.Errorf("tracefile: chunk write: %w", err)
		return
	}
	w.bytes += int64(len(w.frame))
	w.chunks++
	w.payload = w.payload[:0]
	w.recs = 0
	w.prev = 0
	w.prevTok = 0
}

// Close flushes the final partial chunk, writes the end marker, syncs and
// closes the file. A trace without its end marker reads back as truncated,
// so Close is what makes a recording complete.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.recs > 0 {
		w.flushChunk()
	}
	if w.err == nil {
		var end [16]byte
		binary.LittleEndian.PutUint64(end[8:], chunkCheck(0, nil))
		if _, err := w.f.Write(end[:]); err != nil {
			w.err = fmt.Errorf("tracefile: end marker: %w", err)
		} else {
			w.bytes += 16
		}
	}
	if w.err == nil {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("tracefile: sync: %w", err)
		}
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = fmt.Errorf("tracefile: close: %w", err)
	}
	return w.err
}

// Records returns the number of accesses appended so far.
func (w *Writer) Records() uint64 { return w.records }

// Chunks returns the number of chunks flushed so far.
func (w *Writer) Chunks() int { return w.chunks }

// Bytes returns the bytes written so far, including the header.
func (w *Writer) Bytes() int64 { return w.bytes }

// Reader streams accesses back out of a trace file, decoding one chunk at
// a time into a reused buffer. Next yields every record of every intact
// chunk in order; at a clean end marker it returns io.EOF, and at the
// first damaged chunk it returns a typed error (ErrTruncated, ErrChecksum
// or ErrFormat) — everything yielded before that is the salvage, exactly
// the records up to the last intact chunk boundary.
type Reader struct {
	f     fault.File
	shape Shape

	recs  []trace.Access // decoded current chunk
	pos   int
	frame []byte // reusable chunk read buffer

	records uint64
	chunks  int

	done bool
	err  error // latched terminal state: io.EOF or a typed damage error
}

// OpenReader opens a trace file and validates its header.
func OpenReader(fsys fault.FS, path string) (*Reader, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracefile: open: %w", err)
	}
	r := &Reader{f: f}
	if err := r.readHeader(); err != nil {
		if cerr := f.Close(); cerr != nil {
			// The header error is the one worth reporting.
			_ = cerr
		}
		return nil, err
	}
	return r, nil
}

// readWords reads n little-endian words, distinguishing truncation from
// I/O failure.
func (r *Reader) readWords(dst []uint64, what string) error {
	buf := make([]byte, 8*len(dst))
	if _, err := io.ReadFull(r.f, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: short %s", ErrTruncated, what)
		}
		return fmt.Errorf("tracefile: reading %s: %w", what, err)
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return nil
}

// readHeader decodes and validates the TRC1 header.
func (r *Reader) readHeader() error {
	fixed := make([]uint64, headerFixedWords)
	if err := r.readWords(fixed, "header"); err != nil {
		return err
	}
	if fixed[0] != Magic {
		return fmt.Errorf("%w: bad magic %#x", ErrFormat, fixed[0])
	}
	if fixed[1] != Version {
		return fmt.Errorf("%w: unsupported version %d", ErrFormat, fixed[1])
	}
	nextra := fixed[6]
	if nextra > MaxExtraWords {
		return fmt.Errorf("%w: %d extra header words exceed the %d-word bound", ErrFormat, nextra, MaxExtraWords)
	}
	rest := make([]uint64, nextra+1)
	if err := r.readWords(rest, "header"); err != nil {
		return err
	}
	all := append(fixed, rest...)
	if all[len(all)-1] != mem.RecordCheck(all[:len(all)-1]) {
		return fmt.Errorf("%w: header", ErrChecksum)
	}
	cores := int(fixed[2])
	if cores <= 0 {
		return fmt.Errorf("%w: header claims %d cores", ErrFormat, cores)
	}
	r.shape = Shape{
		Cores:      cores,
		CoresPerVD: int(fixed[3]),
		LineSize:   int(fixed[4]),
		Seed:       int64(fixed[5]),
		Extra:      append([]uint64(nil), rest[:nextra]...),
	}
	return nil
}

// Shape returns the machine shape recorded in the header.
func (r *Reader) Shape() Shape { return r.shape }

// Next returns the next recorded access. It implements trace.Source: a
// clean end of trace is io.EOF; damage is a typed non-EOF error, returned
// again on every subsequent call. The in-chunk path is branch-free enough
// to inline; chunk refills go through nextSlow.
func (r *Reader) Next() (trace.Access, error) {
	if r.pos < len(r.recs) {
		a := r.recs[r.pos]
		r.pos++
		return a, nil
	}
	return r.nextSlow()
}

// nextSlow refills from the next chunk (or latches the terminal state).
func (r *Reader) nextSlow() (trace.Access, error) {
	for r.pos >= len(r.recs) {
		if r.done {
			return trace.Access{}, r.err
		}
		r.loadChunk()
	}
	a := r.recs[r.pos]
	r.pos++
	return a, nil
}

// fail latches a terminal decode state.
func (r *Reader) fail(err error) {
	r.done = true
	r.err = err
	r.recs = r.recs[:0]
	r.pos = 0
}

// loadChunk reads and decodes the next chunk into r.recs, or latches the
// terminal state (clean EOF or typed damage).
func (r *Reader) loadChunk() {
	var hdrBuf [8]byte
	n, err := io.ReadFull(r.f, hdrBuf[:])
	if err != nil {
		if (err == io.EOF || err == io.ErrUnexpectedEOF) && n >= 0 {
			r.fail(fmt.Errorf("%w: trace ends without its end marker after %d records", ErrTruncated, r.records))
			return
		}
		r.fail(fmt.Errorf("tracefile: reading chunk header: %w", err))
		return
	}
	hdr := binary.LittleEndian.Uint64(hdrBuf[:])
	plen := hdr & 0xffffffff
	nrecs := hdr >> 32
	if plen > maxChunkBytes || nrecs > maxChunkRecs {
		r.fail(fmt.Errorf("%w: chunk claims %d payload bytes, %d records", ErrFormat, plen, nrecs))
		return
	}
	if (plen == 0) != (nrecs == 0) {
		r.fail(fmt.Errorf("%w: chunk claims %d payload bytes for %d records", ErrFormat, plen, nrecs))
		return
	}
	need := int(plen) + 8
	if cap(r.frame) < need {
		r.frame = make([]byte, need)
	}
	r.frame = r.frame[:need]
	if _, err := io.ReadFull(r.f, r.frame); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			r.fail(fmt.Errorf("%w: torn chunk after %d records", ErrTruncated, r.records))
			return
		}
		r.fail(fmt.Errorf("tracefile: reading chunk: %w", err))
		return
	}
	payload := r.frame[:plen]
	check := binary.LittleEndian.Uint64(r.frame[plen:])
	if check != chunkCheck(hdr, payload) {
		r.fail(fmt.Errorf("%w: chunk %d", ErrChecksum, r.chunks))
		return
	}
	if plen == 0 {
		// The end marker: the trace is complete.
		r.done = true
		r.err = io.EOF
		return
	}
	if err := r.decodeChunk(payload, int(nrecs)); err != nil {
		r.fail(err)
		return
	}
	r.records += nrecs
	r.chunks++
}

// decodeChunk decodes a validated payload into r.recs. The checksum has
// already passed, but the decoder still bounds-checks every field so a
// colliding or hand-built payload yields ErrFormat, never a panic.
func (r *Reader) decodeChunk(p []byte, nrecs int) error {
	if cap(r.recs) < nrecs {
		r.recs = make([]trace.Access, nrecs)
	}
	r.recs = r.recs[:nrecs]
	r.pos = 0
	var prev, prevTok uint64
	cores := uint64(r.shape.Cores)
	i := 0
	for k := 0; k < nrecs; k++ {
		// Fast path: a one-byte head plus addr/token deltas that fit five
		// encoded bytes, with enough slack that no per-byte bounds check
		// is needed. Record decode is the replay plane's innermost loop;
		// the hand-inlined varints here (the compiler does not inline
		// uvarint) are what hold decode above 50M accesses/sec. Any miss
		// rewinds to the record start and takes the checked path.
		if len(p)-i >= 11 && p[i] < 0x80 {
			head := uint64(p[i])
			tid := head >> 1
			if tid >= cores {
				return fmt.Errorf("%w: record %d tid %d out of range for %d cores", ErrFormat, k, tid, r.shape.Cores)
			}
			var delta, tok uint64
			j := i + 1
			if b0 := uint64(p[j]); b0 < 0x80 {
				delta, j = b0, j+1
			} else if b1 := uint64(p[j+1]); b1 < 0x80 {
				delta, j = b0&0x7f|b1<<7, j+2
			} else if b2 := uint64(p[j+2]); b2 < 0x80 {
				delta, j = b0&0x7f|(b1&0x7f)<<7|b2<<14, j+3
			} else if b3 := uint64(p[j+3]); b3 < 0x80 {
				delta, j = b0&0x7f|(b1&0x7f)<<7|(b2&0x7f)<<14|b3<<21, j+4
			} else if b4 := uint64(p[j+4]); b4 < 0x80 {
				delta, j = b0&0x7f|(b1&0x7f)<<7|(b2&0x7f)<<14|(b3&0x7f)<<21|b4<<28, j+5
			} else {
				goto slow
			}
			if head&1 == 0 {
				prev += uint64(unzigzag(delta))
				r.recs[k] = trace.Access{Tid: int(tid), Addr: prev}
				i = j
				continue
			}
			if b0 := uint64(p[j]); b0 < 0x80 {
				tok, j = b0, j+1
			} else if b1 := uint64(p[j+1]); b1 < 0x80 {
				tok, j = b0&0x7f|b1<<7, j+2
			} else if b2 := uint64(p[j+2]); b2 < 0x80 {
				tok, j = b0&0x7f|(b1&0x7f)<<7|b2<<14, j+3
			} else if b3 := uint64(p[j+3]); b3 < 0x80 {
				tok, j = b0&0x7f|(b1&0x7f)<<7|(b2&0x7f)<<14|b3<<21, j+4
			} else if b4 := uint64(p[j+4]); b4 < 0x80 {
				tok, j = b0&0x7f|(b1&0x7f)<<7|(b2&0x7f)<<14|(b3&0x7f)<<21|b4<<28, j+5
			} else {
				goto slow
			}
			prev += uint64(unzigzag(delta))
			prevTok += uint64(unzigzag(tok))
			r.recs[k] = trace.Access{Tid: int(tid), Addr: prev, Write: true, Data: prevTok}
			i = j
			continue
		}
	slow:
		head, n := uvarint(p, i)
		if n <= 0 {
			return fmt.Errorf("%w: record %d head varint", ErrFormat, k)
		}
		i += n
		tid := head >> 1
		if tid >= cores {
			return fmt.Errorf("%w: record %d tid %d out of range for %d cores", ErrFormat, k, tid, r.shape.Cores)
		}
		delta, n := uvarint(p, i)
		if n <= 0 {
			return fmt.Errorf("%w: record %d addr varint", ErrFormat, k)
		}
		i += n
		prev += uint64(unzigzag(delta))
		a := trace.Access{Tid: int(tid), Addr: prev, Write: head&1 != 0}
		if a.Write {
			tok, n := uvarint(p, i)
			if n <= 0 {
				return fmt.Errorf("%w: record %d token varint", ErrFormat, k)
			}
			i += n
			prevTok += uint64(unzigzag(tok))
			a.Data = prevTok
		}
		r.recs[k] = a
	}
	if i != len(p) {
		return fmt.Errorf("%w: %d payload bytes beyond the declared records", ErrFormat, len(p)-i)
	}
	return nil
}

// uvarint decodes one LEB128 varint from p at offset i, returning the
// value and the bytes consumed; n <= 0 marks truncation or overflow,
// mirroring binary.Uvarint but without ever reading past the slice. It
// takes an offset instead of a subslice so the per-field call sites do no
// slicing, and the first five encoded sizes are unrolled — a line-aligned
// delta stream almost never exceeds them, and the unrolled loads are what
// keep decode in the tens of millions of accesses per second.
func uvarint(p []byte, i int) (uint64, int) {
	if len(p)-i >= 5 {
		b0 := uint64(p[i])
		if b0 < 0x80 {
			return b0, 1
		}
		b1 := uint64(p[i+1])
		if b1 < 0x80 {
			return b0&0x7f | b1<<7, 2
		}
		b2 := uint64(p[i+2])
		if b2 < 0x80 {
			return b0&0x7f | (b1&0x7f)<<7 | b2<<14, 3
		}
		b3 := uint64(p[i+3])
		if b3 < 0x80 {
			return b0&0x7f | (b1&0x7f)<<7 | (b2&0x7f)<<14 | b3<<21, 4
		}
		b4 := uint64(p[i+4])
		if b4 < 0x80 {
			return b0&0x7f | (b1&0x7f)<<7 | (b2&0x7f)<<14 | (b3&0x7f)<<21 | b4<<28, 5
		}
	}
	return uvarintSlow(p[i:])
}

// uvarintSlow handles the short and six-plus-byte encodings.
func uvarintSlow(p []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, b := range p {
		if i == 10 {
			return 0, -1 // longer than any uint64 encoding
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, -1 // overflows 64 bits
			}
			return v | uint64(b)<<shift, i + 1
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0 // truncated
}

// Records returns the accesses decoded so far — after a damage error, the
// salvage count (everything up to the last intact chunk boundary).
func (r *Reader) Records() uint64 { return r.records }

// Chunks returns the intact chunks decoded so far.
func (r *Reader) Chunks() int { return r.chunks }

// Close closes the underlying file.
func (r *Reader) Close() error {
	if err := r.f.Close(); err != nil {
		return fmt.Errorf("tracefile: close: %w", err)
	}
	return nil
}
