package omc

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Group is a set of OMCs, each owning an address partition (paper §V-F:
// "multiple memory controllers may co-exist, each responsible for serving
// requests on an address partition"). OMC 0 is the master: tag-walker
// min-ver reports are fan-out to every member (the master aggregation
// messages are counted), and the globally recoverable epoch is the minimum
// across members.
type Group struct {
	cfg  *sim.Config
	omcs []*OMC
	stat *stats.Set

	// Min-ver ledger (batched epoch propagation). Every member used to keep
	// its own per-VD min-ver array and recompute the O(VDs) minimum on every
	// report, making each tag-walk report O(members x VDs). The group now
	// aggregates reports once — tracking the minimum incrementally via
	// (curMin, atMin) — and fans out to members only when the recoverable
	// floor actually rises, which is exactly when they have merge work to do.
	// Members compute identical floors from identical report streams, so the
	// ledger is a pure batching of the old broadcast: same advances, same
	// merge order, same persisted records.
	minVer   []uint64
	curMin   uint64 // min(minVer)
	atMin    int    // how many VDs sit at curMin
	recFloor uint64 // last floor fanned out to members
}

// NewGroup builds n OMCs sharing one NVM device.
func NewGroup(cfg *sim.Config, nvm *mem.NVM, n int, opts ...Option) *Group {
	if n <= 0 {
		n = 1
	}
	g := &Group{
		cfg:    cfg,
		stat:   stats.NewSet("omcgroup"),
		minVer: make([]uint64, cfg.VDs()),
		atMin:  cfg.VDs(),
	}
	for i := 0; i < n; i++ {
		o := New(cfg, nvm, i, opts...)
		// The genesis record lets recovery tell a young run (nothing
		// committed yet) apart from a destroyed commit log, and tells it
		// how many partitions to scan.
		o.writeGenesis(n)
		g.omcs = append(g.omcs, o)
	}
	return g
}

// Route returns the OMC owning addr's partition (4 KB interleaving).
func (g *Group) Route(addr uint64) *OMC {
	return g.omcs[int((addr>>12)%uint64(len(g.omcs)))]
}

// Size returns the number of OMCs.
func (g *Group) Size() int { return len(g.omcs) }

// OMC returns member i.
func (g *Group) OMC(i int) *OMC { return g.omcs[i] }

// ReceiveVersion routes a version to its partition's OMC.
func (g *Group) ReceiveVersion(v Version, now uint64) (stall uint64) {
	return g.Route(v.Addr).ReceiveVersion(v, now)
}

// ReportMinVer records a VD's min-ver in the group ledger. The modeled
// hardware still broadcasts the report to every member (the message and
// per-member report counters are charged exactly as before); the simulator
// only touches members when the recoverable floor rises.
func (g *Group) ReportMinVer(vd int, ver uint64, now uint64) {
	g.stat.Add("minver_messages", int64(len(g.omcs)))
	g.stat.Add("minver_reports", int64(len(g.omcs)))
	old := g.minVer[vd]
	if ver < old {
		// A VD's view may regress transiently if an older version surfaced;
		// take the conservative minimum (no advance attempt, as before).
		g.minVer[vd] = ver
		g.ledgerLower(old, ver)
		return
	}
	g.minVer[vd] = ver
	g.ledgerRaise(old, ver)
	er := g.curMin
	if er > 0 {
		er--
	}
	if er <= g.recFloor {
		return
	}
	for _, o := range g.omcs {
		o.advanceRecEpochTo(er, now)
	}
	g.recFloor = er
}

// LowerMinVer lowers a VD's standing min-ver on every member (a dirty old
// version migrated into the VD via cache-to-cache transfer).
func (g *Group) LowerMinVer(vd int, ver uint64, now uint64) {
	g.stat.Add("minver_lower_messages", int64(len(g.omcs)))
	if ver < g.minVer[vd] {
		old := g.minVer[vd]
		g.minVer[vd] = ver
		g.ledgerLower(old, ver)
		g.stat.Add("minver_lowered", int64(len(g.omcs)))
	}
}

// ledgerLower folds a vd's min-ver drop old -> ver into (curMin, atMin).
func (g *Group) ledgerLower(old, ver uint64) {
	switch {
	case ver < g.curMin:
		g.curMin, g.atMin = ver, 1
	case ver == g.curMin:
		// old > ver == curMin, so this VD was not counted at the min yet.
		g.atMin++
	}
}

// ledgerRaise folds a vd's min-ver rise old -> ver into (curMin, atMin); a
// full rescan happens only when the last VD leaves the minimum — which is
// when the floor moves and members do merge work anyway.
func (g *Group) ledgerRaise(old, ver uint64) {
	if old == ver || old != g.curMin {
		return
	}
	g.atMin--
	if g.atMin == 0 {
		g.curMin = g.minVer[0]
		g.atMin = 1
		for _, v := range g.minVer[1:] {
			if v < g.curMin {
				g.curMin, g.atMin = v, 1
			} else if v == g.curMin {
				g.atMin++
			}
		}
	}
}

// DumpContext persists a VD's context through the master OMC.
func (g *Group) DumpContext(vd int, epoch, now uint64) uint64 {
	return g.omcs[0].DumpContext(vd, epoch, now)
}

// RecEpoch returns the globally recoverable epoch: the minimum across
// members (all must have persisted an epoch for it to be recoverable).
func (g *Group) RecEpoch() uint64 {
	min := g.omcs[0].RecEpoch()
	for _, o := range g.omcs[1:] {
		if e := o.RecEpoch(); e < min {
			min = e
		}
	}
	return min
}

// Seal finalises all members at end of run. The recoverable epoch is
// raised to the group-wide maximum epoch: a partition that received no
// version from the final epochs has nothing left to persist for them, so
// after its own seal those epochs are recoverable from its perspective
// too. Sealing members independently would leave Group.RecEpoch (the
// minimum across members) below the last epoch whenever the address
// interleaving starved one partition, and replication targets would stop
// short of the final state.
func (g *Group) Seal(now uint64) {
	var max uint64
	for _, o := range g.omcs {
		if o.maxEpoch > max {
			max = o.maxEpoch
		}
	}
	for _, o := range g.omcs {
		o.SealTo(now, max)
	}
}

// RecoverImage materialises the consistent image across all partitions.
func (g *Group) RecoverImage() (map[uint64]uint64, uint64) {
	img := make(map[uint64]uint64)
	var lat uint64
	for _, o := range g.omcs {
		part, l := o.RecoverImage()
		//nvlint:allow maprange map-to-map merge: partitions are address-disjoint, order-independent
		for a, d := range part {
			img[a] = d
		}
		lat += l
	}
	return img, lat
}

// TimeTravelRead routes a fall-through snapshot read to addr's partition.
func (g *Group) TimeTravelRead(addr, epoch uint64) (uint64, uint64, bool) {
	return g.Route(addr).TimeTravelRead(addr, epoch)
}

// MasterRead reads addr from the consistent image.
func (g *Group) MasterRead(addr uint64) (uint64, bool) {
	return g.Route(addr).MasterRead(addr)
}

// EpochDelta merges the per-partition deltas of epoch e.
func (g *Group) EpochDelta(e uint64) map[uint64]uint64 {
	delta := make(map[uint64]uint64)
	for _, o := range g.omcs {
		//nvlint:allow maprange map-to-map merge: partitions are address-disjoint, order-independent
		for a, d := range o.EpochDelta(e) {
			delta[a] = d
		}
	}
	return delta
}

// Epochs returns the union of accessible epoch ids across partitions,
// deduplicated and sorted ascending so exports and replication walk the
// epochs in a byte-stable order.
func (g *Group) Epochs() []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, o := range g.omcs {
		for _, e := range o.Epochs() {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MasterBytes returns the total persistent Master Table footprint (Fig 13).
func (g *Group) MasterBytes() int64 {
	var total int64
	for _, o := range g.omcs {
		total += o.master.Bytes()
	}
	return total
}

// MasterEntries returns total mapped lines across partitions.
func (g *Group) MasterEntries() int {
	var total int
	for _, o := range g.omcs {
		total += o.master.Entries()
	}
	return total
}

// WorkingSetBytes is the write working set: bytes of data mapped by the
// Master Tables (paper Fig 13's denominator).
func (g *Group) WorkingSetBytes() int64 {
	return int64(g.MasterEntries()) * int64(g.cfg.LineSize)
}

// LeafOccupancy returns the mean master-table leaf occupancy across members.
func (g *Group) LeafOccupancy() float64 {
	var entries, slots int
	for _, o := range g.omcs {
		_, leaves := o.master.Nodes()
		entries += o.master.Entries()
		slots += leaves * leafFanout
	}
	if slots == 0 {
		return 0
	}
	return float64(entries) / float64(slots)
}

// PoolPages returns total allocated pool pages.
func (g *Group) PoolPages() int {
	var n int
	for _, o := range g.omcs {
		n += o.pool.Pages()
	}
	return n
}

// BufferHitRate aggregates buffer hits across members (0 when disabled).
func (g *Group) BufferHitRate() float64 {
	var hits, total uint64
	for _, o := range g.omcs {
		if o.buf == nil {
			continue
		}
		hits += o.buf.Hits
		total += o.buf.Hits + o.buf.Misses
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Stats merges all member counter sets plus the group's own.
func (g *Group) Stats() *stats.Set {
	merged := stats.NewSet("omcgroup")
	merged.Merge(g.stat)
	for _, o := range g.omcs {
		merged.Merge(o.stat)
	}
	return merged
}
