package omc

import (
	"repro/internal/cache"
	"repro/internal/sim"
)

// Version is one snapshot cache line arriving at the OMC from the CST
// frontend: the line's physical address, the epoch that produced it, and
// its payload token.
type Version struct {
	Addr  uint64
	Epoch uint64
	Data  uint64
}

// Buffer is the optional battery-backed write-back cache in front of the
// OMC (paper §IV-E, evaluated in Fig 16). It absorbs redundant write-backs
// of the same address within the same epoch; on power failure its contents
// would be flushed, so it is treated as persistent.
type Buffer struct {
	arr *cache.Cache

	Hits, Misses, Writebacks uint64
}

// NewBuffer builds a buffer with the given capacity in bytes, organised
// like the LLC (paper: "same configuration as the simulated LLC").
func NewBuffer(cfg *sim.Config, bytes int) *Buffer {
	if bytes <= 0 {
		bytes = cfg.LLCSize
	}
	return &Buffer{arr: cache.New("omcbuf", bytes, cfg.LLCWays, cfg.LineSize)}
}

// Absorb offers a version to the buffer. It returns the versions that must
// now be written to NVM: none when the write was absorbed (same address,
// same epoch), the displaced older version when the address re-arrives in a
// newer epoch (the old version belongs to a snapshot and must persist), or
// the evicted victim on a capacity miss.
func (b *Buffer) Absorb(v Version) (flush []Version) {
	if ln := b.arr.Lookup(v.Addr); ln != nil {
		if ln.OID == v.Epoch {
			// Redundant write-back within one epoch: absorbed entirely.
			b.Hits++
			ln.Data = v.Data
			return nil
		}
		// The buffered version closes an older snapshot: flush it and keep
		// the newer one.
		flush = append(flush, Version{Addr: ln.Tag, Epoch: ln.OID, Data: ln.Data})
		b.Writebacks++
		ln.OID = v.Epoch
		ln.Data = v.Data
		b.Hits++
		return flush
	}
	b.Misses++
	ln, victim, evicted := b.arr.Insert(v.Addr)
	if evicted {
		flush = append(flush, Version{Addr: victim.Tag, Epoch: victim.OID, Data: victim.Data})
		b.Writebacks++
	}
	ln.State = cache.Modified
	ln.Dirty = true
	ln.OID = v.Epoch
	ln.Data = v.Data
	return flush
}

// Flush drains every buffered version (power-down or end of run).
func (b *Buffer) Flush() []Version {
	var out []Version
	for _, ln := range b.arr.Flush() {
		out = append(out, Version{Addr: ln.Tag, Epoch: ln.OID, Data: ln.Data})
		b.Writebacks++
	}
	return out
}

// FlushBefore drains buffered versions older than epoch, letting the
// recoverable-epoch protocol make progress past buffered versions.
func (b *Buffer) FlushBefore(epoch uint64) []Version {
	var out []Version
	for _, ln := range b.arr.CollectValid() {
		if ln.OID < epoch {
			b.arr.Invalidate(ln.Tag)
			out = append(out, Version{Addr: ln.Tag, Epoch: ln.OID, Data: ln.Data})
			b.Writebacks++
		}
	}
	return out
}

// Occupancy returns the number of buffered versions.
func (b *Buffer) Occupancy() int { return b.arr.CountValid() }

// HitRate returns hits/(hits+misses), the Fig 16 statistic.
func (b *Buffer) HitRate() float64 {
	total := b.Hits + b.Misses
	if total == 0 {
		return 0
	}
	return float64(b.Hits) / float64(total)
}
