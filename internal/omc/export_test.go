package omc

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func exportGroup(t *testing.T) *Group {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	cfg.CoresPerVD = 2
	g := NewGroup(&cfg, mem.NewNVM(&cfg), 2, WithRetention())
	for e := uint64(1); e <= 3; e++ {
		for i := uint64(0); i < 10; i++ {
			g.ReceiveVersion(Version{Addr: i << 12, Epoch: e, Data: e*100 + i}, 0)
		}
	}
	g.Seal(0)
	return g
}

func TestExportImportRoundTrip(t *testing.T) {
	g := exportGroup(t)
	var buf bytes.Buffer
	if err := g.Export(&buf); err != nil {
		t.Fatal(err)
	}
	sf, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sf.RecEpoch != 3 {
		t.Fatalf("rec epoch = %d", sf.RecEpoch)
	}
	img, _ := g.RecoverImage()
	if len(sf.Master) != len(img) {
		t.Fatalf("master has %d lines, want %d", len(sf.Master), len(img))
	}
	for a, d := range img {
		if sf.Master[a] != d {
			t.Fatalf("master[%#x] = %d, want %d", a, sf.Master[a], d)
		}
	}
	if len(sf.Deltas) != 3 {
		t.Fatalf("deltas = %d", len(sf.Deltas))
	}
}

func TestSnapshotFileReadAt(t *testing.T) {
	g := exportGroup(t)
	var buf bytes.Buffer
	if err := g.Export(&buf); err != nil {
		t.Fatal(err)
	}
	sf, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	addr := uint64(2 << 12)
	// Fall-through matches the live group's time-travel semantics.
	for epoch := uint64(1); epoch <= 3; epoch++ {
		want, _, ok := g.TimeTravelRead(addr, epoch)
		got, gok := sf.ReadAt(addr, epoch)
		if ok != gok || got != want {
			t.Fatalf("epoch %d: archive %d,%v vs live %d,%v", epoch, got, gok, want, ok)
		}
	}
	if _, ok := sf.ReadAt(0xDEAD000, 3); ok {
		t.Fatal("phantom address resolved")
	}
	// Reads beyond the newest delta fall back to the master image.
	if d, ok := sf.ReadAt(addr, 99); !ok || d != 302 {
		t.Fatalf("future read = %d,%v", d, ok)
	}
}

func TestImportRejectsCorruptInput(t *testing.T) {
	if _, err := Import(strings.NewReader("notasnapshot")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Import(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	g := exportGroup(t)
	var buf bytes.Buffer
	if err := g.Export(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncated archive.
	if _, err := Import(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated archive accepted")
	}
}

func TestExportDeterministic(t *testing.T) {
	g := exportGroup(t)
	var a, b bytes.Buffer
	if err := g.Export(&a); err != nil {
		t.Fatal(err)
	}
	if err := g.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("export is not deterministic")
	}
}
