package omc

import (
	"flag"
	"testing"
)

// TestBenchmarkSmoke runs each OMC benchmark for one iteration so the
// regular test suite catches bit-rot in the benchmark code.
func TestBenchmarkSmoke(t *testing.T) {
	bt := flag.Lookup("test.benchtime")
	prev := bt.Value.String()
	if err := bt.Value.Set("1x"); err != nil {
		t.Fatal(err)
	}
	defer bt.Value.Set(prev)
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"RadixInsert", BenchmarkRadixInsert},
		{"RadixLookup", BenchmarkRadixLookup},
		{"ReceiveVersion", BenchmarkReceiveVersion},
		{"ReceiveVersionBuffered", BenchmarkReceiveVersionBuffered},
		{"Merge", BenchmarkMerge},
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench.name, func(t *testing.T) {
			failed := true
			r := testing.Benchmark(func(b *testing.B) {
				b.Cleanup(func() { failed = b.Failed() })
				bench.fn(b)
			})
			if failed || r.N < 1 {
				t.Fatalf("benchmark %s failed (N=%d)", bench.name, r.N)
			}
		})
	}
}
