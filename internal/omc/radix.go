// Package omc implements NVOverlay's Multi-snapshot NVM Mapping backend
// (paper §V): the Overlay Memory Controller with its per-epoch mapping
// tables, the persistent five-level Master Table, the NVM page buffer pool
// with bitmap allocation and version compaction, the distributed
// recoverable-epoch protocol, and the optional battery-backed OMC buffer.
package omc

import "fmt"

// Radix tree geometry: 48-bit physical addresses are mapped at cache-line
// granularity. The top four levels consume 9 bits each (bits 47..12, exactly
// like x86-64 page tables); the fifth (leaf) level is indexed by address
// bits 11..6, mapping the 64 cache lines of a 4 KB page (paper Fig 10).
const (
	innerFanout = 512
	leafFanout  = 64

	innerNodeBytes = innerFanout * 8
	leafNodeBytes  = leafFanout * 8
)

type leaf struct {
	present uint64 // bitmask over the 64 line slots
	vals    [leafFanout]uint64
	nvmAddr uint64 // metadata home of this node (for bank mapping)
}

type inner struct {
	children [innerFanout]interface{} // *inner or *leaf; nil when absent
	nvmAddr  uint64
}

// Table is a five-level radix tree mapping line addresses to NVM locations.
// Per-epoch tables are volatile (no persist hook); the Master Table is
// persistent and reports every 8-byte mutation through the persist hook so
// NVM metadata traffic can be accounted (paper Fig 12's metadata writes).
type Table struct {
	root    *inner
	entries int
	inners  int
	leaves  int

	// digest is the running XOR of PairMix(lineAddr, nvmAddr) over the
	// live mappings: an order-independent fingerprint of the table's
	// contents. Seal and commit records carry it so recovery can prove a
	// re-walked on-NVM table is exactly the table that was sealed.
	digest uint64

	// persist, when non-nil, is invoked for every 8-byte slot written on
	// NVM — new-node parent pointers and leaf value slots — with the slot
	// content so the device's content plane can track durability.
	persist func(nvmAddr uint64, size int, word uint64)
	// metaAlloc hands out NVM addresses for newly allocated nodes.
	metaAlloc func(size int) uint64
}

// NewEpochTable returns a volatile per-epoch mapping table.
func NewEpochTable() *Table {
	return &Table{}
}

// NewMasterTable returns a persistent table whose metadata writes are
// reported through persist; node homes are assigned by metaAlloc.
func NewMasterTable(metaAlloc func(size int) uint64, persist func(nvmAddr uint64, size int, word uint64)) *Table {
	return &Table{persist: persist, metaAlloc: metaAlloc}
}

func levelIndex(lineAddr uint64, level int) int {
	// level 0..3 are the 9-bit inner levels (bits 47..12), level 4 the leaf.
	switch {
	case level < 4:
		shift := uint(12 + 9*(3-level))
		return int((lineAddr >> shift) & (innerFanout - 1))
	default:
		return int((lineAddr >> 6) & (leafFanout - 1))
	}
}

func (t *Table) allocMeta(size int) uint64 {
	if t.metaAlloc == nil {
		return 0
	}
	return t.metaAlloc(size)
}

func (t *Table) persistWrite(addr uint64, size int, word uint64) {
	if t.persist != nil {
		t.persist(addr, size, word)
	}
}

// Insert maps lineAddr to nvmAddr, returning the previously mapped location
// if one existed. nvmAddr must be non-zero.
func (t *Table) Insert(lineAddr, nvmAddr uint64) (old uint64, replaced bool) {
	if nvmAddr == 0 {
		panic("omc: Insert with zero nvmAddr")
	}
	if t.root == nil {
		t.root = &inner{nvmAddr: t.allocMeta(innerNodeBytes)}
		t.inners++
	}
	n := t.root
	for level := 1; level <= 4; level++ {
		idx := levelIndex(lineAddr, level-1)
		child := n.children[idx]
		if child == nil {
			var created interface{}
			var childAddr uint64
			if level == 4 {
				lf := &leaf{nvmAddr: t.allocMeta(leafNodeBytes)}
				t.leaves++
				created = lf
				childAddr = lf.nvmAddr
			} else {
				in := &inner{nvmAddr: t.allocMeta(innerNodeBytes)}
				t.inners++
				created = in
				childAddr = in.nvmAddr
			}
			n.children[idx] = created
			// Writing the parent pointer is one 8-byte persistent write.
			t.persistWrite(n.nvmAddr+uint64(idx*8), 8, childAddr)
			child = created
		}
		if level == 4 {
			lf := child.(*leaf)
			slot := levelIndex(lineAddr, 4)
			bit := uint64(1) << slot
			if lf.present&bit != 0 {
				old, replaced = lf.vals[slot], true
				t.digest ^= PairMix(lineAddr, old)
			} else {
				t.entries++
			}
			lf.present |= bit
			lf.vals[slot] = nvmAddr
			t.digest ^= PairMix(lineAddr, nvmAddr)
			t.persistWrite(lf.nvmAddr+uint64(slot*8), 8, nvmAddr)
			return old, replaced
		}
		n = child.(*inner)
	}
	panic("unreachable")
}

// Lookup returns the NVM location mapped for lineAddr.
func (t *Table) Lookup(lineAddr uint64) (uint64, bool) {
	if t.root == nil {
		return 0, false
	}
	n := t.root
	for level := 1; level <= 4; level++ {
		child := n.children[levelIndex(lineAddr, level-1)]
		if child == nil {
			return 0, false
		}
		if level == 4 {
			lf := child.(*leaf)
			slot := levelIndex(lineAddr, 4)
			if lf.present&(uint64(1)<<slot) == 0 {
				return 0, false
			}
			return lf.vals[slot], true
		}
		n = child.(*inner)
	}
	return 0, false
}

// Delete unmaps lineAddr, returning the previous mapping. Empty nodes are
// not reclaimed (matching hardware tables, which are append-mostly).
func (t *Table) Delete(lineAddr uint64) (uint64, bool) {
	if t.root == nil {
		return 0, false
	}
	n := t.root
	for level := 1; level <= 4; level++ {
		child := n.children[levelIndex(lineAddr, level-1)]
		if child == nil {
			return 0, false
		}
		if level == 4 {
			lf := child.(*leaf)
			slot := levelIndex(lineAddr, 4)
			bit := uint64(1) << slot
			if lf.present&bit == 0 {
				return 0, false
			}
			old := lf.vals[slot]
			lf.present &^= bit
			lf.vals[slot] = 0
			t.entries--
			t.digest ^= PairMix(lineAddr, old)
			t.persistWrite(lf.nvmAddr+uint64(slot*8), 8, 0)
			return old, true
		}
		n = child.(*inner)
	}
	return 0, false
}

// Entries returns the number of live mappings.
func (t *Table) Entries() int { return t.entries }

// Digest returns the order-independent content fingerprint of the table:
// the XOR over live mappings of PairMix(lineAddr, nvmAddr).
func (t *Table) Digest() uint64 { return t.digest }

// RootAddr returns the NVM home of the root node (0 before any insert, or
// for volatile per-epoch tables with no metadata allocator).
func (t *Table) RootAddr() uint64 {
	if t.root == nil {
		return 0
	}
	return t.root.nvmAddr
}

// Bytes returns the storage footprint of the table's nodes. For per-epoch
// tables this is DRAM; for the Master Table it is persistent NVM metadata
// (the quantity plotted in paper Fig 13).
func (t *Table) Bytes() int64 {
	return int64(t.inners)*innerNodeBytes + int64(t.leaves)*leafNodeBytes
}

// Nodes returns (inner, leaf) node counts.
func (t *Table) Nodes() (int, int) { return t.inners, t.leaves }

// LeafOccupancy returns the mean fraction of used slots per leaf node, the
// statistic behind the paper's yada outlier discussion (§VII-C).
func (t *Table) LeafOccupancy() float64 {
	if t.leaves == 0 {
		return 0
	}
	return float64(t.entries) / float64(t.leaves*leafFanout)
}

// ForEach visits every mapping in ascending address order.
func (t *Table) ForEach(fn func(lineAddr, nvmAddr uint64)) {
	if t.root == nil {
		return
	}
	var walk func(n *inner, level int, prefix uint64)
	walk = func(n *inner, level int, prefix uint64) {
		for i := 0; i < innerFanout; i++ {
			child := n.children[i]
			if child == nil {
				continue
			}
			shift := uint(12 + 9*(3-level))
			p := prefix | uint64(i)<<shift
			if level == 3 {
				lf := child.(*leaf)
				for s := 0; s < leafFanout; s++ {
					if lf.present&(uint64(1)<<s) != 0 {
						fn(p|uint64(s)<<6, lf.vals[s])
					}
				}
			} else {
				walk(child.(*inner), level+1, p)
			}
		}
	}
	walk(t.root, 0, 0)
}

// String summarises the table.
func (t *Table) String() string {
	return fmt.Sprintf("table{entries=%d inners=%d leaves=%d bytes=%d}",
		t.entries, t.inners, t.leaves, t.Bytes())
}
