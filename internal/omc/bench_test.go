package omc

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func BenchmarkRadixInsert(b *testing.B) {
	t := NewEpochTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(uint64(i)*64, uint64(i)+1)
	}
}

func BenchmarkRadixLookup(b *testing.B) {
	t := NewEpochTable()
	for i := 0; i < 1<<16; i++ {
		t.Insert(uint64(i)*64, uint64(i)+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(uint64(i%(1<<16)) * 64)
	}
}

func BenchmarkReceiveVersion(b *testing.B) {
	cfg := sim.DefaultConfig()
	o := New(&cfg, mem.NewNVM(&cfg), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.ReceiveVersion(Version{Addr: uint64(i) * 64, Epoch: uint64(i/1000) + 1, Data: uint64(i)}, uint64(i))
	}
}

func BenchmarkReceiveVersionBuffered(b *testing.B) {
	cfg := sim.DefaultConfig()
	o := New(&cfg, mem.NewNVM(&cfg), 0, WithBuffer(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Hot-set rewrites: the buffer absorbs most of these.
		o.ReceiveVersion(Version{Addr: uint64(i%4096) * 64, Epoch: 1, Data: uint64(i)}, uint64(i))
	}
}

func BenchmarkMerge(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	cfg.CoresPerVD = 2
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		o := New(&cfg, mem.NewNVM(&cfg), 0)
		for j := 0; j < 4096; j++ {
			o.ReceiveVersion(Version{Addr: uint64(j) * 64, Epoch: 1, Data: uint64(j)}, 0)
		}
		b.StartTimer()
		o.ReportMinVer(0, 2, 0) // merges epoch 1 (4096 entries)
	}
}
