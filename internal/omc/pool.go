package omc

import (
	"fmt"
	"sort"
)

// NVM address-space layout for MNM structures. Each OMC owns a disjoint
// region keyed by its id, so multi-OMC configurations never collide.
const (
	// PoolBase is the base NVM address of overlay data pages.
	PoolBase uint64 = 1 << 40
	// MetaBase is the base NVM address of persistent mapping-table nodes.
	MetaBase uint64 = 1 << 41
	// ContextBase is where per-VD processor context dumps land.
	ContextBase uint64 = 1 << 42
	// RecEpochAddr is the well-known location of the persisted rec-epoch.
	RecEpochAddr uint64 = 1<<42 - 8
	// omcRegion is the per-OMC stride within each base region.
	omcRegion uint64 = 1 << 36
)

type pageInfo struct {
	epoch uint64 // epoch whose versions the page stores
	live  int    // live (mapped) versions on the page
}

type openPage struct {
	base uint64
	used int
}

// Pool is the OMC-managed NVM page buffer pool (paper §V-C). Pages are
// allocated from a bitmap; versions are appended to the open page of their
// epoch; a per-page live count supports garbage collection once the Master
// Table unmaps versions (§V-D).
type Pool struct {
	base         uint64
	pageSize     int
	lineSize     int
	linesPerPage int
	quota        int // pages; 0 = unbounded

	bitmap []uint64 // 1 bit per page index; set = allocated
	cursor int      // rotating scan start for find-first-zero
	pages  map[uint64]*pageInfo
	open   map[uint64]*openPage // epoch -> append cursor

	allocated int
	// Frees counts pages returned to the bitmap (GC effectiveness stat).
	Frees int
}

// NewPool creates a pool whose pages live at base. quota caps the page
// count (0 for unbounded); the OMC triggers version compaction when the
// pool exceeds it.
func NewPool(base uint64, pageSize, lineSize, quota int) *Pool {
	return &Pool{
		base:         base,
		pageSize:     pageSize,
		lineSize:     lineSize,
		linesPerPage: pageSize / lineSize,
		quota:        quota,
		pages:        make(map[uint64]*pageInfo),
		open:         make(map[uint64]*openPage),
	}
}

// allocPageIndex finds a free page index in the bitmap, growing it when the
// pool is unbounded or under quota.
func (p *Pool) allocPageIndex() int {
	nbits := len(p.bitmap) * 64
	for off := 0; off < nbits; off++ {
		i := (p.cursor + off) % nbits
		w, b := i/64, uint(i%64)
		if p.bitmap[w]&(1<<b) == 0 {
			p.bitmap[w] |= 1 << b
			p.cursor = i + 1
			return i
		}
	}
	// Grow the bitmap (doubling, starting at one word).
	grow := len(p.bitmap)
	if grow == 0 {
		grow = 1
	}
	p.bitmap = append(p.bitmap, make([]uint64, grow)...)
	i := nbits
	p.bitmap[i/64] |= 1 << uint(i%64)
	p.cursor = i + 1
	return i
}

// Alloc returns the NVM address of a fresh version slot for the given
// epoch. newPage reports whether a page had to be allocated.
func (p *Pool) Alloc(epoch uint64) (nvmAddr uint64, newPage bool) {
	op := p.open[epoch]
	if op == nil || op.used == p.linesPerPage {
		idx := p.allocPageIndex()
		base := p.base + uint64(idx)*uint64(p.pageSize)
		p.pages[base] = &pageInfo{epoch: epoch}
		op = &openPage{base: base}
		p.open[epoch] = op
		p.allocated++
		newPage = true
	}
	addr := op.base + uint64(op.used*p.lineSize)
	op.used++
	p.pages[op.base].live++
	return addr, newPage
}

// Release unmaps one version; when its page's live count reaches zero the
// page returns to the bitmap. Returns whether a page was freed.
func (p *Pool) Release(nvmAddr uint64) bool {
	base := nvmAddr &^ uint64(p.pageSize-1)
	info := p.pages[base]
	if info == nil {
		panic(fmt.Sprintf("omc: Release of unallocated address %#x", nvmAddr))
	}
	info.live--
	if info.live > 0 {
		return false
	}
	// Keep the epoch's open page allocated even if momentarily empty: its
	// append cursor is still active.
	if op := p.open[info.epoch]; op != nil && op.base == base && op.used < p.linesPerPage {
		return false
	}
	delete(p.pages, base)
	idx := int((base - p.base) / uint64(p.pageSize))
	p.bitmap[idx/64] &^= 1 << uint(idx%64)
	p.allocated--
	p.Frees++
	return true
}

// CloseEpoch retires the epoch's open page cursor (no more appends), letting
// a fully dead page be reclaimed.
func (p *Pool) CloseEpoch(epoch uint64) {
	op := p.open[epoch]
	if op == nil {
		return
	}
	delete(p.open, epoch)
	if info := p.pages[op.base]; info != nil && info.live == 0 {
		delete(p.pages, op.base)
		idx := int((op.base - p.base) / uint64(p.pageSize))
		p.bitmap[idx/64] &^= 1 << uint(idx%64)
		p.allocated--
		p.Frees++
	}
}

// Pages returns the number of allocated pages.
func (p *Pool) Pages() int { return p.allocated }

// Bytes returns the allocated NVM storage.
func (p *Pool) Bytes() int64 { return int64(p.allocated) * int64(p.pageSize) }

// OverQuota reports whether the pool exceeds its configured quota.
func (p *Pool) OverQuota() bool { return p.quota > 0 && p.allocated > p.quota }

// OldestEpochWithPages returns the smallest epoch that still owns allocated
// pages, for the compaction policy ("start from the oldest epoch still
// having versions mapped", §V-D).
func (p *Pool) OldestEpochWithPages() (uint64, bool) {
	var oldest uint64
	found := false
	//nvlint:allow maprange commutative min-selection over page epochs
	for _, info := range p.pages {
		if !found || info.epoch < oldest {
			oldest = info.epoch
			found = true
		}
	}
	return oldest, found
}

// PagesOfEpoch returns the bases of pages holding the given epoch's
// versions, sorted ascending so compaction visits pages deterministically.
func (p *Pool) PagesOfEpoch(epoch uint64) []uint64 {
	var out []uint64
	for base, info := range p.pages {
		if info.epoch == epoch {
			out = append(out, base)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EpochOf returns the epoch owning the page containing nvmAddr.
func (p *Pool) EpochOf(nvmAddr uint64) (uint64, bool) {
	info := p.pages[nvmAddr&^uint64(p.pageSize-1)]
	if info == nil {
		return 0, false
	}
	return info.epoch, true
}
