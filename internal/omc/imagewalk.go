package omc

import (
	"sort"

	"repro/internal/mem"
)

// WalkImageTable re-walks a mapping table (master or sealed per-epoch)
// from the durable NVM image alone, with no access to volatile state: the
// root comes from a seal/commit record, child pointers are the persisted
// 8-byte node words. It returns the reconstructed lineAddr->poolAddr
// mapping and its content digest (the same XOR-of-PairMix fingerprint the
// live Table maintains), so the caller can prove the walked table is
// exactly the one that was recorded.
//
// ok is false only on structural damage — a node word pointing outside
// OMC id's metadata region, or a leaf slot outside its pool region. Words
// that are simply absent read as empty slots; the digest/entry-count
// comparison against the record is what catches those.
func WalkImageTable(img *mem.Image, id int, rootAddr uint64) (entries map[uint64]uint64, digest uint64, ok bool) {
	entries = make(map[uint64]uint64)
	if rootAddr == 0 {
		return entries, 0, true // empty table: nothing was ever inserted
	}
	metaLo, metaHi := MetaRegion(id)
	poolLo, poolHi := PoolRegion(id)
	if rootAddr < metaLo || rootAddr >= metaHi {
		return nil, 0, false
	}
	var walk func(nodeAddr uint64, level int, prefix uint64) bool
	walk = func(nodeAddr uint64, level int, prefix uint64) bool {
		for i := 0; i < innerFanout; i++ {
			w, present := img.Word(nodeAddr + uint64(i*8))
			if !present || w == 0 {
				continue
			}
			shift := uint(12 + 9*(3-level))
			p := prefix | uint64(i)<<shift
			if level == 3 {
				// w is a leaf node home.
				if w < metaLo || w >= metaHi {
					return false
				}
				for s := 0; s < leafFanout; s++ {
					v, ok := img.Word(w + uint64(s*8))
					if !ok || v == 0 {
						continue
					}
					if v < poolLo || v >= poolHi {
						return false
					}
					line := p | uint64(s)<<6
					entries[line] = v
					digest ^= PairMix(line, v)
				}
			} else {
				if w < metaLo || w >= metaHi {
					return false
				}
				if !walk(w, level+1, p) {
					return false
				}
			}
		}
		return true
	}
	if !walk(rootAddr, 0, 0) {
		return nil, 0, false
	}
	return entries, digest, true
}

// SortedKeys returns the keys of a reconstructed mapping in ascending
// order, the iteration order recovery uses everywhere for determinism.
func SortedKeys(m map[uint64]uint64) []uint64 {
	out := make([]uint64, 0, len(m))
	//nvlint:allow maprange collect-then-sort
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
