package omc

import (
	"encoding/binary"
	"testing"
)

// FuzzRadixMapping differentially tests the five-level radix Table against
// a flat map. The fuzz input is decoded as a stream of (op, addr, val)
// records over a deliberately small address space (a few pages, so leaves
// and slots collide constantly); after every operation the table's return
// values must match the shadow's, and at the end the full iteration order
// and entry count must agree.
func FuzzRadixMapping(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 1, 2, 2, 1, 2})
	f.Add([]byte{0, 0, 1, 0, 64, 2, 1, 0, 0, 2, 64, 0, 0, 255, 3})
	f.Add([]byte{0, 10, 1, 0, 10, 2, 0, 10, 3, 1, 10, 0, 2, 10, 0, 2, 10, 0})
	f.Fuzz(func(t *testing.T, stream []byte) {
		tbl := NewEpochTable()
		shadow := make(map[uint64]uint64)
		for len(stream) >= 3 {
			op, a, v := stream[0], stream[1], stream[2]
			stream = stream[3:]
			// Address space: 512 line-aligned addresses across two 4 KB page
			// groups, plus a high-bit variant exercising upper radix levels.
			addr := uint64(a) * 64
			if a >= 128 {
				addr = uint64(a-128)*64 + 1<<33
			}
			val := uint64(v) + 1 // Insert panics on zero values
			switch op % 3 {
			case 0:
				old, replaced := tbl.Insert(addr, val)
				wantOld, wantReplaced := shadow[addr], false
				if _, ok := shadow[addr]; ok {
					wantReplaced = true
				}
				if replaced != wantReplaced || (replaced && old != wantOld) {
					t.Fatalf("Insert(%#x, %d) = (%d, %v), want (%d, %v)",
						addr, val, old, replaced, wantOld, wantReplaced)
				}
				shadow[addr] = val
			case 1:
				got, ok := tbl.Lookup(addr)
				want, wok := shadow[addr]
				if ok != wok || got != want {
					t.Fatalf("Lookup(%#x) = (%d, %v), want (%d, %v)", addr, got, ok, want, wok)
				}
			case 2:
				old, ok := tbl.Delete(addr)
				want, wok := shadow[addr]
				if ok != wok || old != want {
					t.Fatalf("Delete(%#x) = (%d, %v), want (%d, %v)", addr, old, ok, want, wok)
				}
				delete(shadow, addr)
			}
			if tbl.Entries() != len(shadow) {
				t.Fatalf("Entries() = %d, shadow has %d", tbl.Entries(), len(shadow))
			}
		}
		// Full iteration: ascending address order, exact content match.
		var prev uint64
		first := true
		seen := 0
		tbl.ForEach(func(lineAddr, nvmAddr uint64) {
			if !first && lineAddr <= prev {
				t.Fatalf("ForEach out of order: %#x after %#x", lineAddr, prev)
			}
			prev, first = lineAddr, false
			want, ok := shadow[lineAddr]
			if !ok || nvmAddr != want {
				t.Fatalf("ForEach yielded (%#x, %d), shadow has (%d, %v)", lineAddr, nvmAddr, want, ok)
			}
			seen++
		})
		if seen != len(shadow) {
			t.Fatalf("ForEach visited %d entries, shadow has %d", seen, len(shadow))
		}
	})
}

// FuzzRadixMappingWide widens the address decoding to 8-byte addresses
// within the table's 48-bit geometry, covering sparse upper-level paths
// the dense variant cannot reach.
func FuzzRadixMappingWide(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, stream []byte) {
		tbl := NewEpochTable()
		shadow := make(map[uint64]uint64)
		for len(stream) >= 9 {
			addr := binary.LittleEndian.Uint64(stream[:8]) & ((1 << 48) - 1) &^ 63
			val := uint64(stream[8]) + 1
			stream = stream[9:]
			tbl.Insert(addr, val)
			shadow[addr] = val
			got, ok := tbl.Lookup(addr)
			if !ok || got != val {
				t.Fatalf("Lookup(%#x) = (%d, %v) right after insert of %d", addr, got, ok, val)
			}
		}
		if tbl.Entries() != len(shadow) {
			t.Fatalf("Entries() = %d, shadow has %d", tbl.Entries(), len(shadow))
		}
	})
}
