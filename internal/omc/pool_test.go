package omc

import (
	"testing"
	"testing/quick"
)

func newPool(quota int) *Pool { return NewPool(PoolBase, 4096, 64, quota) }

func TestPoolAllocSequentialWithinPage(t *testing.T) {
	p := newPool(0)
	a1, new1 := p.Alloc(1)
	a2, new2 := p.Alloc(1)
	if !new1 || new2 {
		t.Fatalf("newPage flags = %v,%v", new1, new2)
	}
	if a2 != a1+64 {
		t.Fatalf("allocations not appended: %#x then %#x", a1, a2)
	}
	if p.Pages() != 1 {
		t.Fatalf("pages = %d", p.Pages())
	}
}

func TestPoolSeparateEpochsSeparatePages(t *testing.T) {
	p := newPool(0)
	a1, _ := p.Alloc(1)
	a2, _ := p.Alloc(2)
	if a1&^4095 == a2&^4095 {
		t.Fatal("distinct epochs share a page")
	}
	if p.Pages() != 2 {
		t.Fatalf("pages = %d", p.Pages())
	}
	if e, ok := p.EpochOf(a1); !ok || e != 1 {
		t.Fatalf("EpochOf = %d,%v", e, ok)
	}
	if e, ok := p.EpochOf(a2); !ok || e != 2 {
		t.Fatalf("EpochOf = %d,%v", e, ok)
	}
	if _, ok := p.EpochOf(PoolBase + 1<<30); ok {
		t.Fatal("EpochOf hit unallocated page")
	}
}

func TestPoolPageRollover(t *testing.T) {
	p := newPool(0)
	for i := 0; i < 64; i++ { // fill one page
		p.Alloc(1)
	}
	_, newPage := p.Alloc(1)
	if !newPage {
		t.Fatal("65th allocation did not open a new page")
	}
	if p.Pages() != 2 {
		t.Fatalf("pages = %d", p.Pages())
	}
}

func TestPoolReleaseAndReuse(t *testing.T) {
	p := newPool(0)
	var addrs []uint64
	for i := 0; i < 64; i++ {
		a, _ := p.Alloc(1)
		addrs = append(addrs, a)
	}
	// Page is full (cursor moved on after 64); next alloc opens page 2.
	p.Alloc(1)
	// Release all of page 1: it must be reclaimed.
	freed := false
	for _, a := range addrs {
		if p.Release(a) {
			freed = true
		}
	}
	if !freed {
		t.Fatal("fully dead page not reclaimed")
	}
	if p.Frees != 1 {
		t.Fatalf("frees = %d", p.Frees)
	}
	if p.Pages() != 1 {
		t.Fatalf("pages = %d", p.Pages())
	}
	// The freed page index is reused by a later allocation.
	before := p.Pages()
	for i := 0; i < 64; i++ {
		p.Alloc(2)
	}
	if p.Pages() > before+1 {
		t.Fatalf("freed page not reused: %d pages", p.Pages())
	}
}

func TestPoolOpenPageNotReclaimedWhileAppendable(t *testing.T) {
	p := newPool(0)
	a, _ := p.Alloc(1)
	if p.Release(a) {
		t.Fatal("open page with active cursor reclaimed")
	}
	if p.Pages() != 1 {
		t.Fatalf("pages = %d", p.Pages())
	}
	// Closing the epoch reclaims the now-dead page.
	p.CloseEpoch(1)
	if p.Pages() != 0 {
		t.Fatalf("pages after CloseEpoch = %d", p.Pages())
	}
}

func TestPoolCloseEpochKeepsLivePages(t *testing.T) {
	p := newPool(0)
	p.Alloc(1)
	p.CloseEpoch(1)
	if p.Pages() != 1 {
		t.Fatal("live page reclaimed by CloseEpoch")
	}
	p.CloseEpoch(99) // no-op for unknown epoch
}

func TestPoolQuota(t *testing.T) {
	p := newPool(2)
	p.Alloc(1)
	if p.OverQuota() {
		t.Fatal("under-quota pool reported over quota")
	}
	p.Alloc(2)
	p.Alloc(3)
	if !p.OverQuota() {
		t.Fatal("3 pages with quota 2 not over quota")
	}
	if newPool(0).OverQuota() {
		t.Fatal("unbounded pool reported over quota")
	}
}

func TestPoolOldestEpochAndPagesOf(t *testing.T) {
	p := newPool(0)
	if _, ok := p.OldestEpochWithPages(); ok {
		t.Fatal("empty pool reported an oldest epoch")
	}
	p.Alloc(5)
	p.Alloc(3)
	p.Alloc(9)
	if e, ok := p.OldestEpochWithPages(); !ok || e != 3 {
		t.Fatalf("oldest = %d,%v", e, ok)
	}
	if got := p.PagesOfEpoch(3); len(got) != 1 {
		t.Fatalf("pages of epoch 3 = %d", len(got))
	}
	if got := p.PagesOfEpoch(77); len(got) != 0 {
		t.Fatalf("pages of unknown epoch = %d", len(got))
	}
	if p.Bytes() != 3*4096 {
		t.Fatalf("bytes = %d", p.Bytes())
	}
}

func TestPoolReleaseUnallocatedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newPool(0).Release(PoolBase + 64)
}

// Property: allocations never overlap (every returned address is unique
// until released) and page accounting matches the bitmap.
func TestPoolNoOverlapProperty(t *testing.T) {
	f := func(epochs []uint8) bool {
		p := newPool(0)
		seen := map[uint64]bool{}
		live := map[uint64]bool{}
		for i, e := range epochs {
			addr, _ := p.Alloc(uint64(e%4) + 1)
			if live[addr] {
				return false
			}
			seen[addr] = true
			live[addr] = true
			// Release roughly every third allocation.
			if i%3 == 0 {
				p.Release(addr)
				delete(live, addr)
			}
		}
		// Bitmap population equals allocated page count.
		bits := 0
		for _, w := range p.bitmap {
			for ; w != 0; w &= w - 1 {
				bits++
			}
		}
		return bits == p.Pages()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
