package omc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Snapshot export/import: the paper's snapshots are random-accessible NVM
// images; for a software library the equivalent artifact is a portable
// binary file. Export serialises the consistent image of the recoverable
// epoch (and, with retention, every accessible epoch delta) in a compact
// little-endian format; Import reconstructs a read-only view for offline
// inspection — the "archive them for future accesses" path of §V-E.
//
// File layout (all little-endian):
//
//	magic    [8]byte  "NVOVRLY1"
//	recEpoch uint64
//	nEpochs  uint64
//	repeat nEpochs times:
//	    epoch    uint64
//	    nEntries uint64
//	    repeat nEntries times: addr uint64, data uint64
//
// Epoch 0 holds the master image; further epochs are retained deltas.

var exportMagic = [8]byte{'N', 'V', 'O', 'V', 'R', 'L', 'Y', '1'}

// Export writes the group's persistent snapshot state to w.
func (g *Group) Export(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(exportMagic[:]); err != nil {
		return err
	}
	write64 := func(v uint64) error { return binary.Write(bw, binary.LittleEndian, v) }

	if err := write64(g.RecEpoch()); err != nil {
		return err
	}

	// Epoch 0: the master image.
	img, _ := g.RecoverImage()
	epochs := g.Epochs()
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	if err := write64(uint64(len(epochs)) + 1); err != nil {
		return err
	}
	if err := writeDelta(bw, 0, img); err != nil {
		return err
	}
	for _, e := range epochs {
		if err := writeDelta(bw, e, g.EpochDelta(e)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeDelta(w io.Writer, epoch uint64, delta map[uint64]uint64) error {
	if err := binary.Write(w, binary.LittleEndian, epoch); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(delta))); err != nil {
		return err
	}
	addrs := make([]uint64, 0, len(delta))
	for a := range delta {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		if err := binary.Write(w, binary.LittleEndian, a); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, delta[a]); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotFile is a deserialised snapshot archive.
type SnapshotFile struct {
	RecEpoch uint64
	Master   map[uint64]uint64            // consistent image at RecEpoch
	Deltas   map[uint64]map[uint64]uint64 // per-epoch incremental changes
}

// Import parses a snapshot archive written by Export.
func Import(r io.Reader) (*SnapshotFile, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("omc: reading magic: %w", err)
	}
	if magic != exportMagic {
		return nil, fmt.Errorf("omc: bad magic %q", magic[:])
	}
	read64 := func() (uint64, error) {
		var v uint64
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	rec, err := read64()
	if err != nil {
		return nil, fmt.Errorf("omc: reading rec-epoch: %w", err)
	}
	nEpochs, err := read64()
	if err != nil {
		return nil, fmt.Errorf("omc: reading epoch count: %w", err)
	}
	sf := &SnapshotFile{RecEpoch: rec, Deltas: make(map[uint64]map[uint64]uint64)}
	for i := uint64(0); i < nEpochs; i++ {
		epoch, err := read64()
		if err != nil {
			return nil, fmt.Errorf("omc: reading epoch header %d: %w", i, err)
		}
		n, err := read64()
		if err != nil {
			return nil, fmt.Errorf("omc: reading entry count of epoch %d: %w", epoch, err)
		}
		delta := make(map[uint64]uint64, n)
		for j := uint64(0); j < n; j++ {
			addr, err := read64()
			if err != nil {
				return nil, fmt.Errorf("omc: reading entry %d of epoch %d: %w", j, epoch, err)
			}
			data, err := read64()
			if err != nil {
				return nil, fmt.Errorf("omc: reading entry %d of epoch %d: %w", j, epoch, err)
			}
			delta[addr] = data
		}
		if epoch == 0 {
			sf.Master = delta
		} else {
			sf.Deltas[epoch] = delta
		}
	}
	if sf.Master == nil {
		return nil, fmt.Errorf("omc: archive missing the master image")
	}
	return sf, nil
}

// ReadAt returns the value of addr as of the given epoch using fall-through
// semantics over the archived deltas, falling back to the master image.
func (sf *SnapshotFile) ReadAt(addr, epoch uint64) (uint64, bool) {
	var best uint64
	found := false
	var bestEpoch uint64
	//nvlint:allow maprange commutative max-selection: the largest qualifying epoch wins regardless of visit order
	for e, delta := range sf.Deltas {
		if e > epoch || (found && e <= bestEpoch) {
			continue
		}
		if d, ok := delta[addr]; ok {
			best, bestEpoch, found = d, e, true
		}
	}
	if found {
		return best, true
	}
	// The master holds the image of RecEpoch; it answers queries at or
	// beyond it for addresses no retained delta covers.
	if epoch >= sf.RecEpoch {
		d, ok := sf.Master[addr]
		return d, ok
	}
	return 0, false
}
