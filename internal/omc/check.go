package omc

import (
	"repro/internal/mem"
	"repro/internal/obs"
)

// Durable-record layout. Beyond the pool/meta regions, each OMC owns two
// append-only record logs keyed by its id:
//
//   - the commit log at CommitBase: sequence slot 0 holds the genesis
//     record written at group construction ([GenesisMagic, nOMCs, chk]);
//     every rec-epoch advance, compaction and seal then appends a commit
//     record [CommitMagic, recEpoch, masterEntries, sealCount, masterRoot,
//     masterDigest, chk]. The newest valid commit record is recovery's
//     root of trust: it pins the claimed recoverable epoch and the exact
//     shape (entry count + digest) the persistent Master Table must have.
//
//   - the seal log at SealBase: one record per merged epoch table, in
//     merge (= ascending epoch) order: [SealMagic, epoch, tableRoot,
//     entries, digest, chk]. Because the log is append-only and epochs
//     merge in order, its longest valid prefix defines the horizon of
//     epochs recovery can still reconstruct exactly when the Master Table
//     itself is damaged.
//
// Records are one 64-byte slot each so a record never straddles banks, and
// every record ends in a RecordCheck checksum over its payload words.
const (
	// CommitBase is the base NVM address of per-OMC commit-record logs.
	CommitBase uint64 = 1 << 43
	// SealBase is the base NVM address of per-OMC sealed-epoch record logs.
	SealBase uint64 = 1 << 44

	// RecSlotBytes is the address stride between log records.
	RecSlotBytes = 64

	// GenesisMagic marks the group-construction record at commit slot 0.
	GenesisMagic uint64 = 0x4e564f2d47454e31 // "NVO-GEN1"
	// CommitMagic marks a rec-epoch commit record.
	CommitMagic uint64 = 0x4e564f2d434d5431 // "NVO-CMT1"
	// SealMagic marks a sealed-epoch record.
	SealMagic uint64 = 0x4e564f2d53454c31 // "NVO-SEL1"

	// GenesisWords, CommitWords and SealWords are the record sizes in
	// 8-byte words, checksum included.
	GenesisWords = 3
	CommitWords  = 7
	SealWords    = 6
)

// RegionStride is the per-OMC address stride within each base region,
// exported for recovery's partition scan.
const RegionStride = omcRegion

// MetaRegion returns the [lo, hi) bounds of OMC id's mapping-table node
// region; recovery uses it to sanity-check walked child pointers.
func MetaRegion(id int) (lo, hi uint64) {
	lo = MetaBase + uint64(id)*omcRegion
	return lo, lo + omcRegion
}

// PoolRegion returns the [lo, hi) bounds of OMC id's version-pool region.
func PoolRegion(id int) (lo, hi uint64) {
	lo = PoolBase + uint64(id)*omcRegion
	return lo, lo + omcRegion
}

// GenesisAddr returns the NVM address of OMC id's genesis record.
func GenesisAddr(id int) uint64 { return CommitBase + uint64(id)*omcRegion }

// CommitRecAddr returns the NVM address of OMC id's commit record seq
// (seq >= 1; slot 0 is the genesis record).
func CommitRecAddr(id, seq int) uint64 {
	return CommitBase + uint64(id)*omcRegion + uint64(seq)*RecSlotBytes
}

// SealRecAddr returns the NVM address of OMC id's seal record seq.
func SealRecAddr(id, seq int) uint64 {
	return SealBase + uint64(id)*omcRegion + uint64(seq)*RecSlotBytes
}

// PairMix combines two words into one avalanche-mixed digest word. It is
// the unit of both record checksums and table digests. The primitive lives
// in internal/mem (alongside the file-backed durable plane, which shares
// the encoding for its on-disk records); this wrapper keeps omc call sites
// unchanged.
func PairMix(a, b uint64) uint64 { return mem.PairMix(a, b) }

// LineCheck is the per-payload-line checksum. Binding the line address and
// writing epoch (not just the data) means a stale record left at a reused
// pool address, or a record persisted by a different epoch than the
// mapping claims, fails validation instead of aliasing.
func LineCheck(lineAddr, epoch, data uint64) uint64 {
	return PairMix(PairMix(lineAddr, epoch), data)
}

// RecordCheck folds a record's payload words into its trailing checksum.
func RecordCheck(words []uint64) uint64 { return mem.RecordCheck(words) }

// ValidRecord reports whether a full record slot (checksum in the last
// word) is internally consistent and carries the expected magic.
func ValidRecord(words []uint64, magic uint64) bool { return mem.ValidRecord(words, magic) }

// writeGenesis persists the group-construction record: without it recovery
// cannot distinguish "young run, nothing committed yet" from "commit log
// destroyed", so NewGroup writes one per member before any traffic.
func (o *OMC) writeGenesis(groupSize int) {
	words := []uint64{GenesisMagic, uint64(groupSize)}
	words = append(words, RecordCheck(words))
	o.now += o.nvm.Persist(mem.WMeta, GenesisAddr(o.id), len(words)*8, words, o.now)
	o.stat.Inc("genesis_records")
}

// writeCommitRecord appends a commit record pinning the current rec-epoch
// and the Master Table's expected shape.
func (o *OMC) writeCommitRecord(now uint64) {
	words := []uint64{
		CommitMagic,
		o.recEpoch,
		uint64(o.master.Entries()),
		uint64(o.sealSeq),
		o.master.RootAddr(),
		o.master.Digest(),
	}
	words = append(words, RecordCheck(words))
	o.now += o.nvm.Persist(mem.WMeta, CommitRecAddr(o.id, o.commitSeq), len(words)*8, words, now)
	o.bus.Emit(obs.KindOMCCommit, now, o.id, o.recEpoch, 0, uint64(o.master.Entries()), uint64(o.commitSeq))
	o.commitSeq++
	o.stat.Inc("commit_records")
}

// writeSealRecord appends the sealed-epoch record for a merged table.
func (o *OMC) writeSealRecord(e uint64, t *Table, now uint64) {
	words := []uint64{
		SealMagic,
		e,
		t.RootAddr(),
		uint64(t.Entries()),
		t.Digest(),
	}
	words = append(words, RecordCheck(words))
	o.now += o.nvm.Persist(mem.WMeta, SealRecAddr(o.id, o.sealSeq), len(words)*8, words, now)
	o.bus.Emit(obs.KindOMCSeal, now, o.id, e, 0, uint64(t.Entries()), uint64(o.sealSeq))
	o.sealSeq++
	o.stat.Inc("seal_records")
}
