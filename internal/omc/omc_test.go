package omc

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func omcCfg() *sim.Config {
	cfg := sim.DefaultConfig()
	return &cfg
}

func newTestOMC(cfg *sim.Config, opts ...Option) (*OMC, *mem.NVM) {
	nvm := mem.NewNVM(cfg)
	return New(cfg, nvm, 0, opts...), nvm
}

func TestReceiveVersionWritesData(t *testing.T) {
	cfg := omcCfg()
	o, nvm := newTestOMC(cfg)
	o.ReceiveVersion(Version{Addr: 0x1040, Epoch: 1, Data: 42}, 0)
	if nvm.Bytes(mem.WData) != 64 {
		t.Fatalf("data bytes = %d", nvm.Bytes(mem.WData))
	}
	if o.Stats().Get("versions_received") != 1 {
		t.Fatal("version counter")
	}
	// Not yet recoverable: master is empty.
	if _, ok := o.MasterRead(0x1040); ok {
		t.Fatal("unmerged version visible in master")
	}
}

func TestSameEpochReplacement(t *testing.T) {
	cfg := omcCfg()
	o, _ := newTestOMC(cfg)
	o.ReceiveVersion(Version{Addr: 0x40, Epoch: 1, Data: 1}, 0)
	o.ReceiveVersion(Version{Addr: 0x40, Epoch: 1, Data: 2}, 0)
	if o.Stats().Get("same_epoch_replacements") != 1 {
		t.Fatal("replacement not detected")
	}
	// Only the newest version of the epoch survives.
	d, e, ok := o.TimeTravelRead(0x40, 1)
	if !ok || d != 2 || e != 1 {
		t.Fatalf("time travel = %d,%d,%v", d, e, ok)
	}
}

func TestRecEpochProtocol(t *testing.T) {
	cfg := omcCfg()
	cfg.Cores = 4
	cfg.CoresPerVD = 2 // 2 VDs
	o, _ := newTestOMC(cfg)
	o.ReceiveVersion(Version{Addr: 0x40, Epoch: 1, Data: 7}, 0)
	o.ReceiveVersion(Version{Addr: 0x80, Epoch: 2, Data: 8}, 0)

	// Only VD0 reports: epoch 0 recoverable at most (VD1 silent).
	o.ReportMinVer(0, 3, 0)
	if o.RecEpoch() != 0 {
		t.Fatalf("recEpoch = %d, want 0", o.RecEpoch())
	}
	// VD1 reports min-ver 2: epochs < 2 are persisted everywhere => rec = 1.
	o.ReportMinVer(1, 2, 0)
	if o.RecEpoch() != 1 {
		t.Fatalf("recEpoch = %d, want 1", o.RecEpoch())
	}
	if d, ok := o.MasterRead(0x40); !ok || d != 7 {
		t.Fatalf("master read = %d,%v", d, ok)
	}
	if _, ok := o.MasterRead(0x80); ok {
		t.Fatal("epoch-2 version leaked into master at rec-epoch 1")
	}
	// VD1 catches up: epoch 2 merges.
	o.ReportMinVer(0, 3, 0)
	o.ReportMinVer(1, 3, 0)
	if o.RecEpoch() != 2 {
		t.Fatalf("recEpoch = %d, want 2", o.RecEpoch())
	}
	if d, ok := o.MasterRead(0x80); !ok || d != 8 {
		t.Fatalf("master read = %d,%v", d, ok)
	}
}

func TestMergeReleasesStaleVersions(t *testing.T) {
	cfg := omcCfg()
	cfg.Cores = 2
	cfg.CoresPerVD = 2 // 1 VD
	o, _ := newTestOMC(cfg)
	o.ReceiveVersion(Version{Addr: 0x40, Epoch: 1, Data: 1}, 0)
	o.ReportMinVer(0, 2, 0) // merge epoch 1
	o.ReceiveVersion(Version{Addr: 0x40, Epoch: 2, Data: 2}, 0)
	o.ReportMinVer(0, 3, 0) // merge epoch 2: epoch-1 version unmapped
	if o.Stats().Get("versions_unmapped") != 1 {
		t.Fatalf("unmapped = %d", o.Stats().Get("versions_unmapped"))
	}
	if d, _ := o.MasterRead(0x40); d != 2 {
		t.Fatalf("master = %d", d)
	}
	if o.Stats().Get("epochs_merged") != 2 {
		t.Fatal("merge count")
	}
}

func TestSealMergesEverything(t *testing.T) {
	cfg := omcCfg()
	o, _ := newTestOMC(cfg)
	o.ReceiveVersion(Version{Addr: 0x40, Epoch: 1, Data: 1}, 0)
	o.ReceiveVersion(Version{Addr: 0x80, Epoch: 5, Data: 5}, 0)
	o.Seal(100)
	if o.RecEpoch() != 5 {
		t.Fatalf("recEpoch after seal = %d", o.RecEpoch())
	}
	img, lat := o.RecoverImage()
	if len(img) != 2 || img[0x40] != 1 || img[0x80] != 5 {
		t.Fatalf("recovered image = %v", img)
	}
	if lat == 0 {
		t.Fatal("recovery latency should be non-zero")
	}
}

func TestTimeTravelFallThrough(t *testing.T) {
	cfg := omcCfg()
	o, _ := newTestOMC(cfg, WithRetention())
	o.ReceiveVersion(Version{Addr: 0x40, Epoch: 1, Data: 10}, 0)
	o.ReceiveVersion(Version{Addr: 0x40, Epoch: 3, Data: 30}, 0)
	o.ReceiveVersion(Version{Addr: 0x80, Epoch: 2, Data: 20}, 0)
	o.Seal(0)

	// Epoch 1: only the epoch-1 version is visible.
	if d, e, ok := o.TimeTravelRead(0x40, 1); !ok || d != 10 || e != 1 {
		t.Fatalf("epoch1 = %d,%d,%v", d, e, ok)
	}
	// Epoch 2 falls through to epoch 1 for 0x40.
	if d, e, ok := o.TimeTravelRead(0x40, 2); !ok || d != 10 || e != 1 {
		t.Fatalf("epoch2 fall-through = %d,%d,%v", d, e, ok)
	}
	// Epoch 3 and beyond see the newest.
	if d, _, _ := o.TimeTravelRead(0x40, 9); d != 30 {
		t.Fatalf("epoch9 = %d", d)
	}
	// Address written only in epoch 2 is invisible at epoch 1.
	if _, _, ok := o.TimeTravelRead(0x80, 1); ok {
		t.Fatal("future version visible in the past")
	}
	// Unknown address.
	if _, _, ok := o.TimeTravelRead(0xF000, 9); ok {
		t.Fatal("unknown address resolved")
	}
}

func TestTimeTravelWithoutRetention(t *testing.T) {
	cfg := omcCfg()
	o, _ := newTestOMC(cfg) // no retention
	o.ReceiveVersion(Version{Addr: 0x40, Epoch: 1, Data: 10}, 0)
	o.ReceiveVersion(Version{Addr: 0x40, Epoch: 2, Data: 20}, 0)
	o.Seal(0)
	// Epoch tables were merged and dropped: only unmerged epochs are
	// time-travel readable, so nothing resolves...
	if _, _, ok := o.TimeTravelRead(0x40, 2); ok {
		t.Fatal("dropped epoch table still resolves")
	}
	// ...but the master still serves the consistent image.
	if d, ok := o.MasterRead(0x40); !ok || d != 20 {
		t.Fatalf("master read = %d,%v", d, ok)
	}
}

func TestCompaction(t *testing.T) {
	cfg := omcCfg()
	cfg.NVMPoolPages = 2
	cfg.Cores = 2
	cfg.CoresPerVD = 2
	o, nvm := newTestOMC(cfg)
	// Epoch 1: one sparse page (2 lines), merged into master.
	o.ReceiveVersion(Version{Addr: 0x40, Epoch: 1, Data: 1}, 0)
	o.ReceiveVersion(Version{Addr: 0x80, Epoch: 1, Data: 2}, 0)
	o.ReportMinVer(0, 2, 0)
	dataBefore := nvm.Bytes(mem.WData)
	// Epoch 2 and 3 each open pages; quota 2 exceeded triggers compaction of
	// epoch 1's page into the current epoch.
	o.ReceiveVersion(Version{Addr: 0x1040, Epoch: 2, Data: 3}, 0)
	o.ReportMinVer(0, 3, 0)
	o.ReceiveVersion(Version{Addr: 0x2040, Epoch: 3, Data: 4}, 0)
	if o.Stats().Get("compactions") == 0 {
		t.Fatal("no compaction despite quota pressure")
	}
	if o.Stats().Get("versions_compacted") != 2 {
		t.Fatalf("versions compacted = %d", o.Stats().Get("versions_compacted"))
	}
	// Compaction rewrites data: write amplification recorded.
	if nvm.Bytes(mem.WData) <= dataBefore+64 {
		t.Fatal("compaction did not rewrite versions")
	}
	// The image survives compaction.
	o.Seal(0)
	img, _ := o.RecoverImage()
	want := map[uint64]uint64{0x40: 1, 0x80: 2, 0x1040: 3, 0x2040: 4}
	for a, d := range want {
		if img[a] != d {
			t.Fatalf("addr %#x = %d, want %d (image corrupted by compaction)", a, img[a], d)
		}
	}
	if o.Pool().Frees == 0 {
		t.Fatal("compaction freed no pages")
	}
}

func TestContextDump(t *testing.T) {
	cfg := omcCfg()
	o, nvm := newTestOMC(cfg)
	o.DumpContext(3, 7, 100)
	if nvm.Bytes(mem.WContext) != cfg.ContextDumpBytes {
		t.Fatalf("context bytes = %d", nvm.Bytes(mem.WContext))
	}
}

func TestOMCBufferAbsorbsRedundantWrites(t *testing.T) {
	cfg := omcCfg()
	o, nvm := newTestOMC(cfg, WithBuffer(0))
	for i := 0; i < 100; i++ {
		o.ReceiveVersion(Version{Addr: 0x40, Epoch: 1, Data: uint64(i)}, 0)
	}
	// 1 miss + 99 hits; no NVM data written yet.
	if nvm.Bytes(mem.WData) != 0 {
		t.Fatalf("buffered writes leaked to NVM: %d bytes", nvm.Bytes(mem.WData))
	}
	if hr := o.Buffer().HitRate(); hr < 0.98 {
		t.Fatalf("hit rate = %f", hr)
	}
	o.Seal(0)
	if nvm.Bytes(mem.WData) != 64 {
		t.Fatalf("seal flushed %d bytes, want 64", nvm.Bytes(mem.WData))
	}
	if d, _ := o.MasterRead(0x40); d != 99 {
		t.Fatalf("final data = %d", d)
	}
}

func TestOMCBufferEpochTurnoverFlushesOldVersion(t *testing.T) {
	cfg := omcCfg()
	o, nvm := newTestOMC(cfg, WithBuffer(0))
	o.ReceiveVersion(Version{Addr: 0x40, Epoch: 1, Data: 1}, 0)
	o.ReceiveVersion(Version{Addr: 0x40, Epoch: 2, Data: 2}, 0)
	// The epoch-1 version belongs to a closed snapshot: it must persist.
	if nvm.Bytes(mem.WData) != 64 {
		t.Fatalf("old version not flushed: %d bytes", nvm.Bytes(mem.WData))
	}
	o.Seal(0)
	img, _ := o.RecoverImage()
	if img[0x40] != 2 {
		t.Fatalf("image = %v", img)
	}
}

func TestSubpageSize(t *testing.T) {
	cases := []struct{ count, want int }{
		{1, 64}, {2, 128}, {3, 256}, {4, 256}, {5, 512},
		{64, 4096}, {100, 4096}, {0, 64},
	}
	for _, c := range cases {
		if got := SubpageSize(c.count, 64, 4096); got != c.want {
			t.Fatalf("SubpageSize(%d) = %d, want %d", c.count, got, c.want)
		}
	}
}

func TestSubpageBytesAccounting(t *testing.T) {
	cfg := omcCfg()
	o, _ := newTestOMC(cfg)
	// 3 versions in one 4KB page of epoch 1 => 256B subpage.
	o.ReceiveVersion(Version{Addr: 0x40, Epoch: 1, Data: 1}, 0)
	o.ReceiveVersion(Version{Addr: 0x80, Epoch: 1, Data: 2}, 0)
	o.ReceiveVersion(Version{Addr: 0xC0, Epoch: 1, Data: 3}, 0)
	if got := o.SubpageBytes(); got != 256 {
		t.Fatalf("subpage bytes = %d, want 256", got)
	}
}

func TestGroupRoutingAndRecovery(t *testing.T) {
	cfg := omcCfg()
	cfg.Cores = 2
	cfg.CoresPerVD = 2
	nvm := mem.NewNVM(cfg)
	g := NewGroup(cfg, nvm, 4)
	if g.Size() != 4 {
		t.Fatalf("size = %d", g.Size())
	}
	// Spread versions over partitions.
	for i := 0; i < 32; i++ {
		addr := uint64(i) << 12 // distinct 4KB pages -> different OMCs
		g.ReceiveVersion(Version{Addr: addr, Epoch: 1, Data: uint64(i + 1)}, 0)
	}
	g.ReportMinVer(0, 2, 0)
	if g.RecEpoch() != 1 {
		t.Fatalf("group recEpoch = %d", g.RecEpoch())
	}
	img, _ := g.RecoverImage()
	if len(img) != 32 {
		t.Fatalf("image size = %d", len(img))
	}
	for i := 0; i < 32; i++ {
		if img[uint64(i)<<12] != uint64(i+1) {
			t.Fatalf("addr %d corrupted", i)
		}
	}
	if g.MasterEntries() != 32 {
		t.Fatalf("master entries = %d", g.MasterEntries())
	}
	if g.WorkingSetBytes() != 32*64 {
		t.Fatalf("working set = %d", g.WorkingSetBytes())
	}
	if g.MasterBytes() == 0 || g.LeafOccupancy() <= 0 {
		t.Fatal("master accounting empty")
	}
	if d, ok := g.MasterRead(3 << 12); !ok || d != 4 {
		t.Fatalf("group master read = %d,%v", d, ok)
	}
	if g.PoolPages() == 0 {
		t.Fatal("no pool pages")
	}
	if g.Stats().Get("minver_messages") != 4 {
		t.Fatal("min-ver fan-out not counted")
	}
}

func TestGroupSealAndTimeTravel(t *testing.T) {
	cfg := omcCfg()
	nvm := mem.NewNVM(cfg)
	g := NewGroup(cfg, nvm, 2, WithRetention())
	g.ReceiveVersion(Version{Addr: 0x1000, Epoch: 1, Data: 5}, 0)
	g.ReceiveVersion(Version{Addr: 0x1000, Epoch: 4, Data: 9}, 0)
	g.Seal(0)
	if d, e, ok := g.TimeTravelRead(0x1000, 2); !ok || d != 5 || e != 1 {
		t.Fatalf("time travel = %d,%d,%v", d, e, ok)
	}
	if g.BufferHitRate() != 0 {
		t.Fatal("buffer hit rate without buffers should be 0")
	}
}
