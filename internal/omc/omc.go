package omc

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// OMC is one Overlay Memory Controller (paper §V). It receives versions
// evicted from versioned domains, persists them into pool pages, tracks
// them in per-epoch mapping tables, and continuously merges recoverable
// epochs into the persistent Master Table. Mapping-table updates and merges
// are background operations: they cost NVM bandwidth (bank bookings) but do
// not stall execution except through bandwidth backpressure.
type OMC struct {
	cfg *sim.Config
	nvm *mem.NVM
	id  int

	epochs   map[uint64]*Table // volatile per-epoch tables, unmerged
	retained map[uint64]*Table // merged tables kept for time-travel reads
	retain   bool
	master   *Table
	pool     *Pool
	buf      *Buffer

	payload  map[uint64]uint64 // nvmAddr -> data token ("NVM contents")
	metaNext uint64

	minVer   []uint64 // per VD: smallest possibly-unpersisted version
	recEpoch uint64
	maxEpoch uint64

	// Durable-record log cursors: commit slot 0 is the genesis record, so
	// commit records start at sequence 1; seal records start at 0.
	commitSeq int
	sealSeq   int

	// subpage accounting: versions per (epoch, 4KB page) for the sparse
	// sub-page statistic (§V-C / Page Overlays §4.4).
	vpageCounts map[uint64]map[uint64]int

	// now is the cycle of the in-flight operation; background work (merges,
	// compaction, master-table writes) issues its NVM traffic at this time.
	now uint64

	stat *stats.Set
	bus  *obs.Bus // nil when the run is unobserved
}

// Option configures an OMC.
type Option func(*OMC)

// WithBuffer enables the battery-backed write-back buffer of the given size
// in bytes (0 = LLC-sized).
func WithBuffer(bytes int) Option {
	return func(o *OMC) { o.buf = NewBuffer(o.cfg, bytes) }
}

// WithRetention keeps merged per-epoch tables and their payloads for
// time-travel reads (the debugging usage model, §V-E).
func WithRetention() Option {
	return func(o *OMC) { o.retain = true }
}

// New constructs OMC number id of n, owning the address partition
// (addr>>12) % n == id.
func New(cfg *sim.Config, nvm *mem.NVM, id int, opts ...Option) *OMC {
	o := &OMC{
		cfg:         cfg,
		nvm:         nvm,
		id:          id,
		epochs:      make(map[uint64]*Table),
		retained:    make(map[uint64]*Table),
		pool:        NewPool(PoolBase+uint64(id)*omcRegion, cfg.PageSize, cfg.LineSize, cfg.NVMPoolPages),
		payload:     make(map[uint64]uint64),
		minVer:      make([]uint64, cfg.VDs()),
		vpageCounts: make(map[uint64]map[uint64]int),
		stat:        stats.NewSet("omc"),
		bus:         cfg.Obs,
	}
	o.metaNext = MetaBase + uint64(id)*omcRegion
	o.commitSeq = 1 // slot 0 is the genesis record
	o.master = NewMasterTable(
		o.allocMeta,
		func(nvmAddr uint64, size int, word uint64) {
			// Master Table mutations are persistent 8-byte writes; merge
			// bursts advance the controller's local time so a full queue
			// delays the merge rather than compounding stalls.
			o.now += o.nvm.Persist(mem.WMeta, nvmAddr, size, []uint64{word}, o.now)
			o.stat.Inc("meta_writes")
		},
	)
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// allocMeta hands out NVM homes for mapping-table nodes (master and
// per-epoch alike) from this OMC's metadata region.
func (o *OMC) allocMeta(size int) uint64 {
	addr := o.metaNext
	o.metaNext += uint64(size)
	return addr
}

// newEpochTable builds a per-epoch mapping table whose slot writes are
// recorded on the device's content plane without booking extra bank time:
// the M_e tables live in NVM (paper §V-A) but their write timing is
// already charged through the OMC's data/meta paths, so the content rides
// silently — durable once the bank's completion clock passes, torn or
// lost at a power cut just like booked traffic.
func (o *OMC) newEpochTable() *Table {
	return NewMasterTable(
		o.allocMeta,
		func(nvmAddr uint64, size int, word uint64) {
			o.nvm.PersistSilent(nvmAddr, []uint64{word}, o.now)
		},
	)
}

// ReceiveVersion accepts a snapshot line from the frontend at cycle now and
// returns the backpressure stall to charge the evicting access.
func (o *OMC) ReceiveVersion(v Version, now uint64) (stall uint64) {
	o.now = now
	o.stat.Inc("versions_received")
	if v.Epoch > o.maxEpoch {
		o.maxEpoch = v.Epoch
	}
	if o.buf != nil {
		flush := o.buf.Absorb(v)
		for _, fv := range flush {
			stall += o.writeVersion(fv, now+stall)
		}
		return stall
	}
	return o.writeVersion(v, now)
}

// lateVersionHook, when set, observes versions arriving for epochs at or
// below the recoverable epoch (a min-ver protocol violation; test-only).
var lateVersionHook func(v Version, recEpoch uint64)

// SetLateVersionHook installs the test-only late-version observer.
func SetLateVersionHook(f func(v Version, recEpoch uint64)) { lateVersionHook = f }

// writeVersion persists one version into its epoch's overlay.
func (o *OMC) writeVersion(v Version, now uint64) (stall uint64) {
	if lateVersionHook != nil && v.Epoch <= o.recEpoch {
		lateVersionHook(v, o.recEpoch)
	}
	nvmAddr, newPage := o.pool.Alloc(v.Epoch)
	if newPage {
		o.stat.Inc("pages_allocated")
	}
	// The persisted line carries [data, epoch, checksum]: binding address
	// and epoch into the checksum lets recovery reject stale records at
	// reused pool addresses instead of trusting them.
	stall += o.nvm.Persist(mem.WData, nvmAddr, o.cfg.LineSize,
		[]uint64{v.Data, v.Epoch, LineCheck(v.Addr, v.Epoch, v.Data)}, now)
	o.payload[nvmAddr] = v.Data
	t := o.epochs[v.Epoch]
	if t == nil {
		t = o.newEpochTable()
		o.epochs[v.Epoch] = t
	}
	if old, replaced := t.Insert(v.Addr, nvmAddr); replaced {
		// The epoch's snapshot keeps only its newest version of an address.
		delete(o.payload, old)
		o.pool.Release(old)
		o.stat.Inc("same_epoch_replacements")
	} else {
		vp := o.vpageCounts[v.Epoch]
		if vp == nil {
			vp = make(map[uint64]int)
			o.vpageCounts[v.Epoch] = vp
		}
		vp[o.cfg.PageAddr(v.Addr)]++
	}
	if o.pool.OverQuota() {
		stall += o.Compact(now + stall)
	}
	return stall
}

// ReportMinVer records a tag walker's min-ver message for a VD (paper
// §V-B) and merges any epochs that became recoverable.
func (o *OMC) ReportMinVer(vd int, ver uint64, now uint64) {
	o.now = now
	o.stat.Inc("minver_reports")
	if ver < o.minVer[vd] {
		// A VD's view may regress transiently if an older version surfaced;
		// take the conservative minimum.
		o.minVer[vd] = ver
		return
	}
	o.minVer[vd] = ver
	o.advanceRecEpoch(now)
}

// LowerMinVer conservatively lowers a VD's standing min-ver without
// advancing the recoverable epoch. The frontend calls it when a dirty
// version of an old epoch migrates into a VD via cache-to-cache transfer
// (§IV-A3): the receiving VD now holds an unpersisted version older than
// its last tag-walk report, so rec-epoch must not advance past it until the
// VD's next walk confirms persistence.
func (o *OMC) LowerMinVer(vd int, ver uint64, now uint64) {
	o.now = now
	if ver < o.minVer[vd] {
		o.minVer[vd] = ver
		o.stat.Inc("minver_lowered")
	}
}

func (o *OMC) advanceRecEpoch(now uint64) {
	er := o.minVer[0]
	for _, v := range o.minVer[1:] {
		if v < er {
			er = v
		}
	}
	if er > 0 {
		er--
	}
	o.advanceRecEpochTo(er, now)
}

// advanceRecEpochTo raises the recoverable epoch to er (a floor the caller
// already established, either from this OMC's own min-ver array or from the
// group ledger), merging the epochs that became recoverable.
func (o *OMC) advanceRecEpochTo(er, now uint64) {
	o.now = now
	if er <= o.recEpoch {
		return
	}
	if o.buf != nil {
		// Buffered versions of closed epochs must persist before the epochs
		// can be declared recoverable.
		for _, fv := range o.buf.FlushBefore(er + 1) {
			o.now += o.writeVersion(fv, o.now)
		}
	}
	// Merge every newly recoverable epoch, in order.
	var pending []uint64
	for e := range o.epochs {
		if e > o.recEpoch && e <= er {
			pending = append(pending, e)
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	for _, e := range pending {
		o.mergeEpoch(e, now)
	}
	o.recEpoch = er
	o.bus.Emit(obs.KindRecEpoch, now, o.id, er, 0, 0, 0)
	// Persist the new rec-epoch pointer atomically (8-byte write), then
	// append the commit record that makes the advance provable: it pins
	// the epoch plus the Master Table's entry count and digest.
	o.nvm.Persist(mem.WMeta, RecEpochAddr-uint64(o.id)*8, 8, []uint64{er}, now)
	o.writeCommitRecord(now)
	// On a durable (file) plane the advance is also the epoch-seal
	// persistence barrier: drain bank queues and publish the manifest.
	o.nvm.SealDurable(o.recEpoch, o.now)
	o.stat.Inc("recepoch_advances")
}

// mergeEpoch folds M_e into the Master Table: table entries are copied, no
// data pages move (paper §V-C).
func (o *OMC) mergeEpoch(e uint64, now uint64) {
	t := o.epochs[e]
	if t == nil {
		return
	}
	o.now = now
	t.ForEach(func(lineAddr, nvmAddr uint64) {
		if old, replaced := o.master.Insert(lineAddr, nvmAddr); replaced {
			// The unmapped version becomes stale; release unless retained
			// for time travel.
			if !o.retain {
				delete(o.payload, old)
				o.pool.Release(old)
			}
			o.stat.Inc("versions_unmapped")
		}
	})
	// Seal the merged table: its record is what lets recovery walk back
	// to this epoch when newer state turns out torn.
	o.writeSealRecord(e, t, now)
	o.pool.CloseEpoch(e)
	o.stat.Inc("epochs_merged")
	o.stat.Add("entries_merged", int64(t.Entries()))
	delete(o.epochs, e)
	delete(o.vpageCounts, e)
	if o.retain {
		o.retained[e] = t
	}
}

// Compact performs version compaction (paper §V-D): live versions on the
// oldest recoverable epoch's pages are rewritten as if stored in the
// current epoch, freeing their source pages. Returns NVM backpressure.
func (o *OMC) Compact(now uint64) (stall uint64) {
	o.now = now
	oldest, ok := o.pool.OldestEpochWithPages()
	if !ok || oldest > o.recEpoch || oldest == o.maxEpoch {
		// Only merged epochs can be compacted, and compacting the current
		// epoch into itself would be pointless.
		return 0
	}
	victims := o.pool.PagesOfEpoch(oldest)
	inVictim := func(a uint64) bool {
		base := a &^ uint64(o.cfg.PageSize-1)
		for _, vb := range victims {
			if vb == base {
				return true
			}
		}
		return false
	}
	type move struct{ lineAddr, nvmAddr uint64 }
	var moves []move
	o.master.ForEach(func(lineAddr, nvmAddr uint64) {
		if inVictim(nvmAddr) {
			moves = append(moves, move{lineAddr, nvmAddr})
		}
	})
	for _, m := range moves {
		newAddr, _ := o.pool.Alloc(o.maxEpoch)
		data := o.payload[m.nvmAddr]
		stall += o.nvm.Persist(mem.WData, newAddr, o.cfg.LineSize,
			[]uint64{data, o.maxEpoch, LineCheck(m.lineAddr, o.maxEpoch, data)}, now+stall)
		o.payload[newAddr] = data
		o.master.Insert(m.lineAddr, newAddr)
		delete(o.payload, m.nvmAddr)
		o.pool.Release(m.nvmAddr)
		o.stat.Inc("versions_compacted")
	}
	// Pages of the victim epoch holding no live data are reclaimed even if
	// the epoch's cursor was still open.
	o.pool.CloseEpoch(oldest)
	if len(moves) > 0 {
		// Compaction rewrote master mappings; the standing commit record's
		// digest no longer matches, so append a fresh one.
		o.writeCommitRecord(now)
	}
	o.stat.Inc("compactions")
	return stall
}

// DumpContext persists a VD's processor context at an epoch boundary.
func (o *OMC) DumpContext(vd int, epoch, now uint64) (stall uint64) {
	addr := ContextBase + uint64(o.id)*omcRegion + uint64(vd)*uint64(o.cfg.ContextDumpBytes)
	stall = o.nvm.Write(mem.WContext, addr, int(o.cfg.ContextDumpBytes), now)
	o.stat.Inc("context_dumps")
	_ = epoch
	return stall
}

// Seal finalises the OMC at end of run: buffered versions are flushed and
// every remaining epoch table is merged, making the final epoch recoverable.
func (o *OMC) Seal(now uint64) { o.SealTo(now, 0) }

// SealTo seals the OMC and raises the recoverable epoch to at least floor
// (the group-wide maximum epoch). Taking the floor before the commit
// record is written — rather than patching recEpoch afterwards, as
// Group.Seal used to — means the durable record reflects the epoch the
// group actually recovers to.
func (o *OMC) SealTo(now, floor uint64) {
	o.now = now
	if o.buf != nil {
		for _, fv := range o.buf.Flush() {
			o.now += o.writeVersion(fv, o.now)
		}
	}
	var pending []uint64
	for e := range o.epochs {
		pending = append(pending, e)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	for _, e := range pending {
		o.mergeEpoch(e, now)
	}
	if o.maxEpoch > o.recEpoch {
		o.recEpoch = o.maxEpoch
	}
	if floor > o.recEpoch {
		o.recEpoch = floor
	}
	o.nvm.Persist(mem.WMeta, RecEpochAddr-uint64(o.id)*8, 8, []uint64{o.recEpoch}, now)
	o.writeCommitRecord(now)
	o.nvm.SealDurable(o.recEpoch, o.now)
}

// RecEpoch returns the recoverable epoch from this OMC's perspective.
func (o *OMC) RecEpoch() uint64 { return o.recEpoch }

// Master exposes the Master Table (consistent image of rec-epoch).
func (o *OMC) Master() *Table { return o.master }

// Pool exposes the page pool.
func (o *OMC) Pool() *Pool { return o.pool }

// Buffer returns the OMC buffer, or nil when disabled.
func (o *OMC) Buffer() *Buffer { return o.buf }

// Stats returns the OMC counter set.
func (o *OMC) Stats() *stats.Set { return o.stat }

// MasterRead returns the payload of addr in the consistent image.
func (o *OMC) MasterRead(addr uint64) (uint64, bool) {
	nvmAddr, ok := o.master.Lookup(addr)
	if !ok {
		return 0, false
	}
	data, ok := o.payload[nvmAddr]
	return data, ok
}

// TimeTravelRead returns the value of addr as of the given epoch using the
// paper's fall-through semantics (§V-E): the largest epoch E' <= epoch whose
// table maps the address wins; retained (merged) epochs participate when
// retention is enabled. The boolean reports whether any version <= epoch
// exists and is still materialised (compaction may have reclaimed it).
func (o *OMC) TimeTravelRead(addr uint64, epoch uint64) (data uint64, foundEpoch uint64, ok bool) {
	lookup := func(e uint64, t *Table) bool {
		if e > epoch || (ok && e <= foundEpoch) {
			return false
		}
		nvmAddr, hit := t.Lookup(addr)
		if !hit {
			return false
		}
		d, live := o.payload[nvmAddr]
		if !live {
			return false
		}
		data, foundEpoch, ok = d, e, true
		return true
	}
	//nvlint:allow maprange commutative max-selection: lookup keeps the largest qualifying epoch regardless of visit order
	for e, t := range o.epochs {
		lookup(e, t)
	}
	//nvlint:allow maprange commutative max-selection: lookup keeps the largest qualifying epoch regardless of visit order
	for e, t := range o.retained {
		lookup(e, t)
	}
	return data, foundEpoch, ok
}

// RecoverImage materialises the consistent memory image of rec-epoch as an
// address->payload map and returns it with the simulated recovery latency
// (NVM reads for every mapped line, paper §V-E).
func (o *OMC) RecoverImage() (map[uint64]uint64, uint64) {
	img := make(map[uint64]uint64, o.master.Entries())
	var lat uint64
	o.master.ForEach(func(lineAddr, nvmAddr uint64) {
		if data, ok := o.payload[nvmAddr]; ok {
			img[lineAddr] = data
			lat += o.nvm.Read()
		}
	})
	return img, lat
}

// EpochDelta returns the incremental changes captured by epoch e as an
// address->payload map (unmerged or retained epochs only). This is the
// unit of remote replication (§V-E): each delta can be shipped and
// replayed as a redo log on a backup machine.
func (o *OMC) EpochDelta(e uint64) map[uint64]uint64 {
	t := o.epochs[e]
	if t == nil {
		t = o.retained[e]
	}
	if t == nil {
		return nil
	}
	delta := make(map[uint64]uint64, t.Entries())
	t.ForEach(func(lineAddr, nvmAddr uint64) {
		if d, ok := o.payload[nvmAddr]; ok {
			delta[lineAddr] = d
		}
	})
	return delta
}

// Epochs returns the ids of all epochs with accessible tables (unmerged
// plus retained), sorted ascending so reports and exports derived from it
// are byte-stable across runs.
func (o *OMC) Epochs() []uint64 {
	var out []uint64
	for e := range o.epochs {
		out = append(out, e)
	}
	for e := range o.retained {
		if _, dup := o.epochs[e]; !dup {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SubpageBytes estimates the storage the current unmerged epochs would use
// under Page Overlays sparse sub-page packing, for comparison against the
// pool's page-granular allocation.
func (o *OMC) SubpageBytes() int64 {
	var total int64
	//nvlint:allow maprange commutative sum: addition is order-independent
	for _, vp := range o.vpageCounts {
		//nvlint:allow maprange commutative sum: addition is order-independent
		for _, count := range vp {
			total += int64(SubpageSize(count, o.cfg.LineSize, o.cfg.PageSize))
		}
	}
	return total
}

// SubpageSize returns the smallest power-of-two sub-page (in bytes, between
// one line and a full page) able to hold count versions.
func SubpageSize(count, lineSize, pageSize int) int {
	need := count * lineSize
	size := lineSize
	for size < need && size < pageSize {
		size *= 2
	}
	if size > pageSize {
		size = pageSize
	}
	return size
}
