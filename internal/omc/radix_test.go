package omc

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestTableInsertLookup(t *testing.T) {
	tb := NewEpochTable()
	if _, ok := tb.Lookup(0x1000); ok {
		t.Fatal("empty table lookup hit")
	}
	if old, replaced := tb.Insert(0x1000, 0xAA); replaced || old != 0 {
		t.Fatal("first insert reported replacement")
	}
	if v, ok := tb.Lookup(0x1000); !ok || v != 0xAA {
		t.Fatalf("lookup = %#x,%v", v, ok)
	}
	if old, replaced := tb.Insert(0x1000, 0xBB); !replaced || old != 0xAA {
		t.Fatalf("re-insert: old=%#x replaced=%v", old, replaced)
	}
	if tb.Entries() != 1 {
		t.Fatalf("entries = %d", tb.Entries())
	}
}

func TestTableLevelSeparation(t *testing.T) {
	tb := NewEpochTable()
	// Addresses differing only in bits 20..12 (the 4th index level) must not
	// collide — this was the regression the 4-inner-level fix addressed.
	a := uint64(0x0000_0000_0000_1040)
	b := a | (uint64(5) << 12)
	tb.Insert(a, 1)
	tb.Insert(b, 2)
	if v, _ := tb.Lookup(a); v != 1 {
		t.Fatalf("a = %d", v)
	}
	if v, _ := tb.Lookup(b); v != 2 {
		t.Fatalf("b = %d", v)
	}
	// Same for every other level boundary.
	for _, shift := range []uint{6, 12, 21, 30, 39} {
		tb := NewEpochTable()
		x := uint64(0)
		y := uint64(1) << shift
		tb.Insert(x, 11)
		tb.Insert(y, 22)
		vx, _ := tb.Lookup(x)
		vy, _ := tb.Lookup(y)
		if vx != 11 || vy != 22 {
			t.Fatalf("shift %d collided: %d %d", shift, vx, vy)
		}
	}
}

func TestTableDelete(t *testing.T) {
	tb := NewEpochTable()
	tb.Insert(0x40, 7)
	if old, ok := tb.Delete(0x40); !ok || old != 7 {
		t.Fatalf("delete = %d,%v", old, ok)
	}
	if _, ok := tb.Lookup(0x40); ok {
		t.Fatal("lookup after delete hit")
	}
	if _, ok := tb.Delete(0x40); ok {
		t.Fatal("double delete succeeded")
	}
	if tb.Entries() != 0 {
		t.Fatalf("entries = %d", tb.Entries())
	}
	if _, ok := tb.Delete(0x999999); ok {
		t.Fatal("delete of never-inserted address succeeded")
	}
}

func TestTableInsertZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEpochTable().Insert(0x40, 0)
}

func TestTableForEachOrdered(t *testing.T) {
	tb := NewEpochTable()
	addrs := []uint64{0x5000, 0x40, 0x1000000, 0x80, 0x5040}
	for i, a := range addrs {
		tb.Insert(a, uint64(i+1))
	}
	var visited []uint64
	tb.ForEach(func(lineAddr, nvmAddr uint64) {
		visited = append(visited, lineAddr)
	})
	if len(visited) != len(addrs) {
		t.Fatalf("visited %d, want %d", len(visited), len(addrs))
	}
	for i := 1; i < len(visited); i++ {
		if visited[i-1] >= visited[i] {
			t.Fatalf("ForEach not in ascending order: %v", visited)
		}
	}
}

func TestTableBytesAndOccupancy(t *testing.T) {
	tb := NewEpochTable()
	// 64 lines of one 4 KB page fill exactly one leaf.
	for i := 0; i < 64; i++ {
		tb.Insert(uint64(i*64), uint64(i+1))
	}
	inners, leaves := tb.Nodes()
	if leaves != 1 {
		t.Fatalf("leaves = %d, want 1", leaves)
	}
	if inners != 4 {
		t.Fatalf("inners = %d, want 4 (one per level)", inners)
	}
	if occ := tb.LeafOccupancy(); occ != 1.0 {
		t.Fatalf("occupancy = %f", occ)
	}
	wantBytes := int64(4*innerNodeBytes + leafNodeBytes)
	if tb.Bytes() != wantBytes {
		t.Fatalf("bytes = %d, want %d", tb.Bytes(), wantBytes)
	}
	if tb.String() == "" {
		t.Fatal("empty String()")
	}
	if NewEpochTable().LeafOccupancy() != 0 {
		t.Fatal("empty table occupancy should be 0")
	}
}

func TestMasterTablePersistAccounting(t *testing.T) {
	var metaWrites int
	var allocs int
	tb := NewMasterTable(
		func(size int) uint64 { allocs++; return uint64(allocs) << 20 },
		func(nvmAddr uint64, size int, word uint64) {
			if size != 8 {
				t.Fatalf("persist size = %d, want 8", size)
			}
			metaWrites++
		},
	)
	tb.Insert(0x40, 1)
	// First insert: root exists (no parent write) + 3 inner pointers + 1
	// leaf pointer + 1 leaf slot = 5 writes.
	if metaWrites != 5 {
		t.Fatalf("meta writes after first insert = %d, want 5", metaWrites)
	}
	tb.Insert(0x80, 2) // same leaf: one slot write
	if metaWrites != 6 {
		t.Fatalf("meta writes = %d, want 6", metaWrites)
	}
	tb.Insert(0x40, 3) // replacement: one slot write
	if metaWrites != 7 {
		t.Fatalf("meta writes = %d, want 7", metaWrites)
	}
	if allocs != 5 { // root + 3 inners + 1 leaf
		t.Fatalf("node allocs = %d, want 5", allocs)
	}
}

// Property: the table behaves exactly like a map for any insert/delete
// sequence over line-aligned addresses.
func TestTableMatchesMap(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		r := sim.NewRNG(seed)
		tb := NewEpochTable()
		oracle := map[uint64]uint64{}
		ops := int(n%2000) + 10
		for i := 0; i < ops; i++ {
			addr := uint64(r.Intn(512)) * 64
			switch r.Intn(3) {
			case 0, 1:
				val := r.Uint64() | 1 // non-zero
				oldWant, hadWant := oracle[addr]
				old, had := tb.Insert(addr, val)
				if had != hadWant || (had && old != oldWant) {
					return false
				}
				oracle[addr] = val
			case 2:
				oldWant, hadWant := oracle[addr]
				old, had := tb.Delete(addr)
				if had != hadWant || (had && old != oldWant) {
					return false
				}
				delete(oracle, addr)
			}
		}
		if tb.Entries() != len(oracle) {
			return false
		}
		count := 0
		good := true
		tb.ForEach(func(a, v uint64) {
			count++
			if oracle[a] != v {
				good = false
			}
		})
		return good && count == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
