package cst

import (
	"testing"
	"testing/quick"
)

func TestWrapSpaceBasics(t *testing.T) {
	w := NewWrapSpace(8)
	if w.Size() != 256 || w.Half() != 128 {
		t.Fatalf("size=%d half=%d", w.Size(), w.Half())
	}
	if w.Wire(300) != 44 {
		t.Fatalf("wire(300) = %d", w.Wire(300))
	}
	if w.GroupU(10) || !w.GroupU(200) {
		t.Fatal("group classification wrong")
	}
	if w.Sense() {
		t.Fatal("initial sense must be L-ahead")
	}
}

func TestWrapSpaceWidthBounds(t *testing.T) {
	for _, width := range []uint{3, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("width %d accepted", width)
				}
			}()
			NewWrapSpace(width)
		}()
	}
	NewWrapSpace(4)
	NewWrapSpace(16)
}

func TestWrapSpaceSameGroupOrdering(t *testing.T) {
	w := NewWrapSpace(8)
	if !w.Less(3, 7) || w.Less(7, 3) {
		t.Fatal("numeric ordering within L broken")
	}
	if !w.Less(200, 210) || w.Less(210, 200) {
		t.Fatal("numeric ordering within U broken")
	}
}

func TestWrapSpaceCrossGroupWithSense(t *testing.T) {
	w := NewWrapSpace(8)
	// Initially L is ahead (fresh epochs live in L): U values are older.
	if !w.Less(200, 3) {
		t.Fatal("with L ahead, U values must be older")
	}
	// A VD advances into U: sense flips, U becomes ahead.
	w.OnGroupTransition(130)
	if !w.Sense() || w.Flips() != 1 {
		t.Fatalf("sense=%v flips=%d", w.Sense(), w.Flips())
	}
	if !w.Less(3, 130) {
		t.Fatal("with U ahead, L values must be older")
	}
	// Transitioning back to L flips again.
	w.OnGroupTransition(2)
	if w.Sense() || w.Flips() != 2 {
		t.Fatalf("sense=%v flips=%d", w.Sense(), w.Flips())
	}
	// Re-entering the same group is a no-op.
	w.OnGroupTransition(5)
	if w.Flips() != 2 {
		t.Fatal("same-group transition flipped sense")
	}
}

func TestWrapSpaceCrossesGroup(t *testing.T) {
	w := NewWrapSpace(8)
	if w.CrossesGroup(10, 20) || !w.CrossesGroup(120, 130) {
		t.Fatal("CrossesGroup wrong")
	}
}

// Property: as long as the live epoch window is narrower than half the
// space, wire-level Less (with transitions applied in logical order) agrees
// with logical ordering.
func TestWrapSpaceMatchesLogicalOrder(t *testing.T) {
	f := func(start uint16, steps uint8) bool {
		w := NewWrapSpace(8)
		base := uint64(start)
		// Apply transitions as the logical clock sweeps forward.
		for e := uint64(0); e <= base; e += w.Half() / 2 {
			w.OnGroupTransition(w.Wire(e))
		}
		w.OnGroupTransition(w.Wire(base))
		window := uint64(steps)%(w.Half()-1) + 1
		for d := uint64(1); d <= window; d++ {
			a, b := base, base+d
			// Advance sense as b enters new groups.
			if w.CrossesGroup(w.Wire(a), w.Wire(b)) {
				w.OnGroupTransition(w.Wire(b))
			}
			if !w.Less(w.Wire(a), w.Wire(b)) {
				return false
			}
			if w.Less(w.Wire(b), w.Wire(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
