package cst

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/omc"
	"repro/internal/sim"
)

// TestMinVerProtocolInvariant asserts the correctness condition behind the
// recoverable-epoch protocol (§V-B): no version may ever arrive at an OMC
// for an epoch that the OMC has already declared recoverable. The test
// hammers the full stack with heavy cross-VD sharing — the regime that
// uncovered two real races during development (dirty cache-to-cache
// transfers need a standing min-ver floor, and deferred walk reports must
// rescan live tags).
func TestMinVerProtocolInvariant(t *testing.T) {
	for _, seed := range []int64{3, 21, 77, 1234} {
		cfg := cstCfg()
		cfg.EpochSize = 30
		nvm := mem.NewNVM(cfg)
		g := omc.NewGroup(cfg, nvm, 2)
		dram := mem.NewDRAM(cfg)
		f := New(cfg, dram, g)
		violations := 0
		omc.SetLateVersionHook(func(v omc.Version, rec uint64) { violations++ })
		r := sim.NewRNG(seed)
		var token uint64
		for i := 0; i < 25000; i++ {
			tid := r.Intn(cfg.Cores)
			// A narrow, hot address range maximises c2c transfers.
			addr := uint64(r.Intn(48) * 64)
			if r.Intn(2) == 0 {
				token++
				f.Access(tid, addr, true, token, uint64(i))
			} else {
				f.Access(tid, addr, false, 0, uint64(i))
			}
		}
		omc.SetLateVersionHook(nil)
		if violations != 0 {
			t.Fatalf("seed %d: %d versions arrived for already-recoverable epochs", seed, violations)
		}
		// The protocol made progress despite the contention.
		if g.Stats().Get("recepoch_advances") == 0 {
			t.Fatalf("seed %d: rec-epoch never advanced", seed)
		}
	}
}

// TestWrapAroundEndToEnd runs the full stack with a narrow 5-bit epoch
// space so group transitions fire constantly, then verifies snapshot
// consistency survived every wrap.
func TestWrapAroundEndToEnd(t *testing.T) {
	cfg := cstCfg()
	cfg.EpochSize = 24
	cfg.WrapEpochs = true
	cfg.WrapWidth = 5 // 32 epochs, groups of 16
	nvm := mem.NewNVM(cfg)
	g := omc.NewGroup(cfg, nvm, 2)
	dram := mem.NewDRAM(cfg)
	f := New(cfg, dram, g)
	r := sim.NewRNG(9)
	final := map[uint64]uint64{}
	var token uint64
	for i := 0; i < 20000; i++ {
		tid := r.Intn(cfg.Cores)
		addr := uint64(r.Intn(200) * 64)
		if r.Intn(2) == 0 {
			token++
			f.Access(tid, addr, true, token, uint64(i))
			final[addr] = token
		} else {
			f.Access(tid, addr, false, 0, uint64(i))
		}
	}
	if f.WrapFlushes() < 5 {
		t.Fatalf("only %d group transitions over ~%d epochs", f.WrapFlushes(), f.CurEpoch(0))
	}
	f.Drain(20000)
	g.Seal(20000)
	img, _ := g.RecoverImage()
	for addr, want := range final {
		if img[addr] != want {
			t.Fatalf("addr %#x = %d, want %d (wrap-around corrupted a snapshot)",
				addr, img[addr], want)
		}
	}
}

// TestReadOnlyVDsDoNotBlockRecovery exercises skewed store distributions:
// half the threads only read. Their VDs advance via coherence and the
// walker still reports, so the recoverable epoch keeps moving.
func TestReadOnlyVDsDoNotBlockRecovery(t *testing.T) {
	cfg := cstCfg()
	cfg.EpochSize = 20
	nvm := mem.NewNVM(cfg)
	g := omc.NewGroup(cfg, nvm, 2)
	f := New(cfg, mem.NewDRAM(cfg), g)
	r := sim.NewRNG(5)
	var token uint64
	for i := 0; i < 20000; i++ {
		tid := r.Intn(cfg.Cores)
		addr := uint64(r.Intn(64) * 64)
		// Only VD0's cores (0,1) ever write; VD1 (2,3) just reads.
		if tid < 2 && r.Intn(2) == 0 {
			token++
			f.Access(tid, addr, true, token, uint64(i))
		} else {
			f.Access(tid, addr, false, 0, uint64(i))
		}
	}
	if g.RecEpoch() == 0 {
		t.Fatal("read-only VD starved the recoverable epoch")
	}
}

// TestEpochScheduleBursts verifies the Fig 17b watch-point mechanism: a
// store-count window with a tiny epoch size multiplies the epoch rate
// inside the window.
func TestEpochScheduleBursts(t *testing.T) {
	cfg := cstCfg()
	cfg.EpochSize = 1000
	cfg.Bursts = []sim.Burst{{From: 200, To: 400, Size: 10}}
	f, mb, _ := newFE(cfg)
	for i := 0; i < 1200; i++ {
		f.Access(0, uint64((i%16)*64), true, uint64(i), uint64(i))
	}
	// The schedule is keyed by machine-global stores (totStores * VDs with
	// 2 VDs here): VD0's stores 100..199 run with epoch size 10, giving
	// ~10 boundaries, versus ~1 from the surrounding 1000-store epochs.
	if mb.contexts < 9 || mb.contexts > 14 {
		t.Fatalf("burst window produced %d epoch advances, want ~11", mb.contexts)
	}
}
